// Package repliflow reproduces "Complexity results for throughput and
// latency optimization of replicated and data-parallel workflows" by Anne
// Benoit and Yves Robert (INRIA RR-6308, 2007 / IEEE CLUSTER 2007).
//
// The library maps pipeline, fork and fork-join workflow graphs onto
// homogeneous or heterogeneous platforms under the paper's simplified
// model (no communication costs), with stage replication and
// data-parallelism. It implements every polynomial algorithm of the paper
// (Theorems 1-4, 6-8, 10-11, 14 and the Section 6.3 fork-join extensions),
// exact exponential solvers and polynomial heuristics for the NP-hard
// instances (Theorems 5, 9, 12, 13, 15), the executable NP-hardness
// reductions, a discrete-event simulator validating the cost model, and a
// harness regenerating the paper's Table 1 and Section 2 example.
//
// # Quick start
//
//	pipe := repliflow.NewPipeline(14, 4, 2, 4)      // the paper's Section 2 example
//	plat := repliflow.HomogeneousPlatform(3, 1)
//	sol, err := repliflow.Solve(repliflow.Problem{
//	    Pipeline:          &pipe,
//	    Platform:          plat,
//	    AllowDataParallel: true,
//	    Objective:         repliflow.MinLatency,
//	}, repliflow.Options{})
//
// The solution carries the mapping, its exact period and latency, the
// Table 1 classification of the instance and the algorithm used.
//
// Batch and network use sit on top: SolveBatch, ParetoFrontContext and
// the incremental SweepFront run on the concurrent memoizing engine
// (internal/engine), and cmd/wfserve serves the same solves over
// HTTP/JSON using the wire format specified in docs/wire-format.md.
package repliflow

import (
	"context"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Application graphs (Figures 1 and 2 of the paper, plus Section 6.3).
type (
	// Pipeline is an n-stage linear pipeline.
	Pipeline = workflow.Pipeline
	// Fork is a root stage followed by independent stages.
	Fork = workflow.Fork
	// ForkJoin adds a final join stage gathering all results.
	ForkJoin = workflow.ForkJoin
	// Kind is a workflow graph kind (one axis of a CellKey).
	Kind = workflow.Kind
	// Platform is a set of processors with speeds.
	Platform = platform.Platform
)

// Graph kinds.
const (
	// KindPipeline is the linear pipeline of Figure 1.
	KindPipeline = workflow.KindPipeline
	// KindFork is the fork of Figure 2.
	KindFork = workflow.KindFork
	// KindForkJoin is the Section 6.3 fork-join extension.
	KindForkJoin = workflow.KindForkJoin
)

// Mapping types and cost model (Section 3.4).
type (
	// Cost is a (period, latency) pair.
	Cost = mapping.Cost
	// Mode selects replication or data-parallelism for a stage group.
	Mode = mapping.Mode
	// Assignment binds a processor set and a mode to a stage group.
	Assignment = mapping.Assignment
	// PipelineMapping partitions a pipeline into processor-assigned
	// intervals.
	PipelineMapping = mapping.PipelineMapping
	// PipelineInterval is one interval of a PipelineMapping.
	PipelineInterval = mapping.PipelineInterval
	// ForkMapping partitions a fork into processor-assigned blocks.
	ForkMapping = mapping.ForkMapping
	// ForkBlock is one block of a ForkMapping.
	ForkBlock = mapping.ForkBlock
	// ForkJoinMapping partitions a fork-join graph into blocks.
	ForkJoinMapping = mapping.ForkJoinMapping
	// ForkJoinBlock is one block of a ForkJoinMapping.
	ForkJoinBlock = mapping.ForkJoinBlock
)

// Modes.
const (
	// Replicated processes consecutive data sets round-robin.
	Replicated = mapping.Replicated
	// DataParallel shares each data set among the processors.
	DataParallel = mapping.DataParallel
)

// Solver types.
type (
	// Problem is a full problem instance; see core.Problem.
	Problem = core.Problem
	// Solution is a solved mapping with provenance; see core.Solution.
	Solution = core.Solution
	// Options tunes the exhaustive-search limits on NP-hard cells.
	Options = core.Options
	// Objective selects what to optimize.
	Objective = core.Objective
	// Classification is a Table 1 cell.
	Classification = core.Classification
	// Complexity is the Table 1 complexity class of a cell.
	Complexity = core.Complexity
	// CellKey is a Table 1 dispatch cell of the solver registry.
	CellKey = core.CellKey
	// SolverEntry is one registered solver; see core.SolverEntry.
	SolverEntry = core.SolverEntry
	// Engine is a concurrent, caching batch solver; see engine.Engine.
	Engine = engine.Engine
	// EngineStats is a snapshot of an Engine's cache counters, taken
	// with Engine.Stats (hits, misses, size, workers).
	EngineStats = engine.Stats
	// SweepPoint is one confirmed point of an incremental Pareto sweep;
	// see engine.SweepPoint.
	SweepPoint = engine.SweepPoint
	// SweepStats summarizes a sweep when SweepFront returns; see
	// engine.SweepStats.
	SweepStats = engine.SweepStats
	// SweepObserver receives the incremental output of SweepFront; see
	// engine.SweepObserver.
	SweepObserver = engine.SweepObserver
	// ErrKind is a machine-readable error category; see core.ErrKind.
	ErrKind = core.ErrKind
)

// Error kinds, recovered from any error of this package by ErrKindOf.
const (
	// ErrKindUnknown marks unclassified errors.
	ErrKindUnknown = core.ErrKindUnknown
	// ErrKindInvalidInstance marks ill-formed problem instances.
	ErrKindInvalidInstance = core.ErrKindInvalidInstance
	// ErrKindNoSolver marks dispatch cells with no registered solver.
	ErrKindNoSolver = core.ErrKindNoSolver
)

// ErrKindOf returns the machine-readable category of an error returned
// by this package, or ErrKindUnknown for unclassified errors. It lets
// services built on the library (cmd/wfserve) map failures to protocol
// codes without parsing error strings.
func ErrKindOf(err error) ErrKind { return core.ErrKindOf(err) }

// Objectives.
const (
	// MinPeriod maximizes throughput.
	MinPeriod = core.MinPeriod
	// MinLatency minimizes response time.
	MinLatency = core.MinLatency
	// LatencyUnderPeriod minimizes latency subject to Problem.Bound on the
	// period.
	LatencyUnderPeriod = core.LatencyUnderPeriod
	// PeriodUnderLatency minimizes period subject to Problem.Bound on the
	// latency.
	PeriodUnderLatency = core.PeriodUnderLatency
)

// Complexity classes of Table 1.
const (
	// PolyStraightforward marks "Poly (str)" cells.
	PolyStraightforward = core.PolyStraightforward
	// PolyDP marks "Poly (DP)" cells.
	PolyDP = core.PolyDP
	// PolyBinarySearchDP marks "Poly (*)" cells.
	PolyBinarySearchDP = core.PolyBinarySearchDP
	// NPHard marks NP-hard cells.
	NPHard = core.NPHard
)

// NewPipeline returns a pipeline with the given stage weights.
func NewPipeline(weights ...float64) Pipeline { return workflow.NewPipeline(weights...) }

// HomogeneousPipeline returns an n-stage pipeline of identical weight w.
func HomogeneousPipeline(n int, w float64) Pipeline { return workflow.HomogeneousPipeline(n, w) }

// NewFork returns a fork with root weight root and the given leaf weights.
func NewFork(root float64, weights ...float64) Fork { return workflow.NewFork(root, weights...) }

// HomogeneousFork returns a fork with n identical leaves of weight w.
func HomogeneousFork(root float64, n int, w float64) Fork {
	return workflow.HomogeneousFork(root, n, w)
}

// NewForkJoin returns a fork-join graph.
func NewForkJoin(root, join float64, weights ...float64) ForkJoin {
	return workflow.NewForkJoin(root, join, weights...)
}

// HomogeneousForkJoin returns a fork-join with n identical leaves.
func HomogeneousForkJoin(root, join float64, n int, w float64) ForkJoin {
	return workflow.HomogeneousForkJoin(root, join, n, w)
}

// NewPipelineInterval maps stages first..last (0-indexed, inclusive) onto
// the given processors with the given mode.
func NewPipelineInterval(first, last int, mode Mode, procs ...int) PipelineInterval {
	return mapping.NewPipelineInterval(first, last, mode, procs...)
}

// NewForkBlock maps a fork block (root flag + leaf indices) onto the given
// processors.
func NewForkBlock(root bool, leaves []int, mode Mode, procs ...int) ForkBlock {
	return mapping.NewForkBlock(root, leaves, mode, procs...)
}

// NewForkJoinBlock maps a fork-join block onto the given processors.
func NewForkJoinBlock(root, join bool, leaves []int, mode Mode, procs ...int) ForkJoinBlock {
	return mapping.NewForkJoinBlock(root, join, leaves, mode, procs...)
}

// NewPlatform returns a platform with the given processor speeds.
func NewPlatform(speeds ...float64) Platform { return platform.New(speeds...) }

// HomogeneousPlatform returns p identical processors of speed s.
func HomogeneousPlatform(p int, s float64) Platform { return platform.Homogeneous(p, s) }

// Solve classifies the problem into its Table 1 cell and solves it with the
// matching algorithm from the solver registry. The zero Options applies
// core.DefaultOptions.
func Solve(pr Problem, opts Options) (Solution, error) { return core.Solve(pr, opts) }

// SolveContext is Solve with cancellation: exhaustive searches on NP-hard
// cells poll ctx and return ctx.Err() promptly when it is cancelled.
func SolveContext(ctx context.Context, pr Problem, opts Options) (Solution, error) {
	return core.SolveContext(ctx, pr, opts)
}

// SolveBatch solves independent problems concurrently across GOMAXPROCS
// workers, deduplicating repeated instances through a memoization cache.
// Solutions align with the input by index; the first error aborts the
// batch. Use NewEngine to share the cache across batches.
func SolveBatch(ctx context.Context, problems []Problem, opts Options) ([]Solution, error) {
	return engine.SolveBatch(ctx, problems, opts)
}

// NewEngine returns a reusable concurrent batch solver whose cache
// persists across SolveBatch/ParetoFront calls; workers <= 0 selects
// GOMAXPROCS.
func NewEngine(workers int) *Engine { return engine.New(workers) }

// PreparedSolver solves repeated objective/bound variants of one
// (workflow, platform, model) triple with shared preprocessing, scratch
// memory and per-bound memoization; see Prepare.
type PreparedSolver = core.PreparedSolver

// Prepare returns a prepared solver for repeated solves of one instance
// that differ only in Objective and Bound (the shape of a Pareto sweep or
// a bi-criteria probe sequence). Results are byte-identical to
// SolveContext on the same problem. The boolean is false when
// preparation does not apply — the instance is invalid, budgeted
// (Options.AnytimeBudget), oversized for exhaustive search, or entirely
// polynomial — in which case plain SolveContext is the right call. A
// PreparedSolver is not safe for concurrent use; pool instances instead.
// Engine sweeps and sweep-shaped batches use this automatically.
func Prepare(pr Problem, opts Options) (*PreparedSolver, bool) { return core.Prepare(pr, opts) }

// Classify returns the Table 1 cell of a problem instance.
func Classify(pr Problem) (Classification, error) { return core.Classify(pr) }

// CellKeyOf returns the Table 1 dispatch cell of a problem: the key
// LookupSolver resolves. The problem should be valid; the key of an
// invalid problem is unspecified.
func CellKeyOf(pr Problem) CellKey { return core.CellKeyOf(pr) }

// ClassifyCell returns the Table 1 classification of a dispatch cell
// without constructing an instance: ClassifyCell(CellKeyOf(pr)) equals
// the classification Classify(pr) returns for every valid pr.
func ClassifyCell(key CellKey) Classification { return core.ClassifyCell(key) }

// LookupSolver returns the registered solver entry for a dispatch cell,
// exposing the method, exactness and paper source backing it.
func LookupSolver(key CellKey) (SolverEntry, bool) { return core.LookupSolver(key) }

// ParetoFront returns the period/latency trade-off curve of the instance:
// non-dominated solutions ordered by increasing period. The problem's
// Objective and Bound are ignored. The sweep runs on the concurrent
// engine; the front is identical to a serial sweep.
func ParetoFront(pr Problem, opts Options) ([]Solution, error) {
	return engine.ParetoFront(context.Background(), pr, opts)
}

// ParetoFrontContext is ParetoFront with cancellation: the concurrent
// candidate-period solves stop promptly with ctx.Err() when ctx is
// cancelled.
func ParetoFrontContext(ctx context.Context, pr Problem, opts Options) ([]Solution, error) {
	return engine.ParetoFront(ctx, pr, opts)
}

// SweepFront computes the trade-off curve incrementally: each confirmed
// front point is delivered to the observer, in increasing-period order,
// as soon as dominance proves it final — instead of after the whole
// sweep. The emitted sequence is identical to the ParetoFront slice; on
// cancellation the points already delivered form a well-formed prefix of
// the full front, and the returned stats report how many candidate
// periods were left unexplored. Use an explicit Engine
// (Engine.SweepFront) to share the cache across sweeps.
func SweepFront(ctx context.Context, pr Problem, opts Options, obs SweepObserver) (SweepStats, error) {
	return engine.New(0).SweepFront(ctx, pr, opts, obs)
}

// EvalPipeline returns the period and latency of a pipeline mapping under
// the Section 3.4 cost model, validating it first.
func EvalPipeline(p Pipeline, pl Platform, m PipelineMapping) (Cost, error) {
	return mapping.EvalPipeline(p, pl, m)
}

// EvalFork returns the period and latency of a fork mapping.
func EvalFork(f Fork, pl Platform, m ForkMapping) (Cost, error) {
	return mapping.EvalFork(f, pl, m)
}

// EvalForkJoin returns the period and latency of a fork-join mapping.
func EvalForkJoin(fj ForkJoin, pl Platform, m ForkJoinMapping) (Cost, error) {
	return mapping.EvalForkJoin(fj, pl, m)
}
