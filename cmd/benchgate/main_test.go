package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repliflow/internal/benchgate"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baselineJSON = `{
  "tolerance": 1.25,
  "benchmarks": {"BenchmarkX": 1000}
}`

func TestRunGatePassAndFail(t *testing.T) {
	baseline := writeFile(t, "baseline.json", baselineJSON)

	pass := writeFile(t, "pass.txt", "BenchmarkX-1 \t 1 \t 1100 ns/op\n")
	var out bytes.Buffer
	if err := run(baseline, false, []string{pass}, &out); err != nil {
		t.Fatalf("within-tolerance result failed the gate: %v (%s)", err, out.String())
	}

	fail := writeFile(t, "fail.txt", "BenchmarkX-1 \t 1 \t 5000 ns/op\n")
	out.Reset()
	if err := run(baseline, false, []string{fail}, &out); err == nil {
		t.Fatal("5x regression passed the gate")
	}
	if !strings.Contains(out.String(), "BenchmarkX") {
		t.Errorf("violation output missing the benchmark name:\n%s", out.String())
	}

	empty := writeFile(t, "empty.txt", "PASS\n")
	if err := run(baseline, false, []string{empty}, &out); err == nil {
		t.Fatal("empty results passed the gate")
	}
}

func TestRunUpdateRewritesBaseline(t *testing.T) {
	baseline := writeFile(t, "baseline.json", baselineJSON)
	results := writeFile(t, "results.txt", "BenchmarkX-1 \t 1 \t 800 ns/op\nBenchmarkX \t 1 \t 750 ns/op\n")
	var out bytes.Buffer
	if err := run(baseline, true, []string{results}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(baseline)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := benchgate.ReadBaseline(f)
	if err != nil {
		t.Fatal(err)
	}
	if b.Benchmarks["BenchmarkX"] != 750 {
		t.Errorf("baseline = %g, want the fastest run 750", b.Benchmarks["BenchmarkX"])
	}
	if b.Tolerance != 1.25 {
		t.Errorf("update lost the tolerance: %g", b.Tolerance)
	}
}
