// Command benchgate is the CI performance gate: it compares `go test
// -bench` output against the checked-in BENCH_baseline.json and exits
// non-zero when any gated benchmark regressed beyond the baseline's
// tolerance (default +25%), so the performance claims in BENCH_*.json
// stay enforced rather than decorative. Benchmarks listed in the
// baseline's "allocs" map are additionally gated on allocs/op, which
// requires the bench run to pass -benchmem.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -count 3 -benchmem ./... | tee bench.txt
//	benchgate -baseline BENCH_baseline.json bench.txt
//	benchgate -baseline BENCH_baseline.json -update bench.txt   # recalibrate
//
// With no positional files the bench output is read from stdin.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repliflow/internal/benchgate"
)

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline file to gate against")
	update := flag.Bool("update", false, "rewrite the baseline from the results instead of gating")
	flag.Parse()
	if err := run(*baselinePath, *update, flag.Args(), os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(baselinePath string, update bool, args []string, out io.Writer) error {
	bf, err := os.Open(baselinePath)
	if err != nil {
		return err
	}
	base, err := benchgate.ReadBaseline(bf)
	bf.Close()
	if err != nil {
		return err
	}

	results := make(map[string]benchgate.Result)
	readInto := func(r io.Reader) error {
		res, err := benchgate.ParseResults(r)
		if err != nil {
			return err
		}
		for name, got := range res {
			results[name] = benchgate.MergeResult(results[name], got)
		}
		return nil
	}
	if len(args) == 0 {
		if err := readInto(os.Stdin); err != nil {
			return err
		}
	}
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		err = readInto(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark results found (did the bench run fail?)")
	}

	if update {
		fresh, err := benchgate.Update(base, results)
		if err != nil {
			return err
		}
		f, err := os.Create(baselinePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := benchgate.WriteBaseline(f, fresh); err != nil {
			return err
		}
		fmt.Fprintf(out, "benchgate: baseline %s refreshed (%d benchmarks)\n", baselinePath, len(fresh.Benchmarks))
		return nil
	}

	violations := benchgate.Compare(base, results)
	if len(violations) == 0 {
		fmt.Fprintf(out, "benchgate: %d gated benchmarks within tolerance\n", len(base.Benchmarks))
		return nil
	}
	for _, v := range violations {
		fmt.Fprintln(out, v)
	}
	return fmt.Errorf("%d benchmark(s) regressed past the gate", len(violations))
}
