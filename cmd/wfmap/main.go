// Command wfmap solves workflow mapping problem instances read from JSON
// files (or stdin) and prints the optimal (or heuristic) mapping with its
// period, latency and Table 1 classification.
//
// Usage:
//
//	wfmap [-in instance.json] [-max-exhaustive-procs N] [-budget 100ms]
//	      [-parallelism N]
//	wfmap -pareto [-stream] [-in instance.json] [-budget 500ms]
//	wfmap -parallel [-budget 500ms] instance1.json instance2.json ...
//
// With -parallel the positional instance files are solved concurrently on
// the batch engine (one worker per CPU, memoized across duplicates) and a
// summary line is printed per instance. With -budget, NP-hard instances
// are solved by the anytime portfolio: the best mapping found within the
// budget is printed together with its certified optimality gap (in
// -parallel mode the budget covers the whole batch). With -pareto
// -stream each front point is printed the moment the sweep proves it
// final (long sweeps show progress instead of a silent wait), followed
// by a summary comment; the rows are identical to the buffered -pareto
// output. With -parallelism each exhaustive solve additionally
// partitions its own search across up to N workers sharing an atomic
// incumbent bound (-1 = all CPUs on instances large enough to benefit);
// the mapping printed is byte-identical to the serial one. The instance
// JSON format is specified in docs/wire-format.md; wfgen produces
// compatible files.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
)

func main() {
	in := flag.String("in", "-", "instance JSON file ('-' for stdin)")
	maxProcs := flag.Int("max-exhaustive-procs", 0, "override the exhaustive-search processor limit for NP-hard cells (0 = default)")
	pareto := flag.Bool("pareto", false, "print the full period/latency Pareto front instead of a single solution")
	stream := flag.Bool("stream", false, "with -pareto: print each front point as soon as the sweep proves it final, plus a trailing summary comment")
	parallel := flag.Bool("parallel", false, "solve the positional instance files concurrently on the batch engine")
	budget := flag.Duration("budget", 0, "anytime budget for NP-hard instances: return the best mapping found within this duration with a certified optimality gap (0 = exhaustive/heuristic)")
	parallelism := flag.Int("parallelism", 0, "per-solve search parallelism for exhaustive solves (0 or 1 = serial, n > 1 = n workers, negative = auto up to -n, -1 = all CPUs); results are byte-identical to serial")
	flag.Parse()

	opts := core.Options{
		MaxExhaustivePipelineProcs: *maxProcs,
		AnytimeBudget:              *budget,
		Parallelism:                *parallelism,
	}
	var err error
	switch {
	case *stream && !*pareto:
		err = fmt.Errorf("-stream requires -pareto")
	case *parallel:
		err = runBatch(flag.Args(), opts, os.Stdout)
	case *pareto:
		err = runPareto(*in, opts, *stream, os.Stdout)
	default:
		err = run(*in, opts, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfmap:", err)
		os.Exit(1)
	}
}

// runBatch solves the instance files concurrently and prints one summary
// line per instance, in input order.
func runBatch(paths []string, opts core.Options, out io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-parallel requires instance files as arguments")
	}
	problems := make([]core.Problem, len(paths))
	for i, path := range paths {
		pr, err := loadProblem(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		problems[i] = pr
	}
	sols, err := engine.SolveBatch(context.Background(), problems, opts)
	if err != nil {
		return err
	}
	instance.WriteSummary(out, paths, sols)
	return nil
}

// runPareto prints the trade-off curve of the instance, sweeping the
// candidate periods concurrently on the batch engine. A budget is a
// whole-sweep wall-clock target, split across the candidate solves
// (anytime solving on NP-hard instances). With stream set, each point
// is printed the moment the incremental sweep proves it final — the
// rows are identical to the buffered output, they just appear as the
// sweep progresses — followed by a summary comment line.
func runPareto(path string, opts core.Options, stream bool, out io.Writer) error {
	pr, err := loadProblem(path)
	if err != nil {
		return err
	}
	// Reject an unsweepable instance before anything reaches stdout, so
	// a failure never leaves a stray header row.
	if _, err := core.NormalizeSweep(pr); err != nil {
		return err
	}
	header := func() { fmt.Fprintf(out, "%-12s %-12s %-9s %s\n", "period", "latency", "exact", "mapping") }
	printPoint := func(sol core.Solution) {
		fmt.Fprintf(out, "%-12.6g %-12.6g %-9v %s\n", sol.Cost.Period, sol.Cost.Latency, sol.Exact, mappingOf(sol))
	}
	if stream {
		header()
		stats, err := engine.New(0).SweepFront(context.Background(), pr, opts, engine.SweepObserver{
			Point: func(p engine.SweepPoint) error {
				printPoint(p.Solution)
				return nil
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# %d points, %d/%d candidate periods explored\n", stats.Points, stats.Explored, stats.Total)
		return nil
	}
	front, err := engine.ParetoFront(context.Background(), pr, opts)
	if err != nil {
		return err
	}
	header()
	for _, sol := range front {
		printPoint(sol)
	}
	return nil
}

// mappingOf picks whichever mapping shape the solution carries.
func mappingOf(sol core.Solution) fmt.Stringer {
	switch {
	case sol.PipelineMapping != nil:
		return sol.PipelineMapping
	case sol.ForkMapping != nil:
		return sol.ForkMapping
	case sol.SPMapping != nil:
		return sol.SPMapping
	case sol.CommPipelineMapping != nil:
		return sol.CommPipelineMapping
	case sol.CommForkMapping != nil:
		return sol.CommForkMapping
	case sol.ForkJoinMapping != nil:
		return sol.ForkJoinMapping
	default:
		return nil
	}
}

// loadProblem reads and converts an instance file.
func loadProblem(path string) (core.Problem, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return core.Problem{}, err
		}
		defer f.Close()
		r = f
	}
	ins, err := instance.Read(r)
	if err != nil {
		return core.Problem{}, err
	}
	return ins.Problem()
}

func run(path string, opts core.Options, out io.Writer) error {
	pr, err := loadProblem(path)
	if err != nil {
		return err
	}
	sol, err := core.Solve(pr, opts)
	if err != nil {
		return err
	}
	cl := sol.Classification
	fmt.Fprintf(out, "objective:      %s\n", pr.Objective)
	if pr.Objective.Bounded() {
		fmt.Fprintf(out, "bound:          %g\n", pr.Bound)
	}
	fmt.Fprintf(out, "classification: %s (%s)\n", cl.Complexity, cl.Source)
	fmt.Fprintf(out, "method:         %s\n", sol.Method)
	if sol.Anytime {
		fmt.Fprintf(out, "gap:            <= %.4g%% (lower bound %g, %d candidates)\n",
			sol.Gap*100, sol.LowerBound, sol.Iterations)
	}
	if !sol.Feasible {
		fmt.Fprintf(out, "result:         infeasible under the given bound\n")
		if !sol.Exact {
			fmt.Fprintf(out, "note:           heuristic verdict — a feasible mapping may still exist\n")
		}
		return nil
	}
	exact := "exact optimum"
	if !sol.Exact {
		exact = "heuristic (upper bound)"
	}
	fmt.Fprintf(out, "result:         %s\n", exact)
	fmt.Fprintf(out, "period:         %g\n", sol.Cost.Period)
	fmt.Fprintf(out, "latency:        %g\n", sol.Cost.Latency)
	if sol.SPMapping != nil {
		fmt.Fprintf(out, "reduced:        %s\n", sol.SPMapping.Reduced)
	}
	if m := mappingOf(sol); m != nil {
		fmt.Fprintf(out, "mapping:        %s\n", m)
	}
	return nil
}
