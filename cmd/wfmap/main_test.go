package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSection2Instance(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-latency"
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"latency:        17", "Poly (DP)", "Theorem 3", "exact optimum"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunInfeasibleBound(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "latency-under-period",
		"bound": 0.5
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "infeasible") {
		t.Errorf("output missing infeasibility:\n%s", out.String())
	}
}

func TestRunForkInstance(t *testing.T) {
	path := writeTemp(t, `{
		"fork": {"root": 2, "weights": [1, 3]},
		"platform": {"speeds": [1, 1]},
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "period:         3") { // 6/2
		t.Errorf("unexpected output:\n%s", out.String())
	}
}

func TestRunPareto(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := runPareto(path, core.Options{}, false, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "period") || !strings.Contains(s, "17") || !strings.Contains(s, "8") {
		t.Errorf("pareto output missing frontier points:\n%s", s)
	}
	if err := runPareto(filepath.Join(t.TempDir(), "nope.json"), core.Options{}, false, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}

	// -stream prints the identical rows incrementally, plus a summary
	// comment reporting the sweep coverage.
	var streamed bytes.Buffer
	if err := runPareto(path, core.Options{}, true, &streamed); err != nil {
		t.Fatal(err)
	}
	ss := streamed.String()
	comment := ""
	if i := strings.Index(ss, "# "); i >= 0 {
		comment = ss[i:]
		ss = ss[:i]
	}
	if ss != s {
		t.Errorf("-stream rows diverge from the buffered output:\n%q\n%q", ss, s)
	}
	if !strings.Contains(comment, "points") || !strings.Contains(comment, "explored") {
		t.Errorf("missing sweep summary comment, got %q", comment)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), core.Options{}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
	bad := writeTemp(t, `{"objective": "min-period", "platform": {"speeds": [1]}}`)
	if err := run(bad, core.Options{}, &bytes.Buffer{}); err == nil {
		t.Error("graphless instance accepted")
	}
}

func TestRunBatchParallel(t *testing.T) {
	dir := t.TempDir()
	paths := make([]string, 3)
	for i, spec := range []string{
		`{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true, "objective": "min-latency"}`,
		`{"fork": {"root": 2, "weights": [1, 3]}, "platform": {"speeds": [1, 1]}, "objective": "min-period"}`,
		`{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true, "objective": "min-period"}`,
	} {
		paths[i] = filepath.Join(dir, fmt.Sprintf("inst%d.json", i))
		if err := os.WriteFile(paths[i], []byte(spec), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out bytes.Buffer
	if err := runBatch(paths, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	lines := strings.Count(s, "\n")
	if lines != 4 { // header + one line per instance
		t.Errorf("batch printed %d lines, want 4:\n%s", lines, s)
	}
	for _, want := range []string{"17", "inst0.json", "inst1.json", "inst2.json", "Poly"} {
		if !strings.Contains(s, want) {
			t.Errorf("batch output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBatchErrors(t *testing.T) {
	if err := runBatch(nil, core.Options{}, &bytes.Buffer{}); err == nil {
		t.Error("empty batch accepted")
	}
	if err := runBatch([]string{filepath.Join(t.TempDir(), "missing.json")}, core.Options{}, &bytes.Buffer{}); err == nil {
		t.Error("missing file accepted")
	}
}

// TestRunBudgetPrintsGap: -budget on an oversized NP-hard instance
// switches to the anytime portfolio and reports the certified gap.
func TestRunBudgetPrintsGap(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11]},
		"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1]},
		"allowDataParallel": true,
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{AnytimeBudget: 30 * time.Millisecond}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"method:         anytime", "gap:            <=", "lower bound"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunSPInstance: a series-parallel instance (none of the legacy wire
// shapes) solves through the CLI, printing the reduction kind and the
// block mapping.
func TestRunSPInstance(t *testing.T) {
	path := writeTemp(t, `{
		"sp": {"steps": [
			{"name": "load", "weight": 1},
			{"name": "left", "weight": 2, "after": ["load"]},
			{"name": "right", "weight": 3, "after": ["load", "left"]},
			{"name": "merge", "weight": 1, "after": ["left", "right"]}
		]},
		"platform": {"speeds": [1, 2]},
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"exact optimum", "reduced:        sp", "mapping:", "SP decomposition"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunCommInstance: a communication-aware pipeline on a fully
// homogeneous platform takes the polynomial one-port cell.
func TestRunCommInstance(t *testing.T) {
	path := writeTemp(t, `{
		"commPipeline": {"weights": [3, 1, 2], "data": [1, 2, 1, 1]},
		"platform": {"speeds": [1, 1], "bandwidth": {"uniform": 4}},
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := run(path, core.Options{}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"exact optimum", "mapping:", "Section 3.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestRunParetoSP: the Pareto sweep renders SP front points.
func TestRunParetoSP(t *testing.T) {
	path := writeTemp(t, `{
		"sp": {"steps": [
			{"name": "load", "weight": 1},
			{"name": "left", "weight": 2, "after": ["load"]},
			{"name": "right", "weight": 3, "after": ["load", "left"]},
			{"name": "merge", "weight": 1, "after": ["left", "right"]}
		]},
		"platform": {"speeds": [1, 2]},
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := runPareto(path, core.Options{}, false, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "period") || strings.Count(s, "\n") < 2 {
		t.Fatalf("pareto output has no front rows:\n%s", s)
	}
	if strings.Contains(s, "%!s") || strings.Contains(s, "<nil>") {
		t.Errorf("pareto output lost the sp mapping:\n%s", s)
	}
}
