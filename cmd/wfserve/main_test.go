package main

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/replay"
	"repliflow/internal/server"
)

func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", server.Config{
			DefaultTimeout: 30 * time.Second,
			MaxTimeout:     time.Minute,
			MaxBatch:       16,
		}, false, "", ready)
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(`{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-latency"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"latency": 17`) {
		t.Fatalf("solve: status %d, body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}

// TestShutdownDuringParetoStream: graceful shutdown must let an
// in-progress NDJSON stream finish its current line and write a
// terminal status line — never truncate mid-JSON. The instance's
// candidate solves run for multiples of the shutdown window, so without
// the drain the stream would be cut off.
func TestShutdownDuringParetoStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", server.Config{
			// Raised exhaustive limit: each candidate solve of the sweep
			// below runs for seconds, far beyond the shutdown window.
			Options: core.Options{MaxExhaustivePipelineProcs: 12},
			// Fast heartbeats commit the stream before the first point.
			StreamHeartbeat: 40 * time.Millisecond,
		}, false, "", ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post("http://"+addr.String()+"/v1/pareto", "application/json", strings.NewReader(`{
		"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11]},
		"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1]},
		"allowDataParallel": true,
		"timeoutMs": 120000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	reader := bufio.NewReader(resp.Body)
	first, err := reader.ReadString('\n')
	if err != nil {
		t.Fatalf("reading the first stream line: %v", err)
	}
	if !json.Valid([]byte(first)) {
		t.Fatalf("first line is not JSON: %q", first)
	}

	// SIGTERM equivalent while the stream is mid-sweep.
	cancel()

	var last string
	lines := []string{first}
	for {
		line, err := reader.ReadString('\n')
		if line != "" {
			lines = append(lines, line)
		}
		if err != nil {
			if err != io.EOF {
				t.Fatalf("stream error after shutdown: %v", err)
			}
			break
		}
	}
	for i, line := range lines {
		if !json.Valid([]byte(strings.TrimSpace(line))) {
			t.Fatalf("line %d truncated mid-JSON after shutdown: %q", i, line)
		}
		last = line
	}
	var term struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal([]byte(last), &term); err != nil || term.Status == "" {
		t.Fatalf("stream did not end with a terminal status line: %q (%v)", last, err)
	}
	if term.Status != "shutting-down" {
		t.Errorf("terminal status = %q, want shutting-down", term.Status)
	}

	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(8 * time.Second):
		t.Fatal("server did not shut down while a stream was open")
	}
}

// TestPprofOptIn: the /debug/pprof/ endpoints exist only under -pprof,
// and the solve API keeps working alongside them.
func TestPprofOptIn(t *testing.T) {
	for _, enabled := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		ready := make(chan net.Addr, 1)
		errc := make(chan error, 1)
		go func() {
			errc <- run(ctx, "127.0.0.1:0", server.Config{
				DefaultTimeout: 30 * time.Second,
			}, enabled, "", ready)
		}()
		var addr net.Addr
		select {
		case addr = <-ready:
		case err := <-errc:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatal("server never became ready")
		}
		base := "http://" + addr.String()

		resp, err := http.Get(base + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if enabled && resp.StatusCode != http.StatusOK {
			t.Errorf("pprof enabled: /debug/pprof/ status = %d, want 200", resp.StatusCode)
		}
		if !enabled && resp.StatusCode == http.StatusOK {
			t.Errorf("pprof disabled: /debug/pprof/ status = %d, want non-200", resp.StatusCode)
		}

		resp, err = http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz status = %d with pprof=%v", resp.StatusCode, enabled)
		}

		cancel()
		if err := <-errc; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}
}

// TestRunRecordsTrace: with a record path, every exchange lands in a
// decodable trace file once the server shuts down.
func TestRunRecordsTrace(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tracePath := filepath.Join(t.TempDir(), "trace.ndjson")
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", server.Config{
			DefaultTimeout: 30 * time.Second,
		}, false, tracePath, ready)
	}()
	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	resp, err = http.Post(base+"/v1/solve?client=rec-test", "application/json", strings.NewReader(`{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-latency"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	cancel()
	if err := <-errc; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := replay.DecodeTrace(f)
	if err != nil {
		t.Fatalf("decoding the recorded trace: %v", err)
	}
	if len(tr.Events) != 2 {
		t.Fatalf("recorded %d events, want 2", len(tr.Events))
	}
	if tr.Events[1].Client != "rec-test" {
		t.Errorf("recorded client = %q, want rec-test", tr.Events[1].Client)
	}
	if tr.Events[1].Status != http.StatusOK || !strings.Contains(tr.Events[1].Response, `"latency": 17`) {
		t.Errorf("recorded solve event: status %d, response %s", tr.Events[1].Status, tr.Events[1].Response)
	}
}

// TestParseWeights covers the -tenant-weights flag parser.
func TestParseWeights(t *testing.T) {
	got, err := parseWeights("interactive=4, batch=1")
	if err != nil {
		t.Fatal(err)
	}
	if got["interactive"] != 4 || got["batch"] != 1 || len(got) != 2 {
		t.Fatalf("parseWeights = %v", got)
	}
	if w, err := parseWeights(""); err != nil || w != nil {
		t.Fatalf("empty = %v, %v", w, err)
	}
	for _, bad := range []string{"x", "x=", "x=0", "x=-1", "=2", "x=two"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) accepted", bad)
		}
	}
}
