package main

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repliflow/internal/server"
)

func TestRunServesAndShutsDown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, "127.0.0.1:0", server.Config{
			DefaultTimeout: 30 * time.Second,
			MaxTimeout:     time.Minute,
			MaxBatch:       16,
		}, ready)
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr.String()

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	resp, err = http.Post(base+"/v1/solve", "application/json", strings.NewReader(`{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-latency"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"latency": 17`) {
		t.Fatalf("solve: status %d, body %s", resp.StatusCode, body)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}
}
