// Command wfserve serves repliflow solves over HTTP/JSON on the shared
// concurrent batch engine: requests are validated, canonicalized,
// deadline-bounded, coalesced through the engine's fingerprint cache and
// solved on a bounded worker pool.
//
// Usage:
//
//	wfserve [-addr :8080] [-workers N] [-max-inflight N]
//	        [-timeout 30s] [-max-timeout 5m] [-max-batch N]
//	        [-max-cache-entries N] [-max-exhaustive-procs N]
//	        [-budget 0] [-parallelism N] [-heartbeat 10s]
//	        [-max-jobs N] [-pprof]
//	        [-rate 0] [-burst 0] [-tenant-weights a=3,b=1]
//	        [-record trace.ndjson]
//	        [-store-dir DIR] [-lease-ttl 15s]
//
// -workers sizes the engine's solve-slot pool: the total number of
// solves running concurrently across all requests. -parallelism sets
// the default number of workers one exhaustive solve may additionally
// partition itself across (requests override it via the parallelism
// field). The two compose without oversubscription: a solve only gains
// intra-solve workers by claiming idle slots from the same -workers
// pool, so a loaded server degrades every solve to serial rather than
// running workers x parallelism goroutines.
//
// Endpoints (bodies documented in docs/wire-format.md):
//
//	POST /v1/solve        solve one instance
//	POST /v1/solve/batch  solve many instances concurrently, deduplicated
//	POST /v1/pareto       stream the period/latency front as NDJSON,
//	                      each point as soon as it is proven
//	POST /v1/jobs         submit an async solve/batch/pareto job
//	GET  /v1/jobs/{id}    job progress and results (DELETE cancels)
//	GET  /v1/classify     Table 1 cell metadata for one dispatch cell
//	GET  /v1/table        metadata for every registered cell
//	GET  /healthz         liveness
//	GET  /metrics         Prometheus metrics (requests, cache, latency)
//
// -rate enables multi-tenant admission control: each client (identified
// by the X-Client-Id header or ?client= query parameter) gets a token
// bucket refilling at -rate tokens/second with -burst capacity, and
// requests are debited by solver cost (polynomial cells cost 1,
// budgeted anytime solves 4, NP-hard exhaustive solves 16; batches sum,
// Pareto sweeps multiply by 4). Over-budget requests get 429 with a
// Retry-After header. -tenant-weights biases the fair queue that hands
// out solve slots under contention (weights shape scheduling only, not
// rate limits).
//
// -store-dir makes the server durable: every async job transition and
// every completed NP-hard solve result is written through to an
// append-only, periodically compacted log in that directory (see
// docs/wire-format.md "Store files"). A wfserve restarted on the same
// directory — even after a kill -9 — resumes the interrupted jobs it
// finds there (a partial Pareto front is preloaded, never shrinking),
// serves finished jobs that were evicted from memory, and answers
// repeated NP-hard solves from the persisted result store instead of
// re-proving them. Non-terminal jobs carry leases of -lease-ttl; a
// lease left to expire marks the work orphaned and adoptable. Without
// -store-dir state lives in bounded process memory only, the
// pre-durability behavior.
//
// -record appends every HTTP exchange (request, response, arrival
// offset, client id) to a versioned NDJSON trace file that cmd/wfreplay
// can replay deterministically against another build — see
// docs/wire-format.md "Trace files".
//
// With -pprof the Go profiling endpoints are additionally served under
// /debug/pprof/ (see docs/performance.md for a profiling walkthrough);
// they are off by default because they expose process internals.
//
// On SIGINT/SIGTERM the server drains: in-flight solves are cancelled,
// streaming responses finish their current line and append a terminal
// status line (never truncating mid-JSON), async jobs record
// cancellation, and the listener closes once the handlers return.
//
// Try it:
//
//	wfserve &
//	curl -s localhost:8080/v1/solve -d '{
//	  "pipeline": {"weights": [14, 4, 2, 4]},
//	  "platform": {"speeds": [1, 1, 1]},
//	  "allowDataParallel": true,
//	  "objective": "min-latency"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/replay"
	"repliflow/internal/server"
	"repliflow/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "engine worker count (0 = GOMAXPROCS)")
	inflight := flag.Int("max-inflight", 0, "max concurrently solving requests (0 = 2x workers)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request solve deadline")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "upper clamp on request-supplied deadlines")
	maxBatch := flag.Int("max-batch", 4096, "max instances per batch request")
	maxCache := flag.Int("max-cache-entries", 0, "engine cache bound, epoch-evicted on overflow (0 = 65536)")
	maxProcs := flag.Int("max-exhaustive-procs", 0, "override the exhaustive-search processor limits (pipeline and fork) for NP-hard cells (0 = defaults)")
	budget := flag.Duration("budget", 0, "default anytime budget for NP-hard solves: return a certified incumbent within this duration instead of searching exhaustively (0 = disabled; requests opt in via budgetMs)")
	parallelism := flag.Int("parallelism", 0, "default per-solve search parallelism for exhaustive solves (0 or 1 = serial, n > 1 = up to n workers, negative = auto); extra workers come from idle -workers slots, so the engine pool is never oversubscribed")
	heartbeat := flag.Duration("heartbeat", 0, "idle interval between heartbeat status lines on streaming responses (0 = 10s)")
	maxJobs := flag.Int("max-jobs", 0, "bound on the in-memory async job store (0 = 64)")
	pprofOn := flag.Bool("pprof", false, "serve the Go profiling endpoints under /debug/pprof/ (off by default: they expose process internals)")
	rate := flag.Float64("rate", 0, "per-client admission rate in cost tokens per second (0 = admission control disabled); see docs/wire-format.md for per-endpoint costs")
	burst := flag.Float64("burst", 0, "per-client token bucket capacity (0 = 64, four exhaustive solves)")
	weightsFlag := flag.String("tenant-weights", "", "comma-separated client=weight pairs biasing the fair queue (e.g. interactive=4,batch=1); unlisted clients weigh 1")
	record := flag.String("record", "", "append every HTTP exchange to this NDJSON trace file for later wfreplay")
	storeDir := flag.String("store-dir", "", "directory for durable job and result persistence (append-only compacted log); a restart on the same directory resumes interrupted jobs (empty = in-memory only)")
	leaseTTL := flag.Duration("lease-ttl", 0, "how long a non-terminal job lease lasts before the work counts as orphaned and adoptable (0 = 15s)")
	flag.Parse()

	weights, err := parseWeights(*weightsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfserve:", err)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:         *workers,
		MaxInFlight:     *inflight,
		DefaultTimeout:  *timeout,
		MaxTimeout:      *maxTimeout,
		MaxBatch:        *maxBatch,
		MaxCacheEntries: *maxCache,
		DefaultBudget:   *budget,
		StreamHeartbeat: *heartbeat,
		MaxJobs:         *maxJobs,
		RateLimit:       *rate,
		Burst:           *burst,
		TenantWeights:   weights,
		LeaseTTL:        *leaseTTL,
		Options: core.Options{
			MaxExhaustivePipelineProcs: *maxProcs,
			MaxExhaustiveForkProcs:     *maxProcs,
			Parallelism:                *parallelism,
		},
	}
	var disk *store.DiskStore
	if *storeDir != "" {
		disk, err = store.OpenDisk(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wfserve: opening store:", err)
			os.Exit(1)
		}
		cfg.Store = disk
		log.Printf("wfserve: durable store at %s", *storeDir)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	runErr := run(ctx, *addr, cfg, *pprofOn, *record, nil)
	stop()
	if disk != nil {
		// Closed after run returns so the drain's final job writes land,
		// then the log is compacted to a clean snapshot.
		if err := disk.Close(); err != nil && runErr == nil {
			runErr = fmt.Errorf("closing store: %w", err)
		}
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "wfserve:", runErr)
		os.Exit(1)
	}
}

// parseWeights parses "client=weight,client=weight" into the tenant
// weight map; an empty string means no weights.
func parseWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	weights := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad -tenant-weights entry %q (want client=weight)", pair)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad -tenant-weights weight %q for client %q (want a positive integer)", val, name)
		}
		weights[name] = w
	}
	return weights, nil
}

// run listens on addr and serves until ctx is cancelled (SIGINT/SIGTERM
// in production), then drains in-flight requests gracefully. When ready
// is non-nil it receives the bound address once the listener is up.
// pprofOn opt-in mounts the net/http/pprof handlers under /debug/pprof/.
// A non-empty recordPath appends every API exchange to that trace file
// (pprof traffic is never recorded).
func run(ctx context.Context, addr string, cfg server.Config, pprofOn bool, recordPath string, ready chan<- net.Addr) error {
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	var handler http.Handler = srv
	var rec *replay.Recorder
	if recordPath != "" {
		f, err := os.OpenFile(recordPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			ln.Close() //nolint:errcheck
			return fmt.Errorf("opening trace file: %w", err)
		}
		defer f.Close() //nolint:errcheck
		rec = replay.NewRecorder(handler, f)
		handler = rec
		log.Printf("wfserve: recording traffic to %s", recordPath)
	}
	if pprofOn {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/", handler)
		handler = mux
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Printf("wfserve: listening on %s (workers=%d)", ln.Addr(), srv.Engine().Workers())
	if ready != nil {
		ready <- ln.Addr()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("wfserve: shutting down")
	// Drain order matters for streaming responses: srv.Close cancels the
	// in-flight solve contexts, so a /v1/pareto stream finishes its
	// current NDJSON line and appends a terminal status line instead of
	// being truncated mid-JSON when the Shutdown deadline fires; Shutdown
	// then waits for those (now fast) handlers to return.
	srv.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if rec != nil {
		if err := rec.Err(); err != nil {
			return fmt.Errorf("recording trace: %w", err)
		}
	}
	return nil
}
