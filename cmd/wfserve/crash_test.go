package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"os/signal"
	"strings"
	"syscall"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/server"
	"repliflow/internal/store"
)

// crashChildEnv carries the store directory into the re-exec'd child.
// When set, the test binary behaves as a real wfserve on that directory
// instead of running the test suite — the only way to exercise kill -9
// recovery, which cannot be simulated in-process.
const crashChildEnv = "WFSERVE_CRASH_CHILD_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		crashChild(dir)
		return
	}
	os.Exit(m.Run())
}

// crashChild runs the production run() loop over a disk store, printing
// the bound address on stdout for the parent. It exits 0 on a clean
// SIGTERM drain; a SIGKILL from the parent bypasses all of this, which
// is the point.
func crashChild(dir string) {
	st, err := store.OpenDisk(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	cfg := server.Config{
		Store: st,
		// Raised exhaustive limit: each sweep candidate solves long
		// enough that the parent reliably kills us mid-sweep.
		Options: core.Options{MaxExhaustivePipelineProcs: 10},
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ready := make(chan net.Addr, 1)
	go func() {
		fmt.Printf("WFSERVE_ADDR=%s\n", <-ready)
	}()
	err = run(ctx, "127.0.0.1:0", cfg, false, "", ready)
	if cerr := st.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// startCrashChild re-execs this test binary as a wfserve over dir and
// waits for it to report its listen address.
func startCrashChild(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "WFSERVE_ADDR="); ok {
			go io.Copy(io.Discard, stdout) //nolint:errcheck
			return cmd, "http://" + addr
		}
	}
	cmd.Process.Kill() //nolint:errcheck
	cmd.Wait()         //nolint:errcheck
	t.Fatalf("child never reported its address (scan err %v)", sc.Err())
	return nil, ""
}

// jobView is the slice of the job wire format the crash test asserts on.
type jobView struct {
	ID       string `json:"id"`
	Status   string `json:"status"`
	Progress struct {
		Points int `json:"points"`
	} `json:"progress"`
	Front []json.RawMessage `json:"front"`
}

func crashJobTerminal(j jobView) bool {
	return j.Status == "done" || j.Status == "failed" || j.Status == "canceled"
}

// pollCrashJob polls GET /v1/jobs/{id} until cond holds, tolerating
// transient connection errors while a child is coming up.
func pollCrashJob(t *testing.T, base, id, what string, cond func(jobView) bool) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var last jobView
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET job %s: status %d, body %s", id, resp.StatusCode, body)
			}
			if err := json.Unmarshal(body, &last); err != nil {
				t.Fatalf("GET job %s: bad body %s: %v", id, body, err)
			}
			if cond(last) {
				return last
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; last view %+v", what, last)
	return last
}

// TestCrashRecoveryAcrossKill is the Go mirror of CI's crash-recovery
// job: submit a long pareto sweep to a durable wfserve, SIGKILL the
// process mid-sweep, restart it on the same directory, and require the
// job to resume to completion with a front at least as long as the
// partial one proven before the kill.
func TestCrashRecoveryAcrossKill(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs the test binary")
	}
	dir := t.TempDir()

	child1, base1 := startCrashChild(t, dir)
	resp, err := http.Post(base1+"/v1/jobs", "application/json", strings.NewReader(`{
		"kind": "pareto",
		"instance": {
			"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9]},
			"platform": {"speeds": [5, 4, 3, 3, 2, 2, 1, 1, 4, 2]},
			"allowDataParallel": true
		},
		"timeoutMs": 120000
	}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, body %s", resp.StatusCode, body)
	}
	var sub jobView
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}

	// Kill as soon as the sweep has proven (and persisted) at least one
	// point. On a machine fast enough to finish first, the test degrades
	// to restart-serves-terminal-job — the assertions below still hold.
	pre := pollCrashJob(t, base1, sub.ID, "first front point", func(j jobView) bool {
		return j.Progress.Points >= 1 || crashJobTerminal(j)
	})
	if err := child1.Process.Kill(); err != nil { // SIGKILL: no drain, no flush
		t.Fatal(err)
	}
	child1.Wait() //nolint:errcheck // expected: killed

	child2, base2 := startCrashChild(t, dir)
	defer func() {
		if err := child2.Process.Signal(syscall.SIGTERM); err != nil {
			t.Error(err)
			return
		}
		if err := child2.Wait(); err != nil {
			t.Errorf("restarted child did not drain cleanly: %v", err)
		}
	}()

	fin := pollCrashJob(t, base2, sub.ID, "terminal after restart", crashJobTerminal)
	if fin.Status != "done" {
		t.Fatalf("resumed job finished %q, want done", fin.Status)
	}
	if len(fin.Front) == 0 || len(fin.Front) < pre.Progress.Points {
		t.Fatalf("front shrank across the kill: %d points, had %d before",
			len(fin.Front), pre.Progress.Points)
	}
	for i, raw := range fin.Front {
		if !json.Valid(raw) {
			t.Fatalf("front point %d is not valid JSON: %s", i, raw)
		}
	}
}
