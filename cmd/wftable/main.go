// Command wftable regenerates the artifacts of Benoit & Robert (RR-6308):
//
//   - Figures 1 and 2 (the pipeline and fork application graphs),
//   - the Section 2 worked example (every hand-derived number, including
//     the two documented discrepancies),
//   - Table 1, with every cell verified empirically: polynomial cells by
//     agreement between the paper's algorithm and exhaustive search,
//     NP-hard cells by exact-vs-heuristic comparison,
//   - the five NP-hardness reductions (iff-property on random instances),
//   - the registry cells beyond Table 1: the series-parallel and
//     communication-aware kinds with their classifications.
//
// Usage:
//
//	wftable [-trials N] [-seed S] [-skip-table1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repliflow/internal/core"
	"repliflow/internal/table"
	"repliflow/internal/workflow"
)

func main() {
	trials := flag.Int("trials", 10, "random instances per Table 1 cell and per reduction")
	seed := flag.Int64("seed", 1, "random seed")
	skipTable1 := flag.Bool("skip-table1", false, "skip the Table 1 verification (slowest part)")
	workers := flag.Int("workers", 0, "verify Table 1 cells concurrently with this many workers (0 = sequential)")
	flag.Parse()
	runWorkers(os.Stdout, *trials, *seed, *skipTable1, *workers)
}

func runWorkers(out io.Writer, trials int, seed int64, skipTable1 bool, workers int) {
	verify := func() []table.Evidence {
		if workers > 0 {
			return table.VerifyTable1Parallel(seed, trials, workers)
		}
		return table.VerifyTable1(seed, trials)
	}
	runWith(out, trials, seed, skipTable1, verify)
}

func run(out io.Writer, trials int, seed int64, skipTable1 bool) {
	runWith(out, trials, seed, skipTable1, func() []table.Evidence {
		return table.VerifyTable1(seed, trials)
	})
}

func runWith(out io.Writer, trials int, seed int64, skipTable1 bool, verify func() []table.Evidence) {
	fmt.Fprintln(out, "=== Figure 1: the application pipeline (example: Section 2 weights) ===")
	fmt.Fprintln(out, workflow.NewPipeline(14, 4, 2, 4).Render())
	fmt.Fprintln(out, "=== Figure 2: the application fork ===")
	fmt.Fprintln(out, workflow.NewFork(2, 1, 3, 5).Render())

	fmt.Fprintln(out, "=== Section 2 worked example ===")
	fmt.Fprintln(out, table.RenderSection2(table.Section2Report()))

	if !skipTable1 {
		fmt.Fprintln(out, "=== Table 1: complexity map, verified cell by cell ===")
		fmt.Fprintln(out, table.RenderTable1(verify()))
	}

	fmt.Fprintln(out, "=== NP-hardness reductions ===")
	fmt.Fprintln(out, table.RenderReductions(table.VerifyReductions(seed, trials)))

	fmt.Fprintln(out, "=== Heuristic quality on NP-hard cells ===")
	fmt.Fprintln(out, table.RenderGaps(table.MeasureHeuristicGaps(seed, trials)))

	fmt.Fprintln(out, "=== Registry: cells beyond Table 1 ===")
	renderRegistry(out)
}

// renderRegistry lists every registered cell outside the paper's three
// simplified-model kinds — the series-parallel and communication-aware
// kinds added behind the capability registry — with its classification.
func renderRegistry(out io.Writer) {
	legacy := map[workflow.Kind]bool{
		workflow.KindPipeline: true, workflow.KindFork: true, workflow.KindForkJoin: true,
	}
	for _, key := range core.RegisteredCells() {
		if legacy[key.Kind] {
			continue
		}
		cl := core.ClassifyCell(key)
		fmt.Fprintf(out, "%-70s %-8s %s\n", key, cl.Complexity, cl.Source)
	}
}
