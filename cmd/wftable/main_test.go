package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunProducesAllSections(t *testing.T) {
	var out bytes.Buffer
	run(&out, 2, 1, false)
	s := out.String()
	for _, want := range []string{
		"Figure 1", "Figure 2",
		"Section 2 worked example",
		"Table 1", "NP-hard", "Poly",
		"NP-hardness reductions", "Theorem 9",
		"refuted", // the two documented discrepancies
		"cells beyond Table 1", "sp/", "comm-pipeline/", "comm-fork/",
		"SP decomposition", "Section 3.2", "Section 3.3",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunParallelWorkers(t *testing.T) {
	var out bytes.Buffer
	runWorkers(&out, 1, 5, false, 8)
	if !strings.Contains(out.String(), "Table 1") {
		t.Error("parallel run missing Table 1")
	}
}

func TestRunSkipTable1(t *testing.T) {
	var out bytes.Buffer
	run(&out, 2, 1, true)
	if strings.Contains(out.String(), "verified cell by cell") {
		t.Error("Table 1 printed despite -skip-table1")
	}
	if !strings.Contains(out.String(), "NP-hardness reductions") {
		t.Error("reductions section missing")
	}
}
