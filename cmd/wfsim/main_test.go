package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSimulatePipelineInstance(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [2, 2, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-period"
	}`)
	var out bytes.Buffer
	if err := run(path, 500, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "analytic period") || !strings.Contains(s, "simulated steady period") {
		t.Errorf("missing report lines:\n%s", s)
	}
}

func TestSimulateForkInstance(t *testing.T) {
	path := writeTemp(t, `{
		"fork": {"root": 2, "weights": [3, 6]},
		"platform": {"speeds": [1, 2]},
		"objective": "min-latency"
	}`)
	var out bytes.Buffer
	if err := run(path, 300, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "simulated max latency") {
		t.Errorf("missing latency line:\n%s", out.String())
	}
}

func TestSimulateForkJoinInstance(t *testing.T) {
	// A fork-join whose latency-optimal mapping keeps the join stage apart
	// from the root block: root on the fast node, heavy leaves spread out.
	path := writeTemp(t, `{
		"forkjoin": {"root": 1, "join": 1, "weights": [6, 6, 6]},
		"platform": {"speeds": [2, 2, 2]},
		"objective": "min-latency"
	}`)
	var out bytes.Buffer
	err := run(path, 200, &out)
	if err != nil {
		// The only acceptable failure is the documented unsupported shape.
		if !strings.Contains(err.Error(), "root's block") {
			t.Fatalf("unexpected error: %v", err)
		}
		return
	}
	if !strings.Contains(out.String(), "simulated max latency") {
		t.Errorf("missing latency line:\n%s", out.String())
	}
}

func TestSimulateRejectsInfeasible(t *testing.T) {
	path := writeTemp(t, `{
		"pipeline": {"weights": [10]},
		"platform": {"speeds": [1]},
		"objective": "latency-under-period",
		"bound": 0.1
	}`)
	if err := run(path, 100, &bytes.Buffer{}); err == nil {
		t.Error("infeasible instance accepted")
	}
}
