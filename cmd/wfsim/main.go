// Command wfsim solves a problem instance, then validates the analytic
// period/latency of the returned mapping against the discrete-event
// simulator of internal/sim: it reports the simulated steady-state period
// under saturated input and the maximum latency under input paced at the
// analytic period.
//
// Usage:
//
//	wfsim [-in instance.json] [-datasets N]
//
// The instance JSON format is specified in docs/wire-format.md.
// Fork-join instances are supported unless the solved mapping places the
// join stage in the root's block (a shape the simulator rejects).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repliflow/internal/core"
	"repliflow/internal/instance"
	"repliflow/internal/sim"
)

func main() {
	in := flag.String("in", "-", "instance JSON file ('-' for stdin)")
	datasets := flag.Int("datasets", 2000, "number of data sets to simulate")
	flag.Parse()

	if err := run(*in, *datasets, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfsim:", err)
		os.Exit(1)
	}
}

func run(path string, datasets int, out io.Writer) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ins, err := instance.Read(r)
	if err != nil {
		return err
	}
	pr, err := ins.Problem()
	if err != nil {
		return err
	}
	sol, err := core.Solve(pr, core.Options{})
	if err != nil {
		return err
	}
	if !sol.Feasible {
		return errors.New("instance is infeasible under the given bound; nothing to simulate")
	}

	var saturated, paced sim.Trace
	switch {
	case sol.PipelineMapping != nil:
		saturated, err = sim.SimulatePipeline(*pr.Pipeline, pr.Platform, *sol.PipelineMapping, sim.Arrivals(datasets, 0))
		if err == nil {
			paced, err = sim.SimulatePipeline(*pr.Pipeline, pr.Platform, *sol.PipelineMapping, sim.Arrivals(datasets, sol.Cost.Period))
		}
	case sol.ForkMapping != nil:
		saturated, err = sim.SimulateFork(*pr.Fork, pr.Platform, *sol.ForkMapping, sim.Arrivals(datasets, 0))
		if err == nil {
			paced, err = sim.SimulateFork(*pr.Fork, pr.Platform, *sol.ForkMapping, sim.Arrivals(datasets, sol.Cost.Period))
		}
	case sol.ForkJoinMapping != nil:
		saturated, err = sim.SimulateForkJoin(*pr.ForkJoin, pr.Platform, *sol.ForkJoinMapping, sim.Arrivals(datasets, 0))
		if err == nil {
			paced, err = sim.SimulateForkJoin(*pr.ForkJoin, pr.Platform, *sol.ForkJoinMapping, sim.Arrivals(datasets, sol.Cost.Period))
		}
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "mapping:                  %s\n", sol)
	fmt.Fprintf(out, "analytic period:          %g\n", sol.Cost.Period)
	fmt.Fprintf(out, "simulated steady period:  %g  (saturated input, %d data sets)\n", saturated.SteadyStatePeriod(), datasets)
	fmt.Fprintf(out, "analytic latency:         %g\n", sol.Cost.Latency)
	fmt.Fprintf(out, "simulated max latency:    %g  (input paced at the analytic period)\n", paced.MaxLatency())
	return nil
}
