// Command wfgen generates random workflow mapping problem instances in
// the JSON format consumed by wfmap, wfsim and wfserve, specified in
// docs/wire-format.md.
//
// Usage:
//
//	wfgen -kind pipeline|fork|forkjoin|sp|comm-pipeline|comm-fork
//	      [-n stages] [-p procs] [-maxw W] [-maxs S]
//	      [-depth D] [-fanout F] [-hom-graph] [-hom-platform]
//	      [-dp] [-objective min-period] [-bound B] [-seed N] [-out file]
//	      [-count N] [-parallel]
//
// -kind sp generates a random series-parallel-style DAG with n steps,
// bounded by -depth levels and -fanout predecessors per step. The two
// communication-aware kinds additionally carry random data sizes on
// every edge plus a platform bandwidth description: uniform with
// -hom-platform, full per-link tables otherwise.
//
// With -count N a batch of N instances is generated (seeds seed..seed+N-1);
// for a file output the index is appended to the name (inst.json ->
// inst_000.json). With -parallel the generated batch is additionally solved
// concurrently on the batch engine and a summary line is printed per
// instance — a fast sanity pass over freshly generated corpora.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/fullmodel"
	"repliflow/internal/instance"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func main() {
	kind := flag.String("kind", "pipeline", "graph kind: pipeline, fork, forkjoin, sp, comm-pipeline or comm-fork")
	n := flag.Int("n", 4, "number of stages (pipeline/sp) or leaves (fork/forkjoin)")
	p := flag.Int("p", 4, "number of processors")
	maxW := flag.Int("maxw", 10, "maximum integer stage weight (and data size for comm kinds)")
	maxS := flag.Int("maxs", 5, "maximum integer processor speed (and bandwidth for comm kinds)")
	depth := flag.Int("depth", 4, "sp: maximum number of DAG levels")
	fanout := flag.Int("fanout", 3, "sp: maximum predecessors per step")
	homGraph := flag.Bool("hom-graph", false, "make all (leaf) stage weights identical")
	homPlat := flag.Bool("hom-platform", false, "make all processor speeds identical (and the bandwidth uniform for comm kinds)")
	dp := flag.Bool("dp", false, "allow data-parallelism")
	objective := flag.String("objective", "min-period", "objective name")
	bound := flag.Float64("bound", 0, "threshold for bounded objectives")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	count := flag.Int("count", 1, "number of instances to generate (seeds seed..seed+count-1)")
	parallel := flag.Bool("parallel", false, "solve the generated batch concurrently and print a summary per instance")
	flag.Parse()

	if err := run(*kind, *n, *p, *maxW, *maxS, *depth, *fanout, *homGraph, *homPlat, *dp, *objective, *bound, *seed, *out, *count, *parallel, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

// randomData returns k random integer data sizes in [1, maxW].
func randomData(rng *rand.Rand, k, maxW int) []float64 {
	d := make([]float64, k)
	for i := range d {
		d[i] = float64(1 + rng.Intn(maxW))
	}
	return d
}

// randomBandwidth describes the interconnect of a comm instance: uniform
// with hom set, full per-link tables otherwise.
func randomBandwidth(rng *rand.Rand, p, maxS int, hom bool) *fullmodel.Bandwidth {
	if hom {
		return &fullmodel.Bandwidth{Uniform: float64(1 + rng.Intn(maxS))}
	}
	bw := &fullmodel.Bandwidth{
		Links: make([][]float64, p),
		In:    randomData(rng, p, maxS),
		Out:   randomData(rng, p, maxS),
	}
	for u := range bw.Links {
		bw.Links[u] = randomData(rng, p, maxS)
		bw.Links[u][u] = 0
	}
	return bw
}

// generate builds one random problem from the given rng and parameters.
func generate(rng *rand.Rand, kind string, n, p, maxW, maxS, depth, fanout int, homGraph, homPlat, dp bool, bound float64) (core.Problem, error) {
	pr := core.Problem{AllowDataParallel: dp, Bound: bound}
	if dp {
		switch kind {
		case "sp", "comm-pipeline", "comm-fork":
			return core.Problem{}, fmt.Errorf("kind %q has no data-parallel mapping model", kind)
		}
	}
	if homPlat {
		pr.Platform = platform.Homogeneous(p, float64(1+rng.Intn(maxS)))
	} else {
		pr.Platform = platform.Random(rng, p, maxS)
	}
	switch kind {
	case "pipeline":
		var g workflow.Pipeline
		if homGraph {
			g = workflow.HomogeneousPipeline(n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomPipeline(rng, n, maxW)
		}
		pr.Pipeline = &g
	case "fork":
		var g workflow.Fork
		if homGraph {
			g = workflow.HomogeneousFork(float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomFork(rng, n, maxW)
		}
		pr.Fork = &g
	case "forkjoin":
		var g workflow.ForkJoin
		if homGraph {
			g = workflow.HomogeneousForkJoin(float64(1+rng.Intn(maxW)), float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomForkJoin(rng, n, maxW)
		}
		pr.ForkJoin = &g
	case "sp":
		g := workflow.RandomSP(rng, n, maxW, depth, fanout)
		if homGraph {
			w := float64(1 + rng.Intn(maxW))
			for i := range g.Steps {
				g.Steps[i].Weight = w
			}
		}
		pr.SP = &g
	case "comm-pipeline":
		g := fullmodel.NewPipeline(randomData(rng, n, maxW), randomData(rng, n+1, maxW))
		if homGraph {
			w := float64(1 + rng.Intn(maxW))
			for i := range g.Weights {
				g.Weights[i] = w
			}
		}
		pr.CommPipeline = &g
		pr.Bandwidth = randomBandwidth(rng, p, maxS, homPlat)
	case "comm-fork":
		g := fullmodel.Fork{
			Root:    float64(1 + rng.Intn(maxW)),
			In:      float64(1 + rng.Intn(maxW)),
			Out0:    float64(1 + rng.Intn(maxW)),
			Weights: randomData(rng, n, maxW),
			Outs:    randomData(rng, n, maxW),
		}
		if homGraph {
			w := float64(1 + rng.Intn(maxW))
			for i := range g.Weights {
				g.Weights[i] = w
			}
		}
		pr.CommFork = &g
		pr.Bandwidth = randomBandwidth(rng, p, maxS, homPlat)
	default:
		return core.Problem{}, fmt.Errorf("unknown kind %q (want pipeline, fork, forkjoin, sp, comm-pipeline or comm-fork)", kind)
	}
	return pr, nil
}

// batchPath derives the output path of instance i in a batch: a single
// instance keeps the exact name, a batch appends the index before the
// extension.
func batchPath(out string, i, count int) string {
	if out == "-" || count <= 1 {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s_%03d%s", strings.TrimSuffix(out, ext), i, ext)
}

func run(kind string, n, p, maxW, maxS, depth, fanout int, homGraph, homPlat, dp bool, objective string, bound float64, seed int64, out string, count int, parallel bool, sum io.Writer) error {
	obj, err := instance.ParseObjective(objective)
	if err != nil {
		return err
	}
	if count < 1 {
		return fmt.Errorf("count must be >= 1, got %d", count)
	}
	if bound != 0 && !obj.Bounded() {
		return fmt.Errorf("-bound requires a bounded objective (latency-under-period or period-under-latency), got %q", objective)
	}
	if obj.Bounded() && bound <= 0 {
		return fmt.Errorf("objective %q requires a positive -bound", objective)
	}

	problems := make([]core.Problem, count)
	names := make([]string, count)
	for i := 0; i < count; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		pr, err := generate(rng, kind, n, p, maxW, maxS, depth, fanout, homGraph, homPlat, dp, bound)
		if err != nil {
			return err
		}
		// The summary solve must use the requested objective, exactly as
		// wfmap will when reading the generated file.
		pr.Objective = obj
		problems[i] = pr

		ins := instance.FromProblem(pr)
		ins.Objective = objective
		names[i] = batchPath(out, i, count)
		var w io.Writer = os.Stdout
		if names[i] != "-" {
			f, err := os.Create(names[i])
			if err != nil {
				return err
			}
			if err := instance.Write(f, ins); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			continue
		}
		if err := instance.Write(w, ins); err != nil {
			return err
		}
	}

	if !parallel {
		return nil
	}
	// Sanity pass: solve the whole batch concurrently and summarize.
	sols, err := engine.SolveBatch(context.Background(), problems, core.Options{})
	if err != nil {
		return err
	}
	for i, name := range names {
		if name == "-" {
			names[i] = fmt.Sprintf("seed %d", seed+int64(i))
		}
	}
	instance.WriteSummary(sum, names, sols)
	return nil
}
