// Command wfgen generates random workflow mapping problem instances in
// the JSON format consumed by wfmap, wfsim and wfserve, specified in
// docs/wire-format.md.
//
// Usage:
//
//	wfgen -kind pipeline|fork|forkjoin [-n stages] [-p procs]
//	      [-maxw W] [-maxs S] [-hom-graph] [-hom-platform]
//	      [-dp] [-objective min-period] [-bound B] [-seed N] [-out file]
//	      [-count N] [-parallel]
//
// With -count N a batch of N instances is generated (seeds seed..seed+N-1);
// for a file output the index is appended to the name (inst.json ->
// inst_000.json). With -parallel the generated batch is additionally solved
// concurrently on the batch engine and a summary line is printed per
// instance — a fast sanity pass over freshly generated corpora.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func main() {
	kind := flag.String("kind", "pipeline", "graph kind: pipeline, fork or forkjoin")
	n := flag.Int("n", 4, "number of stages (pipeline) or leaves (fork/forkjoin)")
	p := flag.Int("p", 4, "number of processors")
	maxW := flag.Int("maxw", 10, "maximum integer stage weight")
	maxS := flag.Int("maxs", 5, "maximum integer processor speed")
	homGraph := flag.Bool("hom-graph", false, "make all (leaf) stage weights identical")
	homPlat := flag.Bool("hom-platform", false, "make all processor speeds identical")
	dp := flag.Bool("dp", false, "allow data-parallelism")
	objective := flag.String("objective", "min-period", "objective name")
	bound := flag.Float64("bound", 0, "threshold for bounded objectives")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	count := flag.Int("count", 1, "number of instances to generate (seeds seed..seed+count-1)")
	parallel := flag.Bool("parallel", false, "solve the generated batch concurrently and print a summary per instance")
	flag.Parse()

	if err := run(*kind, *n, *p, *maxW, *maxS, *homGraph, *homPlat, *dp, *objective, *bound, *seed, *out, *count, *parallel, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

// generate builds one random problem from the given rng and parameters.
func generate(rng *rand.Rand, kind string, n, p, maxW, maxS int, homGraph, homPlat, dp bool, bound float64) (core.Problem, error) {
	pr := core.Problem{AllowDataParallel: dp, Bound: bound}
	if homPlat {
		pr.Platform = platform.Homogeneous(p, float64(1+rng.Intn(maxS)))
	} else {
		pr.Platform = platform.Random(rng, p, maxS)
	}
	switch kind {
	case "pipeline":
		var g workflow.Pipeline
		if homGraph {
			g = workflow.HomogeneousPipeline(n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomPipeline(rng, n, maxW)
		}
		pr.Pipeline = &g
	case "fork":
		var g workflow.Fork
		if homGraph {
			g = workflow.HomogeneousFork(float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomFork(rng, n, maxW)
		}
		pr.Fork = &g
	case "forkjoin":
		var g workflow.ForkJoin
		if homGraph {
			g = workflow.HomogeneousForkJoin(float64(1+rng.Intn(maxW)), float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomForkJoin(rng, n, maxW)
		}
		pr.ForkJoin = &g
	default:
		return core.Problem{}, fmt.Errorf("unknown kind %q (want pipeline, fork or forkjoin)", kind)
	}
	return pr, nil
}

// batchPath derives the output path of instance i in a batch: a single
// instance keeps the exact name, a batch appends the index before the
// extension.
func batchPath(out string, i, count int) string {
	if out == "-" || count <= 1 {
		return out
	}
	ext := filepath.Ext(out)
	return fmt.Sprintf("%s_%03d%s", strings.TrimSuffix(out, ext), i, ext)
}

func run(kind string, n, p, maxW, maxS int, homGraph, homPlat, dp bool, objective string, bound float64, seed int64, out string, count int, parallel bool, sum io.Writer) error {
	obj, err := instance.ParseObjective(objective)
	if err != nil {
		return err
	}
	if count < 1 {
		return fmt.Errorf("count must be >= 1, got %d", count)
	}
	if bound != 0 && !obj.Bounded() {
		return fmt.Errorf("-bound requires a bounded objective (latency-under-period or period-under-latency), got %q", objective)
	}
	if obj.Bounded() && bound <= 0 {
		return fmt.Errorf("objective %q requires a positive -bound", objective)
	}

	problems := make([]core.Problem, count)
	names := make([]string, count)
	for i := 0; i < count; i++ {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		pr, err := generate(rng, kind, n, p, maxW, maxS, homGraph, homPlat, dp, bound)
		if err != nil {
			return err
		}
		// The summary solve must use the requested objective, exactly as
		// wfmap will when reading the generated file.
		pr.Objective = obj
		problems[i] = pr

		ins := instance.FromProblem(pr)
		ins.Objective = objective
		names[i] = batchPath(out, i, count)
		var w io.Writer = os.Stdout
		if names[i] != "-" {
			f, err := os.Create(names[i])
			if err != nil {
				return err
			}
			if err := instance.Write(f, ins); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			continue
		}
		if err := instance.Write(w, ins); err != nil {
			return err
		}
	}

	if !parallel {
		return nil
	}
	// Sanity pass: solve the whole batch concurrently and summarize.
	sols, err := engine.SolveBatch(context.Background(), problems, core.Options{})
	if err != nil {
		return err
	}
	for i, name := range names {
		if name == "-" {
			names[i] = fmt.Sprintf("seed %d", seed+int64(i))
		}
	}
	instance.WriteSummary(sum, names, sols)
	return nil
}
