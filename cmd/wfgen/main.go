// Command wfgen generates random workflow mapping problem instances in the
// JSON format consumed by wfmap and wfsim.
//
// Usage:
//
//	wfgen -kind pipeline|fork|forkjoin [-n stages] [-p procs]
//	      [-maxw W] [-maxs S] [-hom-graph] [-hom-platform]
//	      [-dp] [-objective min-period] [-bound B] [-seed N] [-out file]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repliflow/internal/core"
	"repliflow/internal/instance"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func main() {
	kind := flag.String("kind", "pipeline", "graph kind: pipeline, fork or forkjoin")
	n := flag.Int("n", 4, "number of stages (pipeline) or leaves (fork/forkjoin)")
	p := flag.Int("p", 4, "number of processors")
	maxW := flag.Int("maxw", 10, "maximum integer stage weight")
	maxS := flag.Int("maxs", 5, "maximum integer processor speed")
	homGraph := flag.Bool("hom-graph", false, "make all (leaf) stage weights identical")
	homPlat := flag.Bool("hom-platform", false, "make all processor speeds identical")
	dp := flag.Bool("dp", false, "allow data-parallelism")
	objective := flag.String("objective", "min-period", "objective name")
	bound := flag.Float64("bound", 0, "threshold for bounded objectives")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output file ('-' for stdout)")
	flag.Parse()

	if err := run(*kind, *n, *p, *maxW, *maxS, *homGraph, *homPlat, *dp, *objective, *bound, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "wfgen:", err)
		os.Exit(1)
	}
}

func run(kind string, n, p, maxW, maxS int, homGraph, homPlat, dp bool, objective string, bound float64, seed int64, out string) error {
	if _, err := instance.ParseObjective(objective); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))

	pr := core.Problem{AllowDataParallel: dp, Bound: bound}
	if homPlat {
		pr.Platform = platform.Homogeneous(p, float64(1+rng.Intn(maxS)))
	} else {
		pr.Platform = platform.Random(rng, p, maxS)
	}
	switch kind {
	case "pipeline":
		var g workflow.Pipeline
		if homGraph {
			g = workflow.HomogeneousPipeline(n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomPipeline(rng, n, maxW)
		}
		pr.Pipeline = &g
	case "fork":
		var g workflow.Fork
		if homGraph {
			g = workflow.HomogeneousFork(float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomFork(rng, n, maxW)
		}
		pr.Fork = &g
	case "forkjoin":
		var g workflow.ForkJoin
		if homGraph {
			g = workflow.HomogeneousForkJoin(float64(1+rng.Intn(maxW)), float64(1+rng.Intn(maxW)), n, float64(1+rng.Intn(maxW)))
		} else {
			g = workflow.RandomForkJoin(rng, n, maxW)
		}
		pr.ForkJoin = &g
	default:
		return fmt.Errorf("unknown kind %q (want pipeline, fork or forkjoin)", kind)
	}

	ins := instance.FromProblem(pr)
	ins.Objective = objective

	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return instance.Write(w, ins)
}
