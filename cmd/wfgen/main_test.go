package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/instance"
)

func TestGenerateAllKinds(t *testing.T) {
	for _, kind := range []string{"pipeline", "fork", "forkjoin"} {
		for _, homGraph := range []bool{false, true} {
			for _, homPlat := range []bool{false, true} {
				path := filepath.Join(t.TempDir(), "out.json")
				err := run(kind, 4, 3, 9, 5, 4, 3, homGraph, homPlat, true, "min-period", 0, 7, path, 1, false, io.Discard)
				if err != nil {
					t.Fatalf("%s: %v", kind, err)
				}
				f, err := os.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				ins, err := instance.Read(f)
				f.Close()
				if err != nil {
					t.Fatalf("%s: generated unreadable instance: %v", kind, err)
				}
				pr, err := ins.Problem()
				if err != nil {
					t.Fatalf("%s: generated invalid instance: %v", kind, err)
				}
				if _, err := core.Solve(pr, core.Options{}); err != nil {
					t.Fatalf("%s: generated unsolvable instance: %v", kind, err)
				}
				if homPlat && !pr.Platform.IsHomogeneous() {
					t.Errorf("%s: -hom-platform produced het platform", kind)
				}
			}
		}
	}
}

// TestGenerateSPAndCommCorpus is the regression corpus for the new
// kinds: every generated instance must survive the strict decoder,
// validate, and solve end to end — with the mapping of the right shape
// attached and, on exact solves, gap 0.
func TestGenerateSPAndCommCorpus(t *testing.T) {
	for _, kind := range []string{"sp", "comm-pipeline", "comm-fork"} {
		for _, homPlat := range []bool{false, true} {
			dir := t.TempDir()
			out := filepath.Join(dir, "inst.json")
			err := run(kind, 5, 3, 9, 5, 3, 2, false, homPlat, false, "min-period", 0, 11, out, 4, false, io.Discard)
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			for i := 0; i < 4; i++ {
				path := filepath.Join(dir, fmt.Sprintf("inst_%03d.json", i))
				f, err := os.Open(path)
				if err != nil {
					t.Fatal(err)
				}
				ins, err := instance.Read(f)
				f.Close()
				if err != nil {
					t.Fatalf("%s: generated unreadable instance: %v", kind, err)
				}
				pr, err := ins.Problem()
				if err != nil {
					t.Fatalf("%s: generated invalid instance: %v", kind, err)
				}
				sol, err := core.Solve(pr, core.Options{})
				if err != nil {
					t.Fatalf("%s: generated unsolvable instance: %v", kind, err)
				}
				switch {
				case kind == "sp" && sol.SPMapping == nil,
					kind == "comm-pipeline" && sol.CommPipelineMapping == nil,
					kind == "comm-fork" && sol.CommForkMapping == nil:
					t.Errorf("%s: solution carries no %s mapping: %+v", kind, kind, sol)
				}
				if sol.Exact && sol.Gap != 0 {
					t.Errorf("%s: exact solve with gap %g", kind, sol.Gap)
				}
			}
		}
	}
}

func TestGenerateSPRejectsDataParallel(t *testing.T) {
	for _, kind := range []string{"sp", "comm-pipeline", "comm-fork"} {
		err := run(kind, 4, 3, 9, 5, 4, 3, false, false, true, "min-period", 0, 1, "-", 1, false, io.Discard)
		if err == nil || !strings.Contains(err.Error(), "data-parallel") {
			t.Errorf("%s: -dp accepted: %v", kind, err)
		}
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if err := run("dag", 4, 3, 9, 5, 4, 3, false, false, false, "min-period", 0, 1, "-", 1, false, io.Discard); err == nil ||
		!strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("bad kind accepted: %v", err)
	}
	if err := run("pipeline", 4, 3, 9, 5, 4, 3, false, false, false, "maximize-joy", 0, 1, "-", 1, false, io.Discard); err == nil {
		t.Error("bad objective accepted")
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.json")
	p2 := filepath.Join(dir, "b.json")
	if err := run("pipeline", 5, 4, 9, 5, 4, 3, false, false, true, "min-latency", 0, 42, p1, 1, false, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run("pipeline", 5, 4, 9, 5, 4, 3, false, false, true, "min-latency", 0, 42, p2, 1, false, io.Discard); err != nil {
		t.Fatal(err)
	}
	a, _ := os.ReadFile(p1)
	b, _ := os.ReadFile(p2)
	if string(a) != string(b) {
		t.Error("same seed produced different instances")
	}
}

func TestGenerateBatchCount(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "batch.json")
	var sum bytes.Buffer
	if err := run("pipeline", 3, 3, 9, 5, 4, 3, false, false, true, "min-period", 0, 5, out, 4, true, &sum); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		path := filepath.Join(dir, fmt.Sprintf("batch_%03d.json", i))
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("batch file %d missing: %v", i, err)
		}
		ins, err := instance.Read(f)
		f.Close()
		if err != nil {
			t.Fatalf("batch file %d unreadable: %v", i, err)
		}
		if _, err := ins.Problem(); err != nil {
			t.Fatalf("batch file %d invalid: %v", i, err)
		}
	}
	s := sum.String()
	if lines := strings.Count(s, "\n"); lines != 5 { // header + 4 instances
		t.Errorf("summary printed %d lines, want 5:\n%s", lines, s)
	}
	if !strings.Contains(s, "batch_000.json") {
		t.Errorf("summary missing instance name:\n%s", s)
	}
}

func TestGenerateBatchRejectsBadCount(t *testing.T) {
	if err := run("pipeline", 3, 3, 9, 5, 4, 3, false, false, false, "min-period", 0, 1, "-", 0, false, io.Discard); err == nil {
		t.Error("count 0 accepted")
	}
}
