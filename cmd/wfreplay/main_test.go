package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repliflow/internal/replay"
	"repliflow/internal/server"
)

// writeTrace records a tiny exchange through the recording middleware
// and writes the trace file wfreplay will replay.
func writeTrace(t *testing.T, backend http.Handler) string {
	t.Helper()
	var buf bytes.Buffer
	rec := replay.NewRecorder(backend, &buf)
	recTS := httptest.NewServer(rec)
	defer recTS.Close()

	resp, err := http.Get(recTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	req, err := http.NewRequest(http.MethodPost, recTS.URL+"/v1/solve", strings.NewReader(
		`{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true, "objective": "min-latency"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(server.ClientIDHeader, "demo")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "trace.ndjson")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReplayCLI(t *testing.T) {
	srv := server.New(server.Config{DefaultTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	path := writeTrace(t, srv)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-trace", path, "-target", ts.URL, "-json"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{`"events": 2`, `"mismatches": 0`, `"throughputRps"`} {
		if !strings.Contains(out, want) {
			t.Errorf("stats missing %s:\n%s", want, out)
		}
	}

	// Text mode against the same trace.
	stdout.Reset()
	if code := run([]string{"-trace", path, "-target", ts.URL}, &stdout, &stderr); code != 0 {
		t.Fatalf("text mode exit = %d", code)
	}
	if !strings.Contains(stdout.String(), "mismatches       0") {
		t.Errorf("text stats:\n%s", stdout.String())
	}
}

func TestReplayCLIErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("missing -trace: exit = %d", code)
	}
	if !strings.Contains(stderr.String(), "-trace is required") {
		t.Errorf("stderr: %s", stderr.String())
	}

	stderr.Reset()
	if code := run([]string{"-trace", "does-not-exist.ndjson"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing file: exit = %d", code)
	}

	// A trace whose recorded body cannot match → exit 1.
	srv := server.New(server.Config{DefaultTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	bad := filepath.Join(t.TempDir(), "bad.ndjson")
	trace := `{"trace":"wfreplay/v1"}
{"seq":1,"offsetMs":0,"method":"GET","path":"/healthz","status":200,"response":"{\"status\":\"down\"}"}
`
	if err := os.WriteFile(bad, []byte(trace), 0o644); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	stdout.Reset()
	if code := run([]string{"-trace", bad, "-target", ts.URL}, &stdout, &stderr); code != 1 {
		t.Fatalf("mismatching trace: exit = %d, stderr %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "diverged") {
		t.Errorf("stderr: %s", stderr.String())
	}
}
