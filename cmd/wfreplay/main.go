// Command wfreplay replays a wfserve traffic trace (recorded with
// `wfserve -record`) against a live server and diffs every response
// against the recording — the differential-regression half of the
// record/replay harness.
//
// Usage:
//
//	wfreplay -trace trace.ndjson [-target http://127.0.0.1:8080]
//	         [-timing compressed|real] [-speed 1.0]
//	         [-tolerance 0.25] [-json]
//
// Requests are re-issued serially in trace order with the recorded
// X-Client-Id, so each lands in the same admission bucket it was
// recorded under. -timing compressed (the default) fires each request
// as soon as the previous completes; -timing real reproduces the
// recorded arrival offsets scaled by -speed. Responses from exact cells
// must match the recording byte-for-byte after stripping volatile
// fields (elapsed times, cache counters); anytime solutions pass when
// the replayed optimality gap is within -tolerance of the recorded one.
//
// The exit status is 0 when every event matched, 1 on any mismatch, and
// 2 on usage or transport errors. Stats (throughput, latency
// percentiles, status histogram, 429 counts) print to stdout — human
// readable by default, a JSON document with -json.
//
// Try it:
//
//	wfserve -record /tmp/trace.ndjson &
//	curl -s localhost:8080/v1/solve -H 'X-Client-Id: demo' -d '{
//	  "pipeline": {"weights": [14, 4, 2, 4]},
//	  "platform": {"speeds": [1, 1, 1]},
//	  "allowDataParallel": true
//	}'
//	kill %1 && wait
//	wfserve -addr :8081 & sleep 0.2
//	wfreplay -trace /tmp/trace.ndjson -target http://127.0.0.1:8081
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"

	"repliflow/internal/replay"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wfreplay", flag.ContinueOnError)
	fs.SetOutput(stderr)
	tracePath := fs.String("trace", "", "trace file to replay (required)")
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the server to replay against")
	timing := fs.String("timing", "compressed", "request pacing: compressed (back-to-back) or real (recorded offsets)")
	speed := fs.Float64("speed", 1, "real-timing speedup factor (2 = twice as fast)")
	tolerance := fs.Float64("tolerance", replay.DefaultGapTolerance, "allowed worsening of anytime optimality gaps vs the recording")
	jsonOut := fs.Bool("json", false, "print stats as a JSON document instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *tracePath == "" {
		fmt.Fprintln(stderr, "wfreplay: -trace is required")
		fs.Usage()
		return 2
	}

	f, err := os.Open(*tracePath)
	if err != nil {
		fmt.Fprintln(stderr, "wfreplay:", err)
		return 2
	}
	tr, err := replay.DecodeTrace(f)
	f.Close() //nolint:errcheck
	if err != nil {
		fmt.Fprintln(stderr, "wfreplay:", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	stats, err := replay.Replay(ctx, tr, *target, replay.Options{
		Timing:       replay.Timing(*timing),
		Speed:        *speed,
		GapTolerance: *tolerance,
	})
	if err != nil {
		fmt.Fprintln(stderr, "wfreplay:", err)
		return 2
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(stats); err != nil {
			fmt.Fprintln(stderr, "wfreplay:", err)
			return 2
		}
	} else {
		printStats(stdout, stats)
	}
	if stats.Mismatches > 0 {
		fmt.Fprintf(stderr, "wfreplay: %d of %d events diverged from the recording\n", stats.Mismatches, stats.Events)
		return 1
	}
	return 0
}

func printStats(w io.Writer, s *replay.Stats) {
	fmt.Fprintf(w, "events           %d\n", s.Events)
	fmt.Fprintf(w, "mismatches       %d\n", s.Mismatches)
	fmt.Fprintf(w, "skipped volatile %d\n", s.SkippedVolatile)
	fmt.Fprintf(w, "429 divergences  %d\n", s.RateLimitDivergences)
	fmt.Fprintf(w, "429 responses    %d\n", s.RateLimited)
	fmt.Fprintf(w, "duration         %.1f ms\n", s.DurationMs)
	fmt.Fprintf(w, "throughput       %.1f req/s\n", s.ThroughputRPS)
	fmt.Fprintf(w, "latency p50/p99  %.2f / %.2f ms\n", s.LatencyP50Ms, s.LatencyP99Ms)
	statuses := make([]string, 0, len(s.StatusCounts))
	for code := range s.StatusCounts {
		statuses = append(statuses, code)
	}
	sort.Strings(statuses)
	for _, code := range statuses {
		fmt.Fprintf(w, "status %s       %d\n", code, s.StatusCounts[code])
	}
	for _, d := range s.Diffs {
		fmt.Fprintf(w, "diff: event %d %s field %q: recorded %s, replayed %s\n",
			d.Seq, d.Path, d.Field, d.Recorded, d.Replayed)
	}
}
