package repliflow_test

import (
	"context"
	"fmt"
	"time"

	"repliflow"
)

// ExampleSolve reproduces the Section 2 optimum: minimum latency of the
// pipeline (14, 4, 2, 4) on three unit-speed processors with
// data-parallelism.
func ExampleSolve() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	sol, err := repliflow.Solve(repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
		Objective:         repliflow.MinLatency,
	}, repliflow.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("period=%g latency=%g\n", sol.Cost.Period, sol.Cost.Latency)
	fmt.Println(sol.PipelineMapping)
	// Output:
	// period=10 latency=17
	// [S1 data-parallel on P1,P2] [S2..S4 replicated on P3]
}

// ExampleClassify shows the Table 1 classification of an instance.
func ExampleClassify() {
	pipe := repliflow.HomogeneousPipeline(4, 2)
	plat := repliflow.NewPlatform(1, 2, 3)
	cl, err := repliflow.Classify(repliflow.Problem{
		Pipeline:  &pipe,
		Platform:  plat,
		Objective: repliflow.MinPeriod,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s by %s\n", cl.Complexity, cl.Source)
	// Output:
	// Poly (*) by Theorem 7
}

// ExampleEvalPipeline evaluates a hand-built mapping under the Section 3.4
// cost model — here the paper's heterogeneous-platform mapping with
// period 5 and latency 13.5.
func ExampleEvalPipeline() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.NewPlatform(2, 2, 1, 1)
	m := repliflow.PipelineMapping{Intervals: []repliflow.PipelineInterval{
		repliflow.NewPipelineInterval(0, 0, repliflow.DataParallel, 0, 1),
		repliflow.NewPipelineInterval(1, 3, repliflow.Replicated, 2, 3),
	}}
	c, err := repliflow.EvalPipeline(pipe, plat, m)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(c)
	// Output:
	// period=5 latency=13.5
}

// ExampleSolveBatch solves several instances concurrently. Duplicate
// instances (here the first and last) are detected through the engine's
// fingerprint cache and solved once; solutions align with the input by
// index.
func ExampleSolveBatch() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	base := repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
	}
	minLatency, minPeriod := base, base
	minLatency.Objective = repliflow.MinLatency
	minPeriod.Objective = repliflow.MinPeriod

	sols, err := repliflow.SolveBatch(context.Background(),
		[]repliflow.Problem{minLatency, minPeriod, minLatency}, repliflow.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, sol := range sols {
		fmt.Println(sol.Cost)
	}
	// Output:
	// period=10 latency=17
	// period=8 latency=24
	// period=10 latency=17
}

// ExampleLookupSolver inspects the solver registry: the dispatch cell of
// an instance resolves to the algorithm, exactness and paper result that
// Solve would use on it.
func ExampleLookupSolver() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	key := repliflow.CellKeyOf(repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
		Objective:         repliflow.MinLatency,
	})
	entry, ok := repliflow.LookupSolver(key)
	if !ok {
		fmt.Println("no solver for", key)
		return
	}
	fmt.Println(key)
	fmt.Printf("%v, exact=%v, by %s\n", entry.Method, entry.Exact, entry.Source)
	// Output:
	// pipeline/hom-platform/het-graph/dp/min-latency
	// dynamic-programming, exact=true, by Theorem 3
}

// ExampleParetoFront sweeps the latency/throughput trade-off of the
// Section 2 instance.
func ExampleParetoFront() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.HomogeneousPlatform(3, 1)
	front, err := repliflow.ParetoFront(repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
	}, repliflow.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, sol := range front {
		fmt.Printf("period=%g latency=%g\n", sol.Cost.Period, sol.Cost.Latency)
	}
	// Output:
	// period=8 latency=24
	// period=10 latency=17
}

// ExampleSolve_anytimeBudget solves an NP-hard instance (heterogeneous
// platform, data-parallelism: Theorem 5 cell, 18 stages on 16
// processors) under a 50ms anytime budget: the portfolio returns its
// best incumbent with a certified optimality gap instead of searching
// exhaustively.
func ExampleSolve_anytimeBudget() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11, 3, 5, 9, 4, 6, 7)
	plat := repliflow.NewPlatform(2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1, 2, 3, 1, 2)
	sol, err := repliflow.Solve(repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
		Objective:         repliflow.MinPeriod,
	}, repliflow.Options{AnytimeBudget: 50 * time.Millisecond})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// The exact gap value depends on the budget race; the certification
	// invariants do not.
	fmt.Println("anytime:", sol.Anytime)
	fmt.Println("feasible:", sol.Feasible)
	fmt.Println("gap is finite and non-negative:", sol.Gap >= 0 && sol.Gap < 1e12)
	fmt.Println("lower bound positive:", sol.LowerBound > 0)
	// Output:
	// anytime: true
	// feasible: true
	// gap is finite and non-negative: true
	// lower bound positive: true
}

// ExamplePrepare shows the prepared-solver layer: repeated solves of one
// NP-hard instance that differ only in the objective's bound share
// preprocessing, DP scratch and per-bound memos, returning exactly what
// SolveContext would.
func ExamplePrepare() {
	pipe := repliflow.NewPipeline(14, 4, 2, 4)
	plat := repliflow.NewPlatform(3, 2, 1) // heterogeneous + DP: NP-hard (Theorem 5)
	pr := repliflow.Problem{
		Pipeline:          &pipe,
		Platform:          plat,
		AllowDataParallel: true,
	}
	ps, ok := repliflow.Prepare(pr, repliflow.Options{})
	if !ok {
		fmt.Println("no prepared capability for this instance")
		return
	}
	ctx := context.Background()
	for _, bound := range []float64{3, 6, 9} {
		sol, err := ps.Solve(ctx, repliflow.LatencyUnderPeriod, bound)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("period <= %g: feasible=%v latency=%g\n", bound, sol.Feasible, sol.Cost.Latency)
	}
	// Output:
	// period <= 3: feasible=false latency=0
	// period <= 6: feasible=true latency=8
	// period <= 9: feasible=true latency=8
}
