package exhaustive

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The partitioned parallel scans promise byte-identical results to the
// serial enumerations for every worker count. These corpora force the
// parallel paths (SetParallelism on prepared solvers bypasses core's
// crossover heuristic) and compare whole results — mapping, cost and
// found flag — against fresh serial solvers with reflect.DeepEqual.

// TestParallelShardsTileEnumeration pins the foundation the
// deterministic merge rests on: the shards of shardPartitions, scanned
// in shard index order, visit exactly the serial enumeration's mapping
// sequence — same mappings, same costs, same order.
func TestParallelShardsTileEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0

		type visit struct {
			m mapping.ForkMapping
			c mapping.Cost
		}
		var serial []visit
		newForkEnum(f, pl, dp).run(ctx, func(m mapping.ForkMapping, c mapping.Cost) bool {
			serial = append(serial, visit{copyForkMapping(m), c})
			return true
		})

		var sharded []visit
		e := newForkEnum(f, pl, dp)
		for _, sh := range shardPartitions(f.Leaves()+1, pl.Processors(), 2+rng.Intn(30)) {
			e.runFrom(ctx, sh.assign, sh.used, func(m mapping.ForkMapping, c mapping.Cost) bool {
				sharded = append(sharded, visit{copyForkMapping(m), c})
				return true
			})
		}
		if !reflect.DeepEqual(serial, sharded) {
			t.Fatalf("trial %d: shards do not tile the serial enumeration (%d serial vs %d sharded visits) for %v on %v dp=%v",
				trial, len(serial), len(sharded), f, pl, dp)
		}
	}
}

// TestParallelForkScanIdentity: the partitioned fork scan returns
// byte-identical results to the serial scan, across objectives, bounds
// and worker counts.
func TestParallelForkScanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		dp := trial%2 == 0
		par := 2 + rng.Intn(3)
		b := float64(1+rng.Intn(8)) / 2

		check := func(name string, solve func(fp *ForkPrepared) (ForkResult, bool, error)) {
			t.Helper()
			sp := NewForkPrepared(f, pl, dp)
			want, wantOK, err := solve(sp)
			if err != nil {
				t.Fatal(err)
			}
			pp := NewForkPrepared(f, pl, dp)
			pp.SetParallelism(par)
			got, gotOK, err := solve(pp)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s par=%d: parallel (%v, %v) != serial (%v, %v) for %v on %v dp=%v",
					trial, name, par, got, gotOK, want, wantOK, f, pl, dp)
			}
		}
		check("period", func(fp *ForkPrepared) (ForkResult, bool, error) { return fp.Period(ctx) })
		check("latency", func(fp *ForkPrepared) (ForkResult, bool, error) { return fp.Latency(ctx) })
		check("lup", func(fp *ForkPrepared) (ForkResult, bool, error) { return fp.LatencyUnderPeriod(ctx, b) })
		check("pul", func(fp *ForkPrepared) (ForkResult, bool, error) { return fp.PeriodUnderLatency(ctx, b) })
	}
}

// TestParallelForkJoinScanIdentity is the fork-join mirror of
// TestParallelForkScanIdentity.
func TestParallelForkJoinScanIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ctx := context.Background()
	for trial := 0; trial < 12; trial++ {
		fj := workflow.RandomForkJoin(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0
		par := 2 + rng.Intn(3)
		b := float64(1+rng.Intn(8)) / 2

		check := func(name string, solve func(fp *ForkJoinPrepared) (ForkJoinResult, bool, error)) {
			t.Helper()
			sp := NewForkJoinPrepared(fj, pl, dp)
			want, wantOK, err := solve(sp)
			if err != nil {
				t.Fatal(err)
			}
			pp := NewForkJoinPrepared(fj, pl, dp)
			pp.SetParallelism(par)
			got, gotOK, err := solve(pp)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s par=%d: parallel (%v, %v) != serial (%v, %v) for %v on %v dp=%v",
					trial, name, par, got, gotOK, want, wantOK, fj, pl, dp)
			}
		}
		check("period", func(fp *ForkJoinPrepared) (ForkJoinResult, bool, error) { return fp.Period(ctx) })
		check("latency", func(fp *ForkJoinPrepared) (ForkJoinResult, bool, error) { return fp.Latency(ctx) })
		check("lup", func(fp *ForkJoinPrepared) (ForkJoinResult, bool, error) { return fp.LatencyUnderPeriod(ctx, b) })
		check("pul", func(fp *ForkJoinPrepared) (ForkJoinResult, bool, error) { return fp.PeriodUnderLatency(ctx, b) })
	}
}

// TestParallelPipelineSweepIdentity: the level-synchronous parallel DP
// sweep fills a table bit-equal to the serial recursion's — same values,
// same recorded choices, so the same reconstructed mapping — across
// objectives, period caps and worker counts. A second solve on the same
// prepared instance exercises the epoch reset under the sweep.
func TestParallelPipelineSweepIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(6), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		dp := trial%2 == 0
		par := 2 + rng.Intn(3)
		b := float64(1+rng.Intn(8)) / 2

		check := func(name string, solve func(pp *PipelinePrepared) (PipelineResult, bool, error)) {
			t.Helper()
			sp := NewPipelinePrepared(p, pl, dp)
			want, wantOK, err := solve(sp)
			if err != nil {
				t.Fatal(err)
			}
			pp := NewPipelinePrepared(p, pl, dp)
			pp.SetParallelism(par)
			got, gotOK, err := solve(pp)
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s par=%d: parallel (%v, %v) != serial (%v, %v) for %v on %v dp=%v",
					trial, name, par, got, gotOK, want, wantOK, p, pl, dp)
			}
		}
		check("period", func(pp *PipelinePrepared) (PipelineResult, bool, error) { return pp.Period(ctx) })
		check("latency", func(pp *PipelinePrepared) (PipelineResult, bool, error) { return pp.Latency(ctx) })
		check("lup", func(pp *PipelinePrepared) (PipelineResult, bool, error) { return pp.LatencyUnderPeriod(ctx, b) })
		check("pul", func(pp *PipelinePrepared) (PipelineResult, bool, error) { return pp.PeriodUnderLatency(ctx, b) })
		check("lup-then-period", func(pp *PipelinePrepared) (PipelineResult, bool, error) {
			if _, _, err := pp.LatencyUnderPeriod(ctx, b); err != nil {
				return PipelineResult{}, false, err
			}
			return pp.Period(ctx)
		})
	}
}

// TestParallelScanCancellationPrompt: cancelling the context of a
// partitioned scan must stop every shard worker promptly — the solve on
// an instance whose full scan takes seconds returns with ctx.Err() in a
// small fraction of that. The infeasible period bound makes accept
// reject everything, so neither the incumbent bound nor the anytime
// lower bound can end the scan early on its own.
func TestParallelScanCancellationPrompt(t *testing.T) {
	f := workflow.NewFork(5, 7, 3, 9, 4, 6, 2, 8)
	pl := platform.New(5, 4, 3, 2, 1)
	fp := NewForkPrepared(f, pl, true)
	fp.SetParallelism(4)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, found, err := fp.LatencyUnderPeriod(ctx, 0.01)
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled parallel scan returned (found=%v, err=%v), want context.Canceled", found, err)
	}
	// The full scan runs for seconds; a prompt stop is orders of
	// magnitude faster even under the race detector.
	if elapsed > 3*time.Second {
		t.Fatalf("parallel scan took %v to honor cancellation", elapsed)
	}
}
