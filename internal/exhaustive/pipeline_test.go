package exhaustive

import (
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

var example = workflow.NewPipeline(14, 4, 2, 4)

func TestSection2HomOptimalPeriod(t *testing.T) {
	// On 3 identical unit-speed processors the optimal period is 8
	// (replicate everything), with or without data-parallelism (Lemma 1).
	pl := platform.Homogeneous(3, 1)
	for _, allowDP := range []bool{false, true} {
		res, ok := PipelinePeriod(example, pl, allowDP)
		if !ok {
			t.Fatal("no mapping found")
		}
		if !numeric.Eq(res.Cost.Period, 8) {
			t.Errorf("allowDP=%v: period = %v, want 8 (mapping %v)", allowDP, res.Cost.Period, res.Mapping)
		}
	}
}

func TestSection2HomOptimalLatency(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	// Without data-parallelism every mapping has latency 24 (Theorem 2).
	res, ok := PipelineLatency(example, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 24) {
		t.Errorf("latency without DP = %v, want 24", res.Cost.Latency)
	}
	// With data-parallelism the optimum is 17 (Section 2).
	res, ok = PipelineLatency(example, pl, true)
	if !ok || !numeric.Eq(res.Cost.Latency, 17) {
		t.Errorf("latency with DP = %v, want 17 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
}

func TestSection2HetOptimalPeriod(t *testing.T) {
	// The paper claims period 5 is optimal on speeds 2,2,1,1 "as can be
	// checked by an exhaustive exploration", but under its own Section 3.4
	// model the mapping [S1,S2 replicated on P1,P2][S3,S4 replicated on
	// P3,P4] achieves 18/(2*2) = 4.5. Our exhaustive search finds that
	// optimum; the discrepancy is documented in EXPERIMENTS.md.
	pl := platform.New(2, 2, 1, 1)
	res, ok := PipelinePeriod(example, pl, true)
	if !ok || !numeric.Eq(res.Cost.Period, 4.5) {
		t.Errorf("period = %v, want 4.5 (mapping %v)", res.Cost.Period, res.Mapping)
	}
	// The paper's claimed-optimal value must remain achievable.
	if numeric.Greater(res.Cost.Period, 5) {
		t.Errorf("optimal period %v worse than the paper's claimed 5", res.Cost.Period)
	}
}

func TestSection2HetOptimalLatency(t *testing.T) {
	// The paper claims minimum latency 14/5 + 10 = 12.8, but that already
	// contradicts its own Theorem 6 (whole pipeline on a fastest processor:
	// 24/2 = 12). The true optimum under the Section 3.4 model is
	// 14/4 + 10/2 = 8.5 (S1 data-parallel on {P2,P3,P4}, the rest on P1).
	// See EXPERIMENTS.md.
	pl := platform.New(2, 2, 1, 1)
	res, ok := PipelineLatency(example, pl, true)
	if !ok || !numeric.Eq(res.Cost.Latency, 8.5) {
		t.Errorf("latency = %v, want 8.5 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
	// Without data-parallelism, Theorem 6 applies: 24/2 = 12.
	res, ok = PipelineLatency(example, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 12) {
		t.Errorf("latency without DP = %v, want 12 (Theorem 6)", res.Cost.Latency)
	}
}

func TestSingleProcessorSingleStage(t *testing.T) {
	p := workflow.NewPipeline(6)
	pl := platform.New(2)
	res, ok := PipelinePeriod(p, pl, true)
	if !ok || !numeric.Eq(res.Cost.Period, 3) || !numeric.Eq(res.Cost.Latency, 3) {
		t.Fatalf("got %v", res.Cost)
	}
}

func TestLatencyUnderPeriodTradeoff(t *testing.T) {
	// Section 2, homogeneous: period <= 10 admits latency 17 (data-par S1 on
	// two processors); unconstrained latency optimum has period 10 as well;
	// but period <= 8 forces full replication, latency 24.
	pl := platform.Homogeneous(3, 1)
	res, ok := PipelineLatencyUnderPeriod(example, pl, true, 10)
	if !ok || !numeric.Eq(res.Cost.Latency, 17) {
		t.Errorf("latency under period 10 = %v, want 17", res.Cost.Latency)
	}
	res, ok = PipelineLatencyUnderPeriod(example, pl, true, 8)
	if !ok || !numeric.Eq(res.Cost.Latency, 24) {
		t.Errorf("latency under period 8 = %v, want 24", res.Cost.Latency)
	}
	if _, ok := PipelineLatencyUnderPeriod(example, pl, true, 1); ok {
		t.Error("period bound 1 should be infeasible")
	}
}

func TestPeriodUnderLatencyTradeoff(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	// Latency <= 24 allows the period optimum 8.
	res, ok := PipelinePeriodUnderLatency(example, pl, true, 24)
	if !ok || !numeric.Eq(res.Cost.Period, 8) {
		t.Errorf("period under latency 24 = %v, want 8", res.Cost.Period)
	}
	// Latency <= 17 forces the data-parallel mapping, period 10.
	res, ok = PipelinePeriodUnderLatency(example, pl, true, 17)
	if !ok || !numeric.Eq(res.Cost.Period, 10) {
		t.Errorf("period under latency 17 = %v, want 10", res.Cost.Period)
	}
	if _, ok := PipelinePeriodUnderLatency(example, pl, true, 10); ok {
		t.Error("latency bound 10 should be infeasible")
	}
}

func TestParetoFrontSection2(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	front := PipelinePareto(example, pl, true)
	if len(front) < 2 {
		t.Fatalf("front too small: %d points", len(front))
	}
	// Endpoints match the mono-criterion optima.
	if !numeric.Eq(front[0].Cost.Period, 8) {
		t.Errorf("front[0].Period = %v, want 8", front[0].Cost.Period)
	}
	if !numeric.Eq(front[len(front)-1].Cost.Latency, 17) {
		t.Errorf("front[last].Latency = %v, want 17", front[len(front)-1].Cost.Latency)
	}
	// Strict monotonicity.
	for i := 1; i < len(front); i++ {
		if !numeric.Less(front[i-1].Cost.Period, front[i].Cost.Period) {
			t.Errorf("periods not increasing at %d: %v then %v", i, front[i-1].Cost, front[i].Cost)
		}
		if !numeric.Greater(front[i-1].Cost.Latency, front[i].Cost.Latency) {
			t.Errorf("latencies not decreasing at %d: %v then %v", i, front[i-1].Cost, front[i].Cost)
		}
	}
}

// TestDPMatchesEnumeration cross-checks the bitmask DP against the
// independent full enumeration on random instances.
func TestDPMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		p := 1 + rng.Intn(3)
		pipe := workflow.RandomPipeline(rng, n, 9)
		pl := platform.Random(rng, p, 4)
		allowDP := rng.Intn(2) == 0

		bestPeriod, bestLatency := numeric.Inf, numeric.Inf
		enumeratePipeline(pipe, pl, allowDP, func(_ mapping.PipelineMapping, c mapping.Cost) {
			if c.Period < bestPeriod {
				bestPeriod = c.Period
			}
			if c.Latency < bestLatency {
				bestLatency = c.Latency
			}
		})

		resP, ok := PipelinePeriod(pipe, pl, allowDP)
		if !ok || !numeric.Eq(resP.Cost.Period, bestPeriod) {
			t.Fatalf("trial %d: DP period %v != enumerated %v (pipe=%v pl=%v dp=%v)",
				trial, resP.Cost.Period, bestPeriod, pipe.Weights, pl.Speeds, allowDP)
		}
		resL, ok := PipelineLatency(pipe, pl, allowDP)
		if !ok || !numeric.Eq(resL.Cost.Latency, bestLatency) {
			t.Fatalf("trial %d: DP latency %v != enumerated %v (pipe=%v pl=%v dp=%v)",
				trial, resL.Cost.Latency, bestLatency, pipe.Weights, pl.Speeds, allowDP)
		}
	}
}

// TestLemma1NoDataParNeededForPeriodOnHom verifies Lemma 1 empirically: on
// homogeneous platforms the optimal period is identical with and without
// data-parallelism.
func TestLemma1NoDataParNeededForPeriodOnHom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		pipe := workflow.RandomPipeline(rng, 1+rng.Intn(5), 9)
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(3)))
		with, ok1 := PipelinePeriod(pipe, pl, true)
		without, ok2 := PipelinePeriod(pipe, pl, false)
		if !ok1 || !ok2 {
			t.Fatal("no mapping found")
		}
		if !numeric.Eq(with.Cost.Period, without.Cost.Period) {
			t.Fatalf("trial %d: period with DP %v != without %v (pipe=%v pl=%v)",
				trial, with.Cost.Period, without.Cost.Period, pipe.Weights, pl.Speeds)
		}
	}
}

// TestLemma2NoReplicationNeededForLatency verifies Lemma 2 empirically: the
// optimal latency is achieved by some mapping in which every replicated
// group uses a single processor.
func TestLemma2NoReplicationNeededForLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		pipe := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		allowDP := rng.Intn(2) == 0
		overall, ok := PipelineLatency(pipe, pl, allowDP)
		if !ok {
			t.Fatal("no mapping found")
		}
		bestNoRep := numeric.Inf
		enumeratePipeline(pipe, pl, allowDP, func(m mapping.PipelineMapping, c mapping.Cost) {
			for _, iv := range m.Intervals {
				if iv.Mode == mapping.Replicated && len(iv.Procs) > 1 {
					return
				}
			}
			if c.Latency < bestNoRep {
				bestNoRep = c.Latency
			}
		})
		if !numeric.Eq(overall.Cost.Latency, bestNoRep) {
			t.Fatalf("trial %d: overall latency %v != no-replication latency %v",
				trial, overall.Cost.Latency, bestNoRep)
		}
	}
}

// TestReconstructedMappingsAchieveReportedCost checks that the mapping
// returned by each solver evaluates exactly to the reported cost.
func TestReconstructedMappingsAchieveReportedCost(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		pipe := workflow.RandomPipeline(rng, 1+rng.Intn(5), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		res, ok := PipelinePeriod(pipe, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		c, err := mapping.EvalPipeline(pipe, pl, res.Mapping)
		if err != nil {
			t.Fatalf("invalid mapping: %v", err)
		}
		if !numeric.Eq(c.Period, res.Cost.Period) {
			t.Fatalf("reported %v, evaluated %v", res.Cost, c)
		}
	}
}
