package exhaustive

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The bound-pruned searches must return byte-identical results to the
// unpruned ones: pruning stops a search once its incumbent reaches the
// anytime lower bound, which can only skip candidates that tie — and
// ties never replace an incumbent. These tests are the regression
// oracle for that argument, on randomized corpora across objectives.

func TestPipelinePruningIsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(5), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		dp := trial%2 == 0
		for name, cfg := range map[string]struct {
			periodCap      float64
			minimizePeriod bool
		}{
			"period":               {numeric.Inf, true},
			"latency":              {numeric.Inf, false},
			"latency-under-period": {float64(1+rng.Intn(6)) / 2, false},
		} {
			pruned := newPipeSolver(context.Background(), p, pl, dp, cfg.periodCap, cfg.minimizePeriod)
			res, ok, err := pruned.result()
			if err != nil {
				t.Fatal(err)
			}
			plain := newPipeSolver(context.Background(), p, pl, dp, cfg.periodCap, cfg.minimizePeriod)
			plain.prune = false
			wantRes, wantOK, err := plain.result()
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || !reflect.DeepEqual(res, wantRes) {
				t.Fatalf("trial %d %s: pruned (%v, %v) != unpruned (%v, %v) for %v on %v dp=%v",
					trial, name, res, ok, wantRes, wantOK, p, pl, dp)
			}
		}
	}
}

func TestForkPruningIsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ctx := context.Background()
	for trial := 0; trial < 30; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0
		bound := float64(1+rng.Intn(8)) / 2

		type scan struct {
			pruned func() (ForkResult, bool, error)
			plain  func() (ForkResult, bool, error)
		}
		scans := map[string]scan{
			"period": {
				func() (ForkResult, bool, error) { return ForkPeriodCtx(ctx, f, pl, dp) },
				func() (ForkResult, bool, error) { return forkScan(ctx, f, pl, dp, acceptAll, period, 0) },
			},
			"latency": {
				func() (ForkResult, bool, error) { return ForkLatencyCtx(ctx, f, pl, dp) },
				func() (ForkResult, bool, error) { return forkScan(ctx, f, pl, dp, acceptAll, latency, 0) },
			},
			"latency-under-period": {
				func() (ForkResult, bool, error) { return ForkLatencyUnderPeriodCtx(ctx, f, pl, dp, bound) },
				func() (ForkResult, bool, error) {
					return forkScan(ctx, f, pl, dp,
						func(c mapping.Cost) bool { return numeric.LessEq(c.Period, bound) }, latency, 0)
				},
			},
			"period-under-latency": {
				func() (ForkResult, bool, error) { return ForkPeriodUnderLatencyCtx(ctx, f, pl, dp, bound) },
				func() (ForkResult, bool, error) {
					return forkScan(ctx, f, pl, dp,
						func(c mapping.Cost) bool { return numeric.LessEq(c.Latency, bound) }, period, 0)
				},
			},
		}
		for name, s := range scans {
			res, ok, err := s.pruned()
			if err != nil {
				t.Fatal(err)
			}
			wantRes, wantOK, err := s.plain()
			if err != nil {
				t.Fatal(err)
			}
			if ok != wantOK || !reflect.DeepEqual(res, wantRes) {
				t.Fatalf("trial %d %s: pruned (%v, %v) != unpruned (%v, %v) for %v on %v dp=%v",
					trial, name, res, ok, wantRes, wantOK, f, pl, dp)
			}
		}
	}
}

func TestForkJoinPruningIsByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		fj := workflow.RandomForkJoin(rng, 1+rng.Intn(2), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0

		res, ok, err := ForkJoinPeriodCtx(ctx, fj, pl, dp)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, wantOK, err := forkJoinScan(ctx, fj, pl, dp, acceptAll, period, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("trial %d period: pruned != unpruned for %v on %v dp=%v", trial, fj, pl, dp)
		}

		res, ok, err = ForkJoinLatencyCtx(ctx, fj, pl, dp)
		if err != nil {
			t.Fatal(err)
		}
		wantRes, wantOK, err = forkJoinScan(ctx, fj, pl, dp, acceptAll, latency, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ok != wantOK || !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("trial %d latency: pruned != unpruned for %v on %v dp=%v", trial, fj, pl, dp)
		}
	}
}

// TestPruningFiresOnTightInstances exercises the early-stop path itself:
// on a homogeneous platform the replicate-all mapping reaches the
// sum-of-work period bound, so the pruned scans must terminate (fast)
// with the same optimum the bound certifies.
func TestPruningFiresOnTightInstances(t *testing.T) {
	f := workflow.HomogeneousFork(2, 4, 3)
	pl := platform.Homogeneous(4, 2)
	res, ok, err := ForkPeriodCtx(context.Background(), f, pl, false)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	want := f.TotalWork() / pl.TotalSpeed()
	if !numeric.Eq(res.Cost.Period, want) {
		t.Fatalf("period %g, want the sum-of-work bound %g", res.Cost.Period, want)
	}
}
