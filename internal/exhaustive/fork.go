package exhaustive

import (
	"context"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkResult is an optimal fork mapping together with its exact cost.
type ForkResult struct {
	Mapping mapping.ForkMapping
	Cost    mapping.Cost
}

// partitions enumerates the set partitions of items {0,..,m-1} into at most
// maxBlocks blocks, via restricted growth strings. Each partition is passed
// as a slice mapping item -> block index (blocks numbered 0..B-1 in order
// of first appearance). The callback must not retain the slice; it returns
// false to abort the enumeration early.
func partitions(m, maxBlocks int, visit func(assign []int, blocks int) bool) {
	assign := make([]int, m)
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == m {
			return visit(assign, used)
		}
		limit := used
		if limit >= maxBlocks {
			limit = maxBlocks - 1
		}
		for b := 0; b <= limit; b++ {
			assign[i] = b
			next := used
			if b == used {
				next++
			}
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	if m == 0 {
		return
	}
	rec(0, 0)
}

// EnumerateFork invokes visit for every valid fork mapping: every set
// partition of the stages (root = item 0, leaf i = item i+1), every
// assignment of disjoint non-empty processor subsets to the blocks, and
// every legal mode combination. Exhaustive ground truth for small n and p.
func EnumerateFork(f workflow.Fork, pl platform.Platform, allowDP bool, visit func(mapping.ForkMapping, mapping.Cost)) {
	enumerateForkCtx(newStepper(context.Background()), f, pl, allowDP, func(m mapping.ForkMapping, c mapping.Cost) bool {
		visit(m, c)
		return true
	})
}

// enumerateForkCtx is EnumerateFork with cancellation checkpoints driven by
// the stepper; it stops early once the stepper latches an error or visit
// returns false (the scanners abort once the incumbent reaches the
// anytime lower bound).
func enumerateForkCtx(step *stepper, f workflow.Fork, pl platform.Platform, allowDP bool, visit func(mapping.ForkMapping, mapping.Cost) bool) {
	p := pl.Processors()
	full := (1 << p) - 1
	items := f.Leaves() + 1
	partitions(items, p, func(assign []int, nblocks int) bool {
		// Build block contents from the partition.
		blocks := make([]mapping.ForkBlock, nblocks)
		blocks[assign[0]].Root = true
		for l := 0; l < f.Leaves(); l++ {
			b := assign[l+1]
			blocks[b].Leaves = append(blocks[b].Leaves, l)
		}
		var rec func(b, usedMask int) bool
		rec = func(b, usedMask int) bool {
			if !step.ok() {
				return false
			}
			if b == nblocks {
				m := mapping.ForkMapping{Blocks: make([]mapping.ForkBlock, nblocks)}
				copy(m.Blocks, blocks)
				c, err := mapping.EvalFork(f, pl, m)
				if err != nil {
					panic("exhaustive: enumerated invalid fork mapping: " + err.Error())
				}
				return visit(m, c)
			}
			free := full &^ usedMask
			for sub := free; sub > 0; sub = (sub - 1) & free {
				blocks[b].Procs = maskProcs(sub)
				blocks[b].Mode = mapping.Replicated
				if !rec(b+1, usedMask|sub) {
					return false
				}
				// Data-parallel is legal for leaf-only blocks and for the
				// root alone (Section 3.4).
				if allowDP && (!blocks[b].Root || len(blocks[b].Leaves) == 0) {
					blocks[b].Mode = mapping.DataParallel
					if !rec(b+1, usedMask|sub) {
						return false
					}
				}
			}
			blocks[b].Procs = nil
			blocks[b].Mode = mapping.Replicated
			return true
		}
		return rec(0, 0)
	})
}

// forkScan enumerates all mappings and keeps the best according to accept /
// objective. lb is the anytime lower bound on the objective: once the
// incumbent reaches it the enumeration aborts — later mappings can at
// most tie, and ties never replace the incumbent, so the result is
// byte-identical to the full scan. Pass lb <= 0 to disable pruning.
func forkScan(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	var best ForkResult
	found := false
	step := newStepper(ctx)
	enumerateForkCtx(step, f, pl, allowDP, func(m mapping.ForkMapping, c mapping.Cost) bool {
		if !accept(c) {
			return true
		}
		if !found || numeric.Less(objective(c), objective(best.Cost)) {
			best = ForkResult{Mapping: m, Cost: c}
			found = true
			if lb > 0 && numeric.LessEq(objective(best.Cost), lb) {
				return false
			}
		}
		return true
	})
	if step.err != nil {
		return ForkResult{}, false, step.err
	}
	return best, found, nil
}

func acceptAll(mapping.Cost) bool    { return true }
func period(c mapping.Cost) float64  { return c.Period }
func latency(c mapping.Cost) float64 { return c.Latency }

// ForkPeriod returns a fork mapping minimizing the period.
func ForkPeriod(f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool) {
	res, ok, _ := ForkPeriodCtx(context.Background(), f, pl, allowDP)
	return res, ok
}

// ForkPeriodCtx is ForkPeriod with cancellation checkpoints.
func ForkPeriodCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool, error) {
	lb := anytime.ForkLB(f, pl, anytime.Spec{MinimizePeriod: true, AllowDP: allowDP})
	return forkScan(ctx, f, pl, allowDP, acceptAll, period, lb)
}

// ForkLatency returns a fork mapping minimizing the latency.
func ForkLatency(f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool) {
	res, ok, _ := ForkLatencyCtx(context.Background(), f, pl, allowDP)
	return res, ok
}

// ForkLatencyCtx is ForkLatency with cancellation checkpoints.
func ForkLatencyCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool, error) {
	lb := anytime.ForkLB(f, pl, anytime.Spec{AllowDP: allowDP})
	return forkScan(ctx, f, pl, allowDP, acceptAll, latency, lb)
}

// ForkLatencyUnderPeriod returns a fork mapping minimizing the latency
// among mappings whose period does not exceed maxPeriod.
func ForkLatencyUnderPeriod(f workflow.Fork, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkResult, bool) {
	res, ok, _ := ForkLatencyUnderPeriodCtx(context.Background(), f, pl, allowDP, maxPeriod)
	return res, ok
}

// ForkLatencyUnderPeriodCtx is ForkLatencyUnderPeriod with cancellation
// checkpoints.
func ForkLatencyUnderPeriodCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkResult, bool, error) {
	lb := anytime.ForkLB(f, pl, anytime.Spec{AllowDP: allowDP})
	return forkScan(ctx, f, pl, allowDP,
		func(c mapping.Cost) bool { return numeric.LessEq(c.Period, maxPeriod) }, latency, lb)
}

// ForkPeriodUnderLatency returns a fork mapping minimizing the period among
// mappings whose latency does not exceed maxLatency.
func ForkPeriodUnderLatency(f workflow.Fork, pl platform.Platform, allowDP bool, maxLatency float64) (ForkResult, bool) {
	res, ok, _ := ForkPeriodUnderLatencyCtx(context.Background(), f, pl, allowDP, maxLatency)
	return res, ok
}

// ForkPeriodUnderLatencyCtx is ForkPeriodUnderLatency with cancellation
// checkpoints.
func ForkPeriodUnderLatencyCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool, maxLatency float64) (ForkResult, bool, error) {
	lb := anytime.ForkLB(f, pl, anytime.Spec{MinimizePeriod: true, AllowDP: allowDP})
	return forkScan(ctx, f, pl, allowDP,
		func(c mapping.Cost) bool { return numeric.LessEq(c.Latency, maxLatency) }, period, lb)
}

// ForkPareto returns the exact Pareto front of (period, latency) over all
// fork mappings, ordered by increasing period.
func ForkPareto(f workflow.Fork, pl platform.Platform, allowDP bool) []ForkResult {
	var all []ForkResult
	EnumerateFork(f, pl, allowDP, func(m mapping.ForkMapping, c mapping.Cost) {
		all = append(all, ForkResult{Mapping: m, Cost: c})
	})
	return paretoFilterFork(all)
}

func paretoFilterFork(all []ForkResult) []ForkResult {
	var front []ForkResult
	for _, cand := range all {
		dominated := false
		for _, other := range all {
			if other.Cost.Dominates(cand.Cost) &&
				(numeric.Less(other.Cost.Period, cand.Cost.Period) || numeric.Less(other.Cost.Latency, cand.Cost.Latency)) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, kept := range front {
			if numeric.Eq(kept.Cost.Period, cand.Cost.Period) && numeric.Eq(kept.Cost.Latency, cand.Cost.Latency) {
				dup = true
				break
			}
		}
		if !dup {
			front = append(front, cand)
		}
	}
	sortForkResultsByPeriod(front)
	return front
}

func sortForkResultsByPeriod(rs []ForkResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Cost.Period < rs[j-1].Cost.Period; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
