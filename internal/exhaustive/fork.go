package exhaustive

import (
	"context"
	"math"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkResult is an optimal fork mapping together with its exact cost.
type ForkResult struct {
	Mapping mapping.ForkMapping
	Cost    mapping.Cost
}

// partitions enumerates the set partitions of items {0,..,m-1} into at most
// maxBlocks blocks, via restricted growth strings. Each partition is passed
// as a slice mapping item -> block index (blocks numbered 0..B-1 in order
// of first appearance). The callback must not retain the slice; it returns
// false to abort the enumeration early. assign is the scratch slice the
// enumeration writes into (len >= m).
func partitions(assign []int, m, maxBlocks int, visit func(assign []int, blocks int) bool) {
	partitionsFrom(assign, m, maxBlocks, 0, 0, visit)
}

// partitionsFrom is partitions restricted to the completions of a fixed
// restricted-growth prefix: assign[:start] already holds `start` valid
// decisions naming `used` blocks, and the enumeration fills positions
// start..m-1 in the exact order the full enumeration visits them. It is
// the shard unit of the partitioned parallel scans: the shards of
// consecutive prefixes tile the serial enumeration order.
func partitionsFrom(assign []int, m, maxBlocks, start, used int, visit func(assign []int, blocks int) bool) {
	assign = assign[:m]
	var rec func(i, used int) bool
	rec = func(i, used int) bool {
		if i == m {
			return visit(assign, used)
		}
		limit := used
		if limit >= maxBlocks {
			limit = maxBlocks - 1
		}
		for b := 0; b <= limit; b++ {
			assign[i] = b
			next := used
			if b == used {
				next++
			}
			if !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	if m == 0 {
		return
	}
	rec(start, used)
}

// forkEnum is the resettable fork-mapping enumerator: all the scratch a
// full enumeration needs — the restricted-growth string, the block array
// and the per-block leaf lists — allocated once and reused across runs, so
// the per-partition and per-mapping work of the hot scans allocates
// nothing. The mapping passed to visit aliases that scratch; visitors must
// deep-copy (copyForkMapping) what they retain.
type forkEnum struct {
	f       workflow.Fork
	pl      platform.Platform
	allowDP bool
	info    []maskInfo
	step    *stepper
	assign  []int
	blocks  []mapping.ForkBlock
	masks   []int // per-block processor subset masks, parallel to blocks
	weights []float64
	leaves  [][]int
}

func newForkEnum(f workflow.Fork, pl platform.Platform, allowDP bool) *forkEnum {
	p := pl.Processors()
	leaves := make([][]int, p)
	for i := range leaves {
		leaves[i] = make([]int, 0, f.Leaves())
	}
	return &forkEnum{
		f: f, pl: pl, allowDP: allowDP,
		info:    tableFor(pl),
		step:    newStepper(context.Background()),
		assign:  make([]int, f.Leaves()+1),
		blocks:  make([]mapping.ForkBlock, p),
		masks:   make([]int, p),
		weights: make([]float64, p),
		leaves:  leaves,
	}
}

// leafCost evaluates the cost of the fully assigned candidate without
// validating or allocating: the enumeration produces only valid mappings
// by construction (every leaf assigned exactly once, root in exactly one
// block, disjoint subset masks), so re-running mapping.EvalFork's
// validation per candidate is pure waste — it dominated the scan profile.
// The arithmetic mirrors EvalFork division for division (using the same
// ascending-order subset speed sums, see buildMaskInfo), so the returned
// cost is bit-identical to what EvalFork computes for the same mapping;
// TestForkInlineCostMatchesEval pins that.
func (e *forkEnum) leafCost(blocks []mapping.ForkBlock) mapping.Cost {
	var c mapping.Cost
	rootDelay, rootSpeed := 0.0, 0.0
	maxOtherDelay := 0.0
	for b := range blocks {
		in := &e.info[e.masks[b]]
		w := e.weights[b]
		var per, speed float64
		if blocks[b].Mode == mapping.DataParallel {
			speed = in.sum
			per = w / speed
		} else {
			speed = in.min
			per = w / (float64(in.count) * speed)
		}
		if per > c.Period {
			c.Period = per
		}
		if blocks[b].Root {
			rootDelay = w / speed
			rootSpeed = speed
		} else if d := w / speed; d > maxOtherDelay {
			maxOtherDelay = d
		}
	}
	c.Latency = rootDelay
	if t := e.f.Root/rootSpeed + maxOtherDelay; t > c.Latency {
		c.Latency = t
	}
	return c
}

// run invokes visit for every valid fork mapping, stopping early once the
// stepper latches a context error or visit returns false.
func (e *forkEnum) run(ctx context.Context, visit func(mapping.ForkMapping, mapping.Cost) bool) {
	e.runFrom(ctx, nil, 0, visit)
}

// runFrom is run restricted to the partitions extending a fixed
// restricted-growth prefix naming `used` blocks (nil enumerates
// everything) — the shard unit of the partitioned parallel scan.
func (e *forkEnum) runFrom(ctx context.Context, prefix []int, used int, visit func(mapping.ForkMapping, mapping.Cost) bool) {
	e.step.reset(ctx)
	full := (1 << e.pl.Processors()) - 1
	items := e.f.Leaves() + 1
	copy(e.assign, prefix)
	partitionsFrom(e.assign, items, e.pl.Processors(), len(prefix), used, func(assign []int, nblocks int) bool {
		blocks := e.blocks[:nblocks]
		for b := range blocks {
			blocks[b] = mapping.ForkBlock{}
		}
		blocks[assign[0]].Root = true
		for l := 0; l < e.f.Leaves(); l++ {
			b := assign[l+1]
			if blocks[b].Leaves == nil {
				blocks[b].Leaves = e.leaves[b][:0]
			}
			blocks[b].Leaves = append(blocks[b].Leaves, l)
		}
		// Keep any grown backing for the next partition, and compute the
		// block weights once per partition (they do not depend on the
		// processor assignment) in ForkBlock.weight's addition order.
		for b := range blocks {
			if blocks[b].Leaves != nil {
				e.leaves[b] = blocks[b].Leaves
			}
			var w float64
			if blocks[b].Root {
				w += e.f.Root
			}
			for _, l := range blocks[b].Leaves {
				w += e.f.Weights[l]
			}
			e.weights[b] = w
		}
		var rec func(b, usedMask int) bool
		rec = func(b, usedMask int) bool {
			if !e.step.ok() {
				return false
			}
			if b == nblocks {
				return visit(mapping.ForkMapping{Blocks: blocks}, e.leafCost(blocks))
			}
			free := full &^ usedMask
			for sub := free; sub > 0; sub = (sub - 1) & free {
				blocks[b].Procs = e.info[sub].procs
				blocks[b].Mode = mapping.Replicated
				e.masks[b] = sub
				if !rec(b+1, usedMask|sub) {
					return false
				}
				// Data-parallel is legal for leaf-only blocks and for the
				// root alone (Section 3.4).
				if e.allowDP && (!blocks[b].Root || len(blocks[b].Leaves) == 0) {
					blocks[b].Mode = mapping.DataParallel
					if !rec(b+1, usedMask|sub) {
						return false
					}
				}
			}
			blocks[b].Procs = nil
			blocks[b].Mode = mapping.Replicated
			return true
		}
		return rec(0, 0)
	})
}

// copyForkMapping deep-copies the block, leaf and processor slices of a
// scratch mapping so it can outlive the enumeration. Copying Procs out
// of the shared platform table happens only here — when a mapping is
// retained — never inside the enumeration loops, so callers own their
// mappings without the table ever escaping.
func copyForkMapping(m mapping.ForkMapping) mapping.ForkMapping {
	blocks := make([]mapping.ForkBlock, len(m.Blocks))
	copy(blocks, m.Blocks)
	for i := range blocks {
		blocks[i].Leaves = append([]int(nil), blocks[i].Leaves...)
		blocks[i].Procs = append([]int(nil), blocks[i].Procs...)
	}
	return mapping.ForkMapping{Blocks: blocks}
}

// EnumerateFork invokes visit for every valid fork mapping: every set
// partition of the stages (root = item 0, leaf i = item i+1), every
// assignment of disjoint non-empty processor subsets to the blocks, and
// every legal mode combination. Exhaustive ground truth for small n and p.
// Each visited mapping is an independent copy the visitor may retain.
func EnumerateFork(f workflow.Fork, pl platform.Platform, allowDP bool, visit func(mapping.ForkMapping, mapping.Cost)) {
	newForkEnum(f, pl, allowDP).run(context.Background(), func(m mapping.ForkMapping, c mapping.Cost) bool {
		visit(copyForkMapping(m), c)
		return true
	})
}

// scan enumerates all mappings and keeps the best according to accept /
// objective. lb is the anytime lower bound on the objective: once the
// incumbent reaches it the enumeration aborts — later mappings can at
// most tie, and ties never replace the incumbent, so the result is
// byte-identical to the full scan. Pass lb <= 0 to disable pruning.
func (e *forkEnum) scan(ctx context.Context,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	var best ForkResult
	found := false
	e.run(ctx, func(m mapping.ForkMapping, c mapping.Cost) bool {
		if !accept(c) {
			return true
		}
		if !found || numeric.Less(objective(c), objective(best.Cost)) {
			best = ForkResult{Mapping: copyForkMapping(m), Cost: c}
			found = true
			if lb > 0 && numeric.LessEq(objective(best.Cost), lb) {
				return false
			}
		}
		return true
	})
	if e.step.err != nil {
		return ForkResult{}, false, e.step.err
	}
	return best, found, nil
}

// forkScan is a one-shot scan on a fresh enumerator (tests compare pruned
// against unpruned scans through it).
func forkScan(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	return newForkEnum(f, pl, allowDP).scan(ctx, accept, objective, lb)
}

func acceptAll(mapping.Cost) bool    { return true }
func period(c mapping.Cost) float64  { return c.Period }
func latency(c mapping.Cost) float64 { return c.Latency }

// forkMemo is one memoized scan result of a prepared fork solver.
type forkMemo struct {
	res ForkResult
	ok  bool
}

func (m forkMemo) clone() (ForkResult, bool) {
	res := m.res
	res.Mapping.Blocks = append([]mapping.ForkBlock(nil), res.Mapping.Blocks...)
	return res, m.ok
}

// ForkPrepared solves repeated objective/bound variants of one
// (fork, platform, model) triple: enumeration scratch is shared across
// solves, the anytime lower bounds are computed once per objective, and
// bounded solves are memoized by their bound bits. Results are
// byte-identical to the one-shot package functions, which wrap a prepared
// solver used once. Not safe for concurrent use.
type ForkPrepared struct {
	f       workflow.Fork
	pl      platform.Platform
	allowDP bool
	enum    *forkEnum
	par     int

	lbPeriod, lbLatency   float64
	hasLBp, hasLBl        bool
	periodM, latencyM     forkMemo
	hasPeriod, hasLatency bool
	lup, pul              map[uint64]forkMemo
}

// NewForkPrepared returns a prepared solver for the triple.
func NewForkPrepared(f workflow.Fork, pl platform.Platform, allowDP bool) *ForkPrepared {
	return &ForkPrepared{
		f: f, pl: pl, allowDP: allowDP,
		enum: newForkEnum(f, pl, allowDP),
		lup:  make(map[uint64]forkMemo),
		pul:  make(map[uint64]forkMemo),
	}
}

// SetParallelism sets the worker count of subsequent solves: counts
// above 1 run the partitioned parallel scan (see parForkScan), anything
// else the serial enumeration. Results are byte-identical either way, so
// the memos may mix entries computed at different counts; the prepared
// solver itself stays single-owner.
func (fp *ForkPrepared) SetParallelism(workers int) {
	fp.par = workers
}

// scan dispatches one bounded scan to the serial enumerator or, when
// parallelism is enabled, the partitioned scan.
func (fp *ForkPrepared) scan(ctx context.Context,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	if fp.par > 1 {
		return parForkScan(ctx, fp.f, fp.pl, fp.allowDP, fp.par, accept, objective, lb)
	}
	return fp.enum.scan(ctx, accept, objective, lb)
}

func (fp *ForkPrepared) periodLB() float64 {
	if !fp.hasLBp {
		fp.lbPeriod = anytime.ForkLB(fp.f, fp.pl, anytime.Spec{MinimizePeriod: true, AllowDP: fp.allowDP})
		fp.hasLBp = true
	}
	return fp.lbPeriod
}

func (fp *ForkPrepared) latencyLB() float64 {
	if !fp.hasLBl {
		fp.lbLatency = anytime.ForkLB(fp.f, fp.pl, anytime.Spec{AllowDP: fp.allowDP})
		fp.hasLBl = true
	}
	return fp.lbLatency
}

// Period solves MinPeriod.
func (fp *ForkPrepared) Period(ctx context.Context) (ForkResult, bool, error) {
	if !fp.hasPeriod {
		res, ok, err := fp.scan(ctx, acceptAll, period, fp.periodLB())
		if err != nil {
			return ForkResult{}, false, err
		}
		fp.periodM = forkMemo{res: res, ok: ok}
		fp.hasPeriod = true
	}
	res, ok := fp.periodM.clone()
	return res, ok, nil
}

// Latency solves MinLatency.
func (fp *ForkPrepared) Latency(ctx context.Context) (ForkResult, bool, error) {
	if !fp.hasLatency {
		res, ok, err := fp.scan(ctx, acceptAll, latency, fp.latencyLB())
		if err != nil {
			return ForkResult{}, false, err
		}
		fp.latencyM = forkMemo{res: res, ok: ok}
		fp.hasLatency = true
	}
	res, ok := fp.latencyM.clone()
	return res, ok, nil
}

// LatencyUnderPeriod solves min-latency under the period bound; repeated
// bounds (bit-identical floats) are answered from the memo.
func (fp *ForkPrepared) LatencyUnderPeriod(ctx context.Context, maxPeriod float64) (ForkResult, bool, error) {
	key := math.Float64bits(maxPeriod)
	m, hit := fp.lup[key]
	if !hit {
		res, ok, err := fp.scan(ctx,
			func(c mapping.Cost) bool { return numeric.LessEq(c.Period, maxPeriod) }, latency, fp.latencyLB())
		if err != nil {
			return ForkResult{}, false, err
		}
		m = forkMemo{res: res, ok: ok}
		fp.lup[key] = m
	}
	res, ok := m.clone()
	return res, ok, nil
}

// PeriodUnderLatency solves min-period under the latency bound; repeated
// bounds are answered from the memo.
func (fp *ForkPrepared) PeriodUnderLatency(ctx context.Context, maxLatency float64) (ForkResult, bool, error) {
	key := math.Float64bits(maxLatency)
	m, hit := fp.pul[key]
	if !hit {
		res, ok, err := fp.scan(ctx,
			func(c mapping.Cost) bool { return numeric.LessEq(c.Latency, maxLatency) }, period, fp.periodLB())
		if err != nil {
			return ForkResult{}, false, err
		}
		m = forkMemo{res: res, ok: ok}
		fp.pul[key] = m
	}
	res, ok := m.clone()
	return res, ok, nil
}

// ForkPeriod returns a fork mapping minimizing the period.
func ForkPeriod(f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool) {
	res, ok, _ := ForkPeriodCtx(context.Background(), f, pl, allowDP)
	return res, ok
}

// ForkPeriodCtx is ForkPeriod with cancellation checkpoints.
func ForkPeriodCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool, error) {
	return NewForkPrepared(f, pl, allowDP).Period(ctx)
}

// ForkLatency returns a fork mapping minimizing the latency.
func ForkLatency(f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool) {
	res, ok, _ := ForkLatencyCtx(context.Background(), f, pl, allowDP)
	return res, ok
}

// ForkLatencyCtx is ForkLatency with cancellation checkpoints.
func ForkLatencyCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool) (ForkResult, bool, error) {
	return NewForkPrepared(f, pl, allowDP).Latency(ctx)
}

// ForkLatencyUnderPeriod returns a fork mapping minimizing the latency
// among mappings whose period does not exceed maxPeriod.
func ForkLatencyUnderPeriod(f workflow.Fork, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkResult, bool) {
	res, ok, _ := ForkLatencyUnderPeriodCtx(context.Background(), f, pl, allowDP, maxPeriod)
	return res, ok
}

// ForkLatencyUnderPeriodCtx is ForkLatencyUnderPeriod with cancellation
// checkpoints.
func ForkLatencyUnderPeriodCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkResult, bool, error) {
	return NewForkPrepared(f, pl, allowDP).LatencyUnderPeriod(ctx, maxPeriod)
}

// ForkPeriodUnderLatency returns a fork mapping minimizing the period among
// mappings whose latency does not exceed maxLatency.
func ForkPeriodUnderLatency(f workflow.Fork, pl platform.Platform, allowDP bool, maxLatency float64) (ForkResult, bool) {
	res, ok, _ := ForkPeriodUnderLatencyCtx(context.Background(), f, pl, allowDP, maxLatency)
	return res, ok
}

// ForkPeriodUnderLatencyCtx is ForkPeriodUnderLatency with cancellation
// checkpoints.
func ForkPeriodUnderLatencyCtx(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool, maxLatency float64) (ForkResult, bool, error) {
	return NewForkPrepared(f, pl, allowDP).PeriodUnderLatency(ctx, maxLatency)
}

// ForkPareto returns the exact Pareto front of (period, latency) over all
// fork mappings, ordered by increasing period.
func ForkPareto(f workflow.Fork, pl platform.Platform, allowDP bool) []ForkResult {
	var all []ForkResult
	EnumerateFork(f, pl, allowDP, func(m mapping.ForkMapping, c mapping.Cost) {
		all = append(all, ForkResult{Mapping: m, Cost: c})
	})
	return paretoFilterFork(all)
}

func paretoFilterFork(all []ForkResult) []ForkResult {
	var front []ForkResult
	for _, cand := range all {
		dominated := false
		for _, other := range all {
			if other.Cost.Dominates(cand.Cost) &&
				(numeric.Less(other.Cost.Period, cand.Cost.Period) || numeric.Less(other.Cost.Latency, cand.Cost.Latency)) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, kept := range front {
			if numeric.Eq(kept.Cost.Period, cand.Cost.Period) && numeric.Eq(kept.Cost.Latency, cand.Cost.Latency) {
				dup = true
				break
			}
		}
		if !dup {
			front = append(front, cand)
		}
	}
	sortForkResultsByPeriod(front)
	return front
}

func sortForkResultsByPeriod(rs []ForkResult) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].Cost.Period < rs[j-1].Cost.Period; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}
