// Package exhaustive provides exact optimal mappers by exponential-time
// search. They serve two purposes in the reproduction of Benoit & Robert
// (RR-6308):
//
//   - ground truth for every polynomial algorithm of the paper (the
//     algorithm's optimum must coincide with the exhaustive optimum on
//     randomized instances), and
//   - exact baselines for the NP-hard problem instances, against which the
//     polynomial heuristics are measured.
//
// Pipelines are solved by a dynamic program over (next stage, set of used
// processors) — exact because interval costs are independent given the
// processor subset. Forks and fork-joins enumerate the set partitions of
// the stages (restricted growth strings) and assign processor subsets per
// block by a similar bitmask dynamic program.
//
// All solvers are exponential in the number of processors (and, for forks,
// in the number of stages); they are intended for the small instances used
// in tests and benchmarks, up to roughly p = 12 for pipelines and
// n, p = 6 for forks.
//
// # Prepared solvers
//
// Pareto sweeps and bi-criteria binary searches solve the same
// (workflow, platform) pair hundreds of times, varying only the bound.
// The prepared solvers — PipelinePrepared, ForkPrepared, ForkJoinPrepared
// — share everything that does not depend on the bound across those
// solves: the per-platform subset tables (cached process-wide, see
// tableFor), the DP/enumeration scratch memory (reset by epoch counters,
// never reallocated), the candidate-period sets, and a per-bound result
// memo. Their results are byte-identical to the one-shot entry points,
// which are themselves thin wrappers over a prepared solver used once.
package exhaustive

import (
	"context"
	"encoding/binary"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
)

// checkpointInterval is how many search steps pass between context polls:
// frequent enough that cancellation lands within microseconds, sparse
// enough that the poll cost vanishes against the search work.
const checkpointInterval = 1024

// stepper spreads context polls over the exponential search loops. Every
// solver threads one stepper through its recursion; once the context is
// cancelled the stepper latches the error and every subsequent ok() call
// fails fast, unwinding the search.
type stepper struct {
	ctx context.Context
	// credit counts the steps left until the next context poll. The hot
	// path is a single predictable decrement-and-branch; err can only be
	// latched when credit is exhausted, so credit > 0 implies err == nil.
	credit int
	err    error
}

func newStepper(ctx context.Context) *stepper { return &stepper{ctx: ctx} }

// ok reports whether the search may continue, polling the context every
// checkpointInterval calls.
func (s *stepper) ok() bool {
	if s.credit > 0 {
		s.credit--
		return true
	}
	if s.err != nil {
		return false
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return false
	}
	s.credit = checkpointInterval - 1
	return true
}

// reset rearms the stepper for a fresh solve on a (possibly) new context.
func (s *stepper) reset(ctx context.Context) {
	s.ctx = ctx
	s.credit = 0
	s.err = nil
}

// maskInfo caches per-subset aggregates of a platform. The inverse fields
// turn the divisions of the DP inner loops into multiplications, and procs
// is the expanded (sorted) processor list of the mask, so the hot paths
// neither divide nor allocate. max feeds the anytime lower bounds used for
// branch pruning. procs is internal scratch shared by every solver on the
// table: search loops alias it freely, but any mapping that escapes the
// package copies it (reconstruct, copyForkMapping) — the table must never
// leak into caller-visible results.
type maskInfo struct {
	count int
	min   float64
	max   float64
	sum   float64
	// invMin is 1/min: delay of a replicated group of weight w is w*invMin.
	invMin float64
	// invSum is 1/sum: cost of a data-parallel group of weight w is w*invSum.
	invSum float64
	// perInv is 1/(count*min): period of a replicated group of weight w is
	// w*perInv.
	perInv float64
	// procs is the sorted processor index list of the mask.
	procs []int
}

// buildMaskInfo precomputes aggregates for every non-empty processor subset.
func buildMaskInfo(pl platform.Platform) []maskInfo {
	p := pl.Processors()
	info := make([]maskInfo, 1<<p)
	// One backing array for every procs slice: mask m holds OnesCount(m)
	// indices, so the total length is p * 2^(p-1).
	backing := make([]int, p<<max(p-1, 0))
	for mask := 1; mask < 1<<p; mask++ {
		// Split off the highest set bit, so sum accumulates in ascending
		// processor order — bit-identical to platform.SubsetSpeedSum over
		// the sorted procs list, which the inline enumeration costs rely
		// on to reproduce mapping.Eval* exactly.
		high := bits.Len(uint(mask)) - 1
		rest := mask &^ (1 << high)
		s := pl.Speeds[high]
		in := maskInfo{count: 1, min: s, max: s, sum: s}
		if rest != 0 {
			prev := &info[rest]
			in = maskInfo{
				count: prev.count + 1,
				min:   math.Min(prev.min, s),
				max:   math.Max(prev.max, s),
				sum:   prev.sum + s,
			}
		}
		in.invMin = 1 / in.min
		in.invSum = 1 / in.sum
		in.perInv = 1 / (float64(in.count) * in.min)
		procs := backing[:0:in.count]
		backing = backing[in.count:]
		for m := mask; m != 0; m &= m - 1 {
			procs = append(procs, bits.TrailingZeros(uint(m)))
		}
		in.procs = procs
		info[mask] = in
	}
	return info
}

// maxTableCacheWords bounds the process-wide platform table cache by its
// approximate footprint in 8-byte words (~32MB), not by table count: a
// table is O(2^p) entries plus a p*2^(p-1)-int procs backing array, so a
// count bound alone would let a few large-p platforms pin hundreds of MB
// past every other memory bound (engine.SetCacheLimit evicts solutions,
// never these). When an insert would exceed the budget the whole cache is
// dropped (tables are cheap to rebuild, and real deployments see few
// distinct platforms); a single table heavier than the budget is built
// per solver and never cached — the transient cost every solve paid
// before the cache existed.
const maxTableCacheWords = 4 << 20

var (
	platTables     sync.Map // string (raw speed bits) -> []maskInfo
	platTableWords atomic.Int64
)

// tableWeight approximates a platform table's footprint in words: 2^p
// maskInfo entries (8 fields each) plus the p*2^(p-1) procs backing.
func tableWeight(p int) int64 {
	if p <= 0 {
		return 1
	}
	return int64(8)<<p + int64(p)<<(p-1)
}

// platKey is the cache identity of a platform: the raw bits of its speed
// vector, so platforms differing by one ULP get distinct tables.
func platKey(pl platform.Platform) string {
	b := make([]byte, 8*len(pl.Speeds))
	for i, s := range pl.Speeds {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(s))
	}
	return string(b)
}

// tableFor returns the shared subset table of a platform, building and
// caching it on first use. Every solver for the same speed vector — across
// solves, goroutines and graph kinds — shares one table, so a Pareto sweep
// pays the 2^p preprocessing once instead of once per candidate bound.
func tableFor(pl platform.Platform) []maskInfo {
	key := platKey(pl)
	if t, ok := platTables.Load(key); ok {
		return t.([]maskInfo)
	}
	info := buildMaskInfo(pl)
	weight := tableWeight(pl.Processors())
	if weight > maxTableCacheWords {
		return info // oversized: per-solver transient, never cached
	}
	if _, loaded := platTables.LoadOrStore(key, info); !loaded {
		if platTableWords.Add(weight) > maxTableCacheWords {
			// Overflow: drop everything and restart the count. Racy counts
			// only make the flush early or late by a table, which is
			// harmless — correctness never depends on the cache.
			platTables.Range(func(k, _ any) bool {
				platTables.Delete(k)
				return true
			})
			platTableWords.Store(0)
		}
	}
	return info
}

// groupCosts returns (period, delay) of a stage group of weight w on the
// subset described by info, for the given mode.
func groupCosts(w float64, info maskInfo, dataParallel bool) (period, delay float64) {
	if dataParallel {
		c := w / info.sum
		return c, c
	}
	return w / (float64(info.count) * info.min), w / info.min
}

// dedupSorted sorts values ascending and removes duplicates within the
// numeric tolerance.
func dedupSorted(vals []float64) []float64 {
	return numeric.DedupSorted(vals)
}
