// Package exhaustive provides exact optimal mappers by exponential-time
// search. They serve two purposes in the reproduction of Benoit & Robert
// (RR-6308):
//
//   - ground truth for every polynomial algorithm of the paper (the
//     algorithm's optimum must coincide with the exhaustive optimum on
//     randomized instances), and
//   - exact baselines for the NP-hard problem instances, against which the
//     polynomial heuristics are measured.
//
// Pipelines are solved by a dynamic program over (next stage, set of used
// processors) — exact because interval costs are independent given the
// processor subset. Forks and fork-joins enumerate the set partitions of
// the stages (restricted growth strings) and assign processor subsets per
// block by a similar bitmask dynamic program.
//
// All solvers are exponential in the number of processors (and, for forks,
// in the number of stages); they are intended for the small instances used
// in tests and benchmarks, up to roughly p = 12 for pipelines and
// n, p = 6 for forks.
package exhaustive

import (
	"context"
	"math"
	"math/bits"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
)

// checkpointInterval is how many search steps pass between context polls:
// frequent enough that cancellation lands within microseconds, sparse
// enough that the poll cost vanishes against the search work.
const checkpointInterval = 1024

// stepper spreads context polls over the exponential search loops. Every
// solver threads one stepper through its recursion; once the context is
// cancelled the stepper latches the error and every subsequent ok() call
// fails fast, unwinding the search.
type stepper struct {
	ctx  context.Context
	tick int
	err  error
}

func newStepper(ctx context.Context) *stepper { return &stepper{ctx: ctx} }

// ok reports whether the search may continue, polling the context every
// checkpointInterval calls.
func (s *stepper) ok() bool {
	if s.err != nil {
		return false
	}
	s.tick++
	if s.tick%checkpointInterval == 0 {
		if err := s.ctx.Err(); err != nil {
			s.err = err
			return false
		}
	}
	return true
}

// maskInfo caches per-subset speed aggregates of a platform. max feeds
// the anytime lower bounds used for branch pruning.
type maskInfo struct {
	count int
	min   float64
	max   float64
	sum   float64
}

// buildMaskInfo precomputes aggregates for every non-empty processor subset.
func buildMaskInfo(pl platform.Platform) []maskInfo {
	p := pl.Processors()
	info := make([]maskInfo, 1<<p)
	for mask := 1; mask < 1<<p; mask++ {
		low := bits.TrailingZeros(uint(mask))
		rest := mask &^ (1 << low)
		s := pl.Speeds[low]
		if rest == 0 {
			info[mask] = maskInfo{count: 1, min: s, max: s, sum: s}
			continue
		}
		prev := info[rest]
		info[mask] = maskInfo{
			count: prev.count + 1,
			min:   math.Min(prev.min, s),
			max:   math.Max(prev.max, s),
			sum:   prev.sum + s,
		}
	}
	return info
}

// maskProcs expands a bitmask into a sorted processor index slice.
func maskProcs(mask int) []int {
	procs := make([]int, 0, bits.OnesCount(uint(mask)))
	for mask != 0 {
		low := bits.TrailingZeros(uint(mask))
		procs = append(procs, low)
		mask &^= 1 << low
	}
	return procs
}

// groupCosts returns (period, delay) of a stage group of weight w on the
// subset described by info, for the given mode.
func groupCosts(w float64, info maskInfo, dataParallel bool) (period, delay float64) {
	if dataParallel {
		c := w / info.sum
		return c, c
	}
	return w / (float64(info.count) * info.min), w / info.min
}

// dedupSorted sorts values ascending and removes duplicates within the
// numeric tolerance.
func dedupSorted(vals []float64) []float64 {
	return numeric.DedupSorted(vals)
}
