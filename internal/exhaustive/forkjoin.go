package exhaustive

import (
	"context"
	"math"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkJoinResult is an optimal fork-join mapping with its exact cost.
type ForkJoinResult struct {
	Mapping mapping.ForkJoinMapping
	Cost    mapping.Cost
}

// fjEnum is the resettable fork-join enumerator, sharing scratch across
// runs exactly like forkEnum. Items are ordered root, leaves, join; blocks
// come from set partitions and processor subsets from disjoint bitmask
// assignments. The mapping passed to visit aliases the scratch; visitors
// deep-copy (copyForkJoinMapping) what they retain.
type fjEnum struct {
	fj      workflow.ForkJoin
	pl      platform.Platform
	allowDP bool
	info    []maskInfo
	step    *stepper
	assign  []int
	blocks  []mapping.ForkJoinBlock
	masks   []int // per-block processor subset masks, parallel to blocks
	weights []float64
	leafW   []float64 // per-block leaf-only weight (no root/join share)
	leaves  [][]int
}

func newFJEnum(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) *fjEnum {
	p := pl.Processors()
	leaves := make([][]int, p)
	for i := range leaves {
		leaves[i] = make([]int, 0, fj.Leaves())
	}
	return &fjEnum{
		fj: fj, pl: pl, allowDP: allowDP,
		info:    tableFor(pl),
		step:    newStepper(context.Background()),
		assign:  make([]int, fj.Leaves()+2),
		blocks:  make([]mapping.ForkJoinBlock, p),
		masks:   make([]int, p),
		weights: make([]float64, p),
		leafW:   make([]float64, p),
		leaves:  leaves,
	}
}

// leafCost evaluates a fully assigned candidate without validating or
// allocating, exactly as forkEnum.leafCost does for forks: the
// enumeration only produces valid mappings, so the per-candidate
// mapping.EvalForkJoin validation was pure overhead. The arithmetic
// mirrors EvalForkJoin division for division and is bit-identical to it
// (TestForkJoinInlineCostMatchesEval).
func (e *fjEnum) leafCost(blocks []mapping.ForkJoinBlock) mapping.Cost {
	var c mapping.Cost
	var rootSpeed, joinSpeed float64
	for b := range blocks {
		in := &e.info[e.masks[b]]
		w := e.weights[b]
		var per, speed float64
		if blocks[b].Mode == mapping.DataParallel {
			speed = in.sum
			per = w / speed
		} else {
			speed = in.min
			per = w / (float64(in.count) * speed)
		}
		if per > c.Period {
			c.Period = per
		}
		if blocks[b].Root {
			rootSpeed = speed
		}
		if blocks[b].Join {
			joinSpeed = speed
		}
	}
	rootDone := e.fj.Root / rootSpeed
	leafDone := rootDone
	for b := range blocks {
		wl := e.leafW[b]
		if wl == 0 {
			continue
		}
		in := &e.info[e.masks[b]]
		speed := in.min
		if blocks[b].Mode == mapping.DataParallel {
			speed = in.sum
		}
		var done float64
		if blocks[b].Root {
			done = (e.fj.Root + wl) / speed
		} else {
			done = rootDone + wl/speed
		}
		if done > leafDone {
			leafDone = done
		}
	}
	c.Latency = leafDone + e.fj.Join/joinSpeed
	return c
}

// run invokes visit for every valid fork-join mapping, stopping early once
// the stepper latches a context error or visit returns false.
func (e *fjEnum) run(ctx context.Context, visit func(mapping.ForkJoinMapping, mapping.Cost) bool) {
	e.runFrom(ctx, nil, 0, visit)
}

// runFrom is run restricted to the partitions extending a fixed
// restricted-growth prefix naming `used` blocks (nil enumerates
// everything) — the shard unit of the partitioned parallel scan.
func (e *fjEnum) runFrom(ctx context.Context, prefix []int, used int, visit func(mapping.ForkJoinMapping, mapping.Cost) bool) {
	e.step.reset(ctx)
	full := (1 << e.pl.Processors()) - 1
	items := e.fj.Leaves() + 2
	copy(e.assign, prefix)
	partitionsFrom(e.assign, items, e.pl.Processors(), len(prefix), used, func(assign []int, nblocks int) bool {
		blocks := e.blocks[:nblocks]
		for b := range blocks {
			blocks[b] = mapping.ForkJoinBlock{}
		}
		blocks[assign[0]].Root = true
		blocks[assign[items-1]].Join = true
		for l := 0; l < e.fj.Leaves(); l++ {
			b := assign[l+1]
			if blocks[b].Leaves == nil {
				blocks[b].Leaves = e.leaves[b][:0]
			}
			blocks[b].Leaves = append(blocks[b].Leaves, l)
		}
		// Keep grown leaf backing, and precompute per-partition weights in
		// ForkJoinBlock.weight's addition order (root, join, then leaves)
		// plus the leaf-only weight of EvalForkJoin's latency pass.
		for b := range blocks {
			if blocks[b].Leaves != nil {
				e.leaves[b] = blocks[b].Leaves
			}
			var w float64
			if blocks[b].Root {
				w += e.fj.Root
			}
			if blocks[b].Join {
				w += e.fj.Join
			}
			var wl float64
			for _, l := range blocks[b].Leaves {
				w += e.fj.Weights[l]
				wl += e.fj.Weights[l]
			}
			e.weights[b] = w
			e.leafW[b] = wl
		}
		var rec func(b, usedMask int) bool
		rec = func(b, usedMask int) bool {
			if !e.step.ok() {
				return false
			}
			if b == nblocks {
				return visit(mapping.ForkJoinMapping{Blocks: blocks}, e.leafCost(blocks))
			}
			free := full &^ usedMask
			for sub := free; sub > 0; sub = (sub - 1) & free {
				blocks[b].Procs = e.info[sub].procs
				blocks[b].Mode = mapping.Replicated
				e.masks[b] = sub
				if !rec(b+1, usedMask|sub) {
					return false
				}
				// Data-parallel requires the block to be leaf-only, or the
				// root alone, or the join alone.
				alone := len(blocks[b].Leaves) == 0 && !(blocks[b].Root && blocks[b].Join)
				if e.allowDP && ((!blocks[b].Root && !blocks[b].Join) || alone) {
					blocks[b].Mode = mapping.DataParallel
					if !rec(b+1, usedMask|sub) {
						return false
					}
				}
			}
			blocks[b].Procs = nil
			blocks[b].Mode = mapping.Replicated
			return true
		}
		return rec(0, 0)
	})
}

// copyForkJoinMapping deep-copies the block, leaf and processor slices
// of a scratch mapping (Procs are copied out of the shared platform
// table exactly as in copyForkMapping: on retention, not per visit).
func copyForkJoinMapping(m mapping.ForkJoinMapping) mapping.ForkJoinMapping {
	blocks := make([]mapping.ForkJoinBlock, len(m.Blocks))
	copy(blocks, m.Blocks)
	for i := range blocks {
		blocks[i].Leaves = append([]int(nil), blocks[i].Leaves...)
		blocks[i].Procs = append([]int(nil), blocks[i].Procs...)
	}
	return mapping.ForkJoinMapping{Blocks: blocks}
}

// EnumerateForkJoin invokes visit for every valid fork-join mapping. Each
// visited mapping is an independent copy the visitor may retain.
func EnumerateForkJoin(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, visit func(mapping.ForkJoinMapping, mapping.Cost)) {
	newFJEnum(fj, pl, allowDP).run(context.Background(), func(m mapping.ForkJoinMapping, c mapping.Cost) bool {
		visit(copyForkJoinMapping(m), c)
		return true
	})
}

// scan enumerates all mappings keeping the best acceptable one. lb prunes
// exactly as in forkEnum.scan: reaching it aborts the scan without
// changing the result (ties never replace the incumbent); lb <= 0
// disables pruning.
func (e *fjEnum) scan(ctx context.Context,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	var best ForkJoinResult
	found := false
	e.run(ctx, func(m mapping.ForkJoinMapping, c mapping.Cost) bool {
		if !accept(c) {
			return true
		}
		if !found || numeric.Less(objective(c), objective(best.Cost)) {
			best = ForkJoinResult{Mapping: copyForkJoinMapping(m), Cost: c}
			found = true
			if lb > 0 && numeric.LessEq(objective(best.Cost), lb) {
				return false
			}
		}
		return true
	})
	if e.step.err != nil {
		return ForkJoinResult{}, false, e.step.err
	}
	return best, found, nil
}

// forkJoinScan is a one-shot scan on a fresh enumerator.
func forkJoinScan(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	return newFJEnum(fj, pl, allowDP).scan(ctx, accept, objective, lb)
}

// fjMemo is one memoized scan result of a prepared fork-join solver.
type fjMemo struct {
	res ForkJoinResult
	ok  bool
}

func (m fjMemo) clone() (ForkJoinResult, bool) {
	res := m.res
	res.Mapping.Blocks = append([]mapping.ForkJoinBlock(nil), res.Mapping.Blocks...)
	return res, m.ok
}

// ForkJoinPrepared is the fork-join analogue of ForkPrepared: shared
// enumeration scratch, per-objective anytime bounds computed once, and
// bound-keyed memos. Byte-identical to the one-shot functions; not safe
// for concurrent use.
type ForkJoinPrepared struct {
	fj      workflow.ForkJoin
	pl      platform.Platform
	allowDP bool
	enum    *fjEnum
	par     int

	lbPeriod, lbLatency   float64
	hasLBp, hasLBl        bool
	periodM, latencyM     fjMemo
	hasPeriod, hasLatency bool
	lup, pul              map[uint64]fjMemo
}

// NewForkJoinPrepared returns a prepared solver for the triple.
func NewForkJoinPrepared(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) *ForkJoinPrepared {
	return &ForkJoinPrepared{
		fj: fj, pl: pl, allowDP: allowDP,
		enum: newFJEnum(fj, pl, allowDP),
		lup:  make(map[uint64]fjMemo),
		pul:  make(map[uint64]fjMemo),
	}
}

// SetParallelism sets the worker count of subsequent solves exactly as
// ForkPrepared.SetParallelism does: above 1 runs the partitioned
// parallel scan, results stay byte-identical, and the prepared solver
// remains single-owner.
func (fp *ForkJoinPrepared) SetParallelism(workers int) {
	fp.par = workers
}

// scan dispatches one bounded scan to the serial enumerator or, when
// parallelism is enabled, the partitioned scan.
func (fp *ForkJoinPrepared) scan(ctx context.Context,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	if fp.par > 1 {
		return parForkJoinScan(ctx, fp.fj, fp.pl, fp.allowDP, fp.par, accept, objective, lb)
	}
	return fp.enum.scan(ctx, accept, objective, lb)
}

func (fp *ForkJoinPrepared) periodLB() float64 {
	if !fp.hasLBp {
		fp.lbPeriod = anytime.ForkJoinLB(fp.fj, fp.pl, anytime.Spec{MinimizePeriod: true, AllowDP: fp.allowDP})
		fp.hasLBp = true
	}
	return fp.lbPeriod
}

func (fp *ForkJoinPrepared) latencyLB() float64 {
	if !fp.hasLBl {
		fp.lbLatency = anytime.ForkJoinLB(fp.fj, fp.pl, anytime.Spec{AllowDP: fp.allowDP})
		fp.hasLBl = true
	}
	return fp.lbLatency
}

// Period solves MinPeriod.
func (fp *ForkJoinPrepared) Period(ctx context.Context) (ForkJoinResult, bool, error) {
	if !fp.hasPeriod {
		res, ok, err := fp.scan(ctx, acceptAll, period, fp.periodLB())
		if err != nil {
			return ForkJoinResult{}, false, err
		}
		fp.periodM = fjMemo{res: res, ok: ok}
		fp.hasPeriod = true
	}
	res, ok := fp.periodM.clone()
	return res, ok, nil
}

// Latency solves MinLatency.
func (fp *ForkJoinPrepared) Latency(ctx context.Context) (ForkJoinResult, bool, error) {
	if !fp.hasLatency {
		res, ok, err := fp.scan(ctx, acceptAll, latency, fp.latencyLB())
		if err != nil {
			return ForkJoinResult{}, false, err
		}
		fp.latencyM = fjMemo{res: res, ok: ok}
		fp.hasLatency = true
	}
	res, ok := fp.latencyM.clone()
	return res, ok, nil
}

// LatencyUnderPeriod solves min-latency under the period bound; repeated
// bounds are answered from the memo.
func (fp *ForkJoinPrepared) LatencyUnderPeriod(ctx context.Context, maxPeriod float64) (ForkJoinResult, bool, error) {
	key := math.Float64bits(maxPeriod)
	m, hit := fp.lup[key]
	if !hit {
		res, ok, err := fp.scan(ctx,
			func(c mapping.Cost) bool { return numeric.LessEq(c.Period, maxPeriod) }, latency, fp.latencyLB())
		if err != nil {
			return ForkJoinResult{}, false, err
		}
		m = fjMemo{res: res, ok: ok}
		fp.lup[key] = m
	}
	res, ok := m.clone()
	return res, ok, nil
}

// PeriodUnderLatency solves min-period under the latency bound; repeated
// bounds are answered from the memo.
func (fp *ForkJoinPrepared) PeriodUnderLatency(ctx context.Context, maxLatency float64) (ForkJoinResult, bool, error) {
	key := math.Float64bits(maxLatency)
	m, hit := fp.pul[key]
	if !hit {
		res, ok, err := fp.scan(ctx,
			func(c mapping.Cost) bool { return numeric.LessEq(c.Latency, maxLatency) }, period, fp.periodLB())
		if err != nil {
			return ForkJoinResult{}, false, err
		}
		m = fjMemo{res: res, ok: ok}
		fp.pul[key] = m
	}
	res, ok := m.clone()
	return res, ok, nil
}

// ForkJoinPeriod returns a fork-join mapping minimizing the period.
func ForkJoinPeriod(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinPeriodCtx(context.Background(), fj, pl, allowDP)
	return res, ok
}

// ForkJoinPeriodCtx is ForkJoinPeriod with cancellation checkpoints.
func ForkJoinPeriodCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool, error) {
	return NewForkJoinPrepared(fj, pl, allowDP).Period(ctx)
}

// ForkJoinLatency returns a fork-join mapping minimizing the latency.
func ForkJoinLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinLatencyCtx(context.Background(), fj, pl, allowDP)
	return res, ok
}

// ForkJoinLatencyCtx is ForkJoinLatency with cancellation checkpoints.
func ForkJoinLatencyCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool, error) {
	return NewForkJoinPrepared(fj, pl, allowDP).Latency(ctx)
}

// ForkJoinLatencyUnderPeriod minimizes latency under a period bound.
func ForkJoinLatencyUnderPeriod(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinLatencyUnderPeriodCtx(context.Background(), fj, pl, allowDP, maxPeriod)
	return res, ok
}

// ForkJoinLatencyUnderPeriodCtx is ForkJoinLatencyUnderPeriod with
// cancellation checkpoints.
func ForkJoinLatencyUnderPeriodCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkJoinResult, bool, error) {
	return NewForkJoinPrepared(fj, pl, allowDP).LatencyUnderPeriod(ctx, maxPeriod)
}

// ForkJoinPeriodUnderLatency minimizes period under a latency bound.
func ForkJoinPeriodUnderLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxLatency float64) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinPeriodUnderLatencyCtx(context.Background(), fj, pl, allowDP, maxLatency)
	return res, ok
}

// ForkJoinPeriodUnderLatencyCtx is ForkJoinPeriodUnderLatency with
// cancellation checkpoints.
func ForkJoinPeriodUnderLatencyCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxLatency float64) (ForkJoinResult, bool, error) {
	return NewForkJoinPrepared(fj, pl, allowDP).PeriodUnderLatency(ctx, maxLatency)
}
