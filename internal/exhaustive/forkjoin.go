package exhaustive

import (
	"context"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// ForkJoinResult is an optimal fork-join mapping with its exact cost.
type ForkJoinResult struct {
	Mapping mapping.ForkJoinMapping
	Cost    mapping.Cost
}

// EnumerateForkJoin invokes visit for every valid fork-join mapping. Items
// are ordered root, leaves, join; blocks come from set partitions and
// processor subsets from disjoint bitmask assignments, as for forks.
func EnumerateForkJoin(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, visit func(mapping.ForkJoinMapping, mapping.Cost)) {
	enumerateForkJoinCtx(newStepper(context.Background()), fj, pl, allowDP, func(m mapping.ForkJoinMapping, c mapping.Cost) bool {
		visit(m, c)
		return true
	})
}

// enumerateForkJoinCtx is EnumerateForkJoin with cancellation checkpoints
// driven by the stepper; it stops early once the stepper latches an error
// or visit returns false.
func enumerateForkJoinCtx(step *stepper, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, visit func(mapping.ForkJoinMapping, mapping.Cost) bool) {
	p := pl.Processors()
	full := (1 << p) - 1
	items := fj.Leaves() + 2
	partitions(items, p, func(assign []int, nblocks int) bool {
		blocks := make([]mapping.ForkJoinBlock, nblocks)
		blocks[assign[0]].Root = true
		blocks[assign[items-1]].Join = true
		for l := 0; l < fj.Leaves(); l++ {
			b := assign[l+1]
			blocks[b].Leaves = append(blocks[b].Leaves, l)
		}
		var rec func(b, usedMask int) bool
		rec = func(b, usedMask int) bool {
			if !step.ok() {
				return false
			}
			if b == nblocks {
				m := mapping.ForkJoinMapping{Blocks: make([]mapping.ForkJoinBlock, nblocks)}
				copy(m.Blocks, blocks)
				c, err := mapping.EvalForkJoin(fj, pl, m)
				if err != nil {
					panic("exhaustive: enumerated invalid fork-join mapping: " + err.Error())
				}
				return visit(m, c)
			}
			free := full &^ usedMask
			for sub := free; sub > 0; sub = (sub - 1) & free {
				blocks[b].Procs = maskProcs(sub)
				blocks[b].Mode = mapping.Replicated
				if !rec(b+1, usedMask|sub) {
					return false
				}
				// Data-parallel requires the block to be leaf-only, or the
				// root alone, or the join alone.
				alone := len(blocks[b].Leaves) == 0 && !(blocks[b].Root && blocks[b].Join)
				if allowDP && ((!blocks[b].Root && !blocks[b].Join) || alone) {
					blocks[b].Mode = mapping.DataParallel
					if !rec(b+1, usedMask|sub) {
						return false
					}
				}
			}
			blocks[b].Procs = nil
			blocks[b].Mode = mapping.Replicated
			return true
		}
		return rec(0, 0)
	})
}

// forkJoinScan enumerates all mappings keeping the best acceptable one.
// lb prunes exactly as in forkScan: reaching it aborts the scan without
// changing the result (ties never replace the incumbent); lb <= 0
// disables pruning.
func forkJoinScan(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	var best ForkJoinResult
	found := false
	step := newStepper(ctx)
	enumerateForkJoinCtx(step, fj, pl, allowDP, func(m mapping.ForkJoinMapping, c mapping.Cost) bool {
		if !accept(c) {
			return true
		}
		if !found || numeric.Less(objective(c), objective(best.Cost)) {
			best = ForkJoinResult{Mapping: m, Cost: c}
			found = true
			if lb > 0 && numeric.LessEq(objective(best.Cost), lb) {
				return false
			}
		}
		return true
	})
	if step.err != nil {
		return ForkJoinResult{}, false, step.err
	}
	return best, found, nil
}

// ForkJoinPeriod returns a fork-join mapping minimizing the period.
func ForkJoinPeriod(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinPeriodCtx(context.Background(), fj, pl, allowDP)
	return res, ok
}

// ForkJoinPeriodCtx is ForkJoinPeriod with cancellation checkpoints.
func ForkJoinPeriodCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool, error) {
	lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{MinimizePeriod: true, AllowDP: allowDP})
	return forkJoinScan(ctx, fj, pl, allowDP, acceptAll, period, lb)
}

// ForkJoinLatency returns a fork-join mapping minimizing the latency.
func ForkJoinLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinLatencyCtx(context.Background(), fj, pl, allowDP)
	return res, ok
}

// ForkJoinLatencyCtx is ForkJoinLatency with cancellation checkpoints.
func ForkJoinLatencyCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, bool, error) {
	lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{AllowDP: allowDP})
	return forkJoinScan(ctx, fj, pl, allowDP, acceptAll, latency, lb)
}

// ForkJoinLatencyUnderPeriod minimizes latency under a period bound.
func ForkJoinLatencyUnderPeriod(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinLatencyUnderPeriodCtx(context.Background(), fj, pl, allowDP, maxPeriod)
	return res, ok
}

// ForkJoinLatencyUnderPeriodCtx is ForkJoinLatencyUnderPeriod with
// cancellation checkpoints.
func ForkJoinLatencyUnderPeriodCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkJoinResult, bool, error) {
	lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{AllowDP: allowDP})
	return forkJoinScan(ctx, fj, pl, allowDP,
		func(c mapping.Cost) bool { return numeric.LessEq(c.Period, maxPeriod) }, latency, lb)
}

// ForkJoinPeriodUnderLatency minimizes period under a latency bound.
func ForkJoinPeriodUnderLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxLatency float64) (ForkJoinResult, bool) {
	res, ok, _ := ForkJoinPeriodUnderLatencyCtx(context.Background(), fj, pl, allowDP, maxLatency)
	return res, ok
}

// ForkJoinPeriodUnderLatencyCtx is ForkJoinPeriodUnderLatency with
// cancellation checkpoints.
func ForkJoinPeriodUnderLatencyCtx(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxLatency float64) (ForkJoinResult, bool, error) {
	lb := anytime.ForkJoinLB(fj, pl, anytime.Spec{MinimizePeriod: true, AllowDP: allowDP})
	return forkJoinScan(ctx, fj, pl, allowDP,
		func(c mapping.Cost) bool { return numeric.LessEq(c.Latency, maxLatency) }, period, lb)
}
