package exhaustive

import (
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestForkJoinPeriodHomPlatform(t *testing.T) {
	// Section 6.3: replicating the whole graph on all processors still
	// gives the optimal period.
	fj := workflow.NewForkJoin(2, 4, 3, 3)
	pl := platform.Homogeneous(3, 1)
	res, ok := ForkJoinPeriod(fj, pl, true)
	if !ok || !numeric.Eq(res.Cost.Period, 4) { // 12/3
		t.Fatalf("period = %v, want 4 (mapping %v)", res.Cost.Period, res.Mapping)
	}
}

func TestForkJoinLatencySingleProcessor(t *testing.T) {
	fj := workflow.NewForkJoin(1, 2, 3)
	pl := platform.New(2)
	res, ok := ForkJoinLatency(fj, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 3) { // 6/2
		t.Fatalf("latency = %v, want 3", res.Cost.Latency)
	}
}

func TestForkJoinLatencyBeatsSingleProcWithTwo(t *testing.T) {
	// Root 1, leaves 3 and 3, join 1 on two unit processors. Best split:
	// {S0,S1,Sjoin} vs {S2}: leafDone = max(1+3, (1+3)/1) = 4,
	// latency = 4 + 1 = 5, versus 8 on one processor.
	fj := workflow.NewForkJoin(1, 1, 3, 3)
	pl := platform.Homogeneous(2, 1)
	res, ok := ForkJoinLatency(fj, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 5) {
		t.Fatalf("latency = %v, want 5 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
}

func TestForkJoinBoundsConsistency(t *testing.T) {
	fj := workflow.NewForkJoin(2, 2, 4, 4)
	pl := platform.Homogeneous(2, 1)
	bestL, ok := ForkJoinLatency(fj, pl, false)
	if !ok {
		t.Fatal("no mapping")
	}
	bestP, ok := ForkJoinPeriod(fj, pl, false)
	if !ok {
		t.Fatal("no mapping")
	}
	// Constrained optima sit between the mono-criterion optima.
	res, ok := ForkJoinLatencyUnderPeriod(fj, pl, false, bestP.Cost.Period)
	if !ok {
		t.Fatal("latency under optimal period infeasible")
	}
	if numeric.Less(res.Cost.Latency, bestL.Cost.Latency) {
		t.Fatalf("constrained latency %v beats optimum %v", res.Cost.Latency, bestL.Cost.Latency)
	}
	res2, ok := ForkJoinPeriodUnderLatency(fj, pl, false, bestL.Cost.Latency)
	if !ok {
		t.Fatal("period under optimal latency infeasible")
	}
	if numeric.Less(res2.Cost.Period, bestP.Cost.Period) {
		t.Fatalf("constrained period %v beats optimum %v", res2.Cost.Period, bestP.Cost.Period)
	}
}

func TestEnumerateForkJoinRespectsDataParRules(t *testing.T) {
	fj := workflow.NewForkJoin(2, 2, 3)
	pl := platform.Homogeneous(3, 1)
	EnumerateForkJoin(fj, pl, true, func(m mapping.ForkJoinMapping, _ mapping.Cost) {
		for _, b := range m.Blocks {
			if b.Mode != mapping.DataParallel {
				continue
			}
			if b.Root && (len(b.Leaves) > 0 || b.Join) {
				t.Fatal("illegal data-parallel root block enumerated")
			}
			if b.Join && (len(b.Leaves) > 0 || b.Root) {
				t.Fatal("illegal data-parallel join block enumerated")
			}
		}
	})
}

func TestForkJoinDegeneratesToFork(t *testing.T) {
	// With a negligible join weight on its own very fast processor, the
	// fork-join latency optimum approaches the fork optimum.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(2), 5)
		plf := platform.Random(rng, 2, 3)
		fj := workflow.ForkJoin{Root: f.Root, Weights: f.Weights, Join: 1e-12}
		speeds := append(append([]float64(nil), plf.Speeds...), 1e12)
		plfj := platform.New(speeds...)
		bf, ok1 := ForkLatency(f, plf, false)
		bfj, ok2 := ForkJoinLatency(fj, plfj, false)
		if !ok1 || !ok2 {
			t.Fatal("no mapping")
		}
		if numeric.Greater(bfj.Cost.Latency, bf.Cost.Latency) {
			t.Fatalf("trial %d: fork-join latency %v exceeds fork latency %v",
				trial, bfj.Cost.Latency, bf.Cost.Latency)
		}
	}
}
