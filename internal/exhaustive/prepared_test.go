package exhaustive

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// A prepared solver answering a sequence of objective/bound solves must be
// byte-identical to a freshly constructed solver per solve — resetting the
// DP epoch, reusing enumeration scratch and serving bound memos may never
// change a result. These corpora run interleaved objective sequences so
// every solve of a prepared instance executes on dirty scratch.

func TestPipelinePreparedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ctx := context.Background()
	for trial := 0; trial < 30; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(5), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		dp := trial%2 == 0
		pp := NewPipelinePrepared(p, pl, dp)

		type solve struct {
			name    string
			prep    func() (PipelineResult, bool, error)
			oneshot func() (PipelineResult, bool, error)
		}
		b1 := float64(1+rng.Intn(6)) / 2
		b2 := float64(1+rng.Intn(8)) / 2
		solves := []solve{
			{"period", func() (PipelineResult, bool, error) { return pp.Period(ctx) },
				func() (PipelineResult, bool, error) { return PipelinePeriodCtx(ctx, p, pl, dp) }},
			{"lup", func() (PipelineResult, bool, error) { return pp.LatencyUnderPeriod(ctx, b1) },
				func() (PipelineResult, bool, error) { return PipelineLatencyUnderPeriodCtx(ctx, p, pl, dp, b1) }},
			{"latency", func() (PipelineResult, bool, error) { return pp.Latency(ctx) },
				func() (PipelineResult, bool, error) { return PipelineLatencyCtx(ctx, p, pl, dp) }},
			{"pul", func() (PipelineResult, bool, error) { return pp.PeriodUnderLatency(ctx, b2) },
				func() (PipelineResult, bool, error) { return PipelinePeriodUnderLatencyCtx(ctx, p, pl, dp, b2) }},
			// Repeats exercise the memo path.
			{"lup-repeat", func() (PipelineResult, bool, error) { return pp.LatencyUnderPeriod(ctx, b1) },
				func() (PipelineResult, bool, error) { return PipelineLatencyUnderPeriodCtx(ctx, p, pl, dp, b1) }},
			{"period-repeat", func() (PipelineResult, bool, error) { return pp.Period(ctx) },
				func() (PipelineResult, bool, error) { return PipelinePeriodCtx(ctx, p, pl, dp) }},
		}
		for _, s := range solves {
			got, gotOK, err := s.prep()
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK, err := s.oneshot()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s: prepared (%v, %v) != fresh (%v, %v) for %v on %v dp=%v",
					trial, s.name, got, gotOK, want, wantOK, p, pl, dp)
			}
		}
	}
}

func TestForkPreparedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0
		fp := NewForkPrepared(f, pl, dp)
		b := float64(1+rng.Intn(8)) / 2

		check := func(name string, prep, oneshot func() (ForkResult, bool, error)) {
			t.Helper()
			got, gotOK, err := prep()
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK, err := oneshot()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s: prepared (%v, %v) != fresh (%v, %v) for %v on %v dp=%v",
					trial, name, got, gotOK, want, wantOK, f, pl, dp)
			}
		}
		check("latency", func() (ForkResult, bool, error) { return fp.Latency(ctx) },
			func() (ForkResult, bool, error) { return ForkLatencyCtx(ctx, f, pl, dp) })
		check("pul", func() (ForkResult, bool, error) { return fp.PeriodUnderLatency(ctx, b) },
			func() (ForkResult, bool, error) { return ForkPeriodUnderLatencyCtx(ctx, f, pl, dp, b) })
		check("period", func() (ForkResult, bool, error) { return fp.Period(ctx) },
			func() (ForkResult, bool, error) { return ForkPeriodCtx(ctx, f, pl, dp) })
		check("lup", func() (ForkResult, bool, error) { return fp.LatencyUnderPeriod(ctx, b) },
			func() (ForkResult, bool, error) { return ForkLatencyUnderPeriodCtx(ctx, f, pl, dp, b) })
		check("lup-repeat", func() (ForkResult, bool, error) { return fp.LatencyUnderPeriod(ctx, b) },
			func() (ForkResult, bool, error) { return ForkLatencyUnderPeriodCtx(ctx, f, pl, dp, b) })
	}
}

func TestForkJoinPreparedMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ctx := context.Background()
	for trial := 0; trial < 15; trial++ {
		fj := workflow.RandomForkJoin(rng, 1+rng.Intn(2), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0
		fp := NewForkJoinPrepared(fj, pl, dp)
		b := float64(1+rng.Intn(8)) / 2

		check := func(name string, prep, oneshot func() (ForkJoinResult, bool, error)) {
			t.Helper()
			got, gotOK, err := prep()
			if err != nil {
				t.Fatal(err)
			}
			want, wantOK, err := oneshot()
			if err != nil {
				t.Fatal(err)
			}
			if gotOK != wantOK || !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d %s: prepared (%v, %v) != fresh (%v, %v) for %v on %v dp=%v",
					trial, name, got, gotOK, want, wantOK, fj, pl, dp)
			}
		}
		check("period", func() (ForkJoinResult, bool, error) { return fp.Period(ctx) },
			func() (ForkJoinResult, bool, error) { return ForkJoinPeriodCtx(ctx, fj, pl, dp) })
		check("lup", func() (ForkJoinResult, bool, error) { return fp.LatencyUnderPeriod(ctx, b) },
			func() (ForkJoinResult, bool, error) { return ForkJoinLatencyUnderPeriodCtx(ctx, fj, pl, dp, b) })
		check("latency", func() (ForkJoinResult, bool, error) { return fp.Latency(ctx) },
			func() (ForkJoinResult, bool, error) { return ForkJoinLatencyCtx(ctx, fj, pl, dp) })
		check("pul", func() (ForkJoinResult, bool, error) { return fp.PeriodUnderLatency(ctx, b) },
			func() (ForkJoinResult, bool, error) { return ForkJoinPeriodUnderLatencyCtx(ctx, fj, pl, dp, b) })
		check("pul-repeat", func() (ForkJoinResult, bool, error) { return fp.PeriodUnderLatency(ctx, b) },
			func() (ForkJoinResult, bool, error) { return ForkJoinPeriodUnderLatencyCtx(ctx, fj, pl, dp, b) })
	}
}

// TestPipelinePreparedParetoMatchesPointwise: the prepared-solver
// PipelinePareto must equal the front assembled from one-shot solvers —
// the memo-heavy path of the tightening binary searches is exercised end
// to end.
func TestPipelinePreparedParetoMatchesPointwise(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 10; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(3), 4)
		dp := trial%2 == 0
		front := PipelinePareto(p, pl, dp)
		var want []PipelineResult
		prevLatency := numeric.Inf
		for _, k := range pipelinePeriodCandidates(p, pl, dp) {
			res, ok := PipelineLatencyUnderPeriod(p, pl, dp, k)
			if !ok || numeric.GreaterEq(res.Cost.Latency, prevLatency) {
				continue
			}
			if tight, ok := PipelinePeriodUnderLatency(p, pl, dp, res.Cost.Latency); ok {
				res = tight
			}
			want = append(want, res)
			prevLatency = res.Cost.Latency
		}
		if !reflect.DeepEqual(front, want) {
			t.Fatalf("trial %d: prepared Pareto front diverges\n got %v\nwant %v", trial, front, want)
		}
	}
}

// TestPlatformTableShared: one platform (same speed bits) resolves to one
// shared table; a different platform gets a different one.
func TestPlatformTableShared(t *testing.T) {
	a := platform.New(3, 2, 1)
	b := platform.New(3, 2, 1)
	c := platform.New(3, 2, 2)
	ta := tableFor(a)
	if tb := tableFor(b); &ta[0] != &tb[0] {
		t.Error("equal speed vectors did not share a platform table")
	}
	if tc := tableFor(c); &ta[0] == &tc[0] {
		t.Error("distinct speed vectors shared a platform table")
	}
	// Precomputed procs expand the masks correctly.
	if got := ta[0b101].procs; !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("procs(0b101) = %v, want [0 2]", got)
	}
	if got := ta[0b101]; got.count != 2 || got.min != 1 || got.max != 3 || got.sum != 4 {
		t.Errorf("maskInfo(0b101) = %+v", got)
	}
}

// TestPipelinePreparedReusesArrays: the epoch reset must not reallocate
// the DP arrays between solves.
func TestPipelinePreparedReusesArrays(t *testing.T) {
	p := workflow.NewPipeline(5, 3, 2)
	pl := platform.New(2, 1, 1)
	pp := NewPipelinePrepared(p, pl, true)
	ctx := context.Background()
	if _, _, err := pp.LatencyUnderPeriod(ctx, 4); err != nil {
		t.Fatal(err)
	}
	memo := &pp.s.memo[0]
	if _, _, err := pp.LatencyUnderPeriod(ctx, 2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pp.Period(ctx); err != nil {
		t.Fatal(err)
	}
	if memo != &pp.s.memo[0] {
		t.Error("prepared solver reallocated its DP arrays on reset")
	}
}
