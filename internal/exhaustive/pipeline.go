package exhaustive

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineResult is an optimal mapping together with its exact cost.
type PipelineResult struct {
	Mapping mapping.PipelineMapping
	Cost    mapping.Cost
}

// pipeChoice records the decision taken in a DP state for reconstruction.
type pipeChoice struct {
	last int // last stage of the chosen interval
	sub  int // processor submask assigned to it
	dp   bool
}

// pipeSolver is a dynamic program over states (next stage, used-processor
// bitmask). It is resettable: Reset rearms it for a new bound/objective on
// the same (pipeline, platform) pair without reallocating the DP arrays —
// the visited marks are epoch counters, so clearing them is one increment.
type pipeSolver struct {
	p       workflow.Pipeline
	pl      platform.Platform
	info    []maskInfo
	allowDP bool
	// periodCap excludes groups whose period exceeds it (+Inf = no cap).
	periodCap float64
	// minimizePeriod selects the objective: min-max of group periods when
	// true, min-sum of group delays when false.
	minimizePeriod bool

	memo []float64
	// visited[id] == epoch marks id as solved in the current epoch; Reset
	// bumps epoch instead of clearing the array.
	visited []uint32
	epoch   uint32
	choice  []pipeChoice
	full    int
	n       int
	pbits   int // pl.Processors(), the state-id shift
	step    *stepper
	// suffix[i] is the total weight of stages i..n-1, feeding the
	// anytime lower bound that prunes a state's search once its best
	// value provably cannot improve.
	suffix []float64
	// prune disables the bound cutoffs when false (the regression tests
	// compare pruned against unpruned searches byte for byte).
	prune bool
	// par is the worker count of the parallel level sweep; <= 1 keeps the
	// serial top-down recursion (see solveParallel for the contract).
	par int
}

func newPipeSolver(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, periodCap float64, minimizePeriod bool) *pipeSolver {
	n := p.Stages()
	states := (n + 1) << pl.Processors()
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + p.Weights[i]
	}
	return &pipeSolver{
		p: p, pl: pl, info: tableFor(pl), allowDP: allowDP,
		periodCap: periodCap, minimizePeriod: minimizePeriod,
		memo:    make([]float64, states),
		visited: make([]uint32, states),
		epoch:   1,
		choice:  make([]pipeChoice, states),
		full:    (1 << pl.Processors()) - 1,
		n:       n,
		pbits:   pl.Processors(),
		step:    newStepper(ctx),
		suffix:  suffix,
		prune:   true,
	}
}

// reset rearms the solver for a fresh solve under a new cap/objective: the
// DP state is invalidated by bumping the epoch (no reallocation, no
// clearing), and the stepper is rearmed on ctx.
func (s *pipeSolver) reset(ctx context.Context, periodCap float64, minimizePeriod bool) {
	s.periodCap = periodCap
	s.minimizePeriod = minimizePeriod
	s.epoch++
	if s.epoch == 0 { // wrapped: every stale mark looks current, so clear
		clear(s.visited)
		s.epoch = 1
	}
	s.step.reset(ctx)
}

// stateLB returns the anytime lower bound on the state value of mapping
// stages i..n-1 onto the processors in freeMask, or -1 when no bound
// applies. The bound is exact-search-safe: stopping a state's loops once
// its best reaches the bound cannot change the returned mapping, because
// later candidates can at most tie and ties never replace the incumbent
// choice.
func (s *pipeSolver) stateLB(i, freeMask int) float64 {
	if !s.prune || freeMask == 0 {
		return -1
	}
	fi := &s.info[freeMask]
	if s.minimizePeriod {
		return anytime.PeriodLB(s.suffix[i], fi.sum)
	}
	return anytime.LatencyLB(s.suffix[i], fi.sum, fi.max, s.allowDP)
}

// solve returns the optimal objective value for mapping stages i..n-1 with
// the processors in usedMask unavailable, or +Inf if infeasible under the
// period cap.
//
// The enumeration runs subsets outer, interval ends inner: for a fixed
// subset both the replicated period and delay grow with the interval
// weight, so the period-cap filter and the cannot-improve filter terminate
// the inner loop instead of skipping one iteration — the exact set of
// surviving candidates is unchanged (both predicates are monotone in the
// group cost), only the wasted iterations disappear.
func (s *pipeSolver) solve(i, usedMask int) float64 {
	if i == s.n {
		return 0
	}
	id := i<<s.pbits | usedMask
	if s.visited[id] == s.epoch {
		return s.memo[id]
	}
	s.visited[id] = s.epoch
	best := numeric.Inf
	var bestChoice pipeChoice
	free := s.full &^ usedMask
	lb := s.stateLB(i, free)
	cap := s.periodCap
	minP := s.minimizePeriod
	wi := s.p.Weights[i]
search:
	for sub := free; sub > 0; sub = (sub - 1) & free {
		if !s.step.ok() {
			// Cancelled: abandon the state (memo holds a partial value
			// that is never read — result() surfaces the error first).
			return numeric.Inf
		}
		info := &s.info[sub]
		// Replicated intervals i..j, weight growing with j.
		w := 0.0
		for j := i; j < s.n; j++ {
			w += s.p.Weights[j]
			period := w * info.perInv
			if numeric.Greater(period, cap) {
				break // larger intervals only raise the period
			}
			group := period
			if !minP {
				group = w * info.invMin // delay
			}
			if numeric.GreaterEq(group, best) {
				break // cannot improve: both max and sum combine monotonically
			}
			rest := s.solve(j+1, usedMask|sub)
			total := group + rest
			if minP {
				total = rest
				if group > rest {
					total = group
				}
			}
			if numeric.Less(total, best) {
				best = total
				bestChoice = pipeChoice{last: j, sub: sub, dp: false}
				if lb >= 0 && numeric.LessEq(best, lb) {
					// The state reached its lower bound: no candidate
					// can strictly improve, and ties never replace the
					// recorded choice.
					break search
				}
			}
		}
		if s.allowDP {
			// Data-parallel is legal for single-stage groups only: stage i
			// alone on the subset.
			c := wi * info.invSum
			if !numeric.Greater(c, cap) && !numeric.GreaterEq(c, best) {
				rest := s.solve(i+1, usedMask|sub)
				total := c + rest
				if minP {
					total = rest
					if c > rest {
						total = c
					}
				}
				if numeric.Less(total, best) {
					best = total
					bestChoice = pipeChoice{last: i, sub: sub, dp: true}
					if lb >= 0 && numeric.LessEq(best, lb) {
						break search
					}
				}
			}
		}
	}
	s.memo[id] = best
	s.choice[id] = bestChoice
	return best
}

// evalState runs the candidate loops of one DP state and returns its
// value and recorded choice; ok is false once the stepper latches a
// cancellation. It is the parallel level sweep's copy of the state
// logic in solve, with the recursion replaced by the child callback (a
// completed-memo lookup) and cancellation polled through the worker's
// own stepper. The loops MUST stay line-for-line in sync with solve —
// the serial recursion keeps its direct calls because the indirect
// child call costs ~30% on the DP hot path — and the parallel identity
// corpus pins the two schedules to bit-equal values and choices for
// every state.
func (s *pipeSolver) evalState(i, usedMask int, st *stepper, child func(i, mask int) float64) (float64, pipeChoice, bool) {
	best := numeric.Inf
	var bestChoice pipeChoice
	free := s.full &^ usedMask
	lb := s.stateLB(i, free)
	cap := s.periodCap
	minP := s.minimizePeriod
	wi := s.p.Weights[i]
search:
	for sub := free; sub > 0; sub = (sub - 1) & free {
		if !st.ok() {
			return numeric.Inf, pipeChoice{}, false
		}
		info := &s.info[sub]
		// Replicated intervals i..j, weight growing with j.
		w := 0.0
		for j := i; j < s.n; j++ {
			w += s.p.Weights[j]
			period := w * info.perInv
			if numeric.Greater(period, cap) {
				break // larger intervals only raise the period
			}
			group := period
			if !minP {
				group = w * info.invMin // delay
			}
			if numeric.GreaterEq(group, best) {
				break // cannot improve: both max and sum combine monotonically
			}
			rest := child(j+1, usedMask|sub)
			total := group + rest
			if minP {
				total = rest
				if group > rest {
					total = group
				}
			}
			if numeric.Less(total, best) {
				best = total
				bestChoice = pipeChoice{last: j, sub: sub, dp: false}
				if lb >= 0 && numeric.LessEq(best, lb) {
					// The state reached its lower bound: no candidate
					// can strictly improve, and ties never replace the
					// recorded choice.
					break search
				}
			}
		}
		if s.allowDP {
			// Data-parallel is legal for single-stage groups only: stage i
			// alone on the subset.
			c := wi * info.invSum
			if !numeric.Greater(c, cap) && !numeric.GreaterEq(c, best) {
				rest := child(i+1, usedMask|sub)
				total := c + rest
				if minP {
					total = rest
					if c > rest {
						total = c
					}
				}
				if numeric.Less(total, best) {
					best = total
					bestChoice = pipeChoice{last: i, sub: sub, dp: true}
					if lb >= 0 && numeric.LessEq(best, lb) {
						break search
					}
				}
			}
		}
	}
	return best, bestChoice, true
}

// parChunk is how many DP states a sweep worker claims per fetch of the
// shared level counter: enough to amortize the atomic increment, few
// enough that the expensive low-population masks spread across workers.
const parChunk = 32

// solveParallel fills the DP table bottom-up, one stage level at a time:
// a state at level i only reads states at levels > i, so all masks of a
// level are independent and compute concurrently — workers claim
// contiguous mask chunks from a shared counter (work stealing by
// construction: a worker that finishes its chunk immediately claims the
// next), with a barrier between levels giving the happens-before edge
// the next level's reads need. Each worker polls cancellation through
// its own stepper; the shared solver stepper stays untouched until the
// root state.
//
// Determinism: every state's value and choice come from evalState, the
// same loops the serial recursion runs, and they depend only on deeper
// levels — never on sibling order — so the table, the root value and the
// reconstructed mapping are byte-identical to serial. The sweep computes
// every mask, including states the top-down recursion never reaches;
// that extra work is why small instances stay serial (core's auto mode
// applies a crossover heuristic before enabling the sweep).
func (s *pipeSolver) solveParallel() float64 {
	ctx := s.step.ctx
	nmasks := 1 << s.pbits
	child := func(i, mask int) float64 {
		if i == s.n {
			return 0
		}
		return s.memo[i<<s.pbits|mask]
	}
	var cancelled atomic.Bool
	for i := s.n - 1; i >= 1; i-- {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < s.par; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				st := newStepper(ctx)
				for {
					lo := int(next.Add(parChunk)) - parChunk
					if lo >= nmasks || cancelled.Load() {
						return
					}
					hi := min(lo+parChunk, nmasks)
					for mask := lo; mask < hi; mask++ {
						v, ch, ok := s.evalState(i, mask, st, child)
						if !ok {
							cancelled.Store(true)
							return
						}
						id := i<<s.pbits | mask
						s.memo[id] = v
						s.choice[id] = ch
						s.visited[id] = s.epoch
					}
				}
			}()
		}
		wg.Wait()
		if cancelled.Load() {
			s.step.err = ctx.Err()
			return numeric.Inf
		}
	}
	v, ch, ok := s.evalState(0, 0, s.step, child)
	if !ok {
		return numeric.Inf
	}
	s.memo[0] = v
	s.choice[0] = ch
	s.visited[0] = s.epoch
	return v
}

// reconstruct rebuilds the optimal mapping from the recorded choices.
// Procs slices are copied out of the platform table here — once per
// returned mapping, never in the search loops — so callers own (and may
// mutate) their mappings without corrupting the process-wide table.
func (s *pipeSolver) reconstruct() mapping.PipelineMapping {
	var m mapping.PipelineMapping
	i, usedMask := 0, 0
	for i < s.n {
		id := i<<s.pbits | usedMask
		ch := s.choice[id]
		mode := mapping.Replicated
		if ch.dp {
			mode = mapping.DataParallel
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: i, Last: ch.last,
			Assignment: mapping.Assignment{Procs: append([]int(nil), s.info[ch.sub].procs...), Mode: mode},
		})
		usedMask |= ch.sub
		i = ch.last + 1
	}
	return m
}

func (s *pipeSolver) result() (PipelineResult, bool, error) {
	var v float64
	if s.par > 1 && s.n > 0 {
		v = s.solveParallel()
	} else {
		v = s.solve(0, 0)
	}
	if s.step.err != nil {
		return PipelineResult{}, false, s.step.err
	}
	if math.IsInf(v, 1) {
		return PipelineResult{}, false, nil
	}
	m := s.reconstruct()
	c, err := mapping.EvalPipeline(s.p, s.pl, m)
	if err != nil {
		// The DP only builds structurally valid mappings; an error here is a
		// programming bug, surface it loudly.
		panic("exhaustive: reconstructed invalid pipeline mapping: " + err.Error())
	}
	return PipelineResult{Mapping: m, Cost: c}, true, nil
}

// pipeMemo is one memoized bounded solve of a prepared pipeline solver.
type pipeMemo struct {
	res PipelineResult
	ok  bool
}

// PipelinePrepared solves repeated objective/bound variants of one
// (pipeline, platform, model) triple, sharing the platform subset table,
// the DP arrays (reset by epoch, not reallocation), the candidate-period
// set of the bi-criteria binary search, and a per-bound result memo across
// solves. Results are byte-identical to the one-shot package functions —
// which are thin wrappers over a prepared solver used once.
//
// A PipelinePrepared is NOT safe for concurrent use: callers pool
// instances (one per worker) instead of locking.
type PipelinePrepared struct {
	p       workflow.Pipeline
	pl      platform.Platform
	allowDP bool
	s       *pipeSolver
	// cands is the lazily built candidate-period set of
	// PeriodUnderLatency's binary search.
	cands []float64
	// lup memoizes LatencyUnderPeriod solves by the period cap's bits
	// (math.Float64bits, so caps differing by one ULP stay distinct).
	// +Inf is the unbounded MinLatency solve.
	lup map[uint64]pipeMemo
	// period memoizes the single MinPeriod solve.
	period    pipeMemo
	hasPeriod bool
}

// NewPipelinePrepared returns a prepared solver for the triple. The
// platform table is fetched from the process-wide cache; no DP work
// happens until the first solve.
func NewPipelinePrepared(p workflow.Pipeline, pl platform.Platform, allowDP bool) *PipelinePrepared {
	return &PipelinePrepared{
		p: p, pl: pl, allowDP: allowDP,
		s:   newPipeSolver(context.Background(), p, pl, allowDP, numeric.Inf, true),
		lup: make(map[uint64]pipeMemo),
	}
}

// SetParallelism sets the worker count of subsequent solves: counts
// above 1 select the level-synchronous parallel DP sweep, anything else
// the serial recursion. Results are byte-identical either way (see
// solveParallel), so the per-bound memos may freely mix entries computed
// at different counts. The prepared solver itself remains single-owner:
// parallelism fans out inside one solve, it does not make the solver
// safe for concurrent use.
func (pp *PipelinePrepared) SetParallelism(workers int) {
	pp.s.par = workers
}

// clone returns a result whose interval slice is independent of the memo,
// so every solve hands out a fresh mapping exactly like a fresh solver
// (the read-only Procs slices stay shared, as everywhere else).
func (m pipeMemo) clone() (PipelineResult, bool) {
	res := m.res
	res.Mapping.Intervals = append([]mapping.PipelineInterval(nil), res.Mapping.Intervals...)
	return res, m.ok
}

// Period solves MinPeriod.
func (pp *PipelinePrepared) Period(ctx context.Context) (PipelineResult, bool, error) {
	if !pp.hasPeriod {
		pp.s.reset(ctx, numeric.Inf, true)
		res, ok, err := pp.s.result()
		if err != nil {
			return PipelineResult{}, false, err
		}
		pp.period = pipeMemo{res: res, ok: ok}
		pp.hasPeriod = true
	}
	res, ok := pp.period.clone()
	return res, ok, nil
}

// Latency solves MinLatency.
func (pp *PipelinePrepared) Latency(ctx context.Context) (PipelineResult, bool, error) {
	return pp.LatencyUnderPeriod(ctx, numeric.Inf)
}

// LatencyUnderPeriod solves min-latency under the period cap. Repeated
// caps (bit-identical floats) are answered from the memo.
func (pp *PipelinePrepared) LatencyUnderPeriod(ctx context.Context, maxPeriod float64) (PipelineResult, bool, error) {
	key := math.Float64bits(maxPeriod)
	m, hit := pp.lup[key]
	if !hit {
		pp.s.reset(ctx, maxPeriod, false)
		res, ok, err := pp.s.result()
		if err != nil {
			return PipelineResult{}, false, err
		}
		m = pipeMemo{res: res, ok: ok}
		pp.lup[key] = m
	}
	res, ok := m.clone()
	return res, ok, nil
}

// candidates returns the achievable group periods, built once per prepared
// solver.
func (pp *PipelinePrepared) candidates() []float64 {
	if pp.cands == nil {
		pp.cands = pipelinePeriodCandidates(pp.p, pp.pl, pp.allowDP)
	}
	return pp.cands
}

// PeriodUnderLatency solves min-period under the latency cap by binary
// search over the (cached) finite set of achievable group periods; every
// probe shares the DP arrays and feeds the LatencyUnderPeriod memo, so
// overlapping searches (the tightening probes of a Pareto sweep) skip
// their common prefixes entirely.
func (pp *PipelinePrepared) PeriodUnderLatency(ctx context.Context, maxLatency float64) (PipelineResult, bool, error) {
	cands := pp.candidates()
	lo, hi := 0, len(cands)-1
	var best PipelineResult
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok, err := pp.LatencyUnderPeriod(ctx, cands[mid])
		if err != nil {
			return PipelineResult{}, false, err
		}
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}

// Solve dispatches on (minimizePeriod, bound): the four objective shapes
// of the Table 1 bi-criteria columns, sharing one prepared state.
// Unbounded solves pass bound = +Inf.
func (pp *PipelinePrepared) Solve(ctx context.Context, minimizePeriod bool, bound float64) (PipelineResult, bool, error) {
	switch {
	case minimizePeriod && math.IsInf(bound, 1):
		return pp.Period(ctx)
	case minimizePeriod:
		return pp.PeriodUnderLatency(ctx, bound)
	default:
		return pp.LatencyUnderPeriod(ctx, bound)
	}
}

// PipelinePeriod returns a mapping minimizing the period.
func PipelinePeriod(p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool) {
	res, ok, _ := PipelinePeriodCtx(context.Background(), p, pl, allowDP)
	return res, ok
}

// PipelinePeriodCtx is PipelinePeriod with cancellation checkpoints: when
// ctx is cancelled mid-search the error is ctx.Err() and the result is
// discarded.
func PipelinePeriodCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool, error) {
	return NewPipelinePrepared(p, pl, allowDP).Period(ctx)
}

// PipelineLatency returns a mapping minimizing the latency.
func PipelineLatency(p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool) {
	res, ok, _ := PipelineLatencyCtx(context.Background(), p, pl, allowDP)
	return res, ok
}

// PipelineLatencyCtx is PipelineLatency with cancellation checkpoints.
func PipelineLatencyCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool, error) {
	return NewPipelinePrepared(p, pl, allowDP).Latency(ctx)
}

// PipelineLatencyUnderPeriod returns a mapping minimizing the latency among
// mappings whose period does not exceed maxPeriod. The boolean is false
// when no mapping satisfies the period bound.
func PipelineLatencyUnderPeriod(p workflow.Pipeline, pl platform.Platform, allowDP bool, maxPeriod float64) (PipelineResult, bool) {
	res, ok, _ := PipelineLatencyUnderPeriodCtx(context.Background(), p, pl, allowDP, maxPeriod)
	return res, ok
}

// PipelineLatencyUnderPeriodCtx is PipelineLatencyUnderPeriod with
// cancellation checkpoints.
func PipelineLatencyUnderPeriodCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, maxPeriod float64) (PipelineResult, bool, error) {
	return NewPipelinePrepared(p, pl, allowDP).LatencyUnderPeriod(ctx, maxPeriod)
}

// pipelinePeriodCandidates returns every achievable group period of any
// stage interval on any processor subset, sorted ascending and deduplicated.
// The optimal period of any mapping is one of these values.
func pipelinePeriodCandidates(p workflow.Pipeline, pl platform.Platform, allowDP bool) []float64 {
	info := tableFor(pl)
	var vals []float64
	n := p.Stages()
	for i := 0; i < n; i++ {
		w := 0.0
		for j := i; j < n; j++ {
			w += p.Weights[j]
			for mask := 1; mask < 1<<pl.Processors(); mask++ {
				per, _ := groupCosts(w, info[mask], false)
				vals = append(vals, per)
				if allowDP && i == j {
					per, _ = groupCosts(w, info[mask], true)
					vals = append(vals, per)
				}
			}
		}
	}
	return dedupSorted(vals)
}

// PipelinePeriodUnderLatency returns a mapping minimizing the period among
// mappings whose latency does not exceed maxLatency. It binary-searches the
// finite set of achievable group periods, so the result is exact. The
// boolean is false when no mapping satisfies the latency bound.
func PipelinePeriodUnderLatency(p workflow.Pipeline, pl platform.Platform, allowDP bool, maxLatency float64) (PipelineResult, bool) {
	res, ok, _ := PipelinePeriodUnderLatencyCtx(context.Background(), p, pl, allowDP, maxLatency)
	return res, ok
}

// PipelinePeriodUnderLatencyCtx is PipelinePeriodUnderLatency with
// cancellation checkpoints.
func PipelinePeriodUnderLatencyCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, maxLatency float64) (PipelineResult, bool, error) {
	return NewPipelinePrepared(p, pl, allowDP).PeriodUnderLatency(ctx, maxLatency)
}

// PipelinePareto returns the exact Pareto front of (period, latency),
// ordered by increasing period and decreasing latency. Each point carries a
// mapping achieving it.
func PipelinePareto(p workflow.Pipeline, pl platform.Platform, allowDP bool) []PipelineResult {
	pp := NewPipelinePrepared(p, pl, allowDP)
	cands := pp.candidates()
	var front []PipelineResult
	prevLatency := numeric.Inf
	ctx := context.Background()
	for _, k := range cands {
		res, ok, _ := pp.LatencyUnderPeriod(ctx, k)
		if !ok {
			continue
		}
		if numeric.GreaterEq(res.Cost.Latency, prevLatency) {
			continue
		}
		// Tighten the period: find the smallest period achieving this latency.
		tight, ok, _ := pp.PeriodUnderLatency(ctx, res.Cost.Latency)
		if ok {
			res = tight
		}
		front = append(front, res)
		prevLatency = res.Cost.Latency
	}
	return front
}

// enumeratePipeline invokes visit for every valid canonical pipeline
// mapping (processor sets as subsets, both modes where legal). It is a
// slower, independent ground truth used to cross-check the DP solvers in
// tests.
func enumeratePipeline(p workflow.Pipeline, pl platform.Platform, allowDP bool, visit func(mapping.PipelineMapping, mapping.Cost)) {
	n := p.Stages()
	full := (1 << pl.Processors()) - 1
	info := tableFor(pl)
	var rec func(i, usedMask int, acc []mapping.PipelineInterval)
	rec = func(i, usedMask int, acc []mapping.PipelineInterval) {
		if i == n {
			m := mapping.PipelineMapping{Intervals: append([]mapping.PipelineInterval(nil), acc...)}
			c, err := mapping.EvalPipeline(p, pl, m)
			if err != nil {
				panic("exhaustive: enumerated invalid mapping: " + err.Error())
			}
			visit(m, c)
			return
		}
		free := full &^ usedMask
		for j := i; j < n; j++ {
			for sub := free; sub > 0; sub = (sub - 1) & free {
				modes := []mapping.Mode{mapping.Replicated}
				if allowDP && i == j {
					modes = append(modes, mapping.DataParallel)
				}
				for _, mode := range modes {
					iv := mapping.PipelineInterval{
						First: i, Last: j,
						Assignment: mapping.Assignment{Procs: append([]int(nil), info[sub].procs...), Mode: mode},
					}
					rec(j+1, usedMask|sub, append(acc, iv))
				}
			}
		}
	}
	rec(0, 0, nil)
}
