package exhaustive

import (
	"context"
	"math"

	"repliflow/internal/anytime"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineResult is an optimal mapping together with its exact cost.
type PipelineResult struct {
	Mapping mapping.PipelineMapping
	Cost    mapping.Cost
}

// pipeChoice records the decision taken in a DP state for reconstruction.
type pipeChoice struct {
	last int // last stage of the chosen interval
	sub  int // processor submask assigned to it
	dp   bool
}

// pipeSolver is a dynamic program over states (next stage, used-processor
// bitmask).
type pipeSolver struct {
	p       workflow.Pipeline
	pl      platform.Platform
	info    []maskInfo
	allowDP bool
	// periodCap excludes groups whose period exceeds it (+Inf = no cap).
	periodCap float64
	// minimizePeriod selects the objective: min-max of group periods when
	// true, min-sum of group delays when false.
	minimizePeriod bool

	memo    []float64
	visited []bool
	choice  []pipeChoice
	full    int
	n       int
	step    *stepper
	// suffix[i] is the total weight of stages i..n-1, feeding the
	// anytime lower bound that prunes a state's search once its best
	// value provably cannot improve.
	suffix []float64
	// prune disables the bound cutoffs when false (the regression tests
	// compare pruned against unpruned searches byte for byte).
	prune bool
}

func newPipeSolver(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, periodCap float64, minimizePeriod bool) *pipeSolver {
	n := p.Stages()
	states := (n + 1) << pl.Processors()
	suffix := make([]float64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + p.Weights[i]
	}
	return &pipeSolver{
		p: p, pl: pl, info: buildMaskInfo(pl), allowDP: allowDP,
		periodCap: periodCap, minimizePeriod: minimizePeriod,
		memo:    make([]float64, states),
		visited: make([]bool, states),
		choice:  make([]pipeChoice, states),
		full:    (1 << pl.Processors()) - 1,
		n:       n,
		step:    newStepper(ctx),
		suffix:  suffix,
		prune:   true,
	}
}

// stateLB returns the anytime lower bound on the state value of mapping
// stages i..n-1 onto the processors in freeMask, or -1 when no bound
// applies. The bound is exact-search-safe: stopping a state's loops once
// its best reaches the bound cannot change the returned mapping, because
// later candidates can at most tie and ties never replace the incumbent
// choice.
func (s *pipeSolver) stateLB(i, freeMask int) float64 {
	if !s.prune || freeMask == 0 {
		return -1
	}
	fi := s.info[freeMask]
	if s.minimizePeriod {
		return anytime.PeriodLB(s.suffix[i], fi.sum)
	}
	return anytime.LatencyLB(s.suffix[i], fi.sum, fi.max, s.allowDP)
}

// solve returns the optimal objective value for mapping stages i..n-1 with
// the processors in usedMask unavailable, or +Inf if infeasible under the
// period cap.
func (s *pipeSolver) solve(i, usedMask int) float64 {
	if i == s.n {
		return 0
	}
	id := i<<s.pl.Processors() | usedMask
	if s.visited[id] {
		return s.memo[id]
	}
	s.visited[id] = true
	best := numeric.Inf
	var bestChoice pipeChoice
	free := s.full &^ usedMask
	lb := s.stateLB(i, free)
	w := 0.0
search:
	for j := i; j < s.n; j++ {
		w += s.p.Weights[j]
		for sub := free; sub > 0; sub = (sub - 1) & free {
			if !s.step.ok() {
				// Cancelled: abandon the state (memo holds a partial value
				// that is never read — result() surfaces the error first).
				return numeric.Inf
			}
			info := s.info[sub]
			for _, dp := range []bool{false, true} {
				if dp && (!s.allowDP || j != i) {
					continue
				}
				period, delay := groupCosts(w, info, dp)
				if numeric.Greater(period, s.periodCap) {
					continue
				}
				group := delay
				if s.minimizePeriod {
					group = period
				}
				if numeric.GreaterEq(group, best) {
					continue // cannot improve: both max and sum combine monotonically
				}
				rest := s.solve(j+1, usedMask|sub)
				total := group + rest
				if s.minimizePeriod {
					total = math.Max(group, rest)
				}
				if numeric.Less(total, best) {
					best = total
					bestChoice = pipeChoice{last: j, sub: sub, dp: dp}
					if lb >= 0 && numeric.LessEq(best, lb) {
						// The state reached its lower bound: no candidate
						// can strictly improve, and ties never replace the
						// recorded choice.
						break search
					}
				}
			}
		}
	}
	s.memo[id] = best
	s.choice[id] = bestChoice
	return best
}

// reconstruct rebuilds the optimal mapping from the recorded choices.
func (s *pipeSolver) reconstruct() mapping.PipelineMapping {
	var m mapping.PipelineMapping
	i, usedMask := 0, 0
	for i < s.n {
		id := i<<s.pl.Processors() | usedMask
		ch := s.choice[id]
		mode := mapping.Replicated
		if ch.dp {
			mode = mapping.DataParallel
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: i, Last: ch.last,
			Assignment: mapping.Assignment{Procs: maskProcs(ch.sub), Mode: mode},
		})
		usedMask |= ch.sub
		i = ch.last + 1
	}
	return m
}

func (s *pipeSolver) result() (PipelineResult, bool, error) {
	v := s.solve(0, 0)
	if s.step.err != nil {
		return PipelineResult{}, false, s.step.err
	}
	if math.IsInf(v, 1) {
		return PipelineResult{}, false, nil
	}
	m := s.reconstruct()
	c, err := mapping.EvalPipeline(s.p, s.pl, m)
	if err != nil {
		// The DP only builds structurally valid mappings; an error here is a
		// programming bug, surface it loudly.
		panic("exhaustive: reconstructed invalid pipeline mapping: " + err.Error())
	}
	return PipelineResult{Mapping: m, Cost: c}, true, nil
}

// PipelinePeriod returns a mapping minimizing the period.
func PipelinePeriod(p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool) {
	res, ok, _ := PipelinePeriodCtx(context.Background(), p, pl, allowDP)
	return res, ok
}

// PipelinePeriodCtx is PipelinePeriod with cancellation checkpoints: when
// ctx is cancelled mid-search the error is ctx.Err() and the result is
// discarded.
func PipelinePeriodCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool, error) {
	return newPipeSolver(ctx, p, pl, allowDP, numeric.Inf, true).result()
}

// PipelineLatency returns a mapping minimizing the latency.
func PipelineLatency(p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool) {
	res, ok, _ := PipelineLatencyCtx(context.Background(), p, pl, allowDP)
	return res, ok
}

// PipelineLatencyCtx is PipelineLatency with cancellation checkpoints.
func PipelineLatencyCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool) (PipelineResult, bool, error) {
	return newPipeSolver(ctx, p, pl, allowDP, numeric.Inf, false).result()
}

// PipelineLatencyUnderPeriod returns a mapping minimizing the latency among
// mappings whose period does not exceed maxPeriod. The boolean is false
// when no mapping satisfies the period bound.
func PipelineLatencyUnderPeriod(p workflow.Pipeline, pl platform.Platform, allowDP bool, maxPeriod float64) (PipelineResult, bool) {
	res, ok, _ := PipelineLatencyUnderPeriodCtx(context.Background(), p, pl, allowDP, maxPeriod)
	return res, ok
}

// PipelineLatencyUnderPeriodCtx is PipelineLatencyUnderPeriod with
// cancellation checkpoints.
func PipelineLatencyUnderPeriodCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, maxPeriod float64) (PipelineResult, bool, error) {
	return newPipeSolver(ctx, p, pl, allowDP, maxPeriod, false).result()
}

// pipelinePeriodCandidates returns every achievable group period of any
// stage interval on any processor subset, sorted ascending and deduplicated.
// The optimal period of any mapping is one of these values.
func pipelinePeriodCandidates(p workflow.Pipeline, pl platform.Platform, allowDP bool) []float64 {
	info := buildMaskInfo(pl)
	var vals []float64
	n := p.Stages()
	for i := 0; i < n; i++ {
		w := 0.0
		for j := i; j < n; j++ {
			w += p.Weights[j]
			for mask := 1; mask < 1<<pl.Processors(); mask++ {
				per, _ := groupCosts(w, info[mask], false)
				vals = append(vals, per)
				if allowDP && i == j {
					per, _ = groupCosts(w, info[mask], true)
					vals = append(vals, per)
				}
			}
		}
	}
	return dedupSorted(vals)
}

// PipelinePeriodUnderLatency returns a mapping minimizing the period among
// mappings whose latency does not exceed maxLatency. It binary-searches the
// finite set of achievable group periods, so the result is exact. The
// boolean is false when no mapping satisfies the latency bound.
func PipelinePeriodUnderLatency(p workflow.Pipeline, pl platform.Platform, allowDP bool, maxLatency float64) (PipelineResult, bool) {
	res, ok, _ := PipelinePeriodUnderLatencyCtx(context.Background(), p, pl, allowDP, maxLatency)
	return res, ok
}

// PipelinePeriodUnderLatencyCtx is PipelinePeriodUnderLatency with
// cancellation checkpoints.
func PipelinePeriodUnderLatencyCtx(ctx context.Context, p workflow.Pipeline, pl platform.Platform, allowDP bool, maxLatency float64) (PipelineResult, bool, error) {
	cands := pipelinePeriodCandidates(p, pl, allowDP)
	lo, hi := 0, len(cands)-1
	var best PipelineResult
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok, err := PipelineLatencyUnderPeriodCtx(ctx, p, pl, allowDP, cands[mid])
		if err != nil {
			return PipelineResult{}, false, err
		}
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}

// PipelinePareto returns the exact Pareto front of (period, latency),
// ordered by increasing period and decreasing latency. Each point carries a
// mapping achieving it.
func PipelinePareto(p workflow.Pipeline, pl platform.Platform, allowDP bool) []PipelineResult {
	cands := pipelinePeriodCandidates(p, pl, allowDP)
	var front []PipelineResult
	prevLatency := numeric.Inf
	for _, k := range cands {
		res, ok := PipelineLatencyUnderPeriod(p, pl, allowDP, k)
		if !ok {
			continue
		}
		if numeric.GreaterEq(res.Cost.Latency, prevLatency) {
			continue
		}
		// Tighten the period: find the smallest period achieving this latency.
		tight, ok := PipelinePeriodUnderLatency(p, pl, allowDP, res.Cost.Latency)
		if ok {
			res = tight
		}
		front = append(front, res)
		prevLatency = res.Cost.Latency
	}
	return front
}

// enumeratePipeline invokes visit for every valid canonical pipeline
// mapping (processor sets as subsets, both modes where legal). It is a
// slower, independent ground truth used to cross-check the DP solvers in
// tests.
func enumeratePipeline(p workflow.Pipeline, pl platform.Platform, allowDP bool, visit func(mapping.PipelineMapping, mapping.Cost)) {
	n := p.Stages()
	full := (1 << pl.Processors()) - 1
	var rec func(i, usedMask int, acc []mapping.PipelineInterval)
	rec = func(i, usedMask int, acc []mapping.PipelineInterval) {
		if i == n {
			m := mapping.PipelineMapping{Intervals: append([]mapping.PipelineInterval(nil), acc...)}
			c, err := mapping.EvalPipeline(p, pl, m)
			if err != nil {
				panic("exhaustive: enumerated invalid mapping: " + err.Error())
			}
			visit(m, c)
			return
		}
		free := full &^ usedMask
		for j := i; j < n; j++ {
			for sub := free; sub > 0; sub = (sub - 1) & free {
				modes := []mapping.Mode{mapping.Replicated}
				if allowDP && i == j {
					modes = append(modes, mapping.DataParallel)
				}
				for _, mode := range modes {
					iv := mapping.PipelineInterval{
						First: i, Last: j,
						Assignment: mapping.Assignment{Procs: maskProcs(sub), Mode: mode},
					}
					rec(j+1, usedMask|sub, append(acc, iv))
				}
			}
		}
	}
	rec(0, 0, nil)
}
