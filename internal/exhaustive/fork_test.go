package exhaustive

import (
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestPartitionsCount(t *testing.T) {
	// Bell numbers: partitions of m items (unbounded blocks).
	bell := map[int]int{1: 1, 2: 2, 3: 5, 4: 15, 5: 52}
	for m, want := range bell {
		got := 0
		partitions(make([]int, m), m, m, func([]int, int) bool { got++; return true })
		if got != want {
			t.Errorf("partitions(%d) = %d, want %d", m, got, want)
		}
	}
}

func TestPartitionsBlockBound(t *testing.T) {
	// Partitions of 4 items into at most 2 blocks: S(4,1)+S(4,2) = 1+7 = 8.
	got := 0
	partitions(make([]int, 4), 4, 2, func(_ []int, blocks int) bool {
		if blocks > 2 {
			t.Fatal("block bound exceeded")
		}
		got++
		return true
	})
	if got != 8 {
		t.Errorf("bounded partitions = %d, want 8", got)
	}
}

func TestForkPeriodHomPlatform(t *testing.T) {
	// Theorem 10: minimum period is total work / total speed, achieved by
	// replicating everything everywhere.
	f := workflow.NewFork(2, 3, 5, 2)
	pl := platform.Homogeneous(3, 1)
	res, ok := ForkPeriod(f, pl, true)
	if !ok || !numeric.Eq(res.Cost.Period, 4) { // 12/3
		t.Fatalf("period = %v, want 4 (mapping %v)", res.Cost.Period, res.Mapping)
	}
}

func TestForkLatencySingleProcessor(t *testing.T) {
	f := workflow.NewFork(2, 3, 5)
	pl := platform.New(2)
	res, ok := ForkLatency(f, pl, true)
	if !ok || !numeric.Eq(res.Cost.Latency, 5) { // 10/2
		t.Fatalf("latency = %v, want 5", res.Cost.Latency)
	}
}

func TestForkLatencyTwoProcessorSplit(t *testing.T) {
	// Fork w0=1, leaves 3 and 3, two unit processors. Putting one leaf with
	// the root and one apart gives latency max(4, 1+3) = 4.
	f := workflow.NewFork(1, 3, 3)
	pl := platform.Homogeneous(2, 1)
	res, ok := ForkLatency(f, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 4) {
		t.Fatalf("latency = %v, want 4 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
}

func TestForkTheorem12ReductionShape(t *testing.T) {
	// The Theorem 12 reduction: fork with w0=1 and leaves a_i, 2 unit-speed
	// processors. A latency of 1 + S/2 is achievable iff the a_i can be
	// 2-partitioned. {1,2,3}: S=6, partition {1,2}/{3} -> latency 4.
	f := workflow.NewFork(1, 1, 2, 3)
	pl := platform.Homogeneous(2, 1)
	res, ok := ForkLatency(f, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, 4) {
		t.Fatalf("latency = %v, want 4", res.Cost.Latency)
	}
	// {1,1,3}: S=5 cannot be halved; optimum is max over the best split:
	// root side gets x, other side 5-x; latency = max(1+x, 1+(5-x));
	// best x in {2,3} -> latency 1+3 = 4.
	f2 := workflow.NewFork(1, 1, 1, 3)
	res2, ok := ForkLatency(f2, pl, false)
	if !ok || !numeric.Eq(res2.Cost.Latency, 4) {
		t.Fatalf("latency = %v, want 4", res2.Cost.Latency)
	}
}

func TestForkLatencyUnderPeriodAndConverse(t *testing.T) {
	f := workflow.NewFork(2, 4, 4)
	pl := platform.Homogeneous(2, 1)
	// Unconstrained latency optimum.
	res, ok := ForkLatency(f, pl, false)
	if !ok {
		t.Fatal("no mapping")
	}
	// Under a period bound equal to the replicate-all period (10/2 = 5) we
	// can still achieve some latency; under period 4 fewer options remain.
	resP, ok := ForkLatencyUnderPeriod(f, pl, false, 5)
	if !ok || numeric.Less(resP.Cost.Latency, res.Cost.Latency) {
		t.Fatalf("constrained latency %v beats unconstrained %v", resP.Cost.Latency, res.Cost.Latency)
	}
	if _, ok := ForkLatencyUnderPeriod(f, pl, false, 0.1); ok {
		t.Error("period bound 0.1 should be infeasible")
	}
	resL, ok := ForkPeriodUnderLatency(f, pl, false, res.Cost.Latency)
	if !ok {
		t.Fatal("period under latency infeasible at the latency optimum")
	}
	if numeric.Greater(resL.Cost.Latency, res.Cost.Latency) {
		t.Fatalf("returned mapping violates the latency bound: %v > %v", resL.Cost.Latency, res.Cost.Latency)
	}
}

func TestForkParetoMonotone(t *testing.T) {
	f := workflow.NewFork(2, 3, 5)
	pl := platform.New(2, 1, 1)
	front := ForkPareto(f, pl, true)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	for i := 1; i < len(front); i++ {
		if !numeric.Less(front[i-1].Cost.Period, front[i].Cost.Period) {
			t.Errorf("periods not strictly increasing: %v then %v", front[i-1].Cost, front[i].Cost)
		}
		if !numeric.Greater(front[i-1].Cost.Latency, front[i].Cost.Latency) {
			t.Errorf("latencies not strictly decreasing: %v then %v", front[i-1].Cost, front[i].Cost)
		}
	}
	// Endpoints are the mono-criterion optima.
	bestP, _ := ForkPeriod(f, pl, true)
	bestL, _ := ForkLatency(f, pl, true)
	if !numeric.Eq(front[0].Cost.Period, bestP.Cost.Period) {
		t.Errorf("front[0].Period = %v, want %v", front[0].Cost.Period, bestP.Cost.Period)
	}
	if !numeric.Eq(front[len(front)-1].Cost.Latency, bestL.Cost.Latency) {
		t.Errorf("front[last].Latency = %v, want %v", front[len(front)-1].Cost.Latency, bestL.Cost.Latency)
	}
}

func TestEnumerateForkRespectsDataParRules(t *testing.T) {
	f := workflow.NewFork(2, 3)
	pl := platform.Homogeneous(2, 1)
	sawRootDP := false
	EnumerateFork(f, pl, true, func(m mapping.ForkMapping, _ mapping.Cost) {
		for _, b := range m.Blocks {
			if b.Mode == mapping.DataParallel && b.Root && len(b.Leaves) > 0 {
				t.Fatal("enumerated root data-parallel block with leaves")
			}
			if b.Mode == mapping.DataParallel && b.Root {
				sawRootDP = true
			}
		}
	})
	if !sawRootDP {
		t.Error("never enumerated S0 alone data-parallelized")
	}
}

func TestEnumerateForkWithoutDPHasNoDP(t *testing.T) {
	f := workflow.NewFork(2, 3, 1)
	pl := platform.Homogeneous(2, 1)
	EnumerateFork(f, pl, false, func(m mapping.ForkMapping, _ mapping.Cost) {
		for _, b := range m.Blocks {
			if b.Mode == mapping.DataParallel {
				t.Fatal("data-parallel block enumerated with allowDP=false")
			}
		}
	})
}

func TestForkSolversReturnAchievableCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 6)
		pl := platform.Random(rng, 1+rng.Intn(3), 3)
		res, ok := ForkPeriod(f, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		c, err := mapping.EvalFork(f, pl, res.Mapping)
		if err != nil || !numeric.Eq(c.Period, res.Cost.Period) {
			t.Fatalf("reported %v, evaluated %v (err=%v)", res.Cost, c, err)
		}
	}
}
