package exhaustive

// Partitioned parallel scans for the fork and fork-join enumerations.
//
// The search space is sharded by fixing the first k restricted-growth
// decisions of the set-partition enumeration: each prefix roots one
// subtree, and because prefixes are generated in enumeration order the
// serial scan is exactly the concatenation of the shards' scans in shard
// index order. Workers claim shard indices from a shared counter (work
// stealing: a worker that drains a cheap subtree immediately claims the
// next), keep a shard-local incumbent with the serial scan's rule, and
// share two atomics:
//
//   - an incumbent.Bound upper bound on the objective — a candidate
//     strictly worse (beyond the numeric tolerance) than the best seen
//     by ANY shard can never win the final merge, so shards skip it;
//     equal-or-better candidates always survive, keeping ties alive for
//     the deterministic merge below; and
//   - the lowest shard index that reached the anytime lower bound —
//     the serial scan aborts at its first lb-reaching mapping, so every
//     shard after that index is irrelevant and stops.
//
// The final merge folds the per-shard bests in shard index order with
// the serial improvement rule (strict improvement replaces, ties keep
// the earlier shard) and the serial lb early-stop, so the returned
// mapping is byte-identical to the serial scan: the winner is the first
// shard containing the optimum, which holds exactly the mapping the
// serial scan would have installed last.

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repliflow/internal/incumbent"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// shardTarget scales the shard count per worker: enough shards that
// uneven subtree sizes even out through the claim counter, few enough
// that per-shard setup stays negligible against the subtree scans.
const shardTarget = 8

// shardPrefix is one fixed restricted-growth prefix: the root of one
// shard's enumeration subtree.
type shardPrefix struct {
	assign []int // the first len(assign) partition decisions
	used   int   // blocks named by the prefix
}

// shardPartitions fixes the first k partition decisions, with k the
// smallest prefix length whose shard count reaches target (or the full
// item count, when the whole space is small). Prefixes are emitted in
// enumeration order: every partition under shard i precedes every
// partition under shard j in the serial enumeration when i < j — the
// property the deterministic merge relies on.
func shardPartitions(items, maxBlocks, target int) []shardPrefix {
	var shards []shardPrefix
	scratch := make([]int, items)
	for k := 1; ; k++ {
		shards = shards[:0]
		partitionsFrom(scratch, k, maxBlocks, 0, 0, func(assign []int, used int) bool {
			shards = append(shards, shardPrefix{assign: append([]int(nil), assign...), used: used})
			return true
		})
		if len(shards) >= target || k == items {
			return shards
		}
	}
}

// parScan is the state shared by the workers of one partitioned scan.
type parScan struct {
	next    atomic.Int64 // shard claim counter
	bound   *incumbent.Bound
	lbShard atomic.Int64 // lowest shard index that reached the lower bound
}

func newParScan() *parScan {
	ps := &parScan{bound: incumbent.NewBound()}
	ps.lbShard.Store(math.MaxInt64)
	return ps
}

// noteLB records that a shard's incumbent reached the anytime lower
// bound (CAS-min on the shard index): shards after the recorded index
// stop scanning, exactly as the serial scan stops after its first
// lb-reaching mapping.
func (ps *parScan) noteLB(shard int) {
	for {
		old := ps.lbShard.Load()
		if old <= int64(shard) || ps.lbShard.CompareAndSwap(old, int64(shard)) {
			return
		}
	}
}

// scanSharded drives a partitioned scan: par workers claim shards in
// index order, scanShard returns a shard's local best, and the
// fixed-order fold picks the winner. Worker errors (cancellation) are
// surfaced; the first in worker order wins, they are all ctx.Err().
func scanSharded[R any](ctx context.Context, par, nshards int,
	scanShard func(ctx context.Context, worker, shard int, ps *parScan) (R, bool, error),
	objective func(R) float64, lb float64,
) (R, bool, error) {
	ps := newParScan()
	results := make([]R, nshards)
	founds := make([]bool, nshards)
	if par > nshards {
		par = nshards
	}
	errs := make([]error, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				shard := int(ps.next.Add(1)) - 1
				if shard >= nshards {
					return
				}
				if int64(shard) > ps.lbShard.Load() {
					continue // the merge is decided before this shard
				}
				res, found, err := scanShard(ctx, w, shard, ps)
				if err != nil {
					errs[w] = err
					return
				}
				results[shard], founds[shard] = res, found
			}
		}(w)
	}
	wg.Wait()
	var best R
	for _, err := range errs {
		if err != nil {
			return best, false, err
		}
	}
	found := false
	for s := 0; s < nshards; s++ {
		if !founds[s] {
			continue
		}
		if !found || numeric.Less(objective(results[s]), objective(best)) {
			best, found = results[s], true
			if lb > 0 && numeric.LessEq(objective(best), lb) {
				break // serial stops at its first lb-reaching incumbent
			}
		}
	}
	return best, found, nil
}

// scanShard scans the partitions extending one prefix with the serial
// incumbent rule, pruned by the shared bound. A candidate strictly worse
// than the bound is skipped (it cannot win the merge); local
// improvements tighten the bound; reaching the anytime lower bound
// records the shard in ps.lbShard and stops the shard.
func (e *forkEnum) scanShard(ctx context.Context, sh shardPrefix, shard int, ps *parScan,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	var best ForkResult
	bestObj := 0.0
	found := false
	e.runFrom(ctx, sh.assign, sh.used, func(m mapping.ForkMapping, c mapping.Cost) bool {
		if int64(shard) > ps.lbShard.Load() {
			return false // an earlier shard already decided the merge
		}
		if !accept(c) {
			return true
		}
		obj := objective(c)
		if numeric.Greater(obj, ps.bound.Load()) {
			return true // strictly worse than a shard's incumbent: cannot win
		}
		if !found || numeric.Less(obj, bestObj) {
			best = ForkResult{Mapping: copyForkMapping(m), Cost: c}
			bestObj = obj
			found = true
			ps.bound.Tighten(obj)
			if lb > 0 && numeric.LessEq(obj, lb) {
				ps.noteLB(shard)
				return false
			}
		}
		return true
	})
	if e.step.err != nil {
		return ForkResult{}, false, e.step.err
	}
	return best, found, nil
}

// parForkScan is the partitioned counterpart of forkEnum.scan. Every
// worker owns a fresh enumerator (the prepared solver's scratch is
// single-owner); the allocation is trivial against the subtree scans.
func parForkScan(ctx context.Context, f workflow.Fork, pl platform.Platform, allowDP bool, par int,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkResult, bool, error) {
	shards := shardPartitions(f.Leaves()+1, pl.Processors(), shardTarget*par)
	enums := make([]*forkEnum, par)
	return scanSharded(ctx, par, len(shards),
		func(ctx context.Context, w, shard int, ps *parScan) (ForkResult, bool, error) {
			if enums[w] == nil {
				enums[w] = newForkEnum(f, pl, allowDP)
			}
			return enums[w].scanShard(ctx, shards[shard], shard, ps, accept, objective, lb)
		},
		func(r ForkResult) float64 { return objective(r.Cost) }, lb)
}

// scanShard is the fork-join mirror of forkEnum.scanShard.
func (e *fjEnum) scanShard(ctx context.Context, sh shardPrefix, shard int, ps *parScan,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	var best ForkJoinResult
	bestObj := 0.0
	found := false
	e.runFrom(ctx, sh.assign, sh.used, func(m mapping.ForkJoinMapping, c mapping.Cost) bool {
		if int64(shard) > ps.lbShard.Load() {
			return false
		}
		if !accept(c) {
			return true
		}
		obj := objective(c)
		if numeric.Greater(obj, ps.bound.Load()) {
			return true
		}
		if !found || numeric.Less(obj, bestObj) {
			best = ForkJoinResult{Mapping: copyForkJoinMapping(m), Cost: c}
			bestObj = obj
			found = true
			ps.bound.Tighten(obj)
			if lb > 0 && numeric.LessEq(obj, lb) {
				ps.noteLB(shard)
				return false
			}
		}
		return true
	})
	if e.step.err != nil {
		return ForkJoinResult{}, false, e.step.err
	}
	return best, found, nil
}

// parForkJoinScan is the partitioned counterpart of fjEnum.scan.
func parForkJoinScan(ctx context.Context, fj workflow.ForkJoin, pl platform.Platform, allowDP bool, par int,
	accept func(mapping.Cost) bool, objective func(mapping.Cost) float64, lb float64) (ForkJoinResult, bool, error) {
	shards := shardPartitions(fj.Leaves()+2, pl.Processors(), shardTarget*par)
	enums := make([]*fjEnum, par)
	return scanSharded(ctx, par, len(shards),
		func(ctx context.Context, w, shard int, ps *parScan) (ForkJoinResult, bool, error) {
			if enums[w] == nil {
				enums[w] = newFJEnum(fj, pl, allowDP)
			}
			return enums[w].scanShard(ctx, shards[shard], shard, ps, accept, objective, lb)
		},
		func(r ForkJoinResult) float64 { return objective(r.Cost) }, lb)
}
