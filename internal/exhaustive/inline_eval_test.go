package exhaustive

import (
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The inline leaf costs of the enumerators must be bit-identical to
// mapping.Eval* — not merely within tolerance — because one-shot,
// prepared and parallel paths all report them, and downstream consumers
// (the replay trace differ, the engine fingerprint cache) compare
// responses exactly. Fractional speeds and weights stress the terms
// whose value depends on floating-point summation order.

func randFracPlatform(rng *rand.Rand, p int) platform.Platform {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = 0.1 + 3*rng.Float64()
	}
	return platform.New(speeds...)
}

func TestForkInlineCostMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		f := workflow.Fork{Root: 0.1 + 5*rng.Float64(), Weights: make([]float64, 1+rng.Intn(3))}
		for i := range f.Weights {
			f.Weights[i] = 0.1 + 5*rng.Float64()
		}
		pl := randFracPlatform(rng, 2+rng.Intn(2))
		n := 0
		EnumerateFork(f, pl, true, func(m mapping.ForkMapping, c mapping.Cost) {
			n++
			want, err := mapping.EvalFork(f, pl, m)
			if err != nil {
				t.Fatalf("enumerated invalid mapping: %v", err)
			}
			if want != c {
				t.Fatalf("inline cost %v != EvalFork %v for %v", c, want, m)
			}
		})
		if n == 0 {
			t.Fatal("no mappings enumerated")
		}
	}
}

func TestForkJoinInlineCostMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 25; trial++ {
		fj := workflow.ForkJoin{
			Root:    0.1 + 5*rng.Float64(),
			Join:    0.1 + 5*rng.Float64(),
			Weights: make([]float64, 1+rng.Intn(3)),
		}
		for i := range fj.Weights {
			fj.Weights[i] = 0.1 + 5*rng.Float64()
		}
		pl := randFracPlatform(rng, 2+rng.Intn(2))
		n := 0
		EnumerateForkJoin(fj, pl, true, func(m mapping.ForkJoinMapping, c mapping.Cost) {
			n++
			want, err := mapping.EvalForkJoin(fj, pl, m)
			if err != nil {
				t.Fatalf("enumerated invalid mapping: %v", err)
			}
			if want != c {
				t.Fatalf("inline cost %v != EvalForkJoin %v for %v", c, want, m)
			}
		})
		if n == 0 {
			t.Fatal("no mappings enumerated")
		}
	}
}

// TestMaskInfoSumMatchesSubsetSpeedSum pins the ascending accumulation
// order of buildMaskInfo: info.sum must reproduce SubsetSpeedSum over the
// sorted procs list bit for bit, or the inline data-parallel costs above
// drift a ULP from mapping.Eval*.
func TestMaskInfoSumMatchesSubsetSpeedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		pl := randFracPlatform(rng, 2+rng.Intn(5))
		info := buildMaskInfo(pl)
		for mask := 1; mask < len(info); mask++ {
			if got, want := info[mask].sum, pl.SubsetSpeedSum(info[mask].procs); got != want {
				t.Fatalf("mask %b: sum %v != SubsetSpeedSum %v", mask, got, want)
			}
		}
	}
}
