// Package platform models the target execution platforms of Benoit &
// Robert (RR-6308): p processors with speeds s_1..s_p, either Homogeneous
// (all speeds equal) or Heterogeneous. The simplified model carries no
// communication parameters.
package platform

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"repliflow/internal/numeric"
)

// Platform is a set of processors identified by index 0..p-1 with positive
// speeds. Processor P_u executes X floating point operations in X/Speeds[u]
// time units.
type Platform struct {
	Speeds []float64
}

// New returns a platform with the given processor speeds.
func New(speeds ...float64) Platform {
	return Platform{Speeds: append([]float64(nil), speeds...)}
}

// Homogeneous returns a platform of p identical processors of speed s.
func Homogeneous(p int, s float64) Platform {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = s
	}
	return Platform{Speeds: speeds}
}

// Processors returns the number p of processors.
func (pl Platform) Processors() int { return len(pl.Speeds) }

// TotalSpeed returns the aggregate speed sum(s_u).
func (pl Platform) TotalSpeed() float64 { return numeric.SumFloat(pl.Speeds) }

// IsHomogeneous reports whether all processors share the same speed.
func (pl Platform) IsHomogeneous() bool {
	for _, s := range pl.Speeds[1:] {
		if !numeric.Eq(s, pl.Speeds[0]) {
			return false
		}
	}
	return true
}

// Validate checks the platform is well formed: at least one processor with
// strictly positive speed.
func (pl Platform) Validate() error {
	if len(pl.Speeds) == 0 {
		return errors.New("platform: no processor")
	}
	for i, s := range pl.Speeds {
		if s <= 0 {
			return fmt.Errorf("platform: processor P%d has non-positive speed %v", i+1, s)
		}
	}
	return nil
}

// MinSpeed returns the smallest processor speed.
func (pl Platform) MinSpeed() float64 { return numeric.MinFloat(pl.Speeds) }

// MaxSpeed returns the largest processor speed.
func (pl Platform) MaxSpeed() float64 { return numeric.MaxFloat(pl.Speeds) }

// Fastest returns the index of a fastest processor.
func (pl Platform) Fastest() int {
	best := 0
	for i, s := range pl.Speeds {
		if s > pl.Speeds[best] {
			best = i
		}
	}
	return best
}

// SubsetMinSpeed returns the minimum speed over the given processor indices.
// It panics on an empty subset.
func (pl Platform) SubsetMinSpeed(procs []int) float64 {
	m := pl.Speeds[procs[0]]
	for _, q := range procs[1:] {
		if pl.Speeds[q] < m {
			m = pl.Speeds[q]
		}
	}
	return m
}

// SubsetSpeedSum returns the aggregate speed over the given processor
// indices.
func (pl Platform) SubsetSpeedSum(procs []int) float64 {
	var s float64
	for _, q := range procs {
		s += pl.Speeds[q]
	}
	return s
}

// SortedBySpeed returns processor indices ordered by non-decreasing speed.
// Ties are broken by index so the order is deterministic. The ordering is
// the one required by Lemma 3 and Lemma 4 of the paper (optimal solutions
// replicate stage intervals onto intervals of consecutive-speed processors).
func (pl Platform) SortedBySpeed() []int {
	idx := make([]int, len(pl.Speeds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if pl.Speeds[idx[a]] != pl.Speeds[idx[b]] {
			return pl.Speeds[idx[a]] < pl.Speeds[idx[b]]
		}
		return idx[a] < idx[b]
	})
	return idx
}

// FastestK returns the indices of the k fastest processors ordered by
// non-decreasing speed, as used by the Theorem 7/14 algorithms ("consider
// the q fastest processors, ordered by non-decreasing speeds").
func (pl Platform) FastestK(k int) []int {
	all := pl.SortedBySpeed()
	return all[len(all)-k:]
}

// Random returns a platform of p processors with integer speeds drawn
// uniformly from [1, maxS].
func Random(rng *rand.Rand, p, maxS int) Platform {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + rng.Intn(maxS))
	}
	return Platform{Speeds: speeds}
}
