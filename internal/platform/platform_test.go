package platform

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewCopies(t *testing.T) {
	ss := []float64{1, 2}
	pl := New(ss...)
	ss[0] = 9
	if pl.Speeds[0] != 1 {
		t.Fatal("New aliases caller slice")
	}
}

func TestHomogeneous(t *testing.T) {
	pl := Homogeneous(3, 2)
	if pl.Processors() != 3 || pl.TotalSpeed() != 6 {
		t.Fatalf("bad homogeneous platform: %+v", pl)
	}
	if !pl.IsHomogeneous() {
		t.Fatal("Homogeneous not homogeneous")
	}
	if New(1, 2).IsHomogeneous() {
		t.Fatal("1,2 reported homogeneous")
	}
}

func TestValidate(t *testing.T) {
	if err := New(1, 2).Validate(); err != nil {
		t.Errorf("valid platform rejected: %v", err)
	}
	if err := New().Validate(); err == nil {
		t.Error("empty platform accepted")
	}
	if err := New(1, 0).Validate(); err == nil {
		t.Error("zero speed accepted")
	}
}

func TestMinMaxFastest(t *testing.T) {
	pl := New(2, 5, 1, 5)
	if pl.MinSpeed() != 1 || pl.MaxSpeed() != 5 {
		t.Fatal("min/max wrong")
	}
	if got := pl.Fastest(); got != 1 { // first of the two fastest
		t.Fatalf("Fastest = %d", got)
	}
}

func TestSubsetAggregates(t *testing.T) {
	pl := New(2, 5, 1, 4)
	if pl.SubsetMinSpeed([]int{0, 1, 3}) != 2 {
		t.Error("SubsetMinSpeed wrong")
	}
	if pl.SubsetSpeedSum([]int{0, 2}) != 3 {
		t.Error("SubsetSpeedSum wrong")
	}
}

func TestSortedBySpeed(t *testing.T) {
	pl := New(3, 1, 2, 1)
	got := pl.SortedBySpeed()
	want := []int{1, 3, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedBySpeed = %v, want %v", got, want)
		}
	}
}

func TestSortedBySpeedIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pl := Random(rng, 1+rng.Intn(10), 9)
		idx := pl.SortedBySpeed()
		seen := make(map[int]bool)
		prev := 0.0
		for i, q := range idx {
			if seen[q] {
				return false
			}
			seen[q] = true
			if i > 0 && pl.Speeds[q] < prev {
				return false
			}
			prev = pl.Speeds[q]
		}
		return len(seen) == pl.Processors()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFastestK(t *testing.T) {
	pl := New(4, 1, 3, 2)
	got := pl.FastestK(2)
	if len(got) != 2 || pl.Speeds[got[0]] != 3 || pl.Speeds[got[1]] != 4 {
		t.Fatalf("FastestK(2) = %v", got)
	}
	all := pl.FastestK(4)
	if len(all) != 4 {
		t.Fatal("FastestK(p) wrong length")
	}
}

func TestRandomBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		pl := Random(rng, 5, 8)
		if pl.Processors() != 5 {
			t.Fatal("wrong processor count")
		}
		for _, s := range pl.Speeds {
			if s < 1 || s > 8 || s != float64(int(s)) {
				t.Fatalf("speed out of range: %v", s)
			}
		}
		if err := pl.Validate(); err != nil {
			t.Fatalf("random platform invalid: %v", err)
		}
	}
}
