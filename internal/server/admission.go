package server

import (
	"context"
	"math"
	"net/http"
	"sync"
	"time"

	"repliflow/internal/core"
)

// ClientIDHeader is the request header carrying the tenant identity used
// for per-client admission control. Requests may alternatively pass the
// "client" query parameter; requests carrying neither share the
// AnonymousClient bucket.
const ClientIDHeader = "X-Client-Id"

// AnonymousClient is the tenant identity of requests that carry no
// client id.
const AnonymousClient = "anonymous"

// ClientID extracts the tenant identity of a request: the X-Client-Id
// header, else the "client" query parameter, else AnonymousClient. The
// replay recorder stores this identity in trace events so a replayed
// request lands in the same bucket.
func ClientID(r *http.Request) string {
	if id := r.Header.Get(ClientIDHeader); id != "" {
		return id
	}
	if id := r.URL.Query().Get("client"); id != "" {
		return id
	}
	return AnonymousClient
}

// Admission costs, in tokens. A request debits its bucket by the cost of
// the work it asks for, classified before solving (core.ClassifyCell):
// polynomial cells are cheap, NP-hard cells under an anytime budget are
// priced between (their latency is bounded by the budget), and NP-hard
// exhaustive solves — the requests that can monopolize workers for
// seconds — pay the most. A Pareto sweep multiplies its instance's cost
// by paretoCostFactor, since one sweep solves many candidate bounds.
const (
	costPoly         = 1
	costAnytime      = 4
	costExhaustive   = 16
	paretoCostFactor = 4
)

// solveCost prices one solve of pr under opts.
func solveCost(pr core.Problem, opts core.Options) float64 {
	if core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial() {
		return costPoly
	}
	if opts.AnytimeBudget > 0 {
		return costAnytime
	}
	return costExhaustive
}

// batchCost prices a batch as the sum of its instances' costs.
// Duplicates coalesce in the engine but still pay here: admission prices
// the requested work, not the marginal compute.
func batchCost(problems []core.Problem, opts core.Options) float64 {
	var cost float64
	for _, pr := range problems {
		cost += solveCost(pr, opts)
	}
	return cost
}

// maxBuckets bounds the tenant-bucket map: beyond it, stale buckets
// (refilled to capacity, so indistinguishable from fresh ones) are
// swept, keeping memory bounded under client-id churn.
const maxBuckets = 4096

// tokenBucket is one tenant's admission state. Time is carried in
// explicitly (admission.now), so tests drive refill with a fake clock.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admission applies per-client token-bucket rate limits. The zero rate
// disables it (admission.enabled). Buckets refill at rate tokens/second
// up to burst; a request costing more than the available tokens is
// rejected with the duration after which the bucket will cover it.
type admission struct {
	rate  float64
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newAdmission(rate, burst float64) *admission {
	return &admission{
		rate:    rate,
		burst:   burst,
		now:     time.Now,
		buckets: make(map[string]*tokenBucket),
	}
}

// enabled reports whether rate limiting is configured.
func (a *admission) enabled() bool { return a != nil && a.rate > 0 }

// admit debits cost tokens from client's bucket. When the bucket cannot
// cover the cost, nothing is debited and the returned retry-after is the
// time until refill covers it (a request costing more than one full
// bucket is admitted only when the bucket is full, so it is never
// unservable). Admission is independent of queueing: an admitted request
// may still wait for a solve slot.
func (a *admission) admit(client string, cost float64) (retryAfter time.Duration, ok bool) {
	now := a.now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.buckets[client]
	if b == nil {
		if len(a.buckets) >= maxBuckets {
			a.sweepLocked(now)
		}
		b = &tokenBucket{tokens: a.burst, last: now}
		a.buckets[client] = b
	} else {
		b.tokens = math.Min(a.burst, b.tokens+a.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	// Oversized requests (cost > burst) are admitted from a full bucket,
	// which then goes negative: the tenant pays the excess as extra
	// refill time before its next admission.
	if b.tokens >= cost || (cost > a.burst && b.tokens >= a.burst) {
		b.tokens -= cost
		return 0, true
	}
	need := cost
	if cost > a.burst {
		need = a.burst
	}
	return time.Duration((need - b.tokens) / a.rate * float64(time.Second)), false
}

// sweepLocked drops buckets that have refilled to capacity: a full
// bucket is indistinguishable from a fresh one, so dropping it loses no
// state.
func (a *admission) sweepLocked(now time.Time) {
	for id, b := range a.buckets {
		if math.Min(a.burst, b.tokens+a.rate*now.Sub(b.last).Seconds()) >= a.burst {
			delete(a.buckets, id)
		}
	}
}

// tenants counts the live buckets (for /metrics).
func (a *admission) tenants() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.buckets)
}

// slotWaiter is one queued acquire. granted marks a slot handed to the
// waiter by release; if the waiter's context won the race instead, it
// returns the slot itself.
type slotWaiter struct {
	ch      chan struct{}
	granted bool
}

// fairQueue is a weighted-fair semaphore over the server's solve slots:
// instead of every request racing one channel — where a tenant flooding
// requests statistically starves everyone else — waiters queue per
// tenant and freed slots are granted round-robin across tenants (each
// tenant's own queue stays FIFO). A tenant with weight w receives up to
// w consecutive grants per rotation (deficit-style weighted round-robin);
// unknown tenants weigh 1. With a single tenant the queue degenerates to
// the plain FIFO semaphore it replaced.
type fairQueue struct {
	capacity int
	weights  map[string]int

	mu      sync.Mutex
	inUse   int
	waiting int
	queues  map[string][]*slotWaiter
	ring    []string // rotation order of tenants with waiters
	cursor  int
	credit  int // grants left for ring[cursor] before rotating
}

func newFairQueue(capacity int, weights map[string]int) *fairQueue {
	return &fairQueue{
		capacity: capacity,
		weights:  weights,
		queues:   make(map[string][]*slotWaiter),
	}
}

func (q *fairQueue) weightOf(client string) int {
	if w := q.weights[client]; w > 1 {
		return w
	}
	return 1
}

// acquire claims a solve slot for client, queueing fairly when the pool
// is full (or other tenants are already queued — arrivals never barge
// past the queue). It returns ctx.Err() if the context dies first.
func (q *fairQueue) acquire(ctx context.Context, client string) error {
	q.mu.Lock()
	if q.inUse < q.capacity && q.waiting == 0 {
		q.inUse++
		q.mu.Unlock()
		return nil
	}
	w := &slotWaiter{ch: make(chan struct{})}
	if _, ok := q.queues[client]; !ok {
		q.ring = append(q.ring, client)
	}
	q.queues[client] = append(q.queues[client], w)
	q.waiting++
	q.mu.Unlock()

	select {
	case <-w.ch:
		return nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced our cancellation: we own a slot we will not
			// use. Hand it onwards.
			q.mu.Unlock()
			q.release()
			return ctx.Err()
		}
		q.removeLocked(client, w)
		q.mu.Unlock()
		return ctx.Err()
	}
}

// removeLocked withdraws a cancelled waiter from its tenant queue.
func (q *fairQueue) removeLocked(client string, w *slotWaiter) {
	queue := q.queues[client]
	for i, cand := range queue {
		if cand == w {
			q.queues[client] = append(queue[:i:i], queue[i+1:]...)
			q.waiting--
			return
		}
	}
}

// release frees a slot: the next waiter under weighted round-robin
// inherits it directly, otherwise the slot returns to the pool.
func (q *fairQueue) release() {
	q.mu.Lock()
	if w, ok := q.nextLocked(); ok {
		w.granted = true
		close(w.ch)
	} else {
		q.inUse--
	}
	q.mu.Unlock()
}

// nextLocked pops the next waiter: the tenant at the rotation cursor is
// granted up to weight slots, then the cursor advances; tenants whose
// queues emptied leave the rotation.
func (q *fairQueue) nextLocked() (*slotWaiter, bool) {
	for len(q.ring) > 0 {
		if q.cursor >= len(q.ring) {
			q.cursor = 0
		}
		client := q.ring[q.cursor]
		queue := q.queues[client]
		if len(queue) == 0 {
			delete(q.queues, client)
			q.ring = append(q.ring[:q.cursor:q.cursor], q.ring[q.cursor+1:]...)
			q.credit = 0
			continue
		}
		if q.credit <= 0 {
			q.credit = q.weightOf(client)
		}
		w := queue[0]
		q.queues[client] = queue[1:]
		q.waiting--
		q.credit--
		if q.credit == 0 {
			q.cursor++
		}
		return w, true
	}
	return nil, false
}

// queued counts the waiters currently queued for a slot (for /metrics).
func (q *fairQueue) queued() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.waiting
}
