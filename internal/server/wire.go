package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repliflow/internal/core"
	"repliflow/internal/instance"
)

// SolveRequest is the body of POST /v1/solve and POST /v1/pareto: a
// problem instance (docs/wire-format.md) plus request-scoped controls.
// The instance fields are inlined, so a bare instance document is a
// valid request.
type SolveRequest struct {
	instance.Instance
	// TimeoutMs bounds the solve; 0 applies the server default. The
	// effective deadline is clamped to the server's maximum timeout.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// BudgetMs switches NP-hard instances to anytime solving: the
	// portfolio returns its best incumbent (with a certified gap) within
	// roughly this many milliseconds instead of searching exhaustively.
	// 0 applies the server's configured default budget (which may be
	// disabled); a negative value explicitly opts out of anytime solving
	// even when the server has a default. Polynomial instances ignore it.
	BudgetMs int64 `json:"budgetMs,omitempty"`
	// Parallelism partitions each exhaustive solve of this request across
	// workers (core.Options.Parallelism encoding: n > 1 explicit workers,
	// 1 serial, negative auto). 0 applies the server default. The grant is
	// clamped by the engine's idle solve slots, so a loaded server runs
	// the solve serially rather than oversubscribing. Results are
	// byte-identical at every setting.
	Parallelism int `json:"parallelism,omitempty"`
}

// BatchRequest is the body of POST /v1/solve/batch.
type BatchRequest struct {
	Instances []instance.Instance `json:"instances"`
	// TimeoutMs bounds the whole batch, not each instance.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// BudgetMs is the whole batch's anytime budget: the engine splits it
	// across its worker rounds, so the batch finishes in roughly this
	// many milliseconds even when every instance is NP-hard.
	BudgetMs int64 `json:"budgetMs,omitempty"`
	// Parallelism is the per-solve search parallelism, as on /v1/solve.
	// Within a batch the engine only grants extra workers to a solve when
	// other batch workers are idle, so the batch never oversubscribes.
	Parallelism int `json:"parallelism,omitempty"`
}

// SolveResponse is the body of a successful POST /v1/solve.
type SolveResponse struct {
	Solution  instance.SolutionJSON `json:"solution"`
	Cell      string                `json:"cell"`
	ElapsedMs float64               `json:"elapsedMs"`
}

// CacheStats reports engine cache counters: the lifetime totals of the
// shared engine, plus the movement of those counters while this request
// ran. The engine is shared, so under concurrent traffic the request
// deltas include other requests' activity — they are a dedup indicator,
// not an exact per-request accounting.
type CacheStats struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	HitRatio      float64 `json:"hitRatio"`
	Size          int     `json:"size"`
	RequestHits   uint64  `json:"requestHits"`
	RequestMisses uint64  `json:"requestMisses"`
}

// BatchResponse is the body of a successful POST /v1/solve/batch.
// Solutions align with BatchRequest.Instances by index.
type BatchResponse struct {
	Solutions []instance.SolutionJSON `json:"solutions"`
	Cache     CacheStats              `json:"cache"`
	ElapsedMs float64                 `json:"elapsedMs"`
}

// StreamStatus is a non-solution line of the /v1/pareto NDJSON stream:
// heartbeats while a slow sweep is between points, and the terminal line
// every stream ends with. Solution lines never carry a "status" field,
// so clients distinguish the two by its presence (strict SolutionJSON
// decoding rejects status lines outright). See docs/wire-format.md.
type StreamStatus struct {
	// Status is "heartbeat" on keep-alive lines, and "complete",
	// "deadline-exceeded", "canceled", "shutting-down" or "failed" on the
	// terminal line.
	Status string `json:"status"`
	// Points counts the solution lines written so far.
	Points int `json:"points"`
	// Explored counts the candidate periods the sweep has resolved,
	// TotalCandidates the whole candidate set.
	Explored        int `json:"explored"`
	TotalCandidates int `json:"totalCandidates"`
	// Unexplored is TotalCandidates - Explored: on a terminal line of a
	// cut-short sweep, the number of candidates left unexplored.
	Unexplored int     `json:"unexplored"`
	ElapsedMs  float64 `json:"elapsedMs"`
	// Error carries the failure on terminal lines of streams that ended
	// early (the structured body a non-streaming response would have).
	Error *ErrorBody `json:"error,omitempty"`
}

// Stream status values.
const (
	StreamStatusHeartbeat        = "heartbeat"
	StreamStatusComplete         = "complete"
	StreamStatusDeadlineExceeded = "deadline-exceeded"
	StreamStatusCanceled         = "canceled"
	StreamStatusShuttingDown     = "shutting-down"
	StreamStatusFailed           = "failed"
)

// JobRequest is the body of POST /v1/jobs: an asynchronous solve, batch
// or pareto request that outlives any single HTTP deadline. Exactly one
// of Instance (kinds "solve" and "pareto") or Instances (kind "batch")
// must be set.
type JobRequest struct {
	// Kind is "solve", "batch" or "pareto".
	Kind string `json:"kind"`
	// Instance is the instance of a solve or pareto job.
	Instance *instance.Instance `json:"instance,omitempty"`
	// Instances are the instances of a batch job.
	Instances []instance.Instance `json:"instances,omitempty"`
	// TimeoutMs bounds the job's run, clamped to the server maximum; 0
	// applies the server default. The job keeps its results after
	// expiry — a deadline turns into a failed (or, for pareto, partial)
	// job, never a lost one.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// BudgetMs is the anytime budget, exactly as on the synchronous
	// endpoints.
	BudgetMs int64 `json:"budgetMs,omitempty"`
	// Parallelism is the per-solve search parallelism, exactly as on the
	// synchronous endpoints.
	Parallelism int `json:"parallelism,omitempty"`
}

// JobProgress reports how far a job has advanced: Done/Total counts
// candidate periods for pareto jobs and instances for solve/batch jobs;
// Points counts confirmed front points of a pareto job.
type JobProgress struct {
	Done   int `json:"done"`
	Total  int `json:"total"`
	Points int `json:"points,omitempty"`
}

// Job status values.
const (
	JobStatusQueued   = "queued"
	JobStatusRunning  = "running"
	JobStatusDone     = "done"
	JobStatusFailed   = "failed"
	JobStatusCanceled = "canceled"
)

// JobResponse is the body of POST /v1/jobs (202) and GET /v1/jobs/{id}.
// Result fields appear once the job is terminal: Solution for solve
// jobs, Solutions for batch jobs, Front for pareto jobs (on canceled or
// deadline-expired pareto jobs, the partial front proven before the
// cut — the points are final, the sweep just did not finish).
type JobResponse struct {
	ID        string                  `json:"id"`
	Kind      string                  `json:"kind"`
	Status    string                  `json:"status"`
	ElapsedMs float64                 `json:"elapsedMs"`
	Progress  JobProgress             `json:"progress"`
	Solution  *instance.SolutionJSON  `json:"solution,omitempty"`
	Solutions []instance.SolutionJSON `json:"solutions,omitempty"`
	Front     []instance.SolutionJSON `json:"front,omitempty"`
	Error     *ErrorBody              `json:"error,omitempty"`
}

// JobListResponse is the body of GET /v1/jobs.
type JobListResponse struct {
	Jobs []JobResponse `json:"jobs"`
}

// CellInfo describes one Table 1 dispatch cell: its coordinates, its
// complexity classification with the paper result establishing it, and
// the registered solver's method and exactness (the in-limit path on
// NP-hard cells; oversized instances fall back to heuristics at solve
// time). Returned by GET /v1/classify and GET /v1/table.
type CellInfo struct {
	Cell                string `json:"cell"`
	Kind                string `json:"kind"`
	PlatformHomogeneous bool   `json:"platformHomogeneous"`
	GraphHomogeneous    bool   `json:"graphHomogeneous"`
	DataParallel        bool   `json:"dataParallel"`
	Objective           string `json:"objective"`
	Complexity          string `json:"complexity"`
	Source              string `json:"source"`
	Method              string `json:"method"`
	Exact               bool   `json:"exact"`
}

// TableResponse is the body of GET /v1/table.
type TableResponse struct {
	Cells []CellInfo `json:"cells"`
}

// ErrorBody is the structured error payload: a stable machine-readable
// kind, a human-readable message, and — when the instance classified
// before failing — its Table 1 cell, so clients can tell "this instance
// is NP-hard and timed out" from "this instance is malformed".
type ErrorBody struct {
	Kind       string `json:"kind"`
	Message    string `json:"message"`
	Cell       string `json:"cell,omitempty"`
	Complexity string `json:"complexity,omitempty"`
	Source     string `json:"source,omitempty"`
}

// ErrorResponse wraps every non-2xx JSON body.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

// Error kinds carried by ErrorBody.Kind.
const (
	// ErrKindInvalidRequest marks undecodable bodies, bad query
	// parameters and ill-formed instances.
	ErrKindInvalidRequest = "invalid-request"
	// ErrKindDeadlineExceeded marks solves cut off by the request
	// deadline.
	ErrKindDeadlineExceeded = "deadline-exceeded"
	// ErrKindCanceled marks solves aborted by client disconnect.
	ErrKindCanceled = "canceled"
	// ErrKindOverloaded marks requests that could not obtain an
	// in-flight slot before their deadline.
	ErrKindOverloaded = "overloaded"
	// ErrKindRateLimited marks requests rejected by per-client admission
	// control (429): the client's token bucket could not cover the
	// request's cost. The response carries a Retry-After header with the
	// whole seconds until the bucket refills enough.
	ErrKindRateLimited = "rate-limited"
	// ErrKindBodyTooLarge marks request bodies over the server's byte
	// limit.
	ErrKindBodyTooLarge = "body-too-large"
	// ErrKindShuttingDown marks requests cut off by server shutdown
	// (Server.Close): the work was cancelled to drain, not by the client.
	ErrKindShuttingDown = "shutting-down"
	// ErrKindNotFound marks unknown resources (job ids).
	ErrKindNotFound = "not-found"
	// ErrKindInternal marks everything else.
	ErrKindInternal = "internal"
)

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client is gone if this fails
}

// errorKindOf maps a solve error to its wire kind and HTTP status.
func errorKindOf(err error) (kind string, status int) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ErrKindDeadlineExceeded, http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away; the status is written for the log's sake.
		return ErrKindCanceled, httpStatusClientClosedRequest
	case core.ErrKindOf(err) == core.ErrKindInvalidInstance:
		return ErrKindInvalidRequest, http.StatusBadRequest
	default:
		return ErrKindInternal, http.StatusInternalServerError
	}
}

// httpStatusClientClosedRequest is nginx's non-standard 499, the
// conventional status for requests aborted by the client.
const httpStatusClientClosedRequest = 499

// errorBodyFor assembles a structured error body. pr carries the Table 1
// classification when the instance was valid (nil otherwise).
func errorBodyFor(kind, message string, pr *core.Problem) *ErrorBody {
	body := &ErrorBody{Kind: kind, Message: message}
	if pr != nil {
		key := core.CellKeyOf(*pr)
		cl := core.ClassifyCell(key)
		body.Cell = key.String()
		body.Complexity = instance.ComplexityName(cl.Complexity)
		body.Source = cl.Source
	}
	return body
}

// writeError writes a structured error response.
func writeError(w http.ResponseWriter, status int, kind, message string, pr *core.Problem) {
	writeJSON(w, status, ErrorResponse{Error: *errorBodyFor(kind, message, pr)})
}

// writeSolveError maps err and writes the structured response for a
// failed solve of problem pr (nil when the instance never canonicalized).
func writeSolveError(w http.ResponseWriter, err error, pr *core.Problem) {
	kind, status := errorKindOf(err)
	writeError(w, status, kind, err.Error(), pr)
}

// writeAcquireError writes the structured response for a request that
// never obtained a solve slot: a client disconnect while queued is a
// cancellation (499), anything else (the request deadline expiring in
// the queue) is genuine saturation (503) — keeping client aborts out of
// the overload signal in wfserve_requests_total.
func writeAcquireError(w http.ResponseWriter, err error, pr *core.Problem) {
	if errors.Is(err, context.Canceled) {
		writeError(w, httpStatusClientClosedRequest, ErrKindCanceled,
			"client disconnected while queued for a solve slot", pr)
		return
	}
	writeError(w, http.StatusServiceUnavailable, ErrKindOverloaded,
		"no solve slot available within the request deadline", pr)
}

// writeDecodeError writes the structured response for a request body
// decodeJSON rejected, distinguishing oversized bodies (413) from
// malformed ones (400).
func writeDecodeError(w http.ResponseWriter, err error) {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		writeError(w, http.StatusRequestEntityTooLarge, ErrKindBodyTooLarge, err.Error(), nil)
		return
	}
	writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
}

// writeNDJSONLine writes v as one newline-terminated JSON line of an
// NDJSON stream.
func writeNDJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// decodeJSON decodes the request body with the wire format's strictness
// rule (instance.DecodeStrict): unknown fields are rejected so typos
// ("pipleine") fail loudly instead of solving the wrong instance, and
// trailing garbage is an error.
func decodeJSON(r *http.Request, v any) error {
	if err := instance.DecodeStrict(r.Body, v); err != nil {
		return fmt.Errorf("decoding request body: %w", err)
	}
	return nil
}
