// Package server is the HTTP/JSON solve service behind cmd/wfserve: it
// exposes the concurrent batch engine (internal/engine) to network
// clients with validation, deadlines, admission control and telemetry.
//
// # Endpoints
//
//	POST /v1/solve        solve one instance
//	POST /v1/solve/batch  solve many instances concurrently, deduplicated
//	POST /v1/pareto       stream the period/latency front as NDJSON
//	GET  /v1/classify     Table 1 metadata for one dispatch cell
//	GET  /v1/table        Table 1 metadata for every registered cell
//	GET  /healthz         liveness probe
//	GET  /metrics         Prometheus text metrics
//
// Request and response bodies are the instance and solution documents of
// docs/wire-format.md; requests may add a timeoutMs field.
//
// # Concurrency model
//
// One engine.Engine is shared by every request, so the fingerprint cache
// coalesces identical instances across the whole client population: two
// clients posting the same instance concurrently share one computation
// (single flight), and later requests are answered from memory. Batch
// requests fan their instances onto the engine's worker pool.
//
// Admission is controlled by a bounded in-flight limiter (MaxInFlight
// slots). A request holds one slot for the whole solve, so a burst of
// exhaustive NP-hard solves queues at the limiter instead of piling
// goroutines onto the engine and starving polynomial traffic; requests
// that cannot obtain a slot before their deadline fail fast with 503.
//
// # Cancellation guarantees
//
// Every request runs under a deadline: timeoutMs from the request body,
// clamped to Config.MaxTimeout, defaulting to Config.DefaultTimeout.
// The deadline context flows through engine.Engine.Solve into
// core.SolveContext, whose exhaustive searches poll cancellation, so a
// timed-out or disconnected request stops consuming CPU promptly and
// returns a structured deadline-exceeded (504) or canceled error. A
// failed or cancelled solve is never cached, and its error is never
// adopted by coalesced waiters whose own deadline is still live.
//
// # Errors
//
// Non-2xx responses carry ErrorResponse: a stable machine-readable kind
// (invalid-request, deadline-exceeded, canceled, overloaded, internal)
// and, when the instance canonicalized before failing, its Table 1 cell,
// complexity and paper source — "NP-hard and timed out" is
// distinguishable from "malformed" without string matching.
//
// # Metrics
//
// GET /metrics exposes Prometheus text format: wfserve_requests_total by
// endpoint and status, wfserve_solve_seconds latency histograms by
// Table 1 dispatch cell (single solves and pareto sweeps; batch wall
// clock is deliberately excluded, as N parallel solves say nothing
// about one cell), engine cache counters with the hit ratio
// (wfserve_cache_*), the in-flight gauge and uptime.
package server
