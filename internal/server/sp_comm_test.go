package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"repliflow/internal/core"
)

// spDiamond is a series-parallel instance that is none of the three
// legacy wire shapes but collapses onto a fork-join, so the decomposer
// solves it exactly through the legacy cell.
const spDiamond = `{
	"sp": {"steps": [
		{"name": "load", "weight": 1},
		{"name": "left", "weight": 2, "after": ["load"]},
		{"name": "right", "weight": 3, "after": ["load"]},
		{"name": "merge", "weight": 1, "after": ["left", "right"]}
	]},
	"platform": {"speeds": [1, 2, 1]},
	"objective": "min-period"
}`

// spChorded adds the chord left -> right, so the DAG is irreducible:
// within the exhaustive limits it is still solved exactly in the block
// model.
const spChorded = `{
	"sp": {"steps": [
		{"name": "load", "weight": 1},
		{"name": "left", "weight": 2, "after": ["load"]},
		{"name": "right", "weight": 3, "after": ["load", "left"]},
		{"name": "merge", "weight": 1, "after": ["left", "right"]}
	]},
	"platform": {"speeds": [1, 2]},
	"objective": "min-period"
}`

// spOversized is an irreducible 8-step DAG above the default exhaustive
// limit (6 steps): the unbudgeted path answers heuristically, a budget
// produces a certified anytime incumbent.
const spOversized = `{
	"sp": {"steps": [
		{"name": "a", "weight": 2},
		{"name": "b", "weight": 3, "after": ["a"]},
		{"name": "c", "weight": 1, "after": ["a", "b"]},
		{"name": "d", "weight": 2, "after": ["b", "c"]},
		{"name": "e", "weight": 4, "after": ["d"]},
		{"name": "f", "weight": 2, "after": ["d", "e"]},
		{"name": "g", "weight": 3, "after": ["e", "f"]},
		{"name": "h", "weight": 1, "after": ["f", "g"]}
	]},
	"platform": {"speeds": [1, 2, 1]},
	"objective": "min-period"
}`

const commPipelineHom = `{
	"commPipeline": {"weights": [3, 1, 2], "data": [1, 2, 1, 1]},
	"platform": {"speeds": [1, 1], "bandwidth": {"uniform": 4}},
	"objective": "min-period"
}`

const commForkSmall = `{
	"commFork": {"root": 2, "in": 1, "broadcast": 1, "weights": [3, 1], "outs": [1, 1]},
	"platform": {"speeds": [1, 2, 1], "bandwidth": {"uniform": 2}},
	"objective": "min-period"
}`

// commPipelineHet is heterogeneous, so every solve takes the NP-hard
// exhaustive comm cell — the one the prepared pool and the chunk-claimed
// parallel interval scan serve.
const commPipelineHet = `{
	"commPipeline": {"weights": [3, 1, 2, 2], "data": [1, 2, 1, 0, 1]},
	"platform": {"speeds": [1, 2, 3], "bandwidth": {"uniform": 2}},
	"objective": "min-period"
}`

// TestSolveSPEndToEnd: series-parallel instances — reducible and
// irreducible — solve through /v1/solve with the right mapping shape and
// certification.
func TestSolveSPEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/solve", spDiamond)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diamond status = %d, body %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Feasible || !out.Solution.Exact {
		t.Errorf("diamond solution = %+v, want exact feasible", out.Solution)
	}
	if out.Solution.SPMapping == nil || out.Solution.SPMapping.Reduced != "fork-join" {
		t.Fatalf("diamond spMapping = %+v, want a fork-join reduction", out.Solution.SPMapping)
	}
	if len(out.Solution.SPMapping.ForkJoin) == 0 || len(out.Solution.SPMapping.Order) != 4 {
		t.Errorf("diamond reduction lost its embedded mapping or order: %+v", out.Solution.SPMapping)
	}
	if !strings.HasPrefix(out.Cell, "sp/") {
		t.Errorf("cell = %q, want an sp cell", out.Cell)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", spChorded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("chorded status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Feasible || !out.Solution.Exact || out.Solution.Method != "exhaustive" {
		t.Errorf("chorded solution = %+v, want exact exhaustive", out.Solution)
	}
	if out.Solution.SPMapping == nil || out.Solution.SPMapping.Reduced != "sp" || len(out.Solution.SPMapping.Blocks) == 0 {
		t.Fatalf("chorded spMapping = %+v, want direct sp blocks", out.Solution.SPMapping)
	}
}

// TestSolveSPAnytimeGap: an oversized irreducible DAG under a budget
// returns a certified anytime incumbent with a non-negative gap.
func TestSolveSPAnytimeGap(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := strings.TrimSuffix(strings.TrimSpace(spOversized), "}") + `, "budgetMs": 80}`
	resp, raw := postJSON(t, ts.URL+"/v1/solve", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, raw)
	}
	var out SolveResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Feasible || !out.Solution.Anytime {
		t.Fatalf("solution = %+v, want a feasible anytime incumbent", out.Solution)
	}
	if out.Solution.Gap == nil || *out.Solution.Gap < 0 {
		t.Errorf("gap = %v, want certified non-negative", out.Solution.Gap)
	}
	if out.Solution.SPMapping == nil {
		t.Error("anytime solution lost its sp mapping")
	}
}

// TestParetoSP: the Pareto sweep works on a series-parallel instance.
func TestParetoSP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/pareto", spChorded)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	fronts, statuses := splitStream(t, body)
	if len(fronts) == 0 {
		t.Fatalf("empty front, body %s", body)
	}
	for _, f := range fronts {
		if f.SPMapping == nil {
			t.Errorf("front point without sp mapping: %+v", f)
		}
	}
	if len(statuses) != 1 || statuses[0].Status != StreamStatusComplete {
		t.Fatalf("statuses = %+v, want one terminal complete line", statuses)
	}
}

// TestJobsSP: a series-parallel instance solves through the async job
// surface.
func TestJobsSP(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "solve", "instance": %s}`, spDiamond))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusDone {
		t.Fatalf("job finished %q (%+v), want done", done.Status, done.Error)
	}
	if done.Solution == nil || !done.Solution.Exact || done.Solution.SPMapping == nil {
		t.Fatalf("solution = %+v, want an exact sp solution", done.Solution)
	}
}

// TestParetoComm: the Pareto sweep works on a heterogeneous
// communication-aware pipeline — the wire path of the engine's
// sweep-scoped prepared pool, which the comm kind joins through the
// Preparable capability. Every front point must carry a comm mapping.
func TestParetoComm(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/pareto", commPipelineHet)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	fronts, statuses := splitStream(t, body)
	if len(fronts) == 0 {
		t.Fatalf("empty front, body %s", body)
	}
	for _, f := range fronts {
		if len(f.CommPipelineMapping) == 0 {
			t.Errorf("front point without comm mapping: %+v", f)
		}
	}
	if len(statuses) != 1 || statuses[0].Status != StreamStatusComplete {
		t.Fatalf("statuses = %+v, want one terminal complete line", statuses)
	}
}

// TestSolveSPCommParallelismIdentity: an explicit parallelism request on
// the SP and comm kinds answers byte-identically to the serial path —
// the wire-level face of the determinism contract.
func TestSolveSPCommParallelismIdentity(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, inst string
	}{
		{"sp", spChorded},
		{"comm-pipeline", commPipelineHet},
		{"comm-fork", commForkSmall},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/solve", tc.inst)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s serial status = %d, body %s", tc.name, resp.StatusCode, body)
		}
		var serial SolveResponse
		if err := json.Unmarshal(body, &serial); err != nil {
			t.Fatal(err)
		}
		par := strings.TrimSuffix(strings.TrimSpace(tc.inst), "}") + `, "parallelism": 4}`
		resp, body = postJSON(t, ts.URL+"/v1/solve", par)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s parallel status = %d, body %s", tc.name, resp.StatusCode, body)
		}
		var parallel SolveResponse
		if err := json.Unmarshal(body, &parallel); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Solution, parallel.Solution) {
			t.Errorf("%s: parallel solution diverges from serial:\n par %+v\n ser %+v",
				tc.name, parallel.Solution, serial.Solution)
		}
	}
}

// TestSolveCommEndToEnd: the communication-aware kinds solve through
// /v1/solve, and a comm instance without bandwidth is a 400.
func TestSolveCommEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postJSON(t, ts.URL+"/v1/solve", commPipelineHom)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("comm pipeline status = %d, body %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Feasible || !out.Solution.Exact || len(out.Solution.CommPipelineMapping) == 0 {
		t.Errorf("comm pipeline solution = %+v, want exact with a comm mapping", out.Solution)
	}
	if !strings.HasPrefix(out.Cell, "comm-pipeline/") {
		t.Errorf("cell = %q, want a comm-pipeline cell", out.Cell)
	}

	resp, body = postJSON(t, ts.URL+"/v1/solve", commForkSmall)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("comm fork status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Solution.Feasible || !out.Solution.Exact || out.Solution.CommForkMapping == nil {
		t.Errorf("comm fork solution = %+v, want exact with a fork mapping", out.Solution)
	}

	// Bandwidth is required: the instance validates as a 400, not a 500.
	noBandwidth := `{
		"commPipeline": {"weights": [3, 1, 2], "data": [1, 2, 1, 1]},
		"platform": {"speeds": [1, 1]},
		"objective": "min-period"
	}`
	resp, body = postJSON(t, ts.URL+"/v1/solve", noBandwidth)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing bandwidth: status = %d, body %s", resp.StatusCode, body)
	}
}

// TestClassifyNewKinds: /v1/classify resolves the registered kinds by
// wire name, rejects unknown kinds and impossible axes with 400, and
// /v1/table lists every cell of every registered kind.
func TestClassifyNewKinds(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := getJSON(t, ts.URL+"/v1/classify?kind=sp")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sp status = %d, body %s", resp.StatusCode, body)
	}
	var info CellInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Complexity != "np-hard" || info.Source != "SP decomposition" {
		t.Errorf("sp cell = %+v, want np-hard / SP decomposition", info)
	}

	resp, body = getJSON(t, ts.URL+"/v1/classify?kind=comm-pipeline&platform=hom")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("comm-pipeline status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Complexity == "np-hard" || !strings.Contains(info.Source, "Section 3.2") {
		t.Errorf("hom comm-pipeline cell = %+v, want polynomial Section 3.2", info)
	}

	// Unknown kind and impossible axis are structured 400s.
	for _, q := range []string{"kind=gantt", "kind=sp&dp=true", "kind=comm-fork&dp=true"} {
		resp, body = getJSON(t, ts.URL+"/v1/classify?"+q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, body %s", q, resp.StatusCode, body)
			continue
		}
		var eb struct {
			Error ErrorBody `json:"error"`
		}
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Kind != ErrKindInvalidRequest {
			t.Errorf("%s: error body %s (err %v)", q, body, err)
		}
	}

	// The table covers all registered kinds.
	resp, body = getJSON(t, ts.URL+"/v1/table")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table status = %d", resp.StatusCode)
	}
	var table TableResponse
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatal(err)
	}
	if want := len(core.RegisteredCells()); len(table.Cells) != want {
		t.Errorf("table has %d cells, want %d", len(table.Cells), want)
	}
	kinds := map[string]bool{}
	for _, c := range table.Cells {
		kinds[c.Kind] = true
	}
	for _, want := range []string{"pipeline", "fork", "fork-join", "sp", "comm-pipeline", "comm-fork"} {
		if !kinds[want] {
			t.Errorf("table missing kind %q (have %v)", want, kinds)
		}
	}
}
