package server

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// latencyBuckets are the upper bounds (seconds) of the solve-latency
// histogram, spanning microsecond closed-form solves to multi-second
// exhaustive searches. The implicit +Inf bucket is rendered separately.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is one cumulative latency histogram (Prometheus semantics:
// counts[i] is the number of observations <= latencyBuckets[i]).
type histogram struct {
	counts []uint64
	count  uint64
	sum    float64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]uint64, len(latencyBuckets))}
}

func (h *histogram) observe(seconds float64) {
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.counts[i]++
		}
	}
	h.count++
	h.sum += seconds
}

// metrics aggregates the server's counters. All methods are safe for
// concurrent use; rendering takes the same lock as recording, so a
// /metrics scrape sees a consistent snapshot.
type metrics struct {
	mu       sync.Mutex
	requests map[requestKey]uint64
	solves   map[solveKey]*histogram
}

// solveKey is one latency histogram series: the Table 1 dispatch cell
// plus the operation ("solve" for single solves, "pareto" for whole
// sweeps), so multi-solve sweep wall clock never pollutes the
// single-solve series of the same cell.
type solveKey struct {
	cell string
	op   string
}

// requestKey is one (endpoint, HTTP status) counter cell.
type requestKey struct {
	endpoint string
	code     int
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[requestKey]uint64),
		solves:   make(map[solveKey]*histogram),
	}
}

// recordRequest counts one finished HTTP request.
func (m *metrics) recordRequest(endpoint string, code int) {
	m.mu.Lock()
	m.requests[requestKey{endpoint, code}]++
	m.mu.Unlock()
}

// recordSolve observes one latency against the histogram of its
// (dispatch cell, operation) series.
func (m *metrics) recordSolve(cell, op string, seconds float64) {
	key := solveKey{cell, op}
	m.mu.Lock()
	h := m.solves[key]
	if h == nil {
		h = newHistogram()
		m.solves[key] = h
	}
	h.observe(seconds)
	m.mu.Unlock()
}

// gauge is one named value rendered alongside the internal counters
// (cache statistics, in-flight count, uptime).
type gauge struct {
	name, help, typ string
	value           float64
}

// write renders every metric in the Prometheus text exposition format.
// The snapshot is rendered into a buffer under the lock and written to
// w after releasing it, so a slow scraper can never stall the request
// handlers that record metrics.
func (m *metrics) write(w io.Writer, gauges []gauge) {
	var b bytes.Buffer
	m.render(&b, gauges)
	w.Write(b.Bytes()) //nolint:errcheck // the scraper is gone if this fails
}

func (m *metrics) render(w *bytes.Buffer, gauges []gauge) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# HELP wfserve_requests_total Finished HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE wfserve_requests_total counter\n")
	keys := make([]requestKey, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].code < keys[j].code
	})
	for _, k := range keys {
		fmt.Fprintf(w, "wfserve_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}

	fmt.Fprintf(w, "# HELP wfserve_solve_seconds Solve latency by Table 1 dispatch cell and operation (solve = one instance, pareto = a whole sweep).\n")
	fmt.Fprintf(w, "# TYPE wfserve_solve_seconds histogram\n")
	skeys := make([]solveKey, 0, len(m.solves))
	for k := range m.solves {
		skeys = append(skeys, k)
	}
	sort.Slice(skeys, func(i, j int) bool {
		if skeys[i].cell != skeys[j].cell {
			return skeys[i].cell < skeys[j].cell
		}
		return skeys[i].op < skeys[j].op
	})
	for _, k := range skeys {
		h := m.solves[k]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "wfserve_solve_seconds_bucket{cell=%q,op=%q,le=%q} %d\n", k.cell, k.op, formatFloat(le), h.counts[i])
		}
		fmt.Fprintf(w, "wfserve_solve_seconds_bucket{cell=%q,op=%q,le=\"+Inf\"} %d\n", k.cell, k.op, h.count)
		fmt.Fprintf(w, "wfserve_solve_seconds_sum{cell=%q,op=%q} %s\n", k.cell, k.op, formatFloat(h.sum))
		fmt.Fprintf(w, "wfserve_solve_seconds_count{cell=%q,op=%q} %d\n", k.cell, k.op, h.count)
	}

	for _, g := range gauges {
		fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", g.name, g.typ)
		fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.value))
	}
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip decimal, integral values without an exponent).
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
