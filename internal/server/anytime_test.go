package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
)

// largeHardInstance is a heterogeneous NP-hard pipeline far beyond the
// exhaustive limits: 18 stages on 16 processors with data-parallelism
// (Theorem 5 cell). Unbudgeted, it falls back to heuristics; budgeted,
// the anytime portfolio owns it.
const largeHardInstance = `{
	"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11, 3, 5, 9, 4, 6, 7]},
	"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1, 2, 3, 1, 2]},
	"allowDataParallel": true,
	"objective": "min-period"`

// TestSolveDeadlineReturnsAnytimeIncumbent is the deadline-expiry
// integration test: a large heterogeneous NP-hard instance with a 50ms
// request deadline and a budget inside it must return 200 with a
// feasible incumbent carrying a finite non-negative gap — never a
// 500/timeout.
func TestSolveDeadlineReturnsAnytimeIncumbent(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := largeHardInstance + `, "timeoutMs": 50, "budgetMs": 35}`
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200; body %s", resp.StatusCode, body)
	}
	if elapsed > 5*time.Second {
		t.Errorf("request took %v, want roughly the 50ms deadline", elapsed)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	sol := sr.Solution
	if !sol.Anytime {
		t.Error("solution not marked anytime")
	}
	if !sol.Feasible {
		t.Error("incumbent infeasible on an unbounded objective")
	}
	if sol.Method != "anytime" && !sol.Exact {
		t.Errorf("method = %q, want anytime", sol.Method)
	}
	if sol.Gap == nil {
		t.Fatal("missing gap")
	}
	if g := *sol.Gap; g < 0 || g > 1e12 {
		t.Errorf("gap = %g, want finite and >= 0", g)
	}
	if sol.LowerBound <= 0 {
		t.Errorf("lowerBound = %g, want > 0", sol.LowerBound)
	}
	if sol.Period <= 0 {
		t.Errorf("period = %g, want > 0", sol.Period)
	}
	if sol.Complexity != "np-hard" {
		t.Errorf("complexity = %q, want np-hard", sol.Complexity)
	}
}

// TestBatchBudgetSplitsAcrossInstances: a budgeted batch of NP-hard
// instances returns anytime certification for every solution and
// finishes in bounded time.
func TestBatchBudgetSplitsAcrossInstances(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Four distinct large instances (distinct first weights, so the
	// engine cannot dedup them).
	var instances []string
	for i := 0; i < 4; i++ {
		instances = append(instances, strings.Replace(largeHardInstance+`}`, `[14,`, fmt.Sprintf(`[%d,`, 14+i), 1))
	}
	body := fmt.Sprintf(`{"instances": [%s], "budgetMs": 120}`, strings.Join(instances, ","))
	resp, out := postJSON(t, ts.URL+"/v1/solve/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, out)
	}
	var br BatchResponse
	if err := json.Unmarshal(out, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Solutions) != 4 {
		t.Fatalf("got %d solutions, want 4", len(br.Solutions))
	}
	for i, sol := range br.Solutions {
		if !sol.Anytime || sol.Gap == nil || *sol.Gap < 0 {
			t.Errorf("solution %d lacks anytime certification: anytime=%v gap=%v", i, sol.Anytime, sol.Gap)
		}
	}
}

// TestDefaultBudgetAppliesWithoutRequestBudget: a server configured
// with a default budget solves NP-hard requests anytime without any
// per-request opt-in.
func TestDefaultBudgetAppliesWithoutRequestBudget(t *testing.T) {
	srv, ts := newTestServer(t, Config{DefaultBudget: 30 * time.Millisecond})
	resp, body := postJSON(t, ts.URL+"/v1/solve", largeHardInstance+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Solution.Anytime {
		t.Error("default budget did not engage anytime solving")
	}
	if got := srv.anytimeSolves.Load(); got == 0 {
		t.Error("wfserve_anytime_solves_total not incremented")
	}
}

// TestSolveOptionsPrecedence: a request budget overrides the server
// default, and a budget configured directly on Config.Options survives
// when neither is set.
func TestSolveOptionsPrecedence(t *testing.T) {
	viaOptions := New(Config{Options: core.Options{AnytimeBudget: 70 * time.Millisecond}})
	if got := viaOptions.solveOptions(0, 0).AnytimeBudget; got != 70*time.Millisecond {
		t.Errorf("Config.Options budget clobbered: %v", got)
	}
	if got := viaOptions.solveOptions(5, 0).AnytimeBudget; got != 5*time.Millisecond {
		t.Errorf("request budget not applied: %v", got)
	}
	viaDefault := New(Config{DefaultBudget: 40 * time.Millisecond})
	if got := viaDefault.solveOptions(0, 0).AnytimeBudget; got != 40*time.Millisecond {
		t.Errorf("DefaultBudget not applied: %v", got)
	}
	if got := viaDefault.solveOptions(5, 0).AnytimeBudget; got != 5*time.Millisecond {
		t.Errorf("request budget not applied over DefaultBudget: %v", got)
	}
	if got := viaDefault.solveOptions(-1, 0).AnytimeBudget; got != 0 {
		t.Errorf("budgetMs < 0 must opt out of the default budget, got %v", got)
	}
}

// TestParetoHonoursBudget: /v1/pareto accepts budgetMs and still
// returns a well-formed NDJSON front on an NP-hard instance (a
// moderate one — the sweep solves one subproblem per candidate period,
// so the huge largeHardInstance is out of reach for any pareto call).
func TestParetoHonoursBudget(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{
		"pipeline": {"weights": [14, 4, 2, 4, 7, 3]},
		"platform": {"speeds": [2, 1, 3, 1]},
		"allowDataParallel": true,
		"objective": "min-period", "timeoutMs": 20000, "budgetMs": 500}`
	resp, body := postJSON(t, ts.URL+"/v1/pareto", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	sols, statuses := splitStream(t, body)
	if len(sols) == 0 {
		t.Fatal("empty Pareto front")
	}
	prevPeriod := 0.0
	for i, sol := range sols {
		if !sol.Feasible || sol.Period < prevPeriod {
			t.Errorf("line %d breaks the front invariant: feasible=%v period=%g after %g", i, sol.Feasible, sol.Period, prevPeriod)
		}
		prevPeriod = sol.Period
	}
	if n := len(statuses); n == 0 || statuses[n-1].Status != StreamStatusComplete {
		t.Errorf("stream missing its terminal complete line: %+v", statuses)
	}
}

// TestBudgetDoesNotDisturbPolynomialCells: a budgeted request on a
// polynomial cell still returns the exact algorithm's answer.
func TestBudgetDoesNotDisturbPolynomialCells(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := strings.TrimSuffix(strings.TrimSpace(section2), "}") + `, "budgetMs": 20}`
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Solution.Anytime || !sr.Solution.Exact {
		t.Errorf("polynomial cell disturbed by budget: anytime=%v exact=%v", sr.Solution.Anytime, sr.Solution.Exact)
	}
}
