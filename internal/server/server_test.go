package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/instance"
)

// section2 is the paper's Section 2 instance: pipeline (14,4,2,4) on
// three unit-speed processors with data-parallelism.
const section2 = `{
	"pipeline": {"weights": [14, 4, 2, 4]},
	"platform": {"speeds": [1, 1, 1]},
	"allowDataParallel": true,
	"objective": "min-latency"
}`

// slowInstance solves exhaustively in seconds at 14 processors: an
// NP-hard cell (Theorem 5) within the raised exhaustive limit of
// newSlowServer. (Sized up from 12 processors when the prepared-solver
// DP got an order of magnitude faster.)
const slowInstance = `{
	"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11, 6, 5]},
	"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1, 2, 1]},
	"allowDataParallel": true,
	"objective": "min-latency"
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close) // drain any async jobs the test left running
	return s, ts
}

// newSlowServer raises the pipeline exhaustive limit so slowInstance
// solves exhaustively (and slowly) instead of falling back to a fast
// heuristic.
func newSlowServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	cfg.Options = core.Options{MaxExhaustivePipelineProcs: 14}
	return newTestServer(t, cfg)
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func TestSolveSection2(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/solve", section2)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out SolveResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Solution.Latency != 17 || !out.Solution.Exact || !out.Solution.Feasible {
		t.Errorf("solution = %+v, want exact feasible latency 17", out.Solution)
	}
	if out.Solution.Method != "dynamic-programming" || out.Solution.Source != "Theorem 3" {
		t.Errorf("provenance = %s / %s, want dynamic-programming / Theorem 3", out.Solution.Method, out.Solution.Source)
	}
	if !strings.Contains(out.Cell, "pipeline/hom-platform") {
		t.Errorf("cell = %q", out.Cell)
	}
	if len(out.Solution.PipelineMapping) == 0 {
		t.Error("missing pipeline mapping")
	}
}

func TestSolveMalformed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"syntax error", `{"pipeline": `},
		{"unknown field", `{"pipleine": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "min-period"}`},
		{"no graph", `{"platform": {"speeds": [1]}, "objective": "min-period"}`},
		{"two graphs", `{"pipeline": {"weights": [1]}, "fork": {"root": 1, "weights": [1]}, "platform": {"speeds": [1]}, "objective": "min-period"}`},
		{"bad objective", `{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "fastest"}`},
		{"negative weight", `{"pipeline": {"weights": [-1]}, "platform": {"speeds": [1]}, "objective": "min-period"}`},
		{"no processors", `{"pipeline": {"weights": [1]}, "platform": {"speeds": []}, "objective": "min-period"}`},
		{"bounded without bound", `{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "latency-under-period"}`},
		{"stray bound", `{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "min-period", "bound": 5}`},
		{"trailing JSON", `{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "min-period"} {"x": 1}`},
		{"trailing garbage", `{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "min-period"} %%%`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/solve", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, body %s", resp.StatusCode, body)
			}
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil {
				t.Fatalf("non-JSON error body %s: %v", body, err)
			}
			if er.Error.Kind != ErrKindInvalidRequest {
				t.Errorf("kind = %q, want %q", er.Error.Kind, ErrKindInvalidRequest)
			}
			if er.Error.Message == "" {
				t.Error("empty error message")
			}
		})
	}
}

func TestOversizedBodyReturns413(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 1024})
	cases := []string{
		// Oversized document.
		`{"pipeline": {"weights": [` + strings.Repeat("1,", 2048) + `1]}, "platform": {"speeds": [1]}, "objective": "min-period"}`,
		// Valid document followed by oversized junk: the size limit must
		// win over the trailing-data classification.
		section2 + strings.Repeat(" ", 2048) + "junk",
	}
	for i, body := range cases {
		resp, b := postJSON(t, ts.URL+"/v1/solve", body)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("case %d: status = %d, body %s", i, resp.StatusCode, b)
		}
		var er ErrorResponse
		if err := json.Unmarshal(b, &er); err != nil {
			t.Fatal(err)
		}
		if er.Error.Kind != ErrKindBodyTooLarge {
			t.Errorf("case %d: kind = %q, want %q", i, er.Error.Kind, ErrKindBodyTooLarge)
		}
	}
}

func TestSolveDeadlineExceededOnNPHardCell(t *testing.T) {
	_, ts := newSlowServer(t, Config{})
	req := strings.TrimSuffix(strings.TrimSpace(slowInstance), "}") + `, "timeoutMs": 25}`
	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/solve", req)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	// The solve takes seconds uncancelled; the deadline must cut it off
	// promptly (generous slack for loaded CI machines).
	if elapsed > 2*time.Second {
		t.Errorf("request returned after %v, want prompt cancellation", elapsed)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Kind != ErrKindDeadlineExceeded {
		t.Errorf("kind = %q, want %q", er.Error.Kind, ErrKindDeadlineExceeded)
	}
	if er.Error.Complexity != "np-hard" || er.Error.Source != "Theorem 5" {
		t.Errorf("classification = %s / %s, want np-hard / Theorem 5", er.Error.Complexity, er.Error.Source)
	}
	if er.Error.Cell == "" {
		t.Error("missing cell in structured error")
	}
}

func TestBatchDedupSecondRequestHitsCache(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	batch := fmt.Sprintf(`{"instances": [%s, %s]}`, section2, section2)
	resp, body := postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Solutions) != 2 {
		t.Fatalf("got %d solutions, want 2", len(out.Solutions))
	}
	if out.Solutions[0].Latency != 17 || out.Solutions[1].Latency != 17 {
		t.Errorf("latencies = %g, %g, want 17, 17", out.Solutions[0].Latency, out.Solutions[1].Latency)
	}
	// The duplicate within the batch coalesces onto one computation.
	if out.Cache.RequestMisses != 1 || out.Cache.RequestHits != 1 {
		t.Errorf("request cache = %d hits / %d misses, want 1 / 1",
			out.Cache.RequestHits, out.Cache.RequestMisses)
	}
	// A second identical batch is answered fully from the cache.
	resp, body = postJSON(t, ts.URL+"/v1/solve/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Cache.RequestMisses != 0 || out.Cache.RequestHits != 2 {
		t.Errorf("second batch cache = %d hits / %d misses, want 2 / 0",
			out.Cache.RequestHits, out.Cache.RequestMisses)
	}
	if hits, _ := srv.Engine().CacheStats(); hits < 3 {
		t.Errorf("engine hits = %d, want >= 3", hits)
	}
}

// splitStream partitions the NDJSON lines of a /v1/pareto body into
// solution documents and status lines. Status lines are recognized by
// their "status" field — the discriminator the wire format guarantees;
// solution lines must strictly decode as SolutionJSON.
func splitStream(t *testing.T, body []byte) (sols []instance.SolutionJSON, statuses []StreamStatus) {
	t.Helper()
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var probe struct {
			Status *string `json:"status"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Status != nil {
			var st StreamStatus
			if err := json.Unmarshal(line, &st); err != nil {
				t.Fatalf("bad status line %q: %v", sc.Text(), err)
			}
			statuses = append(statuses, st)
			continue
		}
		var sol instance.SolutionJSON
		if err := instance.DecodeStrict(bytes.NewReader(line), &sol); err != nil {
			t.Fatalf("line does not strictly decode as SolutionJSON: %v (%s)", err, sc.Text())
		}
		sols = append(sols, sol)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sols, statuses
}

func TestParetoStreamsNDJSON(t *testing.T) {
	// Objective omitted on purpose: the sweep ignores it.
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/pareto", `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true
	}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	fronts, statuses := splitStream(t, body)
	if len(fronts) != 2 || fronts[0].Period != 8 || fronts[0].Latency != 24 ||
		fronts[1].Period != 10 || fronts[1].Latency != 17 {
		t.Errorf("front = %+v, want (8,24), (10,17)", fronts)
	}
	if len(statuses) != 1 || statuses[0].Status != StreamStatusComplete {
		t.Fatalf("statuses = %+v, want one terminal complete line", statuses)
	}
	term := statuses[0]
	if term.Points != 2 || term.Unexplored != 0 || term.Explored != term.TotalCandidates || term.TotalCandidates == 0 {
		t.Errorf("terminal line = %+v, want 2 points, fully explored", term)
	}
	// The terminal line is the last line of the stream.
	trimmed := bytes.TrimSpace(body)
	last := trimmed[bytes.LastIndexByte(trimmed, '\n')+1:]
	if !bytes.Contains(last, []byte(`"status"`)) {
		t.Errorf("stream does not end with the terminal status line: %s", last)
	}
}

func TestClassifyAndTable(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getJSON(t, ts.URL+"/v1/classify?kind=pipeline&platform=hom&dp=true&objective=min-latency")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var info CellInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Complexity != "poly-dp" || info.Source != "Theorem 3" || info.Method != "dynamic-programming" || !info.Exact {
		t.Errorf("cell info = %+v, want poly-dp / Theorem 3 / dynamic-programming / exact", info)
	}

	resp, body = getJSON(t, ts.URL+"/v1/classify?kind=gantt")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad kind: status = %d, body %s", resp.StatusCode, body)
	}

	resp, body = getJSON(t, ts.URL+"/v1/table")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("table status = %d", resp.StatusCode)
	}
	var table TableResponse
	if err := json.Unmarshal(body, &table); err != nil {
		t.Fatal(err)
	}
	if want := len(core.RegisteredCells()); len(table.Cells) != want {
		t.Errorf("table has %d cells, want %d", len(table.Cells), want)
	}
	for _, c := range table.Cells {
		if c.Complexity == "" || c.Source == "" || c.Method == "" {
			t.Errorf("incomplete cell info %+v", c)
		}
	}
}

func TestOverloadedReturns503(t *testing.T) {
	_, ts := newSlowServer(t, Config{MaxInFlight: 1})
	slow := strings.TrimSuffix(strings.TrimSpace(slowInstance), "}") + `, "timeoutMs": 2000}`
	fast := strings.TrimSuffix(strings.TrimSpace(section2), "}") + `, "timeoutMs": 100}`

	started := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		close(started)
		// Occupies the only slot; errors are fine, the request just has
		// to hold the limiter while the fast request queues.
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(slow))
		if err == nil {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
		}
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the slow solve claim the slot

	resp, body := postJSON(t, ts.URL+"/v1/solve", fast)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Kind != ErrKindOverloaded {
		t.Errorf("kind = %q, want %q", er.Error.Kind, ErrKindOverloaded)
	}
	<-done
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ok"`)) {
		t.Fatalf("healthz: status %d, body %s", resp.StatusCode, body)
	}

	// Generate traffic so the counters are non-trivial.
	postJSON(t, ts.URL+"/v1/solve", section2)
	postJSON(t, ts.URL+"/v1/solve", section2)

	resp, body = getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`wfserve_requests_total{endpoint="/v1/solve",code="200"} 2`,
		"wfserve_cache_hits_total 1",
		"wfserve_cache_misses_total 1",
		"wfserve_cache_hit_ratio 0.5",
		"wfserve_solve_seconds_bucket{cell=",
		"wfserve_solve_seconds_count{cell=",
		"wfserve_inflight_requests 0",
		"wfserve_stream_points_total 0",
		"wfserve_jobs_active 0",
		"wfserve_jobs_total 0",
		"wfserve_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentMixedTraffic drives 64 concurrent mixed solve, batch and
// pareto requests; every request must succeed. Run with -race in CI.
func TestConcurrentMixedTraffic(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := fmt.Sprintf(`{"instances": [%s, %s]}`, section2, section2)
	paretoBody := `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true
	}`
	forkBody := `{
		"fork": {"root": 2, "weights": [1, 3, 2]},
		"platform": {"speeds": [1, 2]},
		"objective": "min-period"
	}`

	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *http.Response
			var err error
			switch i % 4 {
			case 0:
				resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(section2))
			case 1:
				resp, err = http.Post(ts.URL+"/v1/solve/batch", "application/json", strings.NewReader(batch))
			case 2:
				resp, err = http.Post(ts.URL+"/v1/pareto", "application/json", strings.NewReader(paretoBody))
			default:
				resp, err = http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader(forkBody))
			}
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("request %d: status %d, body %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
