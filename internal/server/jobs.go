package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
	"repliflow/internal/store"
)

// jobManager is the bounded in-memory store behind /v1/jobs. Sweeps and
// large batches that would outlive any single HTTP deadline run as jobs:
// submitted with POST (202 + id), observed with GET (live progress,
// terminal results), cancelled with DELETE. When the store is full the
// oldest finished job is evicted to admit a new one; a store full of
// live jobs rejects submissions, bounding both memory and queued work.
type jobManager struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // creation order, for eviction
	seq   uint64
	max   int
	total uint64
}

func newJobManager(max int) *jobManager {
	return &jobManager{jobs: make(map[string]*job), max: max}
}

// job is one asynchronous request and its lifecycle state.
type job struct {
	id      string
	kind    string
	client  string
	reqRaw  json.RawMessage // the original JobRequest, persisted for crash recovery
	cancel  context.CancelFunc
	started time.Time

	mu        sync.Mutex
	status    string
	finished  time.Time
	progress  JobProgress
	solution  *instance.SolutionJSON
	solutions []instance.SolutionJSON
	front     []instance.SolutionJSON
	// nextPoint indexes the next sweep point of this run. On a recovered
	// pareto job the front is preloaded from the store, and the re-run
	// sweep overwrites those points in place (nextPoint < len(front))
	// before appending new ones — so the observable front never shrinks.
	nextPoint int
	err       *ErrorBody
	requested bool // cancellation requested via DELETE
}

// terminal reports whether the job has finished (in any way).
func (j *job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.terminalLocked()
}

func (j *job) terminalLocked() bool {
	return j.status == JobStatusDone || j.status == JobStatusFailed || j.status == JobStatusCanceled
}

// snapshot renders the job's wire form.
func (j *job) snapshot() JobResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := time.Now()
	if j.terminalLocked() {
		end = j.finished
	}
	return JobResponse{
		ID:        j.id,
		Kind:      j.kind,
		Status:    j.status,
		ElapsedMs: float64(end.Sub(j.started)) / float64(time.Millisecond),
		Progress:  j.progress,
		Solution:  j.solution,
		Solutions: j.solutions,
		Front:     j.front,
		Error:     j.err,
	}
}

// evictTerminalLocked drops the oldest finished job to make room,
// reporting whether one existed. Eviction removes the job from memory
// only — its persisted record stays in the store, so GET /v1/jobs/{id}
// still answers for it (rehydration).
func (m *jobManager) evictTerminalLocked() bool {
	for i, id := range m.order {
		if j := m.jobs[id]; j != nil && j.terminal() {
			delete(m.jobs, id)
			m.order = append(m.order[:i], m.order[i+1:]...)
			return true
		}
	}
	return false
}

// add admits a new job, evicting the oldest finished job when the store
// is at capacity. It fails when every stored job is still live.
func (m *jobManager) add(kind, client string, reqRaw json.RawMessage, cancel context.CancelFunc) (*job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.jobs) >= m.max && !m.evictTerminalLocked() {
		return nil, fmt.Errorf("job store full: %d jobs live", len(m.jobs))
	}
	m.seq++
	m.total++
	j := &job{
		id:      fmt.Sprintf("job-%d", m.seq),
		kind:    kind,
		client:  client,
		reqRaw:  reqRaw,
		cancel:  cancel,
		started: time.Now(),
		status:  JobStatusQueued,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j, nil
}

// adopt readmits a persisted job under its original id (crash
// recovery). It refuses when the id is already live here or the manager
// is full of live jobs.
func (m *jobManager) adopt(rec store.JobRecord, cancel context.CancelFunc) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[rec.ID]; ok {
		return nil, false
	}
	if len(m.jobs) >= m.max && !m.evictTerminalLocked() {
		return nil, false
	}
	m.total++
	j := &job{
		id:      rec.ID,
		kind:    rec.Kind,
		client:  rec.Client,
		reqRaw:  rec.Request,
		cancel:  cancel,
		started: time.UnixMilli(rec.CreatedMs),
		status:  JobStatusQueued,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j, true
}

// advanceSeq raises the id sequence to at least n, so ids minted after
// a recovery never collide with persisted jobs.
func (m *jobManager) advanceSeq(n uint64) {
	m.mu.Lock()
	if n > m.seq {
		m.seq = n
	}
	m.mu.Unlock()
}

// live returns the non-terminal jobs in creation order (for lease
// renewal).
func (m *jobManager) live() []*job {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []*job
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil && !j.terminal() {
			out = append(out, j)
		}
	}
	return out
}

func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// remove deletes a job from the store (terminal jobs only; the caller
// checks).
func (m *jobManager) remove(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.jobs, id)
	for i, jid := range m.order {
		if jid == id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

// list snapshots every stored job in creation order.
func (m *jobManager) list() []JobResponse {
	m.mu.Lock()
	ordered := make([]*job, 0, len(m.jobs))
	for _, id := range m.order {
		if j, ok := m.jobs[id]; ok {
			ordered = append(ordered, j)
		}
	}
	m.mu.Unlock()
	out := make([]JobResponse, len(ordered))
	for i, j := range ordered {
		out[i] = j.snapshot()
	}
	return out
}

// active counts queued and running jobs.
func (m *jobManager) active() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if !j.terminal() {
			n++
		}
	}
	return n
}

// created returns the lifetime count of accepted jobs.
func (m *jobManager) created() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// handleJobCreate is POST /v1/jobs: validate and admit the job, start it
// on its own goroutine, and return 202 with the job id immediately.
func (s *Server) handleJobCreate(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	problems, err := jobProblems(req, s.maxBatch)
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}

	// Jobs pay admission cost at submission — the client id recorded here
	// also keys the job's place in the fair queue.
	opts := s.solveOptions(req.BudgetMs, req.Parallelism)
	cost := batchCost(problems, opts)
	if req.Kind == "pareto" {
		sweep := problems[0]
		sweep.Objective = core.MinPeriod
		cost = paretoCostFactor * solveCost(sweep, opts)
	}
	if !s.admit(w, r, cost, nil) {
		return
	}

	// Jobs outlive the submitting request: their context derives from the
	// server's drain signal, not the HTTP request. The timeout is applied
	// in runJob once a solve slot is acquired — it bounds the job's run,
	// not its time in the queue.
	ctx, cancel := context.WithCancel(s.baseCtx)
	reqRaw, _ := json.Marshal(req)
	j, err := s.jobs.add(req.Kind, ClientID(r), reqRaw, cancel)
	if err != nil {
		cancel()
		writeError(w, http.StatusServiceUnavailable, ErrKindOverloaded, err.Error(), nil)
		return
	}
	s.persistJob(j)
	go s.runJob(ctx, cancel, j, problems, opts, s.timeoutFor(req.TimeoutMs), ClientID(r))
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// runJob executes one admitted job to its terminal state.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, problems []core.Problem, opts core.Options, timeout time.Duration, client string) {
	defer cancel()
	// Jobs queue on the same weighted-fair slot pool as synchronous
	// requests, under the submitting client's identity, so a burst of
	// jobs cannot oversubscribe the engine or starve other tenants.
	// Queueing is bounded only by cancellation (DELETE) and server
	// drain — the run timeout starts once the slot is held.
	if err := s.acquire(ctx, client); err != nil {
		s.finishJob(j, err)
		return
	}
	defer s.release()
	ctx, cancelRun := context.WithTimeout(ctx, timeout)
	defer cancelRun()
	j.mu.Lock()
	j.status = JobStatusRunning
	j.mu.Unlock()
	s.persistJob(j)

	switch j.kind {
	case "solve":
		j.mu.Lock()
		j.progress = JobProgress{Total: 1}
		j.mu.Unlock()
		sol, err := s.eng.Solve(ctx, problems[0], opts)
		if err == nil {
			out := instance.FromSolution(sol)
			s.countAnytime(out)
			j.mu.Lock()
			j.solution = &out
			j.progress.Done = 1
			j.mu.Unlock()
		}
		s.finishJob(j, err)
	case "batch":
		j.mu.Lock()
		j.progress = JobProgress{Total: len(problems)}
		j.mu.Unlock()
		sols, err := s.eng.SolveBatch(ctx, problems, opts)
		if err == nil {
			out := make([]instance.SolutionJSON, len(sols))
			for i, sol := range sols {
				out[i] = instance.FromSolution(sol)
			}
			s.countAnytime(out...)
			j.mu.Lock()
			j.solutions = out
			j.progress.Done = len(out)
			j.mu.Unlock()
		}
		s.finishJob(j, err)
	case "pareto":
		stats, err := s.eng.SweepFront(ctx, problems[0], opts, engine.SweepObserver{
			Point: func(p engine.SweepPoint) error {
				out := instance.FromSolution(p.Solution)
				s.countAnytime(out)
				j.mu.Lock()
				// A recovered job re-proves its preloaded prefix in place;
				// only points beyond it are new to the store (their prefix
				// twins were appended by the previous incarnation).
				fresh := j.nextPoint >= len(j.front)
				if fresh {
					j.front = append(j.front, out)
				} else {
					j.front[j.nextPoint] = out
				}
				j.nextPoint++
				j.progress = JobProgress{Done: p.Explored, Total: p.Total, Points: len(j.front)}
				j.mu.Unlock()
				if fresh {
					s.persistPoint(j.id, out)
				}
				return nil
			},
			Progress: func(explored, total int) {
				j.mu.Lock()
				j.progress.Done, j.progress.Total = explored, total
				j.mu.Unlock()
			},
		})
		// The observer only sees progress up to the last solve round; the
		// returned stats also cover trailing pruning.
		j.mu.Lock()
		j.progress = JobProgress{Done: stats.Explored, Total: stats.Total, Points: stats.Points}
		j.mu.Unlock()
		// A deadline or cancellation keeps the partial front: the points
		// are final, the sweep just did not finish.
		s.finishJob(j, err)
	}
}

// finishJob records the terminal state of a job and writes it through
// to the store (a drain-canceled job is persisted as re-queueable; see
// jobRecord).
func (s *Server) finishJob(j *job, err error) {
	j.mu.Lock()
	j.finished = time.Now()
	switch {
	case err == nil:
		j.status = JobStatusDone
	case j.requested:
		j.status = JobStatusCanceled
		j.err = &ErrorBody{Kind: ErrKindCanceled, Message: "job cancelled"}
	case s.closing() && errors.Is(err, context.Canceled):
		j.status = JobStatusCanceled
		j.err = &ErrorBody{Kind: ErrKindShuttingDown, Message: "server shutting down"}
	case errors.Is(err, context.DeadlineExceeded):
		j.status = JobStatusFailed
		j.err = &ErrorBody{Kind: ErrKindDeadlineExceeded, Message: err.Error()}
	case core.ErrKindOf(err) == core.ErrKindInvalidInstance:
		j.status = JobStatusFailed
		j.err = &ErrorBody{Kind: ErrKindInvalidRequest, Message: err.Error()}
	default:
		j.status = JobStatusFailed
		j.err = &ErrorBody{Kind: ErrKindInternal, Message: err.Error()}
	}
	j.mu.Unlock()
	s.persistJob(j)
}

// handleJobGet is GET /v1/jobs/{id}: the job's live progress or terminal
// results. A job evicted from memory but still persisted is rehydrated
// from the store instead of 404ing — eviction bounds memory, it does
// not forget finished work.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		if rec, found, err := s.store.GetJob(id); err == nil && found {
			writeJSON(w, http.StatusOK, jobResponseFromRecord(rec))
			return
		}
		writeError(w, http.StatusNotFound, ErrKindNotFound,
			fmt.Sprintf("no job %q", id), nil)
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

// handleJobDelete is DELETE /v1/jobs/{id}: cancel a live job (it turns
// canceled once its goroutine observes the cancellation; poll GET for
// the terminal snapshot) or discard a finished one.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobs.get(id)
	if !ok {
		// Evicted but persisted: an explicit DELETE removes the stored
		// record too — unlike eviction, this is the client forgetting the
		// job on purpose.
		if rec, found, err := s.store.GetJob(id); err == nil && found && rec.Terminal() {
			if err := s.store.DeleteJob(id); err != nil {
				s.storeErrors.Add(1)
			}
			writeJSON(w, http.StatusOK, jobResponseFromRecord(rec))
			return
		}
		writeError(w, http.StatusNotFound, ErrKindNotFound,
			fmt.Sprintf("no job %q", id), nil)
		return
	}
	if j.terminal() {
		s.jobs.remove(j.id)
		if err := s.store.DeleteJob(j.id); err != nil {
			s.storeErrors.Add(1)
		}
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	j.mu.Lock()
	j.requested = true
	j.mu.Unlock()
	j.cancel()
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// handleJobList is GET /v1/jobs: every stored job, in creation order.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, JobListResponse{Jobs: s.jobs.list()})
}
