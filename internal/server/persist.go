package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
	"repliflow/internal/store"
)

// This file is the server's write-through persistence layer: every job
// state transition is mirrored into the configured store.Store (jobs.go
// calls persistJob / persistPoint), non-terminal jobs carry leases the
// reaper goroutine renews, and on startup — or whenever a lease is
// found expired — recoverJobs adopts the orphaned work and re-runs it,
// with a pareto job's already-proven front preloaded so progress never
// moves backwards across a crash. The engine's second-level solution
// cache (engine.ResultStore) is adapted onto the same store.
//
// All store writes are best-effort: a failing store degrades wfserve to
// its in-memory behavior (counted in wfserve_store_errors_total), it
// never fails a request.

// resultStore adapts the server's store.Store to engine.ResultStore:
// solutions travel as instance.SolutionJSON documents — the same
// lossless wire form the HTTP API serves — keyed by the engine
// fingerprint.
type resultStore struct{ s *Server }

// Load implements engine.ResultStore.
func (rs resultStore) Load(key string) (core.Solution, bool) {
	raw, ok, err := rs.s.store.GetResult(key)
	if err != nil {
		rs.s.storeErrors.Add(1)
		return core.Solution{}, false
	}
	if !ok {
		rs.s.storeResultMisses.Add(1)
		return core.Solution{}, false
	}
	var sj instance.SolutionJSON
	if err := instance.DecodeStrict(bytes.NewReader(raw), &sj); err != nil {
		rs.s.storeErrors.Add(1)
		return core.Solution{}, false
	}
	sol, err := sj.Solution()
	if err != nil {
		rs.s.storeErrors.Add(1)
		return core.Solution{}, false
	}
	rs.s.storeResultHits.Add(1)
	return sol, true
}

// Store implements engine.ResultStore.
func (rs resultStore) Store(key string, sol core.Solution) {
	raw, err := json.Marshal(instance.FromSolution(sol))
	if err != nil {
		rs.s.storeErrors.Add(1)
		return
	}
	if err := rs.s.store.PutResult(key, raw); err != nil {
		rs.s.storeErrors.Add(1)
		return
	}
	rs.s.storeWrites.Add(1)
}

// jobRecord renders the job's durable form. Non-terminal records carry
// a fresh lease owned by this process; a job canceled by server drain
// (not by an explicit DELETE) is written back as queued with no lease,
// so the next process to open the store resumes it — a graceful restart
// loses no accepted work.
func (s *Server) jobRecord(j *job) store.JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := store.JobRecord{
		ID:        j.id,
		Kind:      j.kind,
		Status:    j.status,
		Client:    j.client,
		Request:   j.reqRaw,
		CreatedMs: j.started.UnixMilli(),
		Done:      j.progress.Done,
		Total:     j.progress.Total,
	}
	if j.status == JobStatusCanceled && !j.requested {
		rec.Status = JobStatusQueued
		rec.Done, rec.Total = 0, 0
	}
	terminal := rec.Status == JobStatusDone || rec.Status == JobStatusFailed || rec.Status == JobStatusCanceled
	if terminal {
		rec.FinishedMs = j.finished.UnixMilli()
		if j.err != nil {
			rec.Error, _ = json.Marshal(j.err)
		}
	} else {
		rec.Lease = &store.Lease{Owner: s.owner, ExpiresMs: time.Now().Add(s.leaseTTL).UnixMilli()}
	}
	if j.solution != nil {
		rec.Solution, _ = json.Marshal(j.solution)
	}
	if len(j.solutions) > 0 {
		rec.Solutions = make([]json.RawMessage, len(j.solutions))
		for i := range j.solutions {
			rec.Solutions[i], _ = json.Marshal(j.solutions[i])
		}
	}
	if len(j.front) > 0 {
		rec.Front = make([]json.RawMessage, len(j.front))
		for i := range j.front {
			rec.Front[i], _ = json.Marshal(j.front[i])
		}
	}
	return rec
}

// persistJob writes the job's current state through to the store.
func (s *Server) persistJob(j *job) {
	if err := s.store.PutJob(s.jobRecord(j)); err != nil {
		s.storeErrors.Add(1)
		return
	}
	s.storeWrites.Add(1)
}

// persistPoint appends one proven front point to the job's stored
// record (cheaper than rewriting the whole record per point).
func (s *Server) persistPoint(id string, sol instance.SolutionJSON) {
	raw, err := json.Marshal(sol)
	if err != nil {
		s.storeErrors.Add(1)
		return
	}
	if err := s.store.AppendFrontPoint(id, raw); err != nil {
		s.storeErrors.Add(1)
		return
	}
	s.storeWrites.Add(1)
}

// jobResponseFromRecord renders a stored record in the wire form GET
// /v1/jobs/{id} serves, for jobs evicted from memory but persisted.
// Undecodable payload fields are dropped rather than failing the read.
func jobResponseFromRecord(rec store.JobRecord) JobResponse {
	end := time.Now()
	if rec.FinishedMs > 0 {
		end = time.UnixMilli(rec.FinishedMs)
	}
	jr := JobResponse{
		ID:        rec.ID,
		Kind:      rec.Kind,
		Status:    rec.Status,
		ElapsedMs: float64(end.Sub(time.UnixMilli(rec.CreatedMs))) / float64(time.Millisecond),
		Progress:  JobProgress{Done: rec.Done, Total: rec.Total},
	}
	if rec.Solution != nil {
		var sol instance.SolutionJSON
		if json.Unmarshal(rec.Solution, &sol) == nil {
			jr.Solution = &sol
		}
	}
	for _, raw := range rec.Solutions {
		var sol instance.SolutionJSON
		if json.Unmarshal(raw, &sol) == nil {
			jr.Solutions = append(jr.Solutions, sol)
		}
	}
	for _, raw := range rec.Front {
		var sol instance.SolutionJSON
		if json.Unmarshal(raw, &sol) == nil {
			jr.Front = append(jr.Front, sol)
		}
	}
	if len(jr.Front) > 0 {
		jr.Progress.Points = len(jr.Front)
	}
	if rec.Error != nil {
		var eb ErrorBody
		if json.Unmarshal(rec.Error, &eb) == nil {
			jr.Error = &eb
		}
	}
	return jr
}

// jobSeq extracts the numeric suffix of a "job-N" id, 0 otherwise.
func jobSeq(id string) uint64 {
	n, err := strconv.ParseUint(strings.TrimPrefix(id, "job-"), 10, 64)
	if err != nil || !strings.HasPrefix(id, "job-") {
		return 0
	}
	return n
}

// recoverJobs adopts the store's orphaned work: every non-terminal
// record nobody holds a live lease on is re-queued and re-run under
// this process's ownership, with its proven front preloaded. At startup
// adoptAll is true — opening a store directory asserts exclusive
// ownership (store.DiskStore is single-writer), so even an unexpired
// lease belongs to a dead process. The reaper re-runs this with
// adoptAll false, adopting only expired leases (the shared-backend
// safe rule). The job id sequence is advanced past every stored id, so
// new submissions never collide with recovered ones.
func (s *Server) recoverJobs(adoptAll bool) {
	recs, err := s.store.ListJobs()
	if err != nil {
		s.storeErrors.Add(1)
		return
	}
	now := time.Now().UnixMilli()
	for _, rec := range recs {
		s.jobs.advanceSeq(jobSeq(rec.ID))
		if rec.Terminal() {
			continue
		}
		if !adoptAll && rec.Lease != nil && rec.Lease.ExpiresMs > now {
			continue // a live owner holds it
		}
		s.resumeJob(rec)
	}
}

// resumeJob re-runs one stored non-terminal job under this process.
// The original request is re-validated exactly as on submission; a
// record whose request no longer parses is marked failed in the store
// rather than retried forever.
func (s *Server) resumeJob(rec store.JobRecord) {
	fail := func(msg string) {
		rec.Status = JobStatusFailed
		rec.FinishedMs = time.Now().UnixMilli()
		rec.Lease = nil
		rec.Error, _ = json.Marshal(&ErrorBody{Kind: ErrKindInternal, Message: msg})
		if err := s.store.PutJob(rec); err != nil {
			s.storeErrors.Add(1)
		}
	}
	var req JobRequest
	if err := instance.DecodeStrict(bytes.NewReader(rec.Request), &req); err != nil {
		fail("recovering job: undecodable stored request: " + err.Error())
		return
	}
	problems, err := jobProblems(req, s.maxBatch)
	if err != nil {
		fail("recovering job: " + err.Error())
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j, ok := s.jobs.adopt(rec, cancel)
	if !ok {
		cancel() // already running here, or the manager is full of live jobs
		return
	}
	// Preload the proven front: the re-run sweep overwrites these points
	// in place as it re-proves them (see runJob), so the front a client
	// observes never shrinks across the crash.
	for _, raw := range rec.Front {
		var sol instance.SolutionJSON
		if err := json.Unmarshal(raw, &sol); err != nil {
			break
		}
		j.front = append(j.front, sol)
	}
	j.progress = JobProgress{Done: rec.Done, Total: rec.Total}
	if len(j.front) > 0 {
		j.progress.Points = len(j.front)
	}
	s.persistJob(j) // re-lease under this process before running
	s.storeRecovered.Add(1)
	opts := s.solveOptions(req.BudgetMs, req.Parallelism)
	go s.runJob(ctx, cancel, j, problems, opts, s.timeoutFor(req.TimeoutMs), rec.Client)
}

// reaper renews this process's leases and adopts expired ones until the
// server drains. The interval is a third of the lease TTL, so a live
// owner's leases are always renewed well before other replicas would
// consider them orphaned.
func (s *Server) reaper() {
	ticker := time.NewTicker(s.leaseTTL / 3)
	defer ticker.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-ticker.C:
			for _, j := range s.jobs.live() {
				s.persistJob(j)
			}
			s.recoverJobs(false)
		}
	}
}

// jobProblems validates a job request into its solve problems — shared
// by submission (handleJobCreate) and crash recovery (resumeJob), so a
// recovered request passes exactly the checks it passed when accepted.
func jobProblems(req JobRequest, maxBatch int) ([]core.Problem, error) {
	switch req.Kind {
	case "solve", "pareto":
		if req.Instance == nil || len(req.Instances) > 0 {
			return nil, fmt.Errorf("a %q job takes exactly the instance field", req.Kind)
		}
		ins := *req.Instance
		if req.Kind == "pareto" && ins.Objective == "" {
			ins.Objective = "min-period" // the sweep ignores it
		}
		pr, err := ins.Problem()
		if err != nil {
			return nil, err
		}
		return []core.Problem{pr}, nil
	case "batch":
		if req.Instance != nil || len(req.Instances) == 0 {
			return nil, fmt.Errorf(`a "batch" job takes a non-empty instances field`)
		}
		if len(req.Instances) > maxBatch {
			return nil, fmt.Errorf("batch of %d instances exceeds the limit of %d", len(req.Instances), maxBatch)
		}
		problems := make([]core.Problem, len(req.Instances))
		for i, ins := range req.Instances {
			pr, err := ins.Problem()
			if err != nil {
				return nil, fmt.Errorf("instances[%d]: %v", i, err)
			}
			problems[i] = pr
		}
		return problems, nil
	default:
		return nil, fmt.Errorf("unknown job kind %q (want solve, batch or pareto)", req.Kind)
	}
}

var _ = engine.ResultStore(resultStore{})
