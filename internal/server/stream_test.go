package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/instance"
)

// exactSweepInstance is the staged slow instance of the exact (pruned)
// sweep path: a 7-stage heterogeneous pipeline on 10 heterogeneous
// processors, solved exhaustively under a raised limit. The whole sweep
// takes on the order of a second at GOMAXPROCS=1 while the monotonicity
// pruning resolves the left end of the candidate list within the first
// few solves — so the first front point is proven (and must be flushed)
// long before the sweep completes.
const exactSweepInstance = `{
	"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9]},
	"platform": {"speeds": [5, 4, 3, 3, 2, 2, 1, 1, 4, 2]},
	"allowDataParallel": true`

// pacedSweepInstance is a small NP-hard staging instance with the
// exhaustive limits lowered (newPacedServer) so the anytime portfolio
// owns every candidate solve; its sweep takes long enough that a short
// deadline reliably fires before the first point on any machine.
const pacedSweepInstance = `{
	"pipeline": {"weights": [8, 4, 4]},
	"platform": {"speeds": [2, 1, 1]},
	"allowDataParallel": true`

func newPacedServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Options = core.Options{MaxExhaustivePipelineProcs: 2, MaxExhaustiveForkProcs: 2}
	s, ts := newTestServer(t, cfg)
	return s, ts.URL
}

// streamLines POSTs a pareto request and records each NDJSON line with
// its arrival time.
type timedLine struct {
	at   time.Duration
	text string
}

func streamLines(t *testing.T, url, body string) (int, []timedLine, time.Duration) {
	t.Helper()
	start := time.Now()
	resp, err := http.Post(url+"/v1/pareto", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lines []timedLine
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines = append(lines, timedLine{at: time.Since(start), text: sc.Text()})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines, time.Since(start)
}

// parseStream splits timed lines into solution lines (keeping their
// arrival times) and status lines, verifying every solution line
// strictly decodes as SolutionJSON via splitStream.
func parseStream(t *testing.T, lines []timedLine) (sols []timedLine, statuses []StreamStatus) {
	t.Helper()
	var body []byte
	for _, l := range lines {
		body = append(body, l.text...)
		body = append(body, '\n')
	}
	_, statuses = splitStream(t, body)
	for _, l := range lines {
		if !strings.Contains(l.text, `"status"`) {
			sols = append(sols, l)
		}
	}
	return sols, statuses
}

// TestParetoFirstByteBeforeSweepCompletes is the tentpole's acceptance
// test: on the staged slow exact sweep, the first NDJSON line must reach
// the client in a small fraction of the total sweep time — the sweep is
// delivered incrementally, not buffered.
func TestParetoFirstByteBeforeSweepCompletes(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: core.Options{MaxExhaustivePipelineProcs: 10}})
	code, lines, total := streamLines(t, ts.URL, exactSweepInstance+`, "timeoutMs": 120000}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	sols, statuses := parseStream(t, lines)
	if len(sols) < 2 {
		t.Fatalf("staged sweep produced %d points, need >= 2", len(sols))
	}
	if n := len(statuses); n == 0 || statuses[n-1].Status != StreamStatusComplete {
		t.Fatalf("missing terminal complete line: %+v", statuses)
	}
	first := sols[0].at
	if first >= total/2 {
		t.Errorf("first point arrived at %v of a %v sweep — streaming is buffered, want first-byte << total", first, total)
	}
	// Increasing-period order across the delivered points.
	assertIncreasingPeriods(t, sols)
}

// checkTerminalDeadline asserts the terminal-line contract of a sweep
// cut by its deadline: the last status line reports deadline expiry, a
// positive and consistent unexplored candidate count, the exact number
// of points delivered, and the structured error body.
func checkTerminalDeadline(t *testing.T, statuses []StreamStatus, points int) {
	t.Helper()
	if len(statuses) == 0 {
		t.Fatal("stream ended without a terminal status line")
	}
	term := statuses[len(statuses)-1]
	if term.Status != StreamStatusDeadlineExceeded {
		t.Fatalf("terminal status = %q, want %q (%+v)", term.Status, StreamStatusDeadlineExceeded, term)
	}
	if term.Unexplored <= 0 || term.Unexplored != term.TotalCandidates-term.Explored {
		t.Errorf("terminal line reports unexplored %d of %d (explored %d), want a positive consistent count",
			term.Unexplored, term.TotalCandidates, term.Explored)
	}
	if term.Points != points {
		t.Errorf("terminal line counts %d points, stream carried %d", term.Points, points)
	}
	if term.Error == nil || term.Error.Kind != ErrKindDeadlineExceeded {
		t.Errorf("terminal line error = %+v, want kind %q", term.Error, ErrKindDeadlineExceeded)
	}
}

// TestParetoDeadlineMidSweep is the deadline-expiry test for a deadline
// landing after the first point: the client gets an ordered partial
// front whose every line parses as SolutionJSON, closed by a terminal
// status line reporting how many candidates were left unexplored —
// never a bare 504 once a point is on the wire. The deadline is chosen
// adaptively — a cold reference run measures when the first point and
// the completion happen, and the timed run gets the midpoint — so the
// test stages "mid-sweep" on any machine speed.
func TestParetoDeadlineMidSweep(t *testing.T) {
	cfg := Config{Options: core.Options{MaxExhaustivePipelineProcs: 10}}
	_, ref := newTestServer(t, cfg)
	code, lines, total := streamLines(t, ref.URL, exactSweepInstance+`, "timeoutMs": 120000}`)
	if code != http.StatusOK {
		t.Fatalf("reference sweep: status = %d", code)
	}
	sols, _ := parseStream(t, lines)
	if len(sols) < 2 {
		t.Fatalf("reference sweep produced %d points, need >= 2", len(sols))
	}
	first := sols[0].at
	if total-first < 100*time.Millisecond {
		t.Skipf("machine sweeps the staging instance in %v after the first point; cannot stage a mid-sweep deadline", total-first)
	}
	deadline := first + (total-first)/2

	// A fresh server: the reference run must not warm the timed run.
	_, timed := newTestServer(t, cfg)
	body := fmt.Sprintf(`%s, "timeoutMs": %d}`, exactSweepInstance, deadline.Milliseconds())
	code, lines, _ = streamLines(t, timed.URL, body)
	if code != http.StatusOK {
		t.Fatalf("status = %d with a mid-sweep deadline", code)
	}
	partial, statuses := parseStream(t, lines)
	if len(partial) == 0 {
		t.Fatalf("deadline at %v (first point at %v, total %v) cut the sweep before any point", deadline, first, total)
	}
	if len(partial) >= len(sols) {
		t.Fatalf("deadline at %v did not cut the %v sweep (got all %d points)", deadline, total, len(partial))
	}
	assertIncreasingPeriods(t, partial)
	// The partial front is a prefix of the reference front.
	for i := range partial {
		if partial[i].text != sols[i].text {
			t.Errorf("partial front diverges from the full front at point %d:\n%s\n%s", i, partial[i].text, sols[i].text)
		}
	}
	checkTerminalDeadline(t, statuses, len(partial))
}

// TestParetoHeartbeatsKeepSlowStreamAlive: a sweep whose first candidate
// solves outlast the deadline still produces a live, well-formed stream:
// heartbeat status lines commit the response and the deadline lands
// in-stream as a terminal status line — not a 504 — even with zero
// points delivered.
func TestParetoHeartbeatsKeepSlowStreamAlive(t *testing.T) {
	_, ts := newSlowServer(t, Config{StreamHeartbeat: 60 * time.Millisecond})
	code, lines, _ := streamLines(t, ts.URL, strings.TrimSuffix(strings.TrimSpace(slowInstance), "}")+`, "timeoutMs": 600}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, want the heartbeat-committed 200", code)
	}
	sols, statuses := parseStream(t, lines)
	if len(sols) != 0 {
		t.Fatalf("expected no points within the deadline, got %d", len(sols))
	}
	hb := 0
	for _, st := range statuses {
		if st.Status == StreamStatusHeartbeat {
			hb++
		}
	}
	if hb < 2 {
		t.Errorf("got %d heartbeat lines over a 600ms wait at 60ms interval, want >= 2", hb)
	}
	checkTerminalDeadline(t, statuses, 0)
}

// TestParetoDeadlineBeforeAnyLineIs504: with no heartbeat and a deadline
// well before the first point, nothing has committed the stream, so the
// client gets the plain structured deadline error — the legacy contract
// for sweeps that never produced anything.
func TestParetoDeadlineBeforeAnyLineIs504(t *testing.T) {
	_, url := newPacedServer(t, Config{})
	resp, body := postJSON(t, url+"/v1/pareto", pacedSweepInstance+`, "budgetMs": 2400, "timeoutMs": 150}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Error.Kind != ErrKindDeadlineExceeded {
		t.Errorf("kind = %q, want %q", er.Error.Kind, ErrKindDeadlineExceeded)
	}
}

// TestParetoStreamMatchesBatchFront: the streamed front must carry
// exactly the same solution documents, in the same order, as the
// engine's slice-returning ParetoFront on the same randomized corpus —
// the byte-level equality contract between the two delivery modes.
func TestParetoStreamMatchesBatchFront(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	bodies := []string{
		`{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true`,
		`{"pipeline": {"weights": [5, 3, 8, 2]}, "platform": {"speeds": [3, 2, 1]}, "allowDataParallel": true`,
		`{"fork": {"root": 2, "weights": [1, 3, 2]}, "platform": {"speeds": [1, 2]}`,
		`{"forkjoin": {"root": 2, "join": 1, "weights": [3, 1]}, "platform": {"speeds": [2, 1, 1]}`,
	}
	for i, b := range bodies {
		resp, body := postJSON(t, ts.URL+"/v1/pareto", b+`}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("case %d: status = %d, body %s", i, resp.StatusCode, body)
		}
		sols, _ := splitStream(t, body)

		var req SolveRequest
		if err := json.NewDecoder(strings.NewReader(b + `}`)).Decode(&req); err != nil {
			t.Fatal(err)
		}
		if req.Instance.Objective == "" {
			req.Instance.Objective = "min-period"
		}
		pr, err := req.Instance.Problem()
		if err != nil {
			t.Fatal(err)
		}
		front, err := srv.Engine().ParetoFront(context.Background(), pr, srv.opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(front) != len(sols) {
			t.Fatalf("case %d: stream carried %d points, ParetoFront returned %d", i, len(sols), len(front))
		}
		for j, sol := range front {
			streamJSON, err := json.Marshal(sols[j])
			if err != nil {
				t.Fatal(err)
			}
			sliceJSON, err := json.Marshal(instance.FromSolution(sol))
			if err != nil {
				t.Fatal(err)
			}
			if string(streamJSON) != string(sliceJSON) {
				t.Errorf("case %d point %d: stream %s != slice %s", i, j, streamJSON, sliceJSON)
			}
		}
	}
}

// assertIncreasingPeriods checks the period order invariant of a
// streamed (partial) front: non-decreasing periods (exact fronts are
// strictly increasing; heuristic/anytime fronts may tighten two latency
// levels to the same period) and every point feasible.
func assertIncreasingPeriods(t *testing.T, sols []timedLine) {
	t.Helper()
	prev := -1.0
	for i, l := range sols {
		var p struct {
			Period   float64 `json:"period"`
			Feasible bool    `json:"feasible"`
		}
		if err := json.Unmarshal([]byte(l.text), &p); err != nil {
			t.Fatal(err)
		}
		if !p.Feasible || p.Period < prev {
			t.Errorf("point %d breaks the front order: feasible=%v period=%g after %g", i, p.Feasible, p.Period, prev)
		}
		prev = p.Period
	}
}
