package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock drives admission refill deterministically from tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestTokenBucketRefill(t *testing.T) {
	clock := newFakeClock()
	a := newAdmission(2, 10) // 2 tokens/s, burst 10
	a.now = clock.Now

	if _, ok := a.admit("t", 4); !ok {
		t.Fatal("first admit from a full bucket rejected")
	}
	retry, ok := a.admit("t", 8) // 6 tokens left < 8
	if ok {
		t.Fatal("admit over the remaining tokens succeeded")
	}
	if want := time.Second; retry != want { // (8-6)/2 tokens per second
		t.Fatalf("retryAfter = %v, want %v", retry, want)
	}
	clock.Advance(time.Second) // refills to 8
	if _, ok := a.admit("t", 8); !ok {
		t.Fatal("admit after refill rejected")
	}

	// A rejection must not debit: the bucket still covers a smaller
	// request.
	clock.Advance(time.Second) // 2 tokens
	if _, ok := a.admit("t", 5); ok {
		t.Fatal("admit over budget succeeded")
	}
	if _, ok := a.admit("t", 2); !ok {
		t.Fatal("rejection debited the bucket")
	}
}

func TestTokenBucketOversizedRequest(t *testing.T) {
	clock := newFakeClock()
	a := newAdmission(2, 10)
	a.now = clock.Now

	// A request costing more than one full bucket is admitted only from
	// a full bucket, which then goes negative.
	if _, ok := a.admit("big", 25); !ok {
		t.Fatal("oversized request from a full bucket rejected")
	}
	retry, ok := a.admit("big", 1) // tokens = -15
	if ok {
		t.Fatal("admit from a negative bucket succeeded")
	}
	if want := 8 * time.Second; retry != want { // (1-(-15))/2
		t.Fatalf("retryAfter = %v, want %v", retry, want)
	}
	clock.Advance(8 * time.Second)
	if _, ok := a.admit("big", 1); !ok {
		t.Fatal("admit after paying back the debt rejected")
	}

	// From a partially drained bucket the oversized request is rejected
	// with a retry that refills to capacity, never more.
	a2 := newAdmission(2, 10)
	a2.now = clock.Now
	if _, ok := a2.admit("c", 1); !ok {
		t.Fatal("priming admit rejected")
	}
	retry, ok = a2.admit("c", 25)
	if ok {
		t.Fatal("oversized admit from a drained bucket succeeded")
	}
	if want := 500 * time.Millisecond; retry != want { // (10-9)/2
		t.Fatalf("retryAfter = %v, want %v", retry, want)
	}
}

func TestAdmissionDisabledByDefault(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	if srv.adm.enabled() {
		t.Fatal("admission enabled without a configured rate")
	}
	for i := 0; i < 5; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/solve", slowInstance)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, resp.StatusCode, body)
		}
	}
}

func TestFairQueueRoundRobinGrantOrder(t *testing.T) {
	testFairQueueOrder(t, nil,
		[]string{"a", "a", "a", "b", "b"},
		[]string{"a", "b", "a", "b", "a"})
}

func TestFairQueueWeightedGrants(t *testing.T) {
	// Weight-2 tenant b drains two waiters per rotation.
	testFairQueueOrder(t, map[string]int{"b": 2},
		[]string{"a", "b", "b", "a", "b"},
		[]string{"a", "b", "b", "a", "b"})
}

// testFairQueueOrder occupies a capacity-1 queue, enqueues waiters in
// arrival order, then lets the slot cascade through them, asserting the
// weighted round-robin grant order.
func testFairQueueOrder(t *testing.T, weights map[string]int, arrivals, want []string) {
	t.Helper()
	q := newFairQueue(1, weights)
	if err := q.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	order := make(chan string, len(arrivals))
	var wg sync.WaitGroup
	for _, client := range arrivals {
		wg.Add(1)
		queuedBefore := q.queued()
		go func(client string) {
			defer wg.Done()
			if err := q.acquire(context.Background(), client); err != nil {
				t.Error(err)
				return
			}
			order <- client
			q.release() // cascade the slot to the next waiter
		}(client)
		// Serialize enqueue order: wait until this waiter is queued
		// before starting the next.
		for q.queued() != queuedBefore+1 {
			time.Sleep(time.Millisecond)
		}
	}

	q.release() // hand the held slot to the first grantee
	wg.Wait()
	close(order)
	var got []string
	for client := range order {
		got = append(got, client)
	}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("grant order = %v, want %v", got, want)
	}
	if q.queued() != 0 {
		t.Fatalf("queued = %d after drain", q.queued())
	}
}

func TestFairQueueCancelledWaiter(t *testing.T) {
	q := newFairQueue(1, nil)
	if err := q.acquire(context.Background(), "holder"); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- q.acquire(ctx, "w") }()
	for q.queued() != 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("cancelled acquire returned %v, want context.Canceled", err)
	}
	if q.queued() != 0 {
		t.Fatalf("queued = %d after cancellation", q.queued())
	}

	// The slot still works: release it and re-acquire immediately.
	q.release()
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := q.acquire(ctx2, "w2"); err != nil {
		t.Fatalf("acquire after cancel+release: %v", err)
	}
	q.release()
}

// TestTwoTenantFloodFairness is the admission acceptance test: a heavy
// tenant flooding expensive NP-hard requests exhausts its own bucket —
// 429 with Retry-After — while an interleaved light tenant's cheap
// requests all succeed, deterministically under a fake clock.
func TestTwoTenantFloodFairness(t *testing.T) {
	// Burst 32 = two exhaustive solves; rate 16 tokens/s.
	srv, ts := newTestServer(t, Config{RateLimit: 16, Burst: 32})
	clock := newFakeClock()
	srv.adm.now = clock.Now

	do := func(client, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientIDHeader, client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close() //nolint:errcheck
		return resp
	}
	// Distinct light instances dodge the fingerprint cache, so every
	// round exercises the full admission + solve path.
	lightBody := func(i int) string {
		return fmt.Sprintf(`{
			"pipeline": {"weights": [14, 4, 2, %d]},
			"platform": {"speeds": [1, 1, 1]},
			"allowDataParallel": true,
			"objective": "min-latency"
		}`, i+1)
	}

	const rounds = 20
	heavyOK, heavy429 := 0, 0
	for i := 0; i < rounds; i++ {
		// Heavy tenant: slowInstance classifies NP-hard → cost 16.
		resp := do("heavy", slowInstance)
		switch resp.StatusCode {
		case http.StatusOK:
			heavyOK++
		case http.StatusTooManyRequests:
			heavy429++
			retry := resp.Header.Get("Retry-After")
			if secs, err := strconv.Atoi(retry); err != nil || secs < 1 {
				t.Fatalf("round %d: 429 Retry-After = %q, want a positive integer", i, retry)
			}
		default:
			t.Fatalf("round %d: heavy status = %d", i, resp.StatusCode)
		}

		// Light tenant: polynomial cell → cost 1, burst 32 covers all 20
		// rounds without any refill. Its requests must be untouched by
		// the heavy tenant's flood.
		if resp := do("light", lightBody(i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("round %d: light status = %d, want 200", i, resp.StatusCode)
		}
	}
	if heavyOK != 2 { // burst 32 covers exactly two cost-16 solves
		t.Errorf("heavy admitted %d times, want 2", heavyOK)
	}
	if heavy429 != rounds-2 {
		t.Errorf("heavy rejected %d times, want %d", heavy429, rounds-2)
	}

	// Refill admits the heavy tenant again: one second buys 16 tokens.
	clock.Advance(time.Second)
	if resp := do("heavy", slowInstance); resp.StatusCode != http.StatusOK {
		t.Fatalf("heavy after refill: status = %d, want 200", resp.StatusCode)
	}

	// The flood shows up in the metrics.
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	metrics := string(body)
	if want := fmt.Sprintf("wfserve_rate_limited_total %d", heavy429); !strings.Contains(metrics, want) {
		t.Errorf("metrics missing %q", want)
	}
	if !strings.Contains(metrics, "wfserve_tenants 2") {
		t.Errorf("metrics missing wfserve_tenants 2:\n%s", metrics)
	}
}

// TestRateLimited429Body pins the 429 wire contract: structured error
// kind, human message, and a whole-seconds Retry-After header.
func TestRateLimited429Body(t *testing.T) {
	srv, ts := newTestServer(t, Config{RateLimit: 1, Burst: 16})
	clock := newFakeClock()
	srv.adm.now = clock.Now

	// Drain the anonymous bucket with one exhaustive solve, then the
	// next is rejected.
	resp, body := postJSON(t, ts.URL+"/v1/solve", slowInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming solve: status %d, body %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/solve", slowInstance)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "16" { // 16 tokens at 1/s
		t.Errorf("Retry-After = %q, want 16", got)
	}
	if !strings.Contains(string(body), `"kind": "rate-limited"`) {
		t.Errorf("429 body missing rate-limited kind: %s", body)
	}
	if !strings.Contains(string(body), AnonymousClient) {
		t.Errorf("429 body does not name the anonymous client: %s", body)
	}
}

// TestDonationDoesNotStarveQueuedTenants pins the MaxInFlight default
// (2x workers) against PR 6's slot donation: a donating solve may absorb
// every idle engine slot, but it returns them at completion, so queued
// tenants are delayed at most one solve — never starved. The heavy
// tenant runs budgeted anytime solves with auto parallelism (maximal
// donation) back-to-back while a light tenant's polynomial solves must
// all complete.
func TestDonationDoesNotStarveQueuedTenants(t *testing.T) {
	_, ts := newSlowServer(t, Config{Workers: 2}) // MaxInFlight defaults to 4

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Budgeted solves finish in ~150ms each; parallelism -1 donates
		// every idle engine slot to each solve. Distinct weights keep
		// each round out of the fingerprint cache.
		for i := 0; i < 4; i++ {
			body := fmt.Sprintf(`{
				"pipeline": {"weights": [14, 4, 2, 4, 7, 3, 9, 5, 6, 8, 2, 11, 6, %d]},
				"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1, 2, 1]},
				"allowDataParallel": true,
				"objective": "min-latency",
				"budgetMs": 150, "parallelism": -1, "timeoutMs": 30000
			}`, i+2)
			resp, err := http.Post(ts.URL+"/v1/solve?client=heavy", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close() //nolint:errcheck
			if resp.StatusCode != http.StatusOK {
				t.Errorf("heavy solve %d: status %d", i, resp.StatusCode)
			}
		}
	}()

	// Light tenant queues behind the donating solves; every request must
	// still complete well before the generous deadline.
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{
			"pipeline": {"weights": [9, 3, 1, %d]},
			"platform": {"speeds": [1, 1, 1]},
			"allowDataParallel": true,
			"objective": "min-latency",
			"timeoutMs": 20000
		}`, i+1)
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/solve", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(ClientIDHeader, "light")
		client := &http.Client{Timeout: 20 * time.Second}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatalf("light solve %d starved: %v", i, err)
		}
		resp.Body.Close() //nolint:errcheck
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("light solve %d: status %d", i, resp.StatusCode)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("heavy tenant never finished")
	}
}
