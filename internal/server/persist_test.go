package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/store"
)

// newDiskServer builds a server over a DiskStore in dir, returning the
// server, its test listener and the store (the caller restarts by
// closing all three and calling it again on the same dir).
func newDiskServer(t *testing.T, dir string, cfg Config) (*Server, *httptest.Server, *store.DiskStore) {
	t.Helper()
	st, err := store.OpenDisk(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = st
	s := New(cfg)
	ts := httptest.NewServer(s)
	return s, ts, st
}

// drain closes the server and waits for its job goroutines to persist
// their final state, then closes the listener and store — the orderly
// half of a restart (the crash half is cmd/wfserve's kill -9 test).
func drain(t *testing.T, s *Server, ts *httptest.Server, st *store.DiskStore) {
	t.Helper()
	s.Close()
	deadline := time.Now().Add(10 * time.Second)
	for s.jobs.active() > 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRestartResumesParetoJob: a pareto job interrupted by shutdown is
// re-queued in the store, and a new server over the same directory
// adopts it, re-runs it to completion, and never lets the observable
// front shrink below what the first incarnation proved.
func TestRestartResumesParetoJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Options: core.Options{MaxExhaustivePipelineProcs: 10}}
	s1, ts1, st1 := newDiskServer(t, dir, cfg)

	body := `{"kind": "pareto", "instance": ` + exactSweepInstance + `}, "timeoutMs": 120000}`
	resp, jr := postJob(t, ts1.URL, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status = %d", resp.StatusCode)
	}
	// Wait for the sweep to prove at least one point (or finish outright
	// on a fast machine — the restart assertions hold either way).
	mid := pollJob(t, ts1.URL, jr.ID, "first front point", func(j JobResponse) bool {
		return j.Progress.Points >= 1 || terminal(j)
	})
	drain(t, s1, ts1, st1)

	s2, ts2, st2 := newDiskServer(t, dir, cfg)
	defer drain(t, s2, ts2, st2)
	done := pollJob(t, ts2.URL, jr.ID, "terminal after restart", terminal)
	if done.Status != JobStatusDone {
		t.Fatalf("resumed job finished %q (error %+v), want done", done.Status, done.Error)
	}
	if len(done.Front) == 0 || len(done.Front) < mid.Progress.Points {
		t.Fatalf("front shrank across restart: %d points, had %d before shutdown",
			len(done.Front), mid.Progress.Points)
	}
	// The resumed run was counted, and new ids never collide with
	// recovered ones.
	resp2, jr2 := postJob(t, ts2.URL, fmt.Sprintf(`{"kind": "solve", "instance": %s}`, section2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart submit: status = %d", resp2.StatusCode)
	}
	if jr2.ID == jr.ID {
		t.Fatalf("restarted server reissued job id %s", jr.ID)
	}
}

// TestReaperAdoptsExpiredLease: a non-terminal record whose lease has
// expired — orphaned by a dead owner — is adopted by the reaper and run
// to completion, without a restart.
func TestReaperAdoptsExpiredLease(t *testing.T) {
	st := store.Mem()
	s, ts := newTestServer(t, Config{Store: st, LeaseTTL: 60 * time.Millisecond})
	defer s.Close()

	req := fmt.Sprintf(`{"kind": "solve", "instance": %s}`, section2)
	orphan := store.JobRecord{
		ID:        "job-77",
		Kind:      "solve",
		Status:    JobStatusQueued,
		Client:    "tenant-a",
		Request:   json.RawMessage(req),
		CreatedMs: time.Now().UnixMilli(),
		Lease:     &store.Lease{Owner: "dead-process", ExpiresMs: time.Now().Add(-time.Second).UnixMilli()},
	}
	if err := st.PutJob(orphan); err != nil {
		t.Fatal(err)
	}
	done := pollJob(t, ts.URL, "job-77", "adopted and finished", terminal)
	if done.Status != JobStatusDone || done.Solution == nil {
		t.Fatalf("adopted job = %+v, want done with a solution", done)
	}
	if got := s.storeRecovered.Load(); got == 0 {
		t.Error("recovered-jobs counter not incremented")
	}
	// The sequence advanced past the adopted id.
	resp, jr := postJob(t, ts.URL, req)
	if resp.StatusCode != http.StatusAccepted || jr.ID != "job-78" {
		t.Errorf("next submission = %q (status %d), want job-78", jr.ID, resp.StatusCode)
	}
}

// TestReaperLeavesLiveLeasesAlone: a non-terminal record under an
// unexpired foreign lease is not adopted mid-flight.
func TestReaperLeavesLiveLeasesAlone(t *testing.T) {
	st := store.Mem()
	s, _ := newTestServer(t, Config{Store: st, LeaseTTL: 60 * time.Millisecond})
	defer s.Close()

	req := fmt.Sprintf(`{"kind": "solve", "instance": %s}`, section2)
	live := store.JobRecord{
		ID:        "job-500",
		Kind:      "solve",
		Status:    JobStatusRunning,
		Request:   json.RawMessage(req),
		CreatedMs: time.Now().UnixMilli(),
		Lease:     &store.Lease{Owner: "replica-2", ExpiresMs: time.Now().Add(time.Hour).UnixMilli()},
	}
	if err := st.PutJob(live); err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond) // several reaper ticks
	rec, ok, err := st.GetJob("job-500")
	if err != nil || !ok {
		t.Fatalf("record vanished: ok=%v err=%v", ok, err)
	}
	if rec.Lease == nil || rec.Lease.Owner != "replica-2" {
		t.Fatalf("live lease stolen: %+v", rec.Lease)
	}
}

// TestSolveResultsSharedThroughStore: an NP-hard solve on one server
// incarnation is answered from the persisted result store by the next,
// engine cache cold.
func TestSolveResultsSharedThroughStore(t *testing.T) {
	dir := t.TempDir()
	s1, ts1, st1 := newDiskServer(t, dir, Config{})
	resp, body := postJSON(t, ts1.URL+"/v1/solve", slowInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first solve: status = %d, body %s", resp.StatusCode, body)
	}
	var first SolveResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if s1.storeWrites.Load() == 0 {
		t.Fatal("NP-hard solve not written through to the store")
	}
	drain(t, s1, ts1, st1)

	s2, ts2, st2 := newDiskServer(t, dir, Config{})
	defer drain(t, s2, ts2, st2)
	resp, body = postJSON(t, ts2.URL+"/v1/solve", slowInstance)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second solve: status = %d, body %s", resp.StatusCode, body)
	}
	if hits := s2.storeResultHits.Load(); hits != 1 {
		t.Fatalf("store result hits = %d, want 1", hits)
	}
	var second SolveResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(first.Solution)
	b, _ := json.Marshal(second.Solution)
	if string(a) != string(b) {
		t.Fatalf("stored solution drifted:\nfirst  %s\nsecond %s", a, b)
	}
	// Polynomial solves bypass the store entirely.
	misses := s2.storeResultMisses.Load()
	if resp, _ := postJSON(t, ts2.URL+"/v1/solve", section2); resp.StatusCode != http.StatusOK {
		t.Fatalf("polynomial solve failed: %d", resp.StatusCode)
	}
	if got := s2.storeResultMisses.Load(); got != misses {
		t.Error("polynomial solve consulted the result store")
	}
}

// TestStoreMetricsExposed: the wfserve_store_* series appear on
// /metrics.
func TestStoreMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getJSON(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	for _, name := range []string{
		"wfserve_store_jobs", "wfserve_store_results",
		"wfserve_store_writes_total", "wfserve_store_errors_total",
		"wfserve_store_result_hits_total", "wfserve_store_result_misses_total",
		"wfserve_store_recovered_jobs_total",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("metrics missing %s", name)
		}
	}
}
