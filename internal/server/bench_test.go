package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// benchPost issues one POST and fails the benchmark on a non-200.
func benchPost(b *testing.B, client *http.Client, url, body string) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// BenchmarkSolveCached measures request throughput when every solve is
// answered from the engine cache — the wire, routing and encoding
// overhead of the service.
func BenchmarkSolveCached(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	client := ts.Client()
	benchPost(b, client, ts.URL+"/v1/solve", section2) // warm the cache
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			benchPost(b, client, ts.URL+"/v1/solve", section2)
		}
	})
}

// BenchmarkSolveUnique measures throughput when every request is a fresh
// instance (cache miss): a polynomial DP solve rides along with the HTTP
// overhead.
func BenchmarkSolveUnique(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	client := ts.Client()
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			n := seq.Add(1)
			body := fmt.Sprintf(`{
				"pipeline": {"weights": [14, 4, 2, %d]},
				"platform": {"speeds": [1, 1, 1]},
				"allowDataParallel": true,
				"objective": "min-latency"
			}`, 4+n)
			benchPost(b, client, ts.URL+"/v1/solve", body)
		}
	})
}

// BenchmarkParetoStream measures the incremental NDJSON sweep end to
// end: request decode, the engine sweep (cold cache each iteration, so
// the candidate solves are real work), per-point encode + flush, and
// the terminal status line. One untimed warmup request pays the
// process-level one-time costs (connection setup, encoding/json
// reflection caches) so single-iteration gate runs measure the sweep,
// not process initialization.
func BenchmarkParetoStream(b *testing.B) {
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()
	pareto := `{
		"pipeline": {"weights": [14, 4, 2, 4, 7]},
		"platform": {"speeds": [3, 2, 2, 1]},
		"allowDataParallel": true
	}`
	benchPost(b, client, ts.URL+"/v1/pareto", pareto)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.Engine().Reset() // keep the sweep honest: no memoized fronts
		benchPost(b, client, ts.URL+"/v1/pareto", pareto)
	}
}

// BenchmarkMixedLoad measures the acceptance-criteria workload: mixed
// solve, batch and pareto traffic from concurrent clients (run with
// -cpu to scale the client count; each RunParallel goroutine is one
// client).
func BenchmarkMixedLoad(b *testing.B) {
	ts := httptest.NewServer(New(Config{}))
	defer ts.Close()
	client := ts.Client()
	batch := fmt.Sprintf(`{"instances": [%s, %s]}`, section2, section2)
	pareto := `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true
	}`
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			switch seq.Add(1) % 4 {
			case 0:
				benchPost(b, client, ts.URL+"/v1/pareto", pareto)
			case 1:
				benchPost(b, client, ts.URL+"/v1/solve/batch", batch)
			default:
				benchPost(b, client, ts.URL+"/v1/solve", section2)
			}
		}
	})
}
