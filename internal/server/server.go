package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
	"repliflow/internal/workflow"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// Engine is the shared batch solver; nil constructs a fresh one
	// sized to Workers.
	Engine *engine.Engine
	// Workers sizes the engine constructed when Engine is nil;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of requests solving concurrently;
	// excess requests queue until a slot frees or their deadline
	// expires. <= 0 selects 2x the engine worker count.
	MaxInFlight int
	// DefaultTimeout applies when a request carries no timeoutMs;
	// <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts; <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxBatch bounds the instance count of one batch request;
	// <= 0 selects 4096.
	MaxBatch int
	// MaxBodyBytes bounds request body size; <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxCacheEntries bounds the engine cache when the server constructs
	// its own engine (epoch eviction on overflow); <= 0 selects 65536.
	// Ignored when Engine is supplied — the caller owns its limits then.
	MaxCacheEntries int
	// DefaultBudget is the anytime budget applied to requests that carry
	// no budgetMs of their own: NP-hard instances then return a
	// certified incumbent within roughly this duration instead of
	// searching exhaustively, bounding the service's worst-case solve
	// latency. 0 disables anytime solving by default (requests can still
	// opt in per call).
	DefaultBudget time.Duration
	// Options tunes the exhaustive-search limits of every solve.
	Options core.Options
}

// Server is the HTTP solve service. Construct with New; a Server is an
// http.Handler and is safe for concurrent use.
type Server struct {
	eng            *engine.Engine
	opts           core.Options
	defaultBudget  time.Duration
	limiter        chan struct{}
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxBatch       int
	maxBodyBytes   int64

	metrics       *metrics
	inflight      atomic.Int64
	anytimeSolves atomic.Uint64
	start         time.Time
	mux           *http.ServeMux
}

// New returns a Server with cfg's defaults applied.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = engine.New(cfg.Workers)
		if cfg.MaxCacheEntries <= 0 {
			cfg.MaxCacheEntries = 65536
		}
		eng.SetCacheLimit(cfg.MaxCacheEntries)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * eng.Workers()
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	s := &Server{
		eng:            eng,
		opts:           cfg.Options,
		defaultBudget:  cfg.DefaultBudget,
		limiter:        make(chan struct{}, cfg.MaxInFlight),
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     maxClamp(cfg.DefaultTimeout, cfg.MaxTimeout),
		maxBatch:       cfg.MaxBatch,
		maxBodyBytes:   cfg.MaxBodyBytes,
		metrics:        newMetrics(),
		start:          time.Now(),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.counted("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/solve/batch", s.counted("/v1/solve/batch", s.handleSolveBatch))
	mux.HandleFunc("POST /v1/pareto", s.counted("/v1/pareto", s.handlePareto))
	mux.HandleFunc("GET /v1/classify", s.counted("/v1/classify", s.handleClassify))
	mux.HandleFunc("GET /v1/table", s.counted("/v1/table", s.handleTable))
	mux.HandleFunc("GET /healthz", s.counted("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// maxClamp guarantees the effective maximum timeout never undercuts the
// default, so a request without timeoutMs is never clamped below it.
func maxClamp(def, max time.Duration) time.Duration {
	if max < def {
		return def
	}
	return max
}

// Engine returns the server's shared engine (for tests and stats).
func (s *Server) Engine() *engine.Engine { return s.eng }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// counted wraps a handler with request counting and body-size limiting.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.recordRequest(endpoint, rec.status)
	}
}

// requestContext derives the solve context: the client's context bounded
// by the request timeout (clamped to the server maximum).
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	timeout := s.defaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
	}
	return context.WithTimeout(r.Context(), timeout)
}

// acquire claims an in-flight slot, waiting until one frees or ctx
// expires. The bounded limiter keeps long exhaustive solves on NP-hard
// cells from monopolizing the process: excess requests queue here
// instead of stacking goroutines onto the engine.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.limiter <- struct{}{}:
		s.inflight.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	s.inflight.Add(-1)
	<-s.limiter
}

// solveMetrics records one latency under its (cell, operation) series.
func (s *Server) solveMetrics(pr core.Problem, op string, elapsed time.Duration) {
	s.metrics.recordSolve(core.CellKeyOf(pr).String(), op, elapsed.Seconds())
}

// solveOptions derives the per-request solve options: a positive
// budgetMs engages anytime solving for this request, a negative one
// explicitly opts out (exhaustive/heuristic solving even on a server
// with a default budget), and zero falls back to the server default —
// or to a budget configured directly on Config.Options.AnytimeBudget.
func (s *Server) solveOptions(budgetMs int64) core.Options {
	opts := s.opts
	switch {
	case budgetMs > 0:
		opts.AnytimeBudget = time.Duration(budgetMs) * time.Millisecond
	case budgetMs < 0:
		opts.AnytimeBudget = 0
	case s.defaultBudget > 0:
		opts.AnytimeBudget = s.defaultBudget
	}
	return opts
}

// countAnytime tracks certified anytime results for /metrics.
func (s *Server) countAnytime(sols ...instance.SolutionJSON) {
	for _, sol := range sols {
		if sol.Anytime {
			s.anytimeSolves.Add(1)
		}
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	pr, err := req.Instance.Problem()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		writeAcquireError(w, err, &pr)
		return
	}
	defer s.release()

	start := time.Now()
	sol, err := s.eng.Solve(ctx, pr, s.solveOptions(req.BudgetMs))
	elapsed := time.Since(start)
	s.solveMetrics(pr, "solve", elapsed)
	if err != nil {
		writeSolveError(w, err, &pr)
		return
	}
	out := instance.FromSolution(sol)
	s.countAnytime(out)
	writeJSON(w, http.StatusOK, SolveResponse{
		Solution:  out,
		Cell:      core.CellKeyOf(pr).String(),
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	})
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, "instances must be non-empty", nil)
		return
	}
	if len(req.Instances) > s.maxBatch {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest,
			fmt.Sprintf("batch of %d instances exceeds the limit of %d", len(req.Instances), s.maxBatch), nil)
		return
	}
	problems := make([]core.Problem, len(req.Instances))
	for i, ins := range req.Instances {
		pr, err := ins.Problem()
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrKindInvalidRequest,
				fmt.Sprintf("instances[%d]: %v", i, err), nil)
			return
		}
		problems[i] = pr
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		writeAcquireError(w, err, nil)
		return
	}
	defer s.release()

	before := s.eng.Stats()
	start := time.Now()
	sols, err := s.eng.SolveBatch(ctx, problems, s.solveOptions(req.BudgetMs))
	elapsed := time.Since(start)
	after := s.eng.Stats()
	// Batches are deliberately absent from wfserve_solve_seconds: the
	// wall clock of N parallel solves tells nothing about any single
	// cell, and recording elapsed/N would poison the per-cell
	// histograms. Batch latency is visible through elapsedMs and
	// wfserve_requests_total.
	if err != nil {
		writeSolveError(w, err, nil)
		return
	}
	out := make([]instance.SolutionJSON, len(sols))
	for i, sol := range sols {
		out[i] = instance.FromSolution(sol)
	}
	s.countAnytime(out...)
	writeJSON(w, http.StatusOK, BatchResponse{
		Solutions: out,
		Cache: CacheStats{
			Hits:          after.Hits,
			Misses:        after.Misses,
			HitRatio:      after.HitRatio(),
			Size:          after.Size,
			RequestHits:   after.Hits - before.Hits,
			RequestMisses: after.Misses - before.Misses,
		},
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	})
}

// handlePareto sweeps the period/latency trade-off curve and streams it
// as NDJSON: one SolutionJSON per line in increasing-period order,
// flushed as written. The sweep runs to completion on the engine before
// the first line is written (the dominance filter needs the whole
// candidate set); the NDJSON framing lets clients process the front
// line by line. The sweep honours the request deadline, and an error
// yields a structured JSON error instead of a stream.
func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	// The sweep ignores the objective; let bare instances omit it.
	if req.Instance.Objective == "" {
		req.Instance.Objective = "min-period"
	}
	pr, err := req.Instance.Problem()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx); err != nil {
		writeAcquireError(w, err, &pr)
		return
	}
	defer s.release()

	sweep := pr
	sweep.Objective = core.MinPeriod
	start := time.Now()
	front, err := s.eng.ParetoFront(ctx, pr, s.solveOptions(req.BudgetMs))
	s.solveMetrics(sweep, "pareto", time.Since(start))
	if err != nil {
		writeSolveError(w, err, &sweep)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for _, sol := range front {
		out := instance.FromSolution(sol)
		s.countAnytime(out)
		if err := writeNDJSONLine(w, out); err != nil {
			return // client gone
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, err := cellKeyFromQuery(q.Get("kind"), q.Get("platform"), q.Get("graph"), q.Get("dp"), q.Get("objective"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	info, ok := cellInfo(key)
	if !ok {
		writeError(w, http.StatusInternalServerError, ErrKindInternal,
			fmt.Sprintf("no solver registered for cell %v", key), nil)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	keys := core.RegisteredCells()
	cells := make([]CellInfo, 0, len(keys))
	for _, key := range keys {
		if info, ok := cellInfo(key); ok {
			cells = append(cells, info)
		}
	}
	writeJSON(w, http.StatusOK, TableResponse{Cells: cells})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.eng.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, []gauge{
		{"wfserve_cache_hits_total", "Engine cache hits (coalesced and memoized solves).", "counter", float64(stats.Hits)},
		{"wfserve_cache_misses_total", "Engine cache misses (solves that ran the dispatcher).", "counter", float64(stats.Misses)},
		{"wfserve_cache_hit_ratio", "Hits / (hits + misses) over the engine lifetime.", "gauge", stats.HitRatio()},
		{"wfserve_cache_size", "Completed solutions held by the engine cache.", "gauge", float64(stats.Size)},
		{"wfserve_inflight_requests", "Requests currently holding a solve slot.", "gauge", float64(s.inflight.Load())},
		{"wfserve_anytime_solves_total", "Solutions returned with anytime gap certification.", "counter", float64(s.anytimeSolves.Load())},
		{"wfserve_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(s.start).Seconds()},
	})
}

// cellInfo assembles the CellInfo of a registered dispatch cell.
func cellInfo(key core.CellKey) (CellInfo, bool) {
	entry, ok := core.LookupSolver(key)
	if !ok {
		return CellInfo{}, false
	}
	cl := core.ClassifyCell(key)
	return CellInfo{
		Cell:                key.String(),
		Kind:                key.Kind.String(),
		PlatformHomogeneous: key.PlatformHomogeneous,
		GraphHomogeneous:    key.GraphHomogeneous,
		DataParallel:        key.DataParallel,
		Objective:           instance.ObjectiveName(key.Objective),
		Complexity:          instance.ComplexityName(cl.Complexity),
		Source:              cl.Source,
		Method:              instance.MethodName(entry.Method),
		Exact:               entry.Exact,
	}, true
}

// cellKeyFromQuery parses the /v1/classify query parameters. kind is
// required; platform and graph default to "het", dp to false, objective
// to min-period.
func cellKeyFromQuery(kind, plat, graph, dp, objective string) (core.CellKey, error) {
	var key core.CellKey
	switch kind {
	case "pipeline":
		key.Kind = workflow.KindPipeline
	case "fork":
		key.Kind = workflow.KindFork
	case "forkjoin", "fork-join":
		key.Kind = workflow.KindForkJoin
	case "":
		return key, fmt.Errorf("missing kind (want pipeline, fork or forkjoin)")
	default:
		return key, fmt.Errorf("unknown kind %q (want pipeline, fork or forkjoin)", kind)
	}
	var err error
	if key.PlatformHomogeneous, err = parseHom("platform", plat); err != nil {
		return key, err
	}
	if key.GraphHomogeneous, err = parseHom("graph", graph); err != nil {
		return key, err
	}
	if dp != "" {
		if key.DataParallel, err = strconv.ParseBool(dp); err != nil {
			return key, fmt.Errorf("bad dp %q (want true or false)", dp)
		}
	}
	if objective == "" {
		objective = "min-period"
	}
	if key.Objective, err = instance.ParseObjective(objective); err != nil {
		return key, err
	}
	return key, nil
}

// parseHom parses a hom/het axis parameter; empty defaults to het.
func parseHom(name, v string) (bool, error) {
	switch v {
	case "hom", "homogeneous":
		return true, nil
	case "", "het", "heterogeneous":
		return false, nil
	default:
		return false, fmt.Errorf("bad %s %q (want hom or het)", name, v)
	}
}
