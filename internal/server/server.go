package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/engine"
	"repliflow/internal/instance"
	"repliflow/internal/store"
	"strings"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-safe default applied by New.
type Config struct {
	// Engine is the shared batch solver; nil constructs a fresh one
	// sized to Workers.
	Engine *engine.Engine
	// Workers sizes the engine constructed when Engine is nil;
	// <= 0 selects GOMAXPROCS.
	Workers int
	// MaxInFlight bounds the number of requests solving concurrently;
	// excess requests queue (weighted-fair across tenants) until a slot
	// frees or their deadline expires. <= 0 selects 2x the engine worker
	// count.
	//
	// The 2x default composes deliberately with the engine's slot
	// donation (intra-solve parallelism): a solve asking for extra
	// workers claims only *idle* engine slots, non-blocking, and returns
	// them when it finishes — so a donating solve can delay queued
	// requests by at most its own duration, never park them behind a
	// growing backlog. With MaxInFlight = 2x workers the request queue
	// keeps the engine saturated even when half the admitted requests
	// are waiting on engine slots a donor borrowed; admission fairness
	// is preserved because every request — donating or not — passes the
	// same per-tenant fair queue first. See TestDonationDoesNotStarveQueuedTenants.
	MaxInFlight int
	// DefaultTimeout applies when a request carries no timeoutMs;
	// <= 0 selects 30s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps request-supplied timeouts; <= 0 selects 5m.
	MaxTimeout time.Duration
	// MaxBatch bounds the instance count of one batch request;
	// <= 0 selects 4096.
	MaxBatch int
	// MaxBodyBytes bounds request body size; <= 0 selects 8 MiB.
	MaxBodyBytes int64
	// MaxCacheEntries bounds the engine cache when the server constructs
	// its own engine (epoch eviction on overflow); <= 0 selects 65536.
	// Ignored when Engine is supplied — the caller owns its limits then.
	MaxCacheEntries int
	// DefaultBudget is the anytime budget applied to requests that carry
	// no budgetMs of their own: NP-hard instances then return a
	// certified incumbent within roughly this duration instead of
	// searching exhaustively, bounding the service's worst-case solve
	// latency. 0 disables anytime solving by default (requests can still
	// opt in per call).
	DefaultBudget time.Duration
	// StreamHeartbeat is the idle interval after which /v1/pareto emits a
	// heartbeat status line while a slow sweep is between points, keeping
	// the connection visibly alive through proxies and client read
	// timeouts; <= 0 selects 10s.
	StreamHeartbeat time.Duration
	// MaxJobs bounds the in-memory async job store (/v1/jobs): when full,
	// the oldest finished job is evicted to admit a new one, and a store
	// full of live jobs rejects submissions with 503. Evicted jobs stay
	// readable through the persistence store (GET rehydrates them).
	// <= 0 selects 64.
	MaxJobs int
	// Store persists job state and NP-hard solve results: every job
	// transition writes through to it, recovery on startup resumes its
	// orphaned non-terminal jobs, and the engine consults it before
	// expensive solves. nil selects a bounded in-memory store
	// (store.Mem()) for job bookkeeping only — the pre-durability
	// behavior, nothing survives a restart, and the engine skips the
	// store since its own fingerprint cache already covers in-memory
	// result reuse. wfserve -store-dir plugs in store.OpenDisk. The server
	// does not close the store; the caller owning it does, after
	// shutdown.
	Store store.Store
	// LeaseTTL is how long a non-terminal job's store lease lasts before
	// other replicas may adopt it as orphaned; the server renews its own
	// leases every LeaseTTL/3. <= 0 selects 15s.
	LeaseTTL time.Duration
	// RateLimit enables per-client cost-based admission control: each
	// client's token bucket refills at this many tokens per second, and
	// every solve-bearing request (solve, batch, pareto, job submission)
	// debits its classified cost before queueing — polynomial solves
	// cost 1 token, NP-hard solves under an anytime budget 4, NP-hard
	// exhaustive solves 16, and Pareto sweeps 4x their instance's cost.
	// A request the bucket cannot cover is rejected with 429, a
	// Retry-After header and error kind "rate-limited". 0 disables rate
	// limiting (the default); metadata endpoints are never limited.
	RateLimit float64
	// Burst is the token-bucket capacity per client; <= 0 selects 64
	// (four exhaustive solves). A fresh client starts with a full
	// bucket. Requests costing more than one full bucket are admitted
	// only from a full bucket and drive it negative, so they stay
	// servable but pay proportionally longer refill.
	Burst float64
	// TenantWeights biases the fair queue: a tenant with weight w
	// receives up to w consecutive slot grants per round-robin rotation.
	// Unlisted tenants (and weights < 1) weigh 1. Weights shape queueing
	// only — rate limits are per-bucket and unweighted.
	TenantWeights map[string]int
	// Options tunes the exhaustive-search limits of every solve.
	Options core.Options
}

// Server is the HTTP solve service. Construct with New; a Server is an
// http.Handler and is safe for concurrent use.
type Server struct {
	eng            *engine.Engine
	opts           core.Options
	defaultBudget  time.Duration
	fq             *fairQueue
	adm            *admission
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	maxBatch       int
	maxBodyBytes   int64
	heartbeat      time.Duration

	// baseCtx is the drain signal: Close cancels it, which cancels every
	// request-derived solve context — streaming handlers then finish
	// their current line and write a terminal status line, and async
	// jobs record cancellation — so shutdown never truncates a stream
	// mid-JSON.
	baseCtx   context.Context
	closeBase context.CancelFunc

	jobs          *jobManager
	metrics       *metrics
	inflight      atomic.Int64
	rateLimited   atomic.Uint64
	anytimeSolves atomic.Uint64
	streamPoints  atomic.Uint64
	start         time.Time
	mux           *http.ServeMux

	// Persistence (persist.go): the write-through store, this process's
	// lease identity, and the store traffic counters for /metrics.
	store             store.Store
	owner             string
	leaseTTL          time.Duration
	storeWrites       atomic.Uint64
	storeErrors       atomic.Uint64
	storeResultHits   atomic.Uint64
	storeResultMisses atomic.Uint64
	storeRecovered    atomic.Uint64
}

// New returns a Server with cfg's defaults applied.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = engine.New(cfg.Workers)
		if cfg.MaxCacheEntries <= 0 {
			cfg.MaxCacheEntries = 65536
		}
		eng.SetCacheLimit(cfg.MaxCacheEntries)
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 2 * eng.Workers()
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 4096
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	if cfg.StreamHeartbeat <= 0 {
		cfg.StreamHeartbeat = 10 * time.Second
	}
	if cfg.MaxJobs <= 0 {
		cfg.MaxJobs = 64
	}
	if cfg.Burst <= 0 {
		cfg.Burst = 4 * costExhaustive
	}
	explicitStore := cfg.Store != nil
	if cfg.Store == nil {
		cfg.Store = store.Mem()
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	baseCtx, closeBase := context.WithCancel(context.Background())
	s := &Server{
		eng:            eng,
		opts:           cfg.Options,
		defaultBudget:  cfg.DefaultBudget,
		fq:             newFairQueue(cfg.MaxInFlight, cfg.TenantWeights),
		adm:            newAdmission(cfg.RateLimit, cfg.Burst),
		defaultTimeout: cfg.DefaultTimeout,
		maxTimeout:     maxClamp(cfg.DefaultTimeout, cfg.MaxTimeout),
		maxBatch:       cfg.MaxBatch,
		maxBodyBytes:   cfg.MaxBodyBytes,
		heartbeat:      cfg.StreamHeartbeat,
		baseCtx:        baseCtx,
		closeBase:      closeBase,
		jobs:           newJobManager(cfg.MaxJobs),
		metrics:        newMetrics(),
		start:          time.Now(),
		store:          cfg.Store,
		owner:          fmt.Sprintf("wfserve-%d-%d", os.Getpid(), time.Now().UnixNano()),
		leaseTTL:       cfg.LeaseTTL,
	}
	if cfg.Engine == nil && explicitStore {
		// The server-owned engine consults the store before NP-hard
		// solves and writes proofs back (a supplied Engine is the
		// caller's to configure, as with the cache limit). The default
		// in-memory store is skipped: it would only duplicate the
		// engine's own fingerprint cache, at a marshal per solve.
		eng.SetResultStore(resultStore{s})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.counted("/v1/solve", s.handleSolve))
	mux.HandleFunc("POST /v1/solve/batch", s.counted("/v1/solve/batch", s.handleSolveBatch))
	mux.HandleFunc("POST /v1/pareto", s.counted("/v1/pareto", s.handlePareto))
	mux.HandleFunc("POST /v1/jobs", s.counted("/v1/jobs", s.handleJobCreate))
	mux.HandleFunc("GET /v1/jobs", s.counted("/v1/jobs", s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.counted("/v1/jobs/{id}", s.handleJobGet))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.counted("/v1/jobs/{id}", s.handleJobDelete))
	mux.HandleFunc("GET /v1/classify", s.counted("/v1/classify", s.handleClassify))
	mux.HandleFunc("GET /v1/table", s.counted("/v1/table", s.handleTable))
	mux.HandleFunc("GET /healthz", s.counted("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	// Resume whatever work the store's previous owner left unfinished,
	// then keep leases fresh (and adopt newly expired ones) until Close.
	s.recoverJobs(true)
	go s.reaper()
	return s
}

// Close begins draining the server: every in-flight solve context is
// cancelled, so streaming responses finish their current line and append
// a terminal status line, synchronous solves return structured
// shutting-down errors, and async jobs record cancellation. Call it
// before http.Server.Shutdown, which then waits for the (now fast)
// handlers to return. Close is idempotent and does not wait.
func (s *Server) Close() { s.closeBase() }

// closing reports whether Close has been called.
func (s *Server) closing() bool { return s.baseCtx.Err() != nil }

// maxClamp guarantees the effective maximum timeout never undercuts the
// default, so a request without timeoutMs is never clamped below it.
func maxClamp(def, max time.Duration) time.Duration {
	if max < def {
		return def
	}
	return max
}

// Engine returns the server's shared engine (for tests and stats).
func (s *Server) Engine() *engine.Engine { return s.eng }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statusRecorder captures the status code written by a handler.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.status == 0 {
		r.status = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streaming handlers keep
// working through the recorder.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// counted wraps a handler with request counting and body-size limiting.
func (s *Server) counted(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
		}
		rec := &statusRecorder{ResponseWriter: w}
		h(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		s.metrics.recordRequest(endpoint, rec.status)
	}
}

// timeoutFor clamps a request-supplied timeout to the server bounds.
func (s *Server) timeoutFor(timeoutMs int64) time.Duration {
	timeout := s.defaultTimeout
	if timeoutMs > 0 {
		timeout = time.Duration(timeoutMs) * time.Millisecond
		if timeout > s.maxTimeout {
			timeout = s.maxTimeout
		}
	}
	return timeout
}

// requestContext derives the solve context: the client's context bounded
// by the request timeout (clamped to the server maximum) and by the
// server's drain signal, so Close cancels in-flight solves promptly.
func (s *Server) requestContext(r *http.Request, timeoutMs int64) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutFor(timeoutMs))
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// acquire claims an in-flight slot for client, waiting until one frees
// or ctx expires. The bounded pool keeps long exhaustive solves on
// NP-hard cells from monopolizing the process: excess requests queue —
// weighted-fair across tenants, FIFO within one — instead of stacking
// goroutines onto the engine.
func (s *Server) acquire(ctx context.Context, client string) error {
	if err := s.fq.acquire(ctx, client); err != nil {
		return err
	}
	s.inflight.Add(1)
	return nil
}

func (s *Server) release() {
	s.inflight.Add(-1)
	s.fq.release()
}

// admit applies cost-based admission for the request. On rejection it
// writes the 429 response (with Retry-After) and returns false; when
// rate limiting is disabled every request is admitted.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, cost float64, pr *core.Problem) bool {
	if !s.adm.enabled() {
		return true
	}
	retry, ok := s.adm.admit(ClientID(r), cost)
	if ok {
		return true
	}
	s.rateLimited.Add(1)
	secs := int(math.Ceil(retry.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, http.StatusTooManyRequests, ErrKindRateLimited,
		fmt.Sprintf("client %q over its admission rate (request cost %g tokens); retry in %ds",
			ClientID(r), cost, secs), pr)
	return false
}

// solveMetrics records one latency under its (cell, operation) series.
func (s *Server) solveMetrics(pr core.Problem, op string, elapsed time.Duration) {
	s.metrics.recordSolve(core.CellKeyOf(pr).String(), op, elapsed.Seconds())
}

// solveOptions derives the per-request solve options: a positive
// budgetMs engages anytime solving for this request, a negative one
// explicitly opts out (exhaustive/heuristic solving even on a server
// with a default budget), and zero falls back to the server default —
// or to a budget configured directly on Config.Options.AnytimeBudget.
// A non-zero parallelism overrides the configured default per-solve
// search parallelism (Config.Options.Parallelism); requests ask for
// serial explicitly with 1.
func (s *Server) solveOptions(budgetMs int64, parallelism int) core.Options {
	opts := s.opts
	switch {
	case budgetMs > 0:
		opts.AnytimeBudget = time.Duration(budgetMs) * time.Millisecond
	case budgetMs < 0:
		opts.AnytimeBudget = 0
	case s.defaultBudget > 0:
		opts.AnytimeBudget = s.defaultBudget
	}
	if parallelism != 0 {
		opts.Parallelism = parallelism
	}
	return opts
}

// countAnytime tracks certified anytime results for /metrics.
func (s *Server) countAnytime(sols ...instance.SolutionJSON) {
	for _, sol := range sols {
		if sol.Anytime {
			s.anytimeSolves.Add(1)
		}
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	pr, err := req.Instance.Problem()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	opts := s.solveOptions(req.BudgetMs, req.Parallelism)
	if !s.admit(w, r, solveCost(pr, opts), &pr) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx, ClientID(r)); err != nil {
		s.writeQueueError(w, err, &pr)
		return
	}
	defer s.release()

	start := time.Now()
	sol, err := s.eng.Solve(ctx, pr, opts)
	elapsed := time.Since(start)
	s.solveMetrics(pr, "solve", elapsed)
	if err != nil {
		s.writeRequestError(w, err, &pr)
		return
	}
	out := instance.FromSolution(sol)
	s.countAnytime(out)
	writeJSON(w, http.StatusOK, SolveResponse{
		Solution:  out,
		Cell:      core.CellKeyOf(pr).String(),
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	})
}

func (s *Server) handleSolveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	if len(req.Instances) == 0 {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, "instances must be non-empty", nil)
		return
	}
	if len(req.Instances) > s.maxBatch {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest,
			fmt.Sprintf("batch of %d instances exceeds the limit of %d", len(req.Instances), s.maxBatch), nil)
		return
	}
	problems := make([]core.Problem, len(req.Instances))
	for i, ins := range req.Instances {
		pr, err := ins.Problem()
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrKindInvalidRequest,
				fmt.Sprintf("instances[%d]: %v", i, err), nil)
			return
		}
		problems[i] = pr
	}
	opts := s.solveOptions(req.BudgetMs, req.Parallelism)
	if !s.admit(w, r, batchCost(problems, opts), nil) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx, ClientID(r)); err != nil {
		s.writeQueueError(w, err, nil)
		return
	}
	defer s.release()

	before := s.eng.Stats()
	start := time.Now()
	sols, err := s.eng.SolveBatch(ctx, problems, opts)
	elapsed := time.Since(start)
	after := s.eng.Stats()
	// Batches are deliberately absent from wfserve_solve_seconds: the
	// wall clock of N parallel solves tells nothing about any single
	// cell, and recording elapsed/N would poison the per-cell
	// histograms. Batch latency is visible through elapsedMs and
	// wfserve_requests_total.
	if err != nil {
		s.writeRequestError(w, err, nil)
		return
	}
	out := make([]instance.SolutionJSON, len(sols))
	for i, sol := range sols {
		out[i] = instance.FromSolution(sol)
	}
	s.countAnytime(out...)
	writeJSON(w, http.StatusOK, BatchResponse{
		Solutions: out,
		Cache: CacheStats{
			Hits:          after.Hits,
			Misses:        after.Misses,
			HitRatio:      after.HitRatio(),
			Size:          after.Size,
			RequestHits:   after.Hits - before.Hits,
			RequestMisses: after.Misses - before.Misses,
		},
		ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	})
}

// handlePareto sweeps the period/latency trade-off curve and streams it
// as NDJSON, incrementally: each SolutionJSON line is written and flushed
// the moment the engine proves the point final (engine.SweepFront), in
// increasing-period order — the first line reaches the client while the
// rest of the sweep is still running. While a slow sweep is between
// points the stream carries heartbeat status lines, and every stream
// ends with a terminal status line reporting the sweep outcome and how
// many candidate periods were explored. When the deadline expires (or
// the server drains) mid-sweep, the points already written stand as a
// well-formed partial front — a prefix of the full one — and the
// terminal line carries the error; a bare error response is only
// returned for failures before the first line.
func (s *Server) handlePareto(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	// The sweep ignores the objective; let bare instances omit it.
	if req.Instance.Objective == "" {
		req.Instance.Objective = "min-period"
	}
	pr, err := req.Instance.Problem()
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	sweep := pr
	sweep.Objective = core.MinPeriod
	opts := s.solveOptions(req.BudgetMs, req.Parallelism)
	if !s.admit(w, r, paretoCostFactor*solveCost(sweep, opts), &sweep) {
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMs)
	defer cancel()
	if err := s.acquire(ctx, ClientID(r)); err != nil {
		s.writeQueueError(w, err, &pr)
		return
	}
	defer s.release()

	start := time.Now()
	ps := &paretoStream{w: w, start: start}
	stopHeartbeats := ps.startHeartbeats(s.heartbeat)
	stats, err := s.eng.SweepFront(ctx, pr, opts, engine.SweepObserver{
		Point: func(p engine.SweepPoint) error {
			out := instance.FromSolution(p.Solution)
			s.countAnytime(out)
			s.streamPoints.Add(1)
			return ps.writePoint(out, p.Explored, p.Total)
		},
		Progress: ps.progress,
	})
	stopHeartbeats()
	s.solveMetrics(sweep, "pareto", time.Since(start))
	// The observer only sees progress up to the last solve round; the
	// returned stats also cover trailing pruning, so the terminal line
	// reports the exact unexplored count.
	ps.progress(stats.Explored, stats.Total)

	switch {
	case err == nil:
		ps.writeTerminal(StreamStatusComplete, nil)
	case !ps.committed():
		// Nothing on the wire yet: a plain structured error response.
		s.writeRequestError(w, err, &sweep)
	default:
		// The stream is live (a line already committed the 200): end it
		// with a well-formed terminal status line instead of truncating —
		// never a bare 504 after a point has been delivered.
		status, body := s.terminalStatusOf(err, &sweep)
		ps.writeTerminal(status, body)
	}
}

// paretoStream serializes the NDJSON lines of one /v1/pareto response:
// solution points from the sweep, heartbeats from a ticker goroutine and
// the terminal status line, under one mutex so lines never interleave.
// The 200 header is committed lazily by whichever line is written first.
type paretoStream struct {
	w     http.ResponseWriter
	start time.Time

	mu       sync.Mutex
	flusher  http.Flusher
	begun    bool
	failed   bool // a write failed: the client is gone
	points   int
	explored int
	total    int
}

// writeLineLocked writes one NDJSON line and flushes it, committing the
// 200 response on the first line. Callers hold mu.
func (ps *paretoStream) writeLineLocked(v any) error {
	if ps.failed {
		return http.ErrAbortHandler
	}
	if !ps.begun {
		ps.begun = true
		ps.w.Header().Set("Content-Type", "application/x-ndjson")
		ps.w.WriteHeader(http.StatusOK)
		ps.flusher, _ = ps.w.(http.Flusher)
	}
	if err := writeNDJSONLine(ps.w, v); err != nil {
		ps.failed = true
		return err
	}
	if ps.flusher != nil {
		ps.flusher.Flush()
	}
	return nil
}

// writePoint writes one confirmed front point.
func (ps *paretoStream) writePoint(sol instance.SolutionJSON, explored, total int) error {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	ps.points++
	ps.explored, ps.total = explored, total
	return ps.writeLineLocked(sol)
}

// progress records sweep progress for heartbeat and terminal lines.
func (ps *paretoStream) progress(explored, total int) {
	ps.mu.Lock()
	ps.explored, ps.total = explored, total
	ps.mu.Unlock()
}

// committed reports whether any line has been written (the 200 is on the
// wire and errors must be delivered in-stream).
func (ps *paretoStream) committed() bool {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.begun
}

// statusLocked assembles a status line snapshot. Callers hold mu.
func (ps *paretoStream) statusLocked(status string) StreamStatus {
	return StreamStatus{
		Status:          status,
		Points:          ps.points,
		Explored:        ps.explored,
		TotalCandidates: ps.total,
		Unexplored:      ps.total - ps.explored,
		ElapsedMs:       float64(time.Since(ps.start)) / float64(time.Millisecond),
	}
}

// writeTerminal ends the stream with its terminal status line.
func (ps *paretoStream) writeTerminal(status string, errBody *ErrorBody) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	line := ps.statusLocked(status)
	line.Error = errBody
	ps.writeLineLocked(line) //nolint:errcheck // the client is gone if this fails
}

// startHeartbeats emits a heartbeat status line every interval until the
// returned stop function is called; stop waits for an in-flight
// heartbeat write, so the terminal line is always the last line.
func (ps *paretoStream) startHeartbeats(every time.Duration) (stop func()) {
	ticker := time.NewTicker(every)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-ticker.C:
				ps.mu.Lock()
				ps.writeLineLocked(ps.statusLocked(StreamStatusHeartbeat)) //nolint:errcheck // kept alive best-effort
				ps.mu.Unlock()
			case <-done:
				return
			}
		}
	}()
	return func() {
		ticker.Stop()
		close(done)
		wg.Wait()
	}
}

// terminalStatusOf maps a mid-stream sweep error to its terminal status
// line: the stream-level analogue of writeSolveError.
func (s *Server) terminalStatusOf(err error, pr *core.Problem) (string, *ErrorBody) {
	switch {
	case s.closing() && errors.Is(err, context.Canceled):
		return StreamStatusShuttingDown, errorBodyFor(ErrKindShuttingDown, "server shutting down", pr)
	case errors.Is(err, context.DeadlineExceeded):
		return StreamStatusDeadlineExceeded, errorBodyFor(ErrKindDeadlineExceeded, err.Error(), pr)
	case errors.Is(err, context.Canceled):
		return StreamStatusCanceled, errorBodyFor(ErrKindCanceled, err.Error(), pr)
	default:
		return StreamStatusFailed, errorBodyFor(ErrKindInternal, err.Error(), pr)
	}
}

// writeRequestError maps a solve error to a structured response,
// upgrading cancellations caused by server drain (Close) to a
// shutting-down 503 — the client did not abort, the server did.
func (s *Server) writeRequestError(w http.ResponseWriter, err error, pr *core.Problem) {
	if s.closing() && errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, ErrKindShuttingDown, "server shutting down", pr)
		return
	}
	writeSolveError(w, err, pr)
}

// writeQueueError is writeAcquireError with the same drain upgrade: a
// request whose wait for a solve slot was cut short by Close gets the
// 503 shutting-down response, not a 499 blaming the client.
func (s *Server) writeQueueError(w http.ResponseWriter, err error, pr *core.Problem) {
	if s.closing() && errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, ErrKindShuttingDown, "server shutting down", pr)
		return
	}
	writeAcquireError(w, err, pr)
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	key, err := cellKeyFromQuery(q.Get("kind"), q.Get("platform"), q.Get("graph"), q.Get("dp"), q.Get("objective"))
	if err != nil {
		writeError(w, http.StatusBadRequest, ErrKindInvalidRequest, err.Error(), nil)
		return
	}
	info, ok := cellInfo(key)
	if !ok {
		writeError(w, http.StatusInternalServerError, ErrKindInternal,
			fmt.Sprintf("no solver registered for cell %v", key), nil)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	keys := core.RegisteredCells()
	cells := make([]CellInfo, 0, len(keys))
	for _, key := range keys {
		if info, ok := cellInfo(key); ok {
			cells = append(cells, info)
		}
	}
	writeJSON(w, http.StatusOK, TableResponse{Cells: cells})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	stats := s.eng.Stats()
	st := s.store.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.write(w, []gauge{
		{"wfserve_cache_hits_total", "Engine cache hits (coalesced and memoized solves).", "counter", float64(stats.Hits)},
		{"wfserve_cache_misses_total", "Engine cache misses (solves that ran the dispatcher).", "counter", float64(stats.Misses)},
		{"wfserve_cache_hit_ratio", "Hits / (hits + misses) over the engine lifetime.", "gauge", stats.HitRatio()},
		{"wfserve_cache_size", "Completed solutions held by the engine cache.", "gauge", float64(stats.Size)},
		{"wfserve_inflight_requests", "Requests currently holding a solve slot.", "gauge", float64(s.inflight.Load())},
		{"wfserve_queued_requests", "Requests waiting in the weighted-fair slot queue.", "gauge", float64(s.fq.queued())},
		{"wfserve_rate_limited_total", "Requests rejected with 429 by per-client admission control.", "counter", float64(s.rateLimited.Load())},
		{"wfserve_tenants", "Client token buckets currently tracked by admission control.", "gauge", float64(s.adm.tenants())},
		{"wfserve_anytime_solves_total", "Solutions returned with anytime gap certification.", "counter", float64(s.anytimeSolves.Load())},
		{"wfserve_stream_points_total", "Pareto front points streamed over /v1/pareto.", "counter", float64(s.streamPoints.Load())},
		{"wfserve_jobs_active", "Async jobs currently queued or running.", "gauge", float64(s.jobs.active())},
		{"wfserve_jobs_total", "Async jobs accepted since the server started.", "counter", float64(s.jobs.created())},
		{"wfserve_store_jobs", "Job records held by the persistence store.", "gauge", float64(st.Jobs)},
		{"wfserve_store_results", "Solve results held by the persistence store.", "gauge", float64(st.Results)},
		{"wfserve_store_writes_total", "Records written through to the persistence store.", "counter", float64(s.storeWrites.Load())},
		{"wfserve_store_errors_total", "Store operations that failed (served from memory instead).", "counter", float64(s.storeErrors.Load())},
		{"wfserve_store_result_hits_total", "NP-hard solves answered from the persisted result store.", "counter", float64(s.storeResultHits.Load())},
		{"wfserve_store_result_misses_total", "Persisted-result lookups that missed and ran the solver.", "counter", float64(s.storeResultMisses.Load())},
		{"wfserve_store_recovered_jobs_total", "Orphaned jobs adopted from the store and re-run.", "counter", float64(s.storeRecovered.Load())},
		{"wfserve_uptime_seconds", "Seconds since the server started.", "gauge", time.Since(s.start).Seconds()},
	})
}

// cellInfo assembles the CellInfo of a registered dispatch cell.
func cellInfo(key core.CellKey) (CellInfo, bool) {
	entry, ok := core.LookupSolver(key)
	if !ok {
		return CellInfo{}, false
	}
	cl := core.ClassifyCell(key)
	return CellInfo{
		Cell:                key.String(),
		Kind:                key.Kind.String(),
		PlatformHomogeneous: key.PlatformHomogeneous,
		GraphHomogeneous:    key.GraphHomogeneous,
		DataParallel:        key.DataParallel,
		Objective:           instance.ObjectiveName(key.Objective),
		Complexity:          instance.ComplexityName(cl.Complexity),
		Source:              cl.Source,
		Method:              instance.MethodName(entry.Method),
		Exact:               entry.Exact,
	}, true
}

// kindNamesList renders the registered wire kind names for error text.
func kindNamesList() string {
	specs := core.KindSpecs()
	names := make([]string, len(specs))
	for i, spec := range specs {
		names[i] = spec.Name
	}
	return strings.Join(names, ", ")
}

// cellKeyFromQuery parses the /v1/classify query parameters. kind is
// required and resolved against the kind registry; platform and graph
// default to "het", dp to false, objective to min-period.
func cellKeyFromQuery(kind, plat, graph, dp, objective string) (core.CellKey, error) {
	var key core.CellKey
	if kind == "" {
		return key, fmt.Errorf("missing kind (want one of %s)", kindNamesList())
	}
	if kind == "forkjoin" {
		kind = "fork-join" // historical query-parameter alias
	}
	spec, err := core.KindByName(kind)
	if err != nil {
		return key, fmt.Errorf("unknown kind %q (want one of %s)", kind, kindNamesList())
	}
	key.Kind = spec.Kind
	if key.PlatformHomogeneous, err = parseHom("platform", plat); err != nil {
		return key, err
	}
	if key.GraphHomogeneous, err = parseHom("graph", graph); err != nil {
		return key, err
	}
	if dp != "" {
		if key.DataParallel, err = strconv.ParseBool(dp); err != nil {
			return key, fmt.Errorf("bad dp %q (want true or false)", dp)
		}
		if key.DataParallel && !spec.DataParallel {
			return key, fmt.Errorf("kind %q has no data-parallel mapping model", spec.Name)
		}
	}
	if objective == "" {
		objective = "min-period"
	}
	if key.Objective, err = instance.ParseObjective(objective); err != nil {
		return key, err
	}
	return key, nil
}

// parseHom parses a hom/het axis parameter; empty defaults to het.
func parseHom(name, v string) (bool, error) {
	switch v {
	case "hom", "homogeneous":
		return true, nil
	case "", "het", "heterogeneous":
		return false, nil
	default:
		return false, fmt.Errorf("bad %s %q (want hom or het)", name, v)
	}
}
