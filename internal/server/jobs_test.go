package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
)

func postJob(t *testing.T, url, body string) (*http.Response, JobResponse) {
	t.Helper()
	resp, raw := postJSON(t, url+"/v1/jobs", body)
	var jr JobResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatalf("bad job response %s: %v", raw, err)
		}
		if jr.ID == "" {
			t.Fatalf("accepted job without an id: %s", raw)
		}
		if loc := resp.Header.Get("Location"); loc != "/v1/jobs/"+jr.ID {
			t.Errorf("Location = %q, want /v1/jobs/%s", loc, jr.ID)
		}
	}
	return resp, jr
}

func deleteJob(t *testing.T, url, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// pollJob polls GET /v1/jobs/{id} until the predicate holds.
func pollJob(t *testing.T, url, id string, what string, until func(JobResponse) bool) JobResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, raw := getJSON(t, url+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s: status %d, body %s", id, resp.StatusCode, raw)
		}
		var jr JobResponse
		if err := json.Unmarshal(raw, &jr); err != nil {
			t.Fatal(err)
		}
		if until(jr) {
			return jr
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached: %s", id, what)
	return JobResponse{}
}

func terminal(jr JobResponse) bool {
	return jr.Status == JobStatusDone || jr.Status == JobStatusFailed || jr.Status == JobStatusCanceled
}

// TestJobSolveLifecycle: submit, observe, harvest and discard a solve
// job end to end.
func TestJobSolveLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "solve", "instance": %s}`, section2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusDone {
		t.Fatalf("job finished %q (%+v), want done", done.Status, done.Error)
	}
	if done.Solution == nil || done.Solution.Latency != 17 || !done.Solution.Exact {
		t.Fatalf("solution = %+v, want the exact latency-17 optimum", done.Solution)
	}
	if done.Progress.Done != 1 || done.Progress.Total != 1 {
		t.Errorf("progress = %+v, want 1/1", done.Progress)
	}

	// The job shows up in the listing.
	resp, raw := getJSON(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	var list JobListResponse
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == jr.ID
	}
	if !found {
		t.Errorf("job %s missing from the listing %+v", jr.ID, list.Jobs)
	}

	// DELETE discards a finished job; a second GET is a 404.
	if resp, body := deleteJob(t, ts.URL, jr.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d, body %s", resp.StatusCode, body)
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+jr.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted job still answers: status %d", resp.StatusCode)
	}
}

// TestJobBatch: a batch job returns index-aligned solutions.
func TestJobBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "batch", "instances": [%s, %s]}`, section2, section2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusDone || len(done.Solutions) != 2 {
		t.Fatalf("batch job = %q with %d solutions, want done with 2", done.Status, len(done.Solutions))
	}
	if done.Solutions[0].Latency != 17 || done.Solutions[1].Latency != 17 {
		t.Errorf("latencies = %g, %g, want 17, 17", done.Solutions[0].Latency, done.Solutions[1].Latency)
	}
}

// TestJobParetoDeliversFront: a pareto job reports live candidate
// progress and ends with the full front.
func TestJobParetoDeliversFront(t *testing.T) {
	_, ts := newTestServer(t, Config{Options: core.Options{MaxExhaustivePipelineProcs: 10}})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "pareto", "instance": %s}}`,
		strings.TrimSpace(exactSweepInstance)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusDone {
		t.Fatalf("pareto job finished %q (%+v), want done", done.Status, done.Error)
	}
	if len(done.Front) < 2 {
		t.Fatalf("front has %d points, want >= 2", len(done.Front))
	}
	prev := -1.0
	for i, p := range done.Front {
		if !p.Feasible || p.Period < prev {
			t.Errorf("front point %d out of order: %+v", i, p)
		}
		prev = p.Period
	}
	if done.Progress.Done != done.Progress.Total || done.Progress.Points != len(done.Front) {
		t.Errorf("progress = %+v for a done job with %d points", done.Progress, len(done.Front))
	}
}

// TestJobCancel: DELETE on a live job cancels it; the job records the
// cancellation and any pareto points proven before it stand.
func TestJobCancel(t *testing.T) {
	_, ts := newSlowServer(t, Config{})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "pareto", "instance": %s, "timeoutMs": 60000}`, slowInstance))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	pollJob(t, ts.URL, jr.ID, "running", func(j JobResponse) bool { return j.Status == JobStatusRunning })
	if resp, body := deleteJob(t, ts.URL, jr.ID); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("delete status = %d, body %s", resp.StatusCode, body)
	}
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusCanceled {
		t.Fatalf("cancelled job finished %q, want canceled", done.Status)
	}
	if done.Error == nil || done.Error.Kind != ErrKindCanceled {
		t.Errorf("error = %+v, want kind %q", done.Error, ErrKindCanceled)
	}
}

// TestJobStoreBounded: the store admits at most MaxJobs jobs, rejects
// submissions when every slot is live, and evicts finished jobs to
// admit new ones.
func TestJobStoreBounded(t *testing.T) {
	_, ts := newSlowServer(t, Config{MaxJobs: 2, MaxInFlight: 4})
	slow := fmt.Sprintf(`{"kind": "solve", "instance": %s, "timeoutMs": 60000}`, slowInstance)
	var ids []string
	for i := 0; i < 2; i++ {
		resp, jr := postJob(t, ts.URL, slow)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: status = %d", i, resp.StatusCode)
		}
		ids = append(ids, jr.ID)
	}
	// Third submission: the store is full of live jobs.
	resp, _ := postJob(t, ts.URL, slow)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission: status = %d, want 503", resp.StatusCode)
	}
	// Cancel one; once it is terminal the next submission evicts it.
	deleteJob(t, ts.URL, ids[0])
	pollJob(t, ts.URL, ids[0], "terminal", terminal)
	resp, _ = postJob(t, ts.URL, fmt.Sprintf(`{"kind": "solve", "instance": %s}`, section2))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-eviction submission: status = %d, want 202", resp.StatusCode)
	}
	// Eviction bounds memory only: the evicted job's persisted record
	// still answers GET, rehydrated from the store.
	resp, raw := getJSON(t, ts.URL+"/v1/jobs/"+ids[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evicted job: status = %d, want 200 (rehydrated), body %s", resp.StatusCode, raw)
	}
	var evicted JobResponse
	if err := json.Unmarshal(raw, &evicted); err != nil {
		t.Fatal(err)
	}
	if evicted.ID != ids[0] || evicted.Status != JobStatusCanceled {
		t.Errorf("rehydrated job = %+v, want id %s status canceled", evicted, ids[0])
	}
	// An explicit DELETE of the rehydrated job discards the record for
	// good; only then does GET 404.
	deleteJob(t, ts.URL, ids[0])
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/"+ids[0]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted rehydrated job still answers GET")
	}
	deleteJob(t, ts.URL, ids[1]) // unblock the remaining slow job
}

// TestJobValidation: malformed submissions are rejected up front.
func TestJobValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"unknown kind", fmt.Sprintf(`{"kind": "sweep", "instance": %s}`, section2)},
		{"missing kind", fmt.Sprintf(`{"instance": %s}`, section2)},
		{"solve without instance", `{"kind": "solve"}`},
		{"batch without instances", `{"kind": "batch"}`},
		{"batch with instance", fmt.Sprintf(`{"kind": "batch", "instance": %s}`, section2)},
		{"invalid instance", `{"kind": "solve", "instance": {"pipeline": {"weights": [-1]}, "platform": {"speeds": [1]}, "objective": "min-period"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJob(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, want 400", resp.StatusCode)
			}
		})
	}
	if resp, _ := getJSON(t, ts.URL+"/v1/jobs/job-999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", resp.StatusCode)
	}
}

// TestJobsDrainOnClose: Server.Close cancels live jobs, which record the
// shutdown instead of vanishing.
func TestJobsDrainOnClose(t *testing.T) {
	srv, ts := newSlowServer(t, Config{})
	resp, jr := postJob(t, ts.URL, fmt.Sprintf(`{"kind": "solve", "instance": %s, "timeoutMs": 60000}`, slowInstance))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	pollJob(t, ts.URL, jr.ID, "running", func(j JobResponse) bool { return j.Status == JobStatusRunning })
	srv.Close()
	done := pollJob(t, ts.URL, jr.ID, "terminal", terminal)
	if done.Status != JobStatusCanceled {
		t.Fatalf("job finished %q after Close, want canceled", done.Status)
	}
	if done.Error == nil || done.Error.Kind != ErrKindShuttingDown {
		t.Errorf("error = %+v, want kind %q", done.Error, ErrKindShuttingDown)
	}
}
