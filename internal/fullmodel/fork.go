package fullmodel

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repliflow/internal/numeric"
)

// Fork is a fork graph in the general model of Sections 3.2-3.3: the root
// S0 receives In (= delta_{-1}) from Pin, broadcasts its output of size
// Out0 (= delta_0) to every other block under the one-port model, and each
// leaf k returns Outs[k] (= delta_k) to Pout.
type Fork struct {
	Root    float64
	In      float64
	Out0    float64
	Weights []float64
	Outs    []float64
}

// Validate checks the fork is well formed.
func (f Fork) Validate() error {
	if f.Root <= 0 {
		return fmt.Errorf("fullmodel: non-positive root weight %v", f.Root)
	}
	if len(f.Outs) != len(f.Weights) {
		return fmt.Errorf("fullmodel: %d output sizes for %d leaves", len(f.Outs), len(f.Weights))
	}
	if f.In < 0 || f.Out0 < 0 {
		return errors.New("fullmodel: negative input/broadcast size")
	}
	for i, w := range f.Weights {
		if w <= 0 {
			return fmt.Errorf("fullmodel: leaf %d has non-positive weight %v", i, w)
		}
		if f.Outs[i] < 0 {
			return fmt.Errorf("fullmodel: leaf %d has negative output size", i)
		}
	}
	return nil
}

// ForkBlock assigns a set of leaves to one processor; the block holding
// the root is identified by ForkMapping.RootBlock.
type ForkBlock struct {
	Proc   int
	Leaves []int
}

// ForkMapping partitions a fork onto distinct processors, one per block.
// SendOrder lists the non-root block indices in the order the root
// processor serializes its one-port sends; leave nil to use the mapping
// order.
type ForkMapping struct {
	RootBlock int
	Blocks    []ForkBlock
	SendOrder []int
}

// String renders the mapping in the compact block form of the
// simplified-model mappings; the root block is marked with S0.
func (m ForkMapping) String() string {
	parts := make([]string, len(m.Blocks))
	for i, b := range m.Blocks {
		var stages []string
		if i == m.RootBlock {
			stages = append(stages, "S0")
		}
		sorted := append([]int(nil), b.Leaves...)
		sort.Ints(sorted)
		for _, l := range sorted {
			stages = append(stages, fmt.Sprintf("S%d", l+1))
		}
		parts[i] = fmt.Sprintf("[{%s} on P%d]", strings.Join(stages, ","), b.Proc+1)
	}
	return strings.Join(parts, " ")
}

// ValidateFork checks the mapping.
func ValidateFork(f Fork, pl Platform, m ForkMapping) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(m.Blocks) == 0 || m.RootBlock < 0 || m.RootBlock >= len(m.Blocks) {
		return errors.New("fullmodel: fork mapping has no valid root block")
	}
	seenProc := make(map[int]bool)
	seenLeaf := make([]bool, len(f.Weights))
	for i, b := range m.Blocks {
		if b.Proc < 0 || b.Proc >= pl.Processors() {
			return fmt.Errorf("fullmodel: block %d on invalid processor %d", i, b.Proc)
		}
		if seenProc[b.Proc] {
			return fmt.Errorf("fullmodel: processor P%d used twice", b.Proc+1)
		}
		seenProc[b.Proc] = true
		if i != m.RootBlock && len(b.Leaves) == 0 {
			return fmt.Errorf("fullmodel: block %d is empty", i)
		}
		for _, l := range b.Leaves {
			if l < 0 || l >= len(f.Weights) {
				return fmt.Errorf("fullmodel: block %d references leaf %d out of range", i, l)
			}
			if seenLeaf[l] {
				return fmt.Errorf("fullmodel: leaf %d mapped twice", l)
			}
			seenLeaf[l] = true
		}
	}
	for l, ok := range seenLeaf {
		if !ok {
			return fmt.Errorf("fullmodel: leaf %d not mapped", l)
		}
	}
	if m.SendOrder != nil {
		if len(m.SendOrder) != len(m.Blocks)-1 {
			return fmt.Errorf("fullmodel: send order has %d entries for %d non-root blocks",
				len(m.SendOrder), len(m.Blocks)-1)
		}
		seen := make(map[int]bool)
		for _, b := range m.SendOrder {
			if b < 0 || b >= len(m.Blocks) || b == m.RootBlock || seen[b] {
				return fmt.Errorf("fullmodel: invalid send order entry %d", b)
			}
			seen[b] = true
		}
	}
	return nil
}

// blockTimes returns a block's computation time and its output time to
// Pout on its processor.
func (f Fork) blockTimes(pl Platform, b ForkBlock) (compute, out float64) {
	for _, l := range b.Leaves {
		compute += f.Weights[l] / pl.Speeds[b.Proc]
		out += f.Outs[l] / pl.OutBand[b.Proc]
	}
	return compute, out
}

// EvalFork computes the latency and period of a one-port fork mapping
// (Section 3.3). Under the flexible model the root processor, after
// receiving In and computing S0, serializes its sends in SendOrder and
// only then computes its own leaves; each non-root block starts once its
// receive completes, computes, and returns its outputs to Pout. Under the
// strict model (single execution thread computing everything first), set
// strict to true: sends start only after the root block's own leaves.
//
// The period of a processor is the time it spends receiving, computing and
// sending for one data set (the paper's informal definition); the mapping
// period is the maximum over processors.
func EvalFork(f Fork, pl Platform, m ForkMapping, strict bool) (Cost, error) {
	if err := ValidateFork(f, pl, m); err != nil {
		return Cost{}, err
	}
	return evalForkTrusted(f, pl, m, strict), nil
}

// evalForkTrusted is EvalFork without the validation pass, for mappings
// that are valid by construction (the exhaustive enumeration, the
// prepared solvers). Both entry points share this code, so their costs
// are bit-identical.
func evalForkTrusted(f Fork, pl Platform, m ForkMapping, strict bool) Cost {
	root := m.Blocks[m.RootBlock]
	rootIn := f.In / pl.InBand[root.Proc]
	s0Done := rootIn + f.Root/pl.Speeds[root.Proc]
	ownCompute, ownOut := f.blockTimes(pl, root)

	order := m.SendOrder
	if order == nil {
		for i := range m.Blocks {
			if i != m.RootBlock {
				order = append(order, i)
			}
		}
	}

	sendStart := s0Done
	if strict {
		sendStart += ownCompute
	}
	var c Cost
	totalSend := 0.0
	for _, bi := range order {
		b := m.Blocks[bi]
		sendTime := f.Out0 / pl.Band[root.Proc][b.Proc]
		totalSend += sendTime
		recvDone := sendStart + totalSend
		compute, out := f.blockTimes(pl, b)
		done := recvDone + compute + out
		if done > c.Latency {
			c.Latency = done
		}
		// Block period: receive + compute + output.
		if per := sendTime + compute + out; per > c.Period {
			c.Period = per
		}
	}
	// The root block's own completion.
	var rootDone float64
	if strict {
		rootDone = s0Done + ownCompute + totalSend + ownOut
	} else {
		rootDone = sendStart + totalSend + ownCompute + ownOut
	}
	if rootDone > c.Latency {
		c.Latency = rootDone
	}
	if per := rootIn + f.Root/pl.Speeds[root.Proc] + ownCompute + totalSend + ownOut; per > c.Period {
		c.Period = per
	}
	return c
}

// OptimalSendOrder returns the latency-minimizing one-port send order for
// the mapping: non-root blocks sorted by non-increasing post-receive time
// (computation plus output). The classic adjacent-exchange argument shows
// this dominates any other order regardless of the individual send times.
func OptimalSendOrder(f Fork, pl Platform, m ForkMapping) []int {
	type entry struct {
		block int
		post  float64
	}
	var entries []entry
	for i, b := range m.Blocks {
		if i == m.RootBlock {
			continue
		}
		compute, out := f.blockTimes(pl, b)
		entries = append(entries, entry{block: i, post: compute + out})
	}
	sort.SliceStable(entries, func(a, b int) bool { return entries[a].post > entries[b].post })
	order := make([]int, len(entries))
	for i, e := range entries {
		order[i] = e.block
	}
	return order
}

// BestSendOrderLatency returns the minimum latency over all send orders by
// exhaustive permutation — a test oracle for OptimalSendOrder, usable up
// to ~8 non-root blocks.
func BestSendOrderLatency(f Fork, pl Platform, m ForkMapping, strict bool) (float64, error) {
	if err := ValidateFork(f, pl, m); err != nil {
		return 0, err
	}
	var others []int
	for i := range m.Blocks {
		if i != m.RootBlock {
			others = append(others, i)
		}
	}
	best := numeric.Inf
	var permute func(k int)
	permute = func(k int) {
		if k == len(others) {
			mm := m
			mm.SendOrder = append([]int(nil), others...)
			c, err := EvalFork(f, pl, mm, strict)
			if err == nil && c.Latency < best {
				best = c.Latency
			}
			return
		}
		for i := k; i < len(others); i++ {
			others[k], others[i] = others[i], others[k]
			permute(k + 1)
			others[k], others[i] = others[i], others[k]
		}
	}
	permute(0)
	return best, nil
}
