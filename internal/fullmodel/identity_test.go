package fullmodel

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// Byte-identity corpora for the prepared and parallel comm-aware solvers.
// The replay harness diffs recorded costs with ==, so these tests compare
// costs with == (not the tolerant numeric.Eq) and mappings with
// reflect.DeepEqual: the prepared, memoized and partitioned paths must
// reproduce the one-shot serial results bit for bit.

// randomBandwidth returns a uniform or full-table bandwidth description
// for p processors.
func randomBandwidth(rng *rand.Rand, p int) Bandwidth {
	if rng.Intn(2) == 0 {
		return Bandwidth{Uniform: float64(1 + rng.Intn(4))}
	}
	b := Bandwidth{Links: make([][]float64, p), In: make([]float64, p), Out: make([]float64, p)}
	for u := 0; u < p; u++ {
		b.Links[u] = make([]float64, p)
		b.In[u] = float64(1 + rng.Intn(4))
		b.Out[u] = float64(1 + rng.Intn(4))
		for v := 0; v < p; v++ {
			if v != u {
				b.Links[u][v] = float64(1 + rng.Intn(4))
			}
		}
	}
	return b
}

func randomHetPlatform(rng *rand.Rand, p int) Platform {
	speeds := make([]float64, p)
	for i := range speeds {
		speeds[i] = float64(1 + rng.Intn(5))
	}
	return randomBandwidth(rng, p).Apply(speeds)
}

// TestCommPipelineParallelSerialIdentity: the chunk-claimed partitioned
// interval scan must be byte-identical to the serial scan on every goal,
// at every worker count.
func TestCommPipelineParallelSerialIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 30; trial++ {
		p := randomCommPipeline(rng, 2+rng.Intn(5))
		pl := randomHetPlatform(rng, 2+rng.Intn(3))
		for _, goal := range allGoals(float64(3 + rng.Intn(10))) {
			serial, err := NewPipelinePrepared(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			par, err := NewPipelinePrepared(p, pl)
			if err != nil {
				t.Fatal(err)
			}
			par.SetParallelism(2 + rng.Intn(3))
			sm, sc, sok, err := serial.SolveExact(context.Background(), goal)
			if err != nil {
				t.Fatal(err)
			}
			pm, pc, pok, err := par.SolveExact(context.Background(), goal)
			if err != nil {
				t.Fatal(err)
			}
			if sok != pok || sc != pc || !reflect.DeepEqual(sm, pm) {
				t.Fatalf("trial %d goal %+v: parallel diverges: (%v %v %v) vs (%v %v %v)",
					trial, goal, pm, pc, pok, sm, sc, sok)
			}
		}
	}
}

// TestCommPipelinePreparedIdentity: prepared solves — including memo hits
// and DP-table reuse across goals — must equal fresh one-shot solves.
func TestCommPipelinePreparedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 30; trial++ {
		p := randomCommPipeline(rng, 2+rng.Intn(5))
		hom := rng.Intn(2) == 0
		var pl Platform
		if hom {
			procs := 2 + rng.Intn(3)
			speeds := make([]float64, procs)
			s := float64(1 + rng.Intn(4))
			for i := range speeds {
				speeds[i] = s
			}
			pl = Uniform(speeds, float64(1+rng.Intn(4)))
		} else {
			pl = randomHetPlatform(rng, 2+rng.Intn(3))
		}
		pp, err := NewPipelinePrepared(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		goals := allGoals(float64(3 + rng.Intn(10)))
		// Two passes: the second hits the per-goal memo.
		for pass := 0; pass < 2; pass++ {
			for _, goal := range goals {
				var gm, wm Mapping
				var gc, wc Cost
				var gok, wok bool
				if hom {
					gm, gc, gok, err = pp.SolveHom(goal)
					if err != nil {
						t.Fatal(err)
					}
					wm, wc, wok, err = SolveHom(p, pl, goal)
				} else {
					gm, gc, gok, err = pp.SolveExact(context.Background(), goal)
					if err != nil {
						t.Fatal(err)
					}
					wm, wc, wok, err = SolveExact(context.Background(), p, pl, goal)
				}
				if err != nil {
					t.Fatal(err)
				}
				if gok != wok || gc != wc || !reflect.DeepEqual(gm, wm) {
					t.Fatalf("trial %d pass %d goal %+v (hom=%v): prepared diverges: (%v %v %v) vs (%v %v %v)",
						trial, pass, goal, hom, gm, gc, gok, wm, wc, wok)
				}
			}
		}
	}
}

// TestCommForkPreparedIdentity: prepared one-port fork solves (scratch
// reuse, memo hits) must equal fresh one-shot solves.
func TestCommForkPreparedIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 25; trial++ {
		f := randomCommFork(rng, rng.Intn(5), rng.Intn(4) == 0)
		pl := randomHetPlatform(rng, 2+rng.Intn(3))
		fp, err := NewForkPrepared(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		goals := []Goal{
			{MinimizePeriod: true},
			{},
			{PeriodCap: float64(3 + rng.Intn(10))},
			{MinimizePeriod: true, LatencyCap: float64(9 + rng.Intn(20))},
		}
		for pass := 0; pass < 2; pass++ {
			for _, goal := range goals {
				gm, gc, gok, err := fp.SolveExact(context.Background(), goal)
				if err != nil {
					t.Fatal(err)
				}
				wm, wc, wok, err := SolveForkExact(context.Background(), f, pl, goal)
				if err != nil {
					t.Fatal(err)
				}
				if gok != wok || gc != wc || !reflect.DeepEqual(gm, wm) {
					t.Fatalf("trial %d pass %d goal %+v: prepared fork diverges: (%v %v %v) vs (%v %v %v)",
						trial, pass, goal, gm, gc, gok, wm, wc, wok)
				}
			}
		}
	}
}

// TestPlatTableIdentity: the cached bound platform must be value-identical
// to a fresh Bandwidth.Apply, and two lookups of the same pair must share
// one table.
func TestPlatTableIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 20; trial++ {
		p := 1 + rng.Intn(5)
		speeds := make([]float64, p)
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(5))
		}
		b := randomBandwidth(rng, p)
		t1 := TableFor(speeds, b)
		if !reflect.DeepEqual(t1.Plat, b.Apply(speeds)) {
			t.Fatalf("trial %d: cached platform diverges from Bandwidth.Apply", trial)
		}
		if t2 := TableFor(speeds, b); t2 != t1 {
			t.Fatalf("trial %d: second lookup did not share the cached table", trial)
		}
		for u, s := range t1.Plat.Speeds {
			if t1.InvSpeeds[u] != 1/s {
				t.Fatalf("trial %d: reciprocal mismatch at %d", trial, u)
			}
		}
	}
}
