package fullmodel

import (
	"math/rand"
	"testing"

	"repliflow/internal/numeric"
)

func simpleFork() Fork {
	return Fork{Root: 2, In: 0, Out0: 4, Weights: []float64{6, 3}, Outs: []float64{0, 0}}
}

func TestValidateFork(t *testing.T) {
	f := simpleFork()
	pl := Uniform([]float64{1, 1, 1}, 2)
	good := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{
		{Proc: 0}, {Proc: 1, Leaves: []int{0}}, {Proc: 2, Leaves: []int{1}},
	}}
	if err := ValidateFork(f, pl, good); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := []ForkMapping{
		{},
		{RootBlock: 5, Blocks: good.Blocks},
		{RootBlock: 0, Blocks: []ForkBlock{{Proc: 0}, {Proc: 0, Leaves: []int{0, 1}}}}, // dup proc
		{RootBlock: 0, Blocks: []ForkBlock{{Proc: 0}, {Proc: 1, Leaves: []int{0}}}},    // leaf missing
		{RootBlock: 0, Blocks: []ForkBlock{{Proc: 0, Leaves: []int{0, 1}}, {Proc: 1}}}, // empty non-root
		{RootBlock: 0, Blocks: good.Blocks, SendOrder: []int{1}},                       // short order
		{RootBlock: 0, Blocks: good.Blocks, SendOrder: []int{0, 1}},                    // contains root
		{RootBlock: 0, Blocks: good.Blocks, SendOrder: []int{1, 1}},                    // duplicate
	}
	for i, m := range bad {
		if err := ValidateFork(f, pl, m); err == nil {
			t.Errorf("bad mapping %d accepted", i)
		}
	}
}

func TestEvalForkHandComputed(t *testing.T) {
	// Root (w=2) on P1 speed 1; leaf blocks {S1:6} on P2 and {S2:3} on P3,
	// all speeds 1, all bandwidths 2, broadcast size 4 (send time 2 each),
	// flexible model, send to block 1 first.
	f := simpleFork()
	pl := Uniform([]float64{1, 1, 1}, 2)
	m := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{
		{Proc: 0}, {Proc: 1, Leaves: []int{0}}, {Proc: 2, Leaves: []int{1}},
	}, SendOrder: []int{1, 2}}
	c, err := EvalFork(f, pl, m, false)
	if err != nil {
		t.Fatal(err)
	}
	// s0Done = 2; block1 recv at 2+2=4, done 4+6 = 10; block2 recv at
	// 2+4=6, done 6+3 = 9; root own leaves none -> done 6.
	if !numeric.Eq(c.Latency, 10) {
		t.Errorf("latency = %v, want 10", c.Latency)
	}
	// Periods: root = 2 + sends 4 = 6; block1 = 2+6 = 8; block2 = 2+3 = 5.
	if !numeric.Eq(c.Period, 8) {
		t.Errorf("period = %v, want 8", c.Period)
	}

	// Reversed order: block2 first -> block1 done at 2+4+... recv 2+2+2=6,
	// done 12.
	m.SendOrder = []int{2, 1}
	c, err = EvalFork(f, pl, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(c.Latency, 12) {
		t.Errorf("reversed latency = %v, want 12", c.Latency)
	}
}

func TestOptimalSendOrderBeatsPermutations(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(4)
		f := Fork{Root: float64(1 + rng.Intn(5)), In: float64(rng.Intn(3)), Out0: float64(1 + rng.Intn(5))}
		for i := 0; i < n; i++ {
			f.Weights = append(f.Weights, float64(1+rng.Intn(9)))
			f.Outs = append(f.Outs, float64(rng.Intn(4)))
		}
		speeds := make([]float64, n+1)
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(4))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(3)))
		m := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{{Proc: 0}}}
		for i := 0; i < n; i++ {
			m.Blocks = append(m.Blocks, ForkBlock{Proc: i + 1, Leaves: []int{i}})
		}
		for _, strict := range []bool{false, true} {
			m.SendOrder = OptimalSendOrder(f, pl, m)
			c, err := EvalFork(f, pl, m, strict)
			if err != nil {
				t.Fatal(err)
			}
			best, err := BestSendOrderLatency(f, pl, m, strict)
			if err != nil {
				t.Fatal(err)
			}
			if !numeric.Eq(c.Latency, best) {
				t.Fatalf("trial %d (strict=%v): optimal-order latency %v != permutation best %v",
					trial, strict, c.Latency, best)
			}
		}
	}
}

func TestStrictModelNeverFasterThanFlexible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(3)
		f := Fork{Root: float64(1 + rng.Intn(5)), Out0: float64(1 + rng.Intn(5))}
		for i := 0; i < n; i++ {
			f.Weights = append(f.Weights, float64(1+rng.Intn(9)))
			f.Outs = append(f.Outs, 0)
		}
		speeds := make([]float64, n)
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(3))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(3)))
		// Root shares its block with leaf 0, other leaves spread out.
		m := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{{Proc: 0, Leaves: []int{0}}}}
		for i := 1; i < n; i++ {
			m.Blocks = append(m.Blocks, ForkBlock{Proc: i, Leaves: []int{i}})
		}
		m.SendOrder = OptimalSendOrder(f, pl, m)
		flex, err := EvalFork(f, pl, m, false)
		if err != nil {
			t.Fatal(err)
		}
		strict, err := EvalFork(f, pl, m, true)
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Less(strict.Latency, flex.Latency) {
			// Not a theorem in general (the root's own completion can
			// differ), but with zero Outs the flexible model releases the
			// other blocks earlier while the root block finishes at the
			// same time, so strict can only be worse or equal.
			t.Fatalf("trial %d: strict latency %v beats flexible %v", trial, strict.Latency, flex.Latency)
		}
	}
}

func TestZeroCommunicationForkMatchesSimplifiedModel(t *testing.T) {
	// With In = Out0 = Outs = 0, the one-port fork latency is the
	// simplified-model formula for single-processor blocks:
	// max over blocks of (root? whole block : w0/s0 + block work).
	f := Fork{Root: 4, Weights: []float64{6, 2}, Outs: []float64{0, 0}}
	pl := Uniform([]float64{2, 1, 1}, 1)
	m := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{
		{Proc: 0}, {Proc: 1, Leaves: []int{0}}, {Proc: 2, Leaves: []int{1}},
	}}
	m.SendOrder = OptimalSendOrder(f, pl, m)
	c, err := EvalFork(f, pl, m, false)
	if err != nil {
		t.Fatal(err)
	}
	// rootDone = 4/2 = 2; leaves done at 2+6 = 8 and 2+2 = 4.
	if !numeric.Eq(c.Latency, 8) {
		t.Errorf("latency = %v, want 8", c.Latency)
	}
}
