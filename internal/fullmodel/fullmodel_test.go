package fullmodel

import (
	"math/rand"
	"testing"

	"repliflow/internal/chains"
	"repliflow/internal/numeric"
	"repliflow/internal/workflow"
)

func uniformData(n int, d float64) []float64 {
	data := make([]float64, n+1)
	for i := range data {
		data[i] = d
	}
	return data
}

func TestValidate(t *testing.T) {
	p := NewPipeline([]float64{3, 5}, []float64{1, 2, 1})
	pl := Uniform([]float64{2, 1}, 4)
	good := Mapping{Bounds: []int{1, 2}, Alloc: []int{0, 1}}
	if err := Validate(p, pl, good); err != nil {
		t.Fatalf("valid mapping rejected: %v", err)
	}
	bad := []Mapping{
		{},
		{Bounds: []int{2}, Alloc: []int{0, 1}}, // length mismatch
		{Bounds: []int{0, 2}, Alloc: []int{0, 1}}, // empty interval
		{Bounds: []int{1}, Alloc: []int{0}},       // does not cover
		{Bounds: []int{1, 2}, Alloc: []int{0, 0}}, // duplicate processor
		{Bounds: []int{1, 2}, Alloc: []int{0, 7}}, // out of range
	}
	for i, m := range bad {
		if err := Validate(p, pl, m); err == nil {
			t.Errorf("bad mapping %d accepted", i)
		}
	}
	if err := (Pipeline{Weights: []float64{1}, Data: []float64{1}}).Validate(); err == nil {
		t.Error("pipeline with wrong data length accepted")
	}
	if err := (Pipeline{Weights: []float64{1}, Data: []float64{1, -1}}).Validate(); err == nil {
		t.Error("negative data size accepted")
	}
}

func TestEvalEquations(t *testing.T) {
	// Two stages (w=6, w=4) with data sizes (2, 4, 2), two processors of
	// speeds (2, 1), uniform bandwidth 2, split into two intervals.
	p := NewPipeline([]float64{6, 4}, []float64{2, 4, 2})
	pl := Uniform([]float64{2, 1}, 2)
	m := Mapping{Bounds: []int{1, 2}, Alloc: []int{0, 1}}
	c, err := Eval(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	// Interval 1 on P1: in 2/2 + compute 6/2 + out 4/2 = 1+3+2 = 6.
	// Interval 2 on P2: in 4/2 + compute 4/1 + out 2/2 = 2+4+1 = 7.
	if !numeric.Eq(c.Period, 7) {
		t.Errorf("period = %v, want 7", c.Period)
	}
	if !numeric.Eq(c.Latency, 13) {
		t.Errorf("latency = %v, want 13", c.Latency)
	}
}

func TestEvalSingleInterval(t *testing.T) {
	p := NewPipeline([]float64{6, 4}, []float64{2, 4, 2})
	pl := Uniform([]float64{2, 1}, 2)
	m := Mapping{Bounds: []int{2}, Alloc: []int{0}}
	c, err := Eval(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	// in 2/2 + compute 10/2 + out 2/2 = 1+5+1 = 7; the inner delta_1 is
	// internal to the interval and costs nothing.
	if !numeric.Eq(c.Period, 7) || !numeric.Eq(c.Latency, 7) {
		t.Fatalf("got %v, want 7/7", c)
	}
}

func TestZeroCommunicationMatchesChains(t *testing.T) {
	// With all data sizes zero and a homogeneous platform, minimizing the
	// period is exactly chains-to-chains (no replication in this model).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		q := 1 + rng.Intn(4)
		w := workflow.RandomPipeline(rng, n, 9)
		p := NewPipeline(w.Weights, uniformData(n, 0))
		pl := Uniform(make([]float64, q), 1)
		for u := range pl.Speeds {
			pl.Speeds[u] = 1
		}
		_, c, err := HomPeriod(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, want, err := chains.DP(w.Weights, q)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.Eq(c.Period, want) {
			t.Fatalf("trial %d: fullmodel period %v != chains %v (w=%v q=%d)",
				trial, c.Period, want, w.Weights, q)
		}
	}
}

func TestHomPeriodMatchesExactSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(5)
		q := 1 + rng.Intn(4)
		w := workflow.RandomPipeline(rng, n, 9)
		data := make([]float64, n+1)
		for i := range data {
			data[i] = float64(rng.Intn(6))
		}
		p := NewPipeline(w.Weights, data)
		speeds := make([]float64, q)
		for u := range speeds {
			speeds[u] = 2
		}
		pl := Uniform(speeds, float64(1+rng.Intn(3)))
		_, c, err := HomPeriod(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, ref, ok, err := ExactSolve(p, pl, true, numeric.Inf)
		if err != nil || !ok {
			t.Fatalf("exact solve failed: %v", err)
		}
		if !numeric.Eq(c.Period, ref.Period) {
			t.Fatalf("trial %d: DP period %v != exact %v (w=%v data=%v q=%d)",
				trial, c.Period, ref.Period, w.Weights, data, q)
		}
	}
}

func TestHomLatencyMatchesExactSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(5)
		q := 1 + rng.Intn(4)
		w := workflow.RandomPipeline(rng, n, 9)
		data := make([]float64, n+1)
		for i := range data {
			data[i] = float64(rng.Intn(6))
		}
		p := NewPipeline(w.Weights, data)
		speeds := make([]float64, q)
		for u := range speeds {
			speeds[u] = 1
		}
		pl := Uniform(speeds, float64(1+rng.Intn(3)))
		_, c, err := HomLatency(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		_, ref, ok, err := ExactSolve(p, pl, false, numeric.Inf)
		if err != nil || !ok {
			t.Fatalf("exact solve failed: %v", err)
		}
		if !numeric.Eq(c.Latency, ref.Latency) {
			t.Fatalf("trial %d: DP latency %v != exact %v", trial, c.Latency, ref.Latency)
		}
	}
}

func TestLatencyOptimumIsSingleIntervalUnderUniformComm(t *testing.T) {
	// With uniform bandwidth every split adds communication, so the
	// unconstrained latency optimum on a homogeneous platform is one
	// interval.
	p := NewPipeline([]float64{3, 1, 4}, uniformData(3, 2))
	pl := Uniform([]float64{1, 1, 1}, 1)
	m, c, err := HomLatency(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	if m.Intervals() != 1 {
		t.Errorf("latency optimum uses %d intervals, want 1 (%v)", m.Intervals(), m)
	}
	if !numeric.Eq(c.Latency, 2+8+2) {
		t.Errorf("latency = %v, want 12", c.Latency)
	}
}

func TestCommunicationChangesTheOptimalSplit(t *testing.T) {
	// Without communication, splitting 4 stages over 2 processors always
	// helps the period. With a huge boundary data size, the optimal period
	// mapping keeps everything on one processor.
	weights := []float64{4, 4, 4, 4}
	cheap := NewPipeline(weights, uniformData(4, 0))
	pl := Uniform([]float64{1, 1}, 1)
	mCheap, cCheap, err := HomPeriod(cheap, pl)
	if err != nil {
		t.Fatal(err)
	}
	if mCheap.Intervals() != 2 || !numeric.Eq(cCheap.Period, 8) {
		t.Fatalf("zero-comm optimum: %v %v", mCheap, cCheap)
	}
	expensive := NewPipeline(weights, []float64{0, 100, 100, 100, 0})
	mExp, cExp, err := HomPeriod(expensive, pl)
	if err != nil {
		t.Fatal(err)
	}
	if mExp.Intervals() != 1 || !numeric.Eq(cExp.Period, 16) {
		t.Fatalf("expensive-comm optimum: %v %v", mExp, cExp)
	}
}

func TestHetExactUsesFastLinks(t *testing.T) {
	// Two processors; the link P1->P2 is fast, P2->P1 slow. The optimal
	// 2-interval mapping must route the inter-stage data over the fast
	// link (P1 first, then P2).
	p := NewPipeline([]float64{4, 4}, []float64{0, 8, 0})
	pl := Uniform([]float64{1, 1}, 1)
	pl.Band[0][1] = 8   // fast
	pl.Band[1][0] = 0.5 // slow
	m, c, ok, err := ExactSolve(p, pl, true, numeric.Inf)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if m.Intervals() == 2 {
		if m.Alloc[0] != 0 || m.Alloc[1] != 1 {
			t.Errorf("optimal mapping uses the slow link: %v (cost %v)", m, c)
		}
	}
	// Period with the fast link: max(0+4+8/8, 8/8+4+0) = 5.
	if !numeric.Eq(c.Period, 5) {
		t.Errorf("period = %v, want 5", c.Period)
	}
}

func TestExactSolvePeriodCap(t *testing.T) {
	p := NewPipeline([]float64{4, 4}, uniformData(2, 0))
	pl := Uniform([]float64{1, 1}, 1)
	if _, _, ok, _ := ExactSolve(p, pl, false, 1); ok {
		t.Error("impossible period cap accepted")
	}
	_, c, ok, err := ExactSolve(p, pl, false, 4)
	if err != nil || !ok {
		t.Fatalf("feasible cap rejected: %v", err)
	}
	if numeric.Greater(c.Period, 4) {
		t.Errorf("period %v exceeds cap", c.Period)
	}
}

func TestFromSimple(t *testing.T) {
	w := workflow.NewPipeline(3, 5)
	p := FromSimple(w, 2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 3 || p.Data[0] != 2 {
		t.Fatalf("FromSimple data = %v", p.Data)
	}
}

func TestRejectsHetPlatformInHomSolvers(t *testing.T) {
	p := NewPipeline([]float64{1}, uniformData(1, 0))
	pl := Uniform([]float64{1, 2}, 1)
	if _, _, err := HomPeriod(p, pl); err == nil {
		t.Error("heterogeneous platform accepted by HomPeriod")
	}
	pl2 := Uniform([]float64{1, 1}, 1)
	pl2.Band[0][1] = 9
	if _, _, err := HomLatency(p, pl2); err == nil {
		t.Error("heterogeneous bandwidth accepted by HomLatency")
	}
}

func TestMorePeriodBudgetNeverHurtsLatency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		w := workflow.RandomPipeline(rng, n, 9)
		data := make([]float64, n+1)
		for i := range data {
			data[i] = float64(rng.Intn(4))
		}
		p := NewPipeline(w.Weights, data)
		pl := Uniform([]float64{1, 1, 1}, 2)
		_, cTight, okTight, err := ExactSolve(p, pl, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		_, base, err2 := HomPeriod(p, pl)
		if err2 != nil {
			t.Fatal(err2)
		}
		_, cLoose, okLoose, err := ExactSolve(p, pl, false, base.Period*2)
		if err != nil || !okLoose {
			t.Fatalf("loose cap infeasible: %v", err)
		}
		if okTight && numeric.Less(cTight.Latency, cLoose.Latency) {
			t.Fatalf("trial %d: tighter period cap yielded lower latency", trial)
		}
	}
}
