package fullmodel

import (
	"context"
	"encoding/binary"
	"math"
	"sync"
	"sync/atomic"

	"repliflow/internal/numeric"
)

// Prepared solvers for the communication-aware model. Pareto sweeps and
// bi-criteria binary searches solve the same (graph, platform, bandwidth)
// triple hundreds of times, varying only the bound. The prepared solvers
// — PipelinePrepared, ForkPrepared — share everything that does not
// depend on the bound: the bound platform (cached process-wide, see
// TableFor), speed reciprocals for prune-side lower bounds, an interval
// work table, the homogeneous DP tables and candidate-period set, the
// enumeration scratch, and a per-goal result memo. Their results are
// bit-identical to the one-shot entry points, which are themselves thin
// wrappers over a prepared solver used once.

// maxPlatCacheWords bounds the process-wide bound-platform cache by its
// approximate footprint in 8-byte words (~8MB): a bound platform is
// O(p^2) bandwidth entries, so a count bound alone would let a few
// large-p platforms pin memory past every other bound. When an insert
// would exceed the budget the whole cache is dropped (tables are cheap
// to rebuild, and real deployments see few distinct platforms).
const maxPlatCacheWords = 1 << 20

var (
	boundPlats     sync.Map // string (speed+bandwidth bits) -> *PlatTable
	boundPlatWords atomic.Int64
)

// PlatTable is a bandwidth description bound to a speed vector: the
// evaluation platform plus the precomputed speed reciprocals the
// prepared solvers use for prune-side lower bounds (reciprocals never
// enter reported costs — those always divide, so they stay bit-identical
// to the one-shot paths).
type PlatTable struct {
	Plat      Platform
	InvSpeeds []float64
}

// platTableKey encodes the raw float bits of the speed vector and the
// bandwidth description. Keying on bits (not values) keeps the cache
// exact: two platforms share a table iff every cost they can produce is
// bit-identical.
func platTableKey(speeds []float64, b Bandwidth) string {
	buf := make([]byte, 0, 8*(2+3*len(speeds)+len(speeds)*len(speeds)))
	var w [8]byte
	put := func(f float64) {
		binary.LittleEndian.PutUint64(w[:], math.Float64bits(f))
		buf = append(buf, w[:]...)
	}
	put(float64(len(speeds)))
	for _, s := range speeds {
		put(s)
	}
	if b.Uniform != 0 {
		buf = append(buf, 1)
		put(b.Uniform)
		return string(buf)
	}
	buf = append(buf, 0)
	for _, v := range b.In {
		put(v)
	}
	for _, v := range b.Out {
		put(v)
	}
	for _, row := range b.Links {
		for _, v := range row {
			put(v)
		}
	}
	return string(buf)
}

// TableFor returns the shared bound platform of a (speeds, bandwidth)
// pair, building and caching it on first use. Every solver for the same
// pair — across solves, goroutines and objectives — shares one table, so
// a Pareto sweep pays the uniform-bandwidth matrix expansion once
// instead of once per candidate bound. For table-form bandwidths the
// platform aliases the caller's slices; callers must not mutate them
// afterwards.
func TableFor(speeds []float64, b Bandwidth) *PlatTable {
	key := platTableKey(speeds, b)
	if t, ok := boundPlats.Load(key); ok {
		return t.(*PlatTable)
	}
	pl := b.Apply(speeds)
	inv := make([]float64, len(pl.Speeds))
	for i, s := range pl.Speeds {
		inv[i] = 1 / s
	}
	t := &PlatTable{Plat: pl, InvSpeeds: inv}
	weight := int64(len(speeds)+4) * int64(len(speeds)+4)
	if weight > maxPlatCacheWords {
		return t // oversized: per-solver transient, never cached
	}
	if _, loaded := boundPlats.LoadOrStore(key, t); !loaded {
		if boundPlatWords.Add(weight) > maxPlatCacheWords {
			// Overflow: drop everything and restart the count. Racy counts
			// only make the flush early or late by a table, which is
			// harmless — correctness never depends on the cache.
			boundPlats.Range(func(k, _ any) bool {
				boundPlats.Delete(k)
				return true
			})
			boundPlatWords.Store(0)
		}
	}
	return t
}

// lbSlack scales multiply-by-reciprocal lower bounds: w*(1/s) carries at
// most a couple of ULPs of relative rounding error against w/s, so
// shrinking the product by four ULPs keeps it a true lower bound on the
// division the reported costs use.
const lbSlack = 1 - 1.0/(1<<50)

// surelyGreater reports whether every value v >= a satisfies
// numeric.Greater(v, b): a clears b by more than the comparison
// tolerance at every scale (absolute near zero, relative above one).
// Prune-side lower bounds use this instead of numeric.Greater so they
// can never cut a candidate the tolerant comparison would keep.
func surelyGreater(a, b float64) bool {
	return a > b+numeric.Eps && a*(1-numeric.Eps) > b
}

// pipeResult is one memoized comm-pipeline solve.
type pipeResult struct {
	m  Mapping
	c  Cost
	ok bool
}

// PipelinePrepared solves one comm-aware pipeline instance repeatedly
// under varying goals. Not safe for concurrent use; the engine's sweep
// pool hands each solver to one goroutine at a time.
type PipelinePrepared struct {
	p   Pipeline
	pl  Platform
	inv []float64
	hom bool
	n   int
	par int

	// workTbl[i][j] is IntervalWork(i, j), built by the same sequential
	// summation, so table lookups are bit-identical to the direct sums.
	workTbl [][]float64

	// Homogeneous DP machinery, allocated on first hom solve and reused
	// across bounds.
	L        [][]float64
	cut      [][]int
	homCands []float64

	// Heterogeneous enumeration scratch.
	curBounds, curAlloc []int

	memoHom   map[Goal]pipeResult
	memoExact map[Goal]pipeResult
}

// NewPipelinePrepared validates the instance once and builds a prepared
// solver for it.
func NewPipelinePrepared(p Pipeline, pl Platform) (*PipelinePrepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	inv := make([]float64, pl.Processors())
	for i, s := range pl.Speeds {
		inv[i] = 1 / s
	}
	return newPipelinePrepared(p, pl, inv), nil
}

// NewPipelinePreparedTable is NewPipelinePrepared on a cached bound
// platform, reusing its precomputed reciprocals.
func NewPipelinePreparedTable(p Pipeline, t *PlatTable) (*PipelinePrepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := t.Plat.Validate(); err != nil {
		return nil, err
	}
	return newPipelinePrepared(p, t.Plat, t.InvSpeeds), nil
}

func newPipelinePrepared(p Pipeline, pl Platform, inv []float64) *PipelinePrepared {
	n := p.Stages()
	wt := make([][]float64, n)
	for i := 0; i < n; i++ {
		wt[i] = make([]float64, n)
		var s float64
		for j := i; j < n; j++ {
			s += p.Weights[j]
			wt[i][j] = s
		}
	}
	return &PipelinePrepared{
		p: p, pl: pl, inv: inv,
		hom: pl.IsFullyHomogeneous(), n: n,
		workTbl:   wt,
		memoHom:   make(map[Goal]pipeResult),
		memoExact: make(map[Goal]pipeResult),
	}
}

// SetParallelism sets the worker count of subsequent SolveExact calls;
// values below two keep the scan serial. The parallel scan folds
// deterministically, so the answer is bit-identical either way.
func (pp *PipelinePrepared) SetParallelism(workers int) { pp.par = workers }

func cloneMapping(m Mapping) Mapping {
	if m.Bounds == nil {
		return Mapping{}
	}
	return Mapping{
		Bounds: append([]int(nil), m.Bounds...),
		Alloc:  append([]int(nil), m.Alloc...),
	}
}

// SolveHom is SolveHom for the prepared instance: the DP tables and the
// candidate-period set persist across calls, and each goal's result is
// memoized, so a bi-criteria sweep pays each distinct bound once.
func (pp *PipelinePrepared) SolveHom(goal Goal) (Mapping, Cost, bool, error) {
	if !pp.hom {
		return Mapping{}, Cost{}, false, errPlatformNotHomogeneous
	}
	if r, ok := pp.memoHom[goal]; ok {
		return cloneMapping(r.m), r.c, r.ok, nil
	}
	m, c, ok := pp.solveHom(goal)
	pp.memoHom[goal] = pipeResult{m: m, c: c, ok: ok}
	return cloneMapping(m), c, ok, nil
}

// lup runs the latency-under-period DP in the reused tables. It shares
// homLUPInto and evalTrusted with the one-shot path, so reuse cannot
// change a bit of the result.
func (pp *PipelinePrepared) lup(maxPeriod float64) (Mapping, Cost, bool) {
	if pp.L == nil {
		pp.L, pp.cut = newHomDP(pp.n, pp.pl.Processors())
	}
	m, ok := homLUPInto(pp.p, pp.pl.Speeds[0], pp.pl.InBand[0], pp.n, pp.pl.Processors(), pp.L, pp.cut, maxPeriod)
	if !ok {
		return Mapping{}, Cost{}, false
	}
	return m, evalTrusted(pp.p, pp.pl, m), true
}

func (pp *PipelinePrepared) solveHom(goal Goal) (Mapping, Cost, bool) {
	if !goalNeedsPeriodSearch(goal) {
		cap := numeric.Inf
		if goal.PeriodCap > 0 {
			cap = goal.PeriodCap
		}
		m, c, ok := pp.lup(cap)
		if !ok {
			return Mapping{}, Cost{}, false
		}
		if goal.LatencyCap > 0 && numeric.Greater(c.Latency, goal.LatencyCap) {
			return Mapping{}, Cost{}, false
		}
		return m, c, true
	}
	// Minimize the period: binary search the candidate brackets, sharing
	// the candidate set across every goal that needs the search.
	if pp.homCands == nil {
		pp.homCands = homPeriodCandidates(pp.p, pp.pl.Speeds[0], pp.pl.InBand[0])
	}
	cands := pp.homCands
	lo, hi := 0, len(cands)-1
	var bestM Mapping
	var bestC Cost
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		m, c, ok := pp.lup(cands[mid])
		if ok && goal.LatencyCap > 0 && numeric.Greater(c.Latency, goal.LatencyCap) {
			ok = false
		}
		if ok {
			bestM, bestC = m, c
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return Mapping{}, Cost{}, false
	}
	if goal.PeriodCap > 0 && numeric.Greater(bestC.Period, goal.PeriodCap) {
		return Mapping{}, Cost{}, false
	}
	return bestM, bestC, true
}

// SolveExact is the exhaustive heterogeneous solve for the prepared
// instance: enumeration scratch and the work table persist across calls,
// each goal's result is memoized, and with SetParallelism >= 2 the scan
// partitions across workers with a deterministic fold.
func (pp *PipelinePrepared) SolveExact(ctx context.Context, goal Goal) (Mapping, Cost, bool, error) {
	if r, ok := pp.memoExact[goal]; ok {
		return cloneMapping(r.m), r.c, r.ok, nil
	}
	var (
		m     Mapping
		c     Cost
		found bool
		err   error
	)
	if pp.par > 1 && pp.n*pp.pl.Processors() >= 2 {
		m, c, found, err = pp.solveExactPar(ctx, goal)
	} else {
		m, c, found, err = pp.solveExactSerial(ctx, goal)
	}
	if err != nil {
		return Mapping{}, Cost{}, false, err
	}
	pp.memoExact[goal] = pipeResult{m: m, c: c, ok: found}
	return cloneMapping(m), c, found, nil
}

// pruneInterval reports whether every completion that places stages i..j
// on processor u is certainly infeasible (period cap) or certainly worse
// than the incumbent (period objective): the interval's work over its
// speed lower-bounds its Equation (1) bracket and hence the mapping
// period. lbSlack keeps the reciprocal product a true lower bound and
// surelyGreater clears the comparison tolerance, so pruning only skips
// candidates the unpruned enumeration would reject — the installed
// result is bit-identical.
func (pp *PipelinePrepared) pruneInterval(goal Goal, i, j, u int, bound float64) bool {
	est := pp.workTbl[i][j] * pp.inv[u] * lbSlack
	if goal.PeriodCap > 0 && surelyGreater(est, goal.PeriodCap) {
		return true
	}
	return goal.MinimizePeriod && surelyGreater(est, bound)
}

func (pp *PipelinePrepared) solveExactSerial(ctx context.Context, goal Goal) (Mapping, Cost, bool, error) {
	n, procs := pp.n, pp.pl.Processors()
	if pp.curBounds == nil {
		pp.curBounds = make([]int, 0, n)
		pp.curAlloc = make([]int, 0, n)
	}
	var (
		bestM  Mapping
		bestC  Cost
		found  bool
		iter   int
		ctxErr error
	)
	bound := numeric.Inf
	var walk func(i, mask int)
	walk = func(i, mask int) {
		if ctxErr != nil {
			return
		}
		if i == n {
			iter++
			if iter%256 == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return
				}
			}
			c := evalTrusted(pp.p, pp.pl, Mapping{Bounds: pp.curBounds, Alloc: pp.curAlloc})
			if !goal.feasible(c) {
				return
			}
			if !found || numeric.Less(goal.value(c), goal.value(bestC)) {
				bestM = Mapping{
					Bounds: append([]int(nil), pp.curBounds...),
					Alloc:  append([]int(nil), pp.curAlloc...),
				}
				bestC, found = c, true
				if goal.MinimizePeriod {
					bound = bestC.Period
				}
			}
			return
		}
		for j := i; j < n; j++ {
			for u := 0; u < procs; u++ {
				if mask&(1<<u) != 0 {
					continue
				}
				if pp.pruneInterval(goal, i, j, u, bound) {
					continue
				}
				pp.curBounds = append(pp.curBounds, j+1)
				pp.curAlloc = append(pp.curAlloc, u)
				walk(j+1, mask|1<<u)
				pp.curBounds = pp.curBounds[:len(pp.curBounds)-1]
				pp.curAlloc = pp.curAlloc[:len(pp.curAlloc)-1]
			}
		}
	}
	walk(0, 0)
	if ctxErr != nil {
		return Mapping{}, Cost{}, false, ctxErr
	}
	return bestM, bestC, found, nil
}

// forkResult is one memoized one-port fork solve.
type forkResult struct {
	m  ForkMapping
	c  Cost
	ok bool
}

// ForkPrepared solves one one-port fork instance repeatedly under
// varying goals, reusing the partition/assignment scratch and the
// send-order buffers across solves. Not safe for concurrent use.
type ForkPrepared struct {
	f  Fork
	pl Platform
	n  int

	assign     []int
	blockProcs []int
	usedProc   []bool
	blocks     []ForkBlock
	leafBufs   [][]int
	post       []float64
	order      []int

	memo map[Goal]forkResult
}

// NewForkPrepared validates the instance once and builds a prepared
// solver for it.
func NewForkPrepared(f Fork, pl Platform) (*ForkPrepared, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	n, procs := f.Leaves(), pl.Processors()
	maxBlocks := n + 1
	if procs < maxBlocks {
		maxBlocks = procs
	}
	leafBufs := make([][]int, maxBlocks)
	for i := range leafBufs {
		leafBufs[i] = make([]int, 0, n)
	}
	return &ForkPrepared{
		f: f, pl: pl, n: n,
		assign:     make([]int, n),
		blockProcs: make([]int, maxBlocks),
		usedProc:   make([]bool, procs),
		blocks:     make([]ForkBlock, maxBlocks),
		leafBufs:   leafBufs,
		post:       make([]float64, 0, maxBlocks),
		order:      make([]int, 0, maxBlocks),
		memo:       make(map[Goal]forkResult),
	}, nil
}

// SetParallelism is accepted for interface symmetry with the other
// prepared solvers but keeps the scan serial: fork instances behind the
// exhaustive limits are small enough that scratch reuse dominates.
func (fp *ForkPrepared) SetParallelism(workers int) {}

func cloneForkMapping(m ForkMapping) ForkMapping {
	if m.Blocks == nil {
		return ForkMapping{}
	}
	out := ForkMapping{
		RootBlock: m.RootBlock,
		Blocks:    make([]ForkBlock, len(m.Blocks)),
		SendOrder: make([]int, len(m.SendOrder)),
	}
	copy(out.SendOrder, m.SendOrder)
	for i, b := range m.Blocks {
		out.Blocks[i] = ForkBlock{Proc: b.Proc, Leaves: append([]int(nil), b.Leaves...)}
	}
	return out
}

// SolveExact mirrors the one-shot SolveForkExact enumeration exactly —
// same partition order, same injective processor assignments, same
// latency-optimal send order (a stable insertion sort reproducing
// OptimalSendOrder's stable sort) — but reuses all scratch and memoizes
// per goal, so the installed mapping and cost are bit-identical.
func (fp *ForkPrepared) SolveExact(ctx context.Context, goal Goal) (ForkMapping, Cost, bool, error) {
	if r, ok := fp.memo[goal]; ok {
		return cloneForkMapping(r.m), r.c, r.ok, nil
	}
	n, procs := fp.n, fp.pl.Processors()
	var (
		bestM  ForkMapping
		bestC  Cost
		found  bool
		iter   int
		ctxErr error
	)
	tryAssign := func(blocks int) {
		m := ForkMapping{RootBlock: 0, Blocks: fp.blocks[:blocks]}
		for b := 0; b < blocks; b++ {
			m.Blocks[b] = ForkBlock{Proc: fp.blockProcs[b], Leaves: fp.leafBufs[b][:0]}
		}
		for l := 0; l < n; l++ {
			b := fp.assign[l]
			m.Blocks[b].Leaves = append(m.Blocks[b].Leaves, l)
		}
		// Latency-optimal send order: non-root blocks by non-increasing
		// post-receive time, stable — the insertion keeps equal keys in
		// block order, matching OptimalSendOrder's stable sort.
		order, post := fp.order[:0], fp.post[:0]
		for i := 1; i < blocks; i++ {
			compute, out := fp.f.blockTimes(fp.pl, m.Blocks[i])
			pv := compute + out
			order = append(order, 0)
			post = append(post, 0)
			k := len(order) - 1
			for k > 0 && post[k-1] < pv {
				order[k], post[k] = order[k-1], post[k-1]
				k--
			}
			order[k], post[k] = i, pv
		}
		m.SendOrder = order
		c := evalForkTrusted(fp.f, fp.pl, m, false)
		if !goal.feasible(c) {
			return
		}
		if !found || numeric.Less(goal.value(c), goal.value(bestC)) {
			bestM, bestC, found = cloneForkMapping(m), c, true
		}
	}
	var chooseProcs func(b, blocks int)
	chooseProcs = func(b, blocks int) {
		if ctxErr != nil {
			return
		}
		if b == blocks {
			iter++
			if iter%128 == 0 {
				if err := ctx.Err(); err != nil {
					ctxErr = err
					return
				}
			}
			tryAssign(blocks)
			return
		}
		for u := 0; u < procs; u++ {
			if fp.usedProc[u] {
				continue
			}
			fp.usedProc[u] = true
			fp.blockProcs[b] = u
			chooseProcs(b+1, blocks)
			fp.usedProc[u] = false
		}
	}
	var parts func(l, blocks int)
	parts = func(l, blocks int) {
		if ctxErr != nil {
			return
		}
		if l == n {
			chooseProcs(0, blocks)
			return
		}
		limit := blocks
		if blocks < procs {
			limit = blocks + 1
		}
		for b := 0; b < limit; b++ {
			fp.assign[l] = b
			nb := blocks
			if b == blocks {
				nb = blocks + 1
			}
			parts(l+1, nb)
		}
	}
	// blocks starts at 1: the root block always exists even with no leaf.
	parts(0, 1)
	if ctxErr != nil {
		return ForkMapping{}, Cost{}, false, ctxErr
	}
	fp.memo[goal] = forkResult{m: bestM, c: bestC, ok: found}
	return cloneForkMapping(bestM), bestC, found, nil
}
