package fullmodel

import (
	"context"
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestBandwidthValidateAndApply(t *testing.T) {
	if err := (Bandwidth{Uniform: 4}).Validate(3); err != nil {
		t.Errorf("uniform: %v", err)
	}
	if err := (Bandwidth{Uniform: -1}).Validate(3); err == nil {
		t.Error("negative uniform accepted")
	}
	if err := (Bandwidth{Uniform: 4, In: []float64{1}}).Validate(1); err == nil {
		t.Error("uniform plus tables accepted")
	}
	if err := (Bandwidth{Links: [][]float64{{0}}, In: []float64{1}, Out: []float64{1}}).Validate(2); err == nil {
		t.Error("mis-sized tables accepted")
	}
	pl := Bandwidth{Uniform: 4}.Apply([]float64{2, 2})
	if err := pl.Validate(); err != nil {
		t.Fatalf("applied platform invalid: %v", err)
	}
	if !pl.IsFullyHomogeneous() {
		t.Error("uniform bandwidth over equal speeds should be fully homogeneous")
	}
}

func randomCommPipeline(rng *rand.Rand, n int) Pipeline {
	ws := make([]float64, n)
	data := make([]float64, n+1)
	for i := range ws {
		ws[i] = float64(1 + rng.Intn(9))
	}
	for i := range data {
		data[i] = float64(rng.Intn(5))
	}
	return NewPipeline(ws, data)
}

func allGoals(bound float64) []Goal {
	return []Goal{
		{MinimizePeriod: true},
		{},
		{PeriodCap: bound},
		{MinimizePeriod: true, LatencyCap: 3 * bound},
	}
}

// The homogeneous DPs and the exhaustive enumeration must agree on every
// objective wherever both apply.
func TestSolveHomMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		p := randomCommPipeline(rng, 2+rng.Intn(4))
		pl := Uniform([]float64{2, 2, 2}, float64(1+rng.Intn(3)))
		for _, goal := range allGoals(float64(4 + rng.Intn(12))) {
			hm, hc, hok, err := SolveHom(p, pl, goal)
			if err != nil {
				t.Fatalf("SolveHom: %v", err)
			}
			_, ec, eok, err := SolveExact(context.Background(), p, pl, goal)
			if err != nil {
				t.Fatalf("SolveExact: %v", err)
			}
			if hok != eok {
				t.Fatalf("trial %d goal %+v: hom ok=%v exact ok=%v", trial, goal, hok, eok)
			}
			if !hok {
				continue
			}
			if !numeric.Eq(goal.value(hc), goal.value(ec)) {
				t.Errorf("trial %d goal %+v: hom %v vs exact %v", trial, goal, hc, ec)
			}
			if c, err := Eval(p, pl, hm); err != nil || !numeric.Eq(c.Period, hc.Period) || !numeric.Eq(c.Latency, hc.Latency) {
				t.Errorf("trial %d: hom mapping does not re-evaluate to its cost: %v %v", trial, c, err)
			}
		}
	}
}

func TestHeuristicCandidatesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p := randomCommPipeline(rng, 1+rng.Intn(8))
		speeds := make([]float64, 1+rng.Intn(6))
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(5))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(4)))
		for i, m := range HeuristicCandidates(p, pl) {
			if _, err := Eval(p, pl, m); err != nil {
				t.Fatalf("trial %d candidate %d invalid: %v", trial, i, err)
			}
		}
	}
}

func randomCommFork(rng *rand.Rand, n int, zeroData bool) Fork {
	f := Fork{
		Root:    float64(1 + rng.Intn(9)),
		Weights: make([]float64, n),
		Outs:    make([]float64, n),
	}
	for i := range f.Weights {
		f.Weights[i] = float64(1 + rng.Intn(9))
	}
	if !zeroData {
		f.In = float64(rng.Intn(5))
		f.Out0 = float64(rng.Intn(5))
		for i := range f.Outs {
			f.Outs[i] = float64(rng.Intn(5))
		}
	}
	return f
}

func TestSolveForkExactValidAndBeatsHeuristics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 15; trial++ {
		f := randomCommFork(rng, 1+rng.Intn(4), false)
		speeds := make([]float64, 2+rng.Intn(2))
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(4))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(4)))
		for _, goal := range []Goal{{MinimizePeriod: true}, {}} {
			m, c, ok, err := SolveForkExact(context.Background(), f, pl, goal)
			if err != nil || !ok {
				t.Fatalf("SolveForkExact: %v ok=%v", err, ok)
			}
			if got, err := EvalFork(f, pl, m, false); err != nil || !numeric.Eq(goal.value(got), goal.value(c)) {
				t.Fatalf("trial %d: returned mapping re-evaluates to %v (err %v), cost %v", trial, got, err, c)
			}
			for i, h := range ForkHeuristicCandidates(f, pl) {
				hc, err := EvalFork(f, pl, h, false)
				if err != nil {
					t.Fatalf("trial %d heuristic %d invalid: %v", trial, i, err)
				}
				if numeric.Less(goal.value(hc), goal.value(c)) {
					t.Errorf("trial %d: heuristic %d cost %v beats exact %v", trial, i, hc, c)
				}
			}
		}
	}
}

func TestSolveForkExactCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randomCommFork(rng, 8, false)
	pl := Uniform([]float64{3, 2, 1, 4, 2, 1}, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, _, err := SolveForkExact(ctx, f, pl, Goal{}); err == nil {
		t.Fatal("cancelled fork solve returned nil error")
	}
}

// simpleForkOf converts a zero-data comm fork and mapping into the
// simplified model (single-processor replicated blocks).
func simpleForkOf(f Fork, m ForkMapping) (workflow.Fork, mapping.ForkMapping) {
	sf := workflow.NewFork(f.Root, f.Weights...)
	var sm mapping.ForkMapping
	for i, b := range m.Blocks {
		sm.Blocks = append(sm.Blocks, mapping.NewForkBlock(i == m.RootBlock, append([]int(nil), b.Leaves...), mapping.Replicated, b.Proc))
	}
	return sf, sm
}

// TestZeroDataForkMatchesSimplifiedEval is the Section 3.4 degeneration
// at the cost-model level: with every data size zero, the one-port
// flexible evaluation coincides with the simplified model on
// single-processor blocks, for random mappings.
func TestZeroDataForkMatchesSimplifiedEval(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(6)
		f := randomCommFork(rng, n, true)
		procs := 1 + rng.Intn(4)
		speeds := make([]float64, procs)
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(5))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(4)))
		spl := platform.New(speeds...)

		// Random single-processor-block mapping: each leaf picks a
		// processor, the root gets one too.
		blockOf := make(map[int]int)
		m := ForkMapping{}
		rootProc := rng.Intn(procs)
		m.Blocks = append(m.Blocks, ForkBlock{Proc: rootProc})
		blockOf[rootProc] = 0
		m.RootBlock = 0
		for l := 0; l < n; l++ {
			u := rng.Intn(procs)
			b, ok := blockOf[u]
			if !ok {
				b = len(m.Blocks)
				m.Blocks = append(m.Blocks, ForkBlock{Proc: u})
				blockOf[u] = b
			}
			m.Blocks[b].Leaves = append(m.Blocks[b].Leaves, l)
		}
		// Drop a leafless non-root tail block never created here; the root
		// block may legitimately hold no leaf.
		commCost, err := EvalFork(f, pl, m, false)
		if err != nil {
			t.Fatalf("trial %d: comm eval: %v", trial, err)
		}
		sf, sm := simpleForkOf(f, m)
		simpleCost, err := mapping.EvalFork(sf, spl, sm)
		if err != nil {
			t.Fatalf("trial %d: simplified eval: %v", trial, err)
		}
		if !numeric.Eq(commCost.Period, simpleCost.Period) || !numeric.Eq(commCost.Latency, simpleCost.Latency) {
			t.Fatalf("trial %d: zero-data comm cost %v != simplified cost %v\nmapping: %+v",
				trial, commCost, simpleCost, m)
		}
	}
}

// TestZeroDataForkSolverMatchesSimplifiedOracle is the solver-level
// degeneration: on all-zero data sizes, SolveForkExact must return
// exactly the optimum of the simplified-model fork solver restricted to
// the mappings the comm model can express (single-processor replicated
// blocks — replication and data-parallelism have no comm cost model,
// Section 3.3).
func TestZeroDataForkSolverMatchesSimplifiedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		f := randomCommFork(rng, n, true)
		procs := 1 + rng.Intn(3)
		speeds := make([]float64, procs)
		for i := range speeds {
			speeds[i] = float64(1 + rng.Intn(5))
		}
		pl := Uniform(speeds, float64(1+rng.Intn(4)))
		spl := platform.New(speeds...)
		sf := workflow.NewFork(f.Root, f.Weights...)

		for _, minimizePeriod := range []bool{true, false} {
			_, commCost, ok, err := SolveForkExact(context.Background(), f, pl, Goal{MinimizePeriod: minimizePeriod})
			if err != nil || !ok {
				t.Fatalf("SolveForkExact: %v ok=%v", err, ok)
			}
			oracle := bestSimplifiedSingleProc(sf, spl, minimizePeriod)
			got := commCost.Latency
			if minimizePeriod {
				got = commCost.Period
			}
			if !numeric.Eq(got, oracle) {
				t.Fatalf("trial %d minimizePeriod=%v: comm optimum %v != simplified oracle %v",
					trial, minimizePeriod, got, oracle)
			}
		}
	}
}

// bestSimplifiedSingleProc brute-forces the simplified-model fork optimum
// over single-processor replicated blocks.
func bestSimplifiedSingleProc(f workflow.Fork, pl platform.Platform, minimizePeriod bool) float64 {
	n, procs := f.Leaves(), pl.Processors()
	best := numeric.Inf
	assign := make([]int, n) // leaf -> block; block 0 is the root block
	blockProc := make([]int, n+1)
	used := make([]bool, procs)
	try := func(blocks int) {
		var sm mapping.ForkMapping
		for b := 0; b < blocks; b++ {
			sm.Blocks = append(sm.Blocks, mapping.NewForkBlock(b == 0, nil, mapping.Replicated, blockProc[b]))
		}
		for l := 0; l < n; l++ {
			sm.Blocks[assign[l]].Leaves = append(sm.Blocks[assign[l]].Leaves, l)
		}
		c, err := mapping.EvalFork(f, pl, sm)
		if err != nil {
			return
		}
		v := c.Latency
		if minimizePeriod {
			v = c.Period
		}
		if v < best {
			best = v
		}
	}
	var chooseProcs func(b, blocks int)
	chooseProcs = func(b, blocks int) {
		if b == blocks {
			try(blocks)
			return
		}
		for u := 0; u < procs; u++ {
			if used[u] {
				continue
			}
			used[u] = true
			blockProc[b] = u
			chooseProcs(b+1, blocks)
			used[u] = false
		}
	}
	var parts func(l, blocks int)
	parts = func(l, blocks int) {
		if l == n {
			chooseProcs(0, blocks)
			return
		}
		limit := blocks
		if blocks < procs {
			limit = blocks + 1
		}
		for b := 0; b < limit; b++ {
			assign[l] = b
			nb := blocks
			if b == blocks {
				nb = blocks + 1
			}
			parts(l+1, nb)
		}
	}
	parts(0, 1)
	return best
}
