package fullmodel

import (
	"math"

	"repliflow/internal/numeric"
)

// The optimizers below cover the two regimes the paper's related work
// identifies as tractable or small:
//
//   - fully homogeneous platforms: Subhlok-Vondran style dynamic programs
//     (processor identities are irrelevant, only the partition matters);
//   - heterogeneous platforms: exact search by a dynamic program over
//     (next stage, used-processor mask, processor of the previous
//     interval), exponential in p but exact — the natural baseline given
//     that the simplified special case is already NP-hard (Theorem 9).

// homIntervalCost is the Equation (1) bracket on a fully homogeneous
// platform: only the interval matters.
func homIntervalCost(p Pipeline, s, b float64, first, last int) float64 {
	return p.Data[first]/b + p.IntervalWork(first, last)/s + p.Data[last+1]/b
}

// HomLatencyUnderPeriod minimizes Equation (2) subject to every interval's
// Equation (1) bracket being at most maxPeriod, on a fully homogeneous
// platform. It returns the optimal mapping (processors 0..m-1 in interval
// order) or ok=false when the bound is infeasible. Complexity O(n²·p).
func HomLatencyUnderPeriod(p Pipeline, pl Platform, maxPeriod float64) (Mapping, Cost, bool, error) {
	if err := p.Validate(); err != nil {
		return Mapping{}, Cost{}, false, err
	}
	if err := pl.Validate(); err != nil {
		return Mapping{}, Cost{}, false, err
	}
	if !pl.IsFullyHomogeneous() {
		return Mapping{}, Cost{}, false, errPlatformNotHomogeneous
	}
	s, b := pl.Speeds[0], pl.InBand[0]
	n, maxQ := p.Stages(), pl.Processors()
	L, cut := newHomDP(n, maxQ)
	m, ok := homLUPInto(p, s, b, n, maxQ, L, cut, maxPeriod)
	if !ok {
		return Mapping{}, Cost{}, false, nil
	}
	c, err := Eval(p, pl, m)
	if err != nil {
		panic("fullmodel: DP produced invalid mapping: " + err.Error())
	}
	return m, c, true, nil
}

// newHomDP allocates the (n+1)x(maxQ+1) latency and cut tables of the
// homogeneous interval DP. The prepared solver allocates them once and
// reuses them across bounds; the one-shot path allocates fresh ones.
func newHomDP(n, maxQ int) ([][]float64, [][]int) {
	L := make([][]float64, n+1)
	cut := make([][]int, n+1)
	for i := range L {
		L[i] = make([]float64, maxQ+1)
		cut[i] = make([]int, maxQ+1)
	}
	return L, cut
}

// homLUPInto runs the latency-under-period DP in the given tables
// (resetting them first) and reconstructs the optimal mapping. Both the
// one-shot entry point and the prepared solver run this exact function,
// so reused tables cannot change a bit of the result.
// L[i][q]: min latency for stages i.. with q processors left.
func homLUPInto(p Pipeline, s, b float64, n, maxQ int, L [][]float64, cut [][]int, maxPeriod float64) (Mapping, bool) {
	const unset = -1.0
	for i := range L {
		for q := range L[i] {
			L[i][q] = unset
		}
	}
	var solve func(i, q int) float64
	solve = func(i, q int) float64 {
		if i == n {
			return 0
		}
		if q == 0 {
			return numeric.Inf
		}
		if L[i][q] != unset {
			return L[i][q]
		}
		best := numeric.Inf
		bestJ := -1
		for j := i; j < n; j++ {
			c := homIntervalCost(p, s, b, i, j)
			if numeric.Greater(c, maxPeriod) {
				continue
			}
			rest := solve(j+1, q-1)
			if v := c + rest; numeric.Less(v, best) {
				best = v
				bestJ = j
			}
		}
		L[i][q] = best
		cut[i][q] = bestJ
		return best
	}
	if math.IsInf(solve(0, maxQ), 1) {
		return Mapping{}, false
	}
	var m Mapping
	i, q := 0, maxQ
	for i < n {
		j := cut[i][q]
		m.Bounds = append(m.Bounds, j+1)
		m.Alloc = append(m.Alloc, len(m.Alloc))
		i, q = j+1, q-1
	}
	return m, true
}

// homPeriodCandidates lists every Equation (1) bracket value on a fully
// homogeneous platform.
func homPeriodCandidates(p Pipeline, s, b float64) []float64 {
	n := p.Stages()
	var cands []float64
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			cands = append(cands, homIntervalCost(p, s, b, i, j))
		}
	}
	return numeric.DedupSorted(cands)
}

// HomPeriod minimizes Equation (1) on a fully homogeneous platform by
// binary search over the finite candidate set with the latency DP as the
// feasibility check.
func HomPeriod(p Pipeline, pl Platform) (Mapping, Cost, error) {
	if err := p.Validate(); err != nil {
		return Mapping{}, Cost{}, err
	}
	if err := pl.Validate(); err != nil {
		return Mapping{}, Cost{}, err
	}
	if !pl.IsFullyHomogeneous() {
		return Mapping{}, Cost{}, errPlatformNotHomogeneous
	}
	cands := homPeriodCandidates(p, pl.Speeds[0], pl.InBand[0])
	lo, hi := 0, len(cands)-1
	var bestM Mapping
	var bestC Cost
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		m, c, ok, err := HomLatencyUnderPeriod(p, pl, cands[mid])
		if err != nil {
			return Mapping{}, Cost{}, err
		}
		if ok {
			bestM, bestC = m, c
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		panic("fullmodel: largest candidate period must be feasible")
	}
	return bestM, bestC, nil
}

// HomLatency minimizes Equation (2) on a fully homogeneous platform
// (no period constraint).
func HomLatency(p Pipeline, pl Platform) (Mapping, Cost, error) {
	m, c, ok, err := HomLatencyUnderPeriod(p, pl, numeric.Inf)
	if err != nil {
		return Mapping{}, Cost{}, err
	}
	if !ok {
		panic("fullmodel: unconstrained latency DP infeasible")
	}
	return m, c, nil
}

// errPlatformNotHomogeneous mirrors the simplified-model errors.
var errPlatformNotHomogeneous = errHomogeneous{}

type errHomogeneous struct{}

func (errHomogeneous) Error() string {
	return "fullmodel: platform is not fully homogeneous (use ExactPeriod / ExactLatency)"
}

// ExactSolve exhaustively optimizes the heterogeneous full model by
// enumerating all interval partitions and distinct-processor allocations,
// evaluating each complete mapping with Eval (a bracket's value depends on
// the neighbouring intervals' processors, so partial mappings cannot be
// scored incrementally without care — full evaluation keeps the baseline
// obviously correct). minimizePeriod selects the objective; periodCap
// bounds every bracket (use numeric.Inf for none). Exponential in p;
// intended for p <= ~8.
func ExactSolve(p Pipeline, pl Platform, minimizePeriod bool, periodCap float64) (Mapping, Cost, bool, error) {
	if err := p.Validate(); err != nil {
		return Mapping{}, Cost{}, false, err
	}
	if err := pl.Validate(); err != nil {
		return Mapping{}, Cost{}, false, err
	}
	n, procs := p.Stages(), pl.Processors()
	best := numeric.Inf
	var bestM Mapping
	var cur Mapping
	var walk func(i, mask int)
	walk = func(i, mask int) {
		if i == n {
			c, err := Eval(p, pl, Mapping{Bounds: cur.Bounds, Alloc: cur.Alloc})
			if err != nil {
				panic("fullmodel: enumeration built invalid mapping: " + err.Error())
			}
			if numeric.Greater(c.Period, periodCap) {
				return
			}
			obj := c.Latency
			if minimizePeriod {
				obj = c.Period
			}
			if numeric.Less(obj, best) {
				best = obj
				bestM = Mapping{
					Bounds: append([]int(nil), cur.Bounds...),
					Alloc:  append([]int(nil), cur.Alloc...),
				}
			}
			return
		}
		for j := i; j < n; j++ {
			for u := 0; u < procs; u++ {
				if mask&(1<<u) != 0 {
					continue
				}
				cur.Bounds = append(cur.Bounds, j+1)
				cur.Alloc = append(cur.Alloc, u)
				walk(j+1, mask|1<<u)
				cur.Bounds = cur.Bounds[:len(cur.Bounds)-1]
				cur.Alloc = cur.Alloc[:len(cur.Alloc)-1]
			}
		}
	}
	walk(0, 0)
	if math.IsInf(best, 1) {
		return Mapping{}, Cost{}, false, nil
	}
	c, err := Eval(p, pl, bestM)
	if err != nil {
		panic("fullmodel: best mapping invalid: " + err.Error())
	}
	return bestM, c, true, nil
}
