// Package fullmodel implements the general, communication-aware model of
// Benoit & Robert (RR-6308, Sections 3.2-3.3) for pipeline graphs: stages
// carry data sizes delta_0..delta_n, the platform carries a bandwidth
// matrix (plus the special input/output processors Pin and Pout), and an
// interval mapping assigns each interval of consecutive stages to one
// distinct processor. The period and latency follow the paper's
// Equations (1) and (2):
//
//	T_period  = max_j [ d_{dj-1}/b(alloc(j-1),alloc(j)) + W_j/s(alloc(j))
//	                    + d_{ej}/b(alloc(j),alloc(j+1)) ]
//	T_latency = sum_j [ same three terms ]
//
// with alloc(0) = Pin and alloc(m+1) = Pout.
//
// The paper explains (Section 3.3) why replication and data-parallelism
// have no clean cost model once communications enter the picture; this
// package therefore covers the plain interval-mapping model, serving as
// the paper's "future work" bridge: dynamic programming optimizers for
// fully homogeneous platforms (in the style of Subhlok & Vondran) and an
// exact exponential solver for heterogeneous ones. Setting all data sizes
// to zero recovers the simplified model without replication, which the
// tests exploit for cross-validation.
package fullmodel

import (
	"errors"
	"fmt"
	"strings"

	"repliflow/internal/numeric"
	"repliflow/internal/workflow"
)

// Pipeline is a pipeline whose stages also carry the data sizes of
// Figure 1: Data[k] is delta_k, the size of the output of stage S_k
// (Data[0] = delta_0 is the input of S_1 from the outside world, Data[n]
// the final output). len(Data) = len(Weights) + 1.
type Pipeline struct {
	Weights []float64
	Data    []float64
}

// NewPipeline builds a communication-aware pipeline.
func NewPipeline(weights, data []float64) Pipeline {
	return Pipeline{
		Weights: append([]float64(nil), weights...),
		Data:    append([]float64(nil), data...),
	}
}

// FromSimple lifts a simplified-model pipeline into the full model with
// uniform data size d between all stages.
func FromSimple(p workflow.Pipeline, d float64) Pipeline {
	data := make([]float64, p.Stages()+1)
	for i := range data {
		data[i] = d
	}
	return Pipeline{Weights: append([]float64(nil), p.Weights...), Data: data}
}

// Stages returns the number of stages.
func (p Pipeline) Stages() int { return len(p.Weights) }

// IntervalWork returns the sum of weights of stages i..j (0-indexed).
func (p Pipeline) IntervalWork(i, j int) float64 {
	var s float64
	for k := i; k <= j; k++ {
		s += p.Weights[k]
	}
	return s
}

// Validate checks the pipeline is well formed.
func (p Pipeline) Validate() error {
	if len(p.Weights) == 0 {
		return errors.New("fullmodel: pipeline has no stage")
	}
	if len(p.Data) != len(p.Weights)+1 {
		return fmt.Errorf("fullmodel: %d data sizes for %d stages (want n+1)", len(p.Data), len(p.Weights))
	}
	for i, w := range p.Weights {
		if w <= 0 {
			return fmt.Errorf("fullmodel: stage S%d has non-positive weight %v", i+1, w)
		}
	}
	for i, d := range p.Data {
		if d < 0 {
			return fmt.Errorf("fullmodel: negative data size delta_%d = %v", i, d)
		}
	}
	return nil
}

// Platform is a set of processors with speeds and a full bandwidth
// description. Two virtual processors Pin and Pout hold the workflow input
// and output (Section 3.2); InBand[u] is the bandwidth Pin -> Pu and
// OutBand[u] the bandwidth Pu -> Pout.
type Platform struct {
	Speeds  []float64
	Band    [][]float64 // Band[u][v]: bandwidth of link Pu -> Pv (u != v)
	InBand  []float64
	OutBand []float64
}

// Uniform returns a platform with the given speeds where every link —
// including those to Pin and Pout — has bandwidth b.
func Uniform(speeds []float64, b float64) Platform {
	p := len(speeds)
	pl := Platform{
		Speeds:  append([]float64(nil), speeds...),
		Band:    make([][]float64, p),
		InBand:  make([]float64, p),
		OutBand: make([]float64, p),
	}
	for u := 0; u < p; u++ {
		pl.Band[u] = make([]float64, p)
		for v := 0; v < p; v++ {
			if u != v {
				pl.Band[u][v] = b
			}
		}
		pl.InBand[u] = b
		pl.OutBand[u] = b
	}
	return pl
}

// Processors returns the number of (real) processors.
func (pl Platform) Processors() int { return len(pl.Speeds) }

// IsFullyHomogeneous reports whether all speeds and all bandwidths
// (including Pin/Pout links) are identical — the setting of the
// Subhlok-Vondran dynamic programs.
func (pl Platform) IsFullyHomogeneous() bool {
	s0 := pl.Speeds[0]
	for _, s := range pl.Speeds {
		if !numeric.Eq(s, s0) {
			return false
		}
	}
	b0 := pl.InBand[0]
	for u := range pl.Speeds {
		if !numeric.Eq(pl.InBand[u], b0) || !numeric.Eq(pl.OutBand[u], b0) {
			return false
		}
		for v := range pl.Speeds {
			if u != v && !numeric.Eq(pl.Band[u][v], b0) {
				return false
			}
		}
	}
	return true
}

// Validate checks the platform is well formed.
func (pl Platform) Validate() error {
	p := len(pl.Speeds)
	if p == 0 {
		return errors.New("fullmodel: no processor")
	}
	if len(pl.Band) != p || len(pl.InBand) != p || len(pl.OutBand) != p {
		return errors.New("fullmodel: bandwidth tables do not match the processor count")
	}
	for u, s := range pl.Speeds {
		if s <= 0 {
			return fmt.Errorf("fullmodel: processor P%d has non-positive speed %v", u+1, s)
		}
		if len(pl.Band[u]) != p {
			return fmt.Errorf("fullmodel: bandwidth row %d has wrong length", u)
		}
		if pl.InBand[u] <= 0 || pl.OutBand[u] <= 0 {
			return fmt.Errorf("fullmodel: non-positive Pin/Pout bandwidth at P%d", u+1)
		}
		for v, b := range pl.Band[u] {
			if u != v && b <= 0 {
				return fmt.Errorf("fullmodel: non-positive bandwidth P%d -> P%d", u+1, v+1)
			}
		}
	}
	return nil
}

// Mapping assigns interval j (stages Bounds[j-1]..Bounds[j]-1, with an
// implicit leading 0) to processor Alloc[j]. Processors must be distinct.
type Mapping struct {
	Bounds []int // exclusive end of each interval, ascending, last = n
	Alloc  []int // processor of each interval
}

// Intervals returns the number of intervals.
func (m Mapping) Intervals() int { return len(m.Bounds) }

// String renders the mapping in the compact interval form of the
// simplified-model mappings.
func (m Mapping) String() string {
	parts := make([]string, len(m.Bounds))
	first := 0
	for j, end := range m.Bounds {
		span := fmt.Sprintf("S%d", first+1)
		if end-1 != first {
			span = fmt.Sprintf("S%d..S%d", first+1, end)
		}
		parts[j] = fmt.Sprintf("[%s on P%d]", span, m.Alloc[j]+1)
		first = end
	}
	return strings.Join(parts, " ")
}

// Validate checks the mapping against the pipeline and platform.
func Validate(p Pipeline, pl Platform, m Mapping) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if len(m.Bounds) == 0 || len(m.Bounds) != len(m.Alloc) {
		return errors.New("fullmodel: mapping bounds/alloc mismatch or empty")
	}
	prev := 0
	seen := make(map[int]bool)
	for j, end := range m.Bounds {
		if end <= prev {
			return fmt.Errorf("fullmodel: interval %d empty or out of order", j)
		}
		prev = end
		u := m.Alloc[j]
		if u < 0 || u >= pl.Processors() {
			return fmt.Errorf("fullmodel: interval %d allocated to invalid processor %d", j, u)
		}
		if seen[u] {
			return fmt.Errorf("fullmodel: processor P%d allocated twice", u+1)
		}
		seen[u] = true
	}
	if prev != p.Stages() {
		return fmt.Errorf("fullmodel: intervals cover [0,%d), want [0,%d)", prev, p.Stages())
	}
	return nil
}

// intervalCost returns the Equation (1) bracket of one interval: input
// communication + computation + output communication. prev is the
// processor of the previous interval (-1 = Pin), next the processor of the
// following interval (-1 = Pout).
func intervalCost(p Pipeline, pl Platform, first, last, proc, prev, next int) float64 {
	return intervalCostW(p, pl, p.IntervalWork(first, last), first, last, proc, prev, next)
}

// intervalCostW is intervalCost with the interval work precomputed. The
// prepared solvers pass entries of a work table built by the same
// sequential summation as IntervalWork, so the bracket value is
// bit-identical either way.
func intervalCostW(p Pipeline, pl Platform, work float64, first, last, proc, prev, next int) float64 {
	var in float64
	if prev < 0 {
		in = p.Data[first] / pl.InBand[proc]
	} else {
		in = p.Data[first] / pl.Band[prev][proc]
	}
	var out float64
	if next < 0 {
		out = p.Data[last+1] / pl.OutBand[proc]
	} else {
		out = p.Data[last+1] / pl.Band[proc][next]
	}
	return in + work/pl.Speeds[proc] + out
}

// Cost is the (period, latency) of a mapping.
type Cost struct {
	Period  float64
	Latency float64
}

// Eval computes Equations (1) and (2) for a validated mapping.
func Eval(p Pipeline, pl Platform, m Mapping) (Cost, error) {
	if err := Validate(p, pl, m); err != nil {
		return Cost{}, err
	}
	return evalTrusted(p, pl, m), nil
}

// evalTrusted is Eval without the validation pass, for mappings that are
// valid by construction (DP reconstructions, enumeration leaves). Both
// entry points share this loop, so their costs are bit-identical.
func evalTrusted(p Pipeline, pl Platform, m Mapping) Cost {
	var c Cost
	first := 0
	for j, end := range m.Bounds {
		prev, next := -1, -1
		if j > 0 {
			prev = m.Alloc[j-1]
		}
		if j < len(m.Bounds)-1 {
			next = m.Alloc[j+1]
		}
		v := intervalCost(p, pl, first, end-1, m.Alloc[j], prev, next)
		if v > c.Period {
			c.Period = v
		}
		c.Latency += v
		first = end
	}
	return c
}
