package fullmodel

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repliflow/internal/numeric"
)

// Bandwidth describes the interconnect of a communication-aware instance
// in its canonical wire form: either a single uniform link bandwidth
// (every link, including Pin/Pout) or full tables. Exactly one
// representation must be used.
type Bandwidth struct {
	Uniform float64
	Links   [][]float64 // Links[u][v]: bandwidth Pu -> Pv (u != v)
	In      []float64   // Pin -> Pu
	Out     []float64   // Pu -> Pout
}

// Validate checks the bandwidth description against a processor count.
func (b Bandwidth) Validate(p int) error {
	if b.Uniform != 0 {
		if b.Uniform < 0 {
			return fmt.Errorf("fullmodel: negative uniform bandwidth %v", b.Uniform)
		}
		if b.Links != nil || b.In != nil || b.Out != nil {
			return errors.New("fullmodel: bandwidth gives both uniform and tables")
		}
		return nil
	}
	if len(b.Links) != p || len(b.In) != p || len(b.Out) != p {
		return fmt.Errorf("fullmodel: bandwidth tables sized for %d/%d/%d processors, want %d",
			len(b.Links), len(b.In), len(b.Out), p)
	}
	for u := 0; u < p; u++ {
		if len(b.Links[u]) != p {
			return fmt.Errorf("fullmodel: bandwidth row %d has %d entries, want %d", u, len(b.Links[u]), p)
		}
		if b.In[u] <= 0 || b.Out[u] <= 0 {
			return fmt.Errorf("fullmodel: non-positive Pin/Pout bandwidth at P%d", u+1)
		}
		for v := 0; v < p; v++ {
			if u != v && b.Links[u][v] <= 0 {
				return fmt.Errorf("fullmodel: non-positive bandwidth P%d -> P%d", u+1, v+1)
			}
		}
	}
	return nil
}

// Apply binds the bandwidth description to processor speeds, yielding the
// evaluation platform.
func (b Bandwidth) Apply(speeds []float64) Platform {
	if b.Uniform != 0 {
		return Uniform(speeds, b.Uniform)
	}
	return Platform{
		Speeds:  append([]float64(nil), speeds...),
		Band:    b.Links,
		InBand:  b.In,
		OutBand: b.Out,
	}
}

// IsHomogeneous reports whether all stage weights and all data sizes are
// uniform (the "homogeneous graph" axis of the dispatch key).
func (p Pipeline) IsHomogeneous() bool {
	for _, w := range p.Weights[1:] {
		if !numeric.Eq(w, p.Weights[0]) {
			return false
		}
	}
	for _, d := range p.Data[1:] {
		if !numeric.Eq(d, p.Data[0]) {
			return false
		}
	}
	return true
}

// TotalWork returns the sum of the stage weights.
func (p Pipeline) TotalWork() float64 { return numeric.SumFloat(p.Weights) }

// Leaves returns the number of independent stages of the fork.
func (f Fork) Leaves() int { return len(f.Weights) }

// TotalWork returns the root weight plus the leaf weights.
func (f Fork) TotalWork() float64 { return f.Root + numeric.SumFloat(f.Weights) }

// IsHomogeneous reports whether the leaves share one weight and one
// output size.
func (f Fork) IsHomogeneous() bool {
	if len(f.Weights) == 0 {
		return true
	}
	for i := range f.Weights[1:] {
		if !numeric.Eq(f.Weights[i+1], f.Weights[0]) || !numeric.Eq(f.Outs[i+1], f.Outs[0]) {
			return false
		}
	}
	return true
}

// Goal selects the optimized metric and the caps of a communication-aware
// solve: minimize one metric subject to optional caps (0 = unbounded).
type Goal struct {
	MinimizePeriod bool
	PeriodCap      float64
	LatencyCap     float64
}

func (g Goal) feasible(c Cost) bool {
	if g.PeriodCap > 0 && numeric.Greater(c.Period, g.PeriodCap) {
		return false
	}
	if g.LatencyCap > 0 && numeric.Greater(c.Latency, g.LatencyCap) {
		return false
	}
	return true
}

func (g Goal) value(c Cost) float64 {
	if g.MinimizePeriod {
		return c.Period
	}
	return c.Latency
}

// SolveHom optimizes a comm-aware pipeline on a fully homogeneous
// platform for any of the four objectives, via the Subhlok-Vondran style
// dynamic programs: the latency-under-period DP directly, and binary
// search over the finite candidate period set for the period objectives.
// ok is false when a cap is infeasible.
func SolveHom(p Pipeline, pl Platform, goal Goal) (Mapping, Cost, bool, error) {
	pp, err := NewPipelinePrepared(p, pl)
	if err != nil {
		return Mapping{}, Cost{}, false, err
	}
	return pp.SolveHom(goal)
}

func goalNeedsPeriodSearch(goal Goal) bool { return goal.MinimizePeriod }

// SolveExact exhaustively optimizes the heterogeneous comm-aware pipeline
// for any objective, with context cancellation. Exponential in p;
// intended for small platforms (the exhaustive dispatch limits).
func SolveExact(ctx context.Context, p Pipeline, pl Platform, goal Goal) (Mapping, Cost, bool, error) {
	pp, err := NewPipelinePrepared(p, pl)
	if err != nil {
		return Mapping{}, Cost{}, false, err
	}
	return pp.SolveExact(ctx, goal)
}

// HeuristicCandidates returns deterministic seed mappings for oversized
// heterogeneous comm-aware pipelines: the whole chain on the fastest
// processor, and for each interval count a balanced work split with the
// heaviest intervals on the fastest processors.
func HeuristicCandidates(p Pipeline, pl Platform) []Mapping {
	n, procs := p.Stages(), pl.Processors()
	fastest := 0
	for u := 1; u < procs; u++ {
		if pl.Speeds[u] > pl.Speeds[fastest] {
			fastest = u
		}
	}
	out := []Mapping{{Bounds: []int{n}, Alloc: []int{fastest}}}
	maxK := procs
	if n < maxK {
		maxK = n
	}
	for k := 2; k <= maxK; k++ {
		target := p.TotalWork() / float64(k)
		var bounds []int
		var acc float64
		for i := 0; i < n; i++ {
			acc += p.Weights[i]
			if acc >= target && len(bounds) < k-1 && n-i-1 >= k-1-len(bounds) {
				bounds = append(bounds, i+1)
				acc = 0
			}
		}
		bounds = append(bounds, n)
		// Heaviest interval gets the fastest processor.
		work := make([]float64, len(bounds))
		first := 0
		for j, end := range bounds {
			work[j] = p.IntervalWork(first, end-1)
			first = end
		}
		byWork := make([]int, len(bounds))
		for i := range byWork {
			byWork[i] = i
		}
		sort.SliceStable(byWork, func(a, b int) bool { return work[byWork[a]] > work[byWork[b]] })
		bySpeed := make([]int, procs)
		for i := range bySpeed {
			bySpeed[i] = i
		}
		sort.SliceStable(bySpeed, func(a, b int) bool { return pl.Speeds[bySpeed[a]] > pl.Speeds[bySpeed[b]] })
		alloc := make([]int, len(bounds))
		for rank, j := range byWork {
			alloc[j] = bySpeed[rank]
		}
		out = append(out, Mapping{Bounds: bounds, Alloc: alloc})
	}
	return out
}

// SolveForkExact exhaustively optimizes the one-port fork: it enumerates
// every partition of the leaves into blocks (block 0 is the root block
// and may hold no leaf), every injective processor assignment, and
// evaluates each mapping with the latency-optimal send order (the period
// is send-order independent, so one order per assignment suffices for
// both metrics). Runs under the flexible model of EvalFork.
func SolveForkExact(ctx context.Context, f Fork, pl Platform, goal Goal) (ForkMapping, Cost, bool, error) {
	fp, err := NewForkPrepared(f, pl)
	if err != nil {
		return ForkMapping{}, Cost{}, false, err
	}
	return fp.SolveExact(ctx, goal)
}

// ForkHeuristicCandidates returns deterministic seed mappings for
// oversized one-port forks: everything on the fastest processor, the
// root alone with the leaves spread LPT over the other processors, and
// an LPT spread over all processors with the root block competing too.
func ForkHeuristicCandidates(f Fork, pl Platform) []ForkMapping {
	n, procs := f.Leaves(), pl.Processors()
	fastest := 0
	for u := 1; u < procs; u++ {
		if pl.Speeds[u] > pl.Speeds[fastest] {
			fastest = u
		}
	}
	allLeaves := make([]int, n)
	for i := range allLeaves {
		allLeaves[i] = i
	}
	out := []ForkMapping{{RootBlock: 0, Blocks: []ForkBlock{{Proc: fastest, Leaves: allLeaves}}}}
	if procs == 1 || n == 0 {
		return finishOrders(f, pl, out)
	}
	order := append([]int(nil), allLeaves...)
	sort.SliceStable(order, func(a, b int) bool { return f.Weights[order[a]] > f.Weights[order[b]] })
	spread := func(withRoot bool) ForkMapping {
		m := ForkMapping{RootBlock: 0, Blocks: []ForkBlock{{Proc: fastest}}}
		slot := make(map[int]int) // proc -> block index
		slot[fastest] = 0
		load := make([]float64, procs)
		load[fastest] = f.Root / pl.Speeds[fastest]
		for _, l := range order {
			bestU, bestT := -1, math.Inf(1)
			for u := 0; u < procs; u++ {
				if !withRoot && u == fastest {
					continue
				}
				if t := load[u] + f.Weights[l]/pl.Speeds[u]; t < bestT {
					bestU, bestT = u, t
				}
			}
			b, ok := slot[bestU]
			if !ok {
				b = len(m.Blocks)
				m.Blocks = append(m.Blocks, ForkBlock{Proc: bestU})
				slot[bestU] = b
			}
			m.Blocks[b].Leaves = append(m.Blocks[b].Leaves, l)
			load[bestU] = bestT
		}
		for _, b := range m.Blocks {
			sort.Ints(b.Leaves)
		}
		return m
	}
	out = append(out, spread(false), spread(true))
	return finishOrders(f, pl, out)
}

func finishOrders(f Fork, pl Platform, ms []ForkMapping) []ForkMapping {
	for i := range ms {
		ms[i].SendOrder = OptimalSendOrder(f, pl, ms[i])
	}
	return ms
}

// PeriodCandidates enumerates the exact set of achievable interval
// periods of a pipeline: Equation (1) brackets over every interval, every
// hosting processor and every neighbour-processor combination (with the
// ends standing in for Pin/Pout). The period of any mapping is the
// maximum of its interval costs, so the optimum of any objective lies in
// this set — which is what makes Pareto sweeps over it exact on
// exactly-solved cells. Ascending and deduplicated.
func PeriodCandidates(p Pipeline, pl Platform) []float64 {
	n, procs := p.Stages(), pl.Processors()
	var cands []float64
	for first := 0; first < n; first++ {
		for last := first; last < n; last++ {
			for u := 0; u < procs; u++ {
				for prev := -1; prev < procs; prev++ {
					if prev == u {
						continue
					}
					for next := -1; next < procs; next++ {
						if next == u {
							continue
						}
						cands = append(cands, intervalCost(p, pl, first, last, u, prev, next))
					}
				}
			}
		}
	}
	return numeric.DedupSorted(cands)
}
