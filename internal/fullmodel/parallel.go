package fullmodel

import (
	"context"
	"sync"
	"sync/atomic"

	"repliflow/internal/incumbent"
	"repliflow/internal/numeric"
)

// Parallel heterogeneous comm-pipeline scan. The enumeration of
// SolveExact is partitioned by its first choice — the first interval's
// end stage j and hosting processor u, claimed chunk-by-chunk from an
// atomic counter so fast workers absorb the skew between subtree sizes.
// Each chunk keeps a chunk-local best under the serial install rule;
// chunks share a monotone incumbent.Bound so an improvement found in
// one chunk prunes every other immediately.
//
// Determinism contract: chunk index order equals the serial visit order,
// the fold walks chunks in index order with the serial strict-improvement
// rule, and the shared bound only skips candidates that are
// strictly-beyond-tolerance worse than an achieved feasible value (which
// therefore can never win the fold). The parallel result is byte-identical
// to the serial scan regardless of worker count or timing.

// parChunk is one chunk-local result of the partitioned scan.
type parChunk struct {
	m     Mapping
	c     Cost
	found bool
}

func (pp *PipelinePrepared) solveExactPar(ctx context.Context, goal Goal) (Mapping, Cost, bool, error) {
	n, procs := pp.n, pp.pl.Processors()
	nchunks := n * procs
	workers := pp.par
	if workers > nchunks {
		workers = nchunks
	}
	results := make([]parChunk, nchunks)
	bound := incumbent.NewBound()
	var next atomic.Int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			curB := make([]int, 0, n)
			curA := make([]int, 0, n)
			iter := 0
			var ctxErr error
			var local parChunk
			var walk func(i, mask int)
			walk = func(i, mask int) {
				if ctxErr != nil {
					return
				}
				if i == n {
					iter++
					if iter%256 == 0 {
						if err := ctx.Err(); err != nil {
							ctxErr = err
							return
						}
					}
					c := evalTrusted(pp.p, pp.pl, Mapping{Bounds: curB, Alloc: curA})
					if !goal.feasible(c) {
						return
					}
					v := goal.value(c)
					if numeric.Greater(v, bound.Load()) {
						return
					}
					if !local.found || numeric.Less(v, goal.value(local.c)) {
						local.m = Mapping{
							Bounds: append([]int(nil), curB...),
							Alloc:  append([]int(nil), curA...),
						}
						local.c, local.found = c, true
						bound.Tighten(v)
					}
					return
				}
				for j := i; j < n; j++ {
					for u := 0; u < procs; u++ {
						if mask&(1<<u) != 0 {
							continue
						}
						if pp.parPrune(goal, i, j, u, bound) {
							continue
						}
						curB = append(curB, j+1)
						curA = append(curA, u)
						walk(j+1, mask|1<<u)
						curB = curB[:len(curB)-1]
						curA = curA[:len(curA)-1]
					}
				}
			}
			for {
				if ctxErr != nil {
					errs[w] = ctxErr
					return
				}
				chunk := int(next.Add(1) - 1)
				if chunk >= nchunks {
					return
				}
				j, u := chunk/procs, chunk%procs
				local = parChunk{}
				if pp.parPrune(goal, 0, j, u, bound) {
					continue
				}
				curB = append(curB[:0], j+1)
				curA = append(curA[:0], u)
				walk(j+1, 1<<u)
				results[chunk] = local
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Mapping{}, Cost{}, false, err
		}
	}
	var (
		bestM Mapping
		bestC Cost
		found bool
	)
	for c := 0; c < nchunks; c++ {
		r := results[c]
		if !r.found {
			continue
		}
		if !found || numeric.Less(goal.value(r.c), goal.value(bestC)) {
			bestM, bestC, found = r.m, r.c, true
		}
	}
	return bestM, bestC, found, nil
}

// parPrune is pruneInterval against the shared bound: the work/speed
// lower bound must clear the comparison tolerance (surelyGreater), so a
// pruned subtree contains only candidates the leaf-side bound check
// would discard anyway.
func (pp *PipelinePrepared) parPrune(goal Goal, i, j, u int, bound *incumbent.Bound) bool {
	est := pp.workTbl[i][j] * pp.inv[u] * lbSlack
	if goal.PeriodCap > 0 && surelyGreater(est, goal.PeriodCap) {
		return true
	}
	return goal.MinimizePeriod && surelyGreater(est, bound.Load())
}
