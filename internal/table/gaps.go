package table

import (
	"fmt"
	"math/rand"
	"strings"

	"repliflow/internal/exhaustive"
	"repliflow/internal/heuristics"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// GapReport summarizes the quality of one polynomial heuristic on one
// NP-hard cell: the distribution of heuristic/optimal ratios over random
// instances.
type GapReport struct {
	Name      string
	Cell      string
	Trials    int
	OptimalIn int // instances solved to optimality
	MeanGap   float64
	WorstGap  float64
}

// MeasureHeuristicGaps runs every dedicated heuristic against the exact
// exponential baselines on `trials` random instances each.
func MeasureHeuristicGaps(seed int64, trials int) []GapReport {
	rng := rand.New(rand.NewSource(seed))
	reports := []GapReport{
		{Name: "chains+replication+local-search", Cell: "het pipeline period, no DP (Thm 9)"},
		{Name: "contiguous-group DP", Cell: "pipeline latency, DP, het platform (Thm 5)"},
		{Name: "LPT list scheduling", Cell: "het fork latency, hom platform (Thm 12)"},
		{Name: "speed-aware greedy", Cell: "het fork period, het platform (Thm 15)"},
		{Name: "fork-join greedy", Cell: "het fork-join latency, het platform"},
	}
	record := func(r *GapReport, heurVal, optVal float64) {
		gap := heurVal / optVal
		r.Trials++
		r.MeanGap += gap
		if numeric.Eq(gap, 1) {
			r.OptimalIn++
		}
		if gap > r.WorstGap {
			r.WorstGap = gap
		}
	}

	for t := 0; t < trials; t++ {
		// Theorem 9 cell.
		{
			p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
			pl := platform.Random(rng, 2+rng.Intn(3), 6)
			if _, hc, err := heuristics.HetPipelinePeriodNoDP(p, pl); err == nil {
				if opt, ok := exhaustive.PipelinePeriod(p, pl, false); ok {
					record(&reports[0], hc.Period, opt.Cost.Period)
				}
			}
		}
		// Theorem 5 cell.
		{
			p := workflow.RandomPipeline(rng, 2+rng.Intn(4), 12)
			pl := platform.Random(rng, 2+rng.Intn(3), 6)
			if _, hc, err := heuristics.HetPipelineContiguousDP(p, pl, false); err == nil {
				if opt, ok := exhaustive.PipelineLatency(p, pl, true); ok {
					record(&reports[1], hc.Latency, opt.Cost.Latency)
				}
			}
		}
		// Theorem 12 cell.
		{
			f := workflow.RandomFork(rng, 2+rng.Intn(3), 12)
			pl := platform.Homogeneous(2+rng.Intn(2), 1)
			if _, hc, err := heuristics.HetForkLatencyLPT(f, pl); err == nil {
				if opt, ok := exhaustive.ForkLatency(f, pl, false); ok {
					record(&reports[2], hc.Latency, opt.Cost.Latency)
				}
			}
		}
		// Theorem 15 cell.
		{
			f := workflow.RandomFork(rng, 2+rng.Intn(3), 12)
			pl := platform.Random(rng, 2, 5)
			if _, hc, err := heuristics.HetForkPeriodGreedy(f, pl); err == nil {
				if opt, ok := exhaustive.ForkPeriod(f, pl, false); ok {
					record(&reports[3], hc.Period, opt.Cost.Period)
				}
			}
		}
		// Fork-join cell.
		{
			fj := workflow.RandomForkJoin(rng, 1+rng.Intn(3), 9)
			pl := platform.Random(rng, 2+rng.Intn(2), 5)
			if _, hc, err := heuristics.HetForkJoinGreedy(fj, pl, false); err == nil {
				if opt, ok := exhaustive.ForkJoinLatency(fj, pl, false); ok {
					record(&reports[4], hc.Latency, opt.Cost.Latency)
				}
			}
		}
	}
	for i := range reports {
		if reports[i].Trials > 0 {
			reports[i].MeanGap /= float64(reports[i].Trials)
		}
	}
	return reports
}

// RenderGaps formats the gap reports.
func RenderGaps(reports []GapReport) string {
	var b strings.Builder
	b.WriteString("Heuristic quality on NP-hard cells (ratio to the exact optimum)\n")
	fmt.Fprintf(&b, "  %-34s %-44s %7s %9s %9s %9s\n",
		"heuristic", "cell", "trials", "optimal", "mean", "worst")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %-34s %-44s %7d %9d %9.3f %9.3f\n",
			r.Name, r.Cell, r.Trials, r.OptimalIn, r.MeanGap, r.WorstGap)
	}
	return b.String()
}
