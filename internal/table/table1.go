package table

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"repliflow/internal/core"
	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// GraphRow names a Table 1 row.
type GraphRow string

// The four application rows of Table 1.
const (
	HomPipeline GraphRow = "Hom. pipeline"
	HetPipeline GraphRow = "Het. pipeline"
	HomFork     GraphRow = "Hom. fork"
	HetFork     GraphRow = "Het. fork"
)

// Cell identifies one Table 1 cell: a platform half, a graph row, a model
// column and an objective sub-column.
type Cell struct {
	PlatformHom bool
	Graph       GraphRow
	WithDP      bool
	Objective   core.Objective // MinPeriod, MinLatency or LatencyUnderPeriod ("both")
}

// String implements fmt.Stringer.
func (c Cell) String() string {
	plat := "Het. platform"
	if c.PlatformHom {
		plat = "Hom. platform"
	}
	model := "without data-par"
	if c.WithDP {
		model = "with data-par"
	}
	obj := map[core.Objective]string{
		core.MinPeriod: "P", core.MinLatency: "L", core.LatencyUnderPeriod: "both",
	}[c.Objective]
	return fmt.Sprintf("%s / %s / %s / %s", plat, c.Graph, model, obj)
}

// Evidence is the empirical verification of one cell.
type Evidence struct {
	Cell
	Classification core.Classification
	// Trials/Agreements: for polynomial cells, how often the paper's
	// algorithm matched exhaustive search; for NP-hard cells, how often
	// the heuristic produced a valid (sound) solution.
	Trials, Agreements int
	// MaxHeuristicGap is heuristic/optimal on NP-hard cells (1 = optimal).
	MaxHeuristicGap float64
	// ReductionTrials/ReductionOK verify the NP-hardness reduction's
	// iff-property where one applies to the cell.
	ReductionTrials, ReductionOK int
	// Note carries details (reduction used, inheritance, failures).
	Note string
}

// AllCells enumerates the 48 (platform, graph, model, objective) cells.
func AllCells() []Cell {
	var cells []Cell
	for _, platHom := range []bool{true, false} {
		for _, g := range []GraphRow{HomPipeline, HetPipeline, HomFork, HetFork} {
			for _, dp := range []bool{false, true} {
				for _, obj := range []core.Objective{core.MinPeriod, core.MinLatency, core.LatencyUnderPeriod} {
					cells = append(cells, Cell{PlatformHom: platHom, Graph: g, WithDP: dp, Objective: obj})
				}
			}
		}
	}
	return cells
}

// randomInstance draws a random problem instance matching the cell's row.
func randomInstance(rng *rand.Rand, c Cell) core.Problem {
	var pl platform.Platform
	if c.PlatformHom {
		pl = platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(3)))
	} else {
		for {
			pl = platform.Random(rng, 2+rng.Intn(3), 5)
			if !pl.IsHomogeneous() {
				break
			}
		}
	}
	pr := core.Problem{Platform: pl, AllowDataParallel: c.WithDP, Objective: c.Objective}
	switch c.Graph {
	case HomPipeline:
		p := workflow.HomogeneousPipeline(1+rng.Intn(4), float64(1+rng.Intn(9)))
		pr.Pipeline = &p
	case HetPipeline:
		for {
			p := workflow.RandomPipeline(rng, 2+rng.Intn(3), 9)
			if !p.IsHomogeneous() {
				pr.Pipeline = &p
				break
			}
		}
	case HomFork:
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), rng.Intn(4), float64(1+rng.Intn(9)))
		pr.Fork = &f
	case HetFork:
		for {
			f := workflow.RandomFork(rng, 2+rng.Intn(2), 9)
			if !f.IsHomogeneous() {
				pr.Fork = &f
				break
			}
		}
	}
	return pr
}

// exhaustiveReference returns the exact optimum for the problem's
// objective, using the exponential solvers.
func exhaustiveReference(pr core.Problem) (float64, bool) {
	dp := pr.AllowDataParallel
	if pr.Pipeline != nil {
		switch pr.Objective {
		case core.MinPeriod:
			r, ok := exhaustive.PipelinePeriod(*pr.Pipeline, pr.Platform, dp)
			return r.Cost.Period, ok
		case core.MinLatency:
			r, ok := exhaustive.PipelineLatency(*pr.Pipeline, pr.Platform, dp)
			return r.Cost.Latency, ok
		default:
			r, ok := exhaustive.PipelineLatencyUnderPeriod(*pr.Pipeline, pr.Platform, dp, pr.Bound)
			return r.Cost.Latency, ok
		}
	}
	switch pr.Objective {
	case core.MinPeriod:
		r, ok := exhaustive.ForkPeriod(*pr.Fork, pr.Platform, dp)
		return r.Cost.Period, ok
	case core.MinLatency:
		r, ok := exhaustive.ForkLatency(*pr.Fork, pr.Platform, dp)
		return r.Cost.Latency, ok
	default:
		r, ok := exhaustive.ForkLatencyUnderPeriod(*pr.Fork, pr.Platform, dp, pr.Bound)
		return r.Cost.Latency, ok
	}
}

func objectiveValue(c core.Problem, sol core.Solution) float64 {
	if c.Objective == core.MinPeriod {
		return sol.Cost.Period
	}
	return sol.Cost.Latency
}

// VerifyCell gathers evidence for one cell on `trials` random instances.
func VerifyCell(rng *rand.Rand, c Cell, trials int) Evidence {
	ev := Evidence{Cell: c, MaxHeuristicGap: 1}
	probe := randomInstance(rng, c)
	if c.Objective == core.LatencyUnderPeriod {
		probe.Bound = 1 // placeholder for classification only
	}
	cl, err := core.Classify(probe)
	if err != nil {
		ev.Note = "classification error: " + err.Error()
		return ev
	}
	ev.Classification = cl

	for t := 0; t < trials; t++ {
		pr := randomInstance(rng, c)
		if c.Objective == core.LatencyUnderPeriod {
			// Pick a meaningful bound: 1.5x the optimal period.
			base := pr
			base.Objective = core.MinPeriod
			opt, ok := exhaustiveReference(base)
			if !ok {
				continue
			}
			pr.Bound = opt * 1.5
		}
		ev.Trials++
		if cl.Complexity.Polynomial() {
			sol, err := core.Solve(pr, core.Options{})
			if err != nil || !sol.Feasible || !sol.Exact {
				continue
			}
			ref, ok := exhaustiveReference(pr)
			if ok && numeric.Eq(objectiveValue(pr, sol), ref) {
				ev.Agreements++
			}
			continue
		}
		// NP-hard cell: exhaustive (exact) vs forced heuristic.
		exact, err := core.Solve(pr, core.Options{})
		if err != nil || !exact.Feasible {
			continue
		}
		tiny := core.Options{MaxExhaustivePipelineProcs: 1, MaxExhaustiveForkStages: 1, MaxExhaustiveForkProcs: 1}
		heur, err := core.Solve(pr, tiny)
		if err != nil || !heur.Feasible {
			continue
		}
		ev.Agreements++
		if gap := objectiveValue(pr, heur) / objectiveValue(pr, exact); gap > ev.MaxHeuristicGap {
			ev.MaxHeuristicGap = gap
		}
	}
	return ev
}

// VerifyTable1 verifies every cell with the given number of random trials
// per cell.
func VerifyTable1(seed int64, trials int) []Evidence {
	rng := rand.New(rand.NewSource(seed))
	cells := AllCells()
	out := make([]Evidence, 0, len(cells))
	for _, c := range cells {
		out = append(out, VerifyCell(rng, c, trials))
	}
	return out
}

// VerifyTable1Parallel verifies the cells concurrently, one goroutine per
// cell with a derived deterministic seed each, bounded by maxWorkers
// (0 = one per cell). Results are identical across runs for a fixed seed
// but differ from VerifyTable1's, whose cells share one random stream.
func VerifyTable1Parallel(seed int64, trials, maxWorkers int) []Evidence {
	cells := AllCells()
	out := make([]Evidence, len(cells))
	if maxWorkers <= 0 || maxWorkers > len(cells) {
		maxWorkers = len(cells)
	}
	sem := make(chan struct{}, maxWorkers)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c Cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seed + int64(i)*1_000_003))
			out[i] = VerifyCell(rng, c, trials)
		}(i, c)
	}
	wg.Wait()
	return out
}

// RenderTable1 formats the evidence in the layout of the paper's Table 1,
// annotated with the verification outcome of each cell.
func RenderTable1(evidence []Evidence) string {
	index := make(map[Cell]Evidence, len(evidence))
	for _, ev := range evidence {
		index[ev.Cell] = ev
	}
	var b strings.Builder
	for _, platHom := range []bool{true, false} {
		if platHom {
			fmt.Fprintf(&b, "Hom. platforms%42s | %s\n", "without data-par", "with data-par")
		} else {
			fmt.Fprintf(&b, "Het. platforms%42s | %s\n", "without data-par", "with data-par")
		}
		fmt.Fprintf(&b, "%-14s | %-19s %-19s %-19s | %-19s %-19s %-19s\n",
			"", "P", "L", "both", "P", "L", "both")
		for _, g := range []GraphRow{HomPipeline, HetPipeline, HomFork, HetFork} {
			fmt.Fprintf(&b, "%-14s |", g)
			for _, dp := range []bool{false, true} {
				for _, obj := range []core.Objective{core.MinPeriod, core.MinLatency, core.LatencyUnderPeriod} {
					ev, ok := index[Cell{PlatformHom: platHom, Graph: g, WithDP: dp, Objective: obj}]
					if !ok {
						fmt.Fprintf(&b, " %-19s", "?")
						continue
					}
					label := ev.Classification.Complexity.String()
					detail := fmt.Sprintf("%d/%d", ev.Agreements, ev.Trials)
					if ev.Classification.Complexity == core.NPHard && ev.MaxHeuristicGap > 1 {
						detail += fmt.Sprintf(" g%.2f", ev.MaxHeuristicGap)
					}
					fmt.Fprintf(&b, " %-19s", label+" "+detail)
				}
				if !dp {
					fmt.Fprintf(&b, " |")
				}
			}
			fmt.Fprintf(&b, "\n")
		}
		fmt.Fprintf(&b, "\n")
	}
	b.WriteString("Legend: a/b = verified instances / trials; for polynomial cells the paper's\n")
	b.WriteString("algorithm matched exhaustive search; for NP-hard cells both exact and heuristic\n")
	b.WriteString("solvers produced sound mappings, gX.XX = worst heuristic/optimal ratio.\n")
	return b.String()
}
