package table

import (
	"strings"
	"testing"

	"repliflow/internal/core"
)

func TestSection2ReportMatchesPaperExceptKnownDiscrepancies(t *testing.T) {
	rows := Section2Report()
	if len(rows) != 16 {
		t.Fatalf("got %d rows, want 16", len(rows))
	}
	known := map[string]bool{"E2.15": true, "E2.16": true}
	for _, r := range rows {
		if known[r.ID] {
			if r.Match {
				t.Errorf("%s: expected documented discrepancy, but values match", r.ID)
			}
			if r.Note == "" {
				t.Errorf("%s: discrepancy without explanatory note", r.ID)
			}
			continue
		}
		if !r.Match {
			t.Errorf("%s (%s): paper %v, measured %v", r.ID, r.Description, r.Paper, r.Measured)
		}
	}
}

func TestSection2KnownDiscrepancyValues(t *testing.T) {
	rows := Section2Report()
	byID := make(map[string]Section2Row)
	for _, r := range rows {
		byID[r.ID] = r
	}
	if got := byID["E2.15"].Measured; got != 4.5 {
		t.Errorf("E2.15 measured = %v, want 4.5", got)
	}
	if got := byID["E2.16"].Measured; got != 8.5 {
		t.Errorf("E2.16 measured = %v, want 8.5", got)
	}
}

func TestRenderSection2(t *testing.T) {
	out := RenderSection2(Section2Report())
	if !strings.Contains(out, "E2.1") || !strings.Contains(out, "paper") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "refuted") {
		t.Fatal("render missing discrepancy notes")
	}
}

func TestAllCellsCount(t *testing.T) {
	cells := AllCells()
	if len(cells) != 48 {
		t.Fatalf("got %d cells, want 48", len(cells))
	}
	seen := make(map[string]bool)
	for _, c := range cells {
		if seen[c.String()] {
			t.Fatalf("duplicate cell %s", c)
		}
		seen[c.String()] = true
	}
}

// allowPartial reports whether a cell may legitimately verify fewer trials
// than attempted: on NP-hard cells with a bounded objective the forced
// heuristic can return feasibility false negatives (documented behaviour,
// flagged by Solution.Exact == false).
func allowPartial(ev Evidence) bool {
	return ev.Classification.Complexity == core.NPHard && ev.Objective == core.LatencyUnderPeriod
}

func checkEvidence(t *testing.T, evidence []Evidence) {
	t.Helper()
	for _, ev := range evidence {
		if ev.Note != "" && strings.Contains(ev.Note, "error") {
			t.Errorf("%s: %s", ev.Cell, ev.Note)
		}
		if ev.Trials == 0 {
			t.Errorf("%s: no trials completed", ev.Cell)
		}
		if ev.Agreements != ev.Trials {
			if !allowPartial(ev) {
				t.Errorf("%s: only %d/%d trials verified", ev.Cell, ev.Agreements, ev.Trials)
			} else if ev.Agreements == 0 {
				t.Errorf("%s: no trial verified at all", ev.Cell)
			}
		}
		if ev.Classification.Complexity == core.NPHard && ev.MaxHeuristicGap < 1 {
			t.Errorf("%s: heuristic gap %v below 1 — heuristic beat the optimum?", ev.Cell, ev.MaxHeuristicGap)
		}
	}
}

func TestVerifyTable1SmallRun(t *testing.T) {
	evidence := VerifyTable1(1, 3)
	if len(evidence) != 48 {
		t.Fatalf("got %d evidence rows, want 48", len(evidence))
	}
	checkEvidence(t, evidence)
}

func TestVerifyTable1ParallelMatchesCells(t *testing.T) {
	evidence := VerifyTable1Parallel(9, 2, 8)
	if len(evidence) != 48 {
		t.Fatalf("got %d evidence rows, want 48", len(evidence))
	}
	checkEvidence(t, evidence)
	// Deterministic for a fixed seed.
	again := VerifyTable1Parallel(9, 2, 3)
	for i := range evidence {
		if evidence[i].Agreements != again[i].Agreements ||
			evidence[i].MaxHeuristicGap != again[i].MaxHeuristicGap {
			t.Fatalf("parallel verification not deterministic at cell %d", i)
		}
	}
}

func TestRenderTable1(t *testing.T) {
	out := RenderTable1(VerifyTable1(2, 2))
	for _, want := range []string{"Hom. platforms", "Het. platforms", "NP-hard", "Poly", "Legend"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureHeuristicGaps(t *testing.T) {
	reports := MeasureHeuristicGaps(4, 8)
	if len(reports) != 5 {
		t.Fatalf("got %d reports, want 5", len(reports))
	}
	for _, r := range reports {
		if r.Trials == 0 {
			t.Errorf("%s: no trials", r.Name)
		}
		if r.MeanGap < 1-1e-9 || r.WorstGap < 1-1e-9 {
			t.Errorf("%s: gap below 1 (mean %v, worst %v) — heuristic beat the optimum?",
				r.Name, r.MeanGap, r.WorstGap)
		}
		if r.OptimalIn > r.Trials {
			t.Errorf("%s: optimal count exceeds trials", r.Name)
		}
	}
	out := RenderGaps(reports)
	if !strings.Contains(out, "contiguous-group DP") {
		t.Fatalf("render missing heuristic name:\n%s", out)
	}
}

func TestVerifyReductions(t *testing.T) {
	reports := VerifyReductions(3, 6)
	if len(reports) != 6 {
		t.Fatalf("got %d reports, want 6", len(reports))
	}
	for _, r := range reports {
		if r.Trials == 0 {
			t.Errorf("%s: no trials", r.Name)
		}
		if r.OK != r.Trials {
			t.Errorf("%s: %d/%d verified", r.Name, r.OK, r.Trials)
		}
	}
	out := RenderReductions(reports)
	if !strings.Contains(out, "Theorem 9") {
		t.Fatalf("render missing Theorem 9:\n%s", out)
	}
}
