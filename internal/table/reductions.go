package table

import (
	"fmt"
	"math/rand"
	"strings"

	"repliflow/internal/exhaustive"
	"repliflow/internal/nph"
	"repliflow/internal/numeric"
)

// ReductionReport summarizes the empirical verification of one
// NP-hardness reduction: on how many random source instances the
// transformed mapping question answered exactly like the source problem.
type ReductionReport struct {
	Name    string
	Theorem string
	Trials  int
	OK      int
}

// randomDistinct2Partition samples a 2-PARTITION instance meeting the
// Theorem 5/13 preconditions (distinct values, each below half the sum).
func randomDistinct2Partition(rng *rand.Rand, m, maxV int) []int {
	for {
		seen := make(map[int]bool)
		a := make([]int, 0, m)
		for len(a) < m {
			v := 1 + rng.Intn(maxV)
			if !seen[v] {
				seen[v] = true
				a = append(a, v)
			}
		}
		sum := 0
		for _, v := range a {
			sum += v
		}
		ok := true
		for _, v := range a {
			if 2*v >= sum {
				ok = false
				break
			}
		}
		if ok {
			return a
		}
	}
}

// VerifyReductions exercises all five reductions with `trials` random
// source instances each (Theorem 9 uses fewer: its transformed instances
// are large).
func VerifyReductions(seed int64, trials int) []ReductionReport {
	rng := rand.New(rand.NewSource(seed))
	reports := []ReductionReport{
		{Name: "2-PARTITION -> pipeline latency (DP, het platform)", Theorem: "Theorem 5"},
		{Name: "2-PARTITION -> pipeline period (DP, het platform)", Theorem: "Theorem 5"},
		{Name: "N3DM -> het pipeline period (no DP, het platform)", Theorem: "Theorem 9"},
		{Name: "2-PARTITION -> het fork latency (hom platform)", Theorem: "Theorem 12"},
		{Name: "2-PARTITION -> hom fork latency/period (DP, het platform)", Theorem: "Theorem 13"},
		{Name: "2-PARTITION -> het fork period (no DP, het platform)", Theorem: "Theorem 15"},
	}

	for t := 0; t < trials; t++ {
		// Theorem 5, both objectives.
		a := randomDistinct2Partition(rng, 3+rng.Intn(3), 12)
		_, yes, err := nph.TwoPartition(a)
		if err == nil {
			p, pl, bound := nph.Theorem5Latency(a)
			if opt, ok := exhaustive.PipelineLatency(p, pl, true); ok {
				reports[0].Trials++
				if numeric.LessEq(opt.Cost.Latency, bound) == yes {
					reports[0].OK++
				}
			}
			p2, pl2, bound2 := nph.Theorem5Period(a)
			if opt, ok := exhaustive.PipelinePeriod(p2, pl2, true); ok {
				reports[1].Trials++
				if numeric.LessEq(opt.Cost.Period, bound2) == yes {
					reports[1].OK++
				}
			}
		}

		// Theorem 9 (expensive: cap at 4 trials).
		if t < 4 {
			var ins nph.N3DMInstance
			var n3dmYes, have bool
			if t%2 == 0 {
				ins = nph.RandomYesN3DM(rng, 2, 4+rng.Intn(3))
				n3dmYes, have = true, true
			} else {
				ins, have = nph.RandomNoN3DM(rng, 2, 4+rng.Intn(3))
			}
			if have {
				if p, pl, bound, err := nph.Theorem9(ins); err == nil {
					if opt, ok := exhaustive.PipelinePeriod(p, pl, false); ok {
						reports[2].Trials++
						if numeric.LessEq(opt.Cost.Period, bound) == n3dmYes {
							reports[2].OK++
						}
					}
				}
			}
		}

		// Theorem 12.
		b := make([]int, 2+rng.Intn(3))
		for i := range b {
			b[i] = 1 + rng.Intn(12)
		}
		if _, yes12, err := nph.TwoPartition(b); err == nil {
			f, pl, bound := nph.Theorem12(b)
			if opt, ok := exhaustive.ForkLatency(f, pl, false); ok {
				reports[3].Trials++
				if numeric.LessEq(opt.Cost.Latency, bound) == yes12 {
					reports[3].OK++
				}
			}
		}

		// Theorem 13 (latency direction).
		c := randomDistinct2Partition(rng, 3+rng.Intn(3), 12)
		if _, yes13, err := nph.TwoPartition(c); err == nil {
			f, pl, bound := nph.Theorem13Latency(c)
			if opt, ok := exhaustive.ForkLatency(f, pl, true); ok {
				reports[4].Trials++
				if numeric.LessEq(opt.Cost.Latency, bound) == yes13 {
					reports[4].OK++
				}
			}
		}

		// Theorem 15.
		d := make([]int, 2+rng.Intn(3))
		for i := range d {
			d[i] = 1 + rng.Intn(10)
		}
		if _, yes15, err := nph.TwoPartition(d); err == nil {
			f, pl, bound := nph.Theorem15(d)
			if opt, ok := exhaustive.ForkPeriod(f, pl, false); ok {
				reports[5].Trials++
				if numeric.LessEq(opt.Cost.Period, bound) == yes15 {
					reports[5].OK++
				}
			}
		}
	}
	return reports
}

// RenderReductions formats the reduction reports.
func RenderReductions(reports []ReductionReport) string {
	var b strings.Builder
	b.WriteString("NP-hardness reductions (iff-property on random source instances)\n")
	for _, r := range reports {
		fmt.Fprintf(&b, "  %-62s %-11s %d/%d verified\n", r.Name, r.Theorem, r.OK, r.Trials)
	}
	return b.String()
}
