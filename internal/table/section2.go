// Package table regenerates the paper's artifacts: the Section 2 worked
// example (every hand-derived number) and Table 1 (the complexity map,
// verified cell by cell against exhaustive search and the executable
// reductions). It backs cmd/wftable, the benchmark harness and
// EXPERIMENTS.md.
package table

import (
	"fmt"
	"strings"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/pipealgo"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Section2Row is one checked claim of the worked example.
type Section2Row struct {
	ID          string
	Description string
	Paper       float64
	Measured    float64
	Match       bool
	Note        string
}

// Section2Pipeline is the running example of the paper: four stages of
// weights 14, 4, 2, 4.
func Section2Pipeline() workflow.Pipeline { return workflow.NewPipeline(14, 4, 2, 4) }

// Section2Report recomputes every number of the Section 2 worked example
// and compares it against the paper's claim. Mapping-evaluation rows must
// match exactly; two optimality claims for the heterogeneous platform are
// refuted by exhaustive search (see EXPERIMENTS.md) and carry explanatory
// notes.
func Section2Report() []Section2Row {
	p := Section2Pipeline()
	hom := platform.Homogeneous(3, 1)
	hom4 := platform.Homogeneous(4, 1)
	het := platform.New(2, 2, 1, 1)

	var rows []Section2Row
	add := func(id, desc string, paper, measured float64, note string) {
		rows = append(rows, Section2Row{
			ID: id, Description: desc, Paper: paper, Measured: measured,
			Match: numeric.Eq(paper, measured), Note: note,
		})
	}
	evalCost := func(pl platform.Platform, m mapping.PipelineMapping) mapping.Cost {
		c, err := mapping.EvalPipeline(p, pl, m)
		if err != nil {
			panic("table: Section 2 mapping invalid: " + err.Error())
		}
		return c
	}

	// Homogeneous platform, 3 unit processors.
	baseline := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.Replicated, 0),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 1),
	}}
	add("E2.1", "S1 on P1, S2-S4 on P2: period", 14, evalCost(hom, baseline).Period, "")
	add("E2.2", "any mapping without data-par: latency", 24, evalCost(hom, baseline).Latency, "")

	full := mapping.ReplicateAllPipeline(p, hom)
	add("E2.3", "replicate all on 3 processors: period", 8, evalCost(hom, full).Period, "")

	partial := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.Replicated, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2),
	}}
	add("E2.4", "S1 replicated on P1,P2; S2-S4 on P3: period", 10, evalCost(hom, partial).Period, "")

	fourProc := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.Replicated, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2, 3),
	}}
	add("E2.5", "4 processors, both intervals replicated: period", 7, evalCost(hom4, fourProc).Period, "")

	dpS1 := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2),
	}}
	add("E2.6", "S1 data-parallel on P1,P2; rest on P3: latency", 17, evalCost(hom, dpS1).Latency, "")
	add("E2.7", "same mapping: period", 10, evalCost(hom, dpS1).Period, "")

	// Optimality on the homogeneous platform.
	optP, _ := exhaustive.PipelinePeriod(p, hom, true)
	add("E2.8", "optimal period, hom platform (exhaustive)", 8, optP.Cost.Period, "")
	optL, _ := exhaustive.PipelineLatency(p, hom, true)
	add("E2.9", "optimal latency with data-par, hom platform", 17, optL.Cost.Latency, "")
	t3, err := pipealgo.HomLatencyDP(p, hom)
	if err != nil {
		panic(err)
	}
	add("E2.10", "Theorem 3 DP reproduces the latency optimum", 17, t3.Cost.Latency, "")

	// Heterogeneous platform: speeds 2,2,1,1.
	hetFull := mapping.ReplicateAllPipeline(p, het)
	add("E2.11", "het: replicate all on 4 processors: period", 6, evalCost(het, hetFull).Period, "")

	hetPaper := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2, 3),
	}}
	add("E2.12", "het: paper's period mapping (S1 dp on P1,P2; rest repl on P3,P4)", 5, evalCost(het, hetPaper).Period, "")
	add("E2.13", "het: same mapping's latency", 13.5, evalCost(het, hetPaper).Latency, "")

	hetPaperLat := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1, 2),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 3),
	}}
	add("E2.14", "het: paper's latency mapping (S1 dp on P1,P2,P3; rest on P4)", 12.8, evalCost(het, hetPaperLat).Latency, "")

	// The paper's optimality claims for the heterogeneous platform do not
	// hold under its own Section 3.4 model.
	hetOptP, _ := exhaustive.PipelinePeriod(p, het, true)
	add("E2.15", "het: optimal period (paper claims 5)", 5, hetOptP.Cost.Period,
		"paper's claim refuted: [S1,S2 repl on P1,P2][S3,S4 repl on P3,P4] achieves 18/(2*2) = 4.5")
	hetOptL, _ := exhaustive.PipelineLatency(p, het, true)
	add("E2.16", "het: optimal latency (paper claims 12.8)", 12.8, hetOptL.Cost.Latency,
		"paper's claim refuted: contradicts its own Theorem 6 (24/2 = 12); S1 dp on {P2,P3,P4} + rest on P1 achieves 8.5")

	return rows
}

// RenderSection2 formats the report as a text table.
func RenderSection2(rows []Section2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2 worked example — pipeline (14,4,2,4)\n")
	fmt.Fprintf(&b, "%-6s %-68s %9s %9s %-5s\n", "id", "claim", "paper", "measured", "match")
	for _, r := range rows {
		match := "yes"
		if !r.Match {
			match = "NO"
		}
		fmt.Fprintf(&b, "%-6s %-68s %9.4g %9.4g %-5s\n", r.ID, r.Description, r.Paper, r.Measured, match)
		if r.Note != "" {
			fmt.Fprintf(&b, "       note: %s\n", r.Note)
		}
	}
	return b.String()
}
