package pipealgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HomPeriod implements Theorem 1: on a Homogeneous platform the period is
// minimized — with or without data-parallelism — by replicating the whole
// pipeline as a single interval onto all processors, achieving the absolute
// lower bound sum(w) / sum(s).
func HomPeriod(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, err
	}
	if !pl.IsHomogeneous() {
		return Result{}, ErrNotHomogeneousPlatform
	}
	return finish(p, pl, mapping.ReplicateAllPipeline(p, pl)), nil
}

// HomLatencyNoDP implements Theorem 2: without data-parallelism every
// mapping on a Homogeneous platform has latency sum(w)/s, so mapping the
// whole pipeline onto one processor is optimal.
func HomLatencyNoDP(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, err
	}
	if !pl.IsHomogeneous() {
		return Result{}, ErrNotHomogeneousPlatform
	}
	return finish(p, pl, mapping.WholeOnProcessor(p, 0)), nil
}

// HomBiCriteriaNoDP implements Corollary 1: replicating the whole pipeline
// onto all processors simultaneously minimizes the period (Theorem 1) and
// the latency (Theorem 2) when data-parallelism is not available.
func HomBiCriteriaNoDP(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	return HomPeriod(p, pl)
}

// homLatencyChoice records a Theorem 3/4 DP decision for reconstruction.
type homLatencyChoice struct {
	kind int // 0 = whole interval on the q processors, 1 = data-par single stage, 2 = split
	k    int // split point (kind 2): left part is stages i..k
	q1   int // processors given to the left part (kind 2)
}

// homDP solves the Theorem 3/4 dynamic program: the minimum latency
// achievable for stages i..j using at most q processors of speed s, with
// every group's period bounded by periodCap (+Inf for the pure latency
// problem of Theorem 3).
//
// The recurrence fixes the index typo of the paper's middle case (RR-6308
// writes q-q'-1 on both sides of a data-parallelized middle stage, which
// does not conserve processors): data-parallelizing a middle stage Sk is
// expressed as splitting at k-1 and k, which yields the same optimum.
type homDP struct {
	p         workflow.Pipeline
	s         float64
	periodCap float64
	n, q      int
	memo      []float64
	visited   []bool
	choice    []homLatencyChoice
	prefix    []float64
}

func newHomDP(p workflow.Pipeline, s float64, q int, periodCap float64) *homDP {
	n := p.Stages()
	states := n * n * (q + 1)
	prefix := make([]float64, n+1)
	for i, w := range p.Weights {
		prefix[i+1] = prefix[i] + w
	}
	return &homDP{
		p: p, s: s, periodCap: periodCap, n: n, q: q,
		memo:    make([]float64, states),
		visited: make([]bool, states),
		choice:  make([]homLatencyChoice, states),
		prefix:  prefix,
	}
}

func (d *homDP) id(i, j, q int) int { return (i*d.n+j)*(d.q+1) + q }

func (d *homDP) work(i, j int) float64 { return d.prefix[j+1] - d.prefix[i] }

// solve returns the minimum latency for stages i..j on at most q identical
// processors, or +Inf if the period cap cannot be met.
func (d *homDP) solve(i, j, q int) float64 {
	if q == 0 {
		return numeric.Inf
	}
	id := d.id(i, j, q)
	if d.visited[id] {
		return d.memo[id]
	}
	d.visited[id] = true
	w := d.work(i, j)
	best := numeric.Inf
	var bestChoice homLatencyChoice

	// Choice 0: the whole interval replicated on the q processors. The
	// latency is w/s regardless of q; the period w/(q*s) must fit the cap.
	if numeric.LessEq(w/(float64(q)*d.s), d.periodCap) {
		best = w / d.s
		bestChoice = homLatencyChoice{kind: 0}
	}

	// Choice 1: a single stage data-parallelized across the q processors.
	if i == j {
		if v := w / (float64(q) * d.s); numeric.LessEq(v, d.periodCap) && numeric.Less(v, best) {
			best = v
			bestChoice = homLatencyChoice{kind: 1}
		}
	}

	// Choice 2: split the interval, distributing the processors.
	for k := i; k < j; k++ {
		for q1 := 1; q1 < q; q1++ {
			left := d.solve(i, k, q1)
			if math.IsInf(left, 1) || numeric.GreaterEq(left, best) {
				continue
			}
			right := d.solve(k+1, j, q-q1)
			if v := left + right; numeric.Less(v, best) {
				best = v
				bestChoice = homLatencyChoice{kind: 2, k: k, q1: q1}
			}
		}
	}

	d.memo[id] = best
	d.choice[id] = bestChoice
	return best
}

// reconstruct appends the intervals of the optimal sub-solution for stages
// i..j on q processors, consuming processor indices from *next.
func (d *homDP) reconstruct(i, j, q int, next *int, m *mapping.PipelineMapping) {
	ch := d.choice[d.id(i, j, q)]
	switch ch.kind {
	case 0, 1:
		procs := make([]int, q)
		for u := range procs {
			procs[u] = *next
			*next++
		}
		mode := mapping.Replicated
		if ch.kind == 1 {
			mode = mapping.DataParallel
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: i, Last: j,
			Assignment: mapping.Assignment{Procs: procs, Mode: mode},
		})
	case 2:
		d.reconstruct(i, ch.k, ch.q1, next, m)
		d.reconstruct(ch.k+1, j, q-ch.q1, next, m)
	}
}

// HomLatencyDP implements Theorem 3: minimum-latency mapping on a
// Homogeneous platform with data-parallelism, in polynomial time by dynamic
// programming.
func HomLatencyDP(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	res, ok, err := HomLatencyUnderPeriodDP(p, pl, numeric.Inf)
	if err != nil {
		return Result{}, err
	}
	if !ok {
		panic("pipealgo: unconstrained latency DP reported infeasible")
	}
	return res, nil
}

// HomLatencyUnderPeriodDP implements the first half of Theorem 4: the
// minimum latency on a Homogeneous platform with data-parallelism, among
// mappings whose period does not exceed maxPeriod. The boolean result is
// false when no mapping meets the period bound.
func HomLatencyUnderPeriodDP(p workflow.Pipeline, pl platform.Platform, maxPeriod float64) (Result, bool, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, false, err
	}
	if !pl.IsHomogeneous() {
		return Result{}, false, ErrNotHomogeneousPlatform
	}
	d := newHomDP(p, pl.Speeds[0], pl.Processors(), maxPeriod)
	v := d.solve(0, p.Stages()-1, pl.Processors())
	if math.IsInf(v, 1) {
		return Result{}, false, nil
	}
	var m mapping.PipelineMapping
	next := 0
	d.reconstruct(0, p.Stages()-1, pl.Processors(), &next, &m)
	return finish(p, pl, m), true, nil
}

// HomPeriodUnderLatencyDP implements the second half of Theorem 4: the
// minimum period on a Homogeneous platform with data-parallelism, among
// mappings whose latency does not exceed maxLatency. The search runs over
// the finite set of candidate periods {W(i,j)/(q·s)}, so the result is
// exact. The boolean result is false when no mapping meets the bound.
func HomPeriodUnderLatencyDP(p workflow.Pipeline, pl platform.Platform, maxLatency float64) (Result, bool, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, false, err
	}
	if !pl.IsHomogeneous() {
		return Result{}, false, ErrNotHomogeneousPlatform
	}
	s := pl.Speeds[0]
	n, q := p.Stages(), pl.Processors()
	var cands []float64
	for i := 0; i < n; i++ {
		w := 0.0
		for j := i; j < n; j++ {
			w += p.Weights[j]
			for k := 1; k <= q; k++ {
				cands = append(cands, w/(float64(k)*s))
			}
		}
	}
	cands = numeric.DedupSorted(cands)
	lo, hi := 0, len(cands)-1
	var best Result
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok, err := HomLatencyUnderPeriodDP(p, pl, cands[mid])
		if err != nil {
			return Result{}, false, err
		}
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}
