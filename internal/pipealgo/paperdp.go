package pipealgo

import (
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HomLatencyDPPaperRecurrence computes the Theorem 3 optimum with the
// paper's own recurrence, transcribed literally except for one correction:
// the middle case of RR-6308 reads
//
//	L(i, k-1, q-q'-1) + w_k/(q'·s) + L(k+1, j, q-q'-1)
//
// which hands q-q'-1 processors to *both* sides and so does not conserve
// processors; the faithful intent (and what this implementation uses) is
// to split the q-q' remaining processors between the two sides:
//
//	L(i, k-1, q1) + w_k/(q'·s) + L(k+1, j, q-q'-q1)
//
// The function returns only the optimal latency; HomLatencyDP (an
// equivalent reformulation via interval splits) additionally reconstructs
// a mapping. Their agreement on random instances is checked in the tests,
// validating both against each other and, through HomLatencyDP's tests,
// against exhaustive search.
func HomLatencyDPPaperRecurrence(p workflow.Pipeline, pl platform.Platform) (float64, error) {
	if err := checkInputs(p, pl); err != nil {
		return 0, err
	}
	if !pl.IsHomogeneous() {
		return 0, ErrNotHomogeneousPlatform
	}
	s := pl.Speeds[0]
	n, maxQ := p.Stages(), pl.Processors()

	prefix := make([]float64, n+1)
	for i, w := range p.Weights {
		prefix[i+1] = prefix[i] + w
	}
	sum := func(i, j int) float64 { return prefix[j+1] - prefix[i] }

	memo := make([]float64, n*n*(maxQ+1))
	seen := make([]bool, len(memo))
	id := func(i, j, q int) int { return (i*n+j)*(maxQ+1) + q }

	var L func(i, j, q int) float64
	L = func(i, j, q int) float64 {
		// Initialization cases of the paper.
		if q == 0 {
			return numeric.Inf
		}
		if i == j {
			return p.Weights[i] / (float64(q) * s)
		}
		if q == 1 || q == 2 {
			return sum(i, j) / s
		}
		k := id(i, j, q)
		if seen[k] {
			return memo[k]
		}
		seen[k] = true
		best := sum(i, j) / s // never data-parallelize anything
		// Case (a): data-parallelize the first stage on q' processors.
		for q1 := 1; q1 <= q-1; q1++ {
			if v := p.Weights[i]/(float64(q1)*s) + L(i+1, j, q-q1); numeric.Less(v, best) {
				best = v
			}
		}
		// Case (b): data-parallelize the last stage on q' processors.
		for q1 := 1; q1 <= q-1; q1++ {
			if v := L(i, j-1, q-q1) + p.Weights[j]/(float64(q1)*s); numeric.Less(v, best) {
				best = v
			}
		}
		// Case (c): data-parallelize a middle stage, splitting the rest.
		for mid := i + 1; mid < j; mid++ {
			for qm := 1; qm <= q-2; qm++ {
				for qLeft := 1; qLeft <= q-qm-1; qLeft++ {
					v := L(i, mid-1, qLeft) + p.Weights[mid]/(float64(qm)*s) + L(mid+1, j, q-qm-qLeft)
					if numeric.Less(v, best) {
						best = v
					}
				}
			}
		}
		memo[k] = best
		return best
	}
	return L(0, n-1, maxQ), nil
}
