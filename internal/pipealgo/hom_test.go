package pipealgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

var example = workflow.NewPipeline(14, 4, 2, 4)

func TestTheorem1Section2(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	res, err := HomPeriod(example, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Period, 8) { // 24/(3*1)
		t.Errorf("period = %v, want 8", res.Cost.Period)
	}
	if !numeric.Eq(res.Cost.Latency, 24) {
		t.Errorf("latency = %v, want 24", res.Cost.Latency)
	}
}

func TestTheorem1MatchesLowerBound(t *testing.T) {
	// Theorem 1: the period equals sum(w)/sum(s) exactly.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(8), 9)
		pl := platform.Homogeneous(1+rng.Intn(6), float64(1+rng.Intn(3)))
		res, err := HomPeriod(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		want := p.TotalWork() / pl.TotalSpeed()
		if !numeric.Eq(res.Cost.Period, want) {
			t.Fatalf("period = %v, want %v", res.Cost.Period, want)
		}
	}
}

func TestTheorem1MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(3)))
		res, err := HomPeriod(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		for _, dp := range []bool{false, true} {
			opt, ok := exhaustive.PipelinePeriod(p, pl, dp)
			if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
				t.Fatalf("Theorem 1 period %v != exhaustive %v (dp=%v, pipe=%v, p=%d)",
					res.Cost.Period, opt.Cost.Period, dp, p.Weights, pl.Processors())
			}
		}
	}
}

func TestTheorem2AllMappingsSameLatency(t *testing.T) {
	pl := platform.Homogeneous(3, 2)
	res, err := HomLatencyNoDP(example, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Latency, 12) { // 24/2
		t.Errorf("latency = %v, want 12", res.Cost.Latency)
	}
	opt, ok := exhaustive.PipelineLatency(example, pl, false)
	if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
		t.Errorf("Theorem 2 latency %v != exhaustive %v", res.Cost.Latency, opt.Cost.Latency)
	}
}

func TestCorollary1BothOptima(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	res, err := HomBiCriteriaNoDP(example, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Period, 8) || !numeric.Eq(res.Cost.Latency, 24) {
		t.Errorf("got %v, want period=8 latency=24", res.Cost)
	}
}

func TestTheorem3Section2(t *testing.T) {
	// Minimum latency with data-parallelism on 3 unit processors is 17.
	pl := platform.Homogeneous(3, 1)
	res, err := HomLatencyDP(example, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Latency, 17) {
		t.Errorf("latency = %v, want 17 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
}

func TestTheorem3MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(2)))
		res, err := HomLatencyDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelineLatency(p, pl, true)
		if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
			t.Fatalf("Theorem 3 latency %v != exhaustive %v (pipe=%v p=%d)",
				res.Cost.Latency, opt.Cost.Latency, p.Weights, pl.Processors())
		}
	}
}

func TestTheorem4LatencyUnderPeriodSection2(t *testing.T) {
	pl := platform.Homogeneous(3, 1)
	res, ok, err := HomLatencyUnderPeriodDP(example, pl, 10)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if !numeric.Eq(res.Cost.Latency, 17) {
		t.Errorf("latency under period 10 = %v, want 17", res.Cost.Latency)
	}
	// Tight period bound forces full replication.
	res, ok, err = HomLatencyUnderPeriodDP(example, pl, 8)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if !numeric.Eq(res.Cost.Latency, 24) {
		t.Errorf("latency under period 8 = %v, want 24", res.Cost.Latency)
	}
	// Infeasible bound.
	if _, ok, _ := HomLatencyUnderPeriodDP(example, pl, 1); ok {
		t.Error("period bound 1 accepted")
	}
}

func TestTheorem4MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 25; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		// Pick a period bound between the optimum and a loose value.
		optP, _ := exhaustive.PipelinePeriod(p, pl, true)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		res, ok, err := HomLatencyUnderPeriodDP(p, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.PipelineLatencyUnderPeriod(p, pl, true, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch: DP=%v exhaustive=%v (bound=%v)", ok, refOK, bound)
		}
		if ok && !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
			t.Fatalf("Theorem 4 latency %v != exhaustive %v (pipe=%v p=%d bound=%v)",
				res.Cost.Latency, ref.Cost.Latency, p.Weights, pl.Processors(), bound)
		}
		if ok && numeric.Greater(res.Cost.Period, bound) {
			t.Fatalf("returned mapping violates the period bound: %v > %v", res.Cost.Period, bound)
		}
	}
}

func TestTheorem4PeriodUnderLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		optL, _ := exhaustive.PipelineLatency(p, pl, true)
		bound := optL.Cost.Latency * (1 + rng.Float64()*2)
		res, ok, err := HomPeriodUnderLatencyDP(p, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.PipelinePeriodUnderLatency(p, pl, true, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch (bound=%v)", bound)
		}
		if ok && !numeric.Eq(res.Cost.Period, ref.Cost.Period) {
			t.Fatalf("Theorem 4 period %v != exhaustive %v (pipe=%v p=%d bound=%v)",
				res.Cost.Period, ref.Cost.Period, p.Weights, pl.Processors(), bound)
		}
		if ok && numeric.Greater(res.Cost.Latency, bound) {
			t.Fatalf("returned mapping violates the latency bound: %v > %v", res.Cost.Latency, bound)
		}
	}
}

func TestHomAlgorithmsRejectHetPlatform(t *testing.T) {
	het := platform.New(1, 2)
	if _, err := HomPeriod(example, het); err != ErrNotHomogeneousPlatform {
		t.Errorf("HomPeriod err = %v", err)
	}
	if _, err := HomLatencyNoDP(example, het); err != ErrNotHomogeneousPlatform {
		t.Errorf("HomLatencyNoDP err = %v", err)
	}
	if _, err := HomLatencyDP(example, het); err != ErrNotHomogeneousPlatform {
		t.Errorf("HomLatencyDP err = %v", err)
	}
	if _, _, err := HomLatencyUnderPeriodDP(example, het, 10); err != ErrNotHomogeneousPlatform {
		t.Errorf("HomLatencyUnderPeriodDP err = %v", err)
	}
	if _, _, err := HomPeriodUnderLatencyDP(example, het, 10); err != ErrNotHomogeneousPlatform {
		t.Errorf("HomPeriodUnderLatencyDP err = %v", err)
	}
}

func TestHomAlgorithmsRejectInvalidInputs(t *testing.T) {
	pl := platform.Homogeneous(2, 1)
	if _, err := HomPeriod(workflow.NewPipeline(), pl); err == nil {
		t.Error("empty pipeline accepted")
	}
	if _, err := HomPeriod(example, platform.New()); err == nil {
		t.Error("empty platform accepted")
	}
}
