package pipealgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestTheorem6FastestProcessor(t *testing.T) {
	pl := platform.New(2, 2, 1, 1)
	res, err := HetLatencyNoDP(example, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Latency, 12) { // 24/2
		t.Errorf("latency = %v, want 12", res.Cost.Latency)
	}
}

func TestTheorem6MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 30; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		res, err := HetLatencyNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelineLatency(p, pl, false)
		if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
			t.Fatalf("Theorem 6 latency %v != exhaustive %v (pipe=%v speeds=%v)",
				res.Cost.Latency, opt.Cost.Latency, p.Weights, pl.Speeds)
		}
	}
}

func TestTheorem7SimpleInstance(t *testing.T) {
	// 4 identical stages of weight 2 on speeds {3, 1}: the best period uses
	// both processors. Exhaustive confirms the optimum.
	p := workflow.HomogeneousPipeline(4, 2)
	pl := platform.New(3, 1)
	res, err := HetHomPipelinePeriodNoDP(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	opt, ok := exhaustive.PipelinePeriod(p, pl, false)
	if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
		t.Fatalf("Theorem 7 period %v != exhaustive %v (mapping %v)",
			res.Cost.Period, opt.Cost.Period, res.Mapping)
	}
}

func TestTheorem7MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(5)
		w := float64(1 + rng.Intn(9))
		p := workflow.HomogeneousPipeline(n, w)
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		res, err := HetHomPipelinePeriodNoDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
			t.Fatalf("trial %d: Theorem 7 period %v != exhaustive %v (n=%d w=%v speeds=%v, mapping %v)",
				trial, res.Cost.Period, opt.Cost.Period, n, w, pl.Speeds, res.Mapping)
		}
	}
}

func TestTheorem7RejectsHetPipeline(t *testing.T) {
	if _, err := HetHomPipelinePeriodNoDP(example, platform.New(1, 2)); err != ErrNotHomogeneousPipeline {
		t.Errorf("err = %v, want ErrNotHomogeneousPipeline", err)
	}
}

func TestTheorem8LatencyUnderPeriodMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4)
		w := float64(1 + rng.Intn(9))
		p := workflow.HomogeneousPipeline(n, w)
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		optP, _ := exhaustive.PipelinePeriod(p, pl, false)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		res, ok, err := HetHomPipelineLatencyUnderPeriodNoDP(p, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.PipelineLatencyUnderPeriod(p, pl, false, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v", ok, refOK)
		}
		if ok && !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
			t.Fatalf("trial %d: Theorem 8 latency %v != exhaustive %v (n=%d w=%v speeds=%v bound=%v)",
				trial, res.Cost.Latency, ref.Cost.Latency, n, w, pl.Speeds, bound)
		}
		if ok && numeric.Greater(res.Cost.Period, bound) {
			t.Fatalf("period bound violated: %v > %v", res.Cost.Period, bound)
		}
	}
}

func TestTheorem8InfeasiblePeriodBound(t *testing.T) {
	p := workflow.HomogeneousPipeline(3, 4)
	pl := platform.New(2, 1)
	if _, ok, err := HetHomPipelineLatencyUnderPeriodNoDP(p, pl, 0.5); err != nil || ok {
		t.Fatalf("tight bound: ok=%v err=%v, want infeasible", ok, err)
	}
}

func TestTheorem8PeriodUnderLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(4)
		w := float64(1 + rng.Intn(9))
		p := workflow.HomogeneousPipeline(n, w)
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		optL, _ := exhaustive.PipelineLatency(p, pl, false)
		bound := optL.Cost.Latency * (1 + rng.Float64()*2)
		res, ok, err := HetHomPipelinePeriodUnderLatencyNoDP(p, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.PipelinePeriodUnderLatency(p, pl, false, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v", ok, refOK)
		}
		if ok && !numeric.Eq(res.Cost.Period, ref.Cost.Period) {
			t.Fatalf("trial %d: Theorem 8 period %v != exhaustive %v (n=%d w=%v speeds=%v bound=%v)",
				trial, res.Cost.Period, ref.Cost.Period, n, w, pl.Speeds, bound)
		}
		if ok && numeric.Greater(res.Cost.Latency, bound) {
			t.Fatalf("latency bound violated: %v > %v", res.Cost.Latency, bound)
		}
	}
}

func TestTheorem7UnconstrainedEqualsTheorem8LooseBound(t *testing.T) {
	// With an infinite latency bound the Theorem 8 converse must return the
	// Theorem 7 optimum.
	p := workflow.HomogeneousPipeline(5, 3)
	pl := platform.New(4, 2, 1)
	t7, err := HetHomPipelinePeriodNoDP(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	t8, ok, err := HetHomPipelinePeriodUnderLatencyNoDP(p, pl, numeric.Inf)
	if err != nil || !ok {
		t.Fatalf("err=%v ok=%v", err, ok)
	}
	if !numeric.Eq(t7.Cost.Period, t8.Cost.Period) {
		t.Fatalf("Theorem 7 period %v != Theorem 8 period %v", t7.Cost.Period, t8.Cost.Period)
	}
}
