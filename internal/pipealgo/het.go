package pipealgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HetLatencyNoDP implements Theorem 6: without data-parallelism the minimum
// latency on any platform is achieved by mapping the whole pipeline onto a
// fastest processor. It holds for heterogeneous and homogeneous pipelines
// alike.
func HetLatencyNoDP(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, err
	}
	return finish(p, pl, mapping.WholeOnProcessor(p, pl.Fastest())), nil
}

// periodCandidates returns every value m*w/(k*s) that the period of a
// replicated interval of a homogeneous pipeline can take, sorted ascending.
// The Theorem 7/8 binary searches run over this finite set, which makes the
// returned optima exact (the paper instead argues a polynomial bound on the
// number of binary-search iterations over the rationals).
func periodCandidates(n int, w float64, pl platform.Platform) []float64 {
	var cands []float64
	for _, s := range pl.Speeds {
		for k := 1; k <= pl.Processors(); k++ {
			for m := 1; m <= n; m++ {
				cands = append(cands, float64(m)*w/(float64(k)*s))
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// thm7Assign runs the Theorem 7 dynamic program for a fixed period K and a
// fixed number q of enrolled processors: procs lists the q fastest
// processors ordered by non-decreasing speed (Lemma 3), and the program
// partitions them into consecutive intervals maximizing the number of
// stages processed within period K.
//
// W(i,j) = max( floor(K * s_i * (j-i+1) / w),  max_k W(i,k)+W(k+1,j) )
//
// It returns the per-interval stage capacities of an optimal partition when
// at least n stages fit, or nil otherwise.
type procInterval struct {
	first, last int // indices into the sorted processor slice
	cap         int // stages this interval can process within period K
}

func thm7Assign(n int, w float64, pl platform.Platform, procs []int, K float64) []procInterval {
	q := len(procs)
	// cap of the single interval [i..j]: replicate onto all its processors,
	// period = m*w/((j-i+1)*s_i) <= K.
	capOf := func(i, j int) int {
		c := numeric.FloorDiv(K*pl.Speeds[procs[i]]*float64(j-i+1), w)
		if c > n {
			c = n
		}
		return c
	}
	W := make([][]int, q)
	split := make([][]int, q) // -1 = keep as single interval
	for i := range W {
		W[i] = make([]int, q)
		split[i] = make([]int, q)
	}
	for i := q - 1; i >= 0; i-- {
		for j := i; j < q; j++ {
			best := capOf(i, j)
			bestSplit := -1
			for k := i; k < j; k++ {
				if v := W[i][k] + W[k+1][j]; v > best {
					best = v
					bestSplit = k
				}
			}
			if best > n {
				best = n // more capacity than stages is not useful
			}
			W[i][j] = best
			split[i][j] = bestSplit
		}
	}
	if W[0][q-1] < n {
		return nil
	}
	var leaves []procInterval
	var collect func(i, j int)
	collect = func(i, j int) {
		if k := split[i][j]; k >= 0 {
			collect(i, k)
			collect(k+1, j)
			return
		}
		leaves = append(leaves, procInterval{first: i, last: j, cap: capOf(i, j)})
	}
	collect(0, q-1)
	return leaves
}

// buildHomPipelineMapping turns per-processor-interval stage capacities into
// a concrete mapping of n identical stages, assigning each leaf interval a
// stage count of at most its capacity. Intervals left with zero stages are
// dropped (their processors stay idle).
func buildHomPipelineMapping(n int, pl platform.Platform, procs []int, leaves []procInterval) mapping.PipelineMapping {
	var m mapping.PipelineMapping
	remaining := n
	first := 0
	for _, leaf := range leaves {
		take := leaf.cap
		if take > remaining {
			take = remaining
		}
		if take == 0 {
			continue
		}
		set := make([]int, 0, leaf.last-leaf.first+1)
		for u := leaf.first; u <= leaf.last; u++ {
			set = append(set, procs[u])
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: first, Last: first + take - 1,
			Assignment: mapping.Assignment{Procs: set, Mode: mapping.Replicated},
		})
		first += take
		remaining -= take
		if remaining == 0 {
			break
		}
	}
	return m
}

// HetHomPipelinePeriodNoDP implements Theorem 7: the optimal period of a
// homogeneous pipeline (identical stage weights) on a Heterogeneous
// platform without data-parallelism, by binary search over candidate
// periods with, at each step, a loop over the number q of enrolled
// processors and the W(i,j) dynamic program.
func HetHomPipelinePeriodNoDP(p workflow.Pipeline, pl platform.Platform) (Result, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, err
	}
	if !p.IsHomogeneous() {
		return Result{}, ErrNotHomogeneousPipeline
	}
	n, w := p.Stages(), p.Weights[0]
	cands := periodCandidates(n, w, pl)
	feasible := func(K float64) mapping.PipelineMapping {
		for q := 1; q <= pl.Processors(); q++ {
			procs := pl.FastestK(q)
			if leaves := thm7Assign(n, w, pl, procs, K); leaves != nil {
				return buildHomPipelineMapping(n, pl, procs, leaves)
			}
		}
		return mapping.PipelineMapping{}
	}
	lo, hi := 0, len(cands)-1
	var best mapping.PipelineMapping
	for lo <= hi {
		mid := (lo + hi) / 2
		if m := feasible(cands[mid]); len(m.Intervals) > 0 {
			best = m
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if len(best.Intervals) == 0 {
		panic("pipealgo: Theorem 7 found no feasible period (largest candidate must be feasible)")
	}
	return finish(p, pl, best), nil
}

// thm8DP solves the Theorem 8 dynamic program for fixed period bound K:
// L(m,i,j) is the minimum latency to map m identical stages onto the
// consecutive sorted processors i..j.
//
//	L(m,i,j) = min( m*w/s_i  if m*w/((j-i+1)*s_i) <= K,
//	                min_{m',k} L(m',i,k) + L(m-m',k+1,j) )
type thm8DP struct {
	w    float64
	s    []float64 // speeds of the enrolled processors, non-decreasing
	K    float64
	n, q int
	memo []float64
	seen []bool
	chM  []int // split: stages in the left part (0 = leaf)
	chK  []int // split: last processor of the left part
}

func newThm8DP(n int, w float64, speeds []float64, K float64) *thm8DP {
	q := len(speeds)
	states := (n + 1) * q * q
	return &thm8DP{
		w: w, s: speeds, K: K, n: n, q: q,
		memo: make([]float64, states),
		seen: make([]bool, states),
		chM:  make([]int, states),
		chK:  make([]int, states),
	}
}

func (d *thm8DP) id(m, i, j int) int { return (m*d.q+i)*d.q + j }

func (d *thm8DP) solve(m, i, j int) float64 {
	id := d.id(m, i, j)
	if d.seen[id] {
		return d.memo[id]
	}
	d.seen[id] = true
	best := numeric.Inf
	chM, chK := 0, 0
	// Leaf: replicate the m stages onto processors i..j.
	if per := float64(m) * d.w / (float64(j-i+1) * d.s[i]); numeric.LessEq(per, d.K) {
		best = float64(m) * d.w / d.s[i]
	}
	// Split the stages and the processors.
	for k := i; k < j; k++ {
		for m1 := 1; m1 < m; m1++ {
			left := d.solve(m1, i, k)
			if math.IsInf(left, 1) || numeric.GreaterEq(left, best) {
				continue
			}
			right := d.solve(m-m1, k+1, j)
			if v := left + right; numeric.Less(v, best) {
				best = v
				chM, chK = m1, k
			}
		}
	}
	d.memo[id] = best
	d.chM[id] = chM
	d.chK[id] = chK
	return best
}

// reconstruct appends the intervals of the optimal solution for m stages on
// processors i..j, with stages starting at stage index *first. procs maps
// the sorted index space back to platform processor indices.
func (d *thm8DP) reconstruct(m, i, j int, first *int, procs []int, out *mapping.PipelineMapping) {
	id := d.id(m, i, j)
	if d.chM[id] == 0 {
		set := make([]int, 0, j-i+1)
		for u := i; u <= j; u++ {
			set = append(set, procs[u])
		}
		out.Intervals = append(out.Intervals, mapping.PipelineInterval{
			First: *first, Last: *first + m - 1,
			Assignment: mapping.Assignment{Procs: set, Mode: mapping.Replicated},
		})
		*first += m
		return
	}
	m1, k := d.chM[id], d.chK[id]
	d.reconstruct(m1, i, k, first, procs, out)
	d.reconstruct(m-m1, k+1, j, first, procs, out)
}

// HetHomPipelineLatencyUnderPeriodNoDP implements one direction of
// Theorem 8: the minimum latency of a homogeneous pipeline on a
// Heterogeneous platform without data-parallelism, among mappings whose
// period does not exceed maxPeriod. The boolean result is false when the
// period bound is infeasible.
func HetHomPipelineLatencyUnderPeriodNoDP(p workflow.Pipeline, pl platform.Platform, maxPeriod float64) (Result, bool, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, false, err
	}
	if !p.IsHomogeneous() {
		return Result{}, false, ErrNotHomogeneousPipeline
	}
	n, w := p.Stages(), p.Weights[0]
	bestVal := numeric.Inf
	var best mapping.PipelineMapping
	for q := 1; q <= pl.Processors(); q++ {
		procs := pl.FastestK(q)
		speeds := make([]float64, q)
		for u, idx := range procs {
			speeds[u] = pl.Speeds[idx]
		}
		d := newThm8DP(n, w, speeds, maxPeriod)
		if v := d.solve(n, 0, q-1); numeric.Less(v, bestVal) {
			bestVal = v
			var m mapping.PipelineMapping
			first := 0
			d.reconstruct(n, 0, q-1, &first, procs, &m)
			best = m
		}
	}
	if math.IsInf(bestVal, 1) {
		return Result{}, false, nil
	}
	return finish(p, pl, best), true, nil
}

// HetHomPipelinePeriodUnderLatencyNoDP implements the other direction of
// Theorem 8: the minimum period among mappings whose latency does not
// exceed maxLatency, via binary search over the finite candidate period
// set. The boolean result is false when the latency bound is infeasible.
func HetHomPipelinePeriodUnderLatencyNoDP(p workflow.Pipeline, pl platform.Platform, maxLatency float64) (Result, bool, error) {
	if err := checkInputs(p, pl); err != nil {
		return Result{}, false, err
	}
	if !p.IsHomogeneous() {
		return Result{}, false, ErrNotHomogeneousPipeline
	}
	cands := periodCandidates(p.Stages(), p.Weights[0], pl)
	lo, hi := 0, len(cands)-1
	var best Result
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok, err := HetHomPipelineLatencyUnderPeriodNoDP(p, pl, cands[mid])
		if err != nil {
			return Result{}, false, err
		}
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}
