package pipealgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestPaperRecurrenceSection2(t *testing.T) {
	got, err := HomLatencyDPPaperRecurrence(example, platform.Homogeneous(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(got, 17) {
		t.Fatalf("paper recurrence latency = %v, want 17", got)
	}
}

func TestPaperRecurrenceMatchesSplitFormulation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(6), 9)
		pl := platform.Homogeneous(1+rng.Intn(6), float64(1+rng.Intn(3)))
		paper, err := HomLatencyDPPaperRecurrence(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		split, err := HomLatencyDP(p, pl)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.Eq(paper, split.Cost.Latency) {
			t.Fatalf("trial %d: paper recurrence %v != split formulation %v (pipe=%v p=%d)",
				trial, paper, split.Cost.Latency, p.Weights, pl.Processors())
		}
	}
}

func TestPaperRecurrenceRejectsHetPlatform(t *testing.T) {
	if _, err := HomLatencyDPPaperRecurrence(example, platform.New(1, 2)); err != ErrNotHomogeneousPlatform {
		t.Fatalf("err = %v", err)
	}
}
