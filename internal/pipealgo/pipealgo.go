// Package pipealgo implements the polynomial mapping algorithms of Benoit &
// Robert (RR-6308) for pipeline graphs — the paper's primary contribution:
//
//   - Theorem 1: period minimization on Homogeneous platforms (replicate
//     everything on every processor), with or without data-parallelism.
//   - Theorem 2 / Corollary 1: latency and bi-criteria optimization on
//     Homogeneous platforms without data-parallelism.
//   - Theorem 3: latency minimization on Homogeneous platforms with
//     data-parallelism, by dynamic programming.
//   - Theorem 4: bi-criteria optimization on Homogeneous platforms with
//     data-parallelism, by dynamic programming.
//   - Theorem 6: latency minimization on Heterogeneous platforms without
//     data-parallelism (whole pipeline on a fastest processor).
//   - Theorem 7: period minimization of a homogeneous pipeline on
//     Heterogeneous platforms without data-parallelism, by binary search
//     over candidate periods and a dynamic program over processor intervals
//     (Lemma 3 structure).
//   - Theorem 8: bi-criteria optimization of a homogeneous pipeline on
//     Heterogeneous platforms without data-parallelism.
//
// The NP-hard instances (Theorems 5 and 9) have no polynomial algorithm
// here; see internal/heuristics for approximations and internal/exhaustive
// for exact exponential baselines.
package pipealgo

import (
	"errors"
	"fmt"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Result is a computed mapping together with its exact cost.
type Result struct {
	Mapping mapping.PipelineMapping
	Cost    mapping.Cost
}

// ErrNotHomogeneousPlatform is returned by the Homogeneous-platform
// algorithms when speeds differ.
var ErrNotHomogeneousPlatform = errors.New("pipealgo: platform is not homogeneous")

// ErrNotHomogeneousPipeline is returned by the Theorem 7/8 algorithms when
// stage weights differ (the heterogeneous-pipeline variant is NP-hard,
// Theorem 9).
var ErrNotHomogeneousPipeline = errors.New("pipealgo: pipeline stages are not identical")

func checkInputs(p workflow.Pipeline, pl platform.Platform) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return pl.Validate()
}

// finish evaluates a constructed mapping, panicking on structural errors
// (which would indicate a bug in the algorithm, not bad user input).
func finish(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping) Result {
	c, err := mapping.EvalPipeline(p, pl, m)
	if err != nil {
		panic(fmt.Sprintf("pipealgo: constructed invalid mapping %v: %v", m, err))
	}
	return Result{Mapping: m, Cost: c}
}
