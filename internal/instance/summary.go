package instance

import (
	"fmt"
	"io"

	"repliflow/internal/core"
)

// WriteSummary prints one aligned summary line per solved instance —
// period, latency, exactness and Table 1 cell — preceded by a header.
// Shared by the wfgen and wfmap batch modes so the two CLIs cannot
// drift apart.
func WriteSummary(w io.Writer, names []string, sols []core.Solution) {
	fmt.Fprintf(w, "%-28s %-12s %-12s %-9s %s\n", "instance", "period", "latency", "exact", "cell")
	for i, sol := range sols {
		if !sol.Feasible {
			fmt.Fprintf(w, "%-28s %-12s %-12s %-9v %s (%s)\n",
				names[i], "infeasible", "-", sol.Exact, sol.Classification.Complexity, sol.Classification.Source)
			continue
		}
		fmt.Fprintf(w, "%-28s %-12.6g %-12.6g %-9v %s (%s)\n",
			names[i], sol.Cost.Period, sol.Cost.Latency, sol.Exact, sol.Classification.Complexity, sol.Classification.Source)
	}
}
