package instance

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestRoundTripPipeline(t *testing.T) {
	p := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{
		Pipeline:          &p,
		Platform:          platform.New(2, 2, 1, 1),
		AllowDataParallel: true,
		Objective:         core.MinLatency,
	}
	var buf bytes.Buffer
	if err := Write(&buf, FromProblem(pr)); err != nil {
		t.Fatal(err)
	}
	ins, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ins.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if got.Pipeline == nil || got.Pipeline.Stages() != 4 || got.Pipeline.Weights[0] != 14 {
		t.Fatalf("pipeline mangled: %+v", got.Pipeline)
	}
	if got.Platform.Processors() != 4 || !got.AllowDataParallel || got.Objective != core.MinLatency {
		t.Fatalf("problem mangled: %+v", got)
	}
}

func TestRoundTripForkAndForkJoin(t *testing.T) {
	f := workflow.NewFork(2, 1, 3)
	pr := core.Problem{Fork: &f, Platform: platform.New(1, 2), Objective: core.MinPeriod}
	ins := FromProblem(pr)
	got, err := ins.Problem()
	if err != nil {
		t.Fatal(err)
	}
	if got.Fork == nil || got.Fork.Root != 2 || got.Fork.Leaves() != 2 {
		t.Fatalf("fork mangled: %+v", got.Fork)
	}

	fj := workflow.NewForkJoin(2, 5, 1, 3)
	pr = core.Problem{ForkJoin: &fj, Platform: platform.New(1, 2), Objective: core.LatencyUnderPeriod, Bound: 4}
	got, err = FromProblem(pr).Problem()
	if err != nil {
		t.Fatal(err)
	}
	if got.ForkJoin == nil || got.ForkJoin.Join != 5 || got.Bound != 4 {
		t.Fatalf("fork-join mangled: %+v", got)
	}
}

// TestRoundTripSPAndComm covers the extended wire format: SP graphs with
// their dependency lists, data sizes, and the bandwidth annotation.
func TestRoundTripSPAndComm(t *testing.T) {
	sp := workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 2},
		workflow.SPStep{Name: "b", Weight: 1, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
	cp := fullmodel.NewPipeline([]float64{3, 1, 2}, []float64{1, 2, 1, 1})
	cf := fullmodel.Fork{Root: 2, In: 1, Out0: 1, Weights: []float64{3, 1}, Outs: []float64{1, 1}}
	problems := []core.Problem{
		{SP: &sp, Platform: platform.New(1, 2), Objective: core.MinPeriod},
		{CommPipeline: &cp, Bandwidth: &fullmodel.Bandwidth{Uniform: 4}, Platform: platform.Homogeneous(2, 1), Objective: core.MinPeriod},
		{CommFork: &cf, Bandwidth: &fullmodel.Bandwidth{
			Links: [][]float64{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}},
			In:    []float64{1, 1, 1},
			Out:   []float64{1, 1, 1},
		}, Platform: platform.New(1, 1, 2), Objective: core.MinLatency},
	}
	for i, pr := range problems {
		var buf bytes.Buffer
		if err := Write(&buf, FromProblem(pr)); err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		ins, err := Read(&buf)
		if err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		got, err := ins.Problem()
		if err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, pr) {
			t.Errorf("problem %d round trip drift:\n got %#v\nwant %#v", i, got, pr)
		}
	}
}

func TestParseJSONLiteral(t *testing.T) {
	src := `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "latency-under-period",
		"bound": 10
	}`
	ins, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ins.Problem()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.Solve(pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Feasible || sol.Cost.Latency != 17 {
		t.Fatalf("end-to-end solve: %v", sol)
	}
}

func TestRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"platform": {"speeds":[1]}, "objective": "min-period"}`,                                                            // no graph
		`{"pipeline":{"weights":[1]}, "fork":{"root":1,"weights":[1]}, "platform":{"speeds":[1]}, "objective":"min-period"}`, // two graphs
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[1]}, "objective":"maximize-fun"}`,                                // bad objective
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[]}, "objective":"min-period"}`,                                   // empty platform
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[1]}, "objective":"latency-under-period"}`,                        // missing bound
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[1]}, "objective":"min-period", "bound": 5}`,                      // stray bound
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[1]}, "objective":"min-period", "zzz": 1}`,                        // unknown field
		`not json at all`,
		`{"pipeline":{"weights":[1]}, "platform":{"speeds":[1]}, "objective":"min-period"} %%%`, // trailing garbage
	}
	for i, src := range cases {
		ins, err := Read(strings.NewReader(src))
		if err != nil {
			continue // rejected at decode time
		}
		if _, err := ins.Problem(); err == nil {
			t.Errorf("case %d accepted: %s", i, src)
		}
	}
}

func TestObjectiveNames(t *testing.T) {
	for _, o := range []core.Objective{core.MinPeriod, core.MinLatency, core.LatencyUnderPeriod, core.PeriodUnderLatency} {
		name := ObjectiveName(o)
		if name == "" {
			t.Fatalf("objective %v has no name", o)
		}
		back, err := ParseObjective(name)
		if err != nil || back != o {
			t.Fatalf("round trip of %v failed: %v %v", o, back, err)
		}
	}
	if _, err := ParseObjective("bogus"); err == nil {
		t.Fatal("bogus objective accepted")
	}
}
