package instance_test

import (
	"bytes"
	"reflect"
	"testing"

	"repliflow/internal/instance"
)

// FuzzDecodeInstance fuzzes the wire-format instance decoder — the
// surface every CLI file and HTTP body passes through. The decoder must
// never panic, and any document it accepts must canonicalize into a
// valid problem that survives a write/read round-trip unchanged.
func FuzzDecodeInstance(f *testing.F) {
	seeds := []string{
		`{"pipeline":{"weights":[14,4,2,4]},"platform":{"speeds":[1,1,1]},"allowDataParallel":true,"objective":"min-latency"}`,
		`{"fork":{"root":2,"weights":[3,1,4]},"platform":{"speeds":[2,1]},"objective":"min-period"}`,
		`{"forkjoin":{"root":2,"join":1,"weights":[3,1]},"platform":{"speeds":[2,1,1]},"objective":"latency-under-period","bound":4}`,
		`{"pipeline":{"weights":[1]},"platform":{"speeds":[1]},"objective":"period-under-latency","bound":2}`,
		`{"pipeline":{"weights":[1,-2]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"pipeline":{"weights":[1]},"platform":{"speeds":[1]},"objective":"min-period"} trailing`,
		`{"pipleine":{"weights":[1]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"pipeline":{"weights":[1e308,1e308]},"platform":{"speeds":[1e-308]},"objective":"min-period"}`,
		`{}`,
		`[1,2,3]`,
		`null`,
		// Series-parallel graphs: a valid diamond, then the malformed
		// variants the SP validator must reject — a dependency cycle, a
		// dangling after-reference, a duplicate step name, and trailing
		// garbage after a valid document.
		`{"sp":{"steps":[{"name":"a","weight":2},{"name":"b","weight":1,"after":["a"]},{"name":"c","weight":3,"after":["a"]},{"name":"d","weight":1,"after":["b","c"]}]},"platform":{"speeds":[1,1]},"objective":"min-period"}`,
		`{"sp":{"steps":[{"name":"a","weight":1,"after":["b"]},{"name":"b","weight":1,"after":["a"]}]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"sp":{"steps":[{"name":"a","weight":1},{"name":"b","weight":1,"after":["zz"]}]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"sp":{"steps":[{"name":"a","weight":1},{"name":"a","weight":2}]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"sp":{"steps":[{"name":"a","weight":1}]},"platform":{"speeds":[1]},"objective":"min-period"} garbage`,
		// Communication-aware kinds: data sizes plus a bandwidth-annotated
		// platform, a bandwidth-less comm instance (invalid), a bandwidth
		// on a simplified-model instance (invalid), and a bandwidth giving
		// both the uniform and the table form (invalid).
		`{"commPipeline":{"weights":[3,1,2],"data":[1,2,1,1]},"platform":{"speeds":[1,2],"bandwidth":{"uniform":4}},"objective":"min-period"}`,
		`{"commFork":{"root":2,"in":1,"broadcast":1,"weights":[3,1],"outs":[1,1]},"platform":{"speeds":[1,1,2],"bandwidth":{"links":[[0,1,1],[1,0,1],[1,1,0]],"in":[1,1,1],"out":[1,1,1]}},"objective":"min-latency"}`,
		`{"commPipeline":{"weights":[1],"data":[1,1]},"platform":{"speeds":[1]},"objective":"min-period"}`,
		`{"pipeline":{"weights":[1]},"platform":{"speeds":[1],"bandwidth":{"uniform":1}},"objective":"min-period"}`,
		`{"commPipeline":{"weights":[1],"data":[1,1]},"platform":{"speeds":[1],"bandwidth":{"uniform":1,"in":[1],"out":[1],"links":[[0]]}},"objective":"min-period"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := instance.Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it does not panic
		}
		pr, err := ins.Problem()
		if err != nil {
			return // decoded but invalid: fine
		}
		// Accepted instances must round-trip: problem -> document ->
		// problem is the identity.
		back := instance.FromProblem(pr)
		var buf bytes.Buffer
		if err := instance.Write(&buf, back); err != nil {
			t.Fatalf("re-encoding accepted instance: %v", err)
		}
		ins2, err := instance.Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-decoding canonical form %s: %v", buf.Bytes(), err)
		}
		pr2, err := ins2.Problem()
		if err != nil {
			t.Fatalf("canonical form no longer canonicalizes: %v", err)
		}
		if !reflect.DeepEqual(pr, pr2) {
			t.Fatalf("round-trip changed the problem:\n%#v\n%#v", pr, pr2)
		}
	})
}
