package instance

import (
	"fmt"

	"repliflow/internal/core"
	"repliflow/internal/mapping"
)

// IntervalJSON is the wire form of one pipeline interval: stages
// First..Last (0-indexed, inclusive) on the given processors. See
// docs/wire-format.md.
type IntervalJSON struct {
	First int    `json:"first"`
	Last  int    `json:"last"`
	Procs []int  `json:"procs"`
	Mode  string `json:"mode"`
}

// BlockJSON is the wire form of one fork or fork-join block. Join is only
// meaningful (and only emitted) for fork-join mappings.
type BlockJSON struct {
	Root   bool   `json:"root,omitempty"`
	Join   bool   `json:"join,omitempty"`
	Leaves []int  `json:"leaves,omitempty"`
	Procs  []int  `json:"procs"`
	Mode   string `json:"mode"`
}

// SolutionJSON is the wire form of a core.Solution: the mapping (exactly
// one of the three mapping fields is non-empty on feasible solutions),
// its cost, and the solve provenance. FromSolution and
// SolutionJSON.Solution round-trip losslessly. See docs/wire-format.md.
type SolutionJSON struct {
	PipelineMapping []IntervalJSON `json:"pipelineMapping,omitempty"`
	ForkMapping     []BlockJSON    `json:"forkMapping,omitempty"`
	ForkJoinMapping []BlockJSON    `json:"forkjoinMapping,omitempty"`

	Period   float64 `json:"period"`
	Latency  float64 `json:"latency"`
	Feasible bool    `json:"feasible"`
	Exact    bool    `json:"exact"`

	Method     string `json:"method"`
	Complexity string `json:"complexity"`
	Source     string `json:"source"`

	// Anytime marks solutions produced by the budget-bounded portfolio
	// (method "anytime" or a certified exact member). Gap is the
	// certified relative optimality gap (present iff Anytime, >= 0, 0 on
	// proven optima), LowerBound the bound it was computed against, and
	// Iterations the portfolio's candidate count. See docs/wire-format.md.
	Anytime    bool     `json:"anytime,omitempty"`
	Gap        *float64 `json:"gap,omitempty"`
	LowerBound float64  `json:"lowerBound,omitempty"`
	Iterations uint64   `json:"iterations,omitempty"`
}

// modeNames maps wire names to mapping modes; they match Mode.String().
var modeNames = map[string]mapping.Mode{
	"replicated":    mapping.Replicated,
	"data-parallel": mapping.DataParallel,
}

// ModeName returns the wire name of a mapping mode.
func ModeName(m mapping.Mode) string { return m.String() }

// ParseMode converts a wire mode name.
func ParseMode(name string) (mapping.Mode, error) {
	m, ok := modeNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown mode %q (want replicated or data-parallel)", name)
	}
	return m, nil
}

// methodNames maps wire names to solve methods; they match Method.String().
var methodNames = map[string]core.Method{
	"closed-form":         core.MethodClosedForm,
	"dynamic-programming": core.MethodDP,
	"binary-search+DP":    core.MethodBinarySearchDP,
	"exhaustive":          core.MethodExhaustive,
	"heuristic":           core.MethodHeuristic,
	"anytime":             core.MethodAnytime,
}

// MethodName returns the wire name of a solve method.
func MethodName(m core.Method) string { return m.String() }

// ParseMethod converts a wire method name.
func ParseMethod(name string) (core.Method, error) {
	m, ok := methodNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown method %q", name)
	}
	return m, nil
}

// complexityNames maps wire names to Table 1 complexity classes. Unlike
// Complexity.String() (which uses the paper's typography, "Poly (str)"),
// the wire names are lowercase machine tokens.
var complexityNames = map[string]core.Complexity{
	"poly-str":  core.PolyStraightforward,
	"poly-dp":   core.PolyDP,
	"poly-star": core.PolyBinarySearchDP,
	"np-hard":   core.NPHard,
}

// ComplexityName returns the wire name of a complexity class.
func ComplexityName(c core.Complexity) string {
	for name, v := range complexityNames {
		if v == c {
			return name
		}
	}
	return ""
}

// ParseComplexity converts a wire complexity name.
func ParseComplexity(name string) (core.Complexity, error) {
	c, ok := complexityNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown complexity %q (want poly-str, poly-dp, poly-star or np-hard)", name)
	}
	return c, nil
}

// FromSolution converts a core.Solution into its wire form.
func FromSolution(sol core.Solution) SolutionJSON {
	s := SolutionJSON{
		Period:     sol.Cost.Period,
		Latency:    sol.Cost.Latency,
		Feasible:   sol.Feasible,
		Exact:      sol.Exact,
		Method:     MethodName(sol.Method),
		Complexity: ComplexityName(sol.Classification.Complexity),
		Source:     sol.Classification.Source,
	}
	if sol.Anytime {
		s.Anytime = true
		gap := sol.Gap
		s.Gap = &gap
		s.LowerBound = sol.LowerBound
		s.Iterations = sol.Iterations
	}
	switch {
	case sol.PipelineMapping != nil:
		s.PipelineMapping = make([]IntervalJSON, len(sol.PipelineMapping.Intervals))
		for i, iv := range sol.PipelineMapping.Intervals {
			s.PipelineMapping[i] = IntervalJSON{
				First: iv.First, Last: iv.Last,
				Procs: iv.Procs, Mode: ModeName(iv.Mode),
			}
		}
	case sol.ForkMapping != nil:
		s.ForkMapping = make([]BlockJSON, len(sol.ForkMapping.Blocks))
		for i, b := range sol.ForkMapping.Blocks {
			s.ForkMapping[i] = BlockJSON{
				Root: b.Root, Leaves: b.Leaves,
				Procs: b.Procs, Mode: ModeName(b.Mode),
			}
		}
	case sol.ForkJoinMapping != nil:
		s.ForkJoinMapping = make([]BlockJSON, len(sol.ForkJoinMapping.Blocks))
		for i, b := range sol.ForkJoinMapping.Blocks {
			s.ForkJoinMapping[i] = BlockJSON{
				Root: b.Root, Join: b.Join, Leaves: b.Leaves,
				Procs: b.Procs, Mode: ModeName(b.Mode),
			}
		}
	}
	return s
}

// Solution converts the wire form back into a core.Solution. At most one
// of the mapping fields may be non-empty; mapping-level validity (index
// ranges, disjointness) is not checked here — evaluate the mapping
// against its problem for that.
func (s SolutionJSON) Solution() (core.Solution, error) {
	method, err := ParseMethod(s.Method)
	if err != nil {
		return core.Solution{}, err
	}
	complexity, err := ParseComplexity(s.Complexity)
	if err != nil {
		return core.Solution{}, err
	}
	sol := core.Solution{
		Cost:     mapping.Cost{Period: s.Period, Latency: s.Latency},
		Feasible: s.Feasible,
		Exact:    s.Exact,
		Method:   method,
		Classification: core.Classification{
			Complexity: complexity,
			Source:     s.Source,
		},
	}
	if !s.Anytime && (s.Gap != nil || s.LowerBound != 0 || s.Iterations != 0) {
		return core.Solution{}, fmt.Errorf("instance: gap/lowerBound/iterations require anytime")
	}
	if method == core.MethodAnytime && !s.Anytime {
		return core.Solution{}, fmt.Errorf("instance: method %q requires anytime", s.Method)
	}
	if s.Anytime {
		sol.Anytime = true
		if s.Gap == nil {
			// Gap is present iff anytime (docs/wire-format.md); decoding
			// an absent gap to 0 would misreport an uncertified incumbent
			// as a proven optimum.
			return core.Solution{}, fmt.Errorf("instance: anytime solution without gap")
		}
		if *s.Gap < 0 {
			return core.Solution{}, fmt.Errorf("instance: negative gap %g", *s.Gap)
		}
		sol.Gap = *s.Gap
		sol.LowerBound = s.LowerBound
		sol.Iterations = s.Iterations
	}
	mappings := 0
	if len(s.PipelineMapping) > 0 {
		mappings++
		m := &mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, len(s.PipelineMapping))}
		for i, iv := range s.PipelineMapping {
			mode, err := ParseMode(iv.Mode)
			if err != nil {
				return core.Solution{}, err
			}
			m.Intervals[i] = mapping.NewPipelineInterval(iv.First, iv.Last, mode, iv.Procs...)
		}
		sol.PipelineMapping = m
	}
	if len(s.ForkMapping) > 0 {
		mappings++
		m := &mapping.ForkMapping{Blocks: make([]mapping.ForkBlock, len(s.ForkMapping))}
		for i, b := range s.ForkMapping {
			mode, err := ParseMode(b.Mode)
			if err != nil {
				return core.Solution{}, err
			}
			if b.Join {
				return core.Solution{}, fmt.Errorf("instance: forkMapping block %d sets join", i)
			}
			m.Blocks[i] = mapping.NewForkBlock(b.Root, b.Leaves, mode, b.Procs...)
		}
		sol.ForkMapping = m
	}
	if len(s.ForkJoinMapping) > 0 {
		mappings++
		m := &mapping.ForkJoinMapping{Blocks: make([]mapping.ForkJoinBlock, len(s.ForkJoinMapping))}
		for i, b := range s.ForkJoinMapping {
			mode, err := ParseMode(b.Mode)
			if err != nil {
				return core.Solution{}, err
			}
			m.Blocks[i] = mapping.NewForkJoinBlock(b.Root, b.Join, b.Leaves, mode, b.Procs...)
		}
		sol.ForkJoinMapping = m
	}
	if mappings > 1 {
		return core.Solution{}, fmt.Errorf("instance: at most one of pipelineMapping, forkMapping, forkjoinMapping may be set")
	}
	return sol, nil
}
