package instance

import (
	"fmt"

	"repliflow/internal/core"
	"repliflow/internal/fullmodel"
	"repliflow/internal/mapping"
	"repliflow/internal/workflow"
)

// IntervalJSON is the wire form of one pipeline interval: stages
// First..Last (0-indexed, inclusive) on the given processors. See
// docs/wire-format.md.
type IntervalJSON struct {
	First int    `json:"first"`
	Last  int    `json:"last"`
	Procs []int  `json:"procs"`
	Mode  string `json:"mode"`
}

// BlockJSON is the wire form of one fork or fork-join block. Join is only
// meaningful (and only emitted) for fork-join mappings.
type BlockJSON struct {
	Root   bool   `json:"root,omitempty"`
	Join   bool   `json:"join,omitempty"`
	Leaves []int  `json:"leaves,omitempty"`
	Procs  []int  `json:"procs"`
	Mode   string `json:"mode"`
}

// SPBlockJSON is the wire form of one block of a direct (irreducible)
// series-parallel mapping: the listed step indices on one processor.
type SPBlockJSON struct {
	Proc  int   `json:"proc"`
	Steps []int `json:"steps"`
}

// SPMappingJSON is the wire form of a series-parallel mapping. Reduced
// names the shape the decomposer collapsed the DAG onto ("pipeline",
// "fork", "fork-join" — then order maps reduced stage positions back to
// step indices and exactly one of pipeline/fork/forkjoin carries the
// embedded legacy mapping) or "sp" for an irreducible DAG solved in the
// block model (then blocks is set).
type SPMappingJSON struct {
	Reduced  string         `json:"reduced"`
	Order    []int          `json:"order,omitempty"`
	Pipeline []IntervalJSON `json:"pipeline,omitempty"`
	Fork     []BlockJSON    `json:"fork,omitempty"`
	ForkJoin []BlockJSON    `json:"forkjoin,omitempty"`
	Blocks   []SPBlockJSON  `json:"blocks,omitempty"`
}

// CommIntervalJSON is one interval of a communication-aware pipeline
// mapping: the stages from the previous interval's end (0 for the first)
// up to end (exclusive) on processor proc.
type CommIntervalJSON struct {
	End  int `json:"end"`
	Proc int `json:"proc"`
}

// CommForkBlockJSON is one block of a communication-aware fork mapping.
type CommForkBlockJSON struct {
	Proc   int   `json:"proc"`
	Leaves []int `json:"leaves,omitempty"`
}

// CommForkMappingJSON is the wire form of a one-port fork mapping:
// rootBlock indexes the block holding S0, sendOrder (optional) lists the
// non-root block indices in the root's serialized send order.
type CommForkMappingJSON struct {
	RootBlock int                 `json:"rootBlock"`
	Blocks    []CommForkBlockJSON `json:"blocks"`
	SendOrder []int               `json:"sendOrder,omitempty"`
}

// SolutionJSON is the wire form of a core.Solution: the mapping (exactly
// one of the mapping fields is non-empty on feasible solutions), its
// cost, and the solve provenance. FromSolution and
// SolutionJSON.Solution round-trip losslessly. See docs/wire-format.md.
type SolutionJSON struct {
	PipelineMapping     []IntervalJSON       `json:"pipelineMapping,omitempty"`
	ForkMapping         []BlockJSON          `json:"forkMapping,omitempty"`
	ForkJoinMapping     []BlockJSON          `json:"forkjoinMapping,omitempty"`
	SPMapping           *SPMappingJSON       `json:"spMapping,omitempty"`
	CommPipelineMapping []CommIntervalJSON   `json:"commPipelineMapping,omitempty"`
	CommForkMapping     *CommForkMappingJSON `json:"commForkMapping,omitempty"`

	Period   float64 `json:"period"`
	Latency  float64 `json:"latency"`
	Feasible bool    `json:"feasible"`
	Exact    bool    `json:"exact"`

	Method     string `json:"method"`
	Complexity string `json:"complexity"`
	Source     string `json:"source"`

	// Anytime marks solutions produced by the budget-bounded portfolio
	// (method "anytime" or a certified exact member). Gap is the
	// certified relative optimality gap (present iff Anytime, >= 0, 0 on
	// proven optima), LowerBound the bound it was computed against, and
	// Iterations the portfolio's candidate count. See docs/wire-format.md.
	Anytime    bool     `json:"anytime,omitempty"`
	Gap        *float64 `json:"gap,omitempty"`
	LowerBound float64  `json:"lowerBound,omitempty"`
	Iterations uint64   `json:"iterations,omitempty"`
}

// modeNames maps wire names to mapping modes; they match Mode.String().
var modeNames = map[string]mapping.Mode{
	"replicated":    mapping.Replicated,
	"data-parallel": mapping.DataParallel,
}

// ModeName returns the wire name of a mapping mode.
func ModeName(m mapping.Mode) string { return m.String() }

// ParseMode converts a wire mode name.
func ParseMode(name string) (mapping.Mode, error) {
	m, ok := modeNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown mode %q (want replicated or data-parallel)", name)
	}
	return m, nil
}

// methodNames maps wire names to solve methods; they match Method.String().
var methodNames = map[string]core.Method{
	"closed-form":         core.MethodClosedForm,
	"dynamic-programming": core.MethodDP,
	"binary-search+DP":    core.MethodBinarySearchDP,
	"exhaustive":          core.MethodExhaustive,
	"heuristic":           core.MethodHeuristic,
	"anytime":             core.MethodAnytime,
}

// MethodName returns the wire name of a solve method.
func MethodName(m core.Method) string { return m.String() }

// ParseMethod converts a wire method name.
func ParseMethod(name string) (core.Method, error) {
	m, ok := methodNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown method %q", name)
	}
	return m, nil
}

// complexityNames maps wire names to Table 1 complexity classes. Unlike
// Complexity.String() (which uses the paper's typography, "Poly (str)"),
// the wire names are lowercase machine tokens.
var complexityNames = map[string]core.Complexity{
	"poly-str":  core.PolyStraightforward,
	"poly-dp":   core.PolyDP,
	"poly-star": core.PolyBinarySearchDP,
	"np-hard":   core.NPHard,
}

// ComplexityName returns the wire name of a complexity class.
func ComplexityName(c core.Complexity) string {
	for name, v := range complexityNames {
		if v == c {
			return name
		}
	}
	return ""
}

// ParseComplexity converts a wire complexity name.
func ParseComplexity(name string) (core.Complexity, error) {
	c, ok := complexityNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown complexity %q (want poly-str, poly-dp, poly-star or np-hard)", name)
	}
	return c, nil
}

// FromSolution converts a core.Solution into its wire form.
func FromSolution(sol core.Solution) SolutionJSON {
	s := SolutionJSON{
		Period:     sol.Cost.Period,
		Latency:    sol.Cost.Latency,
		Feasible:   sol.Feasible,
		Exact:      sol.Exact,
		Method:     MethodName(sol.Method),
		Complexity: ComplexityName(sol.Classification.Complexity),
		Source:     sol.Classification.Source,
	}
	if sol.Anytime {
		s.Anytime = true
		gap := sol.Gap
		s.Gap = &gap
		s.LowerBound = sol.LowerBound
		s.Iterations = sol.Iterations
	}
	switch {
	case sol.PipelineMapping != nil:
		s.PipelineMapping = encodeIntervals(sol.PipelineMapping.Intervals)
	case sol.ForkMapping != nil:
		s.ForkMapping = encodeForkBlocks(sol.ForkMapping.Blocks)
	case sol.ForkJoinMapping != nil:
		s.ForkJoinMapping = encodeForkJoinBlocks(sol.ForkJoinMapping.Blocks)
	case sol.SPMapping != nil:
		m := sol.SPMapping
		sm := &SPMappingJSON{Reduced: m.Reduced.String(), Order: m.Order}
		switch {
		case m.Pipeline != nil:
			sm.Pipeline = encodeIntervals(m.Pipeline.Intervals)
		case m.Fork != nil:
			sm.Fork = encodeForkBlocks(m.Fork.Blocks)
		case m.ForkJoin != nil:
			sm.ForkJoin = encodeForkJoinBlocks(m.ForkJoin.Blocks)
		default:
			sm.Blocks = make([]SPBlockJSON, len(m.Blocks))
			for i, b := range m.Blocks {
				sm.Blocks[i] = SPBlockJSON{Proc: b.Proc, Steps: b.Steps}
			}
		}
		s.SPMapping = sm
	case sol.CommPipelineMapping != nil:
		m := sol.CommPipelineMapping
		s.CommPipelineMapping = make([]CommIntervalJSON, len(m.Bounds))
		for i, end := range m.Bounds {
			s.CommPipelineMapping[i] = CommIntervalJSON{End: end, Proc: m.Alloc[i]}
		}
	case sol.CommForkMapping != nil:
		m := sol.CommForkMapping
		cm := &CommForkMappingJSON{RootBlock: m.RootBlock, SendOrder: m.SendOrder}
		cm.Blocks = make([]CommForkBlockJSON, len(m.Blocks))
		for i, b := range m.Blocks {
			cm.Blocks[i] = CommForkBlockJSON{Proc: b.Proc, Leaves: b.Leaves}
		}
		s.CommForkMapping = cm
	}
	return s
}

func encodeIntervals(ivs []mapping.PipelineInterval) []IntervalJSON {
	out := make([]IntervalJSON, len(ivs))
	for i, iv := range ivs {
		out[i] = IntervalJSON{First: iv.First, Last: iv.Last, Procs: iv.Procs, Mode: ModeName(iv.Mode)}
	}
	return out
}

func encodeForkBlocks(bs []mapping.ForkBlock) []BlockJSON {
	out := make([]BlockJSON, len(bs))
	for i, b := range bs {
		out[i] = BlockJSON{Root: b.Root, Leaves: b.Leaves, Procs: b.Procs, Mode: ModeName(b.Mode)}
	}
	return out
}

func encodeForkJoinBlocks(bs []mapping.ForkJoinBlock) []BlockJSON {
	out := make([]BlockJSON, len(bs))
	for i, b := range bs {
		out[i] = BlockJSON{Root: b.Root, Join: b.Join, Leaves: b.Leaves, Procs: b.Procs, Mode: ModeName(b.Mode)}
	}
	return out
}

func decodeIntervals(ivs []IntervalJSON) (*mapping.PipelineMapping, error) {
	m := &mapping.PipelineMapping{Intervals: make([]mapping.PipelineInterval, len(ivs))}
	for i, iv := range ivs {
		mode, err := ParseMode(iv.Mode)
		if err != nil {
			return nil, err
		}
		m.Intervals[i] = mapping.NewPipelineInterval(iv.First, iv.Last, mode, iv.Procs...)
	}
	return m, nil
}

func decodeForkBlocks(bs []BlockJSON) (*mapping.ForkMapping, error) {
	m := &mapping.ForkMapping{Blocks: make([]mapping.ForkBlock, len(bs))}
	for i, b := range bs {
		mode, err := ParseMode(b.Mode)
		if err != nil {
			return nil, err
		}
		if b.Join {
			return nil, fmt.Errorf("instance: fork block %d sets join", i)
		}
		m.Blocks[i] = mapping.NewForkBlock(b.Root, b.Leaves, mode, b.Procs...)
	}
	return m, nil
}

func decodeForkJoinBlocks(bs []BlockJSON) (*mapping.ForkJoinMapping, error) {
	m := &mapping.ForkJoinMapping{Blocks: make([]mapping.ForkJoinBlock, len(bs))}
	for i, b := range bs {
		mode, err := ParseMode(b.Mode)
		if err != nil {
			return nil, err
		}
		m.Blocks[i] = mapping.NewForkJoinBlock(b.Root, b.Join, b.Leaves, mode, b.Procs...)
	}
	return m, nil
}

// Solution converts the wire form back into a core.Solution. At most one
// of the mapping fields may be non-empty; mapping-level validity (index
// ranges, disjointness) is not checked here — evaluate the mapping
// against its problem for that.
func (s SolutionJSON) Solution() (core.Solution, error) {
	method, err := ParseMethod(s.Method)
	if err != nil {
		return core.Solution{}, err
	}
	complexity, err := ParseComplexity(s.Complexity)
	if err != nil {
		return core.Solution{}, err
	}
	sol := core.Solution{
		Cost:     mapping.Cost{Period: s.Period, Latency: s.Latency},
		Feasible: s.Feasible,
		Exact:    s.Exact,
		Method:   method,
		Classification: core.Classification{
			Complexity: complexity,
			Source:     s.Source,
		},
	}
	if !s.Anytime && (s.Gap != nil || s.LowerBound != 0 || s.Iterations != 0) {
		return core.Solution{}, fmt.Errorf("instance: gap/lowerBound/iterations require anytime")
	}
	if method == core.MethodAnytime && !s.Anytime {
		return core.Solution{}, fmt.Errorf("instance: method %q requires anytime", s.Method)
	}
	if s.Anytime {
		sol.Anytime = true
		if s.Gap == nil {
			// Gap is present iff anytime (docs/wire-format.md); decoding
			// an absent gap to 0 would misreport an uncertified incumbent
			// as a proven optimum.
			return core.Solution{}, fmt.Errorf("instance: anytime solution without gap")
		}
		if *s.Gap < 0 {
			return core.Solution{}, fmt.Errorf("instance: negative gap %g", *s.Gap)
		}
		sol.Gap = *s.Gap
		sol.LowerBound = s.LowerBound
		sol.Iterations = s.Iterations
	}
	mappings := 0
	if len(s.PipelineMapping) > 0 {
		mappings++
		m, err := decodeIntervals(s.PipelineMapping)
		if err != nil {
			return core.Solution{}, err
		}
		sol.PipelineMapping = m
	}
	if len(s.ForkMapping) > 0 {
		mappings++
		m, err := decodeForkBlocks(s.ForkMapping)
		if err != nil {
			return core.Solution{}, err
		}
		sol.ForkMapping = m
	}
	if len(s.ForkJoinMapping) > 0 {
		mappings++
		m, err := decodeForkJoinBlocks(s.ForkJoinMapping)
		if err != nil {
			return core.Solution{}, err
		}
		sol.ForkJoinMapping = m
	}
	if s.SPMapping != nil {
		mappings++
		m, err := s.SPMapping.decode()
		if err != nil {
			return core.Solution{}, err
		}
		sol.SPMapping = m
	}
	if len(s.CommPipelineMapping) > 0 {
		mappings++
		m := &fullmodel.Mapping{
			Bounds: make([]int, len(s.CommPipelineMapping)),
			Alloc:  make([]int, len(s.CommPipelineMapping)),
		}
		for i, iv := range s.CommPipelineMapping {
			m.Bounds[i] = iv.End
			m.Alloc[i] = iv.Proc
		}
		sol.CommPipelineMapping = m
	}
	if s.CommForkMapping != nil {
		mappings++
		m := &fullmodel.ForkMapping{
			RootBlock: s.CommForkMapping.RootBlock,
			Blocks:    make([]fullmodel.ForkBlock, len(s.CommForkMapping.Blocks)),
			SendOrder: s.CommForkMapping.SendOrder,
		}
		for i, b := range s.CommForkMapping.Blocks {
			m.Blocks[i] = fullmodel.ForkBlock{Proc: b.Proc, Leaves: b.Leaves}
		}
		sol.CommForkMapping = m
	}
	if mappings > 1 {
		return core.Solution{}, fmt.Errorf("instance: at most one of pipelineMapping, forkMapping, forkjoinMapping, spMapping, commPipelineMapping, commForkMapping may be set")
	}
	return sol, nil
}

// decode converts the wire SP mapping; the embedded shape must match the
// reduced kind name — a "pipeline" reduction with fork blocks (or an
// irreducible "sp" mapping without blocks) is malformed.
func (sm SPMappingJSON) decode() (*mapping.SPMapping, error) {
	spec, err := core.KindByName(sm.Reduced)
	if err != nil {
		return nil, fmt.Errorf("instance: spMapping reduced kind: %w", err)
	}
	m := &mapping.SPMapping{Reduced: spec.Kind, Order: sm.Order}
	shapes := 0
	if len(sm.Pipeline) > 0 {
		shapes++
		if m.Pipeline, err = decodeIntervals(sm.Pipeline); err != nil {
			return nil, err
		}
	}
	if len(sm.Fork) > 0 {
		shapes++
		if m.Fork, err = decodeForkBlocks(sm.Fork); err != nil {
			return nil, err
		}
	}
	if len(sm.ForkJoin) > 0 {
		shapes++
		if m.ForkJoin, err = decodeForkJoinBlocks(sm.ForkJoin); err != nil {
			return nil, err
		}
	}
	if len(sm.Blocks) > 0 {
		shapes++
		m.Blocks = make([]mapping.SPBlock, len(sm.Blocks))
		for i, b := range sm.Blocks {
			m.Blocks[i] = mapping.SPBlock{Proc: b.Proc, Steps: b.Steps}
		}
	}
	if shapes != 1 {
		return nil, fmt.Errorf("instance: spMapping needs exactly one of pipeline, fork, forkjoin, blocks (got %d)", shapes)
	}
	ok := false
	switch spec.Kind {
	case workflow.KindPipeline:
		ok = m.Pipeline != nil
	case workflow.KindFork:
		ok = m.Fork != nil
	case workflow.KindForkJoin:
		ok = m.ForkJoin != nil
	case workflow.KindSP:
		ok = m.Blocks != nil
	}
	if !ok {
		return nil, fmt.Errorf("instance: spMapping shape does not match reduced kind %q", sm.Reduced)
	}
	return m, nil
}
