package instance

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// solveKinds solves one instance of each graph kind for round-trip tests.
func solveKinds(t *testing.T) []core.Solution {
	t.Helper()
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	fork := workflow.NewFork(2, 1, 3, 2)
	fj := workflow.NewForkJoin(2, 1, 1, 3, 2)
	// A diamond collapses onto a fork-join; the chord b -> c makes the
	// second graph irreducible, so its mapping uses direct SP blocks.
	spReduced := workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
	spIrreducible := workflow.NewSP(
		workflow.SPStep{Name: "a", Weight: 1},
		workflow.SPStep{Name: "b", Weight: 2, After: []string{"a"}},
		workflow.SPStep{Name: "c", Weight: 3, After: []string{"a", "b"}},
		workflow.SPStep{Name: "d", Weight: 1, After: []string{"b", "c"}},
	)
	commPipe := fullmodel.NewPipeline([]float64{3, 1, 2}, []float64{1, 2, 1, 1})
	commFork := fullmodel.Fork{Root: 2, In: 1, Out0: 1, Weights: []float64{3, 1}, Outs: []float64{1, 1}}
	problems := []core.Problem{
		{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), AllowDataParallel: true, Objective: core.MinLatency},
		{Fork: &fork, Platform: platform.New(1, 2), Objective: core.MinPeriod},
		{ForkJoin: &fj, Platform: platform.Homogeneous(3, 2), Objective: core.MinPeriod},
		// Infeasible: bound far below the achievable period.
		{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: core.LatencyUnderPeriod, Bound: 0.01},
		{SP: &spReduced, Platform: platform.New(1, 2, 1), Objective: core.MinPeriod},
		{SP: &spIrreducible, Platform: platform.New(1, 2), Objective: core.MinLatency},
		{CommPipeline: &commPipe, Bandwidth: &fullmodel.Bandwidth{Uniform: 4}, Platform: platform.Homogeneous(2, 1), Objective: core.MinPeriod},
		{CommFork: &commFork, Bandwidth: &fullmodel.Bandwidth{Uniform: 2}, Platform: platform.New(1, 2, 1), Objective: core.MinPeriod},
	}
	sols := make([]core.Solution, len(problems))
	for i, pr := range problems {
		sol, err := core.Solve(pr, core.Options{})
		if err != nil {
			t.Fatalf("problem %d: %v", i, err)
		}
		sols[i] = sol
	}
	return sols
}

func TestSolutionRoundTrip(t *testing.T) {
	for i, sol := range solveKinds(t) {
		wire := FromSolution(sol)
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(wire); err != nil {
			t.Fatalf("solution %d: encode: %v", i, err)
		}
		var decoded SolutionJSON
		dec := json.NewDecoder(&buf)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&decoded); err != nil {
			t.Fatalf("solution %d: decode: %v", i, err)
		}
		back, err := decoded.Solution()
		if err != nil {
			t.Fatalf("solution %d: convert: %v", i, err)
		}
		if !reflect.DeepEqual(back, sol) {
			t.Errorf("solution %d: round trip drift:\n got %#v\nwant %#v", i, back, sol)
		}
	}
}

// TestAnytimeSolutionRoundTrip covers the gap/anytime wire fields: a
// budgeted NP-hard solve must survive the wire unchanged, including its
// certification metadata.
func TestAnytimeSolutionRoundTrip(t *testing.T) {
	pipe := workflow.NewPipeline(9, 14, 4, 2, 4, 7, 3, 11, 6, 5, 8, 2)
	pr := core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.New(3, 2, 2, 1, 1, 3, 1, 2, 1, 1, 2, 3, 1),
		AllowDataParallel: true,
		Objective:         core.MinPeriod,
	}
	sol, err := core.Solve(pr, core.Options{AnytimeBudget: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Anytime {
		t.Fatal("budgeted NP-hard solve not marked anytime")
	}
	wire := FromSolution(sol)
	if wire.Method != "anytime" && !sol.Exact {
		t.Errorf("method = %q, want anytime", wire.Method)
	}
	if !wire.Anytime || wire.Gap == nil || *wire.Gap < 0 {
		t.Fatalf("wire form lost certification: anytime=%v gap=%v", wire.Anytime, wire.Gap)
	}
	b, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	var decoded SolutionJSON
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	back, err := decoded.Solution()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sol) {
		t.Errorf("anytime round trip drift:\n got %#v\nwant %#v", back, sol)
	}
}

func TestSolutionRejectsBadWire(t *testing.T) {
	cases := []struct {
		name string
		s    SolutionJSON
	}{
		{"bad method", SolutionJSON{Method: "oracle", Complexity: "poly-dp"}},
		{"gap without anytime", SolutionJSON{Method: "heuristic", Complexity: "np-hard", Gap: ptrFloat(0.5)}},
		{"negative gap", SolutionJSON{Method: "anytime", Complexity: "np-hard", Anytime: true, Gap: ptrFloat(-0.1)}},
		{"anytime without gap", SolutionJSON{Method: "anytime", Complexity: "np-hard", Anytime: true}},
		{"anytime method without flag", SolutionJSON{Method: "anytime", Complexity: "np-hard"}},
		{"bad complexity", SolutionJSON{Method: "heuristic", Complexity: "easy"}},
		{"bad mode", SolutionJSON{
			Method: "heuristic", Complexity: "np-hard",
			PipelineMapping: []IntervalJSON{{First: 0, Last: 0, Procs: []int{0}, Mode: "quantum"}},
		}},
		{"join in fork mapping", SolutionJSON{
			Method: "heuristic", Complexity: "np-hard",
			ForkMapping: []BlockJSON{{Join: true, Procs: []int{0}, Mode: "replicated"}},
		}},
		{"two mappings", SolutionJSON{
			Method: "heuristic", Complexity: "np-hard",
			PipelineMapping: []IntervalJSON{{Procs: []int{0}, Mode: "replicated"}},
			ForkMapping:     []BlockJSON{{Procs: []int{0}, Mode: "replicated"}},
		}},
		{"sp mapping with unknown reduced kind", SolutionJSON{
			Method: "exhaustive", Complexity: "np-hard",
			SPMapping: &SPMappingJSON{Reduced: "tree", Blocks: []SPBlockJSON{{Proc: 0, Steps: []int{0}}}},
		}},
		{"sp mapping shape mismatching reduced kind", SolutionJSON{
			Method: "exhaustive", Complexity: "np-hard",
			SPMapping: &SPMappingJSON{Reduced: "pipeline", Blocks: []SPBlockJSON{{Proc: 0, Steps: []int{0}}}},
		}},
		{"sp mapping with two shapes", SolutionJSON{
			Method: "exhaustive", Complexity: "np-hard",
			SPMapping: &SPMappingJSON{
				Reduced:  "pipeline",
				Pipeline: []IntervalJSON{{Procs: []int{0}, Mode: "replicated"}},
				Blocks:   []SPBlockJSON{{Proc: 0, Steps: []int{0}}},
			},
		}},
		{"sp mapping without a shape", SolutionJSON{
			Method: "exhaustive", Complexity: "np-hard",
			SPMapping: &SPMappingJSON{Reduced: "sp"},
		}},
		{"sp mapping alongside comm mapping", SolutionJSON{
			Method: "exhaustive", Complexity: "np-hard",
			SPMapping:           &SPMappingJSON{Reduced: "sp", Blocks: []SPBlockJSON{{Proc: 0, Steps: []int{0}}}},
			CommPipelineMapping: []CommIntervalJSON{{End: 1, Proc: 0}},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.s.Solution(); err == nil {
				t.Error("bad wire form accepted")
			}
		})
	}
}

func ptrFloat(v float64) *float64 { return &v }
