// Package instance implements the repliflow wire format: the JSON
// instance and solution documents exchanged by the command-line tools
// (cmd/wfmap, cmd/wfgen, cmd/wfsim) and the HTTP service (cmd/wfserve).
//
// The format — every field, its units, the graph kinds, objectives,
// modes and a worked example — is specified in docs/wire-format.md;
// this package is its reference implementation. Decoding is strict
// (unknown fields are rejected) and Instance/Problem and
// Solution/SolutionJSON conversions round-trip losslessly.
package instance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repliflow/internal/core"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineJSON mirrors workflow.Pipeline.
type PipelineJSON struct {
	Weights []float64 `json:"weights"`
}

// ForkJSON mirrors workflow.Fork.
type ForkJSON struct {
	Root    float64   `json:"root"`
	Weights []float64 `json:"weights"`
}

// ForkJoinJSON mirrors workflow.ForkJoin.
type ForkJoinJSON struct {
	Root    float64   `json:"root"`
	Join    float64   `json:"join"`
	Weights []float64 `json:"weights"`
}

// PlatformJSON mirrors platform.Platform.
type PlatformJSON struct {
	Speeds []float64 `json:"speeds"`
}

// Instance is the on-disk form of a core.Problem.
type Instance struct {
	Pipeline *PipelineJSON `json:"pipeline,omitempty"`
	Fork     *ForkJSON     `json:"fork,omitempty"`
	ForkJoin *ForkJoinJSON `json:"forkjoin,omitempty"`

	Platform          PlatformJSON `json:"platform"`
	AllowDataParallel bool         `json:"allowDataParallel"`
	Objective         string       `json:"objective"`
	Bound             float64      `json:"bound,omitempty"`
}

// objectiveNames maps JSON names to objectives.
var objectiveNames = map[string]core.Objective{
	"min-period":           core.MinPeriod,
	"min-latency":          core.MinLatency,
	"latency-under-period": core.LatencyUnderPeriod,
	"period-under-latency": core.PeriodUnderLatency,
}

// ObjectiveName returns the JSON name of an objective.
func ObjectiveName(o core.Objective) string {
	for name, v := range objectiveNames {
		if v == o {
			return name
		}
	}
	return ""
}

// ParseObjective converts a JSON objective name.
func ParseObjective(name string) (core.Objective, error) {
	o, ok := objectiveNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown objective %q (want min-period, min-latency, latency-under-period or period-under-latency)", name)
	}
	return o, nil
}

// Problem converts the instance into a validated core.Problem.
func (ins Instance) Problem() (core.Problem, error) {
	pr := core.Problem{
		Platform:          platform.New(ins.Platform.Speeds...),
		AllowDataParallel: ins.AllowDataParallel,
		Bound:             ins.Bound,
	}
	obj, err := ParseObjective(ins.Objective)
	if err != nil {
		return core.Problem{}, err
	}
	pr.Objective = obj
	if ins.Bound != 0 && !obj.Bounded() {
		return core.Problem{}, fmt.Errorf("instance: objective %q does not take a bound (got %g)", ins.Objective, ins.Bound)
	}
	graphs := 0
	if ins.Pipeline != nil {
		p := workflow.NewPipeline(ins.Pipeline.Weights...)
		pr.Pipeline = &p
		graphs++
	}
	if ins.Fork != nil {
		f := workflow.NewFork(ins.Fork.Root, ins.Fork.Weights...)
		pr.Fork = &f
		graphs++
	}
	if ins.ForkJoin != nil {
		fj := workflow.NewForkJoin(ins.ForkJoin.Root, ins.ForkJoin.Join, ins.ForkJoin.Weights...)
		pr.ForkJoin = &fj
		graphs++
	}
	if graphs != 1 {
		return core.Problem{}, errors.New("instance: exactly one of pipeline, fork, forkjoin must be set")
	}
	if err := pr.Validate(); err != nil {
		return core.Problem{}, err
	}
	return pr, nil
}

// FromProblem converts a core.Problem into its on-disk form.
func FromProblem(pr core.Problem) Instance {
	ins := Instance{
		Platform:          PlatformJSON{Speeds: pr.Platform.Speeds},
		AllowDataParallel: pr.AllowDataParallel,
		Objective:         ObjectiveName(pr.Objective),
		Bound:             pr.Bound,
	}
	switch {
	case pr.Pipeline != nil:
		ins.Pipeline = &PipelineJSON{Weights: pr.Pipeline.Weights}
	case pr.Fork != nil:
		ins.Fork = &ForkJSON{Root: pr.Fork.Root, Weights: pr.Fork.Weights}
	case pr.ForkJoin != nil:
		ins.ForkJoin = &ForkJoinJSON{Root: pr.ForkJoin.Root, Join: pr.ForkJoin.Join, Weights: pr.ForkJoin.Weights}
	}
	return ins
}

// DecodeStrict decodes exactly one JSON document from r into v, with
// the wire format's strictness rule: unknown fields and trailing data
// after the document are errors. It is the single implementation of
// that rule, shared by the CLI readers and the HTTP service.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	err := dec.Decode(&extra)
	if errors.Is(err, io.EOF) {
		return nil
	}
	var syn *json.SyntaxError
	if err == nil || errors.As(err, &syn) {
		return errors.New("unexpected trailing data after the document")
	}
	// Not trailing JSON but a real read failure (e.g. a body size limit):
	// surface it so callers can classify it.
	return err
}

// Read decodes an instance from JSON, strictly (DecodeStrict).
func Read(r io.Reader) (Instance, error) {
	var ins Instance
	if err := DecodeStrict(r, &ins); err != nil {
		return Instance{}, fmt.Errorf("instance: decoding JSON: %w", err)
	}
	return ins, nil
}

// Write encodes an instance as indented JSON.
func Write(w io.Writer, ins Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ins)
}
