// Package instance implements the repliflow wire format: the JSON
// instance and solution documents exchanged by the command-line tools
// (cmd/wfmap, cmd/wfgen, cmd/wfsim) and the HTTP service (cmd/wfserve).
//
// The format — every field, its units, the graph kinds, objectives,
// modes and a worked example — is specified in docs/wire-format.md;
// this package is its reference implementation. Decoding is strict
// (unknown fields are rejected) and Instance/Problem and
// Solution/SolutionJSON conversions round-trip losslessly.
package instance

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repliflow/internal/core"
	"repliflow/internal/fullmodel"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineJSON mirrors workflow.Pipeline.
type PipelineJSON struct {
	Weights []float64 `json:"weights"`
}

// ForkJSON mirrors workflow.Fork.
type ForkJSON struct {
	Root    float64   `json:"root"`
	Weights []float64 `json:"weights"`
}

// ForkJoinJSON mirrors workflow.ForkJoin.
type ForkJoinJSON struct {
	Root    float64   `json:"root"`
	Join    float64   `json:"join"`
	Weights []float64 `json:"weights"`
}

// SPStepJSON mirrors workflow.SPStep: a named step and the names of the
// steps it depends on.
type SPStepJSON struct {
	Name   string   `json:"name"`
	Weight float64  `json:"weight"`
	After  []string `json:"after,omitempty"`
}

// SPJSON mirrors workflow.SP, the general series-parallel DAG kind.
type SPJSON struct {
	Steps []SPStepJSON `json:"steps"`
}

// CommPipelineJSON mirrors fullmodel.Pipeline: stage weights plus the
// inter-stage data sizes delta_0..delta_n (len(data) = len(weights)+1).
type CommPipelineJSON struct {
	Weights []float64 `json:"weights"`
	Data    []float64 `json:"data"`
}

// CommForkJSON mirrors fullmodel.Fork: the root receives in from the
// outside world, broadcasts broadcast to every leaf block under the
// one-port model, and each leaf k returns outs[k].
type CommForkJSON struct {
	Root      float64   `json:"root"`
	In        float64   `json:"in,omitempty"`
	Broadcast float64   `json:"broadcast,omitempty"`
	Weights   []float64 `json:"weights"`
	Outs      []float64 `json:"outs"`
}

// BandwidthJSON mirrors fullmodel.Bandwidth: either a single uniform link
// bandwidth or the full tables (links[u][v], in[u] = Pin->Pu,
// out[u] = Pu->Pout), never both.
type BandwidthJSON struct {
	Uniform float64     `json:"uniform,omitempty"`
	Links   [][]float64 `json:"links,omitempty"`
	In      []float64   `json:"in,omitempty"`
	Out     []float64   `json:"out,omitempty"`
}

// PlatformJSON mirrors platform.Platform. Bandwidth is only present (and
// only accepted) on communication-aware instances.
type PlatformJSON struct {
	Speeds    []float64      `json:"speeds"`
	Bandwidth *BandwidthJSON `json:"bandwidth,omitempty"`
}

// Instance is the on-disk form of a core.Problem.
type Instance struct {
	Pipeline     *PipelineJSON     `json:"pipeline,omitempty"`
	Fork         *ForkJSON         `json:"fork,omitempty"`
	ForkJoin     *ForkJoinJSON     `json:"forkjoin,omitempty"`
	SP           *SPJSON           `json:"sp,omitempty"`
	CommPipeline *CommPipelineJSON `json:"commPipeline,omitempty"`
	CommFork     *CommForkJSON     `json:"commFork,omitempty"`

	Platform          PlatformJSON `json:"platform"`
	AllowDataParallel bool         `json:"allowDataParallel"`
	Objective         string       `json:"objective"`
	Bound             float64      `json:"bound,omitempty"`
}

// objectiveNames maps JSON names to objectives.
var objectiveNames = map[string]core.Objective{
	"min-period":           core.MinPeriod,
	"min-latency":          core.MinLatency,
	"latency-under-period": core.LatencyUnderPeriod,
	"period-under-latency": core.PeriodUnderLatency,
}

// ObjectiveName returns the JSON name of an objective.
func ObjectiveName(o core.Objective) string {
	for name, v := range objectiveNames {
		if v == o {
			return name
		}
	}
	return ""
}

// ParseObjective converts a JSON objective name.
func ParseObjective(name string) (core.Objective, error) {
	o, ok := objectiveNames[name]
	if !ok {
		return 0, fmt.Errorf("instance: unknown objective %q (want min-period, min-latency, latency-under-period or period-under-latency)", name)
	}
	return o, nil
}

// Problem converts the instance into a validated core.Problem.
func (ins Instance) Problem() (core.Problem, error) {
	pr := core.Problem{
		Platform:          platform.New(ins.Platform.Speeds...),
		AllowDataParallel: ins.AllowDataParallel,
		Bound:             ins.Bound,
	}
	obj, err := ParseObjective(ins.Objective)
	if err != nil {
		return core.Problem{}, err
	}
	pr.Objective = obj
	if ins.Bound != 0 && !obj.Bounded() {
		return core.Problem{}, fmt.Errorf("instance: objective %q does not take a bound (got %g)", ins.Objective, ins.Bound)
	}
	graphs := 0
	if ins.Pipeline != nil {
		p := workflow.NewPipeline(ins.Pipeline.Weights...)
		pr.Pipeline = &p
		graphs++
	}
	if ins.Fork != nil {
		f := workflow.NewFork(ins.Fork.Root, ins.Fork.Weights...)
		pr.Fork = &f
		graphs++
	}
	if ins.ForkJoin != nil {
		fj := workflow.NewForkJoin(ins.ForkJoin.Root, ins.ForkJoin.Join, ins.ForkJoin.Weights...)
		pr.ForkJoin = &fj
		graphs++
	}
	if ins.SP != nil {
		steps := make([]workflow.SPStep, len(ins.SP.Steps))
		for i, st := range ins.SP.Steps {
			steps[i] = workflow.SPStep{
				Name:   st.Name,
				Weight: st.Weight,
				After:  append([]string(nil), st.After...),
			}
		}
		g := workflow.NewSP(steps...)
		pr.SP = &g
		graphs++
	}
	if ins.CommPipeline != nil {
		cp := fullmodel.NewPipeline(ins.CommPipeline.Weights, ins.CommPipeline.Data)
		pr.CommPipeline = &cp
		graphs++
	}
	if ins.CommFork != nil {
		cf := fullmodel.Fork{
			Root:    ins.CommFork.Root,
			In:      ins.CommFork.In,
			Out0:    ins.CommFork.Broadcast,
			Weights: append([]float64(nil), ins.CommFork.Weights...),
			Outs:    append([]float64(nil), ins.CommFork.Outs...),
		}
		pr.CommFork = &cf
		graphs++
	}
	if graphs != 1 {
		return core.Problem{}, errors.New("instance: exactly one of pipeline, fork, forkjoin, sp, commPipeline, commFork must be set")
	}
	if ins.Platform.Bandwidth != nil {
		bw := fullmodel.Bandwidth{
			Uniform: ins.Platform.Bandwidth.Uniform,
			Links:   ins.Platform.Bandwidth.Links,
			In:      ins.Platform.Bandwidth.In,
			Out:     ins.Platform.Bandwidth.Out,
		}
		pr.Bandwidth = &bw
	}
	if err := pr.Validate(); err != nil {
		return core.Problem{}, err
	}
	return pr, nil
}

// FromProblem converts a core.Problem into its on-disk form.
func FromProblem(pr core.Problem) Instance {
	ins := Instance{
		Platform:          PlatformJSON{Speeds: pr.Platform.Speeds},
		AllowDataParallel: pr.AllowDataParallel,
		Objective:         ObjectiveName(pr.Objective),
		Bound:             pr.Bound,
	}
	switch {
	case pr.Pipeline != nil:
		ins.Pipeline = &PipelineJSON{Weights: pr.Pipeline.Weights}
	case pr.Fork != nil:
		ins.Fork = &ForkJSON{Root: pr.Fork.Root, Weights: pr.Fork.Weights}
	case pr.ForkJoin != nil:
		ins.ForkJoin = &ForkJoinJSON{Root: pr.ForkJoin.Root, Join: pr.ForkJoin.Join, Weights: pr.ForkJoin.Weights}
	case pr.SP != nil:
		steps := make([]SPStepJSON, len(pr.SP.Steps))
		for i, st := range pr.SP.Steps {
			steps[i] = SPStepJSON{Name: st.Name, Weight: st.Weight, After: st.After}
		}
		ins.SP = &SPJSON{Steps: steps}
	case pr.CommPipeline != nil:
		ins.CommPipeline = &CommPipelineJSON{Weights: pr.CommPipeline.Weights, Data: pr.CommPipeline.Data}
	case pr.CommFork != nil:
		ins.CommFork = &CommForkJSON{
			Root: pr.CommFork.Root, In: pr.CommFork.In, Broadcast: pr.CommFork.Out0,
			Weights: pr.CommFork.Weights, Outs: pr.CommFork.Outs,
		}
	}
	if pr.Bandwidth != nil {
		ins.Platform.Bandwidth = &BandwidthJSON{
			Uniform: pr.Bandwidth.Uniform,
			Links:   pr.Bandwidth.Links,
			In:      pr.Bandwidth.In,
			Out:     pr.Bandwidth.Out,
		}
	}
	return ins
}

// DecodeStrict decodes exactly one JSON document from r into v, with
// the wire format's strictness rule: unknown fields and trailing data
// after the document are errors. It is the single implementation of
// that rule, shared by the CLI readers and the HTTP service.
func DecodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	var extra json.RawMessage
	err := dec.Decode(&extra)
	if errors.Is(err, io.EOF) {
		return nil
	}
	var syn *json.SyntaxError
	if err == nil || errors.As(err, &syn) {
		return errors.New("unexpected trailing data after the document")
	}
	// Not trailing JSON but a real read failure (e.g. a body size limit):
	// surface it so callers can classify it.
	return err
}

// Read decodes an instance from JSON, strictly (DecodeStrict).
func Read(r io.Reader) (Instance, error) {
	var ins Instance
	if err := DecodeStrict(r, &ins); err != nil {
		return Instance{}, fmt.Errorf("instance: decoding JSON: %w", err)
	}
	return ins, nil
}

// Write encodes an instance as indented JSON.
func Write(w io.Writer, ins Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ins)
}
