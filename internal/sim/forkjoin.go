package sim

import (
	"errors"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// SimulateForkJoin runs a mapped fork-join graph over the arrival stream
// under the flexible model, with one deliberate semantic choice exposed:
// servers are single-threaded and *block* while waiting for the leaves of
// other blocks before executing the join stage. The Section 3.4 period
// formula assumes wait-free processors (a processor's period is just its
// assigned work over its speed), so on mappings where the join must wait,
// the simulated sustainable period can exceed the analytic one — a model
// subtlety the analytic framework abstracts away (see EXPERIMENTS.md).
//
// Supported mappings: the root block must not contain the join stage
// (fold such mappings into a single-block pipeline simulation instead);
// any other §6.3 mapping shape works, including join blocks with leaves.
func SimulateForkJoin(fj workflow.ForkJoin, pl platform.Platform, m mapping.ForkJoinMapping, arrivals []float64) (Trace, error) {
	if err := mapping.ValidateForkJoin(fj, pl, m); err != nil {
		return Trace{}, err
	}
	if len(arrivals) == 0 {
		return Trace{}, errors.New("sim: empty arrival stream")
	}
	var rootBlock, joinBlock mapping.ForkJoinBlock
	for _, b := range m.Blocks {
		if b.Root {
			rootBlock = b
		}
		if b.Join {
			joinBlock = b
		}
	}
	if rootBlock.Root && rootBlock.Join {
		return Trace{}, errors.New("sim: fork-join simulation does not support the join stage sharing the root's block")
	}

	n := len(arrivals)
	leafWeight := func(b mapping.ForkJoinBlock) float64 {
		var w float64
		for _, l := range b.Leaves {
			w += fj.Weights[l]
		}
		return w
	}

	// Root block: emits S0 completions and its own leaf completions.
	rootWork := fj.Root + leafWeight(rootBlock)
	var rootSt station
	if rootBlock.Mode == mapping.DataParallel {
		rootSt = dataParallelStation(rootWork, pl, rootBlock.Procs)
	} else {
		rootSt = replicatedStation(rootWork, pl, rootBlock.Procs)
	}
	rootOut, s0Out := rootSt.process(arrivals, fj.Root)

	// Leaf-only blocks.
	leafDone := make([]float64, n)
	copy(leafDone, rootOut)
	for _, b := range m.Blocks {
		if b.Root || b.Join {
			continue
		}
		var st station
		if b.Mode == mapping.DataParallel {
			st = dataParallelStation(leafWeight(b), pl, b.Procs)
		} else {
			st = replicatedStation(leafWeight(b), pl, b.Procs)
		}
		out, _ := st.process(s0Out, 0)
		for i, v := range out {
			if v > leafDone[i] {
				leafDone[i] = v
			}
		}
	}

	// Join block: per-server two-phase processing. Phase 1 runs the
	// block's own leaves as soon as S0 is done; its completions join the
	// global leaf barrier. Phase 2 runs the join stage once every leaf of
	// the data set is complete; the server blocks in between.
	k := len(joinBlock.Procs)
	speeds := make([]float64, k)
	for i, q := range joinBlock.Procs {
		speeds[i] = pl.Speeds[q]
	}
	if joinBlock.Mode == mapping.DataParallel {
		k = 1
		speeds = []float64{pl.SubsetSpeedSum(joinBlock.Procs)}
	}
	wl := leafWeight(joinBlock)
	serverFree := make([]float64, k)
	completions := make([]float64, n)
	prevLeafOut, prevJoinOut := 0.0, 0.0
	for i := 0; i < n; i++ {
		q := i % k
		start := s0Out[i]
		if serverFree[q] > start {
			start = serverFree[q]
		}
		ownLeavesDone := start + wl/speeds[q]
		if ownLeavesDone < prevLeafOut {
			ownLeavesDone = prevLeafOut
		}
		prevLeafOut = ownLeavesDone
		barrier := leafDone[i]
		if ownLeavesDone > barrier {
			barrier = ownLeavesDone
		}
		joinDone := barrier + fj.Join/speeds[q]
		if joinDone < prevJoinOut {
			joinDone = prevJoinOut
		}
		prevJoinOut = joinDone
		serverFree[q] = joinDone
		completions[i] = joinDone
	}
	return Trace{Arrivals: arrivals, Completions: completions}, nil
}
