package sim

import (
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestForkJoinSimulationMatchesAnalyticWhenJoinNotBottleneck(t *testing.T) {
	// Root {S0,S1} on P1 (speed 1), leaf {S2} on P2 (speed 2), join alone
	// on P3 (speed 4). Analytic: leafDone = max(5, 2+3) = 5, latency =
	// 5 + 8/4 = 7; period = max(5, 3, 2) = 5. The join server's wait does
	// not bind because the root block is the bottleneck.
	fj := workflow.NewForkJoin(2, 8, 3, 6)
	pl := platform.New(1, 2, 4)
	m := mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, false, []int{0}, mapping.Replicated, 0),
		mapping.NewForkJoinBlock(false, false, []int{1}, mapping.Replicated, 1),
		mapping.NewForkJoinBlock(false, true, nil, mapping.Replicated, 2),
	}}
	analytic, err := mapping.EvalForkJoin(fj, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	paced, err := SimulateForkJoin(fj, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(paced.MaxLatency(), analytic.Latency) {
		t.Errorf("paced max latency %v, analytic %v", paced.MaxLatency(), analytic.Latency)
	}
	sat, err := SimulateForkJoin(fj, pl, m, Arrivals(datasets, 0))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.02 {
		t.Errorf("steady period %v, analytic %v", sat.SteadyStatePeriod(), analytic.Period)
	}
}

func TestForkJoinJoinWithLeavesSimulation(t *testing.T) {
	// Join block with its own leaf: root {S0} on P1, join block {S2,Sjoin}
	// on P2, leaf {S1} on P3.
	fj := workflow.NewForkJoin(2, 4, 6, 3)
	pl := platform.New(2, 2, 2)
	m := mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, false, nil, mapping.Replicated, 0),
		mapping.NewForkJoinBlock(false, true, []int{1}, mapping.Replicated, 1),
		mapping.NewForkJoinBlock(false, false, []int{0}, mapping.Replicated, 2),
	}}
	analytic, err := mapping.EvalForkJoin(fj, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic: rootDone = 1; leafDone = max(1, 1+3/2, 1+6/2) = 4;
	// latency = 4 + 4/2 = 6.
	if !numeric.Eq(analytic.Latency, 6) {
		t.Fatalf("analytic latency = %v, want 6", analytic.Latency)
	}
	paced, err := SimulateForkJoin(fj, pl, m, Arrivals(datasets, analytic.Latency))
	if err != nil {
		t.Fatal(err)
	}
	// Paced slowly (at the latency), no queueing: exact agreement.
	if !numeric.Eq(paced.MaxLatency(), analytic.Latency) {
		t.Errorf("paced max latency %v, analytic %v", paced.MaxLatency(), analytic.Latency)
	}
}

func TestForkJoinBlockingServerExceedsAnalyticPeriod(t *testing.T) {
	// A join block that must wait for a much slower leaf block: its server
	// blocks, so the sustainable rate is below the analytic 1/period.
	// Root {S0} on P1 (fast), leaf {S1} on P2 (slow), join on P3 (fast).
	// Analytic period = max(1/4, 20/1, 1/4) = 20 — the slow leaf. The join
	// block's own period is tiny analytically, and indeed the simulated
	// rate is throttled by the leaf block, not by join blocking: here the
	// wait *overlaps* the bottleneck so analytic and simulated agree.
	fj := workflow.NewForkJoin(1, 1, 20)
	pl := platform.New(4, 1, 4)
	m := mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, false, nil, mapping.Replicated, 0),
		mapping.NewForkJoinBlock(false, false, []int{0}, mapping.Replicated, 1),
		mapping.NewForkJoinBlock(false, true, nil, mapping.Replicated, 2),
	}}
	analytic, err := mapping.EvalForkJoin(fj, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := SimulateForkJoin(fj, pl, m, Arrivals(datasets, 0))
	if err != nil {
		t.Fatal(err)
	}
	// The single join server waits ~20 per data set but each wait ends one
	// analytic period after the previous, so throughput still converges.
	if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.02 {
		t.Errorf("steady period %v, analytic %v", sat.SteadyStatePeriod(), analytic.Period)
	}
}

func TestForkJoinSimulationRejectsRootJoinBlock(t *testing.T) {
	fj := workflow.NewForkJoin(1, 1, 2)
	pl := platform.New(1, 1)
	m := mapping.ForkJoinMapping{Blocks: []mapping.ForkJoinBlock{
		mapping.NewForkJoinBlock(true, true, nil, mapping.Replicated, 0),
		mapping.NewForkJoinBlock(false, false, []int{0}, mapping.Replicated, 1),
	}}
	if _, err := SimulateForkJoin(fj, pl, m, Arrivals(10, 1)); err == nil {
		t.Error("root+join block accepted")
	}
	if _, err := SimulateForkJoin(fj, pl, mapping.ForkJoinMapping{}, Arrivals(10, 1)); err == nil {
		t.Error("invalid mapping accepted")
	}
}
