package sim

import (
	"math"
	"math/rand"
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

const datasets = 2000

// relErr returns |a-b| / max(|a|,|b|).
func relErr(a, b float64) float64 {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 {
		return 0
	}
	return math.Abs(a-b) / scale
}

func TestReplicatedStationMatchesRoundRobinModel(t *testing.T) {
	// W=12 replicated on speeds {2,1}: the paper's round-robin model gives
	// period 12/(2*1) = 6 and delay 12/1 = 12. A demand-driven scheme would
	// reach period 4 — the simulator must NOT (Section 3.3).
	p := workflow.NewPipeline(12)
	pl := platform.New(2, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.Replicated, 0, 1),
	}}
	analytic, err := mapping.EvalPipeline(p, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := SimulatePipeline(p, pl, m, Arrivals(datasets, 0))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(tr.SteadyStatePeriod(), analytic.Period) > 0.01 {
		t.Errorf("saturated steady period %v, analytic %v", tr.SteadyStatePeriod(), analytic.Period)
	}
	if tr.SteadyStatePeriod() < 5.5 {
		t.Errorf("steady period %v suggests demand-driven behaviour (expected 6, not 4)", tr.SteadyStatePeriod())
	}
	// Paced at the analytic period, the worst latency equals tmax.
	tr, err = SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(tr.MaxLatency(), analytic.Latency) {
		t.Errorf("paced max latency %v, analytic %v", tr.MaxLatency(), analytic.Latency)
	}
}

func TestDataParallelStationDeterministic(t *testing.T) {
	p := workflow.NewPipeline(12)
	pl := platform.New(2, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
	}}
	analytic, _ := mapping.EvalPipeline(p, pl, m) // period = latency = 4
	tr, err := SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(tr.MaxLatency(), 4) {
		t.Errorf("max latency %v, want 4", tr.MaxLatency())
	}
	if relErr(tr.SteadyStatePeriod(), 4) > 0.01 {
		t.Errorf("steady period %v, want 4", tr.SteadyStatePeriod())
	}
}

func TestSection2MappingSimulation(t *testing.T) {
	// The Section 2 mapping: S1 data-parallel on P1,P2; S2..S4 on P3
	// (period 10, latency 17). Both stations are deterministic, so the
	// simulated values match exactly.
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.Homogeneous(3, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2),
	}}
	analytic, _ := mapping.EvalPipeline(p, pl, m)
	tr, err := SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(tr.MaxLatency(), analytic.Latency) {
		t.Errorf("max latency %v, analytic %v", tr.MaxLatency(), analytic.Latency)
	}
	sat, _ := SimulatePipeline(p, pl, m, Arrivals(datasets, 0))
	if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.01 {
		t.Errorf("steady period %v, analytic %v", sat.SteadyStatePeriod(), analytic.Period)
	}
}

func TestRandomPipelineMappingsAgainstAnalyticModel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		p := workflow.RandomPipeline(rng, 1+rng.Intn(4), 9)
		pl := platform.Random(rng, 1+rng.Intn(4), 4)
		m := randomMapping(rng, p, pl)
		analytic, err := mapping.EvalPipeline(p, pl, m)
		if err != nil {
			t.Fatal(err)
		}
		// Saturated throughput converges to the analytic period.
		sat, err := SimulatePipeline(p, pl, m, Arrivals(datasets, 0))
		if err != nil {
			t.Fatal(err)
		}
		if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.02 {
			t.Errorf("trial %d: steady period %v vs analytic %v (mapping %v)",
				trial, sat.SteadyStatePeriod(), analytic.Period, m)
		}
		// Paced at the analytic period the latency never exceeds the
		// analytic bound.
		paced, err := SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period))
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Greater(paced.MaxLatency(), analytic.Latency) {
			t.Errorf("trial %d: paced max latency %v exceeds analytic %v (mapping %v)",
				trial, paced.MaxLatency(), analytic.Latency, m)
		}
	}
}

// randomMapping builds a random valid pipeline mapping.
func randomMapping(rng *rand.Rand, p workflow.Pipeline, pl platform.Platform) mapping.PipelineMapping {
	n := p.Stages()
	procs := rng.Perm(pl.Processors())
	q := 1 + rng.Intn(minInt(n, pl.Processors()))
	cuts := rng.Perm(n - 1)
	if len(cuts) > q-1 {
		cuts = cuts[:q-1]
	} else {
		q = len(cuts) + 1
	}
	sortInts(cuts)
	var m mapping.PipelineMapping
	first, pi := 0, 0
	extra := pl.Processors() - q
	for i := 0; i < q; i++ {
		last := n - 1
		if i < len(cuts) {
			last = cuts[i]
		}
		take := 1
		if extra > 0 {
			b := rng.Intn(extra + 1)
			take += b
			extra -= b
		}
		mode := mapping.Replicated
		if first == last && rng.Intn(2) == 0 {
			mode = mapping.DataParallel
		}
		m.Intervals = append(m.Intervals, mapping.PipelineInterval{
			First: first, Last: last,
			Assignment: mapping.Assignment{Procs: procs[pi : pi+take], Mode: mode},
		})
		pi += take
		first = last + 1
	}
	return m
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestForkSimulationMatchesAnalytic(t *testing.T) {
	f := workflow.NewFork(2, 3, 6)
	pl := platform.New(1, 2)
	m := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
		mapping.NewForkBlock(true, []int{0}, mapping.Replicated, 0),
		mapping.NewForkBlock(false, []int{1}, mapping.Replicated, 1),
	}}
	analytic, err := mapping.EvalFork(f, pl, m)
	if err != nil {
		t.Fatal(err)
	}
	paced, err := SimulateFork(f, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(paced.MaxLatency(), analytic.Latency) {
		t.Errorf("paced max latency %v, analytic %v", paced.MaxLatency(), analytic.Latency)
	}
	sat, err := SimulateFork(f, pl, m, Arrivals(datasets, 0))
	if err != nil {
		t.Fatal(err)
	}
	if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.02 {
		t.Errorf("steady period %v, analytic %v", sat.SteadyStatePeriod(), analytic.Period)
	}
}

func TestForkRootDataParallelSimulation(t *testing.T) {
	f := workflow.NewFork(8, 4)
	pl := platform.New(1, 3, 2)
	m := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
		mapping.NewForkBlock(true, nil, mapping.DataParallel, 0, 1),
		mapping.NewForkBlock(false, []int{0}, mapping.Replicated, 2),
	}}
	analytic, _ := mapping.EvalFork(f, pl, m) // latency 4, period 2
	paced, err := SimulateFork(f, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(paced.MaxLatency(), analytic.Latency) {
		t.Errorf("paced max latency %v, analytic %v", paced.MaxLatency(), analytic.Latency)
	}
}

func TestRandomForkMappingsAgainstAnalyticModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Random(rng, 2+rng.Intn(2), 4)
		// Root block with a random prefix of leaves on P0, the remaining
		// leaves on the other processors.
		n0 := rng.Intn(f.Leaves() + 1)
		blocks := []mapping.ForkBlock{
			mapping.NewForkBlock(true, leafSeq(0, n0), mapping.Replicated, 0),
		}
		if n0 < f.Leaves() {
			rest := leafSeq(n0, f.Leaves()-n0)
			procs := make([]int, pl.Processors()-1)
			for i := range procs {
				procs[i] = i + 1
			}
			blocks = append(blocks, mapping.NewForkBlock(false, rest, mapping.Replicated, procs...))
		}
		m := mapping.ForkMapping{Blocks: blocks}
		analytic, err := mapping.EvalFork(f, pl, m)
		if err != nil {
			t.Fatal(err)
		}
		sat, err := SimulateFork(f, pl, m, Arrivals(datasets, 0))
		if err != nil {
			t.Fatal(err)
		}
		if relErr(sat.SteadyStatePeriod(), analytic.Period) > 0.02 {
			t.Errorf("trial %d: steady period %v vs analytic %v", trial, sat.SteadyStatePeriod(), analytic.Period)
		}
		paced, err := SimulateFork(f, pl, m, Arrivals(datasets, analytic.Period))
		if err != nil {
			t.Fatal(err)
		}
		if numeric.Greater(paced.MaxLatency(), analytic.Latency) {
			t.Errorf("trial %d: paced max latency %v exceeds analytic %v", trial, paced.MaxLatency(), analytic.Latency)
		}
	}
}

func leafSeq(from, count int) []int {
	if count == 0 {
		return nil
	}
	out := make([]int, count)
	for i := range out {
		out[i] = from + i
	}
	return out
}

func TestOverdrivenInputGrowsBacklog(t *testing.T) {
	// Pacing the input 20% below the analytic period must make latencies
	// grow without bound — the dynamic witness that the analytic period is
	// the maximum sustainable rate. Pacing at the analytic period keeps
	// them flat.
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.Homogeneous(3, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
		mapping.NewPipelineInterval(1, 3, mapping.Replicated, 2),
	}}
	analytic, _ := mapping.EvalPipeline(p, pl, m)

	over, err := SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period*0.8))
	if err != nil {
		t.Fatal(err)
	}
	firstHalf, secondHalf := over.MeanLatencyHalves()
	if secondHalf < 2*firstHalf {
		t.Errorf("overdriven input did not grow the backlog: halves %v / %v", firstHalf, secondHalf)
	}

	ok, err := SimulatePipeline(p, pl, m, Arrivals(datasets, analytic.Period))
	if err != nil {
		t.Fatal(err)
	}
	firstHalf, secondHalf = ok.MeanLatencyHalves()
	if relErr(firstHalf, secondHalf) > 0.05 {
		t.Errorf("sustainable input grew the backlog: halves %v / %v", firstHalf, secondHalf)
	}
}

func TestSimulateRejectsInvalidInput(t *testing.T) {
	p := workflow.NewPipeline(1)
	pl := platform.New(1)
	good := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.Replicated, 0),
	}}
	if _, err := SimulatePipeline(p, pl, good, nil); err == nil {
		t.Error("empty arrivals accepted")
	}
	bad := mapping.PipelineMapping{}
	if _, err := SimulatePipeline(p, pl, bad, Arrivals(5, 1)); err == nil {
		t.Error("invalid mapping accepted")
	}
	f := workflow.NewFork(1, 1)
	if _, err := SimulateFork(f, pl, mapping.ForkMapping{}, Arrivals(5, 1)); err == nil {
		t.Error("invalid fork mapping accepted")
	}
}

func TestArrivalsAndTraceHelpers(t *testing.T) {
	arr := Arrivals(4, 2.5)
	if arr[0] != 0 || arr[3] != 7.5 {
		t.Fatalf("Arrivals = %v", arr)
	}
	tr := Trace{Arrivals: []float64{0, 1}, Completions: []float64{3, 5}}
	if tr.MaxLatency() != 4 {
		t.Errorf("MaxLatency = %v", tr.MaxLatency())
	}
	if (Trace{}).SteadyStatePeriod() != 0 {
		t.Error("empty trace period != 0")
	}
}
