package sim

import (
	"sort"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// PipelineUtilization simulates the mapped pipeline over the arrival
// stream and reports, per processor, the fraction of the observation
// window spent computing. It makes quantitative the remark of Section 2
// that replicating everything on a heterogeneous platform leaves the fast
// processors idle ("P1 and P2 achieve their work in 12 rather than 24
// time-steps and then remain idle, because of the round robin data set
// distribution").
func PipelineUtilization(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping, arrivals []float64) ([]Utilization, error) {
	tr, err := SimulatePipeline(p, pl, m, arrivals)
	if err != nil {
		return nil, err
	}
	window := tr.Completions[len(tr.Completions)-1] - tr.Arrivals[0]
	n := len(arrivals)
	var out []Utilization
	for _, iv := range m.Intervals {
		w := p.IntervalWork(iv.First, iv.Last)
		if iv.Mode == mapping.DataParallel {
			// All processors of the group work together on every data set.
			perSet := w / pl.SubsetSpeedSum(iv.Procs)
			for _, q := range iv.Procs {
				out = append(out, Utilization{Processor: q, Busy: float64(n) * perSet, Window: window})
			}
			continue
		}
		k := len(iv.Procs)
		for idx, q := range iv.Procs {
			served := n / k
			if idx < n%k {
				served++
			}
			out = append(out, Utilization{Processor: q, Busy: float64(served) * w / pl.Speeds[q], Window: window})
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Processor < out[b].Processor })
	return out, nil
}
