// Package sim is a discrete-event simulator for workflow executions under
// interval-based mappings, used to validate the analytic cost model of
// Benoit & Robert (RR-6308, Section 3.4) dynamically:
//
//   - a replicated group is k servers fed round-robin whose outputs are
//     re-serialized (the paper's round-robin rule exists precisely to keep
//     data sets in order, Section 3.3), so the simulated steady-state
//     throughput converges to k/tmax — not to the demand-driven sum of the
//     server rates;
//   - a data-parallel group is a single server of the aggregate speed.
//
// The simulator processes a finite stream of data sets and reports
// completion times, from which tests derive the steady-state period and
// the maximum latency and compare them against mapping.EvalPipeline /
// EvalFork.
package sim

import (
	"errors"
	"fmt"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Trace records the simulated arrival and completion time of each data set.
type Trace struct {
	Arrivals    []float64
	Completions []float64
}

// MaxLatency returns the largest completion-minus-arrival over all data
// sets — the simulated counterpart of T_latency.
func (tr Trace) MaxLatency() float64 {
	var worst float64
	for i := range tr.Completions {
		if l := tr.Completions[i] - tr.Arrivals[i]; l > worst {
			worst = l
		}
	}
	return worst
}

// MeanLatencyHalves returns the mean latency over the first and second
// halves of the trace. A second half markedly above the first indicates an
// unsustainable input rate (backlog growth) — the dynamic signature of
// pacing the input below the mapping's period.
func (tr Trace) MeanLatencyHalves() (first, second float64) {
	n := len(tr.Completions)
	if n == 0 {
		return 0, 0
	}
	mid := n / 2
	for i := 0; i < n; i++ {
		l := tr.Completions[i] - tr.Arrivals[i]
		if i < mid {
			first += l
		} else {
			second += l
		}
	}
	if mid > 0 {
		first /= float64(mid)
	}
	if n-mid > 0 {
		second /= float64(n - mid)
	}
	return first, second
}

// SteadyStatePeriod estimates the asymptotic inter-completion time from the
// second half of the trace — the simulated counterpart of T_period.
func (tr Trace) SteadyStatePeriod() float64 {
	n := len(tr.Completions)
	if n < 2 {
		return 0
	}
	mid := n / 2
	return (tr.Completions[n-1] - tr.Completions[mid]) / float64(n-1-mid)
}

// Utilization summarizes how busy each processor of a mapped group was
// during a simulation window.
type Utilization struct {
	Processor int
	Busy      float64 // total service time
	Window    float64 // observation window (first arrival to last completion)
}

// Fraction returns busy time over the window, in [0, 1].
func (u Utilization) Fraction() float64 {
	if u.Window <= 0 {
		return 0
	}
	f := u.Busy / u.Window
	if f > 1 {
		f = 1
	}
	return f
}

// station models one mapped group of stages.
type station struct {
	speeds []float64 // one server per processor (replicated) or one aggregate server (data-parallel)
	work   float64
}

// replicatedStation builds a station with one server per processor.
func replicatedStation(work float64, pl platform.Platform, procs []int) station {
	speeds := make([]float64, len(procs))
	for i, q := range procs {
		speeds[i] = pl.Speeds[q]
	}
	return station{speeds: speeds, work: work}
}

// dataParallelStation builds a station with a single aggregate-speed server.
func dataParallelStation(work float64, pl platform.Platform, procs []int) station {
	return station{speeds: []float64{pl.SubsetSpeedSum(procs)}, work: work}
}

// process simulates the station over the in-order arrival stream and
// returns the in-order output stream. partialWork, when positive, also
// returns the times at which the first partialWork units of each data set
// are done (used for the fork root block, whose S0 output releases the
// other blocks before the block's own leaves finish).
func (st station) process(arrivals []float64, partialWork float64) (outputs, partials []float64) {
	k := len(st.speeds)
	serverFree := make([]float64, k)
	outputs = make([]float64, len(arrivals))
	partials = make([]float64, len(arrivals))
	prevOut, prevPartial := 0.0, 0.0
	for i, arr := range arrivals {
		q := i % k
		start := arr
		if serverFree[q] > start {
			start = serverFree[q]
		}
		finish := start + st.work/st.speeds[q]
		serverFree[q] = finish
		// Outputs leave in order (round-robin rule, Section 3.3).
		if finish < prevOut {
			finish = prevOut
		}
		outputs[i] = finish
		prevOut = finish
		if partialWork > 0 {
			pdone := start + partialWork/st.speeds[q]
			if pdone < prevPartial {
				pdone = prevPartial
			}
			partials[i] = pdone
			prevPartial = pdone
		}
	}
	return outputs, partials
}

// Arrivals builds an arrival vector of the given size spaced by period
// (period 0 means all data sets are available immediately — a saturated
// input that exposes the maximum sustainable throughput).
func Arrivals(datasets int, period float64) []float64 {
	arr := make([]float64, datasets)
	for i := range arr {
		arr[i] = float64(i) * period
	}
	return arr
}

// SimulatePipeline runs the mapped pipeline over the arrival stream.
func SimulatePipeline(p workflow.Pipeline, pl platform.Platform, m mapping.PipelineMapping, arrivals []float64) (Trace, error) {
	if err := mapping.ValidatePipeline(p, pl, m); err != nil {
		return Trace{}, err
	}
	if len(arrivals) == 0 {
		return Trace{}, errors.New("sim: empty arrival stream")
	}
	stream := arrivals
	for _, iv := range m.Intervals {
		w := p.IntervalWork(iv.First, iv.Last)
		var st station
		if iv.Mode == mapping.DataParallel {
			st = dataParallelStation(w, pl, iv.Procs)
		} else {
			st = replicatedStation(w, pl, iv.Procs)
		}
		stream, _ = st.process(stream, 0)
	}
	return Trace{Arrivals: arrivals, Completions: stream}, nil
}

// SimulateFork runs the mapped fork over the arrival stream under the
// flexible model: non-root blocks start a data set as soon as its S0
// computation completes.
func SimulateFork(f workflow.Fork, pl platform.Platform, m mapping.ForkMapping, arrivals []float64) (Trace, error) {
	if err := mapping.ValidateFork(f, pl, m); err != nil {
		return Trace{}, err
	}
	if len(arrivals) == 0 {
		return Trace{}, errors.New("sim: empty arrival stream")
	}
	var rootBlock mapping.ForkBlock
	for _, b := range m.Blocks {
		if b.Root {
			rootBlock = b
		}
	}
	rootWork := f.Root
	for _, l := range rootBlock.Leaves {
		rootWork += f.Weights[l]
	}
	var rootSt station
	if rootBlock.Mode == mapping.DataParallel {
		rootSt = dataParallelStation(rootWork, pl, rootBlock.Procs)
	} else {
		rootSt = replicatedStation(rootWork, pl, rootBlock.Procs)
	}
	rootOut, s0Out := rootSt.process(arrivals, f.Root)

	completions := make([]float64, len(arrivals))
	copy(completions, rootOut)
	for _, b := range m.Blocks {
		if b.Root {
			continue
		}
		w := 0.0
		for _, l := range b.Leaves {
			w += f.Weights[l]
		}
		var st station
		if b.Mode == mapping.DataParallel {
			st = dataParallelStation(w, pl, b.Procs)
		} else {
			st = replicatedStation(w, pl, b.Procs)
		}
		out, _ := st.process(s0Out, 0)
		for i, v := range out {
			if v > completions[i] {
				completions[i] = v
			}
		}
	}
	return Trace{Arrivals: arrivals, Completions: completions}, nil
}

// String summarizes a trace for debugging.
func (tr Trace) String() string {
	return fmt.Sprintf("trace{datasets=%d, maxLatency=%g, steadyPeriod=%g}",
		len(tr.Completions), tr.MaxLatency(), tr.SteadyStatePeriod())
}
