package sim

import (
	"testing"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestUtilizationReproducesSection2IdleRemark(t *testing.T) {
	// Section 2: replicating all four stages on the heterogeneous platform
	// (speeds 2,2,1,1) makes the fast processors "achieve their work in 12
	// rather than 24 time-steps and then remain idle" — utilization ~0.5
	// for P1,P2 and ~1.0 for P3,P4 under saturated input.
	p := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(2, 2, 1, 1)
	m := mapping.ReplicateAllPipeline(p, pl)
	us, err := PipelineUtilization(p, pl, m, Arrivals(2000, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 4 {
		t.Fatalf("got %d utilizations", len(us))
	}
	for _, u := range us {
		f := u.Fraction()
		switch u.Processor {
		case 0, 1: // fast
			if f < 0.45 || f > 0.55 {
				t.Errorf("fast P%d utilization = %.3f, want ~0.5", u.Processor+1, f)
			}
		case 2, 3: // slow
			if f < 0.95 {
				t.Errorf("slow P%d utilization = %.3f, want ~1.0", u.Processor+1, f)
			}
		}
	}
}

func TestUtilizationDataParallelGroup(t *testing.T) {
	// A data-parallel group keeps all members equally busy.
	p := workflow.NewPipeline(12)
	pl := platform.New(2, 1)
	m := mapping.PipelineMapping{Intervals: []mapping.PipelineInterval{
		mapping.NewPipelineInterval(0, 0, mapping.DataParallel, 0, 1),
	}}
	us, err := PipelineUtilization(p, pl, m, Arrivals(1000, 0))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range us {
		if f := u.Fraction(); f < 0.95 {
			t.Errorf("P%d utilization = %.3f, want ~1.0", u.Processor+1, f)
		}
	}
}

func TestUtilizationInvalidInputs(t *testing.T) {
	p := workflow.NewPipeline(1)
	pl := platform.New(1)
	if _, err := PipelineUtilization(p, pl, mapping.PipelineMapping{}, Arrivals(5, 1)); err == nil {
		t.Error("invalid mapping accepted")
	}
	if (Utilization{}).Fraction() != 0 {
		t.Error("zero-window fraction != 0")
	}
	if (Utilization{Busy: 5, Window: 2}).Fraction() != 1 {
		t.Error("fraction not clamped to 1")
	}
}
