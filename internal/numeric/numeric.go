// Package numeric provides tolerant floating-point comparisons and small
// numeric helpers shared by the scheduling algorithms.
//
// All costs in the simplified model of Benoit & Robert (RR-6308) are ratios
// of sums of stage weights to sums (or minima) of processor speeds. With
// float64 arithmetic two mathematically equal costs may differ in the last
// bits, so every comparison made by a dynamic program or a binary search
// goes through this package.
package numeric

import (
	"math"
	"sort"
)

// Eps is the default relative tolerance used throughout the library.
const Eps = 1e-9

// Inf is a shorthand for positive infinity, used as the "no solution yet"
// value in dynamic programs.
var Inf = math.Inf(1)

// Eq reports whether a and b are equal within a relative tolerance of Eps
// (absolute near zero).
func Eq(a, b float64) bool {
	if a == b {
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return diff <= Eps
	}
	return diff <= Eps*scale
}

// Less reports whether a is strictly smaller than b beyond the tolerance.
func Less(a, b float64) bool {
	return a < b && !Eq(a, b)
}

// LessEq reports whether a <= b within the tolerance.
func LessEq(a, b float64) bool {
	return a <= b || Eq(a, b)
}

// Greater reports whether a is strictly greater than b beyond the tolerance.
func Greater(a, b float64) bool {
	return a > b && !Eq(a, b)
}

// GreaterEq reports whether a >= b within the tolerance.
func GreaterEq(a, b float64) bool {
	return a >= b || Eq(a, b)
}

// FloorDiv returns floor(a/b) computed defensively: values that sit within
// the tolerance of the next integer are rounded up before flooring, so that
// exact rational bounds (e.g. K·s/w in the Theorem 7 dynamic program) do not
// lose a unit to floating-point noise.
func FloorDiv(a, b float64) int {
	if b == 0 {
		return 0
	}
	q := a / b
	f := math.Floor(q)
	if Eq(q, f+1) {
		return int(f) + 1
	}
	return int(f)
}

// DedupSorted sorts values ascending in place and removes duplicates within
// the tolerance, returning the shortened slice. It is used to build the
// finite candidate sets that the binary searches of Theorems 7, 8 and 14
// run over.
func DedupSorted(vals []float64) []float64 {
	sort.Float64s(vals)
	out := vals[:0]
	for _, v := range vals {
		if len(out) == 0 || !Eq(out[len(out)-1], v) {
			out = append(out, v)
		}
	}
	return out
}

// MinFloat returns the minimum of a non-empty slice.
func MinFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// MaxFloat returns the maximum of a non-empty slice.
func MaxFloat(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// SumFloat returns the sum of a slice.
func SumFloat(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
