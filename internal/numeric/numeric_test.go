package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEqExact(t *testing.T) {
	if !Eq(1.0, 1.0) {
		t.Fatal("Eq(1,1) = false")
	}
	if Eq(1.0, 2.0) {
		t.Fatal("Eq(1,2) = true")
	}
}

func TestEqTolerance(t *testing.T) {
	a := 0.1 + 0.2
	if !Eq(a, 0.3) {
		t.Fatalf("Eq(0.1+0.2, 0.3) = false (a=%v)", a)
	}
	big := 1e12
	if !Eq(big, big*(1+1e-12)) {
		t.Fatal("relative tolerance not applied at large scale")
	}
	if Eq(big, big*(1+1e-6)) {
		t.Fatal("Eq too lax at large scale")
	}
}

func TestEqNearZero(t *testing.T) {
	if !Eq(0, 1e-12) {
		t.Fatal("Eq(0, 1e-12) = false")
	}
	if Eq(0, 1e-3) {
		t.Fatal("Eq(0, 1e-3) = true")
	}
}

func TestEqInfinities(t *testing.T) {
	inf := math.Inf(1)
	if Eq(1, inf) || Eq(inf, 1) || Eq(inf, math.Inf(-1)) {
		t.Fatal("finite/inf or inf/-inf reported equal")
	}
	if !Eq(inf, inf) {
		t.Fatal("Eq(inf,inf) = false")
	}
	if !Less(1, inf) || GreaterEq(1, inf) {
		t.Fatal("ordering against inf broken")
	}
}

func TestOrderingPredicates(t *testing.T) {
	if !Less(1, 2) || Less(2, 1) || Less(1, 1) {
		t.Fatal("Less misbehaves")
	}
	if !Greater(2, 1) || Greater(1, 2) || Greater(1, 1) {
		t.Fatal("Greater misbehaves")
	}
	if !LessEq(1, 1) || !LessEq(1, 2) || LessEq(2, 1) {
		t.Fatal("LessEq misbehaves")
	}
	if !GreaterEq(1, 1) || !GreaterEq(2, 1) || GreaterEq(1, 2) {
		t.Fatal("GreaterEq misbehaves")
	}
}

func TestLessGreaterConsistency(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		// Exactly one of Less, Eq, Greater must hold.
		n := 0
		if Less(a, b) {
			n++
		}
		if Eq(a, b) {
			n++
		}
		if Greater(a, b) {
			n++
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct {
		a, b float64
		want int
	}{
		{10, 2, 5},
		{9, 2, 4},
		{0, 3, 0},
		{7, 7, 1},
		{6.9999999999999, 7, 1}, // within tolerance of 7/7
		{13.999999999999, 7, 2},
		{5, 0, 0},
	}
	for _, c := range cases {
		if got := FloorDiv(c.a, c.b); got != c.want {
			t.Errorf("FloorDiv(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestFloorDivExactRationals(t *testing.T) {
	// The Theorem 7 DP computes floor(K*k*s/w); verify no unit is lost when
	// K is itself of the form m*w/(k*s).
	for m := 1; m <= 40; m++ {
		for k := 1; k <= 8; k++ {
			w, s := 3.0, 7.0
			K := float64(m) * w / (float64(k) * s)
			if got := FloorDiv(K*float64(k)*s, w); got != m {
				t.Fatalf("FloorDiv lost a unit: m=%d k=%d got=%d", m, k, got)
			}
		}
	}
}

func TestAggregates(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if MinFloat(xs) != 1 {
		t.Error("MinFloat wrong")
	}
	if MaxFloat(xs) != 5 {
		t.Error("MaxFloat wrong")
	}
	if SumFloat(xs) != 14 {
		t.Error("SumFloat wrong")
	}
	if SumFloat(nil) != 0 {
		t.Error("SumFloat(nil) != 0")
	}
}
