package nph

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
)

// randomTheorem5Instance samples a 2-PARTITION instance meeting the
// Theorem 5 preconditions: pairwise distinct values, each smaller than S/2.
func randomTheorem5Instance(rng *rand.Rand, m, maxV int) []int {
	for {
		seen := make(map[int]bool)
		a := make([]int, 0, m)
		for len(a) < m {
			v := 1 + rng.Intn(maxV)
			if !seen[v] {
				seen[v] = true
				a = append(a, v)
			}
		}
		S := intSum(a)
		ok := true
		for _, v := range a {
			if 2*v >= S {
				ok = false
				break
			}
		}
		if ok {
			return a
		}
	}
}

func TestTheorem5LatencyReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		a := randomTheorem5Instance(rng, 3+rng.Intn(3), 12)
		_, yes, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		p, pl, bound := Theorem5Latency(a)
		opt, ok := exhaustive.PipelineLatency(p, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		mappingYes := numeric.LessEq(opt.Cost.Latency, bound)
		if mappingYes != yes {
			t.Fatalf("trial %d: a=%v 2-PARTITION=%v but latency %v vs bound %v",
				trial, a, yes, opt.Cost.Latency, bound)
		}
	}
}

func TestTheorem5PeriodReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		a := randomTheorem5Instance(rng, 3+rng.Intn(3), 12)
		_, yes, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		p, pl, bound := Theorem5Period(a)
		opt, ok := exhaustive.PipelinePeriod(p, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		mappingYes := numeric.LessEq(opt.Cost.Period, bound)
		if mappingYes != yes {
			t.Fatalf("trial %d: a=%v 2-PARTITION=%v but period %v vs bound %v",
				trial, a, yes, opt.Cost.Period, bound)
		}
	}
}

func TestTheorem9ReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	checkedNo := 0
	for trial := 0; trial < 6; trial++ {
		m, M := 2, 4+rng.Intn(3)
		var ins N3DMInstance
		var yes bool
		if trial%2 == 0 {
			ins = RandomYesN3DM(rng, m, M)
			yes = true
		} else {
			var ok bool
			ins, ok = RandomNoN3DM(rng, m, M)
			if !ok {
				continue
			}
			checkedNo++
		}
		p, pl, bound, err := Theorem9(ins)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.PipelinePeriod(p, pl, false)
		if !ok {
			t.Fatal("no mapping")
		}
		mappingYes := numeric.LessEq(opt.Cost.Period, bound)
		if mappingYes != yes {
			t.Fatalf("trial %d: N3DM=%v but period %v vs bound %v (instance %+v)",
				trial, yes, opt.Cost.Period, bound, ins)
		}
	}
	if checkedNo == 0 {
		t.Log("warning: no unsolvable N3DM instance was generated")
	}
}

func TestTheorem9WitnessAchievesPeriodOne(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m, M := 2+rng.Intn(2), 4+rng.Intn(3)
		ins := RandomYesN3DM(rng, m, M)
		s1, s2, ok := ins.Solve()
		if !ok {
			t.Fatal("yes-instance unsolvable")
		}
		p, pl, bound, err := Theorem9(ins)
		if err != nil {
			t.Fatal(err)
		}
		witness, err := Theorem9Witness(ins, s1, s2)
		if err != nil {
			t.Fatal(err)
		}
		c, err := mapping.EvalPipeline(p, pl, witness)
		if err != nil {
			t.Fatalf("witness mapping invalid: %v", err)
		}
		if numeric.Greater(c.Period, bound) {
			t.Fatalf("witness period %v exceeds bound %v (instance %+v)", c.Period, bound, ins)
		}
	}
}

func TestTheorem9RejectsInvalidInstance(t *testing.T) {
	bad := N3DMInstance{X: []int{1}, Y: []int{1}, Z: []int{5}, M: 3}
	if _, _, _, err := Theorem9(bad); err == nil {
		t.Error("invalid N3DM instance accepted")
	}
	if _, err := Theorem9Witness(bad, []int{0}, []int{0}); err == nil {
		t.Error("witness for invalid instance accepted")
	}
	good := N3DMInstance{X: []int{1}, Y: []int{1}, Z: []int{1}, M: 3}
	if _, err := Theorem9Witness(good, []int{0, 1}, []int{0}); err == nil {
		t.Error("wrong-length permutation accepted")
	}
}

func TestTheorem12ReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 30; trial++ {
		m := 2 + rng.Intn(3)
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(12)
		}
		_, yes, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		f, pl, bound := Theorem12(a)
		// The proof covers both models (with or without data-parallelism).
		for _, dp := range []bool{false, true} {
			opt, ok := exhaustive.ForkLatency(f, pl, dp)
			if !ok {
				t.Fatal("no mapping")
			}
			mappingYes := numeric.LessEq(opt.Cost.Latency, bound)
			if mappingYes != yes {
				t.Fatalf("trial %d: a=%v 2-PARTITION=%v but latency %v vs bound %v (dp=%v)",
					trial, a, yes, opt.Cost.Latency, bound, dp)
			}
		}
	}
}

func TestTheorem13ReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for trial := 0; trial < 30; trial++ {
		a := randomTheorem5Instance(rng, 3+rng.Intn(3), 12)
		_, yes, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		f, pl, lbound := Theorem13Latency(a)
		optL, ok := exhaustive.ForkLatency(f, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		if got := numeric.LessEq(optL.Cost.Latency, lbound); got != yes {
			t.Fatalf("trial %d: a=%v 2-PARTITION=%v but latency %v vs bound %v",
				trial, a, yes, optL.Cost.Latency, lbound)
		}
		_, _, pbound := Theorem13Period(a)
		optP, ok := exhaustive.ForkPeriod(f, pl, true)
		if !ok {
			t.Fatal("no mapping")
		}
		if got := numeric.LessEq(optP.Cost.Period, pbound); got != yes {
			t.Fatalf("trial %d: a=%v 2-PARTITION=%v but period %v vs bound %v",
				trial, a, yes, optP.Cost.Period, pbound)
		}
	}
}

func TestTheorem15ReductionIff(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 25; trial++ {
		m := 2 + rng.Intn(3)
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(10)
		}
		_, yes, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		f, pl, bound := Theorem15(a)
		opt, ok := exhaustive.ForkPeriod(f, pl, false)
		if !ok {
			t.Fatal("no mapping")
		}
		mappingYes := numeric.LessEq(opt.Cost.Period, bound)
		if mappingYes != yes {
			t.Fatalf("trial %d: a=%v 2-PARTITION=%v but period %v vs bound %v (mapping %v)",
				trial, a, yes, opt.Cost.Period, bound, opt.Mapping)
		}
	}
}
