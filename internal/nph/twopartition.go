// Package nph provides the NP-hardness machinery of Benoit & Robert
// (RR-6308): exact solvers for the source problems 2-PARTITION and
// NUMERICAL 3-DIMENSIONAL MATCHING (N3DM), and executable versions of the
// paper's polynomial reductions (Theorems 5, 9, 12, 13 and 15). The
// reductions let the test-suite check, instance by instance, that the
// transformed mapping question has a solution exactly when the source
// instance does — the "if and only if" at the heart of each proof.
package nph

import (
	"errors"
	"fmt"
	"math/rand"
)

// TwoPartition decides whether the positive integers a can be split into
// two halves of equal sum, returning one such subset (as indices) when they
// can. It runs the classic pseudo-polynomial subset-sum dynamic program,
// exact for the instance sizes used here.
func TwoPartition(a []int) ([]int, bool, error) {
	if len(a) == 0 {
		return nil, false, errors.New("nph: empty 2-PARTITION instance")
	}
	total := 0
	for i, v := range a {
		if v <= 0 {
			return nil, false, fmt.Errorf("nph: non-positive element a[%d]=%d", i, v)
		}
		total += v
	}
	if total%2 != 0 {
		return nil, false, nil
	}
	half := total / 2
	// reach[s] = index of the last element used to first reach sum s, or -1.
	const unreached = -2
	reach := make([]int, half+1)
	for s := range reach {
		reach[s] = unreached
	}
	reach[0] = -1
	for i, v := range a {
		for s := half; s >= v; s-- {
			if reach[s] == unreached && reach[s-v] != unreached && reach[s-v] != i {
				reach[s] = i
			}
		}
	}
	if reach[half] == unreached {
		return nil, false, nil
	}
	// Reconstruct: walk back through the first-reacher indices. Because the
	// inner loop runs descending and skips the current element, reach[s-v]
	// was set by an earlier element, so the walk terminates.
	var subset []int
	s := half
	for s > 0 {
		i := reach[s]
		subset = append(subset, i)
		s -= a[i]
	}
	// Reverse for ascending order.
	for l, r := 0, len(subset)-1; l < r; l, r = l+1, r-1 {
		subset[l], subset[r] = subset[r], subset[l]
	}
	return subset, true, nil
}

// SubsetSum returns the sum of a over the given indices.
func SubsetSum(a []int, subset []int) int {
	s := 0
	for _, i := range subset {
		s += a[i]
	}
	return s
}

// RandomYes2Partition returns an instance of m elements (m even, >= 2) that
// is guaranteed to admit a 2-partition: elements are generated in pairs of
// equal values, so the pairing itself is a witness.
func RandomYes2Partition(rng *rand.Rand, m, maxV int) []int {
	if m%2 != 0 {
		m++
	}
	a := make([]int, m)
	for i := 0; i < m; i += 2 {
		v := 1 + rng.Intn(maxV)
		a[i], a[i+1] = v, v
	}
	rng.Shuffle(len(a), func(i, j int) { a[i], a[j] = a[j], a[i] })
	return a
}

// RandomNo2Partition returns an instance with an odd total sum, which can
// never be 2-partitioned.
func RandomNo2Partition(rng *rand.Rand, m, maxV int) []int {
	a := make([]int, m)
	for i := range a {
		a[i] = 1 + rng.Intn(maxV)
	}
	total := 0
	for _, v := range a {
		total += v
	}
	if total%2 == 0 {
		a[0]++
	}
	return a
}
