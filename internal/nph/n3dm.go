package nph

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
)

// N3DMInstance is an instance of NUMERICAL 3-DIMENSIONAL MATCHING: do
// permutations σ1, σ2 of {0..m-1} exist with X[i] + Y[σ1(i)] + Z[σ2(i)] = M
// for all i?
type N3DMInstance struct {
	X, Y, Z []int
	M       int
}

// Validate checks the structural preconditions the Theorem 9 reduction
// assumes: equal lengths, all values positive and below M, and total sum
// m·M (otherwise the answer is trivially no).
func (ins N3DMInstance) Validate() error {
	m := len(ins.X)
	if m == 0 || len(ins.Y) != m || len(ins.Z) != m {
		return errors.New("nph: N3DM instance with mismatched lengths")
	}
	sum := 0
	for _, arr := range [][]int{ins.X, ins.Y, ins.Z} {
		for _, v := range arr {
			if v <= 0 || v >= ins.M {
				return fmt.Errorf("nph: N3DM value %d outside (0,%d)", v, ins.M)
			}
			sum += v
		}
	}
	if sum != m*ins.M {
		return fmt.Errorf("nph: N3DM total %d != m*M = %d", sum, m*ins.M)
	}
	return nil
}

// Solve decides the instance by exhaustive search over permutations σ1; for
// each σ1 the required Z multiset is compared against the actual one. It is
// exponential (m! permutations) and intended for the small instances of the
// test-suite. It returns witnesses σ1, σ2 when the answer is yes.
func (ins N3DMInstance) Solve() (sigma1, sigma2 []int, ok bool) {
	m := len(ins.X)
	perm := make([]int, m)
	used := make([]bool, m)
	var rec func(i int) bool
	s2 := make([]int, m)
	rec = func(i int) bool {
		if i == m {
			// Need Z[σ2(i)] = M - X[i] - Y[perm[i]]; match greedily by value.
			needed := make([]int, m)
			for k := 0; k < m; k++ {
				needed[k] = ins.M - ins.X[k] - ins.Y[perm[k]]
			}
			zUsed := make([]bool, m)
			for k := 0; k < m; k++ {
				found := -1
				for z := 0; z < m; z++ {
					if !zUsed[z] && ins.Z[z] == needed[k] {
						found = z
						break
					}
				}
				if found < 0 {
					return false
				}
				zUsed[found] = true
				s2[k] = found
			}
			return true
		}
		for v := 0; v < m; v++ {
			if used[v] {
				continue
			}
			used[v] = true
			perm[i] = v
			if rec(i + 1) {
				return true
			}
			used[v] = false
		}
		return false
	}
	if !rec(0) {
		return nil, nil, false
	}
	return append([]int(nil), perm...), append([]int(nil), s2...), true
}

// RandomYesN3DM builds an instance that is solvable by construction:
// for each i it samples x and y and sets z = M - x - y, then shuffles the Y
// and Z arrays independently.
func RandomYesN3DM(rng *rand.Rand, m, M int) N3DMInstance {
	if M < 3 {
		M = 3
	}
	ins := N3DMInstance{X: make([]int, m), Y: make([]int, m), Z: make([]int, m), M: M}
	for i := 0; i < m; i++ {
		x := 1 + rng.Intn(M-2)
		y := 1 + rng.Intn(M-1-x)
		ins.X[i] = x
		ins.Y[i] = y
		ins.Z[i] = M - x - y
	}
	rng.Shuffle(m, func(i, j int) { ins.Y[i], ins.Y[j] = ins.Y[j], ins.Y[i] })
	rng.Shuffle(m, func(i, j int) { ins.Z[i], ins.Z[j] = ins.Z[j], ins.Z[i] })
	return ins
}

// RandomNoN3DM builds an instance that satisfies the structural
// preconditions (sum = m·M, values in (0,M)) but has no solution; it
// perturbs yes-instances until the solver says no. It returns false if it
// fails to find one within the attempt budget (possible for tiny m/M where
// most balanced instances are solvable).
func RandomNoN3DM(rng *rand.Rand, m, M int) (N3DMInstance, bool) {
	for attempt := 0; attempt < 200; attempt++ {
		ins := RandomYesN3DM(rng, m, M)
		// Shift mass between two Z entries, preserving the total.
		i, j := rng.Intn(m), rng.Intn(m)
		if i == j || ins.Z[i] <= 1 || ins.Z[j] >= M-1 {
			continue
		}
		ins.Z[i]--
		ins.Z[j]++
		if ins.Validate() != nil {
			continue
		}
		if _, _, ok := ins.Solve(); !ok {
			return ins, true
		}
	}
	return N3DMInstance{}, false
}

// sortedCopy returns a sorted copy of xs (test helper shared by the
// reduction checks).
func sortedCopy(xs []int) []int {
	out := append([]int(nil), xs...)
	sort.Ints(out)
	return out
}
