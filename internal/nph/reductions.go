package nph

import (
	"fmt"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// The reductions below build, from a source 2-PARTITION or N3DM instance,
// the exact workflow/platform/threshold triple used in the corresponding
// NP-completeness proof. Each instance I2 has a mapping meeting the bound
// if and only if the source instance I1 has a solution; the tests exercise
// that equivalence with the exhaustive solvers as mapping oracles.

// intSum returns the sum of a.
func intSum(a []int) int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

// Theorem5Latency builds the Theorem 5 latency instance from a 2-PARTITION
// instance a: a two-stage homogeneous pipeline with w = S/2 on m processors
// of speeds a_j, with data-parallelism. The mapping question is
// "latency <= 2". The proof assumes all a_j distinct and smaller than S/2.
func Theorem5Latency(a []int) (workflow.Pipeline, platform.Platform, float64) {
	S := float64(intSum(a))
	speeds := make([]float64, len(a))
	for i, v := range a {
		speeds[i] = float64(v)
	}
	return workflow.NewPipeline(S/2, S/2), platform.New(speeds...), 2
}

// Theorem5Period builds the Theorem 5 period instance: same pipeline and
// platform, mapping question "period <= 1".
func Theorem5Period(a []int) (workflow.Pipeline, platform.Platform, float64) {
	p, pl, _ := Theorem5Latency(a)
	return p, pl, 1
}

// Theorem9Params groups the constants of the Theorem 9 construction.
type Theorem9Params struct {
	R, B, C, D int
}

// theorem9Params computes R = max(20, m+1), B = 2M, C = 5RM, D = 10R²M².
func theorem9Params(m, M int) Theorem9Params {
	R := 20
	if m+1 > R {
		R = m + 1
	}
	return Theorem9Params{R: R, B: 2 * M, C: 5 * R * M, D: 10 * R * R * M * M}
}

// Theorem9 builds the Pipeline-Period-Dec instance of Theorem 9 from an
// N3DM instance: a heterogeneous pipeline of (M+3)·m stages
//
//	A_1 1...1 C D | A_2 1...1 C D | ... | A_m 1...1 C D
//
// with A_i = B + x_i and M unit stages per group, on p = 3m processors of
// speeds B+M-y_j (slow), C+M-z_j (medium) and D (fast), without
// data-parallelism. The mapping question is "period <= 1".
func Theorem9(ins N3DMInstance) (workflow.Pipeline, platform.Platform, float64, error) {
	if err := ins.Validate(); err != nil {
		return workflow.Pipeline{}, platform.Platform{}, 0, err
	}
	m, M := len(ins.X), ins.M
	par := theorem9Params(m, M)
	var weights []float64
	for i := 0; i < m; i++ {
		weights = append(weights, float64(par.B+ins.X[i]))
		for k := 0; k < M; k++ {
			weights = append(weights, 1)
		}
		weights = append(weights, float64(par.C), float64(par.D))
	}
	speeds := make([]float64, 0, 3*m)
	for j := 0; j < m; j++ {
		speeds = append(speeds, float64(par.B+M-ins.Y[j]))
	}
	for j := 0; j < m; j++ {
		speeds = append(speeds, float64(par.C+M-ins.Z[j]))
	}
	for j := 0; j < m; j++ {
		speeds = append(speeds, float64(par.D))
	}
	return workflow.NewPipeline(weights...), platform.New(speeds...), 1, nil
}

// Theorem9Witness builds the explicit period-1 mapping from an N3DM
// solution (σ1, σ2), following the forward direction of the proof:
// for each group i, processor P_{σ1(i)} takes A_i plus z_{σ2(i)} unit
// stages, P_{m+σ2(i)} the remaining M - z_{σ2(i)} unit stages plus C, and
// P_{2m+i} the stage of weight D.
func Theorem9Witness(ins N3DMInstance, sigma1, sigma2 []int) (mapping.PipelineMapping, error) {
	if err := ins.Validate(); err != nil {
		return mapping.PipelineMapping{}, err
	}
	m, M := len(ins.X), ins.M
	if len(sigma1) != m || len(sigma2) != m {
		return mapping.PipelineMapping{}, fmt.Errorf("nph: witness permutations have wrong length")
	}
	var mp mapping.PipelineMapping
	for i := 0; i < m; i++ {
		base := i * (M + 3)
		z := ins.Z[sigma2[i]]
		mp.Intervals = append(mp.Intervals,
			mapping.NewPipelineInterval(base, base+z, mapping.Replicated, sigma1[i]),
			mapping.NewPipelineInterval(base+z+1, base+M+1, mapping.Replicated, m+sigma2[i]),
			mapping.NewPipelineInterval(base+M+2, base+M+2, mapping.Replicated, 2*m+i),
		)
	}
	return mp, nil
}

// Theorem12 builds the Theorem 12 instance from a 2-PARTITION instance a:
// a heterogeneous fork with w0 = 1 and leaves a_i on two unit-speed
// processors (a Homogeneous platform). The mapping question is
// "latency <= 1 + S/2", with or without data-parallelism.
func Theorem12(a []int) (workflow.Fork, platform.Platform, float64) {
	S := float64(intSum(a))
	weights := make([]float64, len(a))
	for i, v := range a {
		weights[i] = float64(v)
	}
	return workflow.NewFork(1, weights...), platform.Homogeneous(2, 1), 1 + S/2
}

// Theorem13Latency builds the Theorem 13 latency instance: a homogeneous
// fork of two stages S0, S1 with w = S/2 on m processors of speeds a_j,
// with data-parallelism. The mapping question is "latency <= 2". The
// reduction mirrors Theorem 5.
func Theorem13Latency(a []int) (workflow.Fork, platform.Platform, float64) {
	S := float64(intSum(a))
	speeds := make([]float64, len(a))
	for i, v := range a {
		speeds[i] = float64(v)
	}
	return workflow.NewFork(S/2, S/2), platform.New(speeds...), 2
}

// Theorem13Period builds the Theorem 13 period instance: same fork and
// platform, mapping question "period <= 1".
func Theorem13Period(a []int) (workflow.Fork, platform.Platform, float64) {
	f, pl, _ := Theorem13Latency(a)
	return f, pl, 1
}

// Theorem15 builds the Theorem 15 instance from a 2-PARTITION instance a:
// a heterogeneous fork with w0 = S, leaves a_1..a_m plus one extra leaf of
// weight S, on two processors of speeds 5S/2 and S/2, without
// data-parallelism. The mapping question is "period <= 1".
func Theorem15(a []int) (workflow.Fork, platform.Platform, float64) {
	S := float64(intSum(a))
	weights := make([]float64, 0, len(a)+1)
	for _, v := range a {
		weights = append(weights, float64(v))
	}
	weights = append(weights, S)
	return workflow.NewFork(S, weights...), platform.New(5*S/2, S/2), 1
}
