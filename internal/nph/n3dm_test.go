package nph

import (
	"math/rand"
	"testing"
)

func TestN3DMKnownYes(t *testing.T) {
	// x=(1,2), y=(2,1), z=(1,1), M=4: 1+2+1 = 2+1+1 = 4.
	ins := N3DMInstance{X: []int{1, 2}, Y: []int{2, 1}, Z: []int{1, 1}, M: 4}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	s1, s2, ok := ins.Solve()
	if !ok {
		t.Fatal("solvable instance reported unsolvable")
	}
	for i := range ins.X {
		if ins.X[i]+ins.Y[s1[i]]+ins.Z[s2[i]] != ins.M {
			t.Fatalf("witness violated at i=%d: %d + %d + %d != %d",
				i, ins.X[i], ins.Y[s1[i]], ins.Z[s2[i]], ins.M)
		}
	}
}

func TestN3DMKnownNo(t *testing.T) {
	// Sum is m*M = 8 but no matching: every triple must sum to 4, yet
	// 1+1+1 = 3 and 1+3+1 = 5.
	ins := N3DMInstance{X: []int{1, 1}, Y: []int{1, 3}, Z: []int{1, 1}, M: 4}
	if err := ins.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := ins.Solve(); ok {
		t.Fatal("unsolvable instance reported solvable")
	}
}

func TestN3DMValidate(t *testing.T) {
	if err := (N3DMInstance{X: []int{1}, Y: []int{1}, Z: []int{1}, M: 3}).Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	bad := []N3DMInstance{
		{X: []int{1}, Y: []int{1, 2}, Z: []int{1}, M: 3}, // length mismatch
		{X: []int{3}, Y: []int{1}, Z: []int{1}, M: 3},    // value >= M
		{X: []int{0}, Y: []int{1}, Z: []int{1}, M: 3},    // non-positive
		{X: []int{1}, Y: []int{1}, Z: []int{2}, M: 5},    // sum != m*M
		{},
	}
	for i, ins := range bad {
		if err := ins.Validate(); err == nil {
			t.Errorf("bad instance %d accepted", i)
		}
	}
}

func TestRandomYesN3DMAlwaysSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m := 1 + rng.Intn(4)
		M := 3 + rng.Intn(6)
		ins := RandomYesN3DM(rng, m, M)
		if err := ins.Validate(); err != nil {
			t.Fatalf("generated invalid instance: %v (%+v)", err, ins)
		}
		s1, s2, ok := ins.Solve()
		if !ok {
			t.Fatalf("yes-instance unsolvable: %+v", ins)
		}
		for i := 0; i < m; i++ {
			if ins.X[i]+ins.Y[s1[i]]+ins.Z[s2[i]] != ins.M {
				t.Fatalf("invalid witness for %+v", ins)
			}
		}
	}
}

func TestRandomNoN3DMIsNo(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	found := 0
	for trial := 0; trial < 20; trial++ {
		ins, ok := RandomNoN3DM(rng, 2+rng.Intn(2), 5+rng.Intn(4))
		if !ok {
			continue
		}
		found++
		if err := ins.Validate(); err != nil {
			t.Fatalf("no-instance invalid: %v", err)
		}
		if _, _, solvable := ins.Solve(); solvable {
			t.Fatalf("RandomNoN3DM produced a solvable instance: %+v", ins)
		}
	}
	if found == 0 {
		t.Fatal("RandomNoN3DM never produced an instance")
	}
}
