package nph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForce2Partition checks all subsets.
func bruteForce2Partition(a []int) bool {
	total := intSum(a)
	if total%2 != 0 {
		return false
	}
	for mask := 0; mask < 1<<len(a); mask++ {
		s := 0
		for i := range a {
			if mask&(1<<i) != 0 {
				s += a[i]
			}
		}
		if 2*s == total {
			return true
		}
	}
	return false
}

func TestTwoPartitionKnownCases(t *testing.T) {
	cases := []struct {
		a    []int
		want bool
	}{
		{[]int{1, 1}, true},
		{[]int{1, 2, 3}, true},     // {3} vs {1,2}
		{[]int{1, 2, 4}, false},    // total 7 odd
		{[]int{2, 2, 2}, false},    // total 6, half 3 unreachable
		{[]int{1, 5, 11, 5}, true}, // {11} vs {1,5,5}
		{[]int{3, 1, 1, 2, 2, 1}, true},
		{[]int{7}, false},
	}
	for _, c := range cases {
		subset, got, err := TwoPartition(c.a)
		if err != nil {
			t.Fatalf("TwoPartition(%v): %v", c.a, err)
		}
		if got != c.want {
			t.Errorf("TwoPartition(%v) = %v, want %v", c.a, got, c.want)
		}
		if got {
			if 2*SubsetSum(c.a, subset) != intSum(c.a) {
				t.Errorf("TwoPartition(%v) subset %v does not halve the sum", c.a, subset)
			}
		}
	}
}

func TestTwoPartitionMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(10)
		a := make([]int, m)
		for i := range a {
			a[i] = 1 + rng.Intn(30)
		}
		_, got, err := TwoPartition(a)
		if err != nil {
			t.Fatal(err)
		}
		if want := bruteForce2Partition(a); got != want {
			t.Fatalf("TwoPartition(%v) = %v, brute force %v", a, got, want)
		}
	}
}

func TestTwoPartitionSubsetIsValidWitness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := RandomYes2Partition(rng, 2+2*rng.Intn(4), 20)
		subset, ok, err := TwoPartition(a)
		if err != nil || !ok {
			return false
		}
		seen := make(map[int]bool)
		for _, i := range subset {
			if i < 0 || i >= len(a) || seen[i] {
				return false
			}
			seen[i] = true
		}
		return 2*SubsetSum(a, subset) == intSum(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandomNo2PartitionIsNo(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		a := RandomNo2Partition(rng, 1+rng.Intn(8), 15)
		if _, ok, _ := TwoPartition(a); ok {
			t.Fatalf("RandomNo2Partition produced a yes-instance: %v", a)
		}
	}
}

func TestTwoPartitionRejectsBadInput(t *testing.T) {
	if _, _, err := TwoPartition(nil); err == nil {
		t.Error("empty instance accepted")
	}
	if _, _, err := TwoPartition([]int{1, 0}); err == nil {
		t.Error("zero element accepted")
	}
	if _, _, err := TwoPartition([]int{-3}); err == nil {
		t.Error("negative element accepted")
	}
}
