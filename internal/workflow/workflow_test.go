package workflow

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewPipelineCopies(t *testing.T) {
	ws := []float64{1, 2, 3}
	p := NewPipeline(ws...)
	ws[0] = 99
	if p.Weights[0] != 1 {
		t.Fatal("NewPipeline aliases caller slice")
	}
}

func TestPipelineAccessors(t *testing.T) {
	p := NewPipeline(14, 4, 2, 4) // the Section 2 example
	if p.Stages() != 4 {
		t.Errorf("Stages = %d", p.Stages())
	}
	if p.TotalWork() != 24 {
		t.Errorf("TotalWork = %v", p.TotalWork())
	}
	if p.IntervalWork(1, 3) != 10 {
		t.Errorf("IntervalWork(1,3) = %v", p.IntervalWork(1, 3))
	}
	if p.IntervalWork(0, 0) != 14 {
		t.Errorf("IntervalWork(0,0) = %v", p.IntervalWork(0, 0))
	}
	if p.IsHomogeneous() {
		t.Error("14,4,2,4 reported homogeneous")
	}
}

func TestHomogeneousPipeline(t *testing.T) {
	p := HomogeneousPipeline(5, 3)
	if p.Stages() != 5 || p.TotalWork() != 15 {
		t.Fatalf("bad homogeneous pipeline: %+v", p)
	}
	if !p.IsHomogeneous() {
		t.Fatal("HomogeneousPipeline not homogeneous")
	}
}

func TestPipelineValidate(t *testing.T) {
	if err := NewPipeline(1, 2).Validate(); err != nil {
		t.Errorf("valid pipeline rejected: %v", err)
	}
	if err := NewPipeline().Validate(); err == nil {
		t.Error("empty pipeline accepted")
	}
	if err := NewPipeline(1, 0).Validate(); err == nil {
		t.Error("zero-weight stage accepted")
	}
	if err := NewPipeline(-1).Validate(); err == nil {
		t.Error("negative-weight stage accepted")
	}
}

func TestForkAccessors(t *testing.T) {
	f := NewFork(2, 1, 3, 5)
	if f.Leaves() != 3 {
		t.Errorf("Leaves = %d", f.Leaves())
	}
	if f.TotalWork() != 11 {
		t.Errorf("TotalWork = %v", f.TotalWork())
	}
	if f.IsHomogeneous() {
		t.Error("1,3,5 reported homogeneous")
	}
	h := HomogeneousFork(7, 4, 2)
	if !h.IsHomogeneous() || h.TotalWork() != 15 {
		t.Errorf("bad homogeneous fork: %+v", h)
	}
}

func TestForkValidate(t *testing.T) {
	if err := NewFork(1, 2, 3).Validate(); err != nil {
		t.Errorf("valid fork rejected: %v", err)
	}
	if err := NewFork(0, 1).Validate(); err == nil {
		t.Error("zero root accepted")
	}
	if err := NewFork(1, 0).Validate(); err == nil {
		t.Error("zero leaf accepted")
	}
	// A fork with no leaves is degenerate but legal: only the root computes.
	if err := NewFork(1).Validate(); err != nil {
		t.Errorf("leafless fork rejected: %v", err)
	}
}

func TestForkJoin(t *testing.T) {
	fj := NewForkJoin(2, 3, 1, 4)
	if fj.Leaves() != 2 {
		t.Errorf("Leaves = %d", fj.Leaves())
	}
	if fj.TotalWork() != 10 {
		t.Errorf("TotalWork = %v", fj.TotalWork())
	}
	if got := fj.Fork(); got.Root != 2 || got.Leaves() != 2 {
		t.Errorf("Fork() = %+v", got)
	}
	if err := fj.Validate(); err != nil {
		t.Errorf("valid fork-join rejected: %v", err)
	}
	if err := NewForkJoin(1, 0, 1).Validate(); err == nil {
		t.Error("zero join accepted")
	}
	if !HomogeneousForkJoin(1, 1, 3, 2).IsHomogeneous() {
		t.Error("HomogeneousForkJoin not homogeneous")
	}
}

func TestForkJoinForkIsCopy(t *testing.T) {
	fj := NewForkJoin(1, 1, 5, 6)
	f := fj.Fork()
	f.Weights[0] = 42
	if fj.Weights[0] != 5 {
		t.Fatal("ForkJoin.Fork aliases weights")
	}
}

func TestRandomGeneratorsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		p := RandomPipeline(rng, 6, 10)
		if p.Stages() != 6 {
			t.Fatal("wrong stage count")
		}
		for _, w := range p.Weights {
			if w < 1 || w > 10 || w != float64(int(w)) {
				t.Fatalf("weight out of range: %v", w)
			}
		}
		f := RandomFork(rng, 4, 5)
		if f.Root < 1 || f.Root > 5 || f.Leaves() != 4 {
			t.Fatalf("bad random fork: %+v", f)
		}
		fj := RandomForkJoin(rng, 3, 5)
		if fj.Join < 1 || fj.Join > 5 || fj.Leaves() != 3 {
			t.Fatalf("bad random fork-join: %+v", fj)
		}
	}
}

func TestRandomAlwaysValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		return RandomPipeline(rng, n, 20).Validate() == nil &&
			RandomFork(rng, n, 20).Validate() == nil &&
			RandomForkJoin(rng, n, 20).Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindString(t *testing.T) {
	if KindPipeline.String() != "pipeline" || KindFork.String() != "fork" ||
		KindForkJoin.String() != "fork-join" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestRenderPipeline(t *testing.T) {
	out := NewPipeline(14, 4, 2, 4).Render()
	if !strings.Contains(out, "S1") || !strings.Contains(out, "S4") {
		t.Fatalf("render missing stages:\n%s", out)
	}
	if !strings.Contains(out, "14") {
		t.Fatalf("render missing weight:\n%s", out)
	}
	if !strings.Contains(out, "->") {
		t.Fatalf("render missing arrows:\n%s", out)
	}
}

func TestRenderFork(t *testing.T) {
	out := NewFork(2, 1, 3).Render()
	if !strings.Contains(out, "S0 (2)") {
		t.Fatalf("render missing root:\n%s", out)
	}
	if !strings.Contains(out, "S2 (3)") {
		t.Fatalf("render missing leaf:\n%s", out)
	}
}

func TestRenderForkJoin(t *testing.T) {
	out := NewForkJoin(2, 5, 1, 3).Render()
	if !strings.Contains(out, "S3 (5)") {
		t.Fatalf("render missing join:\n%s", out)
	}
}
