package workflow

import (
	"strings"
	"testing"
)

func TestPipelineDOT(t *testing.T) {
	out := NewPipeline(14, 4).DOT()
	for _, want := range []string{"digraph pipeline", "rankdir=LR", "s1 -> s2", "in -> s1", "s2 -> out", "w=14"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestForkDOT(t *testing.T) {
	out := NewFork(2, 1, 3).DOT()
	for _, want := range []string{"digraph fork", "s0 -> s1", "s0 -> s2", "w=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestForkJoinDOT(t *testing.T) {
	out := NewForkJoin(2, 5, 1, 3).DOT()
	for _, want := range []string{"digraph forkjoin", "s1 -> s3", "s2 -> s3", "(join)"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Leafless fork-join connects the root straight to the join stage.
	out = NewForkJoin(2, 5).DOT()
	if !strings.Contains(out, "s0 -> s1") {
		t.Errorf("leafless DOT missing root->join edge:\n%s", out)
	}
}
