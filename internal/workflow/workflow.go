// Package workflow defines the application graphs studied by Benoit &
// Robert (RR-6308): linear pipelines (Figure 1), fork graphs (Figure 2) and
// the fork-join extension of Section 6.3.
//
// A graph is fully described by its stage weights: the simplified model of
// the paper (Section 3.4) neglects all communication, so the data sizes
// delta_k of the general model are carried for completeness and rendering
// but never enter a cost.
package workflow

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repliflow/internal/numeric"
)

// Kind identifies the shape of an application graph.
type Kind int

const (
	// KindPipeline is the linear pipeline of Figure 1.
	KindPipeline Kind = iota
	// KindFork is the fork of Figure 2: a root stage S0 followed by n
	// independent stages.
	KindFork
	// KindForkJoin is the Section 6.3 extension: a fork whose independent
	// stages all feed a final join stage S_{n+1}.
	KindForkJoin
	// KindSP is a general series-parallel DAG of named steps with
	// After(...) dependencies. Instances that collapse onto one of the
	// three shapes above are solved exactly by reduction; the rest go
	// through the spdecomp block solver.
	KindSP
	// KindCommPipeline is the communication-aware pipeline of
	// Sections 3.2-3.3 (internal/fullmodel): stage weights plus data sizes
	// delta_k and a bandwidth-annotated platform.
	KindCommPipeline
	// KindCommFork is the communication-aware one-port fork model of
	// internal/fullmodel: the root broadcasts its outputs sequentially.
	KindCommFork
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindPipeline:
		return "pipeline"
	case KindFork:
		return "fork"
	case KindForkJoin:
		return "fork-join"
	case KindSP:
		return "sp"
	case KindCommPipeline:
		return "comm-pipeline"
	case KindCommFork:
		return "comm-fork"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Pipeline is an n-stage linear pipeline. Weights[k] is the computation
// requirement w_{k+1} of stage S_{k+1} (stages are 1-indexed in the paper,
// 0-indexed here).
type Pipeline struct {
	Weights []float64
}

// NewPipeline returns a pipeline with the given stage weights.
func NewPipeline(weights ...float64) Pipeline {
	return Pipeline{Weights: append([]float64(nil), weights...)}
}

// HomogeneousPipeline returns an n-stage pipeline with identical weights w
// (the "homogeneous pipeline" of Table 1).
func HomogeneousPipeline(n int, w float64) Pipeline {
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = w
	}
	return Pipeline{Weights: ws}
}

// Stages returns the number of stages n.
func (p Pipeline) Stages() int { return len(p.Weights) }

// TotalWork returns the sum of all stage weights.
func (p Pipeline) TotalWork() float64 { return numeric.SumFloat(p.Weights) }

// IntervalWork returns the sum of weights of stages i..j inclusive
// (0-indexed).
func (p Pipeline) IntervalWork(i, j int) float64 {
	var s float64
	for k := i; k <= j; k++ {
		s += p.Weights[k]
	}
	return s
}

// IsHomogeneous reports whether all stage weights are equal (within
// tolerance).
func (p Pipeline) IsHomogeneous() bool {
	for _, w := range p.Weights[1:] {
		if !numeric.Eq(w, p.Weights[0]) {
			return false
		}
	}
	return true
}

// Validate checks the pipeline is well formed: at least one stage and
// strictly positive weights.
func (p Pipeline) Validate() error {
	if len(p.Weights) == 0 {
		return errors.New("workflow: pipeline has no stage")
	}
	for i, w := range p.Weights {
		if w <= 0 {
			return fmt.Errorf("workflow: stage S%d has non-positive weight %v", i+1, w)
		}
	}
	return nil
}

// Fork is the (n+1)-stage fork graph of Figure 2: a root stage S0 of weight
// Root followed by n independent stages S1..Sn with weights Weights.
type Fork struct {
	Root    float64
	Weights []float64
}

// NewFork returns a fork with root weight w0 and independent stage weights.
func NewFork(root float64, weights ...float64) Fork {
	return Fork{Root: root, Weights: append([]float64(nil), weights...)}
}

// HomogeneousFork returns a fork whose n independent stages all have weight
// w (the "homogeneous fork" of Table 1: root weight w0, leaves weight w).
func HomogeneousFork(root float64, n int, w float64) Fork {
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = w
	}
	return Fork{Root: root, Weights: ws}
}

// Leaves returns the number n of independent stages (excluding the root).
func (f Fork) Leaves() int { return len(f.Weights) }

// TotalWork returns w0 + sum of leaf weights.
func (f Fork) TotalWork() float64 { return f.Root + numeric.SumFloat(f.Weights) }

// IsHomogeneous reports whether all independent stages share one weight.
func (f Fork) IsHomogeneous() bool {
	if len(f.Weights) == 0 {
		return true
	}
	for _, w := range f.Weights[1:] {
		if !numeric.Eq(w, f.Weights[0]) {
			return false
		}
	}
	return true
}

// Validate checks the fork is well formed.
func (f Fork) Validate() error {
	if f.Root <= 0 {
		return fmt.Errorf("workflow: root stage has non-positive weight %v", f.Root)
	}
	for i, w := range f.Weights {
		if w <= 0 {
			return fmt.Errorf("workflow: stage S%d has non-positive weight %v", i+1, w)
		}
	}
	return nil
}

// ForkJoin is the Section 6.3 extension of Fork with a final join stage
// S_{n+1} of weight Join that gathers all results.
type ForkJoin struct {
	Root    float64
	Weights []float64
	Join    float64
}

// NewForkJoin returns a fork-join graph.
func NewForkJoin(root float64, join float64, weights ...float64) ForkJoin {
	return ForkJoin{Root: root, Join: join, Weights: append([]float64(nil), weights...)}
}

// HomogeneousForkJoin returns a fork-join whose n independent stages all
// have weight w.
func HomogeneousForkJoin(root, join float64, n int, w float64) ForkJoin {
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = w
	}
	return ForkJoin{Root: root, Join: join, Weights: ws}
}

// Leaves returns the number n of independent stages.
func (fj ForkJoin) Leaves() int { return len(fj.Weights) }

// TotalWork returns w0 + sum of leaf weights + w_{n+1}.
func (fj ForkJoin) TotalWork() float64 {
	return fj.Root + numeric.SumFloat(fj.Weights) + fj.Join
}

// Fork returns the fork obtained by dropping the join stage.
func (fj ForkJoin) Fork() Fork {
	return Fork{Root: fj.Root, Weights: append([]float64(nil), fj.Weights...)}
}

// IsHomogeneous reports whether all independent stages share one weight.
func (fj ForkJoin) IsHomogeneous() bool { return fj.Fork().IsHomogeneous() }

// Validate checks the fork-join is well formed.
func (fj ForkJoin) Validate() error {
	if err := fj.Fork().Validate(); err != nil {
		return err
	}
	if fj.Join <= 0 {
		return fmt.Errorf("workflow: join stage has non-positive weight %v", fj.Join)
	}
	return nil
}

// RandomPipeline returns an n-stage pipeline with integer weights drawn
// uniformly from [1, maxW]. Integer weights keep the cost arithmetic exact
// in tests.
func RandomPipeline(rng *rand.Rand, n, maxW int) Pipeline {
	ws := make([]float64, n)
	for i := range ws {
		ws[i] = float64(1 + rng.Intn(maxW))
	}
	return Pipeline{Weights: ws}
}

// RandomFork returns a fork with n leaves and integer weights in [1, maxW].
func RandomFork(rng *rand.Rand, n, maxW int) Fork {
	f := Fork{Root: float64(1 + rng.Intn(maxW)), Weights: make([]float64, n)}
	for i := range f.Weights {
		f.Weights[i] = float64(1 + rng.Intn(maxW))
	}
	return f
}

// RandomForkJoin returns a fork-join with n leaves and integer weights in
// [1, maxW].
func RandomForkJoin(rng *rand.Rand, n, maxW int) ForkJoin {
	fj := ForkJoin{
		Root:    float64(1 + rng.Intn(maxW)),
		Join:    float64(1 + rng.Intn(maxW)),
		Weights: make([]float64, n),
	}
	for i := range fj.Weights {
		fj.Weights[i] = float64(1 + rng.Intn(maxW))
	}
	return fj
}

// Render returns an ASCII rendering of the pipeline in the style of the
// paper's Figure 1: S1 -> S2 -> ... with weights below.
func (p Pipeline) Render() string {
	var top, bot strings.Builder
	for i, w := range p.Weights {
		cell := fmt.Sprintf("S%d", i+1)
		wcell := trimFloat(w)
		width := len(cell)
		if len(wcell) > width {
			width = len(wcell)
		}
		if i > 0 {
			top.WriteString(" -> ")
			bot.WriteString("    ")
		}
		top.WriteString(pad(cell, width))
		bot.WriteString(pad(wcell, width))
	}
	return top.String() + "\n" + bot.String() + "\n"
}

// Render returns an ASCII rendering of the fork in the style of Figure 2.
func (f Fork) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S0 (%s)\n", trimFloat(f.Root))
	for i, w := range f.Weights {
		connector := "├─"
		if i == len(f.Weights)-1 {
			connector = "└─"
		}
		fmt.Fprintf(&b, " %s S%d (%s)\n", connector, i+1, trimFloat(w))
	}
	return b.String()
}

// Render returns an ASCII rendering of the fork-join graph.
func (fj ForkJoin) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "S0 (%s)\n", trimFloat(fj.Root))
	for i, w := range fj.Weights {
		fmt.Fprintf(&b, " ├─ S%d (%s) ─┐\n", i+1, trimFloat(w))
	}
	fmt.Fprintf(&b, " └──────────→ S%d (%s)\n", fj.Leaves()+1, trimFloat(fj.Join))
	return b.String()
}

func trimFloat(w float64) string {
	s := fmt.Sprintf("%g", w)
	return s
}

func pad(s string, width int) string {
	for len(s) < width {
		s += " "
	}
	return s
}
