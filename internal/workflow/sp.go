package workflow

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// SPStep is one step of a series-parallel DAG workflow. A step runs only
// after every step named in After has finished; steps with no After entry
// are sources. Names are the identity used on the wire and in mappings.
type SPStep struct {
	Name   string
	Weight float64
	After  []string
}

// SP is a DAG workflow over named steps, in the style of step/After
// workflow builders. The three legacy shapes are trivial SP graphs: a
// chain is a pipeline, a root whose successors are all sinks is a fork,
// and adding a common sink makes a fork-join.
//
// The zero value is invalid; build one with NewSP or SPBuilder and check
// Validate before use.
type SP struct {
	Steps []SPStep
}

// NewSP returns an SP graph over the given steps. Slices are copied so the
// caller may reuse its buffers.
func NewSP(steps ...SPStep) SP {
	out := make([]SPStep, len(steps))
	for i, s := range steps {
		out[i] = SPStep{Name: s.Name, Weight: s.Weight, After: append([]string(nil), s.After...)}
	}
	return SP{Steps: out}
}

// SPBuilder accumulates steps fluently:
//
//	var b workflow.SPBuilder
//	b.Step("prepare", 2)
//	b.Step("build", 4, workflow.After("prepare")...)
//	g, err := b.Build()
type SPBuilder struct {
	steps []SPStep
}

// After is a readability helper for SPBuilder.Step dependency lists.
func After(names ...string) []string { return names }

// Step appends a step that runs after the named predecessors.
func (b *SPBuilder) Step(name string, weight float64, after ...string) *SPBuilder {
	b.steps = append(b.steps, SPStep{Name: name, Weight: weight, After: append([]string(nil), after...)})
	return b
}

// Build returns the accumulated graph, validated.
func (b *SPBuilder) Build() (SP, error) {
	g := NewSP(b.steps...)
	if err := g.Validate(); err != nil {
		return SP{}, err
	}
	return g, nil
}

// Stages returns the number of steps.
func (g SP) Stages() int { return len(g.Steps) }

// TotalWork returns the sum of all step weights.
func (g SP) TotalWork() float64 {
	var w float64
	for _, s := range g.Steps {
		w += s.Weight
	}
	return w
}

// IsHomogeneous reports whether all step weights are equal.
func (g SP) IsHomogeneous() bool {
	for _, s := range g.Steps[1:] {
		if s.Weight != g.Steps[0].Weight {
			return false
		}
	}
	return true
}

// index returns the name -> step-index map. Callers must have validated
// name uniqueness first.
func (g SP) index() map[string]int {
	idx := make(map[string]int, len(g.Steps))
	for i, s := range g.Steps {
		idx[s.Name] = i
	}
	return idx
}

// Preds returns, for each step, the indices of its predecessors in Steps
// order. The graph must be valid.
func (g SP) Preds() [][]int {
	idx := g.index()
	preds := make([][]int, len(g.Steps))
	for i, s := range g.Steps {
		for _, a := range s.After {
			preds[i] = append(preds[i], idx[a])
		}
		sort.Ints(preds[i])
	}
	return preds
}

// Succs returns, for each step, the indices of its successors.
func (g SP) Succs() [][]int {
	succs := make([][]int, len(g.Steps))
	for i, ps := range g.Preds() {
		for _, p := range ps {
			succs[p] = append(succs[p], i)
		}
	}
	return succs
}

// Validate checks the graph is a well-formed DAG: at least one step,
// non-empty unique names, strictly positive weights, no dangling or
// duplicate After references and no dependency cycle.
func (g SP) Validate() error {
	if len(g.Steps) == 0 {
		return errors.New("workflow: sp graph has no step")
	}
	idx := make(map[string]int, len(g.Steps))
	for i, s := range g.Steps {
		if s.Name == "" {
			return fmt.Errorf("workflow: sp step %d has an empty name", i)
		}
		if prev, dup := idx[s.Name]; dup {
			return fmt.Errorf("workflow: duplicate sp step name %q (steps %d and %d)", s.Name, prev, i)
		}
		idx[s.Name] = i
		if s.Weight <= 0 {
			return fmt.Errorf("workflow: sp step %q has non-positive weight %v", s.Name, s.Weight)
		}
	}
	for i, s := range g.Steps {
		seen := make(map[string]bool, len(s.After))
		for _, a := range s.After {
			if _, ok := idx[a]; !ok {
				return fmt.Errorf("workflow: sp step %q depends on unknown step %q", s.Name, a)
			}
			if seen[a] {
				return fmt.Errorf("workflow: sp step %q lists dependency %q twice", s.Name, a)
			}
			seen[a] = true
			if a == g.Steps[i].Name {
				return fmt.Errorf("workflow: sp step %q depends on itself", s.Name)
			}
		}
	}
	if _, err := g.Topo(); err != nil {
		return err
	}
	return nil
}

// Topo returns a deterministic topological order of step indices (Kahn's
// algorithm with smallest-index tie-breaking) or an error naming a step on
// a dependency cycle. This order is the canonical schedule order used by
// the SP cost model.
func (g SP) Topo() ([]int, error) {
	n := len(g.Steps)
	idx := g.index()
	indeg := make([]int, n)
	succs := make([][]int, n)
	for i, s := range g.Steps {
		for _, a := range s.After {
			p := idx[a]
			indeg[i]++
			succs[p] = append(succs[p], i)
		}
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range succs[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		for i := 0; i < n; i++ {
			if indeg[i] > 0 {
				return nil, fmt.Errorf("workflow: sp step %q is on a dependency cycle", g.Steps[i].Name)
			}
		}
	}
	return order, nil
}

// RandomSP returns a valid random SP-style DAG with n steps, integer
// weights in [1, maxW], and structure bounded by maxDepth levels and
// maxFanout predecessors per step. Steps are distributed over levels;
// each non-source step depends on one to maxFanout steps of the previous
// level, so depth and fanout stay bounded while still producing chains,
// diamonds and irreducible shapes.
func RandomSP(rng *rand.Rand, n, maxW, maxDepth, maxFanout int) SP {
	if n < 1 {
		n = 1
	}
	if maxDepth < 1 {
		maxDepth = 1
	}
	if maxFanout < 1 {
		maxFanout = 1
	}
	depth := 1 + rng.Intn(maxDepth)
	if depth > n {
		depth = n
	}
	// Assign each step to a level; every level gets at least one step.
	levels := make([][]int, depth)
	for i := 0; i < n; i++ {
		var l int
		if i < depth {
			l = i
		} else {
			l = rng.Intn(depth)
		}
		levels[l] = append(levels[l], i)
	}
	steps := make([]SPStep, n)
	for i := range steps {
		steps[i] = SPStep{Name: fmt.Sprintf("s%d", i), Weight: float64(1 + rng.Intn(maxW))}
	}
	for l := 1; l < depth; l++ {
		prev := levels[l-1]
		for _, i := range levels[l] {
			k := 1 + rng.Intn(maxFanout)
			if k > len(prev) {
				k = len(prev)
			}
			picked := rng.Perm(len(prev))[:k]
			sort.Ints(picked)
			for _, p := range picked {
				steps[i].After = append(steps[i].After, steps[prev[p]].Name)
			}
		}
	}
	return SP{Steps: steps}
}

// Render returns a one-line-per-step rendering of the DAG.
func (g SP) Render() string {
	var b strings.Builder
	for _, s := range g.Steps {
		if len(s.After) == 0 {
			fmt.Fprintf(&b, "%s (%s)\n", s.Name, trimFloat(s.Weight))
		} else {
			fmt.Fprintf(&b, "%s (%s) <- %s\n", s.Name, trimFloat(s.Weight), strings.Join(s.After, ", "))
		}
	}
	return b.String()
}
