package workflow

import (
	"fmt"
	"strings"
)

// DOT renders the pipeline as a Graphviz digraph (left-to-right chain with
// the stage weights as labels), handy for documentation and debugging.
func (p Pipeline) DOT() string {
	var b strings.Builder
	b.WriteString("digraph pipeline {\n  rankdir=LR;\n  node [shape=box];\n")
	for i, w := range p.Weights {
		fmt.Fprintf(&b, "  s%d [label=\"S%d\\nw=%s\"];\n", i+1, i+1, trimFloat(w))
	}
	b.WriteString("  in [shape=plaintext, label=\"in\"];\n")
	b.WriteString("  out [shape=plaintext, label=\"out\"];\n")
	b.WriteString("  in -> s1;\n")
	for i := 1; i < len(p.Weights); i++ {
		fmt.Fprintf(&b, "  s%d -> s%d;\n", i, i+1)
	}
	fmt.Fprintf(&b, "  s%d -> out;\n}\n", len(p.Weights))
	return b.String()
}

// DOT renders the fork as a Graphviz digraph.
func (f Fork) DOT() string {
	var b strings.Builder
	b.WriteString("digraph fork {\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  s0 [label=\"S0\\nw=%s\"];\n", trimFloat(f.Root))
	for i, w := range f.Weights {
		fmt.Fprintf(&b, "  s%d [label=\"S%d\\nw=%s\"];\n", i+1, i+1, trimFloat(w))
		fmt.Fprintf(&b, "  s0 -> s%d;\n", i+1)
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the SP DAG as a Graphviz digraph. Node identifiers are the
// step indices so arbitrary step names never need escaping beyond labels.
func (g SP) DOT() string {
	var b strings.Builder
	b.WriteString("digraph sp {\n  rankdir=LR;\n  node [shape=box];\n")
	for i, s := range g.Steps {
		fmt.Fprintf(&b, "  n%d [label=\"%s\\nw=%s\"];\n", i, strings.ReplaceAll(s.Name, `"`, `\"`), trimFloat(s.Weight))
	}
	idx := g.index()
	for i, s := range g.Steps {
		for _, a := range s.After {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", idx[a], i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the fork-join as a Graphviz digraph.
func (fj ForkJoin) DOT() string {
	var b strings.Builder
	join := fj.Leaves() + 1
	b.WriteString("digraph forkjoin {\n  node [shape=box];\n")
	fmt.Fprintf(&b, "  s0 [label=\"S0\\nw=%s\"];\n", trimFloat(fj.Root))
	fmt.Fprintf(&b, "  s%d [label=\"S%d (join)\\nw=%s\"];\n", join, join, trimFloat(fj.Join))
	for i, w := range fj.Weights {
		fmt.Fprintf(&b, "  s%d [label=\"S%d\\nw=%s\"];\n", i+1, i+1, trimFloat(w))
		fmt.Fprintf(&b, "  s0 -> s%d;\n", i+1)
		fmt.Fprintf(&b, "  s%d -> s%d;\n", i+1, join)
	}
	if fj.Leaves() == 0 {
		fmt.Fprintf(&b, "  s0 -> s%d;\n", join)
	}
	b.WriteString("}\n")
	return b.String()
}
