package workflow

import (
	"math/rand"
	"strings"
	"testing"
)

func TestSPBuilderAndValidate(t *testing.T) {
	var b SPBuilder
	b.Step("prepare", 2)
	b.Step("build", 4, After("prepare")...)
	b.Step("test", 3, After("build")...)
	b.Step("lint", 1, After("prepare")...)
	b.Step("release", 2, After("test", "lint")...)
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if g.Stages() != 5 {
		t.Fatalf("Stages = %d, want 5", g.Stages())
	}
	if got, want := g.TotalWork(), 12.0; got != want {
		t.Fatalf("TotalWork = %v, want %v", got, want)
	}
	order, err := g.Topo()
	if err != nil {
		t.Fatalf("Topo: %v", err)
	}
	pos := make([]int, len(order))
	for p, i := range order {
		pos[i] = p
	}
	for i, ps := range g.Preds() {
		for _, p := range ps {
			if pos[p] >= pos[i] {
				t.Fatalf("Topo places predecessor %d after %d", p, i)
			}
		}
	}
}

func TestSPValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		g    SP
		want string
	}{
		{"empty", SP{}, "no step"},
		{"dup name", NewSP(SPStep{Name: "a", Weight: 1}, SPStep{Name: "a", Weight: 2}), "duplicate"},
		{"empty name", NewSP(SPStep{Name: "", Weight: 1}), "empty name"},
		{"bad weight", NewSP(SPStep{Name: "a", Weight: 0}), "non-positive"},
		{"dangling", NewSP(SPStep{Name: "a", Weight: 1, After: []string{"ghost"}}), "unknown step"},
		{"dup dep", NewSP(SPStep{Name: "a", Weight: 1}, SPStep{Name: "b", Weight: 1, After: []string{"a", "a"}}), "twice"},
		{"self", NewSP(SPStep{Name: "a", Weight: 1, After: []string{"a"}}), "itself"},
		{"cycle", NewSP(
			SPStep{Name: "a", Weight: 1, After: []string{"b"}},
			SPStep{Name: "b", Weight: 1, After: []string{"a"}},
		), "cycle"},
	}
	for _, tc := range cases {
		err := tc.g.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Validate = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestSPTopoDeterministic(t *testing.T) {
	g := NewSP(
		SPStep{Name: "z", Weight: 1},
		SPStep{Name: "y", Weight: 1},
		SPStep{Name: "x", Weight: 1, After: []string{"z", "y"}},
	)
	first, err := g.Topo()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _ := g.Topo()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("Topo not deterministic: %v vs %v", first, again)
			}
		}
	}
	if first[0] != 0 || first[1] != 1 || first[2] != 2 {
		t.Fatalf("Topo = %v, want index order [0 1 2]", first)
	}
}

func TestRandomSPValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(9)
		g := RandomSP(rng, n, 9, 4, 3)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: RandomSP invalid: %v\n%s", trial, err, g.Render())
		}
		if g.Stages() != n {
			t.Fatalf("trial %d: %d steps, want %d", trial, g.Stages(), n)
		}
	}
}

func TestSPDOTAndRender(t *testing.T) {
	var b SPBuilder
	b.Step("a", 1)
	b.Step("b", 2, After("a")...)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph sp", `label="a\nw=1"`, "n0 -> n1;"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	r := g.Render()
	if !strings.Contains(r, "b (2) <- a") {
		t.Errorf("Render missing dependency line:\n%s", r)
	}
}

func TestKindStringNewKinds(t *testing.T) {
	for k, want := range map[Kind]string{
		KindSP:           "sp",
		KindCommPipeline: "comm-pipeline",
		KindCommFork:     "comm-fork",
		Kind(99):         "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
