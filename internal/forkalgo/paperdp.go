package forkalgo

import (
	"math"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HomForkLatencyPaperRecurrence computes the Theorem 11 optimum (without
// data-parallelism) with the paper's own two-level structure, transcribed
// literally: outer loops over n0 (leaves sharing the root's block) and q0
// (its processor count), with P0 = (w0 + n0·w)/(q0·s) and L0 = w0/s, and
// the inner recurrence
//
//	(P,L)(i,q) = min( (max(P0, i·w/(q·s)), L0 + max(n0·w/s, i·w/s)),
//	                  min_{1<=k<i, 1<=q'<q}
//	                    (max(P0, P(k,q'), P(i-k,q-q')),
//	                     L0 + max(n0·w/s, L(k,q'), L(i-k,q-q'))) )
//
// minimizing the latency (the paper's bi-criteria table computed "in
// parallel"; this transcription fixes no typos — the recurrence is used as
// printed, with the (P,L) pair reduced to its latency component for the
// mono-criterion check). It returns the optimal latency only; the
// production implementation HomForkLatency (loops + remDP) additionally
// builds mappings. Agreement between the two is checked in tests.
func HomForkLatencyPaperRecurrence(f workflow.Fork, pl platform.Platform) (float64, error) {
	if err := checkHomFork(f, pl); err != nil {
		return 0, err
	}
	s := pl.Speeds[0]
	n, p := f.Leaves(), pl.Processors()
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}

	best := numeric.Inf
	for n0 := 0; n0 <= n; n0++ {
		for q0 := 1; q0 <= p; q0++ {
			rem, qrem := n-n0, p-q0
			L0 := f.Root / s
			inBlock := L0 + float64(n0)*w/s
			if rem == 0 {
				if numeric.Less(inBlock, best) {
					best = inBlock
				}
				continue
			}
			if qrem == 0 {
				continue
			}
			// Inner recurrence: L(i,q) = minimal max-delay of replicated
			// blocks for i leaves on q processors; the paper's L-component
			// carries the L0 + max(n0·w/s, ...) wrapper which we apply at
			// the end (it is constant over the recurrence).
			memo := make([][]float64, rem+1)
			for i := range memo {
				memo[i] = make([]float64, qrem+1)
				for q := range memo[i] {
					memo[i][q] = -1
				}
			}
			var L func(i, q int) float64
			L = func(i, q int) float64 {
				if i == 0 {
					return 0
				}
				if q == 0 {
					return numeric.Inf
				}
				if memo[i][q] >= 0 {
					return memo[i][q]
				}
				// Case (1): replicate the i leaves as one block.
				v := float64(i) * w / s
				// Case (2): split.
				for k := 1; k < i; k++ {
					for q1 := 1; q1 < q; q1++ {
						if c := math.Max(L(k, q1), L(i-k, q-q1)); c < v {
							v = c
						}
					}
				}
				memo[i][q] = v
				return v
			}
			lat := L0 + math.Max(float64(n0)*w/s, L(rem, qrem))
			if numeric.Less(math.Max(inBlock, lat), best) {
				best = math.Max(inBlock, lat)
			}
		}
	}
	return best, nil
}
