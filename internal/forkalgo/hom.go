package forkalgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// HomForkPeriod implements Theorem 10: on a Homogeneous platform the period
// of any fork — homogeneous or not — is minimized by replicating the whole
// graph as one block onto all processors, reaching the absolute lower bound
// (w0 + sum wi) / (p*s). Data-parallelism cannot improve it (Lemma 1).
func HomForkPeriod(f workflow.Fork, pl platform.Platform) (Result, error) {
	if err := f.Validate(); err != nil {
		return Result{}, err
	}
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if !pl.IsHomogeneous() {
		return Result{}, ErrNotHomogeneousPlatform
	}
	return finishFork(f, pl, mapping.ReplicateAllFork(f, pl)), nil
}

// HomForkJoinPeriod is the Section 6.3 extension of Theorem 10 to fork-join
// graphs: replication of the whole graph on all processors is still
// optimal.
func HomForkJoinPeriod(fj workflow.ForkJoin, pl platform.Platform) (ForkJoinResult, error) {
	if err := fj.Validate(); err != nil {
		return ForkJoinResult{}, err
	}
	if err := pl.Validate(); err != nil {
		return ForkJoinResult{}, err
	}
	if !pl.IsHomogeneous() {
		return ForkJoinResult{}, ErrNotHomogeneousPlatform
	}
	return finishForkJoin(fj, pl, mapping.ReplicateAllForkJoin(fj, pl)), nil
}

// remDP is the Theorem 11 dynamic program for the model without
// data-parallelism: D(i,q) is the minimum over partitions of i identical
// leaves (weight w each) into replicated blocks on q identical processors
// (speed s) of the maximum block delay, subject to every block period being
// at most K. Reconstruction data records the first block (leaf count, then
// processor count).
type remDP struct {
	w, s, K float64
	n, p    int
	memo    []float64
	seen    []bool
	chK     []int // leaves in the first block
	chQ     []int // processors of the first block
}

func newRemDP(n, p int, w, s, K float64) *remDP {
	states := (n + 1) * (p + 1)
	return &remDP{
		w: w, s: s, K: K, n: n, p: p,
		memo: make([]float64, states),
		seen: make([]bool, states),
		chK:  make([]int, states),
		chQ:  make([]int, states),
	}
}

func (d *remDP) id(i, q int) int { return i*(d.p+1) + q }

func (d *remDP) solve(i, q int) float64 {
	if i == 0 {
		return 0
	}
	if q == 0 {
		return numeric.Inf
	}
	id := d.id(i, q)
	if d.seen[id] {
		return d.memo[id]
	}
	d.seen[id] = true
	best := numeric.Inf
	bk, bq := 0, 0
	for k := 1; k <= i; k++ {
		delay := float64(k) * d.w / d.s
		if numeric.GreaterEq(delay, best) {
			break // delays grow with k; larger blocks cannot improve the max
		}
		for q1 := 1; q1 <= q; q1++ {
			if numeric.Greater(float64(k)*d.w/(float64(q1)*d.s), d.K) {
				continue
			}
			rest := d.solve(i-k, q-q1)
			if v := math.Max(delay, rest); numeric.Less(v, best) {
				best = v
				bk, bq = k, q1
			}
			break // the smallest feasible q1 is optimal: more processors do not lower the delay
		}
	}
	d.memo[id] = best
	d.chK[id] = bk
	d.chQ[id] = bq
	return best
}

// blocks reconstructs the (leafCount, procCount) sequence of an optimal
// partition of i leaves on q processors.
func (d *remDP) blocks(i, q int) [][2]int {
	var out [][2]int
	for i > 0 {
		id := d.id(i, q)
		k, q1 := d.chK[id], d.chQ[id]
		if k == 0 {
			panic("forkalgo: remDP reconstruction on infeasible state")
		}
		out = append(out, [2]int{k, q1})
		i -= k
		q -= q1
	}
	return out
}

// homForkSearch scans the Theorem 11 configuration space — n0 leaves in the
// root block on q0 processors, the rest handled either as one data-parallel
// block (allowDP) or as replicated blocks via remDP — and returns a mapping
// minimizing the latency under the period bound K. ok is false when K is
// infeasible.
func homForkSearch(f workflow.Fork, pl platform.Platform, allowDP bool, K float64) (Result, bool) {
	n := f.Leaves()
	p := pl.Processors()
	s := pl.Speeds[0]
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}
	var rd *remDP
	if !allowDP {
		rd = newRemDP(n, p, w, s, K)
	}

	bestLatency := numeric.Inf
	var best mapping.ForkMapping
	consider := func(latency float64, m mapping.ForkMapping) {
		if numeric.Less(latency, bestLatency) {
			bestLatency = latency
			best = m
		}
	}

	for n0 := 0; n0 <= n; n0++ {
		rem := n - n0
		for q0 := 1; q0 <= p; q0++ {
			qrem := p - q0
			if rem > 0 && qrem == 0 {
				continue
			}
			// Root block: replicated {S0 + n0 leaves}, or S0 alone
			// data-parallelized when n0 = 0 and the model allows it.
			type rootOpt struct {
				mode      mapping.Mode
				period    float64
				rootDone  float64 // completion time of S0 (leaf start time)
				innerDone float64 // completion time of the root block's leaves
			}
			opts := []rootOpt{{
				mode:      mapping.Replicated,
				period:    (f.Root + float64(n0)*w) / (float64(q0) * s),
				rootDone:  f.Root / s,
				innerDone: (f.Root + float64(n0)*w) / s,
			}}
			if n0 == 0 && allowDP && q0 > 1 {
				d := f.Root / (float64(q0) * s)
				opts = append(opts, rootOpt{mode: mapping.DataParallel, period: d, rootDone: d, innerDone: d})
			}
			for _, opt := range opts {
				if numeric.Greater(opt.period, K) {
					continue
				}
				if rem == 0 {
					m := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
						mapping.NewForkBlock(true, leafRange(0, n0), opt.mode, procRange(0, q0)...),
					}}
					consider(opt.innerDone, m)
					continue
				}
				if allowDP {
					// One data-parallel block holds every remaining leaf:
					// merging data-parallel blocks never hurts on a
					// homogeneous platform (mediant inequality), and by
					// Lemma 1 replication cannot beat it either.
					d := float64(rem) * w / (float64(qrem) * s)
					if numeric.Greater(d, K) {
						continue
					}
					lat := math.Max(opt.innerDone, opt.rootDone+d)
					m := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
						mapping.NewForkBlock(true, leafRange(0, n0), opt.mode, procRange(0, q0)...),
						mapping.NewForkBlock(false, leafRange(n0, rem), mapping.DataParallel, procRange(q0, qrem)...),
					}}
					consider(lat, m)
					continue
				}
				dmax := rd.solve(rem, qrem)
				if math.IsInf(dmax, 1) {
					continue
				}
				lat := math.Max(opt.innerDone, opt.rootDone+dmax)
				m := mapping.ForkMapping{Blocks: []mapping.ForkBlock{
					mapping.NewForkBlock(true, leafRange(0, n0), opt.mode, procRange(0, q0)...),
				}}
				leaf, proc := n0, q0
				for _, b := range rd.blocks(rem, qrem) {
					m.Blocks = append(m.Blocks,
						mapping.NewForkBlock(false, leafRange(leaf, b[0]), mapping.Replicated, procRange(proc, b[1])...))
					leaf += b[0]
					proc += b[1]
				}
				consider(lat, m)
			}
		}
	}
	if math.IsInf(bestLatency, 1) {
		return Result{}, false
	}
	return finishFork(f, pl, best), true
}

func checkHomFork(f workflow.Fork, pl platform.Platform) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if !pl.IsHomogeneous() {
		return ErrNotHomogeneousPlatform
	}
	if !f.IsHomogeneous() {
		return ErrNotHomogeneousFork
	}
	return nil
}

// HomForkLatency implements the latency half of Theorem 11: the minimum
// latency of a homogeneous fork on a Homogeneous platform, with or without
// data-parallelism.
func HomForkLatency(f workflow.Fork, pl platform.Platform, allowDP bool) (Result, error) {
	if err := checkHomFork(f, pl); err != nil {
		return Result{}, err
	}
	res, ok := homForkSearch(f, pl, allowDP, numeric.Inf)
	if !ok {
		panic("forkalgo: unconstrained Theorem 11 search found no mapping")
	}
	return res, nil
}

// HomForkLatencyUnderPeriod implements the bi-criteria direction of
// Theorem 11 minimizing latency under a period bound. The boolean is false
// when the bound is infeasible.
func HomForkLatencyUnderPeriod(f workflow.Fork, pl platform.Platform, allowDP bool, maxPeriod float64) (Result, bool, error) {
	if err := checkHomFork(f, pl); err != nil {
		return Result{}, false, err
	}
	res, ok := homForkSearch(f, pl, allowDP, maxPeriod)
	return res, ok, nil
}

// homForkPeriodCandidates lists every value a block period can take in a
// Theorem 11 configuration.
func homForkPeriodCandidates(f workflow.Fork, pl platform.Platform) []float64 {
	n, p, s := f.Leaves(), pl.Processors(), pl.Speeds[0]
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}
	var cands []float64
	for q := 1; q <= p; q++ {
		for m := 0; m <= n; m++ {
			cands = append(cands, (f.Root+float64(m)*w)/(float64(q)*s))
			if m > 0 {
				cands = append(cands, float64(m)*w/(float64(q)*s))
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// HomForkPeriodUnderLatency implements the converse bi-criteria direction
// of Theorem 11: minimum period under a latency bound, by binary search
// over the finite candidate period set.
func HomForkPeriodUnderLatency(f workflow.Fork, pl platform.Platform, allowDP bool, maxLatency float64) (Result, bool, error) {
	if err := checkHomFork(f, pl); err != nil {
		return Result{}, false, err
	}
	cands := homForkPeriodCandidates(f, pl)
	lo, hi := 0, len(cands)-1
	var best Result
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok := homForkSearch(f, pl, allowDP, cands[mid])
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}
