package forkalgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// homForkJoinSearch scans the Section 6.3 extension of the Theorem 11
// configuration space for a homogeneous fork-join on a Homogeneous
// platform. On top of the fork loops (n0 leaves with the root on q0
// processors) it adds the paper's two extra loops: the number n1 of leaves
// sharing the join stage's block and that block's processor count q1, plus
// the case where S0 and S_{n+1} share one block. It returns a mapping
// minimizing latency under the period bound K.
func homForkJoinSearch(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, K float64) (ForkJoinResult, bool) {
	n := fj.Leaves()
	p := pl.Processors()
	s := pl.Speeds[0]
	w := 0.0
	if n > 0 {
		w = fj.Weights[0]
	}
	var rd *remDP
	if !allowDP {
		rd = newRemDP(n, p, w, s, K)
	}

	bestLatency := numeric.Inf
	var best mapping.ForkJoinMapping
	consider := func(latency float64, m mapping.ForkJoinMapping) {
		if numeric.Less(latency, bestLatency) {
			bestLatency = latency
			best = m
		}
	}

	// middle maps the rem leaves not in the root or join blocks onto qrem
	// processors, returning (maxDelay, blocks) or false if K is infeasible.
	middle := func(rem, qrem, leafFrom, procFrom int) (float64, []mapping.ForkJoinBlock, bool) {
		if rem == 0 {
			return 0, nil, true
		}
		if qrem == 0 {
			return 0, nil, false
		}
		if allowDP {
			d := float64(rem) * w / (float64(qrem) * s)
			if numeric.Greater(d, K) {
				return 0, nil, false
			}
			return d, []mapping.ForkJoinBlock{
				mapping.NewForkJoinBlock(false, false, leafRange(leafFrom, rem), mapping.DataParallel, procRange(procFrom, qrem)...),
			}, true
		}
		dmax := rd.solve(rem, qrem)
		if math.IsInf(dmax, 1) {
			return 0, nil, false
		}
		var blocks []mapping.ForkJoinBlock
		leaf, proc := leafFrom, procFrom
		for _, b := range rd.blocks(rem, qrem) {
			blocks = append(blocks,
				mapping.NewForkJoinBlock(false, false, leafRange(leaf, b[0]), mapping.Replicated, procRange(proc, b[1])...))
			leaf += b[0]
			proc += b[1]
		}
		return dmax, blocks, true
	}

	// Case A: the join stage shares the root's block.
	for n0 := 0; n0 <= n; n0++ {
		rem := n - n0
		for q0 := 1; q0 <= p; q0++ {
			qrem := p - q0
			if rem > 0 && qrem == 0 {
				continue
			}
			period := (fj.Root + float64(n0)*w + fj.Join) / (float64(q0) * s)
			if numeric.Greater(period, K) {
				continue
			}
			rootDone := fj.Root / s
			innerDone := (fj.Root + float64(n0)*w) / s
			dmax, blocks, ok := middle(rem, qrem, n0, q0)
			if !ok {
				continue
			}
			leafDone := math.Max(innerDone, rootDone+dmax)
			lat := leafDone + fj.Join/s
			m := mapping.ForkJoinMapping{Blocks: append([]mapping.ForkJoinBlock{
				mapping.NewForkJoinBlock(true, true, leafRange(0, n0), mapping.Replicated, procRange(0, q0)...),
			}, blocks...)}
			consider(lat, m)
		}
	}

	// Case B: the join stage has its own block with n1 leaves on q1
	// processors.
	for n0 := 0; n0 <= n; n0++ {
		for n1 := 0; n1 <= n-n0; n1++ {
			rem := n - n0 - n1
			for q0 := 1; q0 <= p; q0++ {
				for q1 := 1; q1 <= p-q0; q1++ {
					qrem := p - q0 - q1
					if rem > 0 && qrem == 0 {
						continue
					}
					// Root block options.
					type rootOpt struct {
						mode      mapping.Mode
						period    float64
						rootDone  float64
						innerDone float64
					}
					ropts := []rootOpt{{
						mode:      mapping.Replicated,
						period:    (fj.Root + float64(n0)*w) / (float64(q0) * s),
						rootDone:  fj.Root / s,
						innerDone: (fj.Root + float64(n0)*w) / s,
					}}
					if n0 == 0 && allowDP && q0 > 1 {
						d := fj.Root / (float64(q0) * s)
						ropts = append(ropts, rootOpt{mode: mapping.DataParallel, period: d, rootDone: d, innerDone: d})
					}
					// Join block options.
					type joinOpt struct {
						mode      mapping.Mode
						period    float64
						joinDelay float64
					}
					jopts := []joinOpt{{
						mode:      mapping.Replicated,
						period:    (float64(n1)*w + fj.Join) / (float64(q1) * s),
						joinDelay: fj.Join / s,
					}}
					if n1 == 0 && allowDP && q1 > 1 {
						jopts = append(jopts, joinOpt{
							mode:      mapping.DataParallel,
							period:    fj.Join / (float64(q1) * s),
							joinDelay: fj.Join / (float64(q1) * s),
						})
					}
					for _, ro := range ropts {
						if numeric.Greater(ro.period, K) {
							continue
						}
						for _, jo := range jopts {
							if numeric.Greater(jo.period, K) {
								continue
							}
							dmax, blocks, ok := middle(rem, qrem, n0+n1, q0+q1)
							if !ok {
								continue
							}
							leafDone := math.Max(ro.innerDone, ro.rootDone+math.Max(float64(n1)*w/s, dmax))
							lat := leafDone + jo.joinDelay
							m := mapping.ForkJoinMapping{Blocks: append([]mapping.ForkJoinBlock{
								mapping.NewForkJoinBlock(true, false, leafRange(0, n0), ro.mode, procRange(0, q0)...),
								mapping.NewForkJoinBlock(false, true, leafRange(n0, n1), jo.mode, procRange(q0, q1)...),
							}, blocks...)}
							consider(lat, m)
						}
					}
				}
			}
		}
	}

	if math.IsInf(bestLatency, 1) {
		return ForkJoinResult{}, false
	}
	return finishForkJoin(fj, pl, best), true
}

func checkHomForkJoin(fj workflow.ForkJoin, pl platform.Platform) error {
	if err := fj.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if !pl.IsHomogeneous() {
		return ErrNotHomogeneousPlatform
	}
	if !fj.IsHomogeneous() {
		return ErrNotHomogeneousFork
	}
	return nil
}

// HomForkJoinLatency extends Theorem 11 to fork-join graphs (Section 6.3):
// minimum latency of a homogeneous fork-join on a Homogeneous platform.
func HomForkJoinLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool) (ForkJoinResult, error) {
	if err := checkHomForkJoin(fj, pl); err != nil {
		return ForkJoinResult{}, err
	}
	res, ok := homForkJoinSearch(fj, pl, allowDP, numeric.Inf)
	if !ok {
		panic("forkalgo: unconstrained fork-join search found no mapping")
	}
	return res, nil
}

// HomForkJoinLatencyUnderPeriod extends the bi-criteria direction of
// Theorem 11 to fork-join graphs.
func HomForkJoinLatencyUnderPeriod(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxPeriod float64) (ForkJoinResult, bool, error) {
	if err := checkHomForkJoin(fj, pl); err != nil {
		return ForkJoinResult{}, false, err
	}
	res, ok := homForkJoinSearch(fj, pl, allowDP, maxPeriod)
	return res, ok, nil
}

// homForkJoinPeriodCandidates lists every value a block period can take in
// a Section 6.3 configuration.
func homForkJoinPeriodCandidates(fj workflow.ForkJoin, pl platform.Platform) []float64 {
	n, p, s := fj.Leaves(), pl.Processors(), pl.Speeds[0]
	w := 0.0
	if n > 0 {
		w = fj.Weights[0]
	}
	var cands []float64
	for q := 1; q <= p; q++ {
		for m := 0; m <= n; m++ {
			base := float64(m) * w
			cands = append(cands,
				(fj.Root+base)/(float64(q)*s),
				(base+fj.Join)/(float64(q)*s),
				(fj.Root+base+fj.Join)/(float64(q)*s))
			if m > 0 {
				cands = append(cands, base/(float64(q)*s))
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// HomForkJoinPeriodUnderLatency extends the converse bi-criteria direction
// of Theorem 11 to fork-join graphs.
func HomForkJoinPeriodUnderLatency(fj workflow.ForkJoin, pl platform.Platform, allowDP bool, maxLatency float64) (ForkJoinResult, bool, error) {
	if err := checkHomForkJoin(fj, pl); err != nil {
		return ForkJoinResult{}, false, err
	}
	cands := homForkJoinPeriodCandidates(fj, pl)
	lo, hi := 0, len(cands)-1
	var best ForkJoinResult
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		res, ok := homForkJoinSearch(fj, pl, allowDP, cands[mid])
		if ok && numeric.LessEq(res.Cost.Latency, maxLatency) {
			best = res
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return best, found, nil
}
