// Package forkalgo implements the polynomial mapping algorithms of Benoit &
// Robert (RR-6308) for fork and fork-join graphs:
//
//   - Theorem 10: period minimization on Homogeneous platforms (replicate
//     the whole graph on every processor), for any fork and any fork-join,
//     with or without data-parallelism.
//   - Theorem 11: latency and bi-criteria optimization of a homogeneous
//     fork on Homogeneous platforms, with and without data-parallelism, by
//     loops over (n0, q0) — the leaves sharing the root's block and its
//     processor count — combined with a dynamic program over the remaining
//     leaves.
//   - Theorem 14: any objective for a homogeneous fork on Heterogeneous
//     platforms without data-parallelism, by binary search over candidate
//     values combined with the W(i,j) dynamic program over sorted processor
//     intervals, with an extra loop over the interval in charge of S0
//     (Lemma 4 structure).
//   - Section 6.3: the extensions of Theorems 10, 11 and 14 to fork-join
//     graphs (extra loops over the join block's composition and placement).
//
// The NP-hard instances (Theorems 12, 13, 15) have no polynomial algorithm;
// see internal/heuristics and internal/exhaustive.
package forkalgo

import (
	"errors"
	"fmt"

	"repliflow/internal/mapping"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// Result is a computed fork mapping together with its exact cost.
type Result struct {
	Mapping mapping.ForkMapping
	Cost    mapping.Cost
}

// ForkJoinResult is a computed fork-join mapping with its exact cost.
type ForkJoinResult struct {
	Mapping mapping.ForkJoinMapping
	Cost    mapping.Cost
}

// ErrNotHomogeneousPlatform is returned by the Homogeneous-platform
// algorithms when processor speeds differ.
var ErrNotHomogeneousPlatform = errors.New("forkalgo: platform is not homogeneous")

// ErrNotHomogeneousFork is returned by the homogeneous-fork algorithms when
// leaf weights differ (those instances are NP-hard, Theorems 12/13/15).
var ErrNotHomogeneousFork = errors.New("forkalgo: fork leaves are not identical")

func finishFork(f workflow.Fork, pl platform.Platform, m mapping.ForkMapping) Result {
	c, err := mapping.EvalFork(f, pl, m)
	if err != nil {
		panic(fmt.Sprintf("forkalgo: constructed invalid fork mapping %v: %v", m, err))
	}
	return Result{Mapping: m, Cost: c}
}

func finishForkJoin(fj workflow.ForkJoin, pl platform.Platform, m mapping.ForkJoinMapping) ForkJoinResult {
	c, err := mapping.EvalForkJoin(fj, pl, m)
	if err != nil {
		panic(fmt.Sprintf("forkalgo: constructed invalid fork-join mapping %v: %v", m, err))
	}
	return ForkJoinResult{Mapping: m, Cost: c}
}

// leafRange returns the leaf indices [from, from+count).
func leafRange(from, count int) []int {
	if count == 0 {
		return nil
	}
	ls := make([]int, count)
	for i := range ls {
		ls[i] = from + i
	}
	return ls
}

// procRange returns the processor indices [from, from+count).
func procRange(from, count int) []int {
	ps := make([]int, count)
	for i := range ps {
		ps[i] = from + i
	}
	return ps
}
