package forkalgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestForkJoinLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		for _, dp := range []bool{false, true} {
			res, err := HomForkJoinLatency(fj, pl, dp)
			if err != nil {
				t.Fatal(err)
			}
			opt, ok := exhaustive.ForkJoinLatency(fj, pl, dp)
			if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
				t.Fatalf("trial %d: fork-join latency %v != exhaustive %v (dp=%v, w0=%v n=%d w=%v wj=%v p=%d)\nalg: %v\nopt: %v",
					trial, res.Cost.Latency, opt.Cost.Latency, dp, fj.Root, n, fj.Weights,
					fj.Join, pl.Processors(), res.Mapping, opt.Mapping)
			}
		}
	}
}

func TestForkJoinLatencyUnderPeriodMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		optP, _ := exhaustive.ForkJoinPeriod(fj, pl, false)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		for _, dp := range []bool{false, true} {
			res, ok, err := HomForkJoinLatencyUnderPeriod(fj, pl, dp, bound)
			if err != nil {
				t.Fatal(err)
			}
			ref, refOK := exhaustive.ForkJoinLatencyUnderPeriod(fj, pl, dp, bound)
			if ok != refOK {
				t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v (bound=%v dp=%v)", ok, refOK, bound, dp)
			}
			if ok && !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
				t.Fatalf("trial %d: latency %v != exhaustive %v (dp=%v bound=%v w0=%v n=%d wj=%v p=%d)\nalg: %v\nopt: %v",
					trial, res.Cost.Latency, ref.Cost.Latency, dp, bound, fj.Root, n, fj.Join,
					pl.Processors(), res.Mapping, ref.Mapping)
			}
			if ok && numeric.Greater(res.Cost.Period, bound) {
				t.Fatalf("period bound violated: %v > %v", res.Cost.Period, bound)
			}
		}
	}
}

func TestForkJoinPeriodUnderLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		optL, _ := exhaustive.ForkJoinLatency(fj, pl, false)
		bound := optL.Cost.Latency * (1 + rng.Float64()*2)
		for _, dp := range []bool{false, true} {
			res, ok, err := HomForkJoinPeriodUnderLatency(fj, pl, dp, bound)
			if err != nil {
				t.Fatal(err)
			}
			ref, refOK := exhaustive.ForkJoinPeriodUnderLatency(fj, pl, dp, bound)
			if ok != refOK {
				t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v", ok, refOK)
			}
			if ok && !numeric.Eq(res.Cost.Period, ref.Cost.Period) {
				t.Fatalf("trial %d: period %v != exhaustive %v (dp=%v bound=%v)",
					trial, res.Cost.Period, ref.Cost.Period, dp, bound)
			}
		}
	}
}

func TestForkJoinRejectsHetInputs(t *testing.T) {
	hetFJ := workflow.NewForkJoin(1, 1, 2, 3)
	homFJ := workflow.HomogeneousForkJoin(1, 1, 2, 3)
	if _, err := HomForkJoinLatency(hetFJ, platform.Homogeneous(2, 1), false); err != ErrNotHomogeneousFork {
		t.Errorf("het fork-join err = %v", err)
	}
	if _, err := HomForkJoinLatency(homFJ, platform.New(1, 2), false); err != ErrNotHomogeneousPlatform {
		t.Errorf("het platform err = %v", err)
	}
}
