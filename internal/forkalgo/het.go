package forkalgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// negInf is the capacity sentinel of the Theorem 14 dynamic program: an
// interval that cannot fit its mandatory stage (S0 or S_{n+1}) within the
// bounds poisons any partition using it, exactly as the paper's W(i,j)=-inf.
const negInf = math.MinInt32

// hetIntervals is the Theorem 14 W(i,j) dynamic program over one range of
// consecutive sorted processors. capOf(i,j) gives the leaf capacity of a
// single interval [i..j] (negInf when the interval cannot exist). The
// program maximizes the number of leaves handled by a partition of the
// whole range into intervals.
type hetIntervals struct {
	capOf func(i, j int) int
	size  int
	w     [][]int
	split [][]int
}

func newHetIntervals(size int, capOf func(i, j int) int) *hetIntervals {
	h := &hetIntervals{capOf: capOf, size: size}
	h.w = make([][]int, size)
	h.split = make([][]int, size)
	for i := range h.w {
		h.w[i] = make([]int, size)
		h.split[i] = make([]int, size)
	}
	for i := size - 1; i >= 0; i-- {
		for j := i; j < size; j++ {
			best := capOf(i, j)
			bestSplit := -1
			for k := i; k < j; k++ {
				l, r := h.w[i][k], h.w[k+1][j]
				if l == negInf || r == negInf {
					continue
				}
				if v := l + r; v > best {
					best = v
					bestSplit = k
				}
			}
			h.w[i][j] = best
			h.split[i][j] = bestSplit
		}
	}
	return h
}

// total returns the maximum number of leaves the whole range can process,
// or negInf if no valid partition exists.
func (h *hetIntervals) total() int {
	if h.size == 0 {
		return 0
	}
	return h.w[0][h.size-1]
}

// leaves returns the leaf intervals (first, last, cap) of an optimal
// partition of the whole range.
func (h *hetIntervals) leaves() []procInterval {
	var out []procInterval
	var collect func(i, j int)
	collect = func(i, j int) {
		if k := h.split[i][j]; k >= 0 {
			collect(i, k)
			collect(k+1, j)
			return
		}
		out = append(out, procInterval{first: i, last: j, cap: h.capOf(i, j)})
	}
	if h.size > 0 {
		collect(0, h.size-1)
	}
	return out
}

// procInterval mirrors the pipealgo type: a consecutive range of sorted
// processors with a leaf capacity.
type procInterval struct {
	first, last int
	cap         int
}

// hetForkConfig attempts the Theorem 14 feasibility check for fixed period
// bound K and latency bound L, a fixed number q of enrolled processors and
// a fixed index q0 (0-based, within the sorted q fastest) of the first
// processor of the interval in charge of S0. On success it returns a
// complete fork mapping.
func hetForkConfig(f workflow.Fork, pl platform.Platform, q, q0 int, K, L float64) (mapping.ForkMapping, bool) {
	n := f.Leaves()
	procs := pl.FastestK(q)
	s := make([]float64, q)
	for u, idx := range procs {
		s[u] = pl.Speeds[idx]
	}
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}
	s0 := s[q0]
	// Every non-root interval's leaves complete at w0/s0 + m*w/s_i <= L.
	L0 := L
	if !math.IsInf(L, 1) {
		L0 = L - f.Root/s0
	}
	if L0 < 0 {
		// Tolerate rounding noise when the bound exactly equals w0/s0.
		if !numeric.GreaterEq(L, f.Root/s0) {
			return mapping.ForkMapping{}, false
		}
		L0 = 0
	}

	// leafCap converts a work budget into a leaf count, clamped to [0, n].
	leafCap := func(budget float64) int {
		if n == 0 {
			return 0
		}
		if math.IsInf(budget, 1) {
			return n
		}
		c := numeric.FloorDiv(budget, w)
		if c < 0 {
			c = 0
		}
		if c > n {
			c = n
		}
		return c
	}
	normalCap := func(i, j int) int {
		cK := leafCap(K * s[i] * float64(j-i+1))
		cL := leafCap(L0 * s[i])
		if cK < cL {
			return cK
		}
		return cL
	}
	rootCap := func(i, j int) int {
		// The root interval must at least fit S0 within both bounds.
		if numeric.Greater(f.Root/(float64(j-i+1)*s[i]), K) || numeric.Greater(f.Root/s[i], L) {
			return negInf
		}
		cK := leafCap(K*s[i]*float64(j-i+1) - f.Root)
		cL := leafCap(L*s[i] - f.Root)
		if cK < cL {
			return cK
		}
		return cL
	}

	// Range [0 .. q0-1]: normal intervals only.
	pre := newHetIntervals(q0, func(i, j int) int { return normalCap(i, j) })
	// Range [q0 .. q-1]: the interval starting at q0 carries S0.
	post := newHetIntervals(q-q0, func(i, j int) int {
		if i == 0 {
			return rootCap(q0+i, q0+j)
		}
		return normalCap(q0+i, q0+j)
	})
	if post.total() == negInf {
		return mapping.ForkMapping{}, false
	}
	if pre.total()+post.total() < n {
		return mapping.ForkMapping{}, false
	}

	// Assemble the mapping: distribute the n leaves over the intervals,
	// never exceeding a capacity. The root interval is the first leaf of
	// the post range.
	type piece struct {
		iv   procInterval
		root bool
	}
	var pieces []piece
	for _, iv := range pre.leaves() {
		pieces = append(pieces, piece{iv: iv})
	}
	for idx, iv := range post.leaves() {
		iv.first += q0
		iv.last += q0
		pieces = append(pieces, piece{iv: iv, root: idx == 0})
	}
	remaining := n
	nextLeaf := 0
	var m mapping.ForkMapping
	for _, pc := range pieces {
		take := pc.iv.cap
		if take > remaining {
			take = remaining
		}
		if take == 0 && !pc.root {
			continue // idle processors
		}
		set := make([]int, 0, pc.iv.last-pc.iv.first+1)
		for u := pc.iv.first; u <= pc.iv.last; u++ {
			set = append(set, procs[u])
		}
		m.Blocks = append(m.Blocks, mapping.NewForkBlock(pc.root, leafRange(nextLeaf, take), mapping.Replicated, set...))
		nextLeaf += take
		remaining -= take
	}
	if remaining != 0 {
		panic("forkalgo: Theorem 14 reconstruction dropped leaves")
	}
	return m, true
}

// hetForkFeasible scans q and q0 as prescribed by Lemma 4 and returns any
// mapping meeting both bounds.
func hetForkFeasible(f workflow.Fork, pl platform.Platform, K, L float64) (mapping.ForkMapping, bool) {
	for q := 1; q <= pl.Processors(); q++ {
		for q0 := 0; q0 < q; q0++ {
			if m, ok := hetForkConfig(f, pl, q, q0, K, L); ok {
				return m, true
			}
		}
	}
	return mapping.ForkMapping{}, false
}

func checkHetHomFork(f workflow.Fork, pl platform.Platform) error {
	if err := f.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if !f.IsHomogeneous() {
		return ErrNotHomogeneousFork
	}
	return nil
}

// hetForkPeriodCandidates lists the finite set of values the bottleneck
// block period can take: (w0 + m*w)/(k*s) for the root block and
// m*w/(k*s) for leaf blocks.
func hetForkPeriodCandidates(f workflow.Fork, pl platform.Platform) []float64 {
	n, p := f.Leaves(), pl.Processors()
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}
	var cands []float64
	for _, s := range pl.Speeds {
		for k := 1; k <= p; k++ {
			for m := 0; m <= n; m++ {
				cands = append(cands, (f.Root+float64(m)*w)/(float64(k)*s))
				if m > 0 {
					cands = append(cands, float64(m)*w/(float64(k)*s))
				}
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// hetForkLatencyCandidates lists the finite set of values the latency can
// take: (w0 + m*w)/s' for root-block completion and w0/s' + m*w/s” for the
// other blocks.
func hetForkLatencyCandidates(f workflow.Fork, pl platform.Platform) []float64 {
	n := f.Leaves()
	w := 0.0
	if n > 0 {
		w = f.Weights[0]
	}
	var cands []float64
	for _, s1 := range pl.Speeds {
		for m := 0; m <= n; m++ {
			cands = append(cands, (f.Root+float64(m)*w)/s1)
			for _, s2 := range pl.Speeds {
				if m > 0 {
					cands = append(cands, f.Root/s1+float64(m)*w/s2)
				}
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// HetHomForkPeriodNoDP implements the period direction of Theorem 14: the
// optimal period of a homogeneous fork on a Heterogeneous platform without
// data-parallelism.
func HetHomForkPeriodNoDP(f workflow.Fork, pl platform.Platform) (Result, error) {
	res, ok, err := HetHomForkPeriodUnderLatencyNoDP(f, pl, numeric.Inf)
	if err != nil {
		return Result{}, err
	}
	if !ok {
		panic("forkalgo: unconstrained Theorem 14 period search failed")
	}
	return res, nil
}

// HetHomForkLatencyNoDP implements the latency direction of Theorem 14.
func HetHomForkLatencyNoDP(f workflow.Fork, pl platform.Platform) (Result, error) {
	res, ok, err := HetHomForkLatencyUnderPeriodNoDP(f, pl, numeric.Inf)
	if err != nil {
		return Result{}, err
	}
	if !ok {
		panic("forkalgo: unconstrained Theorem 14 latency search failed")
	}
	return res, nil
}

// HetHomForkLatencyUnderPeriodNoDP minimizes the latency of a homogeneous
// fork on a Heterogeneous platform without data-parallelism, subject to a
// period bound, by binary search over the finite latency candidate set.
func HetHomForkLatencyUnderPeriodNoDP(f workflow.Fork, pl platform.Platform, maxPeriod float64) (Result, bool, error) {
	if err := checkHetHomFork(f, pl); err != nil {
		return Result{}, false, err
	}
	cands := hetForkLatencyCandidates(f, pl)
	lo, hi := 0, len(cands)-1
	var best mapping.ForkMapping
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		if m, ok := hetForkFeasible(f, pl, maxPeriod, cands[mid]); ok {
			best = m
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return Result{}, false, nil
	}
	return finishFork(f, pl, best), true, nil
}

// HetHomForkPeriodUnderLatencyNoDP minimizes the period of a homogeneous
// fork on a Heterogeneous platform without data-parallelism, subject to a
// latency bound, by binary search over the finite period candidate set.
func HetHomForkPeriodUnderLatencyNoDP(f workflow.Fork, pl platform.Platform, maxLatency float64) (Result, bool, error) {
	if err := checkHetHomFork(f, pl); err != nil {
		return Result{}, false, err
	}
	cands := hetForkPeriodCandidates(f, pl)
	lo, hi := 0, len(cands)-1
	var best mapping.ForkMapping
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		if m, ok := hetForkFeasible(f, pl, cands[mid], maxLatency); ok {
			best = m
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return Result{}, false, nil
	}
	return finishFork(f, pl, best), true, nil
}
