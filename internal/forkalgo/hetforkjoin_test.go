package forkalgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestHetForkJoinPeriodMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(3), 5)
		res, err := HetHomForkJoinPeriodNoDP(fj, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkJoinPeriod(fj, pl, false)
		if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
			t.Fatalf("trial %d: period %v != exhaustive %v (w0=%v n=%d w=%v wj=%v speeds=%v)\nalg: %v\nopt: %v",
				trial, res.Cost.Period, opt.Cost.Period, fj.Root, n, fj.Weights, fj.Join, pl.Speeds,
				res.Mapping, opt.Mapping)
		}
	}
}

func TestHetForkJoinLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(3), 5)
		res, err := HetHomForkJoinLatencyNoDP(fj, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkJoinLatency(fj, pl, false)
		if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
			t.Fatalf("trial %d: latency %v != exhaustive %v (w0=%v n=%d w=%v wj=%v speeds=%v)\nalg: %v\nopt: %v",
				trial, res.Cost.Latency, opt.Cost.Latency, fj.Root, n, fj.Weights, fj.Join, pl.Speeds,
				res.Mapping, opt.Mapping)
		}
	}
}

func TestHetForkJoinBiCriteriaMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 10; trial++ {
		n := rng.Intn(3)
		fj := workflow.HomogeneousForkJoin(float64(1+rng.Intn(9)), float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(3), 5)
		optP, _ := exhaustive.ForkJoinPeriod(fj, pl, false)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		res, ok, err := HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.ForkJoinLatencyUnderPeriod(fj, pl, false, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v (bound=%v)", ok, refOK, bound)
		}
		if ok && !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
			t.Fatalf("trial %d: latency %v != exhaustive %v (bound=%v w0=%v n=%d wj=%v speeds=%v)",
				trial, res.Cost.Latency, ref.Cost.Latency, bound, fj.Root, n, fj.Join, pl.Speeds)
		}
		if ok && numeric.Greater(res.Cost.Period, bound) {
			t.Fatalf("period bound violated: %v > %v", res.Cost.Period, bound)
		}
	}
}

func TestHetForkJoinInfeasibleBounds(t *testing.T) {
	fj := workflow.HomogeneousForkJoin(3, 2, 2, 4)
	pl := platform.New(2, 1)
	if _, ok, err := HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, 0.1); err != nil || ok {
		t.Fatalf("tight period bound: ok=%v err=%v", ok, err)
	}
	if _, ok, err := HetHomForkJoinPeriodUnderLatencyNoDP(fj, pl, 0.1); err != nil || ok {
		t.Fatalf("tight latency bound: ok=%v err=%v", ok, err)
	}
}

func TestHetForkJoinRejectsHetLeaves(t *testing.T) {
	fj := workflow.NewForkJoin(1, 1, 2, 3)
	if _, err := HetHomForkJoinPeriodNoDP(fj, platform.New(1, 2)); err != ErrNotHomogeneousFork {
		t.Errorf("err = %v, want ErrNotHomogeneousFork", err)
	}
}
