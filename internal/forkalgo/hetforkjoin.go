package forkalgo

import (
	"math"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// hetForkJoinConfig attempts the Section 6.3 extension of the Theorem 14
// feasibility check for a homogeneous fork-join on a Heterogeneous platform
// without data-parallelism: fixed bounds (K, L), q enrolled processors,
// q0 the first processor of the root interval and jq the first processor of
// the join interval (jq == q0 places S_{n+1} with S0, the case the paper
// singles out).
func hetForkJoinConfig(fj workflow.ForkJoin, pl platform.Platform, q, q0, jq int, K, L float64) (mapping.ForkJoinMapping, bool) {
	n := fj.Leaves()
	procs := pl.FastestK(q)
	s := make([]float64, q)
	for u, idx := range procs {
		s[u] = pl.Speeds[idx]
	}
	w := 0.0
	if n > 0 {
		w = fj.Weights[0]
	}
	s0 := s[q0]
	sJoin := s[jq]
	rootDone := fj.Root / s0

	// Every leaf must complete by leafDeadline = L - wjoin/sJoin so that the
	// join stage finishes by L.
	leafDeadline := L
	if !math.IsInf(L, 1) {
		leafDeadline = L - fj.Join/sJoin
	}
	// Non-root intervals start their leaves at rootDone.
	othersBudget := leafDeadline
	if !math.IsInf(leafDeadline, 1) {
		othersBudget = leafDeadline - rootDone
	}
	if othersBudget < 0 {
		// Tolerate rounding noise when the deadline exactly equals the root
		// completion time.
		if !numeric.GreaterEq(leafDeadline, rootDone) {
			return mapping.ForkJoinMapping{}, false
		}
		othersBudget = 0
	}

	leafCap := func(budget float64) int {
		if n == 0 {
			return 0
		}
		if math.IsInf(budget, 1) {
			return n
		}
		c := numeric.FloorDiv(budget, w)
		if c < 0 {
			c = 0
		}
		if c > n {
			c = n
		}
		return c
	}
	normalCap := func(i, j int) int {
		cK := leafCap(K * s[i] * float64(j-i+1))
		cL := leafCap(othersBudget * s[i])
		if cK < cL {
			return cK
		}
		return cL
	}
	rootCap := func(i, j int) int {
		base := fj.Root
		if jq == q0 {
			base += fj.Join
		}
		// Period: (w0 [+ wjoin] + m*w) / (count * s_i) <= K.
		if numeric.Greater(base/(float64(j-i+1)*s[i]), K) {
			return negInf
		}
		// Root-block leaves complete at (w0 + m*w)/s_i <= leafDeadline.
		if numeric.Greater(fj.Root/s[i], leafDeadline) {
			return negInf
		}
		cK := leafCap(K*s[i]*float64(j-i+1) - base)
		cL := leafCap(leafDeadline*s[i] - fj.Root)
		if cK < cL {
			return cK
		}
		return cL
	}
	joinCap := func(i, j int) int {
		// Period: (m*w + wjoin)/(count * s_i) <= K; the join interval's own
		// leaves complete at rootDone + m*w/s_i <= leafDeadline.
		if numeric.Greater(fj.Join/(float64(j-i+1)*s[i]), K) {
			return negInf
		}
		cK := leafCap(K*s[i]*float64(j-i+1) - fj.Join)
		cL := leafCap(othersBudget * s[i])
		if cK < cL {
			return cK
		}
		return cL
	}

	// Split the sorted processor range at the special positions.
	type segment struct {
		from, to int // inclusive range in sorted index space
		kind     int // 0 normal, 1 root, 2 join (the segment's first interval)
	}
	var segs []segment
	if jq == q0 {
		segs = []segment{{0, q0 - 1, 0}, {q0, q - 1, 1}}
	} else {
		a, b := q0, jq
		ka, kb := 1, 2
		if a > b {
			a, b = b, a
			ka, kb = 2, 1
		}
		segs = []segment{{0, a - 1, 0}, {a, b - 1, ka}, {b, q - 1, kb}}
	}

	total := 0
	type segPlan struct {
		seg    segment
		leaves []procInterval
	}
	var plans []segPlan
	for _, sg := range segs {
		size := sg.to - sg.from + 1
		if size <= 0 {
			if sg.kind != 0 {
				return mapping.ForkJoinMapping{}, false // special interval has no processors
			}
			continue
		}
		from := sg.from
		kind := sg.kind
		h := newHetIntervals(size, func(i, j int) int {
			if i == 0 && kind == 1 {
				return rootCap(from+i, from+j)
			}
			if i == 0 && kind == 2 {
				return joinCap(from+i, from+j)
			}
			return normalCap(from+i, from+j)
		})
		if h.total() == negInf {
			return mapping.ForkJoinMapping{}, false
		}
		total += h.total()
		leaves := h.leaves()
		for idx := range leaves {
			leaves[idx].first += from
			leaves[idx].last += from
		}
		plans = append(plans, segPlan{seg: sg, leaves: leaves})
	}
	if total < n {
		return mapping.ForkJoinMapping{}, false
	}

	// Assemble the mapping.
	remaining := n
	nextLeaf := 0
	var m mapping.ForkJoinMapping
	for _, pp := range plans {
		for idx, iv := range pp.leaves {
			isRoot := pp.seg.kind == 1 && idx == 0
			isJoin := (pp.seg.kind == 2 && idx == 0) || (isRoot && jq == q0)
			take := iv.cap
			if take > remaining {
				take = remaining
			}
			if take == 0 && !isRoot && !isJoin {
				continue
			}
			set := make([]int, 0, iv.last-iv.first+1)
			for u := iv.first; u <= iv.last; u++ {
				set = append(set, procs[u])
			}
			m.Blocks = append(m.Blocks,
				mapping.NewForkJoinBlock(isRoot, isJoin, leafRange(nextLeaf, take), mapping.Replicated, set...))
			nextLeaf += take
			remaining -= take
		}
	}
	if remaining != 0 {
		panic("forkalgo: fork-join Theorem 14 reconstruction dropped leaves")
	}
	return m, true
}

// hetForkJoinFeasible scans q, q0 and jq.
func hetForkJoinFeasible(fj workflow.ForkJoin, pl platform.Platform, K, L float64) (mapping.ForkJoinMapping, bool) {
	for q := 1; q <= pl.Processors(); q++ {
		for q0 := 0; q0 < q; q0++ {
			for jq := 0; jq < q; jq++ {
				if m, ok := hetForkJoinConfig(fj, pl, q, q0, jq, K, L); ok {
					return m, true
				}
			}
		}
	}
	return mapping.ForkJoinMapping{}, false
}

func checkHetHomForkJoin(fj workflow.ForkJoin, pl platform.Platform) error {
	if err := fj.Validate(); err != nil {
		return err
	}
	if err := pl.Validate(); err != nil {
		return err
	}
	if !fj.IsHomogeneous() {
		return ErrNotHomogeneousFork
	}
	return nil
}

// hetForkJoinPeriodCandidates lists the finite set of block period values.
func hetForkJoinPeriodCandidates(fj workflow.ForkJoin, pl platform.Platform) []float64 {
	n, p := fj.Leaves(), pl.Processors()
	w := 0.0
	if n > 0 {
		w = fj.Weights[0]
	}
	var cands []float64
	for _, s := range pl.Speeds {
		for k := 1; k <= p; k++ {
			for m := 0; m <= n; m++ {
				base := float64(m) * w
				cands = append(cands,
					(fj.Root+base)/(float64(k)*s),
					(base+fj.Join)/(float64(k)*s),
					(fj.Root+base+fj.Join)/(float64(k)*s))
				if m > 0 {
					cands = append(cands, base/(float64(k)*s))
				}
			}
		}
	}
	return numeric.DedupSorted(cands)
}

// hetForkJoinLatencyCandidates lists the finite set of latency values:
// leaf-completion times plus a join delay wjoin/s”' over all speed
// combinations.
func hetForkJoinLatencyCandidates(fj workflow.ForkJoin, pl platform.Platform) []float64 {
	n := fj.Leaves()
	w := 0.0
	if n > 0 {
		w = fj.Weights[0]
	}
	var leafDone []float64
	for _, s1 := range pl.Speeds {
		for m := 0; m <= n; m++ {
			leafDone = append(leafDone, (fj.Root+float64(m)*w)/s1)
			if m > 0 {
				for _, s2 := range pl.Speeds {
					leafDone = append(leafDone, fj.Root/s1+float64(m)*w/s2)
				}
			}
		}
	}
	var cands []float64
	for _, ld := range leafDone {
		for _, s3 := range pl.Speeds {
			cands = append(cands, ld+fj.Join/s3)
		}
	}
	return numeric.DedupSorted(cands)
}

// HetHomForkJoinPeriodNoDP extends the period direction of Theorem 14 to
// homogeneous fork-join graphs (Section 6.3).
func HetHomForkJoinPeriodNoDP(fj workflow.ForkJoin, pl platform.Platform) (ForkJoinResult, error) {
	res, ok, err := HetHomForkJoinPeriodUnderLatencyNoDP(fj, pl, numeric.Inf)
	if err != nil {
		return ForkJoinResult{}, err
	}
	if !ok {
		panic("forkalgo: unconstrained fork-join period search failed")
	}
	return res, nil
}

// HetHomForkJoinLatencyNoDP extends the latency direction of Theorem 14 to
// homogeneous fork-join graphs.
func HetHomForkJoinLatencyNoDP(fj workflow.ForkJoin, pl platform.Platform) (ForkJoinResult, error) {
	res, ok, err := HetHomForkJoinLatencyUnderPeriodNoDP(fj, pl, numeric.Inf)
	if err != nil {
		return ForkJoinResult{}, err
	}
	if !ok {
		panic("forkalgo: unconstrained fork-join latency search failed")
	}
	return res, nil
}

// HetHomForkJoinLatencyUnderPeriodNoDP minimizes latency under a period
// bound for a homogeneous fork-join on a Heterogeneous platform.
func HetHomForkJoinLatencyUnderPeriodNoDP(fj workflow.ForkJoin, pl platform.Platform, maxPeriod float64) (ForkJoinResult, bool, error) {
	if err := checkHetHomForkJoin(fj, pl); err != nil {
		return ForkJoinResult{}, false, err
	}
	cands := hetForkJoinLatencyCandidates(fj, pl)
	lo, hi := 0, len(cands)-1
	var best mapping.ForkJoinMapping
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		if m, ok := hetForkJoinFeasible(fj, pl, maxPeriod, cands[mid]); ok {
			best = m
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return ForkJoinResult{}, false, nil
	}
	return finishForkJoin(fj, pl, best), true, nil
}

// HetHomForkJoinPeriodUnderLatencyNoDP minimizes the period under a latency
// bound for a homogeneous fork-join on a Heterogeneous platform.
func HetHomForkJoinPeriodUnderLatencyNoDP(fj workflow.ForkJoin, pl platform.Platform, maxLatency float64) (ForkJoinResult, bool, error) {
	if err := checkHetHomForkJoin(fj, pl); err != nil {
		return ForkJoinResult{}, false, err
	}
	cands := hetForkJoinPeriodCandidates(fj, pl)
	lo, hi := 0, len(cands)-1
	var best mapping.ForkJoinMapping
	found := false
	for lo <= hi {
		mid := (lo + hi) / 2
		if m, ok := hetForkJoinFeasible(fj, pl, cands[mid], maxLatency); ok {
			best = m
			found = true
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if !found {
		return ForkJoinResult{}, false, nil
	}
	return finishForkJoin(fj, pl, best), true, nil
}
