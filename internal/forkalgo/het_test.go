package forkalgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestTheorem14PeriodMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(4)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		res, err := HetHomForkPeriodNoDP(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkPeriod(f, pl, false)
		if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
			t.Fatalf("trial %d: Theorem 14 period %v != exhaustive %v (w0=%v n=%d w=%v speeds=%v)\nalg: %v\nopt: %v",
				trial, res.Cost.Period, opt.Cost.Period, f.Root, n, f.Weights, pl.Speeds, res.Mapping, opt.Mapping)
		}
	}
}

func TestTheorem14LatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(4)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		res, err := HetHomForkLatencyNoDP(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		opt, ok := exhaustive.ForkLatency(f, pl, false)
		if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
			t.Fatalf("trial %d: Theorem 14 latency %v != exhaustive %v (w0=%v n=%d w=%v speeds=%v)\nalg: %v\nopt: %v",
				trial, res.Cost.Latency, opt.Cost.Latency, f.Root, n, f.Weights, pl.Speeds, res.Mapping, opt.Mapping)
		}
	}
}

func TestTheorem14BiCriteriaMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Random(rng, 1+rng.Intn(4), 5)
		optP, _ := exhaustive.ForkPeriod(f, pl, false)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		res, ok, err := HetHomForkLatencyUnderPeriodNoDP(f, pl, bound)
		if err != nil {
			t.Fatal(err)
		}
		ref, refOK := exhaustive.ForkLatencyUnderPeriod(f, pl, false, bound)
		if ok != refOK {
			t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v (bound=%v)", ok, refOK, bound)
		}
		if ok && !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
			t.Fatalf("trial %d: latency %v != exhaustive %v (bound=%v w0=%v n=%d speeds=%v)",
				trial, res.Cost.Latency, ref.Cost.Latency, bound, f.Root, n, pl.Speeds)
		}
		if ok && numeric.Greater(res.Cost.Period, bound) {
			t.Fatalf("period bound violated: %v > %v", res.Cost.Period, bound)
		}

		optL, _ := exhaustive.ForkLatency(f, pl, false)
		lbound := optL.Cost.Latency * (1 + rng.Float64()*2)
		res2, ok2, err := HetHomForkPeriodUnderLatencyNoDP(f, pl, lbound)
		if err != nil {
			t.Fatal(err)
		}
		ref2, refOK2 := exhaustive.ForkPeriodUnderLatency(f, pl, false, lbound)
		if ok2 != refOK2 {
			t.Fatalf("converse feasibility mismatch: alg=%v exhaustive=%v", ok2, refOK2)
		}
		if ok2 && !numeric.Eq(res2.Cost.Period, ref2.Cost.Period) {
			t.Fatalf("trial %d: period %v != exhaustive %v (lbound=%v)",
				trial, res2.Cost.Period, ref2.Cost.Period, lbound)
		}
	}
}

func TestTheorem14InfeasibleBounds(t *testing.T) {
	f := workflow.HomogeneousFork(4, 2, 3)
	pl := platform.New(2, 1)
	if _, ok, err := HetHomForkLatencyUnderPeriodNoDP(f, pl, 0.1); err != nil || ok {
		t.Fatalf("tight period bound: ok=%v err=%v", ok, err)
	}
	if _, ok, err := HetHomForkPeriodUnderLatencyNoDP(f, pl, 0.1); err != nil || ok {
		t.Fatalf("tight latency bound: ok=%v err=%v", ok, err)
	}
}

func TestTheorem14RejectsHetFork(t *testing.T) {
	f := workflow.NewFork(1, 2, 3)
	if _, err := HetHomForkPeriodNoDP(f, platform.New(1, 2)); err != ErrNotHomogeneousFork {
		t.Errorf("err = %v, want ErrNotHomogeneousFork", err)
	}
	if _, err := HetHomForkLatencyNoDP(f, platform.New(1, 2)); err != ErrNotHomogeneousFork {
		t.Errorf("err = %v, want ErrNotHomogeneousFork", err)
	}
}

func TestTheorem14LeaflessFork(t *testing.T) {
	f := workflow.NewFork(6)
	pl := platform.New(1, 3)
	res, err := HetHomForkLatencyNoDP(f, pl)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Latency, 2) { // 6/3 on the fast processor
		t.Errorf("latency = %v, want 2 (mapping %v)", res.Cost.Latency, res.Mapping)
	}
	resP, err := HetHomForkPeriodNoDP(f, pl)
	if err != nil {
		t.Fatal(err)
	}
	// Replicating S0 on both processors: 6/(2*1) = 3 vs fast alone 2.
	if !numeric.Eq(resP.Cost.Period, 2) {
		t.Errorf("period = %v, want 2 (mapping %v)", resP.Cost.Period, resP.Mapping)
	}
}
