package forkalgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestPaperRecurrenceMatchesProductionTheorem11(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 80; trial++ {
		n := rng.Intn(6)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(5), float64(1+rng.Intn(3)))
		paper, err := HomForkLatencyPaperRecurrence(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		prod, err := HomForkLatency(f, pl, false)
		if err != nil {
			t.Fatal(err)
		}
		if !numeric.Eq(paper, prod.Cost.Latency) {
			t.Fatalf("trial %d: paper recurrence %v != production %v (w0=%v n=%d w=%v p=%d s=%v)",
				trial, paper, prod.Cost.Latency, f.Root, n, f.Weights, pl.Processors(), pl.Speeds[0])
		}
	}
}

func TestPaperRecurrenceRejectsHetInputs(t *testing.T) {
	if _, err := HomForkLatencyPaperRecurrence(workflow.NewFork(1, 2, 3), platform.Homogeneous(2, 1)); err != ErrNotHomogeneousFork {
		t.Errorf("het fork err = %v", err)
	}
	if _, err := HomForkLatencyPaperRecurrence(workflow.HomogeneousFork(1, 2, 3), platform.New(1, 2)); err != ErrNotHomogeneousPlatform {
		t.Errorf("het platform err = %v", err)
	}
}
