package forkalgo

import (
	"math/rand"
	"testing"

	"repliflow/internal/exhaustive"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

func TestTheorem10LowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		f := workflow.RandomFork(rng, rng.Intn(6), 9)
		pl := platform.Homogeneous(1+rng.Intn(5), float64(1+rng.Intn(3)))
		res, err := HomForkPeriod(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		want := f.TotalWork() / pl.TotalSpeed()
		if !numeric.Eq(res.Cost.Period, want) {
			t.Fatalf("period = %v, want %v", res.Cost.Period, want)
		}
	}
}

func TestTheorem10MatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		f := workflow.RandomFork(rng, 1+rng.Intn(3), 9)
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		res, err := HomForkPeriod(f, pl)
		if err != nil {
			t.Fatal(err)
		}
		for _, dp := range []bool{false, true} {
			opt, ok := exhaustive.ForkPeriod(f, pl, dp)
			if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
				t.Fatalf("Theorem 10 period %v != exhaustive %v (dp=%v)", res.Cost.Period, opt.Cost.Period, dp)
			}
		}
	}
}

func TestTheorem10ForkJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		fj := workflow.RandomForkJoin(rng, 1+rng.Intn(2), 6)
		pl := platform.Homogeneous(1+rng.Intn(3), float64(1+rng.Intn(2)))
		res, err := HomForkJoinPeriod(fj, pl)
		if err != nil {
			t.Fatal(err)
		}
		want := fj.TotalWork() / pl.TotalSpeed()
		if !numeric.Eq(res.Cost.Period, want) {
			t.Fatalf("period = %v, want %v", res.Cost.Period, want)
		}
		opt, ok := exhaustive.ForkJoinPeriod(fj, pl, true)
		if !ok || !numeric.Eq(res.Cost.Period, opt.Cost.Period) {
			t.Fatalf("fork-join period %v != exhaustive %v", res.Cost.Period, opt.Cost.Period)
		}
	}
}

func TestTheorem11LatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(4)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(2)))
		for _, dp := range []bool{false, true} {
			res, err := HomForkLatency(f, pl, dp)
			if err != nil {
				t.Fatal(err)
			}
			opt, ok := exhaustive.ForkLatency(f, pl, dp)
			if !ok || !numeric.Eq(res.Cost.Latency, opt.Cost.Latency) {
				t.Fatalf("trial %d: Theorem 11 latency %v != exhaustive %v (dp=%v, w0=%v n=%d w=%v p=%d s=%v)\nalg: %v\nopt: %v",
					trial, res.Cost.Latency, opt.Cost.Latency, dp, f.Root, n,
					f.Weights, pl.Processors(), pl.Speeds[0], res.Mapping, opt.Mapping)
			}
		}
	}
}

func TestTheorem11LatencyUnderPeriodMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := rng.Intn(4)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(2)))
		optP, _ := exhaustive.ForkPeriod(f, pl, false)
		bound := optP.Cost.Period * (1 + rng.Float64()*2)
		for _, dp := range []bool{false, true} {
			res, ok, err := HomForkLatencyUnderPeriod(f, pl, dp, bound)
			if err != nil {
				t.Fatal(err)
			}
			ref, refOK := exhaustive.ForkLatencyUnderPeriod(f, pl, dp, bound)
			if ok != refOK {
				t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v (bound=%v dp=%v)", ok, refOK, bound, dp)
			}
			if !ok {
				continue
			}
			if !numeric.Eq(res.Cost.Latency, ref.Cost.Latency) {
				t.Fatalf("trial %d: latency %v != exhaustive %v (dp=%v bound=%v w0=%v n=%d p=%d)\nalg: %v\nopt: %v",
					trial, res.Cost.Latency, ref.Cost.Latency, dp, bound, f.Root, n, pl.Processors(), res.Mapping, ref.Mapping)
			}
			if numeric.Greater(res.Cost.Period, bound) {
				t.Fatalf("period bound violated: %v > %v", res.Cost.Period, bound)
			}
		}
	}
}

func TestTheorem11PeriodUnderLatencyMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := rng.Intn(3)
		f := workflow.HomogeneousFork(float64(1+rng.Intn(9)), n, float64(1+rng.Intn(9)))
		pl := platform.Homogeneous(1+rng.Intn(4), float64(1+rng.Intn(2)))
		optL, _ := exhaustive.ForkLatency(f, pl, false)
		bound := optL.Cost.Latency * (1 + rng.Float64()*2)
		for _, dp := range []bool{false, true} {
			res, ok, err := HomForkPeriodUnderLatency(f, pl, dp, bound)
			if err != nil {
				t.Fatal(err)
			}
			ref, refOK := exhaustive.ForkPeriodUnderLatency(f, pl, dp, bound)
			if ok != refOK {
				t.Fatalf("feasibility mismatch: alg=%v exhaustive=%v", ok, refOK)
			}
			if ok && !numeric.Eq(res.Cost.Period, ref.Cost.Period) {
				t.Fatalf("trial %d: period %v != exhaustive %v (dp=%v bound=%v)",
					trial, res.Cost.Period, ref.Cost.Period, dp, bound)
			}
			if ok && numeric.Greater(res.Cost.Latency, bound) {
				t.Fatalf("latency bound violated: %v > %v", res.Cost.Latency, bound)
			}
		}
	}
}

func TestTheorem11RejectsHetInputs(t *testing.T) {
	hetFork := workflow.NewFork(1, 2, 3)
	homFork := workflow.HomogeneousFork(1, 2, 3)
	if _, err := HomForkLatency(hetFork, platform.Homogeneous(2, 1), false); err != ErrNotHomogeneousFork {
		t.Errorf("het fork err = %v", err)
	}
	if _, err := HomForkLatency(homFork, platform.New(1, 2), false); err != ErrNotHomogeneousPlatform {
		t.Errorf("het platform err = %v", err)
	}
	if _, err := HomForkPeriod(homFork, platform.New(1, 2)); err != ErrNotHomogeneousPlatform {
		t.Errorf("Theorem 10 het platform err = %v", err)
	}
}

func TestTheorem11LeaflessFork(t *testing.T) {
	f := workflow.NewFork(6)
	pl := platform.Homogeneous(3, 2)
	res, err := HomForkLatency(f, pl, true)
	if err != nil {
		t.Fatal(err)
	}
	// S0 alone data-parallelized on all three processors: 6/(3*2) = 1.
	if !numeric.Eq(res.Cost.Latency, 1) {
		t.Errorf("latency = %v, want 1", res.Cost.Latency)
	}
	res, err = HomForkLatency(f, pl, false)
	if err != nil {
		t.Fatal(err)
	}
	if !numeric.Eq(res.Cost.Latency, 3) { // 6/2 on one processor
		t.Errorf("latency without DP = %v, want 3", res.Cost.Latency)
	}
}
