// Package incumbent holds the best-so-far state shared by concurrent
// searches. Two primitives live here so the anytime portfolio and the
// partitioned exhaustive searches use one implementation:
//
//   - Best, a mutex-guarded incumbent mapping with the offer/adopt
//     protocol of the portfolio members (strict improvement installs,
//     exact results replace ties), and
//   - Bound, a lock-free monotonically tightening objective bound that
//     the shards of a partitioned exhaustive scan share, so a better
//     incumbent found in one shard prunes every other shard immediately.
//     Its users are the partitioned pipeline/fork scans of
//     internal/exhaustive, the sharded SP block search of
//     internal/spdecomp, and the chunk-claimed comm-pipeline interval
//     scan of internal/fullmodel.
package incumbent

import (
	"math"
	"sync"
	"sync/atomic"

	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
)

// Spec is the view of a search specification the incumbent needs:
// projecting a cost onto the optimized objective and deciding bound
// feasibility. anytime.Spec satisfies it.
type Spec interface {
	Objective(mapping.Cost) float64
	Feasible(mapping.Cost) bool
}

// Best is the best-so-far mapping shared by every member of a search.
// The zero value is ready to use (no incumbent yet).
type Best[M any] struct {
	mu    sync.Mutex
	m     M
	c     mapping.Cost
	found bool
}

// Offer installs a feasible candidate iff it strictly improves the
// incumbent's objective, reporting whether it did. The caller must not
// mutate m afterwards.
func (in *Best[M]) Offer(spec Spec, m M, c mapping.Cost) bool {
	if !spec.Feasible(c) {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.found && !numeric.Less(spec.Objective(c), spec.Objective(in.c)) {
		return false
	}
	in.m, in.c, in.found = m, c, true
	return true
}

// Adopt installs an exact optimum unconditionally-on-tie: exact results
// replace equal-cost incumbents so certified runs return the exact
// member's mapping.
func (in *Best[M]) Adopt(spec Spec, m M, c mapping.Cost) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.found && numeric.Less(spec.Objective(in.c), spec.Objective(c)) {
		return
	}
	in.m, in.c, in.found = m, c, true
}

// Snapshot returns the current incumbent, its cost, and whether one
// exists.
func (in *Best[M]) Snapshot() (M, mapping.Cost, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.m, in.c, in.found
}

// Bound is a shared upper bound on the objective, tightened lock-free as
// searchers find better incumbents. It only ever decreases, so a reader
// may prune any candidate strictly worse than Load() — the candidate can
// never beat the incumbent that produced the bound. Equal-or-better
// candidates must survive: deterministic merges resolve ties by a fixed
// order, and the bound must not pre-empt that.
type Bound struct {
	bits atomic.Uint64
}

// NewBound returns a bound initialized to +Inf (nothing pruned).
func NewBound() *Bound {
	b := &Bound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current bound.
func (b *Bound) Load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// Tighten lowers the bound to v if v is smaller. Comparisons are exact
// (no numeric tolerance): the bound is conservative, pruning decisions
// apply the tolerance on the read side.
func (b *Bound) Tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}
