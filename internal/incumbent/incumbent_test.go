package incumbent

import (
	"math"
	"sync"
	"testing"

	"repliflow/internal/mapping"
)

// minSpec optimizes the period with no feasibility constraint beyond a
// period cap.
type minSpec struct{ cap float64 }

func (s minSpec) Objective(c mapping.Cost) float64 { return c.Period }
func (s minSpec) Feasible(c mapping.Cost) bool     { return c.Period <= s.cap }

func cost(p float64) mapping.Cost { return mapping.Cost{Period: p, Latency: p} }

func TestBestOfferAdoptSnapshot(t *testing.T) {
	var b Best[string]
	spec := minSpec{cap: 10}

	if _, _, found := b.Snapshot(); found {
		t.Fatal("zero Best reports an incumbent")
	}
	if b.Offer(spec, "infeasible", cost(11)) {
		t.Fatal("Offer installed an infeasible candidate")
	}
	if !b.Offer(spec, "first", cost(5)) {
		t.Fatal("Offer rejected the first feasible candidate")
	}
	if b.Offer(spec, "tie", cost(5)) {
		t.Fatal("Offer replaced an equal-cost incumbent; ties must keep the holder")
	}
	if b.Offer(spec, "worse", cost(7)) {
		t.Fatal("Offer installed a strictly worse candidate")
	}
	if !b.Offer(spec, "better", cost(3)) {
		t.Fatal("Offer rejected a strict improvement")
	}

	// Adopt replaces ties (the exact member's mapping wins a certified
	// run) but never a strictly better incumbent.
	b.Adopt(spec, "exact", cost(3))
	if m, _, _ := b.Snapshot(); m != "exact" {
		t.Fatalf("Adopt on a tie kept %q, want the exact result", m)
	}
	b.Adopt(spec, "exact-worse", cost(4))
	if m, c, found := b.Snapshot(); !found || m != "exact" || c.Period != 3 {
		t.Fatalf("Adopt degraded the incumbent to (%q, %v, %v)", m, c, found)
	}
}

func TestBoundTightenIsMonotoneMin(t *testing.T) {
	b := NewBound()
	if !math.IsInf(b.Load(), 1) {
		t.Fatalf("fresh bound = %g, want +Inf", b.Load())
	}
	b.Tighten(5)
	b.Tighten(7) // looser: ignored
	if got := b.Load(); got != 5 {
		t.Fatalf("bound after Tighten(5), Tighten(7) = %g, want 5", got)
	}
	b.Tighten(2)
	if got := b.Load(); got != 2 {
		t.Fatalf("bound after Tighten(2) = %g, want 2", got)
	}
}

// TestBoundConcurrentTighten: racing tighteners must end at the global
// minimum — the CAS loop may not lose a smaller value to a larger one.
func TestBoundConcurrentTighten(t *testing.T) {
	b := NewBound()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := 1000 + w; v > w; v-- {
				b.Tighten(float64(v))
			}
		}(w)
	}
	wg.Wait()
	if got := b.Load(); got != 1 {
		t.Fatalf("concurrent tighten ended at %g, want 1", got)
	}
}
