// Package benchgate turns the BENCH_*.json performance claims into an
// enforced CI gate: it parses `go test -bench` output (including the
// -benchmem columns), reduces repeated runs (-count N) to their fastest
// time and lowest allocation count, and compares each benchmark against a
// checked-in baseline, failing on regressions beyond the baseline's
// tolerance — in ns/op, and in allocs/op for benchmarks listed in the
// baseline's allocs map. cmd/benchgate is the CLI the workflow runs.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// DefaultTolerance is the regression factor applied when the baseline
// file does not set one: a benchmark fails the gate when its fastest
// run exceeds baseline * 1.25 (>25% slower).
const DefaultTolerance = 1.25

// Baseline is the checked-in performance contract (BENCH_baseline.json):
// the fastest-of-N ns/op (and, where gated, lowest-of-N allocs/op)
// recorded for each gated benchmark on the CI runner class, plus the
// allowed regression factor.
type Baseline struct {
	Description string `json:"description,omitempty"`
	// Command documents how the gated numbers are produced.
	Command string `json:"command,omitempty"`
	// Tolerance is the allowed slowdown factor (e.g. 1.25 = +25%);
	// <= 1 selects DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Benchmarks maps benchmark names to their baseline ns/op. Names are
	// keyed exactly as ParseResults normalizes them: the -GOMAXPROCS
	// suffix of a single-core run ("-1") is dropped, so the bare name
	// always means the serial measurement, while multi-core runs (-cpu
	// 4 → "BenchmarkX-4") keep their suffix and are gated as separate
	// entries — a parallel speedup claim lives next to the serial gate it
	// is measured against.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps benchmark names to their baseline allocs/op; listed
	// benchmarks are additionally gated on allocation count, which
	// requires the bench run to use -benchmem. Unlike ns/op, allocs/op
	// is nearly deterministic, so this catches allocation regressions
	// that hide inside runner-speed noise.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

// ReadBaseline decodes a baseline file.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("benchgate: decoding baseline: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("benchgate: baseline gates no benchmarks")
	}
	for name, ns := range b.Benchmarks {
		if ns <= 0 {
			return Baseline{}, fmt.Errorf("benchgate: baseline for %s is %g ns/op, want > 0", name, ns)
		}
	}
	for name, allocs := range b.Allocs {
		if allocs < 0 {
			return Baseline{}, fmt.Errorf("benchgate: alloc baseline for %s is %g allocs/op, want >= 0", name, allocs)
		}
	}
	return b, nil
}

// WriteBaseline encodes a baseline file (the -update path).
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// Result is the reduced measurement of one benchmark across repeated
// runs: fastest ns/op, and lowest allocs/op when the run used -benchmem.
type Result struct {
	NsPerOp     float64
	AllocsPerOp float64
	// HasAllocs marks results parsed from -benchmem output; without it
	// AllocsPerOp is meaningless and alloc gating reports the benchmark
	// as missing.
	HasAllocs bool
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSolveCached-4   	    1000	     37517 ns/op	   12284 B/op	     149 allocs/op
//
// The -4 suffix is the GOMAXPROCS (or -cpu value) the run used; it is
// captured separately and normalized by resultKey. The B/op + allocs/op
// tail is present only under -benchmem.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

// resultKey normalizes a benchmark name + -GOMAXPROCS suffix into its
// baseline key: "-1" (and a bare name, which go test emits when
// GOMAXPROCS is 1 and matches the procs count) collapse to the bare
// name — both mean the serial measurement — while any other suffix is
// kept, so a -cpu 1,4 run yields two distinct keys ("BenchmarkX" and
// "BenchmarkX-4") instead of min-merging the 4-core time into the
// serial gate.
func resultKey(name, suffix string) string {
	if suffix == "" || suffix == "-1" {
		return name
	}
	return name + suffix
}

// ParseResults extracts {benchmark name -> reduced Result} from `go test
// -bench` output. Repeated runs of one benchmark (-count N) reduce to
// their minimum ns/op and minimum allocs/op: the fastest (least
// preempted) run is the least noisy estimate of the code's true cost,
// which is what a regression gate should compare.
func ParseResults(r io.Reader) (map[string]Result, error) {
	out := make(map[string]Result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op on line %q: %w", sc.Text(), err)
		}
		res := Result{NsPerOp: ns}
		if m[5] != "" {
			allocs, err := strconv.ParseFloat(m[5], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad allocs/op on line %q: %w", sc.Text(), err)
			}
			res.AllocsPerOp = allocs
			res.HasAllocs = true
		}
		key := resultKey(m[1], m[2])
		out[key] = MergeResult(out[key], res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// MergeResult reduces two measurements of one benchmark to the less noisy
// one per metric (minimum ns/op, minimum allocs/op). The zero Result is
// the identity.
func MergeResult(a, b Result) Result {
	if a == (Result{}) {
		return b
	}
	if b == (Result{}) {
		return a
	}
	out := a
	if b.NsPerOp < out.NsPerOp {
		out.NsPerOp = b.NsPerOp
	}
	switch {
	case !out.HasAllocs:
		out.AllocsPerOp, out.HasAllocs = b.AllocsPerOp, b.HasAllocs
	case b.HasAllocs && b.AllocsPerOp < out.AllocsPerOp:
		out.AllocsPerOp = b.AllocsPerOp
	}
	return out
}

// Violation is one gate failure: a gated benchmark that regressed past
// the tolerance, or that vanished from the results.
type Violation struct {
	Name string
	// Metric is the gated quantity: "ns/op" or "allocs/op".
	Metric   string
	Baseline float64
	// Actual is 0 with Missing set when the benchmark (or its -benchmem
	// column) is absent from the results.
	Actual  float64
	Missing bool
	Factor  float64
}

// String formats the violation for CI logs.
func (v Violation) String() string {
	if v.Missing {
		return fmt.Sprintf("%s: gated benchmark missing %s from results (baseline %.0f; run with -benchmem for alloc gates)",
			v.Name, v.Metric, v.Baseline)
	}
	return fmt.Sprintf("%s: %.0f %s vs baseline %.0f %s (%.2fx, limit %.2fx)",
		v.Name, v.Actual, v.Metric, v.Baseline, v.Metric, v.Actual/v.Baseline, v.Factor)
}

// Compare gates results against the baseline, returning the violations
// sorted by name then metric (empty = gate passes). Benchmarks present
// in the results but absent from the baseline are ignored — new
// benchmarks join the gate by being added to the baseline file.
func Compare(b Baseline, results map[string]Result) []Violation {
	tol := b.Tolerance
	if tol <= 1 {
		tol = DefaultTolerance
	}
	var out []Violation
	for name, base := range b.Benchmarks {
		got, ok := results[name]
		if !ok {
			out = append(out, Violation{Name: name, Metric: "ns/op", Baseline: base, Missing: true, Factor: tol})
			continue
		}
		if got.NsPerOp > base*tol {
			out = append(out, Violation{Name: name, Metric: "ns/op", Baseline: base, Actual: got.NsPerOp, Factor: tol})
		}
	}
	for name, base := range b.Allocs {
		got, ok := results[name]
		if !ok || !got.HasAllocs {
			out = append(out, Violation{Name: name, Metric: "allocs/op", Baseline: base, Missing: true, Factor: tol})
			continue
		}
		// A zero-alloc baseline tolerates nothing: any allocation on a
		// path pinned at zero is a regression.
		if got.AllocsPerOp > base*tol {
			out = append(out, Violation{Name: name, Metric: "allocs/op", Baseline: base, Actual: got.AllocsPerOp, Factor: tol})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Metric < out[j].Metric
	})
	return out
}

// Update returns a baseline whose gated benchmarks are refreshed from
// the results, keeping the gate sets (names) and metadata unchanged.
// Gated benchmarks missing from the results — or missing -benchmem
// columns for alloc-gated ones — are an error.
func Update(b Baseline, results map[string]Result) (Baseline, error) {
	fresh := make(map[string]float64, len(b.Benchmarks))
	for name := range b.Benchmarks {
		got, ok := results[name]
		if !ok {
			return Baseline{}, fmt.Errorf("benchgate: gated benchmark %s missing from results", name)
		}
		fresh[name] = got.NsPerOp
	}
	b.Benchmarks = fresh
	if len(b.Allocs) > 0 {
		freshAllocs := make(map[string]float64, len(b.Allocs))
		for name := range b.Allocs {
			got, ok := results[name]
			if !ok || !got.HasAllocs {
				return Baseline{}, fmt.Errorf("benchgate: alloc-gated benchmark %s missing allocs/op from results (run with -benchmem)", name)
			}
			freshAllocs[name] = got.AllocsPerOp
		}
		b.Allocs = freshAllocs
	}
	return b, nil
}
