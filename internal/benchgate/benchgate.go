// Package benchgate turns the BENCH_*.json performance claims into an
// enforced CI gate: it parses `go test -bench` output, reduces repeated
// runs (-count N) to their fastest time, and compares each benchmark
// against a checked-in baseline, failing on regressions beyond the
// baseline's tolerance. cmd/benchgate is the CLI the workflow runs.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
)

// DefaultTolerance is the regression factor applied when the baseline
// file does not set one: a benchmark fails the gate when its fastest
// run exceeds baseline * 1.25 (>25% slower).
const DefaultTolerance = 1.25

// Baseline is the checked-in performance contract (BENCH_baseline.json):
// the fastest-of-N ns/op recorded for each gated benchmark on the CI
// runner class, plus the allowed regression factor.
type Baseline struct {
	Description string `json:"description,omitempty"`
	// Command documents how the gated numbers are produced.
	Command string `json:"command,omitempty"`
	// Tolerance is the allowed slowdown factor (e.g. 1.25 = +25%);
	// <= 1 selects DefaultTolerance.
	Tolerance float64 `json:"tolerance,omitempty"`
	// Benchmarks maps bare benchmark names (no -GOMAXPROCS suffix) to
	// their baseline ns/op.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

// ReadBaseline decodes a baseline file.
func ReadBaseline(r io.Reader) (Baseline, error) {
	var b Baseline
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return Baseline{}, fmt.Errorf("benchgate: decoding baseline: %w", err)
	}
	if len(b.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("benchgate: baseline gates no benchmarks")
	}
	for name, ns := range b.Benchmarks {
		if ns <= 0 {
			return Baseline{}, fmt.Errorf("benchgate: baseline for %s is %g ns/op, want > 0", name, ns)
		}
	}
	return b, nil
}

// WriteBaseline encodes a baseline file (the -update path).
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkSolveCached-4   	    1000	     37517 ns/op	   12284 B/op ...
//
// The -4 suffix is the GOMAXPROCS the run used; it is stripped so the
// gate is insensitive to runner core counts.
var benchLine = regexp.MustCompile(`^(Benchmark[^\s]*?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// ParseResults extracts {benchmark name -> fastest ns/op} from `go test
// -bench` output. Repeated runs of one benchmark (-count N) reduce to
// their minimum: the fastest run is the least noisy estimate of the
// code's true cost, which is what a regression gate should compare.
func ParseResults(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op on line %q: %w", sc.Text(), err)
		}
		if prev, ok := out[m[1]]; !ok || ns < prev {
			out[m[1]] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Violation is one gate failure: a gated benchmark that regressed past
// the tolerance, or that vanished from the results.
type Violation struct {
	Name       string
	BaselineNs float64
	// ActualNs is 0 when the benchmark is missing from the results.
	ActualNs float64
	Factor   float64
}

// String formats the violation for CI logs.
func (v Violation) String() string {
	if v.ActualNs == 0 {
		return fmt.Sprintf("%s: gated benchmark missing from results (baseline %.0f ns/op)", v.Name, v.BaselineNs)
	}
	return fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%.2fx, limit %.2fx)",
		v.Name, v.ActualNs, v.BaselineNs, v.ActualNs/v.BaselineNs, v.Factor)
}

// Compare gates results against the baseline, returning the violations
// sorted by name (empty = gate passes). Benchmarks present in the
// results but absent from the baseline are ignored — new benchmarks
// join the gate by being added to the baseline file.
func Compare(b Baseline, results map[string]float64) []Violation {
	tol := b.Tolerance
	if tol <= 1 {
		tol = DefaultTolerance
	}
	var out []Violation
	for name, base := range b.Benchmarks {
		got, ok := results[name]
		if !ok {
			out = append(out, Violation{Name: name, BaselineNs: base, Factor: tol})
			continue
		}
		if got > base*tol {
			out = append(out, Violation{Name: name, BaselineNs: base, ActualNs: got, Factor: tol})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Update returns a baseline whose gated benchmarks are refreshed from
// the results, keeping the gate set (names) and metadata unchanged.
// Gated benchmarks missing from the results are an error.
func Update(b Baseline, results map[string]float64) (Baseline, error) {
	fresh := make(map[string]float64, len(b.Benchmarks))
	for name := range b.Benchmarks {
		got, ok := results[name]
		if !ok {
			return Baseline{}, fmt.Errorf("benchgate: gated benchmark %s missing from results", name)
		}
		fresh[name] = got
	}
	b.Benchmarks = fresh
	return b, nil
}
