package benchgate

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repliflow/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolveCached-4   	    1000	     40000 ns/op	   12284 B/op	     149 allocs/op
BenchmarkSolveCached-4   	    1000	     37517 ns/op	   12284 B/op	     149 allocs/op
BenchmarkSolveCached-4   	    1000	     39000 ns/op	   12284 B/op	     149 allocs/op
BenchmarkEngineSolveBatch/Engine-4         	       1	27152174 ns/op
BenchmarkEngineSolveBatch/Serial 	       1	99165543 ns/op
PASS
ok  	repliflow/internal/server	2.480s
`

func TestParseResultsTakesFastestRun(t *testing.T) {
	res, err := ParseResults(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSolveCached":             37517,
		"BenchmarkEngineSolveBatch/Engine": 27152174,
		"BenchmarkEngineSolveBatch/Serial": 99165543,
	}
	if len(res) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(res), len(want), res)
	}
	for name, ns := range want {
		if res[name] != ns {
			t.Errorf("%s = %g, want %g", name, res[name], ns)
		}
	}
}

func TestCompareFlagsRegressionsAndMissing(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchmarkFast":    1000,
		"BenchmarkSteady":  1000,
		"BenchmarkGone":    1000,
		"BenchmarkAtLimit": 1000,
	}}
	results := map[string]float64{
		"BenchmarkFast":    2000, // 2x: regression
		"BenchmarkSteady":  1100, // +10%: fine
		"BenchmarkAtLimit": 1250, // exactly at the limit: fine
		"BenchmarkNew":     5,    // not gated: ignored
	}
	vs := Compare(base, results)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "BenchmarkFast" || vs[0].ActualNs != 2000 {
		t.Errorf("violation 0 = %v, want BenchmarkFast regression", vs[0])
	}
	if vs[1].Name != "BenchmarkGone" || vs[1].ActualNs != 0 {
		t.Errorf("violation 1 = %v, want BenchmarkGone missing", vs[1])
	}
}

func TestCompareRespectsFileTolerance(t *testing.T) {
	base := Baseline{
		Tolerance:  3,
		Benchmarks: map[string]float64{"BenchmarkX": 1000},
	}
	if vs := Compare(base, map[string]float64{"BenchmarkX": 2500}); len(vs) != 0 {
		t.Errorf("2.5x within a 3x tolerance flagged: %v", vs)
	}
	if vs := Compare(base, map[string]float64{"BenchmarkX": 3500}); len(vs) != 1 {
		t.Errorf("3.5x beyond a 3x tolerance not flagged: %v", vs)
	}
}

func TestBaselineRoundTripAndValidation(t *testing.T) {
	b := Baseline{
		Description: "test",
		Command:     "go test -bench .",
		Tolerance:   1.5,
		Benchmarks:  map[string]float64{"BenchmarkX": 123},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["BenchmarkX"] != 123 || back.Tolerance != 1.5 {
		t.Errorf("round trip drift: %+v", back)
	}

	for name, doc := range map[string]string{
		"empty":        `{"benchmarks": {}}`,
		"non-positive": `{"benchmarks": {"BenchmarkX": 0}}`,
		"unknown":      `{"benchmark": {"BenchmarkX": 1}}`,
	} {
		if _, err := ReadBaseline(strings.NewReader(doc)); err == nil {
			t.Errorf("%s baseline accepted", name)
		}
	}
}

func TestUpdateRefreshesGatedSet(t *testing.T) {
	b := Baseline{Benchmarks: map[string]float64{"BenchmarkX": 1000, "BenchmarkY": 2000}}
	up, err := Update(b, map[string]float64{"BenchmarkX": 900, "BenchmarkY": 2500, "BenchmarkZ": 1})
	if err != nil {
		t.Fatal(err)
	}
	if up.Benchmarks["BenchmarkX"] != 900 || up.Benchmarks["BenchmarkY"] != 2500 {
		t.Errorf("update drift: %v", up.Benchmarks)
	}
	if _, ok := up.Benchmarks["BenchmarkZ"]; ok {
		t.Error("update added an ungated benchmark")
	}
	if _, err := Update(b, map[string]float64{"BenchmarkX": 900}); err == nil {
		t.Error("update with a missing gated benchmark accepted")
	}
}
