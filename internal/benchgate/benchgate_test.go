package benchgate

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repliflow/internal/server
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSolveCached-4   	    1000	     40000 ns/op	   12284 B/op	     151 allocs/op
BenchmarkSolveCached-4   	    1000	     37517 ns/op	   12284 B/op	     149 allocs/op
BenchmarkSolveCached-4   	    1000	     39000 ns/op	   12284 B/op	     150 allocs/op
BenchmarkEngineSolveBatch/Engine-4         	       1	27152174 ns/op
BenchmarkEngineSolveBatch/Serial 	       1	99165543 ns/op
PASS
ok  	repliflow/internal/server	2.480s
`

func TestParseResultsTakesFastestRun(t *testing.T) {
	res, err := ParseResults(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkSolveCached-4":             {NsPerOp: 37517, AllocsPerOp: 149, HasAllocs: true},
		"BenchmarkEngineSolveBatch/Engine-4": {NsPerOp: 27152174},
		"BenchmarkEngineSolveBatch/Serial":   {NsPerOp: 99165543},
	}
	if len(res) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(res), len(want), res)
	}
	for name, r := range want {
		if res[name] != r {
			t.Errorf("%s = %+v, want %+v", name, res[name], r)
		}
	}
}

// TestParseResultsNormalizesCPUSuffix: a -cpu 1,4 run interleaves
// GOMAXPROCS variants of one benchmark. The -1 suffix (and a bare name)
// normalizes to the serial key; other suffixes stay distinct keys, so
// the 4-core time can never min-merge into the serial gate.
func TestParseResultsNormalizesCPUSuffix(t *testing.T) {
	const out = `BenchmarkSolveSingleLarge/Serial-1     	       2	 500000000 ns/op	     100 B/op	       5 allocs/op
BenchmarkSolveSingleLarge/Serial-4     	       2	 480000000 ns/op	     100 B/op	       5 allocs/op
BenchmarkSolveSingleLarge/Parallel-1   	       2	 510000000 ns/op
BenchmarkSolveSingleLarge/Parallel-4   	       8	 150000000 ns/op
BenchmarkSolveSingleLarge/Serial-1     	       2	 490000000 ns/op	     100 B/op	       4 allocs/op
`
	res, err := ParseResults(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]Result{
		"BenchmarkSolveSingleLarge/Serial":     {NsPerOp: 490000000, AllocsPerOp: 4, HasAllocs: true},
		"BenchmarkSolveSingleLarge/Serial-4":   {NsPerOp: 480000000, AllocsPerOp: 5, HasAllocs: true},
		"BenchmarkSolveSingleLarge/Parallel":   {NsPerOp: 510000000},
		"BenchmarkSolveSingleLarge/Parallel-4": {NsPerOp: 150000000},
	}
	if len(res) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(res), len(want), res)
	}
	for name, r := range want {
		if res[name] != r {
			t.Errorf("%s = %+v, want %+v", name, res[name], r)
		}
	}
}

func TestCompareFlagsRegressionsAndMissing(t *testing.T) {
	base := Baseline{Benchmarks: map[string]float64{
		"BenchmarkFast":    1000,
		"BenchmarkSteady":  1000,
		"BenchmarkGone":    1000,
		"BenchmarkAtLimit": 1000,
	}}
	results := map[string]Result{
		"BenchmarkFast":    {NsPerOp: 2000}, // 2x: regression
		"BenchmarkSteady":  {NsPerOp: 1100}, // +10%: fine
		"BenchmarkAtLimit": {NsPerOp: 1250}, // exactly at the limit: fine
		"BenchmarkNew":     {NsPerOp: 5},    // not gated: ignored
	}
	vs := Compare(base, results)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "BenchmarkFast" || vs[0].Actual != 2000 {
		t.Errorf("violation 0 = %v, want BenchmarkFast regression", vs[0])
	}
	if vs[1].Name != "BenchmarkGone" || !vs[1].Missing {
		t.Errorf("violation 1 = %v, want BenchmarkGone missing", vs[1])
	}
}

func TestCompareGatesAllocs(t *testing.T) {
	base := Baseline{
		Benchmarks: map[string]float64{"BenchmarkX": 1000, "BenchmarkY": 1000, "BenchmarkZ": 1000},
		Allocs:     map[string]float64{"BenchmarkX": 100, "BenchmarkY": 100, "BenchmarkZ": 100},
	}
	results := map[string]Result{
		// ns fine, allocs doubled: alloc violation only.
		"BenchmarkX": {NsPerOp: 1000, AllocsPerOp: 200, HasAllocs: true},
		// Within tolerance on both metrics.
		"BenchmarkY": {NsPerOp: 1100, AllocsPerOp: 110, HasAllocs: true},
		// Run without -benchmem: the alloc gate reports it missing.
		"BenchmarkZ": {NsPerOp: 1000},
	}
	vs := Compare(base, results)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if vs[0].Name != "BenchmarkX" || vs[0].Metric != "allocs/op" || vs[0].Actual != 200 {
		t.Errorf("violation 0 = %v, want BenchmarkX allocs regression", vs[0])
	}
	if vs[1].Name != "BenchmarkZ" || vs[1].Metric != "allocs/op" || !vs[1].Missing {
		t.Errorf("violation 1 = %v, want BenchmarkZ missing allocs", vs[1])
	}
}

func TestCompareZeroAllocBaselineTolatesNothing(t *testing.T) {
	base := Baseline{
		Benchmarks: map[string]float64{"BenchmarkZero": 1000},
		Allocs:     map[string]float64{"BenchmarkZero": 0},
	}
	res := map[string]Result{"BenchmarkZero": {NsPerOp: 1000, AllocsPerOp: 1, HasAllocs: true}}
	if vs := Compare(base, res); len(vs) != 1 || vs[0].Metric != "allocs/op" {
		t.Errorf("1 alloc on a zero-alloc gate not flagged: %v", vs)
	}
	res["BenchmarkZero"] = Result{NsPerOp: 1000, HasAllocs: true}
	if vs := Compare(base, res); len(vs) != 0 {
		t.Errorf("zero allocs on a zero-alloc gate flagged: %v", vs)
	}
}

func TestCompareRespectsFileTolerance(t *testing.T) {
	base := Baseline{
		Tolerance:  3,
		Benchmarks: map[string]float64{"BenchmarkX": 1000},
	}
	if vs := Compare(base, map[string]Result{"BenchmarkX": {NsPerOp: 2500}}); len(vs) != 0 {
		t.Errorf("2.5x within a 3x tolerance flagged: %v", vs)
	}
	if vs := Compare(base, map[string]Result{"BenchmarkX": {NsPerOp: 3500}}); len(vs) != 1 {
		t.Errorf("3.5x beyond a 3x tolerance not flagged: %v", vs)
	}
}

func TestBaselineRoundTripAndValidation(t *testing.T) {
	b := Baseline{
		Description: "test",
		Command:     "go test -bench .",
		Tolerance:   1.5,
		Benchmarks:  map[string]float64{"BenchmarkX": 123},
		Allocs:      map[string]float64{"BenchmarkX": 45},
	}
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks["BenchmarkX"] != 123 || back.Tolerance != 1.5 || back.Allocs["BenchmarkX"] != 45 {
		t.Errorf("round trip drift: %+v", back)
	}

	for name, doc := range map[string]string{
		"empty":           `{"benchmarks": {}}`,
		"non-positive":    `{"benchmarks": {"BenchmarkX": 0}}`,
		"unknown":         `{"benchmark": {"BenchmarkX": 1}}`,
		"negative-allocs": `{"benchmarks": {"BenchmarkX": 1}, "allocs": {"BenchmarkX": -1}}`,
	} {
		if _, err := ReadBaseline(strings.NewReader(doc)); err == nil {
			t.Errorf("%s baseline accepted", name)
		}
	}
}

func TestUpdateRefreshesGatedSet(t *testing.T) {
	b := Baseline{
		Benchmarks: map[string]float64{"BenchmarkX": 1000, "BenchmarkY": 2000},
		Allocs:     map[string]float64{"BenchmarkX": 50},
	}
	res := map[string]Result{
		"BenchmarkX": {NsPerOp: 900, AllocsPerOp: 40, HasAllocs: true},
		"BenchmarkY": {NsPerOp: 2500},
		"BenchmarkZ": {NsPerOp: 1},
	}
	up, err := Update(b, res)
	if err != nil {
		t.Fatal(err)
	}
	if up.Benchmarks["BenchmarkX"] != 900 || up.Benchmarks["BenchmarkY"] != 2500 {
		t.Errorf("update drift: %v", up.Benchmarks)
	}
	if up.Allocs["BenchmarkX"] != 40 {
		t.Errorf("alloc update drift: %v", up.Allocs)
	}
	if _, ok := up.Benchmarks["BenchmarkZ"]; ok {
		t.Error("update added an ungated benchmark")
	}
	if _, err := Update(b, map[string]Result{"BenchmarkX": {NsPerOp: 900, HasAllocs: true}}); err == nil {
		t.Error("update with a missing gated benchmark accepted")
	}
	// Alloc-gated benchmark present but run without -benchmem: refuse,
	// the refreshed baseline would silently drop the alloc gate's basis.
	if _, err := Update(b, map[string]Result{
		"BenchmarkX": {NsPerOp: 900},
		"BenchmarkY": {NsPerOp: 2500},
	}); err == nil {
		t.Error("alloc update without -benchmem results accepted")
	}
}
