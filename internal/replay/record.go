package replay

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repliflow/internal/server"
)

// Recorder is HTTP middleware that captures every exchange passing
// through it to a trace (wfserve -record). Requests are served
// unmodified — the recorder buffers the request body before the handler
// runs and tees the response while it streams, so deadlines, streaming
// flushes and error paths behave exactly as they would unrecorded.
// Events are appended in response-completion order under one mutex; the
// header line is written lazily with the first event.
//
// Recording buffers each request and response body in memory for the
// duration of the exchange; it is a capture tool for load analysis and
// regression traces, not a zero-cost production default.
type Recorder struct {
	next  http.Handler
	start time.Time

	mu         sync.Mutex
	w          io.Writer
	seq        int
	headerDone bool
	err        error
}

// NewRecorder wraps next, appending every exchange to w.
func NewRecorder(next http.Handler, w io.Writer) *Recorder {
	return &Recorder{next: next, start: time.Now(), w: w}
}

// Err returns the first write error the recorder hit (events after a
// write failure are dropped, never half-written).
func (rec *Recorder) Err() error {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	return rec.err
}

// ServeHTTP implements http.Handler.
func (rec *Recorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	offset := time.Since(rec.start)
	var reqBody []byte
	if r.Body != nil {
		reqBody, _ = io.ReadAll(r.Body)
		r.Body.Close() //nolint:errcheck
		r.Body = io.NopCloser(bytes.NewReader(reqBody))
	}
	cw := &captureWriter{ResponseWriter: w}
	rec.next.ServeHTTP(cw, r)

	path := r.URL.Path
	if r.URL.RawQuery != "" {
		path += "?" + r.URL.RawQuery
	}
	rec.append(Event{
		OffsetMs: float64(offset) / float64(time.Millisecond),
		Method:   r.Method,
		Path:     path,
		Client:   server.ClientID(r),
		Request:  string(reqBody),
		Status:   cw.status(),
		Response: cw.body.String(),
	})
}

// append assigns the sequence number and writes the event line.
func (rec *Recorder) append(ev Event) {
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.err != nil {
		return
	}
	if !rec.headerDone {
		if rec.err = EncodeTrace(rec.w, &Trace{Header: Header{
			Trace:      Version,
			RecordedAt: rec.start.UTC().Format(time.RFC3339),
		}}); rec.err != nil {
			return
		}
		rec.headerDone = true
	}
	rec.seq++
	ev.Seq = rec.seq
	rec.err = json.NewEncoder(rec.w).Encode(&ev)
}

// captureWriter tees the response: status and body are copied for the
// trace while everything — including streaming flushes — passes through
// to the client untouched.
type captureWriter struct {
	http.ResponseWriter
	code int
	body bytes.Buffer
}

func (cw *captureWriter) status() int {
	if cw.code == 0 {
		return http.StatusOK
	}
	return cw.code
}

func (cw *captureWriter) WriteHeader(code int) {
	if cw.code == 0 {
		cw.code = code
	}
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *captureWriter) Write(b []byte) (int, error) {
	if cw.code == 0 {
		cw.code = http.StatusOK
	}
	cw.body.Write(b)
	return cw.ResponseWriter.Write(b)
}

// Flush forwards to the underlying writer so streamed NDJSON lines
// reach the client as they are proven, recorded or not.
func (cw *captureWriter) Flush() {
	if f, ok := cw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
