package replay

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Timing selects how replay paces requests.
type Timing string

const (
	// TimingCompressed issues each request as soon as the previous one
	// completes — maximum-throughput mode, and the deterministic mode
	// used in CI.
	TimingCompressed Timing = "compressed"
	// TimingReal reproduces the recorded arrival offsets (scaled by
	// Options.Speed), recreating the original traffic shape.
	TimingReal Timing = "real"
)

// Options configures a replay run. The zero value replays compressed
// with the default gap tolerance.
type Options struct {
	// Timing defaults to TimingCompressed.
	Timing Timing
	// Speed scales real-timing offsets: 2 replays twice as fast.
	// Ignored under compressed timing. Defaults to 1.
	Speed float64
	// GapTolerance bounds how much worse a replayed anytime gap may be
	// than the recorded one before it counts as a mismatch.
	// Defaults to DefaultGapTolerance.
	GapTolerance float64
	// JobPollInterval and JobPollTimeout pace the polling that brings a
	// replayed job snapshot to terminal state when the recording was
	// terminal. Defaults: 5ms / 30s.
	JobPollInterval time.Duration
	JobPollTimeout  time.Duration
	// Client is the HTTP client to use; defaults to a fresh client with
	// no timeout (deadlines come from ctx).
	Client *http.Client
}

// DefaultGapTolerance is the slack allowed on anytime optimality gaps:
// a replayed gap within recorded+0.25 still certifies the same
// quality band under a time-sliced budget.
const DefaultGapTolerance = 0.25

// Stats is the outcome of a replay run.
type Stats struct {
	// Events is the number of trace events replayed.
	Events int `json:"events"`
	// Mismatches counts events with at least one Diff; Diffs lists every
	// field-level divergence.
	Mismatches int    `json:"mismatches"`
	Diffs      []Diff `json:"diffs,omitempty"`
	// SkippedVolatile counts events whose bodies were too volatile to
	// diff strictly (live job snapshots, /metrics, anytime streams with
	// differing point counts).
	SkippedVolatile int `json:"skippedVolatile"`
	// RateLimitDivergences counts events where exactly one side was 429:
	// admission is clock-driven, so these are reported apart from solver
	// mismatches.
	RateLimitDivergences int `json:"rateLimitDivergences"`
	// RateLimited counts replayed responses that came back 429.
	RateLimited int `json:"rateLimited"`
	// StatusCounts histograms the replayed HTTP statuses.
	StatusCounts map[string]int `json:"statusCounts"`
	// DurationMs and ThroughputRPS measure the replay itself.
	DurationMs    float64 `json:"durationMs"`
	ThroughputRPS float64 `json:"throughputRps"`
	// LatencyP50Ms / LatencyP99Ms summarize per-request round-trip times.
	LatencyP50Ms float64 `json:"latencyP50Ms"`
	LatencyP99Ms float64 `json:"latencyP99Ms"`
}

// Replay re-issues every event of tr against target (a base URL like
// "http://127.0.0.1:8080"), serially and in trace order, and diffs each
// response against the recording. A non-nil error means the replay
// itself could not run (transport failure, bad options); response
// divergences are reported in Stats, not as errors.
func Replay(ctx context.Context, tr *Trace, target string, opts Options) (*Stats, error) {
	if opts.Timing == "" {
		opts.Timing = TimingCompressed
	}
	if opts.Timing != TimingCompressed && opts.Timing != TimingReal {
		return nil, fmt.Errorf("unknown timing mode %q", opts.Timing)
	}
	if opts.Speed <= 0 {
		opts.Speed = 1
	}
	if opts.GapTolerance <= 0 {
		opts.GapTolerance = DefaultGapTolerance
	}
	if opts.JobPollInterval <= 0 {
		opts.JobPollInterval = 5 * time.Millisecond
	}
	if opts.JobPollTimeout <= 0 {
		opts.JobPollTimeout = 30 * time.Second
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	target = strings.TrimSuffix(target, "/")

	stats := &Stats{StatusCounts: make(map[string]int)}
	latencies := make([]float64, 0, len(tr.Events))
	start := time.Now()

	// Replayed job ids differ from recorded ones; map recorded id →
	// replayed id so GET /v1/jobs/{id} events hit the job their POST
	// created in this run.
	jobIDs := make(map[string]string)

	for i := range tr.Events {
		ev := &tr.Events[i]
		if opts.Timing == TimingReal {
			due := start.Add(time.Duration(ev.OffsetMs / opts.Speed * float64(time.Millisecond)))
			if d := time.Until(due); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
		}

		status, body, rt, err := issue(ctx, client, target, ev, jobIDs)
		if err != nil {
			return nil, fmt.Errorf("replaying event %d (%s %s): %w", ev.Seq, ev.Method, ev.Path, err)
		}
		latencies = append(latencies, float64(rt)/float64(time.Millisecond))

		// Recorded-terminal job snapshots may still be running in the
		// replay (async jobs race the poll); poll the same URL until the
		// replayed job is terminal too, then diff terminal vs terminal.
		if ev.Method == http.MethodGet && strings.HasPrefix(ev.Path, "/v1/jobs/") &&
			status == http.StatusOK && jobTerminal(ev.Response) && !jobTerminal(body) {
			status, body, err = pollTerminal(ctx, client, target, ev, jobIDs, opts)
			if err != nil {
				return nil, fmt.Errorf("polling job for event %d: %w", ev.Seq, err)
			}
		}

		recordJobID(ev, body, jobIDs)

		stats.Events++
		stats.StatusCounts[fmt.Sprint(status)]++
		if status == http.StatusTooManyRequests {
			stats.RateLimited++
		}
		out := diffEvent(ev, status, body, opts.GapTolerance)
		switch {
		case out.rateDiverged:
			stats.RateLimitDivergences++
		case len(out.diffs) > 0:
			stats.Mismatches++
			stats.Diffs = append(stats.Diffs, out.diffs...)
		}
		if out.skipped {
			stats.SkippedVolatile++
		}
	}

	elapsed := time.Since(start)
	stats.DurationMs = float64(elapsed) / float64(time.Millisecond)
	if elapsed > 0 {
		stats.ThroughputRPS = float64(stats.Events) / elapsed.Seconds()
	}
	stats.LatencyP50Ms = percentile(latencies, 0.50)
	stats.LatencyP99Ms = percentile(latencies, 0.99)
	return stats, nil
}

// issue sends one event's request and reads the full response.
func issue(ctx context.Context, client *http.Client, target string, ev *Event, jobIDs map[string]string) (status int, body string, rt time.Duration, err error) {
	path := rewriteJobPath(ev.Path, jobIDs)
	var reqBody io.Reader
	if ev.Request != "" {
		reqBody = strings.NewReader(ev.Request)
	}
	req, err := http.NewRequestWithContext(ctx, ev.Method, target+path, reqBody)
	if err != nil {
		return 0, "", 0, err
	}
	if ev.Request != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	if ev.Client != "" {
		req.Header.Set("X-Client-Id", ev.Client)
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if err != nil {
		return 0, "", 0, err
	}
	return resp.StatusCode, string(b), time.Since(t0), nil
}

// pollTerminal re-GETs a job snapshot until it reaches a terminal state.
func pollTerminal(ctx context.Context, client *http.Client, target string, ev *Event, jobIDs map[string]string, opts Options) (int, string, error) {
	deadline := time.Now().Add(opts.JobPollTimeout)
	for {
		status, body, _, err := issue(ctx, client, target, ev, jobIDs)
		if err != nil {
			return 0, "", err
		}
		if status != http.StatusOK || jobTerminal(body) {
			return status, body, nil
		}
		if time.Now().After(deadline) {
			return status, body, nil // diff will report the live snapshot
		}
		select {
		case <-time.After(opts.JobPollInterval):
		case <-ctx.Done():
			return 0, "", ctx.Err()
		}
	}
}

// recordJobID maps a recorded job id to the one the replayed server
// issued, keyed off successful job-create responses.
func recordJobID(ev *Event, replayedBody string, jobIDs map[string]string) {
	if ev.Method != http.MethodPost || !strings.HasPrefix(ev.Path, "/v1/jobs") {
		return
	}
	recID := jobIDFrom(ev.Response)
	gotID := jobIDFrom(replayedBody)
	if recID != "" && gotID != "" {
		jobIDs[recID] = gotID
	}
}

func jobIDFrom(body string) string {
	vals, ok := parseNDJSON(body)
	if !ok || len(vals) != 1 {
		return ""
	}
	m, ok := vals[0].(map[string]any)
	if !ok {
		return ""
	}
	id, _ := m["id"].(string)
	return id
}

// rewriteJobPath substitutes a recorded job id in the path with its
// replayed counterpart.
func rewriteJobPath(path string, jobIDs map[string]string) string {
	const prefix = "/v1/jobs/"
	if !strings.HasPrefix(path, prefix) {
		return path
	}
	rest := path[len(prefix):]
	id, suffix, _ := strings.Cut(rest, "/")
	if mapped, ok := jobIDs[id]; ok {
		if suffix != "" {
			return prefix + mapped + "/" + suffix
		}
		return prefix + mapped
	}
	return path
}

// percentile returns the pth percentile (0..1) of xs, 0 when empty.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}
