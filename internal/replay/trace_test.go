package replay

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Header: Header{Trace: Version, RecordedAt: "2026-08-07T00:00:00Z"},
		Events: []Event{
			{Seq: 1, OffsetMs: 0, Method: "GET", Path: "/healthz", Status: 200, Response: `{"status":"ok"}`},
			{Seq: 2, OffsetMs: 12.5, Method: "POST", Path: "/v1/solve", Client: "tenant-a",
				Request: `{"pipeline":{"weights":[1]}}`, Status: 200, Response: `{"cell":"x"}`},
			{Seq: 3, OffsetMs: 40, Method: "POST", Path: "/v1/pareto", Status: 200,
				Response: "{\"period\":1}\n{\"status\":\"complete\"}\n"},
		},
	}
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, tr)
	}
}

func TestEncodeTraceDefaultsVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeTrace(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), Version) {
		t.Fatalf("header missing version: %s", buf.String())
	}
}

func TestDecodeTraceRejects(t *testing.T) {
	header := `{"trace":"wfreplay/v1"}` + "\n"
	ev := func(seq int) string {
		return `{"seq":` + strconv.Itoa(seq) + `,"offsetMs":1,"method":"GET","path":"/healthz","status":200,"response":"{}"}` + "\n"
	}
	cases := []struct {
		name, input, wantErr string
	}{
		{"empty", "", "empty trace"},
		{"wrong version", `{"trace":"wfreplay/v0"}` + "\n", "unsupported trace version"},
		{"unknown header field", `{"trace":"wfreplay/v1","extra":1}` + "\n", "unknown field"},
		{"unknown event field", header + `{"seq":1,"offsetMs":0,"method":"GET","path":"/x","status":200,"response":"","bogus":1}` + "\n", "unknown field"},
		{"seq gap", header + ev(1) + ev(3), "out of order"},
		{"seq restart", header + ev(1) + ev(1), "out of order"},
		{"negative offset", header + `{"seq":1,"offsetMs":-4,"method":"GET","path":"/x","status":200,"response":""}`, "bad offsetMs"},
		{"missing method", header + `{"seq":1,"offsetMs":0,"path":"/x","status":200,"response":""}`, "missing method"},
		{"relative path", header + `{"seq":1,"offsetMs":0,"method":"GET","path":"x","status":200,"response":""}`, "not rooted"},
		{"implausible status", header + `{"seq":1,"offsetMs":0,"method":"GET","path":"/x","status":99,"response":""}`, "implausible status"},
		// A tail the decoder can try to parse fails as a bad event; a
		// tail it cannot (a stray close brace) must still be rejected.
		{"trailing garbage", header + ev(1) + "}", "trailing garbage"},
		{"garbage event", header + ev(1) + "not json", "decoding trace event"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeTrace(strings.NewReader(tc.input))
			if err == nil {
				t.Fatalf("decoded %q without error", tc.input)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}
