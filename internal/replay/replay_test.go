package replay

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/server"
)

// -update-seed-trace regenerates testdata/seed_trace.ndjson by running
// the traffic driver against a recording backend:
//
//	go test ./internal/replay/ -run TestReplaySeedTrace -update-seed-trace
var updateSeedTrace = flag.Bool("update-seed-trace", false,
	"regenerate testdata/seed_trace.ndjson from the traffic driver")

const seedTracePath = "testdata/seed_trace.ndjson"

// seedConfig pins the backend configuration for both recording the seed
// trace and replaying it in CI. One worker serializes the engine, so
// stream point order, explored counts and job progression are
// reproducible; admission stays off so the trace carries no
// clock-dependent 429s.
func seedConfig() server.Config {
	return server.Config{
		Workers:        1,
		DefaultTimeout: 30 * time.Second,
		MaxTimeout:     time.Minute,
		MaxBatch:       16,
		Options:        core.Options{MaxExhaustivePipelineProcs: 12},
	}
}

// driveTraffic issues the mixed workload the seed trace is built from:
// exact solves (polynomial and NP-hard cells), a budgeted anytime solve,
// a deduplicating batch, a streamed Pareto sweep with its terminal
// status line, async job submission polled to terminal state, metadata
// endpoints and deterministic error paths — each under a client id.
func driveTraffic(t testing.TB, base string) {
	t.Helper()
	do := func(method, path, client, body string) (int, string) {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, base+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if client != "" {
			req.Header.Set(server.ClientIDHeader, client)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close() //nolint:errcheck
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	do(http.MethodGet, "/healthz", "", "")
	do(http.MethodGet, "/v1/classify?kind=pipeline&platform=hom&dp=true&objective=min-latency", "", "")
	do(http.MethodGet, "/v1/table", "", "")

	// Exact polynomial solve (the paper's Section 2 instance).
	if code, body := do(http.MethodPost, "/v1/solve", "alice", `{
		"pipeline": {"weights": [14, 4, 2, 4]},
		"platform": {"speeds": [1, 1, 1]},
		"allowDataParallel": true,
		"objective": "min-latency"
	}`); code != http.StatusOK {
		t.Fatalf("solve: status %d, body %s", code, body)
	}

	// Deterministic error path.
	if code, _ := do(http.MethodPost, "/v1/solve", "alice",
		`{"pipeline": {"weights": [1]}, "platform": {"speeds": [1]}, "objective": "fastest"}`); code != http.StatusBadRequest {
		t.Fatalf("bad objective: status %d, want 400", code)
	}

	// Budgeted anytime solve on an NP-hard cell. The instance is small
	// enough that the search exhausts well within the budget on any
	// machine, so the recorded incumbent is the optimum and a replayed
	// gap can only tie it.
	if code, body := do(http.MethodPost, "/v1/solve", "alice", `{
		"pipeline": {"weights": [9, 4, 2, 4, 7, 3, 5, 6, 8, 2]},
		"platform": {"speeds": [2, 2, 1, 1, 3, 1, 2, 1, 1, 2]},
		"allowDataParallel": true,
		"objective": "min-latency",
		"budgetMs": 10000
	}`); code != http.StatusOK {
		t.Fatalf("anytime solve: status %d, body %s", code, body)
	}

	// Batch with an in-request duplicate (coalesces in the engine).
	if code, body := do(http.MethodPost, "/v1/solve/batch", "bob", `{"instances": [
		{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true, "objective": "min-latency"},
		{"pipeline": {"weights": [5, 3]}, "platform": {"speeds": [1, 1]}, "objective": "min-period"},
		{"pipeline": {"weights": [14, 4, 2, 4]}, "platform": {"speeds": [1, 1, 1]}, "allowDataParallel": true, "objective": "min-latency"}
	]}`); code != http.StatusOK {
		t.Fatalf("batch: status %d, body %s", code, body)
	}

	// Streamed Pareto sweep, exact: point lines and the terminal
	// "complete" status line must replay identically.
	if code, body := do(http.MethodPost, "/v1/pareto", "bob", `{
		"pipeline": {"weights": [6, 3, 2]},
		"platform": {"speeds": [2, 1]},
		"allowDataParallel": true
	}`); code != http.StatusOK {
		t.Fatalf("pareto: status %d, body %s", code, body)
	} else if !strings.Contains(body, `"status"`) {
		t.Fatalf("pareto stream missing a terminal status line: %s", body)
	}

	// Async job: submit, poll to terminal, list.
	code, body := do(http.MethodPost, "/v1/jobs", "carol", `{
		"kind": "solve",
		"instance": {
			"pipeline": {"weights": [8, 3, 2, 5]},
			"platform": {"speeds": [2, 1, 1]},
			"allowDataParallel": true,
			"objective": "min-latency"
		}
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("job create: status %d, body %s", code, body)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &created); err != nil || created.ID == "" {
		t.Fatalf("job create response %q: %v", body, err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		code, body = do(http.MethodGet, "/v1/jobs/"+created.ID, "carol", "")
		if code != http.StatusOK {
			t.Fatalf("job poll: status %d, body %s", code, body)
		}
		if jobTerminal(body) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished: %s", created.ID, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	do(http.MethodGet, "/v1/jobs", "carol", "")
	if code, _ := do(http.MethodGet, "/v1/jobs/nope", "carol", ""); code != http.StatusNotFound {
		t.Fatalf("missing job: status %d, want 404", code)
	}
}

// recordTrace runs driveTraffic against a recording backend and returns
// the decoded trace.
func recordTrace(t testing.TB) *Trace {
	t.Helper()
	srv := server.New(seedConfig())
	var buf bytes.Buffer
	rec := NewRecorder(srv, &buf)
	ts := httptest.NewServer(rec)
	driveTraffic(t, ts.URL)
	ts.Close()
	srv.Close()
	if err := rec.Err(); err != nil {
		t.Fatalf("recorder: %v", err)
	}
	tr, err := DecodeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decoding the recording: %v", err)
	}
	return tr
}

// replayAgainstFresh replays tr against a brand-new backend with the
// seed configuration — the differential-regression check.
func replayAgainstFresh(t testing.TB, tr *Trace) *Stats {
	t.Helper()
	srv := server.New(seedConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	stats, err := Replay(ctx, tr, ts.URL, Options{})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return stats
}

func assertClean(t *testing.T, tr *Trace, stats *Stats) {
	t.Helper()
	if stats.Events != len(tr.Events) {
		t.Errorf("replayed %d of %d events", stats.Events, len(tr.Events))
	}
	for _, d := range stats.Diffs {
		t.Errorf("event %d %s field %q: recorded %s, replayed %s",
			d.Seq, d.Path, d.Field, d.Recorded, d.Replayed)
	}
	if stats.Mismatches != 0 {
		t.Errorf("%d events diverged", stats.Mismatches)
	}
	if stats.RateLimitDivergences != 0 {
		t.Errorf("%d rate-limit divergences with admission off", stats.RateLimitDivergences)
	}
}

// TestRecordReplayRoundTrip records the mixed workload and immediately
// replays it against a fresh backend: every response must match the
// recording field-by-field (exact cells byte-identical modulo the
// documented volatile fields, anytime gap-bounded), including the
// streamed terminal status lines.
func TestRecordReplayRoundTrip(t *testing.T) {
	tr := recordTrace(t)
	if len(tr.Events) < 10 {
		t.Fatalf("recorded only %d events", len(tr.Events))
	}
	// The recording must carry the workload mix, tenant identities and
	// the stream's terminal status line.
	var sawStream, sawJob bool
	clients := map[string]bool{}
	for _, ev := range tr.Events {
		clients[ev.Client] = true
		if strings.HasPrefix(ev.Path, "/v1/pareto") && strings.Contains(ev.Response, `"complete"`) {
			sawStream = true
		}
		if strings.HasPrefix(ev.Path, "/v1/jobs") {
			sawJob = true
		}
	}
	if !sawStream {
		t.Error("no completed pareto stream in the recording")
	}
	if !sawJob {
		t.Error("no job traffic in the recording")
	}
	for _, c := range []string{"alice", "bob", "carol"} {
		if !clients[c] {
			t.Errorf("client %q missing from the recording", c)
		}
	}

	assertClean(t, tr, replayAgainstFresh(t, tr))
}

// TestReplaySeedTrace is the tier-1 macro test: the checked-in seed
// trace must replay cleanly against the current build. A diff here means
// the wire format or a solver changed observable behaviour — either fix
// the regression or, for an intentional change, regenerate the trace
// with -update-seed-trace and review the diff of the trace file itself.
func TestReplaySeedTrace(t *testing.T) {
	if *updateSeedTrace {
		srv := server.New(seedConfig())
		f, err := os.Create(seedTracePath)
		if err != nil {
			t.Fatal(err)
		}
		rec := NewRecorder(srv, f)
		ts := httptest.NewServer(rec)
		driveTraffic(t, ts.URL)
		ts.Close()
		srv.Close()
		if err := rec.Err(); err != nil {
			t.Fatalf("recorder: %v", err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", seedTracePath)
	}

	f, err := os.Open(filepath.FromSlash(seedTracePath))
	if err != nil {
		t.Fatalf("opening the seed trace (regenerate with -update-seed-trace): %v", err)
	}
	tr, err := DecodeTrace(f)
	f.Close() //nolint:errcheck
	if err != nil {
		t.Fatalf("decoding the seed trace: %v", err)
	}
	assertClean(t, tr, replayAgainstFresh(t, tr))
}

// BenchmarkReplaySeedTrace measures end-to-end replay throughput of the
// seed trace against an in-process backend — the number benchgate
// watches so the harness itself cannot quietly regress.
func BenchmarkReplaySeedTrace(b *testing.B) {
	f, err := os.Open(filepath.FromSlash(seedTracePath))
	if err != nil {
		b.Skipf("no seed trace: %v", err)
	}
	tr, err := DecodeTrace(f)
	f.Close() //nolint:errcheck
	if err != nil {
		b.Fatal(err)
	}
	srv := server.New(seedConfig())
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := Replay(context.Background(), tr, ts.URL, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if stats.Events != len(tr.Events) {
			b.Fatalf("replayed %d of %d events", stats.Events, len(tr.Events))
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}
