package replay

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// FuzzDecodeTrace fuzzes the trace decoder — the surface every recorded
// file passes through before replay. It must never panic, and any trace
// it accepts must survive an encode/decode round trip unchanged (the
// format is canonical: re-recording a decoded trace is the identity).
func FuzzDecodeTrace(f *testing.F) {
	seeds := []string{
		`{"trace":"wfreplay/v1"}`,
		`{"trace":"wfreplay/v1","recordedAt":"2026-08-07T00:00:00Z"}
{"seq":1,"offsetMs":0,"method":"GET","path":"/healthz","status":200,"response":"{\"status\":\"ok\"}"}`,
		`{"trace":"wfreplay/v1"}
{"seq":1,"offsetMs":3.5,"method":"POST","path":"/v1/solve","client":"tenant-a","request":"{\"pipeline\":{\"weights\":[1]}}","status":200,"response":"{}"}
{"seq":2,"offsetMs":9,"method":"POST","path":"/v1/pareto","status":200,"response":"{\"period\":1}\n{\"status\":\"complete\"}\n"}`,
		`{"trace":"wfreplay/v2"}`,
		`{"trace":"wfreplay/v1"}
{"seq":2,"offsetMs":0,"method":"GET","path":"/x","status":200,"response":""}`,
		`{"trace":"wfreplay/v1"}
{"seq":1,"offsetMs":-1,"method":"GET","path":"/x","status":200,"response":""}`,
		`{"trace":"wfreplay/v1"}
{"seq":1,"offsetMs":0,"method":"GET","path":"relative","status":200,"response":""}`,
		`{"trace":"wfreplay/v1"}
garbage tail`,
		`{"trace":"wfreplay/v1","bogus":true}`,
		`{"seq":1}`,
		``,
		`null`,
		`[1,2]`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeTrace(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it does not panic
		}
		var buf bytes.Buffer
		if err := EncodeTrace(&buf, tr); err != nil {
			t.Fatalf("re-encoding accepted trace: %v", err)
		}
		back, err := DecodeTrace(&buf)
		if err != nil {
			t.Fatalf("re-decoding canonical form: %v\ntrace: %s", err, buf.String())
		}
		if !reflect.DeepEqual(back, tr) {
			t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", back, tr)
		}
		// Replay depends on these invariants downstream; spot-check them
		// on every accepted input.
		for i, ev := range tr.Events {
			if ev.Seq != i+1 {
				t.Fatalf("accepted trace with seq %d at index %d", ev.Seq, i)
			}
			if !strings.HasPrefix(ev.Path, "/") {
				t.Fatalf("accepted unrooted path %q", ev.Path)
			}
		}
	})
}
