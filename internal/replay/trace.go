// Package replay records wfserve wire traffic to versioned NDJSON
// traces and replays them deterministically against a live server,
// diffing every response field-by-field against the recording. It is
// the macro differential-regression harness of the repo: a checked-in
// seed trace replays in CI on every change, and production traffic
// captured with `wfserve -record` replays locally with throughput,
// latency and 429-rate statistics (cmd/wfreplay).
//
// Trace format (docs/wire-format.md "Trace files"): line 1 is a Header
// whose "trace" field names the format version; every following line is
// one Event — an HTTP exchange with its arrival offset, client id,
// request body, and response status/body. Events are written in
// response-completion order with strictly increasing sequence numbers.
package replay

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Version is the trace format version this package writes and the only
// one it reads. Bump it together with any incompatible Event change.
const Version = "wfreplay/v1"

// Header is the first line of a trace file.
type Header struct {
	// Trace is the format version tag, always Version.
	Trace string `json:"trace"`
	// RecordedAt is an informational RFC3339 timestamp; replay ignores
	// it.
	RecordedAt string `json:"recordedAt,omitempty"`
}

// Event is one recorded HTTP exchange.
type Event struct {
	// Seq numbers events from 1, strictly increasing through the file
	// (response-completion order under concurrent recording).
	Seq int `json:"seq"`
	// OffsetMs is the request's arrival offset since recording started,
	// used by real-timing replay to reproduce the traffic shape.
	OffsetMs float64 `json:"offsetMs"`
	// Method and Path (with query) identify the endpoint.
	Method string `json:"method"`
	Path   string `json:"path"`
	// Client is the tenant identity (server.ClientID) the request
	// carried; replay re-sends it in the X-Client-Id header so the
	// request lands in the same admission bucket.
	Client string `json:"client,omitempty"`
	// Request is the raw request body; empty for bodyless requests.
	Request string `json:"request,omitempty"`
	// Status and Response are the recorded response. Response holds the
	// raw body bytes — a JSON document for most endpoints, NDJSON lines
	// for streams, plain text for /metrics.
	Status   int    `json:"status"`
	Response string `json:"response"`
}

// Trace is a decoded trace file.
type Trace struct {
	Header Header
	Events []Event
}

// EncodeTrace writes tr in the NDJSON trace format.
func EncodeTrace(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	header := tr.Header
	if header.Trace == "" {
		header.Trace = Version
	}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for i := range tr.Events {
		if err := enc.Encode(&tr.Events[i]); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTrace reads and validates a trace file: the version header must
// match, unknown fields are rejected (a typo never replays the wrong
// traffic silently), sequence numbers must increase strictly from 1,
// offsets must be finite and non-negative, and every event needs a
// method, a rooted path and a plausible HTTP status.
func DecodeTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()

	var header Header
	if err := dec.Decode(&header); err != nil {
		if err == io.EOF {
			return nil, fmt.Errorf("empty trace: missing header line")
		}
		return nil, fmt.Errorf("decoding trace header: %w", err)
	}
	if header.Trace != Version {
		return nil, fmt.Errorf("unsupported trace version %q (this build reads %q)", header.Trace, Version)
	}

	tr := &Trace{Header: header}
	lastSeq := 0
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("decoding trace event %d: %w", lastSeq+1, err)
		}
		if err := validateEvent(&ev, lastSeq); err != nil {
			return nil, err
		}
		lastSeq = ev.Seq
		tr.Events = append(tr.Events, ev)
	}
	// The decoder stops at the first non-JSON byte; reject trailing
	// garbage so a truncated or corrupted tail fails loudly.
	if rest, err := io.ReadAll(io.MultiReader(dec.Buffered(), r)); err != nil {
		return nil, err
	} else if len(strings.TrimSpace(string(rest))) > 0 {
		return nil, fmt.Errorf("trailing garbage after trace event %d", lastSeq)
	}
	return tr, nil
}

func validateEvent(ev *Event, lastSeq int) error {
	if ev.Seq != lastSeq+1 {
		return fmt.Errorf("trace event seq %d out of order (want %d)", ev.Seq, lastSeq+1)
	}
	if math.IsNaN(ev.OffsetMs) || math.IsInf(ev.OffsetMs, 0) || ev.OffsetMs < 0 {
		return fmt.Errorf("trace event %d: bad offsetMs %v", ev.Seq, ev.OffsetMs)
	}
	if ev.Method == "" {
		return fmt.Errorf("trace event %d: missing method", ev.Seq)
	}
	if !strings.HasPrefix(ev.Path, "/") {
		return fmt.Errorf("trace event %d: path %q is not rooted", ev.Seq, ev.Path)
	}
	if ev.Status < 100 || ev.Status > 599 {
		return fmt.Errorf("trace event %d: implausible status %d", ev.Seq, ev.Status)
	}
	return nil
}
