package replay

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Diff is one field-level divergence between a recorded response and its
// replayed counterpart.
type Diff struct {
	// Seq and Path identify the trace event.
	Seq  int    `json:"seq"`
	Path string `json:"path"`
	// Field is the dotted JSON path of the diverging field ("status" for
	// the HTTP status, "" for whole-body divergences).
	Field    string `json:"field"`
	Recorded string `json:"recorded"`
	Replayed string `json:"replayed"`
}

// Volatile fields are stripped before comparison: they carry timing or
// process-lifetime state that legitimately differs between the
// recording and any replay. Everything else must match exactly on exact
// cells; anytime solutions are held to the gap-bounded contract instead
// (see compareValues). The set is part of the trace-diff contract
// documented in docs/wire-format.md.
var volatileKeys = map[string]bool{
	"elapsedMs":     true, // wall clock of the recorded solve
	"uptimeSeconds": true, // server lifetime (/healthz)
	"cache":         true, // engine-lifetime cache counters (batch responses)
	"iterations":    true, // anytime portfolio progress, budget-timing dependent
}

// diffOutcome aggregates one event's comparison.
type diffOutcome struct {
	diffs        []Diff
	skipped      bool // volatile body, not comparable (live job, /metrics)
	rateDiverged bool // 429 on one side only (admission is time-based)
}

// diffEvent compares a replayed response against its recording.
func diffEvent(ev *Event, gotStatus int, gotBody string, tol float64) diffOutcome {
	var out diffOutcome
	// Admission is clock-driven: replay timing differs from recording
	// timing, so a 429 appearing (or vanishing) is a rate divergence to
	// report in the stats, not a solver regression.
	if (ev.Status == 429) != (gotStatus == 429) {
		out.rateDiverged = true
		return out
	}
	if gotStatus != ev.Status {
		out.diffs = append(out.diffs, Diff{
			Seq: ev.Seq, Path: ev.Path, Field: "status",
			Recorded: fmt.Sprint(ev.Status), Replayed: fmt.Sprint(gotStatus),
		})
		return out
	}
	if strings.HasPrefix(ev.Path, "/metrics") {
		out.skipped = true // free-form counters, volatile by definition
		return out
	}

	recVals, recJSON := parseNDJSON(ev.Response)
	gotVals, gotJSON := parseNDJSON(gotBody)
	if !recJSON || !gotJSON {
		// Non-JSON bodies compare raw.
		if ev.Response != gotBody {
			out.diffs = append(out.diffs, Diff{
				Seq: ev.Seq, Path: ev.Path, Field: "",
				Recorded: clip(ev.Response), Replayed: clip(gotBody),
			})
		}
		return out
	}
	if len(recVals) > 1 || len(gotVals) > 1 {
		diffStream(ev, recVals, gotVals, tol, &out)
		return out
	}
	if len(recVals) == 0 || len(gotVals) == 0 {
		if len(recVals) != len(gotVals) {
			out.diffs = append(out.diffs, Diff{
				Seq: ev.Seq, Path: ev.Path, Field: "",
				Recorded: clip(ev.Response), Replayed: clip(gotBody),
			})
		}
		return out
	}

	rec, got := normalize(recVals[0]), normalize(gotVals[0])
	// Live job snapshots (queued/running) carry racy progress: only
	// identity is stable. Replay polls recorded-terminal snapshots to
	// terminal before diffing, so this branch covers genuinely live
	// recordings.
	if (jobLike(rec) || jobLike(got)) && (jobLive(rec) || jobLive(got)) {
		rm, _ := rec.(map[string]any)
		gm, _ := got.(map[string]any)
		compareValues(ev, "id", field(rm, "id"), field(gm, "id"), tol, &out)
		compareValues(ev, "kind", field(rm, "kind"), field(gm, "kind"), tol, &out)
		out.skipped = true
		return out
	}
	compareValues(ev, "", rec, got, tol, &out)
	return out
}

// diffStream compares NDJSON streams: heartbeat lines are filtered (they
// are pure timing), solution lines pair up positionally, and the
// terminal status line closes the comparison. Streams containing anytime
// solutions are allowed to differ in point count — the front of a
// budget-bounded sweep is only gap-certified, not unique — and then only
// the terminal status value is compared.
func diffStream(ev *Event, recVals, gotVals []any, tol float64, out *diffOutcome) {
	recSols, recTerm := splitStatusLines(recVals)
	gotSols, gotTerm := splitStatusLines(gotVals)

	anytime := hasAnytime(recSols) || hasAnytime(gotSols)
	if len(recSols) != len(gotSols) {
		if anytime {
			out.skipped = true
		} else {
			out.diffs = append(out.diffs, Diff{
				Seq: ev.Seq, Path: ev.Path, Field: "streamPoints",
				Recorded: fmt.Sprint(len(recSols)), Replayed: fmt.Sprint(len(gotSols)),
			})
		}
	} else {
		for i := range recSols {
			compareValues(ev, fmt.Sprintf("line[%d]", i), normalize(recSols[i]), normalize(gotSols[i]), tol, out)
		}
	}

	switch {
	case recTerm == nil && gotTerm == nil:
	case recTerm == nil || gotTerm == nil:
		out.diffs = append(out.diffs, Diff{
			Seq: ev.Seq, Path: ev.Path, Field: "terminal",
			Recorded: jsonClip(recTerm), Replayed: jsonClip(gotTerm),
		})
	case anytime:
		compareValues(ev, "terminal.status", field(recTerm, "status"), field(gotTerm, "status"), tol, out)
	default:
		compareValues(ev, "terminal", normalize(recTerm), normalize(gotTerm), tol, out)
	}
}

// splitStatusLines partitions stream lines into solution lines and the
// terminal status line, dropping heartbeats.
func splitStatusLines(vals []any) (sols []any, terminal map[string]any) {
	for _, v := range vals {
		m, ok := v.(map[string]any)
		if !ok || m["status"] == nil {
			sols = append(sols, v)
			continue
		}
		if m["status"] == "heartbeat" {
			continue
		}
		terminal = m // the last status line is the terminal one
	}
	return sols, terminal
}

func hasAnytime(vals []any) bool {
	for _, v := range vals {
		if m, ok := v.(map[string]any); ok && m["anytime"] == true {
			return true
		}
	}
	return false
}

// compareValues walks two normalized JSON values, recording a Diff for
// every divergence. Anytime solution objects compare under the
// gap-bounded contract: the replayed gap may not exceed the recorded gap
// by more than tol, and the incumbent itself (mapping, objective values)
// is free to differ within that certification.
func compareValues(ev *Event, fieldPath string, rec, got any, tol float64, out *diffOutcome) {
	rm, rok := rec.(map[string]any)
	gm, gok := got.(map[string]any)
	if rok && gok {
		if rm["anytime"] == true && gm["anytime"] == true {
			compareAnytime(ev, fieldPath, rm, gm, tol, out)
			return
		}
		for _, k := range unionKeys(rm, gm) {
			rv, rhas := rm[k]
			gv, ghas := gm[k]
			sub := joinField(fieldPath, k)
			if !rhas || !ghas {
				out.diffs = append(out.diffs, Diff{
					Seq: ev.Seq, Path: ev.Path, Field: sub,
					Recorded: jsonClip(rv), Replayed: jsonClip(gv),
				})
				continue
			}
			compareValues(ev, sub, rv, gv, tol, out)
		}
		return
	}
	ra, raok := rec.([]any)
	ga, gaok := got.([]any)
	if raok && gaok {
		if len(ra) != len(ga) {
			out.diffs = append(out.diffs, Diff{
				Seq: ev.Seq, Path: ev.Path, Field: joinField(fieldPath, "length"),
				Recorded: fmt.Sprint(len(ra)), Replayed: fmt.Sprint(len(ga)),
			})
			return
		}
		for i := range ra {
			compareValues(ev, fmt.Sprintf("%s[%d]", fieldPath, i), ra[i], ga[i], tol, out)
		}
		return
	}
	if rec != got {
		out.diffs = append(out.diffs, Diff{
			Seq: ev.Seq, Path: ev.Path, Field: fieldPath,
			Recorded: jsonClip(rec), Replayed: jsonClip(got),
		})
	}
}

// anytimeStable are the solution fields an anytime replay must still
// reproduce exactly; the incumbent-dependent rest (mapping, period,
// latency, gap, lowerBound, exact) is covered by the gap bound.
var anytimeStable = []string{"feasible", "anytime", "method", "complexity", "source"}

func compareAnytime(ev *Event, fieldPath string, rec, got map[string]any, tol float64, out *diffOutcome) {
	for _, k := range anytimeStable {
		compareValues(ev, joinField(fieldPath, k), rec[k], got[k], tol, out)
	}
	recGap, _ := rec["gap"].(float64)
	gotGap, _ := got["gap"].(float64)
	if gotGap > recGap+tol {
		out.diffs = append(out.diffs, Diff{
			Seq: ev.Seq, Path: ev.Path, Field: joinField(fieldPath, "gap"),
			Recorded: fmt.Sprintf("%g (tolerance +%g)", recGap, tol),
			Replayed: fmt.Sprintf("%g", gotGap),
		})
	}
}

// normalize deep-copies a decoded JSON value with the volatile fields
// stripped; rate-limited error messages additionally drop their
// retry-seconds text.
func normalize(v any) any {
	switch val := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(val))
		for k, sub := range val {
			if volatileKeys[k] {
				continue
			}
			out[k] = normalize(sub)
		}
		if out["kind"] == "rate-limited" {
			delete(out, "message")
		}
		return out
	case []any:
		out := make([]any, len(val))
		for i, sub := range val {
			out[i] = normalize(sub)
		}
		return out
	default:
		return v
	}
}

// jobLike recognizes a job snapshot (JobResponse) by its shape.
func jobLike(v any) bool {
	m, ok := v.(map[string]any)
	if !ok {
		return false
	}
	_, hasID := m["id"].(string)
	_, hasStatus := m["status"].(string)
	_, hasKind := m["kind"].(string)
	return hasID && hasStatus && hasKind
}

// jobLive reports whether a job snapshot is non-terminal.
func jobLive(v any) bool {
	m, ok := v.(map[string]any)
	if !ok {
		return false
	}
	s, _ := m["status"].(string)
	return s == "queued" || s == "running"
}

// jobTerminal reports whether body decodes as a terminal job snapshot.
func jobTerminal(body string) bool {
	var m map[string]any
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		return false
	}
	return jobLike(m) && !jobLive(m)
}

// parseNDJSON decodes a body as a sequence of JSON values; ok is false
// when the body is not pure JSON (e.g. /metrics text).
func parseNDJSON(body string) (vals []any, ok bool) {
	if strings.TrimSpace(body) == "" {
		return nil, true
	}
	dec := json.NewDecoder(strings.NewReader(body))
	dec.UseNumber()
	for dec.More() {
		var v any
		if err := dec.Decode(&v); err != nil {
			return nil, false
		}
		vals = append(vals, denumber(v))
	}
	return vals, true
}

// denumber converts json.Number leaves to float64 for uniform
// comparison (UseNumber keeps decoding strict; our wire format never
// emits numbers outside float64 range).
func denumber(v any) any {
	switch val := v.(type) {
	case json.Number:
		f, err := val.Float64()
		if err != nil {
			return val.String()
		}
		return f
	case map[string]any:
		for k, sub := range val {
			val[k] = denumber(sub)
		}
		return val
	case []any:
		for i, sub := range val {
			val[i] = denumber(sub)
		}
		return val
	default:
		return v
	}
}

func field(m map[string]any, k string) any {
	if m == nil {
		return nil
	}
	return m[k]
}

func unionKeys(a, b map[string]any) []string {
	keys := make([]string, 0, len(a)+len(b))
	for k := range a {
		keys = append(keys, k)
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			keys = append(keys, k)
		}
	}
	sortStrings(keys)
	return keys
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func joinField(base, k string) string {
	if base == "" {
		return k
	}
	return base + "." + k
}

// clip bounds raw bodies embedded in diffs.
func clip(s string) string {
	if len(s) > 200 {
		return s[:200] + "…"
	}
	return s
}

func jsonClip(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprint(v)
	}
	return clip(string(b))
}
