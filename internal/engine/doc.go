// Package engine runs repliflow solves at scale. Where internal/core
// answers one question at a time, engine answers many: a worker pool
// fans independent solves out across GOMAXPROCS, a memoization cache
// keyed by a canonical instance fingerprint deduplicates repeated
// subproblems, and the Pareto sweep is rebuilt on top of the batch
// solver so candidate-period subproblems solve concurrently while
// sharing classification and cache work.
//
// # Concurrency model
//
// An Engine is safe for concurrent use by any number of goroutines.
// The engine runs at most Workers() core solves at a time — globally,
// not per call: concurrent SolveBatch/ParetoFront calls on a shared
// Engine each bring their own goroutines but contend for the same
// solve slots, so N concurrent batches cannot oversubscribe the CPU
// N-fold. Request-level admission control (queueing whole requests, as
// cmd/wfserve does) still belongs to the caller.
//
// # Cache semantics
//
// The cache maps Fingerprint(problem, options) — a canonical, bit-exact
// rendering of the instance and the normalized exhaustive-search limits
// — to the solved Solution. Lookup is single-flight: the first goroutine
// to claim a fingerprint computes it, concurrent callers of the same
// instance wait on that computation and count as hits. Entries persist
// until Reset, or until an insert exceeds the SetCacheLimit bound
// (unbounded by default), which drops the whole cache — epoch eviction
// keeping long-running services at bounded memory. Returned solutions
// are defensive copies, so callers may mutate mappings freely. Failed
// solves are never cached: a cancelled
// computation cannot poison the fingerprint for future callers, and a
// waiter whose own context is still live retries the solve itself
// rather than adopting another caller's cancellation error. The
// fingerprint includes the anytime budget, so a tight-budget incumbent
// is never served to a generous-budget request; SolveBatch treats the
// budget as a whole-batch wall-clock target and splits it across its
// worker rounds.
//
// # Cancellation guarantees
//
// Every entry point takes a context and propagates it through
// core.SolveContext into the exhaustive searches of NP-hard cells,
// which poll cancellation at loop checkpoints — a cancelled solve
// returns ctx.Err() promptly rather than running its search to the end.
// SolveBatch cancels its remaining work on the first error; in-flight
// sibling solves observe the cancellation through the shared context.
//
// Engine.Stats exposes the cache counters (hits, misses, size) for
// monitoring; cmd/wfserve republishes them on /metrics.
package engine
