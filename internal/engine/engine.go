package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/mapping"
	"repliflow/internal/numeric"
)

// Engine is a concurrent, caching batch solver. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use and its
// cache persists across calls — reuse one Engine to amortize solves over
// many batches, or use the package-level helpers for one-shot work.
type Engine struct {
	workers int
	// sem bounds the engine-wide number of concurrent core solves at
	// workers, across all concurrent SolveBatch/ParetoFront/Solve
	// callers — per-call worker pools contend here, so N concurrent
	// batches cannot oversubscribe the CPU N-fold. Slots are held only
	// around core.SolveContext, never while waiting on a cache flight,
	// so nesting (Pareto over batch over solve) cannot deadlock.
	sem chan struct{}

	mu    sync.Mutex
	cache map[string]*cacheEntry
	limit int // max cache entries; 0 = unbounded

	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is a single-flight slot: the first goroutine to claim a
// fingerprint computes the solution, every later one waits on done.
type cacheEntry struct {
	done chan struct{}
	sol  core.Solution
	err  error
	// truncated marks an anytime flight cut short by the computing
	// caller's deadline rather than its budget: a correct answer for
	// that caller, but under-budget quality for the fingerprint, so it
	// is neither cached nor adopted by waiters.
	truncated bool
}

// New returns an Engine running at most workers concurrent solves;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[string]*cacheEntry),
	}
}

// Workers returns the concurrency limit of the engine.
func (e *Engine) Workers() int { return e.workers }

// SetCacheLimit bounds the cache at n entries; n <= 0 means unbounded
// (the default). When an insert would exceed the bound the whole cache
// is dropped and rebuilt — epoch eviction, not LRU: entries are tiny
// and recomputation is memoized again immediately, so the simple scheme
// keeps memory bounded for long-running services (cmd/wfserve) without
// per-hit bookkeeping. In-flight solves are unaffected by a drop.
func (e *Engine) SetCacheLimit(n int) {
	e.mu.Lock()
	e.limit = n
	e.mu.Unlock()
}

// CacheStats returns the cumulative cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Stats is a point-in-time snapshot of an Engine's counters, taken with
// Engine.Stats. Hits counts solves answered from the memoization cache
// (including waiters coalesced onto an in-flight computation), Misses
// counts solves that ran core.SolveContext, and Size is the number of
// completed solutions currently cached.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Size    int
	Workers int
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the engine's cache counters. The snapshot
// is not atomic across fields: under concurrent solves the hit and miss
// counts may be skewed by in-flight operations, which is harmless for
// the monitoring use it serves (the /metrics endpoint of cmd/wfserve).
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:    e.hits.Load(),
		Misses:  e.misses.Load(),
		Size:    e.CacheSize(),
		Workers: e.workers,
	}
}

// CacheSize returns the number of cached solutions.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Reset drops every cached solution (in-flight solves are unaffected:
// their entries were claimed before the reset and complete normally).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.cache = make(map[string]*cacheEntry)
	e.mu.Unlock()
}

// Solve solves one problem through the cache: a repeated instance returns
// the memoized solution without re-solving, and concurrent solves of the
// same instance share one computation (single flight). A failed flight is
// never cached, and its error is never adopted by waiters whose own
// context is still live — they retry the solve themselves, so one
// caller's cancellation cannot spuriously abort an unrelated caller.
func (e *Engine) Solve(ctx context.Context, pr core.Problem, opts core.Options) (core.Solution, error) {
	if err := pr.Validate(); err != nil {
		return core.Solution{}, err
	}
	key := Fingerprint(pr, opts)
	for {
		e.mu.Lock()
		en, ok := e.cache[key]
		if ok {
			e.mu.Unlock()
			select {
			case <-en.done:
				if en.err == nil && !en.truncated {
					e.hits.Add(1)
					return cloneSolution(en.sol), nil
				}
				if err := ctx.Err(); err != nil {
					return core.Solution{}, err
				}
				// The flight failed (typically another caller's
				// cancellation) or was deadline-truncated, but our
				// context is live: drop the dead entry if the computing
				// goroutine hasn't yet, and retry the solve ourselves.
				e.dropEntry(key, en)
				continue
			case <-ctx.Done():
				return core.Solution{}, ctx.Err()
			}
		}
		if e.limit > 0 && len(e.cache) >= e.limit {
			// Epoch eviction: drop every completed entry, keep in-flight
			// flights so waiters stay coalesced and their results land in
			// the live map.
			fresh := make(map[string]*cacheEntry)
			for k, v := range e.cache {
				select {
				case <-v.done:
				default:
					fresh[k] = v
				}
			}
			e.cache = fresh
		}
		en = &cacheEntry{done: make(chan struct{})}
		e.cache[key] = en
		e.mu.Unlock()

		// Claim an engine-wide solve slot; the flight must fail cleanly
		// if our context dies while queued, so waiters retry.
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			en.err = ctx.Err()
			close(en.done)
			e.dropEntry(key, en)
			return core.Solution{}, en.err
		}
		e.misses.Add(1)
		en.sol, en.err = core.SolveContext(ctx, pr, opts)
		// An anytime incumbent returned while this caller's context is
		// dead was truncated by the deadline, not by its budget (a
		// budget expiry never cancels ctx): flag it before releasing
		// waiters so they re-solve instead of adopting it.
		en.truncated = en.err == nil && en.sol.Anytime && !en.sol.Exact && ctx.Err() != nil
		<-e.sem
		close(en.done)
		if en.err != nil || en.truncated {
			// Never cache failures or truncated incumbents: neither may
			// poison the fingerprint for future, uncancelled callers.
			e.dropEntry(key, en)
		}
		return cloneSolution(en.sol), en.err
	}
}

// uniqueHardCount counts the distinct NP-hard instances of a batch —
// the solves that will actually consume anytime budget. Invalid
// problems are counted conservatively (their solve fails later anyway).
func uniqueHardCount(problems []core.Problem, opts core.Options) int {
	if opts.AnytimeBudget <= 0 {
		return 0
	}
	unique := make(map[string]struct{}, len(problems))
	for _, pr := range problems {
		if core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial() {
			continue
		}
		unique[Fingerprint(pr, opts)] = struct{}{}
	}
	return len(unique)
}

// splitBudget divides a batch-level anytime budget across the
// sequential rounds its n budget-consuming solves occupy on w workers:
// ceil(n/w) rounds, so each solve gets budget/rounds (at least 1ms so
// the portfolio can always seed an incumbent).
func splitBudget(opts core.Options, n, workers int) core.Options {
	if opts.AnytimeBudget <= 0 || n <= workers {
		return opts
	}
	rounds := (n + workers - 1) / workers
	per := opts.AnytimeBudget / time.Duration(rounds)
	if per < time.Millisecond {
		per = time.Millisecond
	}
	opts.AnytimeBudget = per
	return opts
}

// dropEntry removes the given entry from the cache iff it is still the
// one mapped at key (a retry may have installed a fresh flight already).
func (e *Engine) dropEntry(key string, en *cacheEntry) {
	e.mu.Lock()
	if e.cache[key] == en {
		delete(e.cache, key)
	}
	e.mu.Unlock()
}

// SolveBatch solves every problem concurrently across the worker pool,
// returning solutions aligned by index. The first error (including
// ctx.Err() on cancellation) aborts the batch and cancels the remaining
// solves. Duplicate instances within the batch are solved once.
//
// Options.AnytimeBudget is a whole-batch wall-clock target: it is split
// evenly across the sequential rounds the batch's real anytime work
// occupies (budget / ceil(unique NP-hard instances / workers), floored
// at 1ms), so a batch of NP-hard instances finishes in roughly the
// stated budget rather than budget x instances — duplicates (solved
// once by the cache) and polynomial instances (which ignore budgets)
// do not dilute the share of the solves that actually consume it.
// Each solve is cached under its split per-solve budget.
func (e *Engine) SolveBatch(ctx context.Context, problems []core.Problem, opts core.Options) ([]core.Solution, error) {
	if len(problems) == 0 {
		return nil, ctx.Err()
	}
	opts = splitBudget(opts, uniqueHardCount(problems, opts), e.workers)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sols := make([]core.Solution, len(problems))
	jobs := make(chan int)
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	workers := e.workers
	if workers > len(problems) {
		workers = len(problems)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sol, err := e.Solve(ctx, problems[i], opts)
				if err != nil {
					fail(err)
					return
				}
				sols[i] = sol
			}
		}()
	}
feed:
	for i := range problems {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sols, nil
}

// ParetoFront computes the period/latency trade-off curve of the instance
// on the engine, returning the identical front to the serial
// core.ParetoFront. Candidate-period subproblems solve concurrently across
// the worker pool and share the cache; on instances the dispatcher solves
// exactly, the sweep additionally prunes by monotonicity — the optimal
// latency under a period bound is non-increasing in the bound, so a
// divide-and-conquer over the ascending candidate list skips every
// candidate bracketed by two equal-latency (or two infeasible) probes.
// Pruning changes which candidates are solved but never the front: the
// skipped candidates are exactly those the serial dominance walk would
// discard. Heuristically solved instances fall back to the full scan,
// where monotonicity is not guaranteed.
func (e *Engine) ParetoFront(ctx context.Context, pr core.Problem, opts core.Options) ([]core.Solution, error) {
	// Mirror core.ParetoFrontWith's instance normalization.
	if pr.Objective.Bounded() && pr.Bound <= 0 {
		pr.Bound = 1
	}
	pr.Objective = core.MinPeriod
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	opts = opts.Normalized()

	lup := pr
	lup.Objective = core.LatencyUnderPeriod
	lup.Bound = 1
	pul := pr
	pul.Objective = core.PeriodUnderLatency
	pul.Bound = 1
	if core.ExactlySolvable(lup, opts) && core.ExactlySolvable(pul, opts) {
		return e.paretoPruned(ctx, pr, opts)
	}
	return core.ParetoFrontWith(ctx, pr, opts, e.SolveBatch)
}

// paretoPruned is the exact-instance sweep: divide-and-conquer over the
// candidate periods, solving each recursion level as one concurrent batch.
// pr has been normalized to Objective == MinPeriod and validated.
func (e *Engine) paretoPruned(ctx context.Context, pr core.Problem, opts core.Options) ([]core.Solution, error) {
	cands := core.CandidatePeriods(pr)
	n := len(cands)
	if n == 0 {
		return nil, nil
	}
	sols := make([]core.Solution, n)
	solved := make([]bool, n)
	solveIdx := func(idxs []int) error {
		probs := make([]core.Problem, len(idxs))
		for j, i := range idxs {
			sub := pr
			sub.Objective = core.LatencyUnderPeriod
			sub.Bound = cands[i]
			probs[j] = sub
		}
		res, err := e.SolveBatch(ctx, probs, opts)
		if err != nil {
			return err
		}
		for j, i := range idxs {
			sols[i] = res[j]
			solved[i] = true
		}
		return nil
	}

	if err := solveIdx([]int{0, n - 1}); err != nil {
		return nil, err
	}
	type span struct{ lo, hi int }
	spans := []span{{0, n - 1}}
	for len(spans) > 0 {
		var mids []int
		var next []span
		for _, s := range spans {
			if s.hi-s.lo <= 1 {
				continue
			}
			lo, hi := sols[s.lo], sols[s.hi]
			// Monotonicity (exact instances): feasibility is monotone in
			// the bound and optimal latency is non-increasing, so a span
			// bracketed by two infeasible probes is all-infeasible, and
			// one bracketed by equal latencies is all-equal — in either
			// case the serial walk would skip every interior candidate.
			if !lo.Feasible && !hi.Feasible {
				continue
			}
			if lo.Feasible && hi.Feasible && numeric.Eq(lo.Cost.Latency, hi.Cost.Latency) {
				continue
			}
			mid := (s.lo + s.hi) / 2
			mids = append(mids, mid)
			next = append(next, span{s.lo, mid}, span{mid, s.hi})
		}
		if len(mids) > 0 {
			if err := solveIdx(mids); err != nil {
				return nil, err
			}
		}
		spans = next
	}

	// The serial dominance walk over the solved candidates, identical to
	// core.ParetoFrontWith's filtering.
	var front []core.Solution
	prevLatency := numeric.Inf
	for i := 0; i < n; i++ {
		if !solved[i] {
			continue
		}
		sol := sols[i]
		if !sol.Feasible || numeric.GreaterEq(sol.Cost.Latency, prevLatency) {
			continue
		}
		tight := pr
		tight.Objective = core.PeriodUnderLatency
		tight.Bound = sol.Cost.Latency
		if ts, err := e.Solve(ctx, tight, opts); err == nil && ts.Feasible &&
			numeric.LessEq(ts.Cost.Latency, sol.Cost.Latency) && numeric.LessEq(ts.Cost.Period, sol.Cost.Period) {
			sol = ts
		}
		front = append(front, sol)
		prevLatency = sol.Cost.Latency
	}
	return front, nil
}

// SolveBatch solves the problems concurrently on a fresh engine sized to
// GOMAXPROCS. Duplicate instances in the batch are still solved once; use
// an explicit Engine to share the cache across batches.
func SolveBatch(ctx context.Context, problems []core.Problem, opts core.Options) ([]core.Solution, error) {
	return New(0).SolveBatch(ctx, problems, opts)
}

// ParetoFront computes the trade-off curve concurrently on a fresh engine.
func ParetoFront(ctx context.Context, pr core.Problem, opts core.Options) ([]core.Solution, error) {
	return New(0).ParetoFront(ctx, pr, opts)
}

// cloneSolution returns a solution whose mapping is independent of the
// cached one, so callers mutating a returned mapping cannot corrupt the
// cache. Interval/block slices are copied; the read-only Procs slices are
// shared.
func cloneSolution(s core.Solution) core.Solution {
	if s.PipelineMapping != nil {
		m := *s.PipelineMapping
		m.Intervals = append([]mapping.PipelineInterval(nil), m.Intervals...)
		s.PipelineMapping = &m
	}
	if s.ForkMapping != nil {
		m := *s.ForkMapping
		m.Blocks = append([]mapping.ForkBlock(nil), m.Blocks...)
		s.ForkMapping = &m
	}
	if s.ForkJoinMapping != nil {
		m := *s.ForkJoinMapping
		m.Blocks = append([]mapping.ForkJoinBlock(nil), m.Blocks...)
		s.ForkJoinMapping = &m
	}
	return s
}
