package engine

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/fullmodel"
	"repliflow/internal/mapping"
)

// Engine is a concurrent, caching batch solver. The zero value is not
// usable; construct with New. An Engine is safe for concurrent use and its
// cache persists across calls — reuse one Engine to amortize solves over
// many batches, or use the package-level helpers for one-shot work.
type Engine struct {
	workers int
	// sem bounds the engine-wide number of concurrent core solves at
	// workers, across all concurrent SolveBatch/ParetoFront/Solve
	// callers — per-call worker pools contend here, so N concurrent
	// batches cannot oversubscribe the CPU N-fold. Slots are held only
	// around core.SolveContext, never while waiting on a cache flight,
	// so nesting (Pareto over batch over solve) cannot deadlock.
	sem chan struct{}

	mu    sync.Mutex
	cache map[string]*cacheEntry
	limit int // max cache entries; 0 = unbounded
	// resultStore is the optional second-level store consulted on cache
	// misses of NP-hard cells (SetResultStore); nil disables it.
	resultStore ResultStore

	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheEntry is a single-flight slot: the first goroutine to claim a
// fingerprint computes the solution, every later one waits on done.
type cacheEntry struct {
	done chan struct{}
	sol  core.Solution
	err  error
	// truncated marks an anytime flight cut short by the computing
	// caller's deadline rather than its budget: a correct answer for
	// that caller, but under-budget quality for the fingerprint, so it
	// is neither cached nor adopted by waiters.
	truncated bool
	// used is set on every cache hit and cleared by the eviction scan:
	// the second-chance bit that keeps hot fingerprints alive across an
	// eviction cycle.
	used atomic.Bool
}

// New returns an Engine running at most workers concurrent solves;
// workers <= 0 selects GOMAXPROCS.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine{
		workers: workers,
		sem:     make(chan struct{}, workers),
		cache:   make(map[string]*cacheEntry),
	}
}

// Workers returns the concurrency limit of the engine.
func (e *Engine) Workers() int { return e.workers }

// SetCacheLimit bounds the cache at n entries; n <= 0 means unbounded
// (the default). When an insert would exceed the bound a sampled
// fraction of the completed entries is evicted — roughly half, with a
// second-chance bit sparing every fingerprint hit since the previous
// eviction — so hot keys survive an eviction cycle instead of the whole
// cache cold-starting at once (the stampede a full-map drop causes under
// load). In-flight solves are never evicted: their waiters stay
// coalesced and their results land in the live map.
func (e *Engine) SetCacheLimit(n int) {
	e.mu.Lock()
	e.limit = n
	e.mu.Unlock()
}

// CacheStats returns the cumulative cache hit and miss counts.
func (e *Engine) CacheStats() (hits, misses uint64) {
	return e.hits.Load(), e.misses.Load()
}

// Stats is a point-in-time snapshot of an Engine's counters, taken with
// Engine.Stats. Hits counts solves answered from the memoization cache
// (including waiters coalesced onto an in-flight computation), Misses
// counts solves that ran core.SolveContext, and Size is the number of
// completed solutions currently cached.
type Stats struct {
	Hits    uint64
	Misses  uint64
	Size    int
	Workers int
}

// HitRatio returns Hits/(Hits+Misses), or 0 before any lookup.
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns a snapshot of the engine's cache counters. The snapshot
// is not atomic across fields: under concurrent solves the hit and miss
// counts may be skewed by in-flight operations, which is harmless for
// the monitoring use it serves (the /metrics endpoint of cmd/wfserve).
func (e *Engine) Stats() Stats {
	return Stats{
		Hits:    e.hits.Load(),
		Misses:  e.misses.Load(),
		Size:    e.CacheSize(),
		Workers: e.workers,
	}
}

// CacheSize returns the number of cached solutions.
func (e *Engine) CacheSize() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Reset drops every cached solution (in-flight solves are unaffected:
// their entries were claimed before the reset and complete normally).
func (e *Engine) Reset() {
	e.mu.Lock()
	e.cache = make(map[string]*cacheEntry)
	e.mu.Unlock()
}

// coreSolveFunc is the signature of core.SolveContext; prepared-solver
// pools substitute byte-identical implementations on the cache-miss path.
type coreSolveFunc func(ctx context.Context, pr core.Problem, opts core.Options) (core.Solution, error)

// Solve solves one problem through the cache: a repeated instance returns
// the memoized solution without re-solving, and concurrent solves of the
// same instance share one computation (single flight). A failed flight is
// never cached, and its error is never adopted by waiters whose own
// context is still live — they retry the solve themselves, so one
// caller's cancellation cannot spuriously abort an unrelated caller.
func (e *Engine) Solve(ctx context.Context, pr core.Problem, opts core.Options) (core.Solution, error) {
	return e.solveVia(ctx, pr, opts, nil)
}

// solveVia is Solve with an optional solver override for the cache-miss
// path. via must be byte-identical to core.SolveContext on the problems it
// receives (the prepared-solver contract), so cached solutions stay
// indistinguishable regardless of which path computed them; nil selects
// core.SolveContext.
func (e *Engine) solveVia(ctx context.Context, pr core.Problem, opts core.Options, via coreSolveFunc) (core.Solution, error) {
	if err := pr.Validate(); err != nil {
		return core.Solution{}, err
	}
	key := Fingerprint(pr, opts)
	for {
		e.mu.Lock()
		en, ok := e.cache[key]
		if ok {
			e.mu.Unlock()
			select {
			case <-en.done:
				if en.err == nil && !en.truncated {
					e.hits.Add(1)
					en.used.Store(true)
					return cloneSolution(en.sol), nil
				}
				if err := ctx.Err(); err != nil {
					return core.Solution{}, err
				}
				// The flight failed (typically another caller's
				// cancellation) or was deadline-truncated, but our
				// context is live: drop the dead entry if the computing
				// goroutine hasn't yet, and retry the solve ourselves.
				e.dropEntry(key, en)
				continue
			case <-ctx.Done():
				return core.Solution{}, ctx.Err()
			}
		}
		if e.limit > 0 && len(e.cache) >= e.limit {
			e.evictSampleLocked()
		}
		en = &cacheEntry{done: make(chan struct{})}
		e.cache[key] = en
		rs := e.resultStore
		e.mu.Unlock()

		// Having claimed the flight, try the second-level store before
		// claiming a solve slot: a stored solution completes the entry
		// exactly as a computed one would (waiters coalesce onto it), and
		// the lookup happens off the solve semaphore so a slow store
		// cannot starve actual solves.
		if rs != nil && storeEligible(pr) {
			if sol, ok := rs.Load(key); ok {
				en.sol = sol
				close(en.done)
				return cloneSolution(en.sol), nil
			}
		}

		// Claim an engine-wide solve slot; the flight must fail cleanly
		// if our context dies while queued, so waiters retry.
		select {
		case e.sem <- struct{}{}:
		case <-ctx.Done():
			en.err = ctx.Err()
			close(en.done)
			e.dropEntry(key, en)
			return core.Solution{}, en.err
		}
		e.misses.Add(1)
		solveOpts, extra := e.donate(opts)
		if via != nil {
			en.sol, en.err = via(ctx, pr, solveOpts)
		} else {
			en.sol, en.err = core.SolveContext(ctx, pr, solveOpts)
		}
		e.releaseExtra(extra)
		// An anytime incumbent returned while this caller's context is
		// dead was truncated by the deadline, not by its budget (a
		// budget expiry never cancels ctx): flag it before releasing
		// waiters so they re-solve instead of adopting it.
		en.truncated = en.err == nil && en.sol.Anytime && !en.sol.Exact && ctx.Err() != nil
		<-e.sem
		close(en.done)
		if en.err != nil || en.truncated {
			// Never cache failures or truncated incumbents: neither may
			// poison the fingerprint for future, uncancelled callers.
			e.dropEntry(key, en)
		} else if rs != nil && storeEligible(pr) {
			rs.Store(key, en.sol)
		}
		return cloneSolution(en.sol), en.err
	}
}

// donate resolves Options.Parallelism against the engine's solve-slot
// budget for one solve that already holds its main slot. A request for n
// workers claims up to n-1 extra slots without blocking — a solve on an
// otherwise-idle pool absorbs the idle workers, while a loaded pool
// donates nothing and the solve runs serial — so intra-solve parallelism
// can never oversubscribe the engine beyond its configured worker count.
// The returned options carry the granted worker count in the original
// encoding's sign (negative stays auto, so the core crossover heuristic
// still applies per instance); the caller must return the extra slots
// with releaseExtra. The serial path (Parallelism 0 or 1) takes the
// first return and allocates nothing.
func (e *Engine) donate(opts core.Options) (core.Options, int) {
	par := opts.Parallelism
	if par == 0 || par == 1 {
		return opts, 0
	}
	want := par
	if par < 0 {
		want = -par
		if par == -1 {
			want = e.workers
			if g := runtime.GOMAXPROCS(0); g < want {
				want = g
			}
		}
	}
	extra := 0
	for extra < want-1 {
		select {
		case e.sem <- struct{}{}:
			extra++
			continue
		default:
		}
		break
	}
	switch {
	case par > 1:
		opts.Parallelism = 1 + extra
	case extra > 0:
		opts.Parallelism = -(1 + extra)
	default:
		// Auto mode with no spare slots: plain serial. (-1 would mean
		// "up to GOMAXPROCS", the opposite of what the empty pool says.)
		opts.Parallelism = 1
	}
	return opts, extra
}

// releaseExtra returns the extra solve slots claimed by donate.
func (e *Engine) releaseExtra(extra int) {
	for ; extra > 0; extra-- {
		<-e.sem
	}
}

// evictSampleLocked makes room in a full cache: a single scan evicts
// completed entries that have not been hit since the previous eviction,
// clearing the second-chance bit of the survivors, until the cache is at
// half its limit. In-flight flights are never evicted (waiters stay
// coalesced), and a hot fingerprint — one hit since the last cycle —
// survives unless the whole epoch is hot, in which case a second scan
// evicts arbitrarily so a hot epoch cannot pin the cache over its bound.
// Evicting a sampled fraction instead of dropping the map wholesale keeps
// the hot working set warm: a full drop cold-starts every fingerprint at
// once, stampeding the solvers the moment traffic repeats.
func (e *Engine) evictSampleLocked() {
	target := e.limit / 2
	if target < 1 {
		target = 1
	}
	for pass := 0; pass < 2; pass++ {
		for k, v := range e.cache {
			if len(e.cache) <= target {
				return
			}
			select {
			case <-v.done:
			default:
				continue // in-flight: never evicted
			}
			if pass == 0 && v.used.CompareAndSwap(true, false) {
				continue // hot since the last cycle: second chance
			}
			delete(e.cache, k)
		}
	}
}

// uniqueHardProblems returns the distinct NP-hard instances of a batch —
// the solves that can actually consume anytime budget — deduplicated by
// their budget-independent fingerprint. Invalid problems are included
// conservatively (their solve fails later anyway).
func uniqueHardProblems(problems []core.Problem, opts core.Options) []core.Problem {
	stripped := opts
	stripped.AnytimeBudget = 0
	seen := make(map[string]struct{}, len(problems))
	var hard []core.Problem
	for _, pr := range problems {
		if core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial() {
			continue
		}
		key := Fingerprint(pr, stripped)
		if _, ok := seen[key]; ok {
			continue
		}
		seen[key] = struct{}{}
		hard = append(hard, pr)
	}
	return hard
}

// splitBudget divides a batch-level anytime budget across the
// sequential rounds its n budget-consuming solves occupy on w workers:
// ceil(n/w) rounds, so each solve gets budget/rounds (at least 1ms so
// the portfolio can always seed an incumbent).
func splitBudget(opts core.Options, n, workers int) core.Options {
	if opts.AnytimeBudget <= 0 || n <= workers {
		return opts
	}
	rounds := (n + workers - 1) / workers
	per := opts.AnytimeBudget / time.Duration(rounds)
	if per < time.Millisecond {
		per = time.Millisecond
	}
	opts.AnytimeBudget = per
	return opts
}

// planBudgetScanCap bounds the quadratic consistency scan of
// planBatchBudget; batches with more distinct NP-hard instances fall back
// to the plain split (warm-cache redistribution matters most for small,
// repeated batches anyway).
const planBudgetScanCap = 64

// cachedCount counts the problems whose fingerprint under opts is
// already answered by the cache — a completed, untruncated entry or an
// in-flight flight this batch would coalesce onto. Those solves consume
// none of the batch budget.
func (e *Engine) cachedCount(hard []core.Problem, opts core.Options) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, pr := range hard {
		en, ok := e.cache[Fingerprint(pr, opts)]
		if !ok {
			continue
		}
		select {
		case <-en.done:
			if en.err == nil && !en.truncated {
				n++
			}
		default:
			n++ // in-flight: another caller's budget, not this batch's
		}
	}
	return n
}

// planBatchBudget derives the per-solve anytime budget of a batch. The
// starting point is the static split — budget / ceil(hard instances /
// workers) — but the static form loses budget whenever part of the batch
// is already cached: the cached solves are counted into the rounds, each
// pending solve gets the diluted share, and the unspent remainder of the
// warm entries evaporates. Instead, the planner searches for the smallest
// round count m whose share leaves at most m solves actually pending
// (uncached under that share's fingerprint), redistributing the rounds of
// warm entries to the solves that run. m = n is always consistent, so the
// result is never worse than the static split.
func (e *Engine) planBatchBudget(problems []core.Problem, opts core.Options) core.Options {
	if opts.AnytimeBudget <= 0 {
		return opts
	}
	hard := uniqueHardProblems(problems, opts)
	n := len(hard)
	if n == 0 {
		return opts
	}
	if n <= planBudgetScanCap {
		// Many m values share one split budget (every m <= workers, and
		// every m with the same round count): scan the cache once per
		// distinct budget, not once per m.
		counts := make(map[time.Duration]int)
		for m := 1; m < n; m++ {
			cand := splitBudget(opts, m, e.workers)
			c, ok := counts[cand.AnytimeBudget]
			if !ok {
				c = e.cachedCount(hard, cand)
				counts[cand.AnytimeBudget] = c
			}
			if n-c <= m {
				return cand
			}
		}
	}
	return splitBudget(opts, n, e.workers)
}

// preparedPool hands out core.PreparedSolver instances, one per worker at
// a time (a prepared solver is single-threaded scratch; sync.Pool keeps
// reuse affine to workers without locking shared state). All pooled
// solvers are prepared for the same base instance; the pool's solve is a
// coreSolveFunc usable wherever core.SolveContext is — byte-identical
// results are the prepared contract.
type preparedPool struct {
	pool sync.Pool
}

// newPreparedPool returns a pool for the instance, or nil when the
// prepared capability does not apply (polynomial cell, oversized
// instance, anytime budget).
func newPreparedPool(pr core.Problem, opts core.Options) *preparedPool {
	first, ok := core.Prepare(pr, opts)
	if !ok {
		return nil
	}
	p := &preparedPool{}
	p.pool.New = func() any {
		ps, ok := core.Prepare(pr, opts)
		if !ok {
			return (*core.PreparedSolver)(nil) // unreachable: first Prepare succeeded
		}
		return ps
	}
	p.pool.Put(first)
	return p
}

// solve dispatches one objective/bound variant through a pooled prepared
// solver.
func (p *preparedPool) solve(ctx context.Context, pr core.Problem, opts core.Options) (core.Solution, error) {
	ps := p.pool.Get().(*core.PreparedSolver)
	if ps == nil {
		return core.SolveContext(ctx, pr, opts)
	}
	defer p.pool.Put(ps)
	// The engine's slot donation rewrites Parallelism per solve; retune
	// the pooled solver to this solve's grant (byte-identical results at
	// every setting, so the pooled memos stay valid).
	ps.SetParallelism(opts.Parallelism)
	return ps.SolveProblem(ctx, pr)
}

// sameSweepBase reports whether two problems differ at most in Objective
// and Bound — the precondition for solving both on one prepared solver.
// Graphs and the platform speed vector are compared by identity (O(1)),
// which is exactly how sweeps and batch expansions build their
// subproblems; value-equal copies just miss the optimization.
func sameSweepBase(a, b core.Problem) bool {
	return a.Pipeline == b.Pipeline && a.Fork == b.Fork && a.ForkJoin == b.ForkJoin &&
		a.SP == b.SP && a.CommPipeline == b.CommPipeline && a.CommFork == b.CommFork &&
		a.Bandwidth == b.Bandwidth &&
		a.AllowDataParallel == b.AllowDataParallel &&
		len(a.Platform.Speeds) == len(b.Platform.Speeds) &&
		(len(a.Platform.Speeds) == 0 || &a.Platform.Speeds[0] == &b.Platform.Speeds[0])
}

// batchPool returns a prepared pool when every problem of the batch is an
// objective/bound variant of one instance (the candidate solves of a
// Pareto sweep), nil otherwise.
func batchPool(problems []core.Problem, opts core.Options) *preparedPool {
	if len(problems) < 2 {
		return nil
	}
	for _, pr := range problems[1:] {
		if !sameSweepBase(problems[0], pr) {
			return nil
		}
	}
	return newPreparedPool(problems[0], opts)
}

// dropEntry removes the given entry from the cache iff it is still the
// one mapped at key (a retry may have installed a fresh flight already).
func (e *Engine) dropEntry(key string, en *cacheEntry) {
	e.mu.Lock()
	if e.cache[key] == en {
		delete(e.cache, key)
	}
	e.mu.Unlock()
}

// SolveBatch solves every problem concurrently across the worker pool,
// returning solutions aligned by index. The first error (including
// ctx.Err() on cancellation) aborts the batch and cancels the remaining
// solves. Duplicate instances within the batch are solved once.
//
// Options.AnytimeBudget is a whole-batch wall-clock target: it is split
// evenly across the sequential rounds the batch's real anytime work
// occupies (budget / ceil(pending NP-hard instances / workers), floored
// at 1ms), so a batch of NP-hard instances finishes in roughly the
// stated budget rather than budget x instances. Duplicates (solved once
// by the cache), polynomial instances (which ignore budgets) and
// instances already cached from earlier traffic do not dilute the share
// of the solves that actually consume it — the rounds a warm entry would
// have occupied are redistributed to the pending solves (planBatchBudget).
// Each solve is cached under its split per-solve budget.
//
// When the whole batch varies one instance only in Objective/Bound (the
// candidate solves of a Pareto sweep), the cache misses run on pooled
// prepared solvers — one per worker — sharing preprocessing and scratch
// across the batch (results identical either way; see core.Prepare).
func (e *Engine) SolveBatch(ctx context.Context, problems []core.Problem, opts core.Options) ([]core.Solution, error) {
	return e.solveBatchVia(ctx, problems, opts, nil)
}

// solveBatchVia is SolveBatch with an optional solver override; when nil,
// a batch-local prepared pool is used if the batch shape allows one.
func (e *Engine) solveBatchVia(ctx context.Context, problems []core.Problem, opts core.Options, via coreSolveFunc) ([]core.Solution, error) {
	if len(problems) == 0 {
		return nil, ctx.Err()
	}
	opts = e.planBatchBudget(problems, opts)
	if via == nil {
		if pool := batchPool(problems, opts); pool != nil {
			via = pool.solve
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	sols := make([]core.Solution, len(problems))
	jobs := make(chan int)
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	workers := e.workers
	if workers > len(problems) {
		workers = len(problems)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				sol, err := e.solveVia(ctx, problems[i], opts, via)
				if err != nil {
					fail(err)
					return
				}
				sols[i] = sol
			}
		}()
	}
feed:
	for i := range problems {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sols, nil
}

// ParetoFront computes the period/latency trade-off curve of the instance
// on the engine, returning the identical front to the serial
// core.ParetoFront. It is a thin wrapper over SweepFront — the
// incremental generator that emits each point as soon as dominance proves
// it final — collecting the emitted points into a slice. Candidate-period
// subproblems solve concurrently across the worker pool and share the
// cache; on instances the dispatcher solves exactly, the sweep prunes by
// monotonicity (see SweepFront).
func (e *Engine) ParetoFront(ctx context.Context, pr core.Problem, opts core.Options) ([]core.Solution, error) {
	var front []core.Solution
	_, err := e.SweepFront(ctx, pr, opts, SweepObserver{Point: func(p SweepPoint) error {
		front = append(front, p.Solution)
		return nil
	}})
	if err != nil {
		return nil, err
	}
	return front, nil
}

// SolveBatch solves the problems concurrently on a fresh engine sized to
// GOMAXPROCS. Duplicate instances in the batch are still solved once; use
// an explicit Engine to share the cache across batches.
func SolveBatch(ctx context.Context, problems []core.Problem, opts core.Options) ([]core.Solution, error) {
	return New(0).SolveBatch(ctx, problems, opts)
}

// ParetoFront computes the trade-off curve concurrently on a fresh engine.
func ParetoFront(ctx context.Context, pr core.Problem, opts core.Options) ([]core.Solution, error) {
	return New(0).ParetoFront(ctx, pr, opts)
}

// cloneSolution returns a solution whose mapping is independent of the
// cached one, so callers mutating a returned mapping cannot corrupt the
// cache. Interval/block slices are copied; the read-only Procs slices are
// shared.
func cloneSolution(s core.Solution) core.Solution {
	if s.PipelineMapping != nil {
		m := *s.PipelineMapping
		m.Intervals = append([]mapping.PipelineInterval(nil), m.Intervals...)
		s.PipelineMapping = &m
	}
	if s.ForkMapping != nil {
		m := *s.ForkMapping
		m.Blocks = append([]mapping.ForkBlock(nil), m.Blocks...)
		s.ForkMapping = &m
	}
	if s.ForkJoinMapping != nil {
		m := *s.ForkJoinMapping
		m.Blocks = append([]mapping.ForkJoinBlock(nil), m.Blocks...)
		s.ForkJoinMapping = &m
	}
	if s.SPMapping != nil {
		m := *s.SPMapping
		m.Order = append([]int(nil), m.Order...)
		m.Blocks = append([]mapping.SPBlock(nil), m.Blocks...)
		if m.Pipeline != nil {
			p := *m.Pipeline
			p.Intervals = append([]mapping.PipelineInterval(nil), p.Intervals...)
			m.Pipeline = &p
		}
		if m.Fork != nil {
			f := *m.Fork
			f.Blocks = append([]mapping.ForkBlock(nil), f.Blocks...)
			m.Fork = &f
		}
		if m.ForkJoin != nil {
			fj := *m.ForkJoin
			fj.Blocks = append([]mapping.ForkJoinBlock(nil), fj.Blocks...)
			m.ForkJoin = &fj
		}
		s.SPMapping = &m
	}
	if s.CommPipelineMapping != nil {
		m := *s.CommPipelineMapping
		m.Bounds = append([]int(nil), m.Bounds...)
		m.Alloc = append([]int(nil), m.Alloc...)
		s.CommPipelineMapping = &m
	}
	if s.CommForkMapping != nil {
		m := *s.CommForkMapping
		m.Blocks = append([]fullmodel.ForkBlock(nil), m.Blocks...)
		m.SendOrder = append([]int(nil), m.SendOrder...)
		s.CommForkMapping = &m
	}
	return s
}
