package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// randomProblem builds a random solvable instance of any kind over both
// platform flavours, small enough that NP-hard cells stay exhaustive.
func randomProblem(rng *rand.Rand) core.Problem {
	pr := core.Problem{
		AllowDataParallel: rng.Intn(2) == 0,
		Objective:         core.Objective(rng.Intn(4)),
	}
	if pr.Objective.Bounded() {
		pr.Bound = float64(1+rng.Intn(30)) / 2
	}
	procs := 2 + rng.Intn(3)
	if rng.Intn(2) == 0 {
		pr.Platform = platform.Homogeneous(procs, float64(1+rng.Intn(3)))
	} else {
		pr.Platform = platform.Random(rng, procs, 5)
	}
	stages := 2 + rng.Intn(3)
	switch rng.Intn(3) {
	case 0:
		g := workflow.RandomPipeline(rng, stages, 9)
		pr.Pipeline = &g
	case 1:
		g := workflow.RandomFork(rng, stages, 9)
		pr.Fork = &g
	default:
		g := workflow.RandomForkJoin(rng, stages, 9)
		pr.ForkJoin = &g
	}
	return pr
}

// TestSolveBatchMatchesSerial checks that the concurrent batch returns,
// for every instance, exactly the solution a serial core.Solve returns.
func TestSolveBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	problems := make([]core.Problem, 60)
	for i := range problems {
		problems[i] = randomProblem(rng)
	}
	sols, err := SolveBatch(context.Background(), problems, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(problems) {
		t.Fatalf("batch returned %d solutions for %d problems", len(sols), len(problems))
	}
	for i, pr := range problems {
		want, err := core.Solve(pr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, sols[i]) {
			t.Errorf("problem %d: batch solution diverges from serial\nserial: %v\nbatch:  %v", i, want, sols[i])
		}
	}
}

// TestSolveBatchDeduplicates checks the memoization cache: duplicates in a
// batch are solved once, repeated batches hit the cache entirely.
func TestSolveBatchDeduplicates(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.Homogeneous(3, 1)
	pr := core.Problem{Pipeline: &pipe, Platform: pl, AllowDataParallel: true, Objective: core.MinLatency}
	batch := make([]core.Problem, 16)
	for i := range batch {
		batch[i] = pr
	}
	e := New(4)
	if _, err := e.SolveBatch(context.Background(), batch, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if size := e.CacheSize(); size != 1 {
		t.Errorf("cache holds %d entries for one distinct instance", size)
	}
	hits, misses := e.CacheStats()
	if misses != 1 {
		t.Errorf("distinct instance solved %d times, want 1", misses)
	}
	if hits != 15 {
		t.Errorf("cache hits = %d, want 15", hits)
	}
	// Second batch: all hits.
	if _, err := e.SolveBatch(context.Background(), batch, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, misses := e.CacheStats(); misses != 1 {
		t.Errorf("repeat batch re-solved the instance (%d misses)", misses)
	}
	e.Reset()
	if e.CacheSize() != 0 {
		t.Error("Reset left entries behind")
	}
}

// TestSolveBatchSharesCacheMutationSafe checks a caller mutating a
// returned mapping cannot corrupt later cache reads.
func TestSolveBatchSharesCacheMutationSafe(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: core.MinPeriod}
	e := New(2)
	first, err := e.Solve(context.Background(), pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Vandalize the returned mapping.
	first.PipelineMapping.Intervals[0].First = 99
	second, err := e.Solve(context.Background(), pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.PipelineMapping.Intervals[0].First == 99 {
		t.Error("mutating a returned solution corrupted the cache")
	}
}

// TestSolveBatchCancellation checks a cancelled context aborts the batch
// with ctx.Err().
func TestSolveBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	problems := make([]core.Problem, 32)
	for i := range problems {
		problems[i] = randomProblem(rng)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveBatch(ctx, problems, core.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v, want context.Canceled", err)
	}
}

// TestSolveWaiterSurvivesOtherCallersCancellation pins the single-flight
// isolation property: when the goroutine computing a fingerprint is
// cancelled, a concurrent waiter on the same fingerprint whose own
// context is live must retry and succeed instead of adopting the
// cancellation error.
func TestSolveWaiterSurvivesOtherCallersCancellation(t *testing.T) {
	// A multi-hundred-millisecond exhaustive search so the waiter reliably
	// joins the first caller's flight before it is cancelled.
	pipe := workflow.NewPipeline(14, 4, 2, 4, 7, 5, 3, 9)
	pl := platform.New(5, 4, 3, 3, 2, 2, 1, 1, 4, 2, 3, 5, 2, 1)
	pr := core.Problem{Pipeline: &pipe, Platform: pl, AllowDataParallel: true, Objective: core.MinPeriod}
	opts := core.Options{MaxExhaustivePipelineProcs: 14}

	e := New(4)
	ctxA, cancelA := context.WithCancel(context.Background())
	aStarted := make(chan struct{})
	aDone := make(chan error, 1)
	go func() {
		close(aStarted)
		_, err := e.Solve(ctxA, pr, opts)
		aDone <- err
	}()
	<-aStarted
	go func() {
		// Cancel A shortly after it has claimed the flight.
		cancelA()
	}()

	// B waits on A's flight (or starts its own if A already failed); its
	// context is never cancelled, so it must get a real solution.
	sol, err := e.Solve(context.Background(), pr, opts)
	if err != nil {
		t.Fatalf("live-context waiter inherited a failure: %v", err)
	}
	if !sol.Feasible || sol.PipelineMapping == nil {
		t.Fatalf("live-context waiter got a bogus solution: %v", sol)
	}
	if aErr := <-aDone; aErr != nil && !errors.Is(aErr, context.Canceled) {
		t.Fatalf("cancelled caller returned unexpected error: %v", aErr)
	}
}

// TestSolveBatchPropagatesErrors checks an invalid instance fails the
// batch instead of silently returning a zero solution.
func TestSolveBatchPropagatesErrors(t *testing.T) {
	problems := []core.Problem{{}} // no graph: invalid
	if _, err := SolveBatch(context.Background(), problems, core.Options{}); err == nil {
		t.Fatal("invalid instance did not fail the batch")
	}
}

// TestFingerprint checks the canonical-identity properties the cache
// relies on.
func TestFingerprint(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: core.MinPeriod}

	// Zero options and explicit defaults collide.
	if Fingerprint(pr, core.Options{}) != Fingerprint(pr, core.DefaultOptions()) {
		t.Error("zero Options and DefaultOptions fingerprint differently")
	}
	// Objective distinguishes.
	lat := pr
	lat.Objective = core.MinLatency
	if Fingerprint(pr, core.Options{}) == Fingerprint(lat, core.Options{}) {
		t.Error("objective not part of the fingerprint")
	}
	// A one-ULP weight difference distinguishes.
	w2 := append([]float64(nil), pipe.Weights...)
	w2[0] = math.Nextafter(w2[0], 2*w2[0])
	pipe2 := workflow.NewPipeline(w2...)
	pr2 := pr
	pr2.Pipeline = &pipe2
	if Fingerprint(pr, core.Options{}) == Fingerprint(pr2, core.Options{}) {
		t.Error("one-ULP weight change not part of the fingerprint")
	}
	// A fork and a fork-join with identical weights differ.
	f := workflow.NewFork(2, 1, 3)
	fj := workflow.NewForkJoin(2, 1, 3)
	prF := core.Problem{Fork: &f, Platform: platform.Homogeneous(2, 1), Objective: core.MinPeriod}
	prFJ := core.Problem{ForkJoin: &fj, Platform: platform.Homogeneous(2, 1), Objective: core.MinPeriod}
	if Fingerprint(prF, core.Options{}) == Fingerprint(prFJ, core.Options{}) {
		t.Error("graph kind not part of the fingerprint")
	}
	// Unbounded objectives ignore Bound.
	b := pr
	b.Bound = 42
	if Fingerprint(pr, core.Options{}) != Fingerprint(b, core.Options{}) {
		t.Error("irrelevant Bound leaked into the fingerprint of an unbounded objective")
	}
}

// TestEngineParetoMatchesSerial is the engine/serial equivalence gate of
// the refactor: on randomized pipeline, fork and fork-join instances over
// homogeneous and heterogeneous platforms, the engine-backed ParetoFront
// must return the identical front — same period/latency pairs, same
// exactness flags, same mappings — as the serial core.ParetoFront.
func TestEngineParetoMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cases := 0
	for _, homPlat := range []bool{true, false} {
		for kind := 0; kind < 3; kind++ {
			for trial := 0; trial < 3; trial++ {
				pr := core.Problem{AllowDataParallel: rng.Intn(2) == 0, Objective: core.MinPeriod}
				procs := 2 + rng.Intn(3)
				if homPlat {
					pr.Platform = platform.Homogeneous(procs, float64(1+rng.Intn(3)))
				} else {
					pr.Platform = platform.Random(rng, procs, 5)
				}
				stages := 2 + rng.Intn(3)
				switch kind {
				case 0:
					g := workflow.RandomPipeline(rng, stages, 9)
					pr.Pipeline = &g
				case 1:
					g := workflow.RandomFork(rng, stages, 9)
					pr.Fork = &g
				default:
					g := workflow.RandomForkJoin(rng, stages, 9)
					pr.ForkJoin = &g
				}

				serial, err := core.ParetoFront(pr, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				parallel, err := ParetoFront(context.Background(), pr, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Errorf("engine front diverges from serial (homPlat=%v kind=%d trial=%d)\nserial:   %v\nparallel: %v",
						homPlat, kind, trial, serial, parallel)
				}
				if !core.FrontIsMonotone(parallel) {
					t.Errorf("engine front not monotone (homPlat=%v kind=%d trial=%d)", homPlat, kind, trial)
				}
				cases++
			}
		}
	}
	if cases != 18 {
		t.Fatalf("covered %d cases, want 18", cases)
	}
}

// TestEngineParetoMatchesSerialLarge pins engine/serial front equality on
// the two regimes the randomized corpus undersamples: a heterogeneous
// 8-processor NP-hard instance solved exhaustively (the monotonicity-
// pruned sweep), and an oversized instance solved heuristically (the
// full-scan fallback, where monotonicity is not guaranteed).
func TestEngineParetoMatchesSerialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second serial sweep")
	}
	// Exhaustive regime: heterogeneous 8-processor platform, heterogeneous
	// pipeline with data-parallelism — the Theorem 5 NP-hard cell within
	// the exhaustive limits.
	pipe := workflow.NewPipeline(14, 4, 2, 4, 7)
	het8 := platform.New(5, 4, 3, 3, 2, 2, 1, 1)
	exact := core.Problem{Pipeline: &pipe, Platform: het8, AllowDataParallel: true}

	// Heuristic regime: 12 processors exceed MaxExhaustivePipelineProcs,
	// forcing the heuristic fallback on every candidate solve.
	het12 := platform.New(5, 4, 3, 3, 2, 2, 1, 1, 4, 2, 3, 1)
	heuristic := core.Problem{Pipeline: &pipe, Platform: het12, AllowDataParallel: true}

	for name, pr := range map[string]core.Problem{"exhaustive8": exact, "heuristic12": heuristic} {
		serial, err := core.ParetoFront(pr, core.Options{})
		if err != nil {
			t.Fatalf("%s: serial: %v", name, err)
		}
		parallel, err := ParetoFront(context.Background(), pr, core.Options{})
		if err != nil {
			t.Fatalf("%s: engine: %v", name, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("%s: engine front diverges from serial\nserial:   %v\nparallel: %v", name, serial, parallel)
		}
		if len(parallel) == 0 {
			t.Errorf("%s: empty front", name)
		}
	}
}

// TestEngineParetoCancellation checks ParetoFront honours its context.
func TestEngineParetoCancellation(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4, 7, 5)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.New(5, 4, 3, 3, 2, 2, 1, 1), AllowDataParallel: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ParetoFront(ctx, pr, core.Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pareto returned %v, want context.Canceled", err)
	}
}

// TestCacheEvictionKeepsHotKeys pins the anti-stampede property of the
// sampled eviction: a fingerprint hit since the previous eviction cycle
// survives the cycle, so hot traffic is not cold-started wholesale when
// the cache reaches its bound.
func TestCacheEvictionKeepsHotKeys(t *testing.T) {
	e := New(1)
	e.SetCacheLimit(4)
	pl := platform.Homogeneous(1, 1)
	solve := func(w float64) {
		t.Helper()
		pipe := workflow.NewPipeline(w)
		if _, err := e.Solve(context.Background(), core.Problem{Pipeline: &pipe, Platform: pl, Objective: core.MinPeriod}, core.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	solve(1) // the hot key...
	solve(1) // ...hit once, marking it hot
	solve(2)
	solve(3)
	solve(4) // cache now at its limit of 4, the other three keys cold
	solve(5) // triggers an eviction cycle before inserting

	hitsBefore, missesBefore := e.CacheStats()
	solve(1) // the hot key must have survived the cycle
	hits, misses := e.CacheStats()
	if hits != hitsBefore+1 || misses != missesBefore {
		t.Errorf("hot key evicted: hits %d -> %d, misses %d -> %d",
			hitsBefore, hits, missesBefore, misses)
	}
	if size := e.CacheSize(); size > 4 {
		t.Errorf("cache grew to %d entries despite limit 4", size)
	}
}

// TestCacheLimitEpochEviction checks SetCacheLimit keeps the cache
// bounded: inserts beyond the limit evict a sampled fraction, and solves
// keep returning correct results throughout.
func TestCacheLimitEpochEviction(t *testing.T) {
	e := New(1)
	e.SetCacheLimit(2)
	pl := platform.Homogeneous(1, 1)
	for w := 1; w <= 7; w++ {
		pipe := workflow.NewPipeline(float64(w))
		sol, err := e.Solve(context.Background(), core.Problem{Pipeline: &pipe, Platform: pl, Objective: core.MinPeriod}, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Cost.Period != float64(w) {
			t.Fatalf("weight %d: period %g", w, sol.Cost.Period)
		}
		if size := e.CacheSize(); size > 2 {
			t.Fatalf("cache grew to %d entries despite limit 2", size)
		}
	}
	// A repeated instance still hits whatever epoch holds it.
	hitsBefore, _ := e.CacheStats()
	pipe := workflow.NewPipeline(7)
	if _, err := e.Solve(context.Background(), core.Problem{Pipeline: &pipe, Platform: pl, Objective: core.MinPeriod}, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if hitsAfter, _ := e.CacheStats(); hitsAfter != hitsBefore+1 {
		t.Fatalf("repeat of cached instance missed (hits %d -> %d)", hitsBefore, hitsAfter)
	}
}
