package engine

import (
	"context"
	"errors"

	"repliflow/internal/core"
	"repliflow/internal/numeric"
)

// SweepPoint is one confirmed point of an incremental Pareto sweep: the
// solution (carrying its anytime gap when the sweep is budgeted), its
// position on the front, and the sweep progress at confirmation time.
type SweepPoint struct {
	// Solution achieves the point; Solution.Cost is the (period, latency)
	// pair, Solution.Gap its anytime certification when budgeted.
	Solution core.Solution
	// Index is the 0-based position of the point on the front.
	Index int
	// Explored counts the candidate periods resolved (solved or pruned)
	// when the point was confirmed.
	Explored int
	// Total is the number of candidate periods of the whole sweep.
	Total int
}

// SweepStats summarizes a sweep when SweepFront returns. On a completed
// sweep Explored == Total; on one cut short (context expiry, observer
// abort) the difference Total - Explored is the number of candidate
// periods left unexplored — every point emitted before the cut stands.
type SweepStats struct {
	Points   int
	Explored int
	Total    int
}

// SweepObserver receives the incremental output of SweepFront.
type SweepObserver struct {
	// Point is called for each confirmed front point, in increasing-period
	// order, as soon as dominance proves it final. Required. Returning a
	// non-nil error stops the sweep; the error is returned by SweepFront.
	Point func(SweepPoint) error
	// Progress, when non-nil, is called after every solve round with the
	// number of candidate periods resolved so far — it advances between
	// points, so slow sweeps stay observable (heartbeats, job progress).
	Progress func(explored, total int)
}

// SweepFront computes the period/latency trade-off curve of the instance
// incrementally: each front point is delivered to the observer as soon as
// dominance proves no smaller-period candidate can precede it, instead of
// after the whole sweep. The emitted sequence is identical to the slice
// ParetoFront returns — ParetoFront is a thin wrapper collecting it.
//
// On instances the dispatcher solves exactly, the sweep prunes by
// monotonicity exactly like ParetoFront always has, but refines the
// candidate list smallest-periods-first so the resolved prefix (and with
// it the confirmed front) grows from the left while later candidates are
// still being solved. Heuristically solved and budget-bounded instances
// scan the candidates in ascending batches of one worker round each. A
// positive Options.AnytimeBudget remains a whole-sweep wall-clock target:
// it is split across the rounds of the candidate scan the way SolveBatch
// splits a batch budget.
//
// A context expiry (or a Point error) stops the sweep and returns the
// error together with the stats; every point already delivered stands,
// making the partial front a well-formed prefix of the full one.
func (e *Engine) SweepFront(ctx context.Context, pr core.Problem, opts core.Options, obs SweepObserver) (SweepStats, error) {
	if obs.Point == nil {
		return SweepStats{}, errors.New("engine: SweepFront requires an observer with a Point callback")
	}
	pr, err := core.NormalizeSweep(pr)
	if err != nil {
		return SweepStats{}, err
	}
	opts = opts.Normalized()

	cands := core.CandidatePeriods(pr)
	if len(cands) == 0 {
		return SweepStats{}, nil
	}
	s := &sweeper{
		e:     e,
		pr:    pr,
		opts:  opts,
		obs:   obs,
		cands: cands,
		sols:  make([]core.Solution, len(cands)),
		state: make([]uint8, len(cands)),
		acc:   core.NewFrontAccumulator(),
	}
	// One prepared pool for the whole sweep (nil when the instance has no
	// prepared capability): every candidate solve and tightening probe of
	// the sweep differs only in Objective/Bound, so cache misses share the
	// pooled solvers' preprocessing, scratch and bound memos across the
	// entire sweep — not just within one solve round.
	if pool := newPreparedPool(pr, opts); pool != nil {
		s.via = pool.solve
	}

	lup := pr
	lup.Objective = core.LatencyUnderPeriod
	lup.Bound = 1
	pul := pr
	pul.Objective = core.PeriodUnderLatency
	pul.Bound = 1
	var runErr error
	if core.ExactlySolvable(lup, opts) && core.ExactlySolvable(pul, opts) {
		runErr = s.runPruned(ctx)
	} else {
		if opts.AnytimeBudget > 0 && !core.ClassifyCell(core.CellKeyOf(lup)).Complexity.Polynomial() {
			// The budget is a whole-sweep target: split it across the
			// worker rounds the candidate scan occupies, exactly as
			// SolveBatch splits a batch budget.
			s.opts = splitBudget(opts, len(cands), e.workers)
		}
		runErr = s.runScan(ctx)
	}
	return SweepStats{Points: s.emitted, Explored: s.explored, Total: len(s.cands)}, runErr
}

// Candidate resolution states of a sweep.
const (
	candUnsolved uint8 = iota
	candSolved
	candSkipped // pruned by monotonicity: the serial walk would discard it
)

// sweeper carries the state of one incremental sweep: the ascending
// candidate periods, their resolution state, and the emission walk — a
// prefix pointer plus the dominance accumulator — that confirms and
// delivers points as the resolved prefix grows.
type sweeper struct {
	e     *Engine
	pr    core.Problem // normalized: Objective == MinPeriod, validated
	opts  core.Options
	obs   SweepObserver
	cands []float64
	sols  []core.Solution
	state []uint8

	next     int           // first candidate not yet consumed by the emission walk
	via      coreSolveFunc // prepared-pool solve override (nil = SolveContext)
	acc      *core.FrontAccumulator
	explored int
	emitted  int // points actually delivered to the observer
}

// solveIdx solves the candidate subproblems at the given indices as one
// concurrent batch and marks them resolved.
func (s *sweeper) solveIdx(ctx context.Context, idxs []int) error {
	probs := make([]core.Problem, len(idxs))
	for j, i := range idxs {
		sub := s.pr
		sub.Objective = core.LatencyUnderPeriod
		sub.Bound = s.cands[i]
		probs[j] = sub
	}
	res, err := s.e.solveBatchVia(ctx, probs, s.opts, s.via)
	if err != nil {
		return err
	}
	for j, i := range idxs {
		s.sols[i] = res[j]
		if s.state[i] == candUnsolved {
			s.explored++
		}
		s.state[i] = candSolved
	}
	if s.obs.Progress != nil {
		s.obs.Progress(s.explored, len(s.cands))
	}
	return nil
}

// skipInterior marks the candidates strictly inside [lo, hi] as pruned.
func (s *sweeper) skipInterior(lo, hi int) {
	for i := lo + 1; i < hi; i++ {
		if s.state[i] == candUnsolved {
			s.state[i] = candSkipped
			s.explored++
		}
	}
}

// drain advances the emission walk over the resolved prefix: every solved
// candidate is offered to the dominance accumulator and each confirmed
// point is delivered immediately. Confirmation is final because every
// smaller candidate is already resolved.
func (s *sweeper) drain(ctx context.Context) error {
	for s.next < len(s.cands) && s.state[s.next] != candUnsolved {
		if s.state[s.next] == candSolved {
			var tightenErr error
			point, ok := s.acc.Offer(s.sols[s.next], func(latency float64) (core.Solution, bool) {
				tight := s.pr
				tight.Objective = core.PeriodUnderLatency
				tight.Bound = latency
				ts, err := s.e.solveVia(ctx, tight, s.opts, s.via)
				if err != nil {
					tightenErr = err
					return core.Solution{}, false
				}
				return ts, true
			})
			// A tightening probe killed by the sweep's own context must
			// abort before emitting: falling back to the untightened
			// candidate would stream a point the uninterrupted sweep
			// would have tightened, breaking the guarantee that a
			// partial front is a prefix of the full one. Other probe
			// failures keep the legacy fallback.
			if tightenErr != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			if ok {
				sp := SweepPoint{Solution: point, Index: s.emitted, Explored: s.explored, Total: len(s.cands)}
				s.emitted++
				if err := s.obs.Point(sp); err != nil {
					return err
				}
			}
		}
		s.next++
	}
	return nil
}

// runPruned is the exact-instance sweep: divide-and-conquer over the
// candidate periods using the monotonicity of feasibility and optimal
// latency in the period bound, refining smallest-period spans first so
// the resolved prefix — and with it the emitted front — grows from the
// left while larger candidates are still outstanding. Which candidates
// are solved versus pruned matches the level-order refinement ParetoFront
// historically used only up to ordering; the resulting front is identical
// either way, because pruned candidates are exactly those the serial
// dominance walk would discard.
func (s *sweeper) runPruned(ctx context.Context) error {
	n := len(s.cands)
	last := []int{0}
	if n > 1 {
		last = []int{0, n - 1}
	}
	if err := s.solveIdx(ctx, last); err != nil {
		return err
	}
	type span struct{ lo, hi int }
	// spans is kept sorted by lo; spans are contiguous and share
	// endpoints, so children of a popped prefix stay left of the rest.
	spans := []span{{0, n - 1}}
	for len(spans) > 0 {
		var mids []int
		var children []span
		i := 0
		for ; i < len(spans); i++ {
			sp := spans[i]
			if sp.hi-sp.lo <= 1 {
				continue
			}
			lo, hi := s.sols[sp.lo], s.sols[sp.hi]
			// Monotonicity (exact instances): a span bracketed by two
			// infeasible probes is all-infeasible, one bracketed by two
			// equal latencies is all-equal — either way the serial walk
			// would skip every interior candidate.
			if !lo.Feasible && !hi.Feasible {
				s.skipInterior(sp.lo, sp.hi)
				continue
			}
			if lo.Feasible && hi.Feasible && numeric.Eq(lo.Cost.Latency, hi.Cost.Latency) {
				s.skipInterior(sp.lo, sp.hi)
				continue
			}
			mid := (sp.lo + sp.hi) / 2
			mids = append(mids, mid)
			children = append(children, span{sp.lo, mid}, span{mid, sp.hi})
			if len(mids) >= s.e.workers {
				i++
				break
			}
		}
		rest := spans[i:]
		if len(mids) > 0 {
			if err := s.solveIdx(ctx, mids); err != nil {
				return err
			}
		} else if s.obs.Progress != nil && s.explored < len(s.cands) {
			s.obs.Progress(s.explored, len(s.cands))
		}
		spans = append(children, rest...)
		if err := s.drain(ctx); err != nil {
			return err
		}
	}
	return s.drain(ctx)
}

// runScan is the fallback sweep for instances without the monotonicity
// guarantee (heuristic solves) and for budget-bounded sweeps: solve the
// candidates in ascending batches of one worker round each, draining the
// emission walk after every round.
func (s *sweeper) runScan(ctx context.Context) error {
	n := len(s.cands)
	chunk := s.e.workers
	if chunk < 1 {
		chunk = 1
	}
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		idxs := make([]int, 0, end-start)
		for i := start; i < end; i++ {
			idxs = append(idxs, i)
		}
		if err := s.solveIdx(ctx, idxs); err != nil {
			return err
		}
		if err := s.drain(ctx); err != nil {
			return err
		}
	}
	return nil
}
