package engine

import (
	"encoding/binary"
	"math"

	"repliflow/internal/core"
)

// Fingerprint returns a canonical byte-exact identity of a problem instance
// under the given options: two problems share a fingerprint iff Solve is
// guaranteed to return the same solution for both. The key is a compact
// binary encoding — a graph-kind tag, then length-prefixed raw float64
// bits (which round-trip every bit of the mantissa, so instances differing
// by one ULP get distinct keys) and the options varints — built in one
// pass over a small buffer; the cached-solve hot loop pays one string
// allocation per lookup instead of the dozens a textual rendering costs.
// Options are normalized first, so the zero Options and an explicit
// DefaultOptions() collide as they should.
func Fingerprint(pr core.Problem, opts core.Options) string {
	buf := make([]byte, 0, 256)
	return string(appendFingerprint(buf, pr, opts))
}

// appendFingerprint appends the canonical encoding of (pr, opts) to b.
func appendFingerprint(b []byte, pr core.Problem, opts core.Options) []byte {
	opts = opts.Normalized()
	// The graph structure and weights are encoded by the kind's
	// AppendFingerprint capability (a distinct tag byte per kind keeps the
	// encodings prefix-free); unknown instances get the reserved '?' tag.
	b = core.AppendGraphFingerprint(pr, b)
	b = appendFloats(b, pr.Platform.Speeds)
	flags := byte(0)
	if pr.AllowDataParallel {
		flags = 1
	}
	b = append(b, flags, byte(pr.Objective))
	if pr.Objective.Bounded() {
		b = appendFloat(b, pr.Bound)
	}
	b = binary.AppendUvarint(b, uint64(opts.MaxExhaustivePipelineProcs))
	b = binary.AppendUvarint(b, uint64(opts.MaxExhaustiveForkStages))
	b = binary.AppendUvarint(b, uint64(opts.MaxExhaustiveForkProcs))
	// The anytime budget is part of the solution's identity on cells with
	// a portfolio solver: a tight-budget incumbent must never be served
	// from the cache to a generous-budget request (and vice versa), so
	// distinct budgets get distinct keys. Cells without one — polynomial
	// cells, and NP-hard cells of kinds without the Anytime capability —
	// ignore the budget entirely, so it is normalized to zero there:
	// otherwise every distinct budget (and every splitBudget rewrite)
	// would fragment the cache with byte-identical solutions.
	budget := opts.AnytimeBudget
	if budget > 0 {
		if _, ok := core.LookupAnytimeSolver(core.CellKeyOf(pr)); !ok {
			budget = 0
		}
	}
	// Options.Parallelism is deliberately NOT encoded: exact solves are
	// byte-identical at every worker count (the determinism contract of
	// the partitioned search), so serial and parallel solves of one
	// instance share a cache entry — and the engine's per-solve slot
	// donation, which rewrites Parallelism on the fly, cannot fragment
	// the cache.
	return binary.AppendVarint(b, int64(budget))
}

func appendFloat(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// appendFloats writes a length prefix and the raw bits of each value, so
// adjacent variable-length fields can never alias each other.
func appendFloats(b []byte, vs []float64) []byte {
	b = binary.AppendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}
