package engine

import (
	"strconv"
	"strings"

	"repliflow/internal/core"
)

// Fingerprint returns a canonical byte-exact identity of a problem instance
// under the given options: two problems share a fingerprint iff Solve is
// guaranteed to return the same solution for both. Floats are rendered in
// hex notation ('x'), which round-trips every bit of the mantissa, so
// instances differing by one ULP get distinct keys. Options are normalized
// first, so the zero Options and an explicit DefaultOptions() collide as
// they should.
func Fingerprint(pr core.Problem, opts core.Options) string {
	opts = opts.Normalized()
	var b strings.Builder
	b.Grow(128)
	switch {
	case pr.Pipeline != nil:
		b.WriteString("P|")
		writeFloats(&b, pr.Pipeline.Weights)
	case pr.Fork != nil:
		b.WriteString("F|")
		writeFloat(&b, pr.Fork.Root)
		b.WriteByte('|')
		writeFloats(&b, pr.Fork.Weights)
	case pr.ForkJoin != nil:
		b.WriteString("J|")
		writeFloat(&b, pr.ForkJoin.Root)
		b.WriteByte('|')
		writeFloat(&b, pr.ForkJoin.Join)
		b.WriteByte('|')
		writeFloats(&b, pr.ForkJoin.Weights)
	default:
		b.WriteString("?|")
	}
	b.WriteString("|s:")
	writeFloats(&b, pr.Platform.Speeds)
	b.WriteString("|dp:")
	if pr.AllowDataParallel {
		b.WriteByte('1')
	} else {
		b.WriteByte('0')
	}
	b.WriteString("|o:")
	b.WriteString(strconv.Itoa(int(pr.Objective)))
	if pr.Objective.Bounded() {
		b.WriteString("|b:")
		writeFloat(&b, pr.Bound)
	}
	b.WriteString("|l:")
	b.WriteString(strconv.Itoa(opts.MaxExhaustivePipelineProcs))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(opts.MaxExhaustiveForkStages))
	b.WriteByte(',')
	b.WriteString(strconv.Itoa(opts.MaxExhaustiveForkProcs))
	// The anytime budget is part of the solution's identity on NP-hard
	// cells: a tight-budget incumbent must never be served from the
	// cache to a generous-budget request (and vice versa), so distinct
	// budgets get distinct keys. Polynomial cells ignore the budget
	// entirely (core has no anytime entry for them), so it is
	// normalized to zero there — otherwise every distinct budget (and
	// every splitBudget rewrite) would fragment the cache with
	// byte-identical solutions.
	budget := opts.AnytimeBudget
	if budget > 0 && core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial() {
		budget = 0
	}
	b.WriteString("|bud:")
	b.WriteString(strconv.FormatInt(int64(budget), 10))
	return b.String()
}

func writeFloat(b *strings.Builder, v float64) {
	b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
}

func writeFloats(b *strings.Builder, vs []float64) {
	for i, v := range vs {
		if i > 0 {
			b.WriteByte(',')
		}
		writeFloat(b, v)
	}
}
