package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// hardProblem returns an NP-hard pipeline instance beyond the default
// exhaustive limits, so a budget engages the anytime portfolio.
func hardProblem(seed int64) core.Problem {
	rng := rand.New(rand.NewSource(seed))
	pipe := workflow.RandomPipeline(rng, 12, 20)
	return core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.Random(rng, 13, 5),
		AllowDataParallel: true,
		Objective:         core.MinPeriod,
	}
}

// TestFingerprintKeyedOnBudget: distinct budgets yield distinct cache
// keys, equal budgets collide.
func TestFingerprintKeyedOnBudget(t *testing.T) {
	pr := hardProblem(1)
	tight := Fingerprint(pr, core.Options{AnytimeBudget: 5 * time.Millisecond})
	loose := Fingerprint(pr, core.Options{AnytimeBudget: 500 * time.Millisecond})
	if tight == loose {
		t.Fatal("tight- and generous-budget fingerprints collide")
	}
	again := Fingerprint(pr, core.Options{AnytimeBudget: 5 * time.Millisecond})
	if tight != again {
		t.Fatal("equal budgets produced different fingerprints")
	}
	if unbudgeted := Fingerprint(pr, core.Options{}); unbudgeted == tight {
		t.Fatalf("fingerprint missing the budget component: %q", tight)
	}
}

// TestCacheNeverServesTightBudgetToGenerousRequest: a solution computed
// under a tight budget must not satisfy a generous-budget request — the
// second request re-solves (cache miss), and a repeat of the first
// budget hits.
func TestCacheNeverServesTightBudgetToGenerousRequest(t *testing.T) {
	e := New(2)
	ctx := context.Background()
	pr := hardProblem(2)

	if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first solve: hits=%d misses=%d, want 0/1", hits, misses)
	}
	if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 0 || misses != 2 {
		t.Fatalf("generous budget served from tight-budget cache: hits=%d misses=%d, want 0/2", hits, misses)
	}
	if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 1 || misses != 2 {
		t.Fatalf("repeat of the tight budget missed: hits=%d misses=%d, want 1/2", hits, misses)
	}
}

// TestPolynomialCellsShareCacheAcrossBudgets: polynomial cells ignore
// the budget, so distinct budgets must not fragment the cache with
// identical solutions.
func TestPolynomialCellsShareCacheAcrossBudgets(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.Homogeneous(3, 1),
		AllowDataParallel: true,
		Objective:         core.MinLatency,
	}
	a := Fingerprint(pr, core.Options{AnytimeBudget: 5 * time.Millisecond})
	b := Fingerprint(pr, core.Options{AnytimeBudget: 100 * time.Millisecond})
	if a != b {
		t.Fatal("polynomial-cell fingerprints fragment by budget")
	}
	e := New(2)
	ctx := context.Background()
	if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 5 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := e.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1 (budget must not re-solve a polynomial cell)", hits, misses)
	}
}

// TestDeadlineTruncatedIncumbentNotCached: when the caller's deadline
// (not the budget) cuts an anytime solve short, the incumbent is
// returned but must not be cached — a later caller with the same
// budget and a roomier deadline deserves the full-budget solve.
func TestDeadlineTruncatedIncumbentNotCached(t *testing.T) {
	e := New(2)
	pr := hardProblem(7)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Millisecond)
	defer cancel()
	sol, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Anytime || !sol.Feasible {
		t.Fatalf("want a feasible anytime incumbent, got anytime=%v feasible=%v", sol.Anytime, sol.Feasible)
	}
	if sol.Exact {
		t.Skip("portfolio certified the optimum before the deadline; nothing to assert")
	}
	if n := e.CacheSize(); n != 0 {
		t.Errorf("deadline-truncated incumbent cached (size %d); a generous-deadline caller would be served it", n)
	}
	if _, err := e.Solve(context.Background(), pr, core.Options{AnytimeBudget: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if hits, _ := e.CacheStats(); hits != 0 {
		t.Errorf("later solve hit the truncated entry (hits=%d)", hits)
	}
}

// TestSolveBatchSplitsBudget: a batch-level budget is divided across
// worker rounds so the batch completes in roughly the stated budget,
// and every NP-hard solution still carries anytime certification.
func TestSolveBatchSplitsBudget(t *testing.T) {
	e := New(2)
	problems := make([]core.Problem, 8)
	for i := range problems {
		problems[i] = hardProblem(int64(100 + i))
	}
	start := time.Now()
	sols, err := e.SolveBatch(context.Background(), problems, core.Options{AnytimeBudget: 160 * time.Millisecond})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	for i, sol := range sols {
		if !sol.Anytime {
			t.Errorf("solution %d not anytime-certified", i)
		}
		if sol.Gap < 0 {
			t.Errorf("solution %d has negative gap %g", i, sol.Gap)
		}
		if !sol.Feasible {
			t.Errorf("solution %d infeasible on an unbounded objective", i)
		}
	}
	// 8 problems / 2 workers = 4 rounds of 40ms each: the batch should
	// take on the order of the batch budget, not 8 x 160ms. Generous
	// slack for loaded CI machines.
	if elapsed > 10*time.Second {
		t.Errorf("batch took %v, want roughly the 160ms batch budget", elapsed)
	}
}

// TestUniqueHardProblems: duplicates and polynomial instances must not
// dilute the per-solve budget share the planner computes.
func TestUniqueHardProblems(t *testing.T) {
	hard := hardProblem(1)
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	poly := core.Problem{
		Pipeline:  &pipe,
		Platform:  platform.Homogeneous(3, 1),
		Objective: core.MinPeriod,
	}
	opts := core.Options{AnytimeBudget: time.Second}
	problems := []core.Problem{hard, hard, hard, poly, poly, hardProblem(2)}
	if got := len(uniqueHardProblems(problems, opts)); got != 2 {
		t.Errorf("uniqueHardProblems = %d, want 2 (three duplicates, two polynomial)", got)
	}
	// The budget must not leak into the dedup identity: equal batches
	// under different budgets count the same instances.
	if got := len(uniqueHardProblems(problems, core.Options{})); got != 2 {
		t.Errorf("uniqueHardProblems without budget = %d, want 2", got)
	}
}

// TestBatchBudgetRedistributesWarmRemainder is the budget-split
// regression test: when part of a budgeted batch is already cached, the
// rounds those warm instances would have occupied must be redistributed
// to the solves that actually run, so the total consumed budget stays
// roughly the requested budget instead of every pending solve getting a
// share diluted by solves that consume nothing.
func TestBatchBudgetRedistributesWarmRemainder(t *testing.T) {
	e := New(2)
	ctx := context.Background()
	problems := make([]core.Problem, 4)
	for i := range problems {
		problems[i] = hardProblem(int64(200 + i))
	}
	const budget = 120 * time.Millisecond
	// Warm two instances at the full budget (single solves never split).
	for _, pr := range problems[:2] {
		if _, err := e.Solve(ctx, pr, core.Options{AnytimeBudget: budget}); err != nil {
			t.Fatal(err)
		}
	}
	hitsWarm, _ := e.CacheStats()

	// The batch counts 4 unique NP-hard instances, but only 2 are
	// pending: the planner must keep the full per-solve budget (2 pending
	// on 2 workers = 1 round) instead of the stale static split
	// (budget / ceil(4/2) = budget/2, which additionally misses the warm
	// entries because the diluted budget changes their fingerprint).
	start := time.Now()
	sols, err := e.SolveBatch(ctx, problems, core.Options{AnytimeBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	for i, sol := range sols {
		if !sol.Anytime || !sol.Feasible {
			t.Errorf("solution %d lacks anytime certification: %+v", i, sol)
		}
	}
	hits, _ := e.CacheStats()
	if hits < hitsWarm+2 {
		t.Errorf("warm entries re-solved instead of hitting: hits %d -> %d, want +2", hitsWarm, hits)
	}
	// The pending solves ran — and were cached — at the full,
	// redistributed budget: a follow-up solve at that budget hits.
	if _, err := e.Solve(ctx, problems[2], core.Options{AnytimeBudget: budget}); err != nil {
		t.Fatal(err)
	}
	if after, _ := e.CacheStats(); after != hits+1 {
		t.Errorf("cold instance cached under a diluted budget: hits %d -> %d, want +1", hits, after)
	}
	// One round of 2 pending solves: the batch consumes roughly the
	// requested budget (generous slack for loaded CI machines).
	if elapsed > 10*time.Second {
		t.Errorf("warm batch took %v, want roughly the %v budget", elapsed, budget)
	}
}

// TestPlanBatchBudget covers the planner arithmetic directly: with a cold
// cache it reduces to the static split, and warm entries shrink the
// round count.
func TestPlanBatchBudget(t *testing.T) {
	const budget = 160 * time.Millisecond
	cold := New(2)
	problems := make([]core.Problem, 8)
	for i := range problems {
		problems[i] = hardProblem(int64(300 + i))
	}
	got := cold.planBatchBudget(problems, core.Options{AnytimeBudget: budget})
	if want := budget / 4; got.AnytimeBudget != want {
		t.Errorf("cold planner: per-solve budget %v, want the static split %v", got.AnytimeBudget, want)
	}
	if got := cold.planBatchBudget(problems, core.Options{}); got.AnytimeBudget != 0 {
		t.Errorf("unbudgeted batch acquired a budget: %v", got.AnytimeBudget)
	}
	// Polynomial-only batches keep the caller's budget untouched.
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	poly := core.Problem{Pipeline: &pipe, Platform: platform.Homogeneous(3, 1), Objective: core.MinPeriod}
	if got := cold.planBatchBudget([]core.Problem{poly, poly}, core.Options{AnytimeBudget: budget}); got.AnytimeBudget != budget {
		t.Errorf("polynomial batch diluted the budget to %v", got.AnytimeBudget)
	}
}

// TestSplitBudgetRounding covers the split arithmetic directly.
func TestSplitBudgetRounding(t *testing.T) {
	cases := []struct {
		budget  time.Duration
		n, w    int
		perWant time.Duration
	}{
		{0, 10, 2, 0}, // disabled stays disabled
		{100 * time.Millisecond, 2, 4, 100 * time.Millisecond}, // fewer problems than workers: untouched
		{100 * time.Millisecond, 8, 2, 25 * time.Millisecond},  // 4 rounds
		{100 * time.Millisecond, 9, 2, 20 * time.Millisecond},  // 5 rounds
		{2 * time.Millisecond, 100, 1, time.Millisecond},       // floored at 1ms
	}
	for _, c := range cases {
		got := splitBudget(core.Options{AnytimeBudget: c.budget}, c.n, c.w)
		if got.AnytimeBudget != c.perWant {
			t.Errorf("splitBudget(%v, n=%d, w=%d) = %v, want %v", c.budget, c.n, c.w, got.AnytimeBudget, c.perWant)
		}
	}
}
