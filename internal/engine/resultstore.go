package engine

import (
	"repliflow/internal/core"
)

// ResultStore is a second-level, typically durable solution cache the
// engine consults when its own memoization cache misses. Load returns
// the solution stored under an engine fingerprint (Fingerprint output),
// Store records a completed one; both must be safe for concurrent use
// and must treat the key as opaque bytes. Implementations that cannot
// answer (a decode failure, a closed backend) report a miss — the
// engine then solves normally, so a degraded store can never fail a
// request.
//
// The engine only consults the store for NP-hard cells: polynomial
// solves cost microseconds, below the price of a store round trip, and
// storing them would flood the backend with trivia. Only successful,
// untruncated solutions are written back — the same rule the in-memory
// cache applies — so a store shared by a fleet (or by successive
// incarnations of one server) accumulates proofs, never poison.
type ResultStore interface {
	Load(key string) (core.Solution, bool)
	Store(key string, sol core.Solution)
}

// SetResultStore attaches a second-level solution store consulted on
// cache misses; nil (the default) disables the lookup. Configure it
// before serving traffic: solves already in flight keep the store they
// started with.
func (e *Engine) SetResultStore(rs ResultStore) {
	e.mu.Lock()
	e.resultStore = rs
	e.mu.Unlock()
}

// storeEligible reports whether the problem's complexity cell warrants
// a result-store round trip.
func storeEligible(pr core.Problem) bool {
	return !core.ClassifyCell(core.CellKeyOf(pr)).Complexity.Polynomial()
}
