package engine

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repliflow/internal/core"
	"repliflow/internal/numeric"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// collectSweep runs SweepFront and returns the emitted points in order.
func collectSweep(t *testing.T, e *Engine, pr core.Problem, opts core.Options) ([]SweepPoint, SweepStats) {
	t.Helper()
	var points []SweepPoint
	stats, err := e.SweepFront(context.Background(), pr, opts, SweepObserver{Point: func(p SweepPoint) error {
		points = append(points, p)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	return points, stats
}

// TestSweepFrontMatchesParetoFront: on a randomized corpus the emitted
// point sequence is exactly the ParetoFront slice (which in turn matches
// the serial core front — TestEngineParetoMatchesSerial), with sequential
// indices and consistent stats.
func TestSweepFrontMatchesParetoFront(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		pr := randomProblem(rng)
		e := New(4)
		want, err := e.ParetoFront(context.Background(), pr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		points, stats := collectSweep(t, New(4), pr, core.Options{})
		got := make([]core.Solution, len(points))
		for i, p := range points {
			if p.Index != i {
				t.Errorf("trial %d: point %d carries index %d", trial, i, p.Index)
			}
			if p.Explored > p.Total {
				t.Errorf("trial %d: point %d explored %d of %d", trial, i, p.Explored, p.Total)
			}
			got[i] = p.Solution
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("trial %d: streamed front diverges from ParetoFront\nslice:  %v\nstream: %v", trial, want, got)
		}
		if stats.Points != len(points) || stats.Explored > stats.Total {
			t.Errorf("trial %d: inconsistent stats %+v for %d points", trial, stats, len(points))
		}
		if stats.Total > 0 && stats.Explored != stats.Total {
			t.Errorf("trial %d: completed sweep left %d of %d candidates unexplored", trial, stats.Total-stats.Explored, stats.Total)
		}
	}
}

// TestSweepFrontEmitsBeforeSweepCompletes: on a budget-staged slow sweep
// the first point must be confirmed while candidates are still
// outstanding — the defining property of the incremental generator. The
// point's own progress counter proves it without wall-clock assertions.
func TestSweepFrontEmitsBeforeSweepCompletes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pipe := workflow.RandomPipeline(rng, 6, 9)
	pr := core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.Random(rng, 4, 5),
		AllowDataParallel: true,
		Objective:         core.MinPeriod,
	}
	e := New(2)
	var first *SweepPoint
	stop := errors.New("first point seen")
	_, err := e.SweepFront(context.Background(), pr, core.Options{AnytimeBudget: 100 * time.Millisecond}, SweepObserver{
		Point: func(p SweepPoint) error {
			cp := p
			first = &cp
			return stop // stop the sweep at the first confirmed point
		},
	})
	if first == nil {
		t.Fatal("sweep finished without emitting a point")
	}
	if !errors.Is(err, stop) {
		t.Fatalf("stopped sweep returned %v, want the observer's stop error", err)
	}
	if first.Explored >= first.Total {
		t.Errorf("first point confirmed only after the whole sweep (explored %d of %d)", first.Explored, first.Total)
	}
	if !first.Solution.Feasible {
		t.Error("confirmed point is infeasible")
	}
}

// TestSweepFrontPartialIsPrefix: a sweep stopped by its observer has
// delivered exactly a prefix of the full front, in increasing-period
// order — the partial-front contract streaming clients rely on.
func TestSweepFrontPartialIsPrefix(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4, 7)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.New(3, 2, 2, 1), AllowDataParallel: true}

	full, err := New(4).ParetoFront(context.Background(), pr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 2 {
		t.Fatalf("staging instance has a front of %d points, need >= 2", len(full))
	}
	stop := errors.New("enough")
	for k := 1; k < len(full); k++ {
		var got []core.Solution
		_, err := New(4).SweepFront(context.Background(), pr, core.Options{}, SweepObserver{Point: func(p SweepPoint) error {
			got = append(got, p.Solution)
			if len(got) == k {
				return stop
			}
			return nil
		}})
		if !errors.Is(err, stop) {
			t.Fatalf("k=%d: sweep returned %v, want the observer's stop error", k, err)
		}
		if !reflect.DeepEqual(got, full[:k]) {
			t.Errorf("k=%d: partial front is not a prefix of the full front\nfull:    %v\npartial: %v", k, full, got)
		}
		for i := 1; i < len(got); i++ {
			if !numeric.Less(got[i-1].Cost.Period, got[i].Cost.Period) {
				t.Errorf("k=%d: partial front not in increasing-period order", k)
			}
		}
	}
}

// TestSweepFrontProgress: the progress callback is monotone and reaches
// the candidate total on a completed sweep.
func TestSweepFrontProgress(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.New(2, 1, 1), AllowDataParallel: true}
	var last, calls int
	var points []SweepPoint
	stats, err := New(2).SweepFront(context.Background(), pr, core.Options{}, SweepObserver{
		Point: func(p SweepPoint) error { points = append(points, p); return nil },
		Progress: func(explored, total int) {
			calls++
			if explored < last {
				t.Errorf("progress went backwards: %d after %d", explored, last)
			}
			if explored > total {
				t.Errorf("progress %d exceeds total %d", explored, total)
			}
			last = explored
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if last != stats.Total || stats.Explored != stats.Total {
		t.Errorf("completed sweep reports explored %d / stats %+v", last, stats)
	}
	if len(points) != stats.Points {
		t.Errorf("emitted %d points, stats say %d", len(points), stats.Points)
	}
}

// TestSweepFrontBudgeted: a budgeted NP-hard sweep streams an
// increasing-period front of anytime-certified points.
func TestSweepFrontBudgeted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pipe := workflow.RandomPipeline(rng, 6, 9)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.Random(rng, 4, 5), AllowDataParallel: true}
	points, stats := collectSweep(t, New(4), pr, core.Options{AnytimeBudget: 50 * time.Millisecond})
	if len(points) == 0 {
		t.Fatal("budgeted sweep emitted no points")
	}
	prev := 0.0
	for i, p := range points {
		if !p.Solution.Feasible || p.Solution.Cost.Period < prev {
			t.Errorf("point %d breaks the front invariant: %+v", i, p.Solution.Cost)
		}
		prev = p.Solution.Cost.Period
		if p.Solution.Anytime && p.Solution.Gap < 0 {
			t.Errorf("point %d has negative gap %g", i, p.Solution.Gap)
		}
	}
	if stats.Explored != stats.Total {
		t.Errorf("completed sweep explored %d of %d", stats.Explored, stats.Total)
	}
}

// TestSweepFrontRequiresObserver: a missing Point callback is an error,
// not a silent no-op.
func TestSweepFrontRequiresObserver(t *testing.T) {
	pipe := workflow.NewPipeline(1)
	pr := core.Problem{Pipeline: &pipe, Platform: platform.Homogeneous(1, 1)}
	if _, err := New(1).SweepFront(context.Background(), pr, core.Options{}, SweepObserver{}); err == nil {
		t.Fatal("nil Point observer accepted")
	}
}
