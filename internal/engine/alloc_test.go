package engine

import (
	"context"
	"testing"

	"repliflow/internal/core"
	"repliflow/internal/platform"
	"repliflow/internal/workflow"
)

// TestFingerprintAllocs pins the binary fingerprint to its allocation
// budget: the buffer and its string conversion. The textual rendering it
// replaced cost one allocation per float; a regression here silently
// taxes every cached solve.
func TestFingerprintAllocs(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4, 7, 5, 3, 9)
	pr := core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.New(5, 4, 3, 3, 2, 2, 1, 1),
		AllowDataParallel: true,
		Objective:         core.LatencyUnderPeriod,
		Bound:             2.5,
	}
	allocs := testing.AllocsPerRun(100, func() {
		_ = Fingerprint(pr, core.Options{})
	})
	if allocs > 2 {
		t.Errorf("Fingerprint allocates %.0f objects/op, want <= 2 (buffer + string)", allocs)
	}
}

// TestCachedSolveAllocs pins the warm-cache Solve path: fingerprint,
// cache lookup and the defensive solution clone. This is the per-request
// cost of every cache hit the server takes.
func TestCachedSolveAllocs(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pr := core.Problem{
		Pipeline:          &pipe,
		Platform:          platform.New(2, 2, 1, 1),
		AllowDataParallel: true,
		Objective:         core.MinLatency,
	}
	e := New(2)
	ctx := context.Background()
	if _, err := e.Solve(ctx, pr, core.Options{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := e.Solve(ctx, pr, core.Options{}); err != nil {
			t.Fatal(err)
		}
	})
	// Fingerprint (2) + cloned mapping struct + cloned interval slice,
	// with one spare for runtime jitter.
	if allocs > 5 {
		t.Errorf("cached Solve allocates %.0f objects/op, want <= 5", allocs)
	}
	if hits, _ := e.CacheStats(); hits == 0 {
		t.Fatal("solves did not hit the cache; the allocation bound measured the wrong path")
	}
}

// TestBatchPoolEngagement: the batch-wide prepared pool must engage
// exactly on batches that vary one instance in Objective/Bound only.
func TestBatchPoolEngagement(t *testing.T) {
	pipe := workflow.NewPipeline(14, 4, 2, 4)
	pl := platform.New(3, 2, 1)
	base := core.Problem{Pipeline: &pipe, Platform: pl, AllowDataParallel: true, Objective: core.MinPeriod}
	sweepish := []core.Problem{base, base, base}
	sweepish[1].Objective = core.LatencyUnderPeriod
	sweepish[1].Bound = 2
	sweepish[2].Objective = core.PeriodUnderLatency
	sweepish[2].Bound = 9
	if batchPool(sweepish, core.Options{}) == nil {
		t.Error("no pool for a sweep-shaped batch of one NP-hard instance")
	}

	other := base
	pipe2 := workflow.NewPipeline(1, 2, 3)
	other.Pipeline = &pipe2
	if batchPool([]core.Problem{base, other}, core.Options{}) != nil {
		t.Error("pool engaged across distinct instances")
	}
	if batchPool(sweepish, core.Options{AnytimeBudget: 1}) != nil {
		t.Error("pool engaged under an anytime budget")
	}
	if batchPool(sweepish[:1], core.Options{}) != nil {
		t.Error("pool engaged for a single-solve batch")
	}

	// And the pooled batch must still return exactly what the plain path
	// returns.
	e := New(2)
	ctx := context.Background()
	pooled, err := e.SolveBatch(ctx, sweepish, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, pr := range sweepish {
		want, err := core.SolveContext(ctx, pr, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !equalSolutions(pooled[i], want) {
			t.Errorf("pooled batch solution %d diverges from SolveContext", i)
		}
	}
}

// equalSolutions compares solutions by value (mappings included).
func equalSolutions(a, b core.Solution) bool {
	if a.Cost != b.Cost || a.Method != b.Method || a.Exact != b.Exact || a.Feasible != b.Feasible {
		return false
	}
	switch {
	case a.PipelineMapping != nil && b.PipelineMapping != nil:
		return a.PipelineMapping.String() == b.PipelineMapping.String()
	case a.ForkMapping != nil && b.ForkMapping != nil:
		return a.ForkMapping.String() == b.ForkMapping.String()
	case a.ForkJoinMapping != nil && b.ForkJoinMapping != nil:
		return a.ForkJoinMapping.String() == b.ForkJoinMapping.String()
	}
	return a.PipelineMapping == nil && b.PipelineMapping == nil &&
		a.ForkMapping == nil && b.ForkMapping == nil &&
		a.ForkJoinMapping == nil && b.ForkJoinMapping == nil
}
